/**
 * @file
 * Ablation of the fig. 5 design choice: the paper's sequencing loads
 * B(:,k) into reby as a separate phase before computing (costing Mb
 * cycles per iteration); the overlapped variant hides the reload under
 * the last column of multiply-adds using the parallel move path.
 * Whole-column chunks are required, so both variants run at N chosen
 * to split into whole columns per cell.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "kernels/entries.hh"
#include "kernels/matupdate.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;
using host::Region;

namespace
{

double
runFig5(unsigned p, unsigned tau, std::size_t n, std::size_t k)
{
    copro::Coprocessor sys(timingConfig(p, 2048, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();
    return double(n) * double(n) * double(k) / double(cycles);
}

double
runOverlap(unsigned p, unsigned tau, std::size_t n, std::size_t k)
{
    copro::Coprocessor sys(timingConfig(p, 2048, tau));
    kernels::installStandardKernels(sys);
    auto &mem = sys.memory();
    MatRef c = allocMat(mem, n, n);
    MatRef a = allocMat(mem, n, k);
    MatRef b = allocMat(mem, k, n);
    host::Host &h = sys.host();

    // Whole-column partition: cell cc owns f columns starting at c0.
    opac_assert(n % p == 0, "n must split into whole columns per cell");
    const std::size_t f = n / p;
    const std::uint32_t all = copro::allCellsMask(p);
    for (unsigned cc = 0; cc < p; ++cc) {
        h.enqueue(host::callOp(
            1u << cc, kernels::entries::matUpdateOvlAdd,
            {std::int32_t(k - 1), std::int32_t(n), std::int32_t(f),
             std::int32_t(f * n)}));
    }
    for (unsigned cc = 0; cc < p; ++cc) {
        h.enqueue(host::sendOp(
            1u << cc, Region::mat(c.addrOf(0, cc * f), n, f, c.ld)));
    }
    // First B column (broadcast), then per iteration: per-cell C rows
    // followed by the next B column.
    h.enqueue(host::sendOp(all, Region::vec(a.addrOf(0, 0), n)));
    for (std::size_t kk = 0; kk < k; ++kk) {
        for (unsigned cc = 0; cc < p; ++cc) {
            h.enqueue(host::sendOp(
                1u << cc, Region::strided(b.addrOf(kk, cc * f), f,
                                          b.ld)));
        }
        if (kk + 1 < k) {
            h.enqueue(host::sendOp(all,
                                   Region::vec(a.addrOf(0, kk + 1),
                                               n)));
        }
    }
    for (unsigned cc = 0; cc < p; ++cc) {
        h.enqueue(host::recvOp(
            cc, Region::mat(c.addrOf(0, cc * f), n, f, c.ld)));
    }
    Cycle cycles = sys.run();
    return double(n) * double(n) * double(k) / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t k = std::size_t(argValue(argc, argv, "--k", 300));
    const unsigned jobs = initSimFlags(argc, argv);
    std::printf("Fig. 5 separate-reload vs overlapped-reload matrix "
                "update (Tf = 2048, K = %zu).\n\n", k);
    TextTable t("multiply-adds per cycle");
    t.header({"P", "N", "tau", "fig. 5", "overlapped"});
    const std::pair<unsigned, std::size_t> shapes[] = {
        {1, 45}, {4, 88}, {16, 176}};
    std::vector<std::function<double()>> tasks;
    for (auto [p, n] : shapes) {
        std::size_t n_cols = n - (n % p); // whole columns per cell
        for (unsigned tau : {2u, 4u}) {
            tasks.push_back([p = p, tau, n_cols, k] {
                return runFig5(p, tau, n_cols, k);
            });
            tasks.push_back([p = p, tau, n_cols, k] {
                return runOverlap(p, tau, n_cols, k);
            });
        }
    }
    auto results = sweepValues(tasks, jobs);
    std::size_t idx = 0;
    for (auto [p, n] : shapes) {
        std::size_t n_cols = n - (n % p);
        for (unsigned tau : {2u, 4u}) {
            t.row({strfmt("%u", p), strfmt("%zu", n_cols),
                   strfmt("%u", tau),
                   strfmt("%.3f", results[idx]),
                   strfmt("%.3f", results[idx + 1])});
            idx += 2;
        }
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The overlapped variant recovers the Mb-cycle reload "
                "per iteration, approaching Mb/(Mb+1) per cell.\n");
    return 0;
}
