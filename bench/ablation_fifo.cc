/**
 * @file
 * Ablation for the paper's central cost knob: the FIFO queue size Tf
 * (section 6.4 claims its influence is "quite marginal" at small P but
 * important at P = 16 with a slow host). Sweeps Tf on the matrix
 * update and the LU factorization, and also sweeps the *interface*
 * queue depth, which controls host/cell decoupling slack.
 */

#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

double
runMatUpdate(unsigned p, std::size_t tf, unsigned tau, std::size_t k,
             std::size_t interface_depth = 0)
{
    auto cfg = timingConfig(p, tf, tau);
    if (interface_depth)
        cfg.cell.interfaceDepth = interface_depth;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    std::size_t n = analytic::paperTileN(p, tf);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::matUpdateMultiplyAdds(n, k) / double(cycles);
}

double
runLu(unsigned p, std::size_t tf, unsigned tau, std::size_t n)
{
    copro::Coprocessor sys(timingConfig(p, tf, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 2.0f);
    plan.lu(a);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::luMultiplyAdds(n) / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t lu_n = std::size_t(argValue(argc, argv, "--lun",
                                                  176));
    const unsigned jobs = initSimFlags(argc, argv);
    const std::size_t sizes[] = {128, 256, 512, 1024, 2048, 4096};
    const std::size_t depths[] = {64, 128, 256, 512, 1024, 2048};

    std::printf("FIFO-size ablation (Tf drives tile sizes everywhere; "
                "the per-experiment tile follows the paper rule).\n\n");

    // All three tables' cases run as one concurrent sweep; rendering
    // below consumes the results in the same order they were queued.
    std::vector<std::function<double()>> tasks;
    for (std::size_t tf : sizes)
        for (unsigned p : {1u, 4u, 16u})
            tasks.push_back(
                [p, tf] { return runMatUpdate(p, tf, 2, 300); });
    for (std::size_t tf : sizes)
        for (auto [p, tau] : {std::pair<unsigned, unsigned>{1, 2},
                              {4, 2}, {16, 2}, {16, 4}})
            tasks.push_back([p = p, tau = tau, tf, lu_n] {
                return runLu(p, tf, tau, lu_n);
            });
    for (std::size_t d : depths)
        tasks.push_back([d] { return runMatUpdate(4, 512, 4, 300, d); });
    auto results = sweepValues(tasks, jobs);
    std::size_t idx = 0;

    {
        TextTable t("matrix update, K = 300, tau = 2 "
                    "(MA/cycle; N grows with Tf)");
        t.header({"Tf", "P=1", "P=4", "P=16"});
        for (std::size_t tf : sizes) {
            t.row({strfmt("%zu", tf),
                   strfmt("%.3f", results[idx]),
                   strfmt("%.3f", results[idx + 1]),
                   strfmt("%.3f", results[idx + 2])});
            idx += 3;
        }
        std::printf("%s\n", t.render().c_str());
    }
    {
        TextTable t(strfmt("LU factorization, N = %zu (MA/cycle)",
                           lu_n));
        t.header({"Tf", "P=1 t=2", "P=4 t=2", "P=16 t=2", "P=16 t=4"});
        for (std::size_t tf : sizes) {
            (void)tf;
            t.row({strfmt("%zu", tf),
                   strfmt("%.3f", results[idx]),
                   strfmt("%.3f", results[idx + 1]),
                   strfmt("%.3f", results[idx + 2]),
                   strfmt("%.3f", results[idx + 3])});
            idx += 4;
        }
        std::printf("%s\n", t.render().c_str());
    }
    {
        TextTable t("interface-queue depth (decoupling slack), matrix "
                    "update P = 4, Tf = 512, K = 300, tau = 4");
        t.header({"depth", "MA/cycle"});
        for (std::size_t d : depths)
            t.row({strfmt("%zu", d), strfmt("%.3f", results[idx++])});
        std::printf("%s\n", t.render().c_str());
    }
    return 0;
}
