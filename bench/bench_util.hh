/**
 * @file
 * Shared helpers for the table-reproduction benches: system builders,
 * workload generators and result formatting.
 *
 * The benches run the simulator in timing-only arithmetic mode
 * (FpKind::Token): a test asserts that cycle counts are identical
 * across FP back-ends, so this changes nothing but wall-clock time.
 */

#ifndef OPAC_BENCH_BENCH_UTIL_HH
#define OPAC_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "coproc/coprocessor.hh"
#include "kernels/kernel_set.hh"

namespace opac::bench
{

/** Build a P-cell coprocessor in timing-only mode. */
inline copro::CoprocConfig
timingConfig(unsigned cells, std::size_t tf, unsigned tau,
             std::size_t memory_words = std::size_t(1) << 23)
{
    copro::CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.cell.fp = cell::FpKind::Token;
    cfg.host.tau = tau;
    cfg.memoryWords = memory_words;
    cfg.watchdogCycles = 2000000;
    return cfg;
}

/** Format a multiply-adds-per-cycle value the way the paper prints. */
inline std::string
maPerCycle(double mas, Cycle cycles)
{
    return strfmt("%.3f", mas / double(cycles));
}

/** Simple "--flag value" argument scan. */
inline long
argValue(int argc, char **argv, const std::string &flag, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::atol(argv[i + 1]);
    }
    return fallback;
}

/** True if "--flag" is present. */
inline bool
argFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (argv[i] == flag)
            return true;
    }
    return false;
}

} // namespace opac::bench

#endif // OPAC_BENCH_BENCH_UTIL_HH
