/**
 * @file
 * Shared helpers for the table-reproduction benches: system builders,
 * workload generators and result formatting.
 *
 * The benches run the simulator in timing-only arithmetic mode
 * (FpKind::Token): a test asserts that cycle counts are identical
 * across FP back-ends, so this changes nothing but wall-clock time.
 */

#ifndef OPAC_BENCH_BENCH_UTIL_HH
#define OPAC_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "coproc/coprocessor.hh"
#include "kernels/kernel_set.hh"
#include "trace/aggregate.hh"
#include "trace/json.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

namespace opac::bench
{

/** Build a P-cell coprocessor in timing-only mode. */
inline copro::CoprocConfig
timingConfig(unsigned cells, std::size_t tf, unsigned tau,
             std::size_t memory_words = std::size_t(1) << 23)
{
    copro::CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.cell.fp = cell::FpKind::Token;
    cfg.host.tau = tau;
    cfg.memoryWords = memory_words;
    cfg.watchdogCycles = 2000000;
    return cfg;
}

/** Format a multiply-adds-per-cycle value the way the paper prints. */
inline std::string
maPerCycle(double mas, Cycle cycles)
{
    return strfmt("%.3f", mas / double(cycles));
}

/** Simple "--flag value" argument scan. */
inline long
argValue(int argc, char **argv, const std::string &flag, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::atol(argv[i + 1]);
    }
    return fallback;
}

/** True if "--flag" is present. */
inline bool
argFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (argv[i] == flag)
            return true;
    }
    return false;
}

/** Value of "--flag=text" (or "--flag text"); empty when absent. */
inline std::string
argText(int argc, char **argv, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
        if (arg == flag && i + 1 < argc)
            return argv[i + 1];
    }
    return "";
}

/**
 * One traced run within a bench binary, driven by `--trace=<file>`.
 * Attach to the representative system before running it; on
 * finish() the trace file is written (Chrome trace-event JSON, or the
 * CSV archival form when the path ends in ".csv" — the input format of
 * tools/trace_report) and the in-memory aggregate report is printed,
 * optionally against an analytic occupancy prediction.
 */
class TraceSession
{
  public:
    TraceSession(int argc, char **argv)
        : path(argText(argc, argv, "--trace"))
    {}

    /** True when the user asked for a trace. */
    bool wanted() const { return !path.empty(); }

    /** True once a system has been claimed as the traced run. */
    bool attached() const { return tracer != nullptr; }

    /** Claim @p sys as the traced run (first caller wins). */
    void
    attach(copro::Coprocessor &sys)
    {
        opac_assert(wanted() && !attached(),
                    "attach on an unwanted or already-claimed session");
        tracer = std::make_unique<trace::Tracer>();
        file.open(path, std::ios::out | std::ios::trunc);
        if (!file) {
            opac_fatal("cannot open trace file '%s'", path.c_str());
        }
        bool csv = path.size() >= 4
                   && path.compare(path.size() - 4, 4, ".csv") == 0;
        if (csv)
            fileSink = std::make_unique<trace::CsvSink>(file);
        else
            fileSink = std::make_unique<trace::ChromeTraceSink>(file);
        tracer->addSink(fileSink.get());
        tracer->addSink(&aggregate);
        sys.attachTracer(tracer.get());
    }

    /**
     * Close the trace and print the aggregate report. When
     * @p predicted_ma is non-negative, also print the measured
     * multiply-add occupancy against that analytic prediction.
     */
    void
    finish(Cycle end, double predicted_ma = -1.0)
    {
        if (!attached())
            return;
        tracer->finish(end);
        file.close();
        std::printf("\n=== trace: %llu events -> %s ===\n\n",
                    (unsigned long long)tracer->eventCount(),
                    path.c_str());
        std::printf("%s", aggregate.report().c_str());
        if (predicted_ma >= 0.0) {
            double measured = aggregate.totalMaPerCycle();
            std::printf("measured MA occupancy %.4f vs analytic "
                        "prediction %.4f (%+.2f%%)\n",
                        measured, predicted_ma,
                        predicted_ma != 0.0
                            ? 100.0 * (measured - predicted_ma)
                                  / predicted_ma
                            : 0.0);
        }
    }

    const trace::Aggregate &agg() const { return aggregate; }

  private:
    std::string path;
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<trace::Sink> fileSink;
    trace::Aggregate aggregate;
    std::ofstream file;
};

/**
 * Collects benchmark results and writes them as `BENCH_<name>.json`
 * (an array of {name, cycles, flops_per_cycle, efficiency} records) so
 * the performance trajectory is machine-readable across PRs. A flop
 * here is an FP operation: one multiply-add counts as two, matching
 * peak 2P flops/cycle for a P-cell coprocessor.
 */
class BenchJsonWriter
{
  public:
    explicit BenchJsonWriter(std::string bench_name)
        : benchName(std::move(bench_name))
    {}

    ~BenchJsonWriter() { write(); }

    BenchJsonWriter(const BenchJsonWriter &) = delete;
    BenchJsonWriter &operator=(const BenchJsonWriter &) = delete;

    void
    record(const std::string &name, Cycle cycles, double flops_per_cycle,
           double efficiency)
    {
        records.push_back(strfmt(
            "  {\"name\": \"%s\", \"cycles\": %llu, "
            "\"flops_per_cycle\": %.6f, \"efficiency\": %.6f}",
            trace::json::escape(name).c_str(),
            (unsigned long long)cycles, flops_per_cycle, efficiency));
    }

    /** Write BENCH_<name>.json now (also runs at destruction). */
    void
    write()
    {
        if (written || records.empty())
            return;
        written = true;
        std::string path = "BENCH_" + benchName + ".json";
        std::ofstream out(path, std::ios::out | std::ios::trunc);
        if (!out) {
            warn(strfmt("cannot write %s", path.c_str()));
            return;
        }
        out << "[\n";
        for (std::size_t i = 0; i < records.size(); ++i)
            out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
        out << "]\n";
    }

  private:
    std::string benchName;
    std::vector<std::string> records;
    bool written = false;
};

} // namespace opac::bench

#endif // OPAC_BENCH_BENCH_UTIL_HH
