/**
 * @file
 * Shared helpers for the table-reproduction benches: system builders,
 * workload generators and result formatting.
 *
 * The benches run the simulator in timing-only arithmetic mode
 * (FpKind::Token): a test asserts that cycle counts are identical
 * across FP back-ends, so this changes nothing but wall-clock time.
 */

#ifndef OPAC_BENCH_BENCH_UTIL_HH
#define OPAC_BENCH_BENCH_UTIL_HH

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/table.hh"
#include "coproc/coprocessor.hh"
#include "fault/fault.hh"
#include "kernels/kernel_set.hh"
#include "sim/sweep.hh"
#include "snap/snapshot.hh"
#include "trace/aggregate.hh"
#include "trace/json.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

namespace opac::bench
{

/**
 * Process-wide default for CoprocConfig::skipIdleCycles, set by
 * initSimFlags from --no-skip. A mutable global (rather than plumbing
 * a flag through every table function) because it is a pure
 * debugging aid: skipping is bit-identical to spinning.
 */
inline bool &
skipDefault()
{
    static bool skip = true;
    return skip;
}

/**
 * Process-wide fault-injection plan, set by initSimFlags from
 * --faults=<spec> (docs/RESILIENCE.md). Empty by default, so benches
 * run fault-free and byte-identical to a build without the subsystem.
 */
inline fault::FaultSpec &
faultDefault()
{
    static fault::FaultSpec spec;
    return spec;
}

/** Process-wide FIFO parity mode, set by initSimFlags from --parity=. */
inline fault::ParityMode &
parityDefault()
{
    static fault::ParityMode mode = fault::ParityMode::Off;
    return mode;
}

/**
 * Process-wide engine mode, set by initSimFlags from --engine=. All
 * four modes are bit-identical in simulated cycles, statistics and
 * trace output (docs/PERFORMANCE.md), so this only selects how fast
 * the host machine gets there.
 */
inline sim::EngineMode &
engineDefault()
{
    static sim::EngineMode mode = sim::EngineMode::Skip;
    return mode;
}

/**
 * Process-wide worker count for --engine=parallel, set by initSimFlags
 * from --sim-threads= (0 = one per hardware thread).
 */
inline unsigned &
simThreadsDefault()
{
    static unsigned threads = 0;
    return threads;
}

/**
 * Process-wide default for CoprocConfig::fastTier, set by initSimFlags
 * from --fast-tier=on|off. On by default: superop bursts are
 * byte-identical to the per-cycle interpreter in every engine mode, so
 * off is only a debugging / A-B measurement aid.
 */
inline bool &
fastTierDefault()
{
    static bool on = true;
    return on;
}

/**
 * Parse the simulation-wide bench flags:
 *   --no-skip        run every idle cycle instead of fast-forwarding
 *                    (bit-identical; only slower — a debugging aid)
 *   --jobs N         worker threads for the parameter sweep
 *                    (default: hardware concurrency)
 *   --faults=SPEC    fault-injection plan for every system the bench
 *                    builds (grammar in docs/RESILIENCE.md)
 *   --parity=MODE    off | detect | correct FIFO word protection
 *   --engine=MODE    spin | skip | event | parallel scheduler
 *                    (bit-identical; see docs/PERFORMANCE.md)
 *   --sim-threads=N  workers for --engine=parallel (0 = one per
 *                    hardware thread)
 *   --fast-tier=X    on | off superop fast tier (bit-identical;
 *                    off forces the per-cycle interpreter)
 * Returns the job count for sim::sweep.
 */
inline unsigned
initSimFlags(int argc, char **argv);

/** Build a P-cell coprocessor in timing-only mode. */
inline copro::CoprocConfig
timingConfig(unsigned cells, std::size_t tf, unsigned tau,
             std::size_t memory_words = std::size_t(1) << 23)
{
    copro::CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.cell.fp = cell::FpKind::Token;
    cfg.host.tau = tau;
    cfg.memoryWords = memory_words;
    cfg.watchdogCycles = 2000000;
    cfg.skipIdleCycles = skipDefault();
    cfg.engineMode = engineDefault();
    cfg.simThreads = simThreadsDefault();
    cfg.faults = faultDefault();
    cfg.cell.parity = parityDefault();
    cfg.fastTier = fastTierDefault();
    return cfg;
}

/** Monotonic wall-clock seconds since an arbitrary origin. */
inline double
wallSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

/**
 * Simulated cycles per wall-clock second — the simulator-throughput
 * metric recorded as "sim_rate" in BENCH_*.json (informational:
 * bench_diff reports it but never gates on it).
 */
inline double
simRate(Cycle cycles, double wall_seconds)
{
    return wall_seconds > 0.0 ? double(cycles) / wall_seconds : 0.0;
}

/** Format a multiply-adds-per-cycle value the way the paper prints. */
inline std::string
maPerCycle(double mas, Cycle cycles)
{
    return strfmt("%.3f", mas / double(cycles));
}

/** Simple "--flag value" argument scan. */
inline long
argValue(int argc, char **argv, const std::string &flag, long fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (argv[i] == flag)
            return std::atol(argv[i + 1]);
    }
    return fallback;
}

/** True if "--flag" is present. */
inline bool
argFlag(int argc, char **argv, const std::string &flag)
{
    for (int i = 1; i < argc; ++i) {
        if (argv[i] == flag)
            return true;
    }
    return false;
}

/** Value of "--flag=text" (or "--flag text"); empty when absent. */
inline std::string
argText(int argc, char **argv, const std::string &flag)
{
    const std::string prefix = flag + "=";
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind(prefix, 0) == 0)
            return arg.substr(prefix.size());
        if (arg == flag && i + 1 < argc)
            return argv[i + 1];
    }
    return "";
}

inline unsigned
initSimFlags(int argc, char **argv)
{
    skipDefault() = !argFlag(argc, argv, "--no-skip");
    try {
        std::string faults = argText(argc, argv, "--faults");
        if (!faults.empty())
            faultDefault() = fault::parseFaultSpec(faults);
        std::string parity = argText(argc, argv, "--parity");
        if (!parity.empty())
            parityDefault() = fault::parseParityMode(parity);
    } catch (const Error &e) {
        std::fprintf(stderr, "%s: %s\n", argv[0], e.what());
        std::exit(2);
    }
    std::string engine = argText(argc, argv, "--engine");
    if (!engine.empty()
        && !sim::parseEngineMode(engine, engineDefault())) {
        std::fprintf(stderr,
                     "%s: bad --engine value '%s' (want spin, skip, "
                     "event or parallel)\n", argv[0], engine.c_str());
        std::exit(2);
    }
    std::string threads = argText(argc, argv, "--sim-threads");
    if (!threads.empty())
        simThreadsDefault() = unsigned(std::atol(threads.c_str()));
    std::string fast = argText(argc, argv, "--fast-tier");
    if (!fast.empty()) {
        if (fast == "on") {
            fastTierDefault() = true;
        } else if (fast == "off") {
            fastTierDefault() = false;
        } else {
            std::fprintf(stderr,
                         "%s: bad --fast-tier value '%s' (want on or "
                         "off)\n", argv[0], fast.c_str());
            std::exit(2);
        }
    }
    long jobs = argValue(argc, argv, "--jobs",
                         long(sim::defaultJobs()));
    std::string eq = argText(argc, argv, "--jobs");
    if (!eq.empty())
        jobs = std::atol(eq.c_str());
    return jobs > 0 ? unsigned(jobs) : 1;
}

/**
 * Sweep a batch of double-valued cases (the ablation benches' common
 * shape) across @p jobs workers, preserving order.
 */
inline std::vector<double>
sweepValues(const std::vector<std::function<double()>> &tasks,
            unsigned jobs)
{
    return sim::sweep<double>(tasks, jobs);
}

/**
 * Sidecar fast-tier diagnostics, driven by `--fast-tier-report=<file>`.
 * Each case appends its Coprocessor::fastTierReport() under a named
 * header before its system is torn down; finish() writes the collected
 * text. A separate file — never part of BENCH_*.json, the stats tree
 * or the trace stream — because burst engagement varies with engine
 * mode and flags while those outputs are byte-identical by contract.
 * tools/trace_report renders the file next to --top-stalls output via
 * its own --fast-tier=<file> flag. Thread-safe: sweep cases run
 * concurrently.
 */
class FastTierReportSession
{
  public:
    FastTierReportSession(int argc, char **argv)
        : path(argText(argc, argv, "--fast-tier-report"))
    {}

    bool wanted() const { return !path.empty(); }

    /** Record one finished case's fast-tier counters. */
    void
    add(const std::string &case_name, const copro::Coprocessor &sys)
    {
        if (!wanted())
            return;
        std::lock_guard<std::mutex> lock(mtx);
        text += "== " + case_name + "\n";
        text += sys.fastTierReport();
    }

    void
    finish()
    {
        if (!wanted())
            return;
        snap::ensureParentDir(path);
        std::ofstream out(path);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n", path.c_str());
            std::exit(1);
        }
        out << text;
        std::printf("fast-tier report written to %s\n", path.c_str());
    }

  private:
    std::string path;
    std::mutex mtx;
    std::string text;
};

/**
 * One traced run within a bench binary, driven by `--trace=<file>`.
 * Attach to the representative system before running it; on
 * finish() the trace file is written (Chrome trace-event JSON, or the
 * CSV archival form when the path ends in ".csv" — the input format of
 * tools/trace_report) and the in-memory aggregate report is printed,
 * optionally against an analytic occupancy prediction.
 */
class TraceSession
{
  public:
    TraceSession(int argc, char **argv)
        : path(argText(argc, argv, "--trace"))
    {}

    /** True when the user asked for a trace. */
    bool wanted() const { return !path.empty(); }

    /** True once a system has been claimed as the traced run. */
    bool attached() const { return tracer != nullptr; }

    /** Claim @p sys as the traced run (first caller wins). */
    void
    attach(copro::Coprocessor &sys)
    {
        opac_assert(wanted() && !attached(),
                    "attach on an unwanted or already-claimed session");
        tracer = std::make_unique<trace::Tracer>();
        snap::ensureParentDir(path);
        file.open(path, std::ios::out | std::ios::trunc);
        if (!file) {
            opac_fatal("cannot open trace file '%s'", path.c_str());
        }
        bool csv = path.size() >= 4
                   && path.compare(path.size() - 4, 4, ".csv") == 0;
        if (csv)
            fileSink = std::make_unique<trace::CsvSink>(file);
        else
            fileSink = std::make_unique<trace::ChromeTraceSink>(file);
        tracer->addSink(fileSink.get());
        tracer->addSink(&aggregate);
        sys.attachTracer(tracer.get());
    }

    /**
     * Close the trace and print the aggregate report. When
     * @p predicted_ma is non-negative, also print the measured
     * multiply-add occupancy against that analytic prediction.
     */
    void
    finish(Cycle end, double predicted_ma = -1.0)
    {
        if (!attached())
            return;
        tracer->finish(end);
        file.close();
        std::printf("\n=== trace: %llu events -> %s ===\n\n",
                    (unsigned long long)tracer->eventCount(),
                    path.c_str());
        std::printf("%s", aggregate.report().c_str());
        if (predicted_ma >= 0.0) {
            double measured = aggregate.totalMaPerCycle();
            std::printf("measured MA occupancy %.4f vs analytic "
                        "prediction %.4f (%+.2f%%)\n",
                        measured, predicted_ma,
                        predicted_ma != 0.0
                            ? 100.0 * (measured - predicted_ma)
                                  / predicted_ma
                            : 0.0);
        }
    }

    const trace::Aggregate &agg() const { return aggregate; }

  private:
    std::string path;
    std::unique_ptr<trace::Tracer> tracer;
    std::unique_ptr<trace::Sink> fileSink;
    trace::Aggregate aggregate;
    std::ofstream file;
};

/**
 * Current commit, abbreviated. The OPAC_GIT_SHA environment variable
 * wins (CI sets it from the checkout), then `git rev-parse`, then
 * "unknown" (e.g. a bench run from an installed tree).
 */
inline std::string
gitSha()
{
    if (const char *env = std::getenv("OPAC_GIT_SHA"); env && *env)
        return env;
    std::string sha;
    if (FILE *p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
        char buf[64];
        if (std::fgets(buf, sizeof(buf), p))
            sha = buf;
        ::pclose(p);
    }
    while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r'))
        sha.pop_back();
    return sha.empty() ? "unknown" : sha;
}

/** The current wall-clock time as ISO-8601 UTC ("...Z"). */
inline std::string
iso8601Now()
{
    std::time_t t = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&t, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/** CMAKE_BUILD_TYPE baked in by bench/CMakeLists.txt. */
inline std::string
buildType()
{
#ifdef OPAC_BUILD_TYPE
    return OPAC_BUILD_TYPE;
#else
    return "unknown";
#endif
}

/**
 * Collects benchmark results and writes them as `BENCH_<name>.json`:
 * an object {bench, git_sha, timestamp, build_type, config, results}
 * whose "results" array holds {name, cycles, flops_per_cycle,
 * efficiency, ...extra} records — the input format of tools/bench_diff
 * and the committed baselines under bench/baselines/. A flop here is an
 * FP operation: one multiply-add counts as two, matching peak 2P
 * flops/cycle for a P-cell coprocessor.
 */
class BenchJsonWriter
{
  public:
    explicit BenchJsonWriter(std::string bench_name)
        : benchName(std::move(bench_name))
    {}

    ~BenchJsonWriter() { write(); }

    BenchJsonWriter(const BenchJsonWriter &) = delete;
    BenchJsonWriter &operator=(const BenchJsonWriter &) = delete;

    /** Record a simulator-configuration key (tau, cells, Tf, ...). */
    void
    config(const std::string &key, const std::string &value)
    {
        configs.push_back(strfmt("\"%s\": \"%s\"",
                                 trace::json::escape(key).c_str(),
                                 trace::json::escape(value).c_str()));
    }

    void config(const std::string &key, long value)
    {
        configs.push_back(strfmt("\"%s\": %ld",
                                 trace::json::escape(key).c_str(),
                                 value));
    }

    /**
     * Record one case. @p extra holds additional named measurements
     * (e.g. {"ma_per_cycle", 0.496}) appended to the record.
     */
    void
    record(const std::string &name, Cycle cycles, double flops_per_cycle,
           double efficiency,
           const std::vector<std::pair<std::string, double>> &extra = {})
    {
        std::string rec = strfmt(
            "    {\"name\": \"%s\", \"cycles\": %llu, "
            "\"flops_per_cycle\": %.6f, \"efficiency\": %.6f",
            trace::json::escape(name).c_str(),
            (unsigned long long)cycles, flops_per_cycle, efficiency);
        for (const auto &[k, v] : extra) {
            rec += strfmt(", \"%s\": %.6f",
                          trace::json::escape(k).c_str(), v);
        }
        rec += "}";
        records.push_back(std::move(rec));
    }

    /** Write BENCH_<name>.json now (also runs at destruction). */
    void
    write()
    {
        if (written || records.empty())
            return;
        written = true;
        std::string path = "BENCH_" + benchName + ".json";
        std::ofstream out(path, std::ios::out | std::ios::trunc);
        if (!out) {
            warn(strfmt("cannot write %s", path.c_str()));
            return;
        }
        out << "{\n";
        out << "  \"bench\": \""
            << trace::json::escape(benchName) << "\",\n";
        out << "  \"git_sha\": \""
            << trace::json::escape(gitSha()) << "\",\n";
        out << "  \"timestamp\": \"" << iso8601Now() << "\",\n";
        out << "  \"build_type\": \""
            << trace::json::escape(buildType()) << "\",\n";
        out << "  \"config\": {";
        for (std::size_t i = 0; i < configs.size(); ++i)
            out << (i ? ", " : "") << configs[i];
        out << "},\n";
        out << "  \"results\": [\n";
        for (std::size_t i = 0; i < records.size(); ++i)
            out << records[i] << (i + 1 < records.size() ? ",\n" : "\n");
        out << "  ]\n}\n";
    }

  private:
    std::string benchName;
    std::vector<std::string> configs;
    std::vector<std::string> records;
    bool written = false;
};

/**
 * One stats-instrumented run within a bench binary, driven by
 * `--stats=<file>` and `--sample-interval=N` (default 1000 cycles).
 * Ask for the interval when building the representative system's
 * config, then claim that system; on finish() the full registry plus
 * the sampled time series is written as JSON (Coprocessor::statsJson).
 */
class StatsSession
{
  public:
    StatsSession(int argc, char **argv)
        : path(argText(argc, argv, "--stats"))
    {
        std::string iv = argText(argc, argv, "--sample-interval");
        interval = iv.empty() ? 1000 : Cycle(std::atol(iv.c_str()));
        opac_assert(interval > 0, "bad --sample-interval value '%s'",
                    iv.c_str());
    }

    /** True when the user asked for a stats dump. */
    bool wanted() const { return !path.empty(); }

    /** True once a system has been claimed as the instrumented run. */
    bool attached() const { return sys != nullptr; }

    /** Sampling interval for the instrumented system's config. */
    Cycle sampleInterval() const { return wanted() ? interval : 0; }

    /** Claim @p s as the instrumented run (first caller wins). */
    void
    attach(copro::Coprocessor &s)
    {
        opac_assert(wanted() && !attached(),
                    "attach on an unwanted or already-claimed session");
        sys = &s;
    }

    /** Write the stats JSON and print the human-readable registry. */
    void
    finish()
    {
        if (!attached())
            return;
        snap::ensureParentDir(path);
        std::ofstream out(path, std::ios::out | std::ios::trunc);
        if (!out) {
            opac_fatal("cannot open stats file '%s'", path.c_str());
        }
        out << sys->statsJson() << "\n";
        std::printf("\n=== stats -> %s ===\n\n%s",
                    path.c_str(), sys->statsReport().c_str());
    }

  private:
    std::string path;
    Cycle interval;
    copro::Coprocessor *sys = nullptr;
};

/**
 * Checkpoint/resume flags for a bench's representative run
 * (docs/RESILIENCE.md, "Checkpoint & replay"):
 *
 *   --snapshot-at=CYCLE   pause the claimed system once its clock
 *                         reaches CYCLE and write a snapshot file
 *                         before running on to completion
 *   --snapshot-file=PATH  where to write it (default opac.snap;
 *                         missing directories are created)
 *   --resume-from=FILE    restore the claimed system from FILE before
 *                         running it
 *
 * Both directions preserve byte identity: a run that snapshots at N
 * and a second process that resumes from the file report exactly the
 * cycle counts, stats and sampler series of the uninterrupted run.
 */
class SnapshotSession
{
  public:
    SnapshotSession(int argc, char **argv)
        : file(argText(argc, argv, "--snapshot-file")),
          resume(argText(argc, argv, "--resume-from"))
    {
        std::string at = argText(argc, argv, "--snapshot-at");
        if (!at.empty()) {
            snapshotAt = Cycle(std::atoll(at.c_str()));
            opac_assert(snapshotAt > 0, "bad --snapshot-at value '%s'",
                        at.c_str());
        }
        if (snapshotAt != 0 && file.empty())
            file = "opac.snap";
    }

    /** True when any checkpoint/resume flag was given. */
    bool wanted() const { return snapshotAt != 0 || !resume.empty(); }

    /** True once a system has been claimed. */
    bool attached() const { return sys != nullptr; }

    /**
     * Claim @p s (freshly constructed, kernels installed, nothing run)
     * and restore the --resume-from file into it if one was given.
     */
    void
    attach(copro::Coprocessor &s)
    {
        opac_assert(wanted() && !attached(),
                    "attach on an unwanted or already-claimed session");
        sys = &s;
        if (!resume.empty())
            sys->loadSnapshot(resume);
    }

    /**
     * Run the claimed system to completion, pausing at --snapshot-at
     * (if given, and not already passed by a resume) to write the
     * checkpoint. Returns the cycles simulated by this call.
     */
    Cycle
    runClaimed(Cycle max_cycles = 0)
    {
        opac_assert(attached(), "runClaimed without a claimed system");
        if (snapshotAt != 0 && snapshotAt > sys->engine().now()) {
            sys->runUntil(snapshotAt, max_cycles);
            sys->saveSnapshot(file);
            std::printf("snapshot at cycle %llu -> %s\n",
                        (unsigned long long)sys->engine().now(),
                        file.c_str());
        }
        sys->run(max_cycles);
        // Report the absolute end cycle, not the cycles run in this
        // process: a --resume-from run starts mid-stream, and its
        // reported cycle count must be byte-identical to the
        // uninterrupted run's.
        return sys->engine().now();
    }

  private:
    std::string file;
    std::string resume;
    Cycle snapshotAt = 0;
    copro::Coprocessor *sys = nullptr;
};

} // namespace opac::bench

#endif // OPAC_BENCH_BENCH_UTIL_HH
