/**
 * @file
 * Ablation of the pivot-reciprocal strategy in the LU leaf. OPAC has
 * no divider, so every pivot makes a host round trip (recv pivot,
 * scalar 1/x, send reciprocal). This bench sweeps the host's scalar
 * divide latency, isolating how much of the small-N inefficiency the
 * paper reports comes from that serial loop.
 */

#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

double
runLu(unsigned recip_cycles, unsigned p, std::size_t tf, std::size_t n)
{
    auto cfg = timingConfig(p, tf, 2);
    cfg.host.recipCycles = recip_cycles;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 2.0f);
    plan.lu(a);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::luMultiplyAdds(n) / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = initSimFlags(argc, argv);
    const unsigned rcs[] = {1u, 8u, 16u, 32u, 64u};
    std::printf("Pivot-reciprocal latency ablation: LU, tau = 2.\n\n");
    TextTable t("multiply-adds per cycle vs host 1/x latency");
    t.header({"recip cycles", "P=1 Tf=2048 N=44", "P=1 Tf=512 N=88",
              "P=16 Tf=512 N=176"});
    std::vector<std::function<double()>> tasks;
    for (unsigned rc : rcs) {
        tasks.push_back([rc] { return runLu(rc, 1, 2048, 44); });
        tasks.push_back([rc] { return runLu(rc, 1, 512, 88); });
        tasks.push_back([rc] { return runLu(rc, 16, 512, 176); });
    }
    auto results = sweepValues(tasks, jobs);
    std::size_t idx = 0;
    for (unsigned rc : rcs) {
        t.row({strfmt("%u", rc),
               strfmt("%.3f", results[idx]),
               strfmt("%.3f", results[idx + 1]),
               strfmt("%.3f", results[idx + 2])});
        idx += 3;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Every pivot costs a tpo->host->tpx round trip plus "
                "this latency while the cell's update loop sits\n"
                "idle; small leaves feel it most — one root of the "
                "paper's low N=44 numbers.\n");
    return 0;
}
