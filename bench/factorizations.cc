/**
 * @file
 * Factorization comparison: the fig. 7 blocked LU against the
 * analogous blocked Cholesky (section 2.1 lists both as block-
 * decomposable). Cholesky does half the floating-point work of LU and
 * moves half the matrix (only the lower triangle), so for symmetric
 * positive-definite systems it should roughly halve the wall-clock —
 * the bench checks that the coprocessor realizes that, not just the
 * flop count.
 */

#include <cstdio>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

/** Cholesky multiply-adds: per step, (s-1)^2/... use the exact sum. */
double
cholMultiplyAdds(std::size_t n)
{
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        double s = double(n - k);
        // scale (s-1) + update passes: sum_{j=1..s-1} (s-j).
        total += (s - 1.0) + (s - 1.0) * s / 2.0;
    }
    return total;
}

struct Result
{
    Cycle cycles;
    double mas;
};

Result
runLu(unsigned p, std::size_t tf, unsigned tau, std::size_t n)
{
    copro::Coprocessor sys(timingConfig(p, tf, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 4.0f);
    plan.lu(a);
    plan.commit();
    return {sys.run(), analytic::luMultiplyAdds(n)};
}

Result
runChol(unsigned p, std::size_t tf, unsigned tau, std::size_t n)
{
    copro::Coprocessor sys(timingConfig(p, tf, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 4.0f);
    plan.cholesky(a);
    plan.commit();
    return {sys.run(), cholMultiplyAdds(n)};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initSimFlags(argc, argv);
    const bool quick = argFlag(argc, argv, "--quick");
    std::vector<std::size_t> sizes = {44, 88, 176, 352};
    if (quick)
        sizes = {44, 88};

    std::printf("LU vs Cholesky on the coprocessor (Tf = 512, "
                "tau = 2).\n\n");
    for (unsigned p : {1u, 4u}) {
        TextTable t(strfmt("P = %u: cycles (MA/cycle)", p));
        std::vector<std::string> head = {"N ="};
        for (auto n : sizes)
            head.push_back(strfmt("%zu", n));
        t.header(head);
        std::vector<std::string> lu_row = {"LU"};
        std::vector<std::string> ch_row = {"Cholesky"};
        std::vector<std::string> ratio = {"cycle ratio"};
        for (auto n : sizes) {
            Result lu = runLu(p, 512, 2, n);
            Result ch = runChol(p, 512, 2, n);
            lu_row.push_back(strfmt("%llu (%.2f)",
                                    (unsigned long long)lu.cycles,
                                    lu.mas / double(lu.cycles)));
            ch_row.push_back(strfmt("%llu (%.2f)",
                                    (unsigned long long)ch.cycles,
                                    ch.mas / double(ch.cycles)));
            ratio.push_back(strfmt("%.2f", double(ch.cycles)
                                   / double(lu.cycles)));
        }
        t.row(lu_row);
        t.row(ch_row);
        t.row(ratio);
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Cholesky's cycle ratio should approach 0.5 at large "
                "N (half the work, half the traffic), with extra\n"
                "serial cost at small N (same per-pivot round trips "
                "over fewer multiply-adds).\n");
    return 0;
}
