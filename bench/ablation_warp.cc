/**
 * @file
 * Ablation for sections 3.2-3.3 / fig. 1: horizontal coprocessor array
 * versus Warp-style linear array, on a stream of independent matrix-
 * update tiles (the workload both organizations can execute).
 *
 * Expected shape: the horizontal array exploits broadcast and Tf*P of
 * aggregate tile storage, so it wins whenever the host can feed it;
 * the linear array only ever asks the host for two streams, but every
 * operand for downstream cells flows through (and consumes issue slots
 * of) upstream cells, tiles are capped at one cell's Tf, and the
 * pipeline needs several tiles to fill.
 */

#include <cstdio>
#include <functional>

#include "baseline/warp.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

double
runHorizontal(unsigned p, unsigned tau, std::size_t n, std::size_t k,
              std::size_t tiles)
{
    copro::Coprocessor sys(timingConfig(p, 2048, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    for (std::size_t t = 0; t < tiles; ++t) {
        MatRef c = allocMat(sys.memory(), n, n);
        MatRef a = allocMat(sys.memory(), n, k);
        MatRef b = allocMat(sys.memory(), k, n);
        plan.matUpdate(c, a, b);
    }
    plan.commit();
    Cycle cycles = sys.run();
    return double(tiles) * double(n * n) * double(k) / double(cycles);
}

double
runWarp(unsigned p, unsigned tau, std::size_t n, std::size_t k,
        std::size_t tiles)
{
    baseline::WarpConfig cfg;
    cfg.cells = p;
    cfg.cell.fp = cell::FpKind::Token;
    cfg.cell.tpiDepth = 1024;
    cfg.host.tau = tau;
    baseline::WarpArray warp(cfg);
    warp.loadMicrocode(baseline::warpMatUpdateEntry,
                       baseline::buildWarpMatUpdate(), 5);
    auto &mem = warp.memory();
    std::size_t c_base = mem.alloc(tiles * n * n);
    std::size_t a_base = mem.alloc(tiles * n * k);
    std::size_t b_base = mem.alloc(tiles * n * k);
    double mas = baseline::planWarpMatUpdateStream(warp, n, k, tiles,
                                                   c_base, a_base,
                                                   b_base);
    Cycle cycles = warp.run();
    return mas / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t n = std::size_t(argValue(argc, argv, "--n", 32));
    const std::size_t k = std::size_t(argValue(argc, argv, "--k", 64));
    const std::size_t tiles = std::size_t(argValue(argc, argv,
                                                   "--tiles", 24));

    const unsigned jobs = initSimFlags(argc, argv);
    std::printf("Horizontal vs linear (Warp) array: stream of %zu "
                "independent %zux%zu tiles, K = %zu.\n"
                "Values in multiply-adds per cycle.\n\n",
                tiles, n, n, k);

    const unsigned ps[] = {1u, 2u, 4u, 8u, 16u};
    std::vector<std::function<double()>> tasks;
    for (unsigned tau : {2u, 4u})
        for (unsigned p : ps) {
            tasks.push_back([p, tau, n, k, tiles] {
                return runHorizontal(p, tau, n, k, tiles);
            });
            tasks.push_back([p, tau, n, k, tiles] {
                return runWarp(p, tau, n, k, tiles);
            });
        }
    auto results = sweepValues(tasks, jobs);
    std::size_t idx = 0;
    for (unsigned tau : {2u, 4u}) {
        TextTable t(strfmt("tau = %u", tau));
        t.header({"P", "horizontal", "linear (warp)"});
        for (unsigned p : ps) {
            t.row({strfmt("%u", p),
                   strfmt("%.3f", results[idx]),
                   strfmt("%.3f", results[idx + 1])});
            idx += 2;
        }
        std::printf("%s\n", t.render().c_str());
    }
    std::printf("Shape: the horizontal array scales while host "
                "bandwidth lasts; the linear array pays tile-fit,\n"
                "forwarding and fill/drain costs, and saturates "
                "earlier — the paper's argument for the horizontal\n"
                "organization at small P (section 3.3).\n");
    return 0;
}
