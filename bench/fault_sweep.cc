/**
 * @file
 * Resilience sweep (docs/RESILIENCE.md): fault rate x protection mode.
 *
 * Each case runs the same three-job GEMM workload on a 4-cell system
 * under a deterministic fault plan and reports whether the run
 * completed, whether every result still matches the blasref oracle,
 * and what the surviving took: retries, dead cells, and extra cycles
 * per injected fault. The unprotected rows are the control group —
 * faults land silently and the numbers show corrupted results or
 * outright deadlock — while the detect/correct rows run with the full
 * recovery stack (SECDED parity, transaction timeout, retry + replay,
 * dead-cell degradation) and are expected to complete correctly.
 *
 * A forced dead-cell case (explicit permanent hang) exercises the last
 * line of defense: the cell exhausts its retry budget, is marked dead,
 * and the remaining jobs are re-planned onto the survivors.
 *
 * --smoke cuts the matrix to the protected rows and smaller problems
 * (the CI soak leg); --faults= and --parity= are intentionally NOT
 * honored here (every case pins its own plan), but the engine-side
 * flags (--engine=, --sim-threads=, --no-skip) are — every mode
 * reproduces the table bit-identically, and the chosen engine is
 * stamped into the BENCH json config.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "blasref/blas3.hh"
#include "common/error.hh"
#include "common/random.hh"
#include "planner/jobs.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

struct CaseResult
{
    Cycle cycles = 0;
    bool survived = false;   //!< run() returned (no deadlock)
    double completion = 0.0; //!< committed jobs / planned jobs
    bool correct = false;    //!< every output matches the oracle
    std::uint64_t injected = 0;
    std::uint64_t retries = 0;
    std::uint64_t deadCells = 0;
    std::string note;
};

struct SweepCase
{
    const char *name;
    fault::ParityMode parity;
    bool recovery;
    std::string spec;
};

CaseResult
runCase(const SweepCase &sc, bool smoke)
{
    const unsigned cells = 4;
    const std::size_t m = smoke ? 12 : 24;
    const std::size_t k = smoke ? 8 : 16;
    const std::size_t n = smoke ? 12 : 24;
    const unsigned njobs = 3;

    auto cfg = timingConfig(cells, 1024, 2, std::size_t(1) << 20);
    // Real arithmetic, so silent corruption is observable in the
    // results (the timing-only token mode would hide it).
    cfg.cell.fp = cell::FpKind::Native;
    cfg.cell.parity = sc.parity;
    cfg.faults = fault::parseFaultSpec(sc.spec);
    cfg.host.recovery.enabled = sc.recovery;
    cfg.host.recovery.timeoutCycles = 4000;
    cfg.host.recovery.retryBudget = 3;
    // An unrecoverable run should fail fast, not spin out the default
    // two-million-cycle watchdog.
    cfg.watchdogCycles = 100000;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    Rng rng(9);
    std::vector<blasref::Matrix> want(njobs);
    std::vector<MatRef> cr(njobs), ar(njobs), br(njobs);
    for (unsigned j = 0; j < njobs; ++j) {
        blasref::Matrix c(m, n), a(m, k), b(k, n);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        want[j] = c;
        blasref::gemm(want[j], a, b);
        cr[j] = allocMat(sys.memory(), m, n);
        ar[j] = allocMat(sys.memory(), m, k);
        br[j] = allocMat(sys.memory(), k, n);
        storeMat(sys.memory(), cr[j], c);
        storeMat(sys.memory(), ar[j], a);
        storeMat(sys.memory(), br[j], b);
    }

    JobRunner jobs(sys);
    for (unsigned j = 0; j < njobs; ++j) {
        jobs.add(strfmt("gemm%u", j),
                 [&sys, c = cr[j], a = ar[j], b = br[j]](
                     std::uint32_t alive) {
                     LinalgPlanner plan(sys, alive);
                     plan.matUpdate(c, a, b);
                     return plan.takeOps();
                 });
    }
    jobs.dispatch();

    CaseResult r;
    try {
        r.cycles = sys.run();
        r.survived = true;
    } catch (const Error &e) {
        r.cycles = sys.engine().now();
        r.note = e.what();
    }
    if (sc.recovery)
        r.completion =
            double(sys.host().completedJobs().size()) / njobs;
    else
        r.completion = r.survived ? 1.0 : 0.0;
    if (r.survived) {
        bool ok = true;
        for (unsigned j = 0; j < njobs; ++j) {
            float d = loadMat(sys.memory(), cr[j]).maxAbsDiff(want[j]);
            if (std::getenv("OPAC_FAULT_SWEEP_DEBUG"))
                std::fprintf(stderr, "  job %u maxAbsDiff %g\n", j, d);
            ok = ok && d < 1e-3f;
        }
        r.correct = ok;
    }
    if (const fault::Injector *inj = sys.injector())
        r.injected = inj->injected();
    r.retries = sys.host().retries();
    r.deadCells = sys.host().deadCells();
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initSimFlags(argc, argv);
    const bool smoke = argFlag(argc, argv, "--smoke");

    // Random plans draw from every recoverable kind; the horizon is
    // sized to the fault-free run so rates translate directly to
    // expected fault counts (~3 at "low", ~12 at "high").
    const unsigned horizon = smoke ? 2500 : 12000;
    const std::string lowSpec = strfmt(
        "seed=7,rate=%u,horizon=%u,kinds=flip+drop+hang+halt+mem",
        3000000u / horizon, horizon);
    const std::string highSpec = strfmt(
        "seed=7,rate=%u,horizon=%u,kinds=flip+drop+hang+halt+mem",
        12000000u / horizon, horizon);

    std::vector<SweepCase> sweep;
    if (!smoke) {
        sweep.push_back({"off_none", fault::ParityMode::Off, false, ""});
        sweep.push_back(
            {"off_low", fault::ParityMode::Off, false, lowSpec});
        sweep.push_back(
            {"off_high", fault::ParityMode::Off, false, highSpec});
        sweep.push_back(
            {"detect_none", fault::ParityMode::Detect, true, ""});
        sweep.push_back(
            {"detect_low", fault::ParityMode::Detect, true, lowSpec});
        sweep.push_back(
            {"detect_high", fault::ParityMode::Detect, true, highSpec});
    }
    sweep.push_back(
        {"correct_none", fault::ParityMode::Correct, true, ""});
    sweep.push_back(
        {"correct_low", fault::ParityMode::Correct, true, lowSpec});
    if (!smoke)
        sweep.push_back(
            {"correct_high", fault::ParityMode::Correct, true, highSpec});
    // The degradation case: cell 1 hangs permanently at cycle 2500,
    // exhausts the retry budget, is marked dead, and the uncommitted
    // jobs are re-planned onto the three survivors.
    sweep.push_back({"correct_deadcell", fault::ParityMode::Correct,
                     true, "at=2500/hang/1/0"});

    BenchJsonWriter json("fault_sweep");
    json.config("cells", 4);
    json.config("tf", 1024);
    json.config("tau", 2);
    json.config("fp", "native");
    json.config("jobs", 3);
    json.config("engine", sim::engineModeName(engineDefault()));
    json.config("sim_threads", long(simThreadsDefault()));
    json.config("smoke", smoke ? "yes" : "no");

    TextTable t("fault sweep: 3-job GEMM workload, 4 cells "
                "(completion and correctness vs the blasref oracle)");
    t.header({"case", "cycles", "done", "complete", "correct", "faults",
              "retries", "dead", "ovh/fault"});

    const std::size_t m = smoke ? 12 : 24;
    const std::size_t k = smoke ? 8 : 16;
    const std::size_t n = smoke ? 12 : 24;
    double flops = 3.0 * 2.0 * double(m) * double(k) * double(n);

    // Fault-free cycles per parity mode, for the overhead column.
    std::vector<std::pair<fault::ParityMode, Cycle>> base;
    for (const SweepCase &sc : sweep) {
        CaseResult r = runCase(sc, smoke);
        double overhead = 0.0;
        if (r.injected == 0) {
            base.emplace_back(sc.parity, r.cycles);
        } else {
            for (auto &[p, cy] : base)
                if (p == sc.parity && r.survived && r.cycles > cy)
                    overhead =
                        double(r.cycles - cy) / double(r.injected);
        }
        t.row({sc.name, strfmt("%llu", (unsigned long long)r.cycles),
               r.survived ? "yes" : "DEADLOCK",
               strfmt("%.2f", r.completion), r.correct ? "yes" : "NO",
               strfmt("%llu", (unsigned long long)r.injected),
               strfmt("%llu", (unsigned long long)r.retries),
               strfmt("%llu", (unsigned long long)r.deadCells),
               strfmt("%.0f", overhead)});
        json.record(sc.name, r.cycles,
                    r.survived ? flops / double(r.cycles) : 0.0,
                    r.survived ? flops / double(r.cycles) / 8.0 : 0.0,
                    {{"completion_rate", r.completion},
                     {"correct", r.correct ? 1.0 : 0.0},
                     {"faults_injected", double(r.injected)},
                     {"retries", double(r.retries)},
                     {"dead_cells", double(r.deadCells)},
                     {"overhead_per_fault", overhead}});
        if (!r.note.empty())
            std::printf("  %s: %s\n", sc.name, r.note.c_str());
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Unprotected rows corrupt silently or deadlock; with SECDED "
        "parity plus transactional retry every case\ncompletes with "
        "oracle-identical results, including the forced dead-cell "
        "degradation.\n");
    return 0;
}
