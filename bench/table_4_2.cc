/**
 * @file
 * Reproduces tables 4.2a and 4.2b (section 4.2): the minimum matrix
 * size N and the per-cell local memory LM (words) needed for the
 * matrix update to run at one multiply-add per cycle per cell, for
 * first-generation RISC hosts (tau = 4) and superscalar hosts
 * (tau = 2).
 */

#include <cstdio>

#include "analytic/models.hh"
#include "common/logging.hh"
#include "common/table.hh"

using namespace opac;

namespace
{

void
printTable(const char *title, unsigned tau)
{
    TextTable t(title);
    std::vector<std::string> head = {"P"};
    std::vector<std::string> n_row = {"N"};
    std::vector<std::string> lm_row = {"LM"};
    for (unsigned p = 1; p <= 16; p *= 2) {
        auto r = analytic::matUpdateRequirement(tau, p);
        head.push_back(strfmt("%u", p));
        n_row.push_back(strfmt("%zu", r.minN));
        lm_row.push_back(strfmt("%zu", r.words));
    }
    t.header(head);
    t.row(n_row);
    t.row(lm_row);
    std::printf("%s\n", t.render().c_str());
}

} // anonymous namespace

int
main()
{
    std::printf("Paper tables 4.2a/4.2b: local-memory sizing of the "
                "matrix update A(N,N) += B*C\n"
                "(minimum N with 4*N^2 transfers <= N^3/P per-cell "
                "multiply-adds; LM = N^2/P)\n\n");
    printTable("Table 4.2a (tau = 4, first-generation RISC)", 4);
    printTable("Table 4.2b (tau = 2, superscalar)", 2);
    std::printf("Paper values: 4.2a N = {16,32,64,128,256}, "
                "LM = {256,512,1024,2048,4096};\n"
                "              4.2b N = {8,16,32,64,128}, "
                "LM = {64,128,256,512,1024}.\n");
    return 0;
}
