/**
 * @file
 * Ablation for section 5.2: FP pipeline depth versus performance on
 * kernels dominated by short loops and serial round trips. The paper's
 * point is that with block sizes capped by the FIFO size, inner loops
 * are short (about 20-50 iterations) and the control mechanisms of
 * [Se91] must keep short loops at asymptotic speed; deeper FP
 * pipelines stress exactly the same spots (drain at loop boundaries,
 * pivot recurrences in LU).
 */

#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

copro::CoprocConfig
configWithDepth(unsigned p, std::size_t tf, unsigned tau,
                unsigned mul_lat, unsigned add_lat)
{
    auto cfg = timingConfig(p, tf, tau);
    cfg.cell.mulLatency = mul_lat;
    cfg.cell.addLatency = add_lat;
    return cfg;
}

double
runMatUpdate(const copro::CoprocConfig &cfg, std::size_t n,
             std::size_t k)
{
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::matUpdateMultiplyAdds(n, k) / double(cycles);
}

double
runLu(const copro::CoprocConfig &cfg, std::size_t n)
{
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 2.0f);
    plan.lu(a);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::luMultiplyAdds(n) / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const unsigned jobs = initSimFlags(argc, argv);
    const unsigned lats[] = {1u, 2u, 3u, 5u, 8u};
    std::printf("FP pipeline depth ablation (single cell, tau = 2, "
                "Tf = 512 -> 22x22 blocks).\n\n");
    TextTable t("multiply-adds per cycle vs multiplier/adder latency");
    t.header({"Lm=La", "matupdate N=22 K=100", "LU N=44", "LU N=88"});
    std::vector<std::function<double()>> tasks;
    for (unsigned lat : lats) {
        auto cfg = configWithDepth(1, 512, 2, lat, lat);
        tasks.push_back([cfg] { return runMatUpdate(cfg, 22, 100); });
        tasks.push_back([cfg] { return runLu(cfg, 44); });
        tasks.push_back([cfg] { return runLu(cfg, 88); });
    }
    auto results = sweepValues(tasks, jobs);
    std::size_t idx = 0;
    for (unsigned lat : lats) {
        t.row({strfmt("%u", lat),
               strfmt("%.3f", results[idx]),
               strfmt("%.3f", results[idx + 1]),
               strfmt("%.3f", results[idx + 2])});
        idx += 3;
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The streaming matrix update is latency-tolerant "
                "(recurrences are queue-length apart); LU loses\n"
                "ground with depth because every pivot step serializes "
                "a scale pass behind the pipeline drain.\n");
    return 0;
}
