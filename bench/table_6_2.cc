/**
 * @file
 * Reproduces table 6.2 (section 6.2): the two-dimensional 5x5
 * convolution of a 1024x1024 image, for P in {1,4,16}, Tf in
 * {512, 2048}, tau in {2, 4}. Results in *useful* multiply-adds per
 * cycle (frontier recomputation excluded), as in the paper.
 *
 * Paper values for comparison:
 *            Tf=512,t=2  Tf=512,t=4  Tf=2048,t=2  Tf=2048,t=4
 *   P = 1      0.925       0.925        0.980        0.980
 *   P = 4      3.700       2.941        3.919        3.07
 *   P = 16     5.882       2.941        5.882        2.941
 *
 * (Our blocks need only a one-sided q-1 halo, so the P=16 ceilings are
 * slightly above the paper's two-sided-halo 2.94/5.88 — see the bound
 * column.)
 */

#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

struct ConvResult
{
    double ma_per_cycle;
    double bound;
    std::size_t wu;
    Cycle cycles;
    double wall; //!< wall-clock seconds of the sys.run() call
};

ConvResult
runCase(unsigned p_cells, std::size_t tf, unsigned tau, std::size_t n,
        std::size_t m, FastTierReportSession &ft)
{
    const unsigned p = 5, q = 5;
    copro::Coprocessor sys(timingConfig(p_cells, tf, tau));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    // Transposed padded image; contents are irrelevant in timing mode,
    // so the (zero) allocation suffices.
    MatRef image_t = allocMat(mem, m + q - 1, n + p);
    MatRef weights = allocMat(mem, p, q);
    MatRef out_t = allocMat(mem, m, n);
    auto geom = plan.conv2d(image_t, weights, out_t, n, m);
    plan.commit();
    double t0 = wallSeconds();
    Cycle cycles = sys.run();
    double t1 = wallSeconds();
    ConvResult r;
    r.ma_per_cycle = double(geom.usefulMas) / double(cycles);
    // Bandwidth bound uses the actual block width chosen.
    r.bound = analytic::convBandwidthBound(p_cells, tau, m, geom.wu, p,
                                           q);
    r.wu = geom.wu;
    r.cycles = cycles;
    r.wall = t1 - t0;
    ft.add(strfmt("P%u_Tf%zu_tau%u", p_cells, tf, tau), sys);
    return r;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t n = std::size_t(argValue(argc, argv, "--rows",
                                               1024));
    const std::size_t m = std::size_t(argValue(argc, argv, "--cols",
                                               1024));
    const unsigned jobs = initSimFlags(argc, argv);
    std::printf("Paper table 6.2: 5x5 convolution of a %zux%zu image, "
                "useful multiply-adds per cycle.\n\n", n, m);

    const unsigned cells[] = {1, 4, 16};
    const std::pair<std::size_t, unsigned> configs[] = {
        {512, 4}, {512, 2}, {2048, 4}, {2048, 2}};

    FastTierReportSession ft(argc, argv);
    std::vector<std::function<ConvResult()>> tasks;
    for (unsigned p : cells)
        for (auto [tf, tau] : configs)
            tasks.push_back([p, tf = tf, tau = tau, n, m, &ft] {
                return runCase(p, tf, tau, n, m, ft);
            });
    auto results = sim::sweep<ConvResult>(tasks, jobs);
    ft.finish();

    BenchJsonWriter json("table_6_2");
    json.config("rows", long(n));
    json.config("cols", long(m));
    json.config("engine", sim::engineModeName(engineDefault()));
    json.config("sim_threads", long(simThreadsDefault()));
    json.config("fast_tier", fastTierDefault() ? "on" : "off");

    std::size_t idx = 0;
    TextTable t("measured (bound) [block width]");
    t.header({"", "Tf=512,t=4", "Tf=512,t=2", "Tf=2048,t=4",
              "Tf=2048,t=2"});
    for (unsigned p : cells) {
        std::vector<std::string> row = {strfmt("P = %u", p)};
        for (auto [tf, tau] : configs) {
            ConvResult r = results[idx++];
            row.push_back(strfmt("%.3f (%.2f) [%zu]", r.ma_per_cycle,
                                 r.bound, r.wu));
            double fpc = 2.0 * r.ma_per_cycle;
            json.record(strfmt("P%u_Tf%zu_tau%u", p, tf, tau), r.cycles,
                        fpc, fpc / (2.0 * p),
                        {{"ma_per_cycle", r.ma_per_cycle},
                         {"sim_rate", simRate(r.cycles, r.wall)}});
        }
        t.row(row);
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Paper: P=1: 0.925/0.925/0.980/0.980; "
                "P=4: 2.941/3.700/3.07/3.919; "
                "P=16: 2.941/5.882/2.941/5.882\n"
                "(columns as above). Shape checks: P=16 pinned to the "
                "host-bandwidth bound at both FIFO sizes; Tf matters\n"
                "at P=1 (block width grows); P=4 limited by memory at "
                "tau=4 only.\n");
    return 0;
}
