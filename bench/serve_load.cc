/**
 * @file
 * Open-loop load bench for the coprocessor job server
 * (docs/SERVING.md): arrival rate x shard count x fault plan.
 *
 * Each case replays a Poisson arrival process (exponential
 * interarrivals at a fixed rate in jobs per simulated megacycle) of
 * mixed kernels — GEMM, LU, conv2d, batched FFT — from three tenants
 * with occasional high-priority submissions, then drains the server
 * and reports end-to-end numbers: jobs per megacycle, p50/p99 latency,
 * shard utilization, failovers and dead cells. The load is open-loop:
 * arrivals do not wait for completions, so queueing delay shows up
 * directly in the latency percentiles as the rate approaches pool
 * capacity.
 *
 * The faulted cases are the point of the bench. "flips" soaks the
 * pool in random bit flips that SECDED parity absorbs; "shardkill"
 * hangs both cells of shard 0 mid-traffic so its uncommitted jobs
 * fail over to the survivor. In both, completion_rate must hold at
 * 1.0 and every completed job must match the blasref oracle — faults
 * degrade throughput and latency, never correctness — and bench_diff
 * gates on exactly that against bench/baselines/BENCH_serve_load.json.
 *
 * Everything reported is simulated-time deterministic: reruns (and
 * --engine=/--sim-threads= changes, which this bench honors via
 * initSimFlags) are byte-identical, so the committed baseline pins
 * scheduler behavior, not just speed. --smoke shrinks the grid for
 * the sanitizer legs.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "common/random.hh"
#include "serve/server.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::serve;

namespace
{

struct LoadCase
{
    const char *name;
    unsigned shards;
    double rate; //!< arrivals per simulated megacycle
    unsigned njobs;
    std::string faults;    //!< base plan, seed-mixed into every shard
    std::string killShard0; //!< targeted plan for shard 0 only
};

struct CaseOut
{
    Cycle makespan = 0;
    unsigned accepted = 0;
    unsigned completed = 0;
    unsigned failed = 0;
    unsigned rejected = 0;
    bool correct = true;
    double p50 = 0.0, p99 = 0.0;
    double utilization = 0.0;
    unsigned failovers = 0;
    unsigned deadCells = 0;
    unsigned batches = 0;
    double flopsDone = 0.0;
    /** Simulated cycles per wall second, aggregated over all shards
     *  (each shard simulates its own machine on its own worker). */
    double simRate = 0.0;
    // Fairness / SLO extras (informational, never gated).
    unsigned deadlineMiss = 0;
    unsigned tenantAccepted[3] = {0, 0, 0};
    unsigned tenantCompleted[3] = {0, 0, 0};
};

/** Observability artifact paths for one case ("" = don't write). */
struct ObsOut
{
    std::string metrics;   //!< Server::metricsJson()
    std::string spans;     //!< Server::spansJson()
    std::string spanTrace; //!< chrome://tracing span rendering
    std::string prom;      //!< Prometheus text exposition
    std::string flightDir; //!< flight-recorder postmortems
};

/** Crash-durability knobs (--checkpoint-dir and friends). */
struct DurOpts
{
    std::string dir;          //!< per-case subdirs created under this
    unsigned every = 1;       //!< batches between shard checkpoints
    unsigned crashAfter = 0;  //!< crash+restart after N deliveries
    bool resume = false;      //!< resume from the directory up front
};

void
writeText(const std::string &path, const std::string &text,
          const char *what)
{
    snap::ensureParentDir(path);
    std::ofstream out(path);
    if (!out) {
        std::fprintf(stderr, "serve_load: cannot write %s to '%s'\n",
                      what, path.c_str());
        return;
    }
    out << text;
    std::printf("serve_load: wrote %s to %s\n", what, path.c_str());
}

/** Draw the next request of the mixed-kind multi-tenant workload. */
JobRequest
drawRequest(Rng &rng)
{
    JobRequest r;
    r.seed = rng.next() | 1;
    r.tenant = std::uint32_t(rng.range(0, 2));
    r.priority = rng.uniform() < 0.125f ? 4u : 0u;
    switch (rng.range(0, 3)) {
    case 0:
        r.kind = KernelKind::Gemm;
        r.m = r.k = r.n = 16;
        break;
    case 1:
        r.kind = KernelKind::Lu;
        r.n = 16;
        break;
    case 2:
        r.kind = KernelKind::Conv2d;
        r.n = 12;
        r.m = 16;
        r.p = r.q = 3;
        break;
    default:
        r.kind = KernelKind::Fft;
        r.n = 64;
        r.batch = 2;
        break;
    }
    return r;
}

CaseOut
runCase(const LoadCase &lc, const ObsOut &obs, const DurOpts &dur)
{
    ServeConfig cfg;
    cfg.shards = lc.shards;
    cfg.shard.cells = 2;
    cfg.shard.tf = 512;
    cfg.shard.memoryWords = 1 << 20;
    cfg.shard.skipIdleCycles = skipDefault();
    cfg.shard.engineMode = engineDefault();
    cfg.shard.simThreads = simThreadsDefault();
    cfg.shard.fastTier = fastTierDefault();
    cfg.sched.batchMax = 2;
    if (!lc.faults.empty())
        cfg.faults = fault::parseFaultSpec(lc.faults);
    if (!lc.killShard0.empty()) {
        // A permanent hang should exhaust recovery quickly, not
        // grind through the default retry budget first.
        cfg.shard.retryBudget = 1;
        cfg.shardFaults.emplace_back(
            0u, fault::parseFaultSpec(lc.killShard0));
    }
    // Open-loop Poisson arrivals: exponential interarrival times at
    // lc.rate jobs per megacycle, from a per-case deterministic
    // stream. Drawn up front so a crash-restarted server can re-submit
    // the identical workload.
    Rng rng(17);
    double t = 0.0;
    std::vector<JobRequest> reqs;
    for (unsigned i = 0; i < lc.njobs; ++i) {
        t += -std::log(1.0 - double(rng.uniform())) * 1e6 / lc.rate;
        JobRequest r = drawRequest(rng);
        r.arrival = Cycle(t);
        // Every 4th job carries an SLO deadline. Index-based (no rng
        // draw) and generous enough that deadline admission never
        // rejects, so the committed baseline's scheduling is
        // untouched; misses are observability-only.
        if (i % 4 == 3)
            r.deadline = 8000;
        reqs.push_back(r);
    }

    auto makeServer = [&cfg, &lc, &dur](bool resume,
                                        unsigned crash_after) {
        ServeConfig c = cfg;
        if (!dur.dir.empty())
            c.checkpointDir = dur.dir + "/" + lc.name;
        c.checkpointEvery = dur.every;
        c.resume = resume;
        c.crashAfterDeliveries = crash_after;
        return std::make_unique<Server>(c);
    };
    auto submitAll = [&reqs](Server &s) {
        std::vector<std::future<JobResult>> f;
        f.reserve(reqs.size());
        for (const JobRequest &r : reqs)
            f.push_back(s.submit(r));
        return f;
    };

    auto srvp = makeServer(dur.resume, dur.crashAfter);
    double wall0 = wallSeconds();
    std::vector<std::future<JobResult>> futs = submitAll(*srvp);
    try {
        srvp->drain();
    } catch (const Error &e) {
        // The --crash-after hook fired mid-drain. Model a process
        // restart: throw the wounded server away and bring up a fresh
        // one over the same checkpoint directory — journaled results
        // are re-delivered without re-execution, everything else runs
        // from the last shard checkpoints.
        std::printf("serve_load: %s; restarting with --resume\n",
                    e.what());
        srvp.reset();
        srvp = makeServer(true, 0);
        futs = submitAll(*srvp);
        srvp->drain();
    }
    Server &srv = *srvp;
    const double wall = wallSeconds() - wall0;

    CaseOut out;
    std::vector<double> lat;
    for (unsigned i = 0; i < lc.njobs; ++i) {
        JobResult r = futs[i].get();
        const unsigned tenant = std::min(reqs[i].tenant, 2u);
        switch (r.status) {
        case JobStatus::Completed:
            ++out.accepted;
            ++out.completed;
            ++out.tenantAccepted[tenant];
            ++out.tenantCompleted[tenant];
            out.correct = out.correct && r.correct;
            out.flopsDone += estimatedFlops(reqs[i]);
            lat.push_back(double(r.latency()));
            if (r.missedDeadline())
                ++out.deadlineMiss;
            break;
        case JobStatus::Failed:
            ++out.accepted;
            ++out.failed;
            ++out.tenantAccepted[tenant];
            break;
        case JobStatus::Rejected:
            ++out.rejected;
            break;
        }
    }
    std::sort(lat.begin(), lat.end());
    auto pct = [&lat](double p) {
        if (lat.empty())
            return 0.0;
        return lat[std::size_t(double(lat.size() - 1) * p / 100.0)];
    };
    out.p50 = pct(50.0);
    out.p99 = pct(99.0);
    out.makespan = srv.makespan();
    out.utilization = srv.utilization();
    out.failovers = srv.failovers();
    out.batches = srv.batches();
    for (unsigned s = 0; s < srv.numShards(); ++s)
        out.deadCells += cfg.shard.cells - srv.shard(s).aliveCells();
    // Simulator throughput: cycles actually simulated across the
    // shard pool per wall second of this case (submit through drain).
    std::uint64_t simCycles = 0;
    for (unsigned s = 0; s < srv.numShards(); ++s)
        simCycles += srv.shard(s).busyCycles();
    out.simRate = wall > 0.0 ? double(simCycles) / wall : 0.0;

    // Observability artifacts for this case, if requested. All of
    // these are virtual-time deterministic (spansJson omits wall
    // clocks), so CI can golden-compare them across engine modes.
    if (!obs.metrics.empty())
        writeText(obs.metrics, srv.metricsJson(), "metrics json");
    if (!obs.spans.empty())
        writeText(obs.spans, srv.spansJson(), "span json");
    if (!obs.prom.empty())
        writeText(obs.prom, srv.metricsProm(), "prometheus metrics");
    if (!obs.spanTrace.empty()) {
        snap::ensureParentDir(obs.spanTrace);
        std::ofstream tf(obs.spanTrace);
        if (tf) {
            srv.writeSpanChromeTrace(tf);
            std::printf("serve_load: wrote span trace to %s\n",
                        obs.spanTrace.c_str());
        } else {
            std::fprintf(stderr,
                          "serve_load: cannot write span trace to "
                          "'%s'\n", obs.spanTrace.c_str());
        }
    }
    if (!obs.flightDir.empty()) {
        const auto &dumps = srv.flightDumps();
        for (std::size_t i = 0; i < dumps.size(); ++i)
            writeText(obs.flightDir + "/flight_" + lc.name + "_"
                          + std::to_string(i) + ".json",
                      dumps[i].second, "flight dump");
        std::printf("serve_load: %llu flight trigger(s), %zu dump(s) "
                    "retained\n",
                    (unsigned long long)srv.flightTriggers(),
                    dumps.size());
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    initSimFlags(argc, argv);
    const bool smoke = argFlag(argc, argv, "--smoke");

    // Observability artifacts: dump the selected case's spans,
    // metrics, prometheus exposition, span trace, and flight-recorder
    // postmortems. Defaults to s2_shardkill — the case where the
    // flight recorder actually fires.
    ObsOut obs;
    obs.metrics = argText(argc, argv, "--metrics");
    obs.spans = argText(argc, argv, "--spans");
    obs.spanTrace = argText(argc, argv, "--span-trace");
    obs.prom = argText(argc, argv, "--prom");
    obs.flightDir = argText(argc, argv, "--flight-dir");
    if (!obs.flightDir.empty())
        snap::ensureDirectories(obs.flightDir);
    std::string obsCase = argText(argc, argv, "--obs-case");
    if (obsCase.empty())
        obsCase = "s2_shardkill";

    // Crash durability (docs/RESILIENCE.md, "Checkpoint & replay"):
    //   --checkpoint-dir=DIR    journal + per-shard checkpoints under
    //                           DIR/<case>/ (directories are created)
    //   --checkpoint-every=N    batches between shard checkpoints
    //   --crash-after=N         simulate a crash after N deliveries,
    //                           then restart the server with resume
    //                           (requires --checkpoint-dir)
    //   --resume                resume from --checkpoint-dir up front
    DurOpts dur;
    dur.dir = argText(argc, argv, "--checkpoint-dir");
    std::string every = argText(argc, argv, "--checkpoint-every");
    if (!every.empty())
        dur.every = unsigned(std::atol(every.c_str()));
    std::string crash = argText(argc, argv, "--crash-after");
    if (!crash.empty())
        dur.crashAfter = unsigned(std::atol(crash.c_str()));
    dur.resume = argFlag(argc, argv, "--resume");
    if (dur.crashAfter != 0 && dur.dir.empty()) {
        std::fprintf(stderr, "serve_load: --crash-after needs "
                             "--checkpoint-dir\n");
        return 2;
    }

    // Random flips everywhere vs a targeted mid-traffic shard kill.
    const std::string flips =
        "seed=5,rate=40,horizon=400000,kinds=flip";
    const std::string kill = "at=30000/hang/0/0,at=30100/hang/1/0";

    std::vector<LoadCase> grid;
    if (smoke) {
        grid.push_back({"s2_light", 2, 50.0, 8, "", ""});
        grid.push_back({"s2_flips", 2, 100.0, 8, flips, ""});
        grid.push_back({"s2_shardkill", 2, 100.0, 8, "", kill});
    } else {
        grid.push_back({"s1_light", 1, 50.0, 24, "", ""});
        grid.push_back({"s2_light", 2, 50.0, 24, "", ""});
        grid.push_back({"s2_heavy", 2, 400.0, 32, "", ""});
        grid.push_back({"s4_heavy", 4, 400.0, 32, "", ""});
        grid.push_back({"s2_flips", 2, 100.0, 32, flips, ""});
        grid.push_back({"s2_shardkill", 2, 100.0, 32, "", kill});
    }

    BenchJsonWriter json("serve_load");
    json.config("cells_per_shard", 2);
    json.config("tf", 512);
    json.config("batch_max", 2);
    json.config("engine", sim::engineModeName(engineDefault()));
    json.config("sim_threads", long(simThreadsDefault()));
    json.config("fast_tier", fastTierDefault() ? "on" : "off");
    json.config("smoke", smoke ? "yes" : "no");

    TextTable t("serve_load: open-loop Poisson load on the job server "
                "(2-cell shards, mixed kernels, three tenants)");
    t.header({"case", "jobs", "done", "rej", "makespan", "jobs/Mcyc",
              "p50", "p99", "util", "fovr", "dead"});

    for (const LoadCase &lc : grid) {
        CaseOut r =
            runCase(lc, lc.name == obsCase ? obs : ObsOut(), dur);
        double mcyc = double(r.makespan) / 1e6;
        double served = mcyc > 0.0 ? double(r.completed) / mcyc : 0.0;
        double completion =
            r.accepted ? double(r.completed) / double(r.accepted) : 0.0;
        double fpc = r.makespan
                         ? r.flopsDone / double(r.makespan)
                         : 0.0;
        // Peak: 2 cells/shard x one multiply-add (2 flops) per cycle.
        double peak = 4.0 * double(lc.shards);
        t.row({lc.name, strfmt("%u", lc.njobs),
               strfmt("%u", r.completed), strfmt("%u", r.rejected),
               strfmt("%llu", (unsigned long long)r.makespan),
               strfmt("%.1f", served), strfmt("%.0f", r.p50),
               strfmt("%.0f", r.p99), strfmt("%.2f", r.utilization),
               strfmt("%u", r.failovers), strfmt("%u", r.deadCells)});
        json.record(lc.name, r.makespan, fpc, fpc / peak,
                    {{"completion_rate", completion},
                     {"correct", r.correct ? 1.0 : 0.0},
                     {"accepted", double(r.accepted)},
                     {"rejected", double(r.rejected)},
                     {"p50_latency", r.p50},
                     {"p99_latency", r.p99},
                     {"utilization", r.utilization},
                     {"failovers", double(r.failovers)},
                     {"dead_cells", double(r.deadCells)},
                     {"batches", double(r.batches)},
                     {"sim_rate", r.simRate},
                     {"deadline_miss", double(r.deadlineMiss)},
                     {"t0_completion_rate",
                      r.tenantAccepted[0]
                          ? double(r.tenantCompleted[0])
                                / double(r.tenantAccepted[0])
                          : 1.0},
                     {"t1_completion_rate",
                      r.tenantAccepted[1]
                          ? double(r.tenantCompleted[1])
                                / double(r.tenantAccepted[1])
                          : 1.0},
                     {"t2_completion_rate",
                      r.tenantAccepted[2]
                          ? double(r.tenantCompleted[2])
                                / double(r.tenantAccepted[2])
                          : 1.0}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf(
        "Open-loop arrivals: queueing delay lands in p99 as the rate "
        "approaches pool capacity. Under the\nfaulted cases the pool "
        "keeps completing every accepted job correctly — bit flips "
        "cost retries, a\ndead shard costs failovers and throughput, "
        "neither costs correctness.\n");
    return 0;
}
