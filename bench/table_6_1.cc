/**
 * @file
 * Reproduces table 6.1 (section 6.1): the matrix update
 * A(N,N) += B(N,K) * C(K,N) on one square tile of maximum size, i.e.
 * the greatest N with N^2 a multiple of P and N^2 <= Tf * P. Sweeps
 * P in {1,4,16}, Tf in {512, 2048}, tau in {2, 4} and
 * K in {40, 100, 300, 1000}; results normalized in multiply-adds per
 * cycle (whole coprocessor).
 *
 * The paper's table values were lost in the source scan; its stated
 * anchors are (a) asymptotic performance "very close to one
 * multiply-add per cycle [per cell]" outside the bandwidth-bound
 * corner, and (b) the tau=4, Tf=512, P=16 corner where feeding one
 * iteration costs 704 = 4*(88+88) host cycles against 484 multiply-
 * adds per cell (an 11.0 MA/cycle ceiling). The "bound" column prints
 * the analytic host-bandwidth ceiling next to each measurement.
 *
 * The fig. 5 sequencing reloads the reby queue with B(:,k) before
 * computing (the paper's explicit sequencing); bench/ablation_overlap
 * measures the variant that hides the reload.
 *
 * The sweep cases are independent simulations and run concurrently
 * (--jobs N, default hardware concurrency); tables, the JSON file and
 * the traced/sampled representative run are identical at any job
 * count.
 */

#include <algorithm>
#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

struct CaseSpec
{
    unsigned p;
    std::size_t tf;
    unsigned tau;
    std::size_t n;
    std::size_t k;
    bool traced;
    bool sampled;
    bool snapped;
};

struct CaseResult
{
    Cycle cycles;
    double r; //!< multiply-adds per cycle, whole coprocessor
    double maPerCycle;
    double wall;
};

CaseResult
runCase(const CaseSpec &spec, TraceSession &trace, StatsSession &stats,
        FastTierReportSession &ft, SnapshotSession &snapshot)
{
    auto cfg = timingConfig(spec.p, spec.tf, spec.tau);
    if (spec.sampled)
        cfg.statsSampleInterval = stats.sampleInterval();
    copro::Coprocessor sys(cfg);
    if (spec.sampled)
        stats.attach(sys);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), spec.n, spec.n);
    MatRef a = allocMat(sys.memory(), spec.n, spec.k);
    MatRef b = allocMat(sys.memory(), spec.k, spec.n);
    plan.matUpdate(c, a, b);
    plan.commit();
    if (spec.traced)
        trace.attach(sys);
    // Claiming restores --resume-from state (program, memory, clock)
    // over the freshly planned machine; runClaimed pauses at
    // --snapshot-at to write the checkpoint. Byte-identical either
    // way (docs/RESILIENCE.md, "Checkpoint & replay").
    if (spec.snapped)
        snapshot.attach(sys);
    double t0 = wallSeconds();
    Cycle cycles = spec.snapped ? snapshot.runClaimed() : sys.run();
    double wall = wallSeconds() - t0;
    double r = analytic::matUpdateMultiplyAdds(spec.n, spec.k)
               / double(cycles);
    if (spec.traced) {
        // The aggregator's measured MA occupancy must agree with the
        // occupancy computed from the analytic operation count — the
        // trace sees every issue event the datapath executes.
        trace.finish(sys.engine().now(), r);
    }
    if (spec.sampled)
        stats.finish();
    ft.add(strfmt("matupdate_P%u_Tf%zu_tau%u_K%zu", spec.p, spec.tf,
                  spec.tau, spec.k),
           sys);
    return {cycles, r, sys.stats().scalarValue("maPerCycle"), wall};
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool quick = argFlag(argc, argv, "--quick");
    const unsigned jobs = initSimFlags(argc, argv);
    BenchJsonWriter json("table_6_1");
    json.config("fp", "token");
    json.config("quick", quick ? 1 : 0);
    json.config("fast_tier", fastTierDefault() ? "on" : "off");
    TraceSession trace(argc, argv);
    StatsSession stats(argc, argv);
    FastTierReportSession ft(argc, argv);
    SnapshotSession snapshot(argc, argv);
    const unsigned cells[] = {1, 4, 16};
    const std::size_t tfs[] = {512, 2048};
    const unsigned taus[] = {2, 4};
    const std::size_t ks[] = {40, 100, 300,
                              std::size_t(quick ? 300 : 1000)};

    std::printf("Paper table 6.1: matrix update "
                "A(N,N) += B(N,K)*C(K,N), one maximum square tile.\n"
                "All values in multiply-adds per cycle (whole "
                "coprocessor; divide by P for per-cell).\n\n");

    std::vector<CaseSpec> specs;
    for (unsigned tau : taus) {
        for (std::size_t tf : tfs) {
            for (unsigned p : cells) {
                std::size_t n = analytic::paperTileN(p, tf);
                for (std::size_t k : ks) {
                    // Trace/sample the first compute-bound
                    // configuration (P=1, Tf=2048, tau=2, K=300)
                    // when asked.
                    bool rep = p == 1 && tf == 2048 && tau == 2
                               && k == 300;
                    bool traced = trace.wanted() && rep
                                  && std::none_of(
                                      specs.begin(), specs.end(),
                                      [](const CaseSpec &s) {
                                          return s.traced;
                                      });
                    bool sampled = stats.wanted() && rep
                                   && std::none_of(
                                       specs.begin(), specs.end(),
                                       [](const CaseSpec &s) {
                                           return s.sampled;
                                       });
                    bool snapped = snapshot.wanted() && rep
                                   && std::none_of(
                                       specs.begin(), specs.end(),
                                       [](const CaseSpec &s) {
                                           return s.snapped;
                                       });
                    specs.push_back(
                        {p, tf, tau, n, k, traced, sampled, snapped});
                }
            }
        }
    }

    std::vector<std::function<CaseResult()>> tasks;
    for (const CaseSpec &spec : specs)
        tasks.push_back(
            [&spec, &trace, &stats, &ft, &snapshot] {
                return runCase(spec, trace, stats, ft, snapshot);
            });
    auto results = sim::sweep<CaseResult>(tasks, jobs);
    ft.finish();

    std::size_t idx = 0;
    for (unsigned tau : taus) {
        for (std::size_t tf : tfs) {
            TextTable t(strfmt("Tf = %zu, tau = %u", tf, tau));
            t.header({"P", "N", "K=40", "K=100", "K=300",
                      quick ? "K=300" : "K=1000", "bound(K->inf)"});
            for (unsigned p : cells) {
                std::size_t n = analytic::paperTileN(p, tf);
                std::vector<std::string> row = {strfmt("%u", p),
                                                strfmt("%zu", n)};
                for (std::size_t k : ks) {
                    const CaseSpec &spec = specs[idx];
                    const CaseResult &res = results[idx];
                    ++idx;
                    json.record(
                        strfmt("matupdate_P%u_Tf%zu_tau%u_K%zu",
                               spec.p, spec.tf, spec.tau, spec.k),
                        res.cycles, 2.0 * res.r,
                        res.r / double(spec.p),
                        {{"ma_per_cycle", res.maPerCycle},
                         {"sim_rate", simRate(res.cycles, res.wall)}});
                    row.push_back(strfmt("%.3f", res.r));
                }
                row.push_back(strfmt(
                    "%.2f",
                    analytic::matUpdateAsymptoticBound(p, tau, n)));
                t.row(row);
            }
            std::printf("%s\n", t.render().c_str());
        }
    }
    std::printf("Anchor check (paper): tau=4, Tf=512, P=16 is host-"
                "bandwidth limited at 16*484/704 = 11.0 MA/cycle;\n"
                "all other configurations approach P multiply-adds "
                "per cycle as K grows, less the fig. 5 reload\n"
                "overhead (B column load + reby rotation per "
                "iteration).\n");
    return 0;
}
