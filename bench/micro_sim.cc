/**
 * @file
 * google-benchmark microbenchmarks of the simulator itself: softfloat
 * operation rates, FIFO operation rates and end-to-end cell simulation
 * speed. These guard the wall-clock cost of the big table sweeps.
 */

#include <benchmark/benchmark.h>

#include "cell/cell.hh"
#include "fifo/timed_fifo.hh"
#include "isa/builder.hh"
#include "softfloat/float32.hh"

using namespace opac;

namespace
{

void
BM_SoftfloatAdd(benchmark::State &state)
{
    sf::Context ctx;
    Word a = floatToWord(1.234f);
    Word b = floatToWord(-0.567f);
    for (auto _ : state) {
        a = sf::add(a, b, ctx);
        benchmark::DoNotOptimize(a);
        a = floatToWord(1.234f);
    }
}
BENCHMARK(BM_SoftfloatAdd);

void
BM_SoftfloatMulAdd(benchmark::State &state)
{
    sf::Context ctx;
    Word a = floatToWord(1.234f);
    Word b = floatToWord(-0.567f);
    Word c = floatToWord(3.14f);
    for (auto _ : state) {
        Word r = sf::mulAdd(a, b, c, ctx);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SoftfloatMulAdd);

void
BM_SoftfloatDiv(benchmark::State &state)
{
    sf::Context ctx;
    Word a = floatToWord(1.234f);
    Word b = floatToWord(-0.567f);
    for (auto _ : state) {
        Word r = sf::div(a, b, ctx);
        benchmark::DoNotOptimize(r);
    }
}
BENCHMARK(BM_SoftfloatDiv);

void
BM_FifoPushPop(benchmark::State &state)
{
    TimedFifo f("bench", 64);
    Cycle t = 0;
    for (auto _ : state) {
        f.push(42, t);
        ++t;
        benchmark::DoNotOptimize(f.pop(t));
    }
}
BENCHMARK(BM_FifoPushPop);

/**
 * End-to-end cell simulation speed on a self-contained GEMM-style
 * inner loop (sum cycles through the adder against regay, ret
 * recirculates as the multiplier operand).
 */
void
BM_CellInnerLoop(benchmark::State &state)
{
    using namespace isa;
    constexpr std::uint32_t iters = 1u << 16;
    for (auto _ : state) {
        cell::CellConfig cfg;
        cfg.fp = cell::FpKind(state.range(0));
        cell::Cell c("bench", cfg);
        ProgramBuilder b("spin");
        b.loopImm(iters, [&] {
            b.fma(src(Src::RetR), src(Src::RegAy), src(Src::Sum),
                  DstSum);
        });
        c.loadMicrocode(1, b.finish(), 0);
        c.tpi().push(1, 0);
        for (int i = 0; i < 16; ++i)
            c.sumQueue().push(floatToWord(1.0f), 0);
        c.retQueue().push(floatToWord(0.5f), 0);
        sim::Engine e(100000);
        e.add(&c);
        e.run();
        benchmark::DoNotOptimize(c.issuedOps());
    }
    state.SetItemsProcessed(std::int64_t(state.iterations()) * iters);
}
BENCHMARK(BM_CellInnerLoop)
    ->Arg(int(cell::FpKind::Soft))
    ->Arg(int(cell::FpKind::Native))
    ->Arg(int(cell::FpKind::Token));

} // anonymous namespace

BENCHMARK_MAIN();
