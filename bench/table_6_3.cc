/**
 * @file
 * Reproduces table 6.3 (section 6.3): blocked LU factorization of an
 * N x N matrix (fig. 7 recursion) for N in {44, 88, 176, 352, 704},
 * P in {1, 4, 16}, Tf in {512, 2048}, tau in {2, 4}. Results in
 * multiply-adds per cycle.
 *
 * Paper values (Tf=512):
 *    tau=2:  N:    44    88   176   352   704
 *      P=1       0.48  0.66  0.85  0.95  0.96
 *      P=4       0.89  1.67  2.62  3.37  3.60
 *      P=16      1.03  2.31  4.41  7.27  8.89
 *    tau=4:
 *      P=1       0.44  0.62  0.81  0.93  0.94
 *      P=4       0.74  1.33  2.20  3.14  3.40
 *      P=16      0.74  1.38  2.50  3.89  4.63
 * Paper values (Tf=2048, tau=2):
 *      P=1       0.57  0.65  0.81  0.94  0.94
 *      P=4       0.57  1.33  2.32  3.21  3.45
 *      P=16      0.57  1.68  3.96  7.44  9.71
 * Paper values (Tf=2048, tau=4):
 *      P=1       0.53  0.62  0.77  0.91  0.91
 *      P=4       0.53  1.18  2.03  2.87  3.19
 *      P=16      0.53  1.27  2.59  4.72  6.10
 *
 * Shape claims to check: efficiency grows with N (start-up dominated
 * at small N); P=16 only pays off at large N; the FIFO size is
 * marginal at small P; at Tf=2048 the N=44 single-leaf case runs on
 * one cell only (flat across P).
 */

#include <cstdio>
#include <functional>

#include "analytic/models.hh"
#include "bench_util.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

double
runCase(unsigned p, std::size_t tf, unsigned tau, std::size_t n)
{
    copro::Coprocessor sys(timingConfig(p, tf, tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), n, n);
    // Seed the diagonal so the host-side reciprocals are finite (the
    // datapath runs in token mode, but 1/x runs on real host values).
    for (std::size_t i = 0; i < n; ++i)
        sys.memory().storeF(a.addrOf(i, i), 1.0f + float(i % 7));
    plan.lu(a);
    plan.commit();
    Cycle cycles = sys.run();
    return analytic::luMultiplyAdds(n) / double(cycles);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const bool quick = argFlag(argc, argv, "--quick");
    const unsigned jobs = initSimFlags(argc, argv);
    std::vector<std::size_t> sizes = {44, 88, 176, 352, 704};
    if (quick)
        sizes = {44, 88, 176};
    const unsigned cells[] = {1, 4, 16};
    const std::pair<std::size_t, unsigned> configs[] = {
        {512, 2}, {512, 4}, {2048, 2}, {2048, 4}};

    std::printf("Paper table 6.3: LU factorization (fig. 7 recursion), "
                "multiply-adds per cycle.\n\n");

    std::vector<std::function<double()>> tasks;
    for (auto [tf, tau] : configs)
        for (unsigned p : cells)
            for (auto n : sizes)
                tasks.push_back([p, tf = tf, tau = tau, n] {
                    return runCase(p, tf, tau, n);
                });
    auto results = sim::sweep<double>(tasks, jobs);

    std::size_t idx = 0;
    for (auto [tf, tau] : configs) {
        TextTable t(strfmt("Tf = %zu, tau = %u", tf, tau));
        std::vector<std::string> head = {"N ="};
        for (auto n : sizes)
            head.push_back(strfmt("%zu", n));
        t.header(head);
        for (unsigned p : cells) {
            std::vector<std::string> row = {strfmt("P=%u", p)};
            for ([[maybe_unused]] auto n : sizes)
                row.push_back(strfmt("%.2f", results[idx++]));
            t.row(row);
        }
        std::printf("%s\n", t.render().c_str());
        std::fflush(stdout);
    }
    return 0;
}
