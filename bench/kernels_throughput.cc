/**
 * @file
 * Throughput of the signal kernels (sections 2.2-2.3): radix-2 FFT and
 * 1-D correlation. The paper gives no tables for these; it claims they
 * map onto the cell with limited I/O, and motivates FIFO queues by the
 * FFT's perfect shuffle. This bench reports sustained rates and
 * host-traffic ratios so the claims can be checked quantitatively.
 *
 * Each table's cases are independent simulations and run concurrently
 * (--jobs N, default hardware concurrency); output is identical at
 * any job count.
 */

#include <cstdio>
#include <functional>

#include "bench_util.hh"
#include "common/math_util.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::bench;
using namespace opac::planner;

namespace
{

unsigned gJobs = 1;

struct RunResult
{
    Cycle cycles = 0;
    double hostWords = 0.0;
    double maPerCycle = 0.0;
    double wall = 0.0;
};

void
fftTable(BenchJsonWriter &json)
{
    TextTable t("radix-2 FFT, one cell, Tf = 2048, tau = 2 "
                "(flops = 10 * (n/2) * log2 n)");
    t.header({"n", "batch", "cycles", "flops/cycle", "host words/flop"});
    const std::pair<std::size_t, std::size_t> cases[] = {
        {64, 1}, {256, 1}, {1024, 1}, {256, 8}};
    std::vector<std::function<RunResult()>> tasks;
    for (auto [n, batch] : cases)
        tasks.push_back([n = n, batch = batch] {
            copro::Coprocessor sys(timingConfig(1, 2048, 2));
            kernels::installStandardKernels(sys);
            SignalPlanner plan(sys);
            std::size_t in = sys.memory().alloc(2 * n * batch);
            std::size_t out = sys.memory().alloc(2 * n * batch);
            plan.fft(in, out, n, batch);
            plan.commit();
            RunResult r;
            double t0 = wallSeconds();
            r.cycles = sys.run();
            r.wall = wallSeconds() - t0;
            r.hostWords = double(sys.host().wordsSent()
                                 + sys.host().wordsReceived());
            return r;
        });
    auto results = sim::sweep<RunResult>(tasks, gJobs);
    std::size_t idx = 0;
    for (auto [n, batch] : cases) {
        RunResult r = results[idx++];
        unsigned m = unsigned(floorLog2(std::int64_t(n)));
        double flops = 10.0 * double(n / 2) * m * double(batch);
        t.row({strfmt("%zu", n), strfmt("%zu", batch),
               strfmt("%llu", (unsigned long long)r.cycles),
               strfmt("%.3f", flops / double(r.cycles)),
               strfmt("%.3f", r.hostWords / flops)});
        json.record(strfmt("fft_n%zu_b%zu", n, batch), r.cycles,
                    flops / double(r.cycles),
                    flops / double(r.cycles) / 2.0,
                    {{"sim_rate", simRate(r.cycles, r.wall)}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("The butterfly is a straight-line block through the "
                "register file and is not software pipelined, so\n"
                "FP-latency stalls cap it well below 1 flop/cycle; "
                "the constant-geometry formulation still runs all\n"
                "log2(n) stages from a single kernel call.\n\n");
}

void
fftResidentTable(BenchJsonWriter &json)
{
    TextTable t("batched FFT with the twiddle table resident in reby "
                "(section 2.2's 'coefficients read one time')");
    t.header({"n", "batch", "host words/flop", "paper asymptote "
              "4/(5 log2 n)"});
    const std::pair<std::size_t, std::size_t> cases[] = {
        {64, 16}, {256, 8}};
    std::vector<std::function<RunResult()>> tasks;
    for (auto [n, batch] : cases)
        tasks.push_back([n = n, batch = batch] {
            copro::Coprocessor sys(timingConfig(1, 2048, 2));
            kernels::installStandardKernels(sys);
            SignalPlanner plan(sys);
            std::size_t in = sys.memory().alloc(2 * n * batch);
            std::size_t out = sys.memory().alloc(2 * n * batch);
            plan.fftResident(in, out, n, batch);
            plan.commit();
            RunResult r;
            double t0 = wallSeconds();
            r.cycles = sys.run();
            r.wall = wallSeconds() - t0;
            r.hostWords = double(sys.host().wordsSent()
                                 + sys.host().wordsReceived());
            return r;
        });
    auto results = sim::sweep<RunResult>(tasks, gJobs);
    std::size_t idx = 0;
    for (auto [n, batch] : cases) {
        RunResult r = results[idx++];
        unsigned m = unsigned(floorLog2(std::int64_t(n)));
        double flops = 10.0 * double(n / 2) * m * double(batch);
        t.row({strfmt("%zu", n), strfmt("%zu", batch),
               strfmt("%.4f", r.hostWords / flops),
               strfmt("%.4f", 4.0 / (5.0 * m))});
        json.record(strfmt("fft_resident_n%zu_b%zu", n, batch),
                    r.cycles, flops / double(r.cycles),
                    flops / double(r.cycles) / 2.0,
                    {{"sim_rate", simRate(r.cycles, r.wall)}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("With the table broadcast once, traffic approaches 4n "
                "words per transform = 4/(5 log2 n) words per flop —\n"
                "the paper's 5n/4 operations per access, inverted.\n\n");
}

void
gemvTable(BenchJsonWriter &json, TraceSession &trace,
          StatsSession &stats)
{
    TextTable t("gemv y += A x (NOT compute-bound: the section 4.1 "
                "contrast case), one cell, 256x512");
    t.header({"tau", "MA/cycle", "1/tau wall"});
    const std::size_t m = 256, n = 512;
    const unsigned taus[] = {1u, 2u, 4u};
    std::vector<std::function<RunResult()>> tasks;
    for (unsigned tau : taus)
        tasks.push_back([tau, m, n, &trace, &stats] {
            auto cfg = timingConfig(1, 2048, tau);
            // The traced/sampled representative run: the
            // bandwidth-bound contrast kernel, whose whole-run
            // occupancy the section 4.1 host model predicts as MAs
            // over tau times the words the host must move.
            bool traced = trace.wanted() && tau == 2;
            bool sampled = stats.wanted() && tau == 2;
            if (sampled)
                cfg.statsSampleInterval = stats.sampleInterval();
            copro::Coprocessor sys(cfg);
            if (sampled)
                stats.attach(sys);
            kernels::installStandardKernels(sys);
            SignalPlanner plan(sys);
            MatRef a = allocMat(sys.memory(), m, n);
            std::size_t x = sys.memory().alloc(n);
            std::size_t y = sys.memory().alloc(m);
            plan.gemv(a, x, y);
            plan.commit();
            double predicted_ma = -1.0;
            if (traced) {
                trace.attach(sys);
                double host_words = double(m * n + n + 2 * m);
                predicted_ma =
                    double(m * n) / (double(tau) * host_words);
            }
            RunResult r;
            double t0 = wallSeconds();
            r.cycles = sys.run();
            r.wall = wallSeconds() - t0;
            if (traced)
                trace.finish(sys.engine().now(), predicted_ma);
            if (sampled)
                stats.finish();
            r.hostWords = double(sys.host().wordsSent()
                                 + sys.host().wordsReceived());
            r.maPerCycle = sys.stats().scalarValue("maPerCycle");
            return r;
        });
    auto results = sim::sweep<RunResult>(tasks, gJobs);
    std::size_t idx = 0;
    for (unsigned tau : taus) {
        RunResult r = results[idx++];
        double ma_rate = double(m * n) / double(r.cycles);
        t.row({strfmt("%u", tau), strfmt("%.3f", ma_rate),
               strfmt("%.3f", 1.0 / tau)});
        json.record(strfmt("gemv_256x512_tau%u", tau), r.cycles,
                    2.0 * ma_rate, ma_rate,
                    {{"ma_per_cycle", r.maPerCycle},
                     {"host_words", r.hostWords},
                     {"sim_rate", simRate(r.cycles, r.wall)}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Each matrix word is used once, so no number of cells "
                "helps: the kernel runs at the host word rate.\n");
}

void
correlationTable(BenchJsonWriter &json)
{
    TextTable t("1-D correlation, one cell, tau = 2, Nx = 4096 "
                "(expected steady rate D/(D+1))");
    t.header({"lags D", "MA/cycle", "expected", "host words/MA"});
    const std::size_t lags[] = {4, 8, 16, 64, 256};
    std::vector<std::function<RunResult()>> tasks;
    for (std::size_t d : lags)
        tasks.push_back([d] {
            copro::Coprocessor sys(timingConfig(1, 2048, 2));
            kernels::installStandardKernels(sys);
            SignalPlanner plan(sys);
            const std::size_t nx = 4096;
            std::size_t x = sys.memory().alloc(nx);
            std::size_t y = sys.memory().alloc(nx + d - 1);
            std::size_t out = sys.memory().alloc(d);
            plan.correlation(x, nx, y, d, out);
            plan.commit();
            RunResult r;
            double t0 = wallSeconds();
            r.cycles = sys.run();
            r.wall = wallSeconds() - t0;
            r.hostWords = double(sys.host().wordsSent()
                                 + sys.host().wordsReceived());
            return r;
        });
    auto results = sim::sweep<RunResult>(tasks, gJobs);
    std::size_t idx = 0;
    for (std::size_t d : lags) {
        RunResult r = results[idx++];
        const std::size_t nx = 4096;
        double mas = double(nx) * double(d);
        t.row({strfmt("%zu", d),
               strfmt("%.3f", mas / double(r.cycles)),
               strfmt("%.3f", double(d) / double(d + 1)),
               strfmt("%.4f", r.hostWords / mas)});
        json.record(strfmt("correlation_d%zu", d), r.cycles,
                    2.0 * mas / double(r.cycles),
                    mas / double(r.cycles),
                    {{"sim_rate", simRate(r.cycles, r.wall)}});
    }
    std::printf("%s\n", t.render().c_str());
    std::printf("Small D stalls on the accumulator recurrence "
                "(distance D+1 vs pipeline depth); large D reaches\n"
                "the D/(D+1) issue bound with two host words per D "
                "multiply-adds.\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    gJobs = initSimFlags(argc, argv);
    BenchJsonWriter json("kernels_throughput");
    json.config("cells", 1);
    json.config("tf", 2048);
    json.config("fp", "token");
    json.config("engine", sim::engineModeName(engineDefault()));
    json.config("sim_threads", long(simThreadsDefault()));
    TraceSession trace(argc, argv);
    StatsSession stats(argc, argv);
    std::printf("Signal-kernel throughput (no paper table; section 2 "
                "claims).\n\n");
    fftTable(json);
    fftResidentTable(json);
    correlationTable(json);
    gemvTable(json, trace, stats);
    return 0;
}
