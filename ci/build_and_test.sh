#!/bin/sh
# CI entry point: build the default configuration, an optimized Release
# configuration (-O2 with assertions kept), and the sanitized
# configurations (OPAC_SANITIZE=ON: ASan + UBSan; OPAC_SANITIZE=thread:
# TSan, which exercises the parallel sweep runner) and run the test
# suite under each. Usage: ci/build_and_test.sh [build-root]
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
build_root=${1:-"$root/build-ci"}
jobs=$(nproc 2>/dev/null || echo 4)

run_config() {
    name=$1
    shift
    dir="$build_root/$name"
    echo "=== configure $name ($*) ==="
    cmake -B "$dir" -S "$root" "$@"
    echo "=== build $name ==="
    cmake --build "$dir" -j "$jobs"
    echo "=== test $name ==="
    ctest --test-dir "$dir" --output-on-failure -j "$jobs"
}

run_config plain -DCMAKE_BUILD_TYPE=RelWithDebInfo
# Release keeps assertions: the machine-model invariants they check are
# exactly what an optimized build could silently break.
run_config release -DCMAKE_BUILD_TYPE=Release \
    -DCMAKE_CXX_FLAGS_RELEASE="-O2"
run_config sanitize -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOPAC_SANITIZE=ON
run_config tsan -DCMAKE_BUILD_TYPE=RelWithDebInfo -DOPAC_SANITIZE=thread

# Smoke-test the tracing pipeline end to end: a traced bench run must
# produce a Chrome trace that trace_report accepts.
echo "=== trace smoke test ==="
plain="$build_root/plain"
(cd "$plain" && ./bench/kernels_throughput --trace=trace_smoke.json \
    --stats=stats_smoke.json > /dev/null)
"$plain/tools/trace_report" "$plain/trace_smoke.json" > /dev/null
echo "trace smoke test OK"

# Parallel-engine determinism under TSan: the sharded cell execution
# is the simulator's only intra-run concurrency; rerun its golden
# suite and a bench smoke with a real worker pool under the race
# detector. (The tsan ctest pass above already ran the suite once;
# this leg pins the intent so a test-regex change cannot silently
# drop it.)
echo "=== parallel engine (TSan) ==="
tsan="$build_root/tsan"
(cd "$tsan" && ctest -R test_engine_parallel --output-on-failure)
(cd "$tsan" && ./bench/table_6_2 --rows 32 --cols 32 --jobs 1 \
    --engine=parallel --sim-threads=4 > /dev/null)
# The job server is the other concurrency surface: one engine per
# shard on real worker threads, plus the submit/deliver locking.
(cd "$tsan" && ctest -R test_serve --output-on-failure)
(cd "$tsan" && ./bench/serve_load --smoke --engine=parallel \
    --sim-threads=2 > /dev/null)
echo "parallel engine TSan OK"

# Fault matrix: soak the recovery stack under the sanitizers. A
# flip/hang/mem fault plan over a full table run must complete (parity
# corrects the flips, transient hangs resolve, memory spikes only
# delay — no recovery transactions needed), and the fault-sweep smoke
# exercises the whole timeout/retry/replay/dead-cell path.
echo "=== fault matrix (sanitized) ==="
sanitize="$build_root/sanitize"
(cd "$sanitize" && ./bench/table_6_1 --quick \
    --faults=seed=11,rate=60,horizon=400000,kinds=flip+hang+mem,bits=1 \
    --parity=correct > /dev/null)
(cd "$sanitize" && ./bench/fault_sweep --smoke > /dev/null)
# The serve_load smoke grid keeps a faulted case and a shard-kill
# case, so the shard worker/failover path soaks under ASan/UBSan too.
(cd "$sanitize" && ./bench/serve_load --smoke > /dev/null)
echo "fault matrix OK"

# Snapshot & resume (sanitized): pause the representative table_6_1
# case at a fixed cycle, write a checkpoint, validate it, and resume
# it — under ASan/UBSan so the whole save/load path soaks. The golden
# byte-identity matrix itself (4 engine modes x fast tier, serve
# crash/restart exactly-once) is tests/test_snapshot, which every
# ctest pass above already ran; this leg pins the bench-flag wiring
# and keeps a snapshot in the CI artifacts.
echo "=== snapshot & resume (sanitized) ==="
artifacts="$build_root/artifacts"
mkdir -p "$artifacts"
(cd "$sanitize" && ctest -R test_snapshot --output-on-failure)
(cd "$sanitize" && ./bench/table_6_1 --quick \
    --snapshot-at=5000 --snapshot-file=ci_resume.snap > /dev/null)
"$sanitize/tools/snapshot_inspect" --check "$sanitize/ci_resume.snap"
(cd "$sanitize" && ./bench/table_6_1 --quick \
    --resume-from=ci_resume.snap > /dev/null)
cp "$sanitize/ci_resume.snap" "$artifacts/table_6_1_resume.snap"
# Damaged snapshots must be rejected up front by the checksum — a
# truncated copy and a bit-flipped copy must both fail --check with
# the tool's clean "bad file" exit (1), not a parse error or crash.
head -c 100 "$sanitize/ci_resume.snap" > "$sanitize/ci_trunc.snap"
cp "$sanitize/ci_resume.snap" "$sanitize/ci_flip.snap"
b=$(od -An -tu1 -j200 -N1 "$sanitize/ci_flip.snap" | tr -d ' ')
printf "\\$(printf '%03o' $(( (b + 128) % 256 )))" \
    | dd of="$sanitize/ci_flip.snap" bs=1 seek=200 conv=notrunc \
        2>/dev/null
for bad in ci_trunc.snap ci_flip.snap; do
    status=0
    "$sanitize/tools/snapshot_inspect" --check "$sanitize/$bad" \
        >/dev/null 2>&1 || status=$?
    if [ "$status" -ne 1 ]; then
        echo "corrupt snapshot $bad not rejected (exit $status)" >&2
        exit 1
    fi
done
echo "snapshot & resume OK"

# Bench regression gate: rerun the gated benches and compare their
# BENCH_*.json against the committed baselines. The simulator is
# cycle-deterministic, so any delta is a real machine-model change; a
# deliberate one updates bench/baselines/ in the same PR.
echo "=== bench regression gate ==="
OPAC_GIT_SHA=$(git -C "$root" rev-parse --short HEAD 2>/dev/null \
    || echo ci)
export OPAC_GIT_SHA
(cd "$plain" && ./bench/table_6_1 --quick > /dev/null)
(cd "$plain" && ./bench/table_6_2 --rows 256 --cols 256 > /dev/null)
(cd "$plain" && ./bench/fault_sweep > /dev/null)
# The gated serve_load run doubles as the observability artifact
# source: dump the shard-kill case's metrics, spans, span trace,
# prometheus exposition and flight-recorder postmortems.
(cd "$plain" && mkdir -p obs/flight \
    && ./bench/serve_load --metrics=obs/serve_metrics.json \
        --spans=obs/serve_spans.json \
        --span-trace=obs/serve_span_trace.json \
        --prom=obs/serve_metrics.prom \
        --flight-dir=obs/flight > /dev/null)
# The two streaming tables also gate sim_rate, with a deliberately
# generous -30% floor: cycle counts catch model regressions, this
# catches simulator-speed ones (a fast-tier guard accidentally
# disabled, a hot path deoptimized) while staying far above shared-
# runner noise. The other benches stay cycle-only.
for bench in kernels_throughput table_6_1 table_6_2 fault_sweep \
    serve_load; do
    gate=""
    case "$bench" in
      table_6_1|table_6_2) gate="--gate-sim-rate=30" ;;
    esac
    # shellcheck disable=SC2086
    "$plain/tools/bench_diff" $gate \
        "$root/bench/baselines/BENCH_$bench.json" \
        "$plain/BENCH_$bench.json"
done
echo "bench regression gate OK"

# Observability smoke: the artifacts the serve_load gate just dumped
# must validate against the documented schemas
# (docs/OBSERVABILITY.md) and render the full SLO report; the span
# rendering must be a Chrome trace that trace_report accepts. The
# shard-kill case dies mid-traffic, so a flight-recorder postmortem
# must exist.
echo "=== serve_report smoke test ==="
"$plain/tools/serve_report" --check-schema \
    "$plain/obs/serve_metrics.json" "$plain/obs/serve_spans.json"
"$plain/tools/serve_report" "$plain/obs/serve_metrics.json" \
    "$plain/obs/serve_spans.json" > /dev/null
"$plain/tools/trace_report" "$plain/obs/serve_span_trace.json" \
    > /dev/null
ls "$plain"/obs/flight/flight_*.json > /dev/null
echo "serve_report smoke test OK"

# Perf smoke (Release): record sim_rate (simulated cycles per wall
# second) for the streaming benches so the uploaded artifacts carry a
# cycles-per-wall-second trend next to the cycle counts. table_6_2
# runs twice — fast tier off, then on — and both BENCH jsons land in
# the artifacts dir, so every CI run documents the tier's measured
# speedup on this runner (the cycle counts in the two files must be
# identical; only sim_rate may differ). Not gated here beyond the
# byte-identity the bench itself asserts — the regression-gate leg
# above already soft-gates sim_rate against the committed baselines.
echo "=== perf smoke (Release) ==="
release="$build_root/release"
artifacts="$build_root/artifacts"
mkdir -p "$artifacts"
(cd "$release" && ./bench/table_6_2 --rows 256 --cols 256 \
    --fast-tier=off > /dev/null)
cp "$release/BENCH_table_6_2.json" \
    "$artifacts/BENCH_table_6_2_fast_tier_off.json"
(cd "$release" && ./bench/table_6_2 --rows 256 --cols 256 \
    --fast-tier=on > /dev/null)
cp "$release/BENCH_table_6_2.json" \
    "$artifacts/BENCH_table_6_2_fast_tier_on.json"
(cd "$release" && ./bench/kernels_throughput > /dev/null)
echo "perf smoke OK"
