/**
 * @file
 * BLAS-3 library tour — the paper's "whole library BLAS LEVEL 3"
 * claim, as a statistics pipeline on a 4-cell coprocessor:
 *
 *  1. SYRK:      S = 4I + X X^T      (regularized sample covariance)
 *  2. Cholesky:  S = L L^T
 *  3. TRMM:      triangular product U * U with U = L^T, checked
 *                against the host reference
 *  4. TRSM:      whitening W = L^-1 X (solved as W^T = X^T (L^T)^-1
 *                against the transposed triangle)
 *
 * Build and run:  ./build/examples/blas3_demo
 */

#include <cmath>
#include <cstdio>

#include "blasref/blas3.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::planner;
using blasref::Matrix;

int
main()
{
    const std::size_t n = 24;  // features
    const std::size_t m = 96;  // samples

    copro::CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 512;
    cfg.host.tau = 2;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    auto &mem = sys.memory();
    LinalgPlanner plan(sys);

    // Synthetic data with correlated features.
    Rng rng(31);
    Matrix x(n, m);
    for (std::size_t j = 0; j < m; ++j) {
        float common = rng.element();
        for (std::size_t i = 0; i < n; ++i)
            x.at(i, j) = rng.element() + 0.5f * common;
    }
    MatRef xr = allocMat(mem, n, m);
    storeMat(mem, xr, x);

    // ---- 1. SYRK: S = 4I + X X^T (lower triangle) -----------------
    MatRef sr = allocMat(mem, n, n);
    for (std::size_t i = 0; i < n; ++i)
        mem.storeF(sr.addrOf(i, i), 4.0f);
    plan.syrkLower(sr, xr);
    plan.commit();
    Cycle c1 = sys.run();
    std::printf("SYRK  S = 4I + X X^T  (%zux%zu by %zu samples): "
                "%llu cycles\n", n, n, m, (unsigned long long)c1);

    Matrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            s.at(i, j) = mem.loadF(sr.addrOf(i, j));
            s.at(j, i) = s.at(i, j);
        }
    }

    // ---- 2. Cholesky in place --------------------------------------
    plan.cholesky(sr);
    plan.commit();
    Cycle c2 = sys.run();
    Matrix l(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j)
            l.at(i, j) = mem.loadF(sr.addrOf(i, j));
    }
    float fact_res = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = -double(s.at(i, j));
            for (std::size_t k = 0; k <= j; ++k)
                acc += double(l.at(i, k)) * double(l.at(j, k));
            fact_res = std::max(fact_res, std::fabs(float(acc)));
        }
    }
    std::printf("CHOL  S = L L^T: %llu cycles (%zu leaves, %zu sqrt "
                "round trips), ||L L^T - S||_inf = %g\n",
                (unsigned long long)c2, plan.stats().cholLeaves,
                plan.stats().recipOps, double(fact_res));

    // ---- 3. TRMM: P = U * U with U = L^T ---------------------------
    Matrix u(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = i; j < n; ++j)
            u.at(i, j) = l.at(j, i);
    }
    MatRef ur = allocMat(mem, n, n);
    MatRef br = allocMat(mem, n, n);
    MatRef pr = allocMat(mem, n, n);
    storeMat(mem, ur, u);
    storeMat(mem, br, u);
    plan.trmmLeftUpper(pr, ur, br);
    plan.commit();
    Cycle c3 = sys.run();
    Matrix expect_p = u;
    blasref::trmmLeftUpper(expect_p, u);
    Matrix got_p = loadMat(mem, pr);
    std::printf("TRMM  U * U (U = L^T): %llu cycles, max err %g\n",
                (unsigned long long)c3,
                double(got_p.maxAbsDiff(expect_p)));

    // ---- 4. TRSM: whitening W = L^-1 X ------------------------------
    std::size_t recips = mem.alloc(n);
    for (std::size_t i = 0; i < n; ++i)
        mem.storeF(recips + i, 1.0f / l.at(i, i));
    MatRef xtr = allocMat(mem, m, n); // X^T, solved in place
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j)
            mem.storeF(xtr.addrOf(j, i), x.at(i, j));
    }
    plan.trsmRightUpper(xtr, sr, recips, /*u_transposed=*/true);
    plan.commit();
    Cycle c4 = sys.run();

    // Host reference: forward substitution L w = x per column.
    Matrix w_ref = x;
    for (std::size_t j = 0; j < m; ++j) {
        for (std::size_t i = 0; i < n; ++i) {
            double acc = w_ref.at(i, j);
            for (std::size_t k = 0; k < i; ++k)
                acc -= double(l.at(i, k)) * double(w_ref.at(k, j));
            w_ref.at(i, j) = float(acc / l.at(i, i));
        }
    }
    Matrix w(n, m);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < m; ++j)
            w.at(i, j) = mem.loadF(xtr.addrOf(j, i));
    }
    std::printf("TRSM  W = L^-1 X (%zu rhs): %llu cycles, "
                "max |W - ref| = %g\n", m, (unsigned long long)c4,
                double(w.maxAbsDiff(w_ref)));

    // Whitened covariance sanity: W W^T should be close to I (exactly
    // I if S had been X X^T alone; the 4I regularizer perturbs it by
    // -4 L^-1 L^-T, so just report the diagonal range).
    float dmin = 1e30f, dmax = -1e30f;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t k = 0; k < m; ++k)
            acc += double(w.at(i, k)) * double(w.at(i, k));
        dmin = std::min(dmin, float(acc));
        dmax = std::max(dmax, float(acc));
    }
    std::printf("      whitened variances in [%.3f, %.3f] "
                "(< 1: the 4I regularizer absorbs the rest)\n",
                double(dmin), double(dmax));
    return 0;
}
