/**
 * @file
 * Quickstart: the canonical OPAC workflow on one cell.
 *
 *  1. build a coprocessor (one cell, the prototype's 2048-word FIFOs),
 *  2. install the standard kernel library,
 *  3. let the planner emit the host transfer program for a matrix
 *     update A += B * C (the paper's fig. 5 sequencing),
 *  4. run the cycle-accurate simulation with bit-accurate arithmetic,
 *  5. read back the result and the performance counters.
 *
 * Build and run:  ./build/examples/quickstart
 */

#include <cstdio>

#include "blasref/blas3.hh"
#include "isa/disasm.hh"
#include "kernels/kernel_set.hh"
#include "kernels/matupdate.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::planner;

int
main()
{
    // A 1-cell coprocessor with the prototype's parameters: Tf = 2048
    // word FIFO queues, tau = 2 host (superscalar generation).
    copro::CoprocConfig cfg;
    cfg.cells = 1;
    cfg.cell.tf = 2048;
    cfg.host.tau = 2;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    // Show what actually runs on the cell.
    std::printf("Microcode of the fig. 5 matrix-update kernel:\n%s\n",
                isa::disasm(kernels::buildMatUpdate(false)).c_str());

    // A(24,24) += B(24,40) * C(40,24), data in host memory.
    const std::size_t n = 24, k = 40;
    Rng rng(2026);
    blasref::Matrix a(n, n), b(n, k), c(k, n);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);
    blasref::Matrix expect = a;
    blasref::gemm(expect, b, c);

    MatRef ar = allocMat(sys.memory(), n, n);
    MatRef br = allocMat(sys.memory(), n, k);
    MatRef cr = allocMat(sys.memory(), k, n);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), br, b);
    storeMat(sys.memory(), cr, c);

    // The planner emits the host transfer program; run to completion.
    LinalgPlanner plan(sys);
    plan.matUpdate(ar, br, cr);
    plan.commit();
    Cycle cycles = sys.run();

    blasref::Matrix got = loadMat(sys.memory(), ar);
    double mas = double(n) * n * k;
    std::printf("A(%zu,%zu) += B*C with K=%zu: %llu cycles, "
                "%.3f multiply-adds/cycle\n",
                n, n, k, (unsigned long long)cycles,
                mas / double(cycles));
    std::printf("max |simulated - reference| = %g\n",
                double(got.maxAbsDiff(expect)));
    std::printf("host words moved: %llu sent, %llu received\n",
                (unsigned long long)sys.host().wordsSent(),
                (unsigned long long)sys.host().wordsReceived());
    std::printf("\nPer-component counters:\n%s",
                sys.statsReport().c_str());
    return 0;
}
