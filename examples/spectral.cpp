/**
 * @file
 * Spectral analysis and matched filtering — the FFT and correlation
 * primitives of sections 2.2-2.3 on real signals.
 *
 *  1. a 1024-point FFT of a noisy two-tone signal: the coprocessor
 *     finds both tones;
 *  2. a matched filter: a known template is located inside a noisy
 *     stream by 1-D correlation, lags spread across 4 cells.
 *
 * Build and run:  ./build/examples/spectral
 */

#include <cmath>
#include <cstdio>

#include "blasref/signal.hh"
#include "kernels/kernel_set.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::planner;

int
main()
{
    copro::CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 2048;
    cfg.host.tau = 2;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    auto &mem = sys.memory();
    SignalPlanner plan(sys);
    Rng rng(11);

    // ---- FFT: two tones in noise --------------------------------
    const std::size_t n = 1024;
    const std::size_t tone_a = 50, tone_b = 320;
    std::size_t sig = mem.alloc(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
        float t = float(i);
        float v = std::sin(2.0f * float(M_PI) * float(tone_a) * t
                           / float(n))
            + 0.5f * std::sin(2.0f * float(M_PI) * float(tone_b) * t
                              / float(n))
            + 0.1f * rng.element();
        mem.storeF(sig + 2 * i, v);
        mem.storeF(sig + 2 * i + 1, 0.0f);
    }
    std::size_t spec = mem.alloc(2 * n);
    plan.fft(sig, spec, n, 1);
    plan.commit();
    Cycle c1 = sys.run();

    // Peak pick over the positive-frequency half.
    std::size_t best1 = 0, best2 = 0;
    float mag1 = 0, mag2 = 0;
    for (std::size_t k = 1; k < n / 2; ++k) {
        float re = mem.loadF(spec + 2 * k);
        float im = mem.loadF(spec + 2 * k + 1);
        float m = re * re + im * im;
        if (m > mag1) {
            mag2 = mag1;
            best2 = best1;
            mag1 = m;
            best1 = k;
        } else if (m > mag2) {
            mag2 = m;
            best2 = k;
        }
    }
    std::printf("FFT(%zu) in %llu cycles: dominant bins %zu and %zu "
                "(expected %zu and %zu)\n",
                n, (unsigned long long)c1, best1, best2, tone_a,
                tone_b);

    // ---- Matched filter by correlation ---------------------------
    const std::size_t tmpl_len = 64, lags = 256;
    const std::size_t true_offset = 173;
    std::size_t tmpl = mem.alloc(tmpl_len);
    std::vector<float> tv(tmpl_len);
    for (std::size_t i = 0; i < tmpl_len; ++i) {
        // A chirp template.
        tv[i] = std::sin(0.05f * float(i) * float(i));
        mem.storeF(tmpl + i, tv[i]);
    }
    std::size_t stream_len = tmpl_len + lags - 1;
    std::size_t stream = mem.alloc(stream_len);
    for (std::size_t i = 0; i < stream_len; ++i) {
        float v = 0.3f * rng.element();
        if (i >= true_offset && i < true_offset + tmpl_len)
            v += tv[i - true_offset];
        mem.storeF(stream + i, v);
    }
    std::size_t corr = mem.alloc(lags);
    plan.correlation(tmpl, tmpl_len, stream, lags, corr);
    plan.commit();
    Cycle c2 = sys.run();

    std::size_t best_lag = 0;
    float best_val = -1e30f;
    for (std::size_t d = 0; d < lags; ++d) {
        float v = mem.loadF(corr + d);
        if (v > best_val) {
            best_val = v;
            best_lag = d;
        }
    }
    std::printf("matched filter (%zu lags across 4 cells) in %llu "
                "cycles: peak at lag %zu (expected %zu), score %.2f\n",
                lags, (unsigned long long)c2, best_lag, true_offset,
                double(best_val));

    bool ok = (best1 == tone_a || best1 == tone_b)
        && (best2 == tone_a || best2 == tone_b)
        && best_lag == true_offset;
    std::printf(ok ? "all detections correct\n"
                   : "DETECTION MISMATCH\n");
    return ok ? 0 : 1;
}
