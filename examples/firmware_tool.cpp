/**
 * @file
 * Firmware utility — the host driver's boot-image workflow:
 *
 *   firmware_tool dump <file>   write the standard kernel library as a
 *                               binary control-store image
 *   firmware_tool info <file>   list the kernels in an image
 *   firmware_tool disasm <file> [kernel]
 *                               disassemble one kernel (or all)
 *
 * With no arguments, round-trips the standard library through a
 * temporary file and prints the inventory.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "isa/disasm.hh"
#include "kernels/firmware.hh"

using namespace opac;
using namespace opac::kernels;

namespace
{

bool
writeImage(const std::string &path, const std::vector<Word> &image)
{
    std::ofstream f(path, std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(image.data()),
            std::streamsize(image.size() * sizeof(Word)));
    return bool(f);
}

std::vector<Word>
readImage(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        std::exit(1);
    }
    auto bytes = std::size_t(f.tellg());
    f.seekg(0);
    std::vector<Word> image(bytes / sizeof(Word));
    f.read(reinterpret_cast<char *>(image.data()),
           std::streamsize(bytes));
    return image;
}

void
printInfo(const std::vector<Word> &image)
{
    auto set = unpackFirmware(image);
    std::printf("%zu kernels, %zu words (%zu bytes)\n\n", set.size(),
                image.size(), image.size() * sizeof(Word));
    std::printf("%-6s %-18s %-8s %s\n", "entry", "name", "params",
                "instructions");
    for (const auto &fe : set) {
        std::printf("%-6u %-18s %-8u %zu\n", fe.entry,
                    fe.prog.name().c_str(), fe.nparams,
                    fe.prog.size());
    }
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc >= 3 && std::strcmp(argv[1], "dump") == 0) {
        auto image = standardFirmware();
        if (!writeImage(argv[2], image)) {
            std::fprintf(stderr, "cannot write %s\n", argv[2]);
            return 1;
        }
        std::printf("wrote %zu words to %s\n", image.size(), argv[2]);
        return 0;
    }
    if (argc >= 3 && std::strcmp(argv[1], "info") == 0) {
        printInfo(readImage(argv[2]));
        return 0;
    }
    if (argc >= 3 && std::strcmp(argv[1], "disasm") == 0) {
        auto set = unpackFirmware(readImage(argv[2]));
        for (const auto &fe : set) {
            if (argc >= 4 && fe.prog.name() != argv[3])
                continue;
            std::printf("%s\n", isa::disasm(fe.prog).c_str());
        }
        return 0;
    }

    // Demo: round-trip through a temp file.
    const std::string tmp = "/tmp/opac_firmware.bin";
    auto image = standardFirmware();
    if (!writeImage(tmp, image)) {
        std::fprintf(stderr, "cannot write %s\n", tmp.c_str());
        return 1;
    }
    auto back = readImage(tmp);
    std::printf("round trip via %s: %s\n\n", tmp.c_str(),
                back == image ? "identical" : "MISMATCH");
    printInfo(back);
    return back == image ? 0 : 1;
}
