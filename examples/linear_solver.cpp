/**
 * @file
 * Dense linear-system solver — the paper's motivating application
 * class (section 2.1): solve A x = b by factoring A = L U on a 4-cell
 * OPAC coprocessor with the fig. 7 recursive block algorithm, then
 * substituting on the host.
 *
 * Build and run:  ./build/examples/linear_solver [n]
 */

#include <cstdio>
#include <cstdlib>

#include "analytic/models.hh"
#include "blasref/lu.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::planner;

int
main(int argc, char **argv)
{
    const std::size_t n = argc > 1 ? std::size_t(std::atol(argv[1]))
                                   : 120;

    copro::CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 512; // the paper's envisaged VLSI cell
    cfg.host.tau = 2;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    // A diagonally dominant system (unpivoted LU, as in the paper).
    Rng rng(7);
    blasref::Matrix a(n, n);
    a.randomize(rng);
    a.makeDiagonallyDominant();
    std::vector<float> bvec(n);
    for (auto &v : bvec)
        v = rng.element();

    MatRef ar = allocMat(sys.memory(), n, n);
    storeMat(sys.memory(), ar, a);

    LinalgPlanner plan(sys);
    plan.lu(ar);
    std::printf("plan: %zu kernel calls, %zu LU leaves, %zu triangular-"
                "solve leaves, %zu matrix-update tiles\n",
                plan.stats().leafCalls, plan.stats().luLeaves,
                plan.stats().trsmLeaves, plan.stats().tiles);
    plan.commit();
    Cycle cycles = sys.run();

    blasref::Matrix lu = loadMat(sys.memory(), ar);
    auto x = blasref::luSolve(lu, bvec);
    float res = blasref::residual(a, x, bvec);

    double mas = analytic::luMultiplyAdds(n);
    std::printf("LU(%zu x %zu) on 4 cells: %llu cycles, "
                "%.3f multiply-adds/cycle\n",
                n, n, (unsigned long long)cycles, mas / double(cycles));
    std::printf("residual ||Ax - b||_inf = %g  (x[0] = %g)\n",
                double(res), double(x[0]));
    return res < 1e-2f ? 0 : 1;
}
