/**
 * @file
 * Image-processing pipeline — the paper's signal/image-processing
 * domain (sections 2.3, 6.2): a 5x5 Gaussian smoothing of a synthetic
 * image followed by a 3x3 edge-detection pass, both on a 4-cell
 * coprocessor with fig. 6 column blocking.
 *
 * Build and run:  ./build/examples/image_pipeline [size]
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "blasref/signal.hh"
#include "kernels/kernel_set.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::planner;

namespace
{

/** Store the transposed, zero-padded image the conv planner expects. */
MatRef
storeImageT(host::HostMemory &mem, const blasref::Matrix &img,
            unsigned p, unsigned q)
{
    MatRef ref = allocMat(mem, img.cols() + q - 1, img.rows() + p);
    for (std::size_t r = 0; r < ref.cols; ++r) {
        for (std::size_t c = 0; c < ref.rows; ++c) {
            float v = 0.0f;
            if (r < img.rows() && c < img.cols())
                v = img.at(r, c);
            mem.storeF(ref.addrOf(c, r), v);
        }
    }
    return ref;
}

blasref::Matrix
loadOutT(const host::HostMemory &mem, const MatRef &out_t,
         std::size_t rows, std::size_t cols)
{
    blasref::Matrix out(rows, cols);
    for (std::size_t r = 0; r < rows; ++r) {
        for (std::size_t c = 0; c < cols; ++c)
            out.at(r, c) = mem.loadF(out_t.addrOf(c, r));
    }
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const std::size_t size = argc > 1 ? std::size_t(std::atol(argv[1]))
                                      : 256;

    copro::CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 2048;
    cfg.host.tau = 2;
    cfg.memoryWords = std::size_t(1) << 23;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    auto &mem = sys.memory();

    // Synthetic scene: smooth gradient + bright blob + noise.
    blasref::Matrix img(size, size);
    Rng rng(42);
    for (std::size_t r = 0; r < size; ++r) {
        for (std::size_t c = 0; c < size; ++c) {
            float v = 0.2f * float(r + c) / float(size);
            float dr = float(r) - float(size) / 2;
            float dc = float(c) - float(size) / 2;
            v += 2.0f * std::exp(-(dr * dr + dc * dc)
                                 / (0.002f * float(size * size)));
            v += 0.05f * rng.element();
            img.at(r, c) = v;
        }
    }

    // 5x5 Gaussian weights.
    blasref::Matrix gauss(5, 5);
    const float g1[5] = {1, 4, 6, 4, 1};
    float norm = 0;
    for (int i = 0; i < 5; ++i) {
        for (int j = 0; j < 5; ++j) {
            gauss.at(std::size_t(i), std::size_t(j)) = g1[i] * g1[j];
            norm += g1[i] * g1[j];
        }
    }
    for (auto &v : gauss.raw())
        v /= norm;

    SignalPlanner plan(sys);

    // Pass 1: smoothing.
    MatRef img_t = storeImageT(mem, img, 5, 5);
    MatRef w1 = allocMat(mem, 5, 5);
    storeMat(mem, w1, gauss);
    MatRef smooth_t = allocMat(mem, size, size);
    auto g1geom = plan.conv2d(img_t, w1, smooth_t, size, size);
    plan.commit();
    Cycle c1 = sys.run();
    blasref::Matrix smooth = loadOutT(mem, smooth_t, size, size);
    blasref::Matrix expect1 = blasref::xcorr2d(img, gauss);
    std::printf("pass 1 (5x5 Gaussian, %zu-column blocks): %llu "
                "cycles, %.3f useful MA/cycle, max err %g\n",
                g1geom.wu, (unsigned long long)c1,
                double(g1geom.usefulMas) / double(c1),
                double(smooth.maxAbsDiff(expect1)));

    // Pass 2: 3x3 edge detection (discrete Laplacian).
    blasref::Matrix lap(3, 3, -1.0f);
    lap.at(1, 1) = 8.0f;
    MatRef smooth_img_t = storeImageT(mem, smooth, 3, 3);
    MatRef w2 = allocMat(mem, 3, 3);
    storeMat(mem, w2, lap);
    MatRef edges_t = allocMat(mem, size, size);
    auto g2geom = plan.conv2d(smooth_img_t, w2, edges_t, size, size);
    plan.commit();
    Cycle c2 = sys.run() ;
    blasref::Matrix edges = loadOutT(mem, edges_t, size, size);
    blasref::Matrix expect2 = blasref::xcorr2d(smooth, lap);
    std::printf("pass 2 (3x3 Laplacian): %llu cycles, %.3f useful "
                "MA/cycle, max err %g\n",
                (unsigned long long)c2,
                double(g2geom.usefulMas) / double(c2),
                double(edges.maxAbsDiff(expect2)));

    // The blob's rim should dominate the interior of the edge map
    // (the anchored correlation's zero padding makes artificial edges
    // along the right/bottom borders, so skip them).
    float peak = 0;
    std::size_t pr = 0, pc = 0;
    for (std::size_t r = 0; r + 8 < size; ++r) {
        for (std::size_t c = 0; c + 8 < size; ++c) {
            float v = std::fabs(edges.at(r, c));
            if (v > peak) {
                peak = v;
                pr = r;
                pc = c;
            }
        }
    }
    std::printf("strongest edge response %.3f at (%zu, %zu) — near the "
                "blob at (%zu, %zu)\n", double(peak), pr, pc, size / 2,
                size / 2);
    return 0;
}
