/**
 * @file
 * Render serve-layer observability output for humans — the companion
 * CLI of docs/OBSERVABILITY.md's span/metrics layer.
 *
 *   serve_report [--top=K] [--width=N] [--check-schema] \
 *                <metrics.json> [spans.json]
 *
 * Ingests a Server::metricsJson() snapshot (and optionally a
 * Server::spansJson() stream) and prints:
 *
 *   - the service summary (jobs, failovers, deadline misses,
 *     utilization),
 *   - a per-tenant SLO table (queue-wait / end-to-end p50/p95/p99,
 *     rejects, failures, deadline misses),
 *   - a per-kernel-kind SLO table,
 *   - a per-shard table plus an ASCII utilization timeline
 *     reconstructed from the span batch windows,
 *   - the top-K slowest jobs with their span breakdowns
 *     (wait / service split, shard, batch, failovers).
 *
 * --check-schema validates both documents against the schema
 * contract in docs/OBSERVABILITY.md (versioned names, required
 * members) and exits nonzero on any mismatch — the CI smoke runs
 * this against every serve_load artifact.
 *
 * Exit: 0 ok; 1 schema validation failed; 2 usage / unreadable input.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "trace/json.hh"

using opac::trace::json::Value;

namespace
{

bool
readFile(const char *path, std::string &out, std::string &err)
{
    std::ifstream in(path);
    if (!in) {
        err = "cannot open";
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

double
num(const Value *v, double fallback = 0.0)
{
    return v && v->isNumber() ? v->number : fallback;
}

/** Member of a quantile object ("p50", "count", ...). */
double
qmember(const Value *q, const char *name)
{
    return q ? num(q->find(name)) : 0.0;
}

/** One reconstructed span record. */
struct SpanRec
{
    unsigned ticket = 0;
    unsigned tenant = 0;
    std::string kind;
    int shard = -1;
    unsigned batch = 0;
    unsigned failovers = 0;
    std::string note;
    // Derived from the edge list.
    double submit = -1, firstBatch = -1, lastExecute = -1, end = -1;
    std::string endPh; //!< "commit", "fail" or "reject" ("": open)
};

std::vector<SpanRec>
collectSpans(const Value &doc)
{
    std::vector<SpanRec> out;
    const Value *arr = doc.find("spans");
    if (!arr || !arr->isArray())
        return out;
    for (const Value &s : arr->array) {
        SpanRec r;
        r.ticket = unsigned(num(s.find("ticket")));
        r.tenant = unsigned(num(s.find("tenant")));
        if (const Value *k = s.find("kind"); k && k->isString())
            r.kind = k->str;
        r.shard = int(num(s.find("shard"), -1));
        r.batch = unsigned(num(s.find("batch")));
        r.failovers = unsigned(num(s.find("failovers")));
        if (const Value *n = s.find("note"); n && n->isString())
            r.note = n->str;
        if (const Value *edges = s.find("edges"); edges
                                                  && edges->isArray()) {
            for (const Value &e : edges->array) {
                const Value *ph = e.find("ph");
                double at = num(e.find("at"));
                if (!ph || !ph->isString())
                    continue;
                if (ph->str == "submit")
                    r.submit = at;
                else if (ph->str == "batch" && r.firstBatch < 0)
                    r.firstBatch = at;
                else if (ph->str == "execute")
                    r.lastExecute = at;
                else if (ph->str == "commit" || ph->str == "fail"
                         || ph->str == "reject") {
                    r.end = at;
                    r.endPh = ph->str;
                }
            }
        }
        out.push_back(std::move(r));
    }
    return out;
}

// ---- schema validation (--check-schema) ----

struct SchemaCheck
{
    int errors = 0;

    void
    fail(const std::string &what)
    {
        std::fprintf(stderr, "serve_report: schema: %s\n", what.c_str());
        ++errors;
    }

    void
    requireNumber(const Value &doc, const char *key, double want = -1)
    {
        const Value *v = doc.find(key);
        if (!v || !v->isNumber())
            fail(std::string("missing number '") + key + "'");
        else if (want >= 0 && v->number != want)
            fail(std::string("'") + key + "' != expected value");
    }

    void
    requireString(const Value &doc, const char *key, const char *want)
    {
        const Value *v = doc.find(key);
        if (!v || !v->isString())
            fail(std::string("missing string '") + key + "'");
        else if (want && v->str != want)
            fail(std::string("'") + key + "' is '" + v->str
                 + "', expected '" + want + "'");
    }
};

bool
checkMetricsSchema(const Value &doc)
{
    SchemaCheck c;
    if (!doc.isObject()) {
        c.fail("metrics document is not an object");
        return false;
    }
    c.requireNumber(doc, "version", 1);
    c.requireString(doc, "schema", "opac.serve.metrics.v1");
    c.requireNumber(doc, "shards");
    c.requireNumber(doc, "makespan");
    const Value *m = doc.find("metrics");
    if (!m || !m->isObject()) {
        c.fail("missing 'metrics' object");
        return false;
    }
    for (const char *key :
         {"serve.submitted", "serve.completed", "serve.failed",
          "serve.rejected", "serve.failovers", "serve.incorrect",
          "serve.deadline_missed", "serve.makespan",
          "serve.utilization"}) {
        if (!m->find(key) || !m->find(key)->isNumber())
            c.fail(std::string("missing metric '") + key + "'");
    }
    for (const char *key : {"serve.queue_wait_pct", "serve.service_pct",
                            "serve.e2e_pct"}) {
        const Value *q = m->find(key);
        if (!q || !q->isObject()) {
            c.fail(std::string("missing quantile object '") + key + "'");
            continue;
        }
        for (const char *member :
             {"count", "min", "max", "mean", "p50", "p95", "p99"})
            if (!q->find(member) || !q->find(member)->isNumber())
                c.fail(std::string(key) + " lacks member '" + member
                       + "'");
    }
    unsigned shards = unsigned(num(doc.find("shards")));
    for (unsigned i = 0; i < shards; ++i) {
        for (const char *leaf :
             {"busy_cycles", "alive_cells", "occupancy", "jobs",
              "peak_batch_jobs"}) {
            std::string key = "serve.shards.shard" + std::to_string(i)
                              + "." + leaf;
            if (!m->find(key) || !m->find(key)->isNumber())
                c.fail("missing metric '" + key + "'");
        }
    }
    return c.errors == 0;
}

bool
checkSpansSchema(const Value &doc)
{
    SchemaCheck c;
    if (!doc.isObject()) {
        c.fail("spans document is not an object");
        return false;
    }
    c.requireNumber(doc, "version", 1);
    c.requireString(doc, "schema", "opac.serve.spans.v1");
    const Value *arr = doc.find("spans");
    if (!arr || !arr->isArray()) {
        c.fail("missing 'spans' array");
        return false;
    }
    for (const Value &s : arr->array) {
        if (!s.isObject()) {
            c.fail("span record is not an object");
            break;
        }
        for (const char *key : {"ticket", "tenant", "compat", "deadline",
                                "shard", "batch", "failovers", "retries",
                                "replans"})
            if (!s.find(key) || !s.find(key)->isNumber()) {
                c.fail(std::string("span lacks number '") + key + "'");
                break;
            }
        const Value *edges = s.find("edges");
        if (!edges || !edges->isArray() || edges->array.empty()) {
            c.fail("span lacks a non-empty 'edges' array");
            break;
        }
        const Value *ph0 = edges->array.front().find("ph");
        if (!ph0 || !ph0->isString() || ph0->str != "submit")
            c.fail("span's first edge is not 'submit'");
        for (const Value &e : edges->array)
            if (!e.find("ph") || !e.find("at")
                || !e.find("at")->isNumber()) {
                c.fail("span edge lacks ph/at");
                break;
            }
        if (c.errors)
            break;
    }
    return c.errors == 0;
}

// ---- rendering ----

std::string
pct3(const Value *q)
{
    char buf[96];
    std::snprintf(buf, sizeof buf, "%9.0f %9.0f %9.0f",
                  qmember(q, "p50"), qmember(q, "p95"),
                  qmember(q, "p99"));
    return buf;
}

/** Sorted child ids under "serve.<group>.<stem>N." in the flat map. */
std::vector<unsigned>
childIds(const Value &metrics, const std::string &group,
         const std::string &stem)
{
    std::set<unsigned> ids;
    const std::string prefix = "serve." + group + "." + stem;
    for (const auto &[key, v] : metrics.object) {
        (void)v;
        if (key.rfind(prefix, 0) != 0)
            continue;
        std::size_t end = key.find('.', prefix.size());
        if (end == std::string::npos)
            continue;
        ids.insert(
            unsigned(std::atoi(key.substr(prefix.size()).c_str())));
    }
    return {ids.begin(), ids.end()};
}

void
printTenantTable(const Value &m)
{
    std::printf("per-tenant SLOs (cycles)\n");
    std::printf("  %-8s %9s %7s %6s %6s %6s | %29s | %29s\n", "tenant",
                "complete", "submit", "reject", "fail", "miss",
                "queue wait p50/p95/p99", "end-to-end p50/p95/p99");
    for (unsigned id : childIds(m, "tenants", "tenant")) {
        std::string base = "serve.tenants.tenant" + std::to_string(id);
        std::printf("  %-8s %9.0f %7.0f %6.0f %6.0f %6.0f | %s | %s\n",
                    ("tenant" + std::to_string(id)).c_str(),
                    num(m.find(base + ".completed")),
                    num(m.find(base + ".submitted")),
                    num(m.find(base + ".rejected")),
                    num(m.find(base + ".failed")),
                    num(m.find(base + ".deadline_missed")),
                    pct3(m.find(base + ".queue_wait_pct")).c_str(),
                    pct3(m.find(base + ".e2e_pct")).c_str());
    }
    std::printf("\n");
}

void
printKindTable(const Value &m)
{
    std::set<std::string> kinds;
    for (const auto &[key, v] : m.object) {
        (void)v;
        if (key.rfind("serve.kinds.", 0) != 0)
            continue;
        std::size_t end = key.find('.', 12);
        if (end != std::string::npos)
            kinds.insert(key.substr(12, end - 12));
    }
    if (kinds.empty())
        return;
    std::printf("per-kind SLOs (cycles)\n");
    std::printf("  %-8s %9s | %29s | %29s\n", "kind", "complete",
                "service p50/p95/p99", "end-to-end p50/p95/p99");
    for (const std::string &k : kinds) {
        std::string base = "serve.kinds." + k;
        std::printf("  %-8s %9.0f | %s | %s\n", k.c_str(),
                    num(m.find(base + ".completed")),
                    pct3(m.find(base + ".service_pct")).c_str(),
                    pct3(m.find(base + ".e2e_pct")).c_str());
    }
    std::printf("\n");
}

void
printShardTable(const Value &m, const std::vector<SpanRec> &spans,
                double makespan, unsigned width)
{
    std::vector<unsigned> ids = childIds(m, "shards", "shard");
    if (ids.empty())
        return;
    std::printf("shards\n");
    std::printf("  %-8s %8s %11s %10s %6s %10s\n", "shard", "jobs",
                "busy", "occupancy", "cells", "peak batch");
    for (unsigned id : ids) {
        std::string base = "serve.shards.shard" + std::to_string(id);
        std::printf("  %-8s %8.0f %11.0f %9.1f%% %6.0f %10.0f\n",
                    ("shard" + std::to_string(id)).c_str(),
                    num(m.find(base + ".jobs")),
                    num(m.find(base + ".busy_cycles")),
                    100.0 * num(m.find(base + ".occupancy")),
                    num(m.find(base + ".alive_cells")),
                    num(m.find(base + ".peak_batch_jobs")));
    }

    // Timeline from the span batch windows: per shard, the fraction of
    // each time bucket covered by batch service. Windows on one shard
    // never overlap (a shard serves one batch at a time), so coverage
    // is a plain sum of clipped window lengths.
    if (spans.empty() || makespan <= 0)
        { std::printf("\n"); return; }
    std::set<std::tuple<int, double, double>> windows;
    for (const SpanRec &r : spans)
        if (r.shard >= 0 && r.lastExecute >= 0 && r.end > r.lastExecute)
            windows.insert({r.shard, r.lastExecute, r.end});
    std::printf("\n  utilization timeline (0..%.0f cycles, '.' <50%%"
                " ':' <90%% '#' >=90%% of each bucket busy)\n",
                makespan);
    const double bucket = makespan / double(width);
    for (unsigned id : ids) {
        std::vector<double> covered(width, 0.0);
        for (const auto &[sh, b, e] : windows) {
            if (sh != int(id))
                continue;
            for (unsigned x = 0; x < width; ++x) {
                double lo = double(x) * bucket, hi = lo + bucket;
                covered[x] += std::max(
                    0.0, std::min(hi, e) - std::max(lo, b));
            }
        }
        std::string bar;
        for (unsigned x = 0; x < width; ++x) {
            double f = covered[x] / bucket;
            bar += f >= 0.9 ? '#' : f >= 0.5 ? ':' : f > 0.0 ? '.' : ' ';
        }
        std::printf("  shard%-3u |%s|\n", id, bar.c_str());
    }
    std::printf("\n");
}

void
printSlowest(const std::vector<SpanRec> &spans, unsigned top)
{
    std::vector<const SpanRec *> done;
    for (const SpanRec &r : spans)
        if (r.endPh == "commit" && r.submit >= 0)
            done.push_back(&r);
    if (done.empty())
        return;
    std::sort(done.begin(), done.end(),
              [](const SpanRec *a, const SpanRec *b) {
                  double la = a->end - a->submit, lb = b->end - b->submit;
                  if (la != lb)
                      return la > lb;
                  return a->ticket < b->ticket;
              });
    if (done.size() > top)
        done.resize(top);
    std::printf("top %zu slowest completed jobs (cycles)\n",
                done.size());
    std::printf("  %7s %-8s %-7s %6s %6s %10s %10s %10s %5s\n",
                "ticket", "tenant", "kind", "shard", "batch", "wait",
                "service", "total", "fo");
    for (const SpanRec *r : done) {
        double wait = (r->firstBatch >= 0 ? r->firstBatch : r->end)
                      - r->submit;
        double service =
            r->lastExecute >= 0 ? r->end - r->lastExecute : 0;
        std::printf("  %7u %-8s %-7s %6d %6u %10.0f %10.0f %10.0f"
                    " %5u\n",
                    r->ticket,
                    ("tenant" + std::to_string(r->tenant)).c_str(),
                    r->kind.c_str(), r->shard, r->batch, wait, service,
                    r->end - r->submit, r->failovers);
    }
    std::printf("\n");
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned top = 10;
    unsigned width = 64;
    bool check_schema = false;
    const char *paths[2] = {nullptr, nullptr};
    int npaths = 0;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--top=", 6) == 0) {
            top = unsigned(std::atoi(argv[i] + 6));
        } else if (std::strncmp(argv[i], "--width=", 8) == 0) {
            width = unsigned(std::atoi(argv[i] + 8));
        } else if (std::strcmp(argv[i], "--check-schema") == 0) {
            check_schema = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            npaths = 0;
            break;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "serve_report: unknown option '%s'\n",
                         argv[i]);
            return 2;
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            npaths = 3;
            break;
        }
    }
    if (npaths < 1 || npaths > 2 || width < 8) {
        std::fprintf(
            stderr,
            "usage: serve_report [--top=K] [--width=N] "
            "[--check-schema] <metrics.json> [spans.json]\n"
            "  renders per-tenant/per-kind SLO tables, the shard "
            "utilization timeline and the\n"
            "  top-K slowest jobs from Server::metricsJson() / "
            "spansJson() output files\n"
            "  --check-schema validates the documents against "
            "docs/OBSERVABILITY.md and exits\n");
        return 2;
    }

    std::string text, err;
    Value metricsDoc;
    if (!readFile(paths[0], text, err)
        || !opac::trace::json::parse(text, metricsDoc, &err)) {
        std::fprintf(stderr, "serve_report: %s: %s\n", paths[0],
                     err.c_str());
        return 2;
    }
    Value spansDoc;
    bool haveSpans = false;
    if (npaths == 2) {
        if (!readFile(paths[1], text, err)
            || !opac::trace::json::parse(text, spansDoc, &err)) {
            std::fprintf(stderr, "serve_report: %s: %s\n", paths[1],
                         err.c_str());
            return 2;
        }
        haveSpans = true;
    }

    if (check_schema) {
        bool ok = checkMetricsSchema(metricsDoc);
        if (haveSpans)
            ok = checkSpansSchema(spansDoc) && ok;
        if (!ok) {
            std::fprintf(stderr,
                         "serve_report: schema validation FAILED\n");
            return 1;
        }
        std::printf("serve_report: schema OK (%s%s)\n",
                    "opac.serve.metrics.v1",
                    haveSpans ? " + opac.serve.spans.v1" : "");
        return 0;
    }

    const Value *m = metricsDoc.find("metrics");
    if (!m || !m->isObject()) {
        std::fprintf(stderr,
                     "serve_report: %s: no 'metrics' object (not a "
                     "Server::metricsJson() file?)\n", paths[0]);
        return 2;
    }
    double makespan = num(metricsDoc.find("makespan"));
    std::vector<SpanRec> spans =
        haveSpans ? collectSpans(spansDoc) : std::vector<SpanRec>();

    std::printf("serve_report: %s (%.0f shard(s), makespan %.0f "
                "cycles)\n\n",
                paths[0], num(metricsDoc.find("shards")), makespan);
    std::printf(
        "summary: %0.f submitted, %.0f completed, %.0f failed, "
        "%.0f rejected, %.0f failovers,\n"
        "         %.0f incorrect, %.0f deadline misses, utilization "
        "%.1f%%\n\n",
        num(m->find("serve.submitted")), num(m->find("serve.completed")),
        num(m->find("serve.failed")), num(m->find("serve.rejected")),
        num(m->find("serve.failovers")), num(m->find("serve.incorrect")),
        num(m->find("serve.deadline_missed")),
        100.0 * num(m->find("serve.utilization")));

    printTenantTable(*m);
    printKindTable(*m);
    printShardTable(*m, spans, makespan, width);
    if (haveSpans)
        printSlowest(spans, top);
    return 0;
}
