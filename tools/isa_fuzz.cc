/**
 * @file
 * Bounded fuzz smoke for the decode/validate surfaces that face
 * untrusted bytes: the microcode decoder, the program validator, the
 * firmware unpacker and the --faults= spec parser. Malformed input
 * must yield a structured opac::Error — never a crash, an abort, or
 * (under ASan/UBSan, the CI configuration that runs this) undefined
 * behavior.
 *
 *   isa_fuzz [--iters N] [--seed S]
 *
 * Deterministic for a given seed; the default 4000 iterations run in
 * well under a second, so the tool doubles as a ctest case.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <string>
#include <vector>

#include "common/error.hh"
#include "common/random.hh"
#include "fault/fault.hh"
#include "isa/encode.hh"
#include "isa/program.hh"
#include "kernels/firmware.hh"

using namespace opac;

namespace
{

struct Tally
{
    unsigned long accepted = 0; //!< parsed and validated cleanly
    unsigned long rejected = 0; //!< threw a structured opac::Error
    unsigned long escaped = 0;  //!< threw anything else (a bug)
};

/** Run @p fn, classifying the outcome. */
template <typename Fn>
void
probe(Tally &t, const char *what, Fn &&fn)
{
    try {
        fn();
        ++t.accepted;
    } catch (const Error &) {
        ++t.rejected; // structured rejection: the contract
    } catch (const std::exception &e) {
        ++t.escaped;
        std::fprintf(stderr, "FUZZ ESCAPE (%s): unstructured %s\n",
                     what, e.what());
    } catch (...) {
        ++t.escaped;
        std::fprintf(stderr, "FUZZ ESCAPE (%s): non-std exception\n",
                     what);
    }
}

std::vector<std::uint32_t>
randomImage(Rng &rng)
{
    std::vector<std::uint32_t> image(rng.range(0, 48));
    for (auto &w : image)
        w = std::uint32_t(rng.next());
    return image;
}

/** A printable-ish random spec string, biased toward the grammar. */
std::string
randomSpec(Rng &rng)
{
    static const char *const frags[] = {
        "seed=",   "rate=",  "n=",     "horizon=", "kinds=", "bits=",
        "at=",     "flip",   "hang",   "mem",      "all",    "/",
        "+",       ",",      "=",      "tpx",      "sum",    "0",
        "1",       "17",     "9999999999999999999", "-3",    "x",
        "zz",      "",       "flip+drop",           "100/flip/0/tpx/1",
    };
    std::string s;
    unsigned parts = unsigned(rng.range(0, 8));
    for (unsigned i = 0; i < parts; ++i)
        s += frags[rng.range(0, long(std::size(frags)) - 1)];
    return s;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    unsigned long iters = 4000;
    std::uint64_t seed = 1;
    for (int i = 1; i + 1 < argc; ++i) {
        if (!std::strcmp(argv[i], "--iters"))
            iters = std::strtoul(argv[i + 1], nullptr, 10);
        else if (!std::strcmp(argv[i], "--seed"))
            seed = std::strtoull(argv[i + 1], nullptr, 10);
    }

    Rng rng(seed);
    Tally decode, firmware, spec;

    // A pristine firmware image to mutate: single bit flips and short
    // truncations explore the interesting neighborhood of valid input
    // far better than uniform noise.
    const std::vector<Word> pristine = kernels::standardFirmware();

    for (unsigned long i = 0; i < iters; ++i) {
        probe(decode, "isa::decode+validate", [&rng] {
            isa::Program p = isa::decode(randomImage(rng), "fuzz");
            p.validate();
        });

        probe(firmware, "unpackFirmware", [&rng, &pristine] {
            std::vector<Word> image = pristine;
            switch (rng.range(0, 2)) {
              case 0: { // bit flips
                unsigned flips = unsigned(rng.range(1, 8));
                for (unsigned f = 0; f < flips; ++f)
                    image[std::size_t(rng.next() % image.size())] ^=
                        1u << (rng.next() % 32);
                break;
              }
              case 1: // truncation
                image.resize(std::size_t(rng.next() % image.size()));
                break;
              default: // trailing garbage
                image.push_back(Word(rng.next()));
                break;
            }
            kernels::unpackFirmware(image);
        });

        probe(spec, "parseFaultSpec", [&rng] {
            fault::parseFaultSpec(randomSpec(rng));
        });
    }

    std::printf("isa_fuzz: %lu iterations, seed %llu\n", iters,
                (unsigned long long)seed);
    std::printf("  decode/validate: %lu ok, %lu rejected, %lu escaped\n",
                decode.accepted, decode.rejected, decode.escaped);
    std::printf("  firmware:        %lu ok, %lu rejected, %lu escaped\n",
                firmware.accepted, firmware.rejected, firmware.escaped);
    std::printf("  fault spec:      %lu ok, %lu rejected, %lu escaped\n",
                spec.accepted, spec.rejected, spec.escaped);
    unsigned long escaped =
        decode.escaped + firmware.escaped + spec.escaped;
    if (escaped) {
        std::fprintf(stderr,
                     "isa_fuzz: FAIL: %lu unstructured escapes\n",
                     escaped);
        return 1;
    }
    std::printf("isa_fuzz: PASS (no crashes, no unstructured "
                "exceptions)\n");
    return 0;
}
