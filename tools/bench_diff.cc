/**
 * @file
 * Compare a bench run against a committed baseline from the command
 * line — the CI regression gate.
 *
 *   bench_diff [--threshold=PCT] [--allow-missing] \
 *              [--gate-sim-rate=PCT] <baseline.json> <current.json>
 *
 * Both inputs are BENCH_*.json documents (bench/bench_util.hh writes
 * them; bench/baselines/ holds the committed ones). Prints the per-case
 * delta table and exits
 *
 *   0 — every case within the threshold,
 *   1 — at least one case regressed (cycles up or flops/cycle down by
 *       more than the threshold), or a baseline case is missing from
 *       the current run (unless --allow-missing),
 *   2 — usage or unreadable/malformed input,
 *   3 — a baseline record carries an extra stat (e.g. completion_rate,
 *       correct, sim_rate) that the matching current record lacks: the
 *       baseline names a gate the current run cannot answer, which is
 *       a bench/baseline schema mismatch, not a pass.
 *
 * The simulator is cycle-deterministic, so on an unchanged machine
 * model every delta is exactly 0%; the default threshold only leaves
 * room for intentional small timing changes that ride along a PR.
 *
 * The sim_rate trend (simulated cycles per wall second) is shown but
 * never gated on by default — it measures the machine running the
 * bench, not the machine being simulated. --gate-sim-rate=PCT opts
 * into a soft gate: a case whose sim_rate drops by more than PCT
 * percent against the baseline fails the run. Use it only where
 * baseline and current ran on comparable hosts (e.g. a dedicated perf
 * leg), never on shared CI runners.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "stats/benchcmp.hh"

using namespace opac;

int
main(int argc, char **argv)
{
    double threshold = 5.0;
    double rate_gate = -1.0; //!< <0: sim_rate is informational only
    bool allow_missing = false;
    const char *paths[2] = {nullptr, nullptr};
    int npaths = 0;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threshold=", 12) == 0) {
            threshold = std::atof(argv[i] + 12);
        } else if (std::strncmp(argv[i], "--gate-sim-rate=", 16) == 0) {
            rate_gate = std::atof(argv[i] + 16);
        } else if (std::strcmp(argv[i], "--allow-missing") == 0) {
            allow_missing = true;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            npaths = 0;
            break;
        } else if (argv[i][0] == '-') {
            std::fprintf(stderr, "bench_diff: unknown option '%s'\n",
                         argv[i]);
            return 2;
        } else if (npaths < 2) {
            paths[npaths++] = argv[i];
        } else {
            npaths = 3; // too many positional arguments
            break;
        }
    }
    if (npaths != 2 || threshold < 0.0) {
        std::fprintf(stderr,
                     "usage: bench_diff [--threshold=PCT] "
                     "[--allow-missing] [--gate-sim-rate=PCT] "
                     "<baseline.json> <current.json>\n"
                     "  exit 0: all cases within PCT%% (default 5) of "
                     "the baseline\n"
                     "  exit 1: a regression, or a baseline case "
                     "missing from the current run\n"
                     "  exit 3: a baseline extra stat absent from the "
                     "matching current record\n"
                     "  --gate-sim-rate=PCT additionally fails when a "
                     "case simulates more than PCT%% slower\n"
                     "  (cycles/wall-second) than the baseline — "
                     "opt-in, for same-host comparisons only\n");
        return 2;
    }

    stats::BenchFile base, cur;
    std::string err;
    if (!stats::loadBenchFile(paths[0], base, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", paths[0],
                     err.c_str());
        return 2;
    }
    if (!stats::loadBenchFile(paths[1], cur, &err)) {
        std::fprintf(stderr, "bench_diff: %s: %s\n", paths[1],
                     err.c_str());
        return 2;
    }

    stats::BenchDiff diff = stats::compareBench(base, cur, threshold);
    // Identify both sides by their v2 metadata so a gate failure says
    // exactly which baseline it was judged against.
    auto meta = [](const stats::BenchFile &f) {
        auto field = [](const std::string &s) {
            return s.empty() ? "?" : s.c_str();
        };
        return std::string()
               + "sha " + field(f.gitSha) + ", " + field(f.timestamp)
               + ", " + field(f.buildType) + " build";
    };
    std::printf("baseline %s (%s)\n current %s (%s)\n\n", paths[0],
                meta(base).c_str(), paths[1], meta(cur).c_str());
    std::printf("%s", stats::renderBenchDiff(diff).c_str());

    if (diff.anyRegression()) {
        std::fprintf(stderr, "bench_diff: FAIL — regression beyond "
                             "%.1f%%\n", threshold);
        return 1;
    }
    if (!diff.missingExtras.empty()) {
        for (const auto &me : diff.missingExtras)
            std::fprintf(stderr,
                         "bench_diff: baseline stat '%s' is absent "
                         "from the current run — its gate cannot be "
                         "evaluated\n", me.c_str());
        std::fprintf(stderr,
                     "bench_diff: FAIL — %zu baseline stat(s) missing "
                     "from the current records (schema mismatch: "
                     "re-run the bench or refresh the baseline)\n",
                     diff.missingExtras.size());
        return 3;
    }
    if (rate_gate >= 0.0) {
        int slow = 0;
        for (const auto &d : diff.deltas) {
            if (d.baseSimRate > 0.0 && d.curSimRate > 0.0
                && d.simRatePct < -rate_gate) {
                std::fprintf(stderr,
                             "bench_diff: sim_rate gate: '%s' "
                             "simulates %.0f%% slower than the "
                             "baseline\n", d.name.c_str(),
                             -d.simRatePct);
                ++slow;
            }
        }
        if (slow > 0) {
            std::fprintf(stderr, "bench_diff: FAIL — %d case(s) beyond "
                                 "the --gate-sim-rate=%.1f%% budget\n",
                         slow, rate_gate);
            return 1;
        }
    }
    if (!diff.missing.empty() && !allow_missing) {
        std::fprintf(stderr, "bench_diff: FAIL — %zu baseline case(s) "
                             "missing from the current run\n",
                     diff.missing.size());
        return 1;
    }
    std::printf("bench_diff: OK — %zu case(s) within %.1f%% of the "
                "baseline\n", diff.deltas.size(), threshold);
    return 0;
}
