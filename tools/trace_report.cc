/**
 * @file
 * Summarize an OPAC trace file from the command line.
 *
 *   trace_report <trace.csv>   — replay a CSV trace (the archival form
 *                                written by `--trace=<file>.csv`)
 *                                through the aggregator and print the
 *                                utilization / FIFO / bus / stall
 *                                report;
 *   trace_report <trace.json>  — structural summary of a Chrome
 *                                trace-event file: per-process event
 *                                counts and the covered time span.
 *
 * Exit status is non-zero on unreadable or malformed input, so CI can
 * assert that a bench-produced trace is well-formed.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>

#include "common/logging.hh"
#include "common/table.hh"
#include "trace/aggregate.hh"
#include "trace/json.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

using namespace opac;

namespace
{

/**
 * Render a fast-tier sidecar file (benches' --fast-tier-report=FILE:
 * per-case engine burst counts and per-cell compile/fallback
 * counters). The counters live in a sidecar rather than the trace
 * stream because a traced run never bursts — the stream must stay
 * byte-identical with the tier on or off.
 */
int
appendFastTier(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr,
                     "trace_report: cannot open fast-tier report "
                     "'%s'\n", path.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    std::printf("\nfast-tier counters (%s):\n%s", path.c_str(),
                buf.str().c_str());
    return 0;
}

int
reportCsv(std::ifstream &in, long top_stalls)
{
    trace::Tracer tracer;
    trace::Aggregate agg;
    tracer.addSink(&agg);
    std::string err;
    if (!trace::readCsv(in, tracer, &err)) {
        std::fprintf(stderr, "trace_report: %s\n", err.c_str());
        return 1;
    }
    std::printf("%llu events\n\n",
                (unsigned long long)tracer.eventCount());
    if (top_stalls > 0) {
        std::printf("%s",
                    agg.topStallsReport(std::size_t(top_stalls)).c_str());
        return 0;
    }
    std::printf("%s", agg.report().c_str());
    return 0;
}

int
reportChromeJson(const std::string &text)
{
    trace::json::Value doc;
    std::string err;
    if (!trace::json::parse(text, doc, &err)) {
        std::fprintf(stderr, "trace_report: %s\n", err.c_str());
        return 1;
    }
    const trace::json::Value *events = doc.find("traceEvents");
    if (!events || !events->isArray()) {
        std::fprintf(stderr,
                     "trace_report: no traceEvents array found\n");
        return 1;
    }

    // pid -> process name from metadata records.
    std::map<int, std::string> procNames;
    // pid -> (event count, first ts, last ts)
    struct ProcSummary
    {
        std::uint64_t count = 0;
        double first = 0.0, last = 0.0;
        bool seen = false;
    };
    std::map<int, ProcSummary> procs;
    double first = 0.0, last = 0.0;
    bool any = false;

    for (const auto &e : events->array) {
        const auto *ph = e.find("ph");
        const auto *pid = e.find("pid");
        if (!ph || !ph->isString() || !pid || !pid->isNumber())
            continue;
        int p = int(pid->number);
        if (ph->str == "M") {
            const auto *name = e.find("name");
            const auto *args = e.find("args");
            if (name && name->isString()
                && name->str == "process_name" && args) {
                if (const auto *n = args->find("name"))
                    procNames[p] = n->str;
            }
            continue;
        }
        ProcSummary &s = procs[p];
        ++s.count;
        const auto *ts = e.find("ts");
        if (ts && ts->isNumber()) {
            if (!s.seen || ts->number < s.first)
                s.first = ts->number;
            if (!s.seen || ts->number > s.last)
                s.last = ts->number;
            s.seen = true;
            if (!any || ts->number < first)
                first = ts->number;
            if (!any || ts->number > last)
                last = ts->number;
            any = true;
        }
    }

    std::printf("%zu trace records", events->array.size());
    if (any)
        std::printf(" spanning cycles %.0f..%.0f", first, last);
    std::printf("\n\n");

    TextTable t("per-process events");
    t.header({"pid", "process", "events", "first", "last"});
    for (const auto &[p, s] : procs) {
        auto named = procNames.find(p);
        t.row({strfmt("%d", p),
               named != procNames.end() ? named->second : "?",
               strfmt("%llu", (unsigned long long)s.count),
               s.seen ? strfmt("%.0f", s.first) : "-",
               s.seen ? strfmt("%.0f", s.last) : "-"});
    }
    std::printf("%s", t.render().c_str());
    return 0;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    long top_stalls = 0;
    std::string fast_tier;
    const char *input = nullptr;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--top-stalls=", 13) == 0) {
            top_stalls = std::atol(argv[i] + 13);
            if (top_stalls <= 0) {
                std::fprintf(stderr,
                             "trace_report: bad --top-stalls value\n");
                return 2;
            }
        } else if (std::strncmp(argv[i], "--fast-tier=", 12) == 0) {
            fast_tier = argv[i] + 12;
        } else if (std::strcmp(argv[i], "--help") == 0) {
            input = nullptr;
            break;
        } else if (!input) {
            input = argv[i];
        } else {
            input = nullptr; // two positional arguments: usage error
            break;
        }
    }
    if (!input) {
        std::fprintf(stderr,
                     "usage: trace_report [--top-stalls=N] "
                     "[--fast-tier=FILE] <trace.csv | trace.json>\n"
                     "  .csv  -> full aggregate report (utilization, "
                     "FIFO depths, bus, stalls)\n"
                     "           with --top-stalls=N: only the N "
                     "largest stall sources, ranked\n"
                     "  other -> Chrome trace-event structural "
                     "summary\n"
                     "  --fast-tier=FILE appends a bench-produced "
                     "fast-tier sidecar report\n"
                     "  (--fast-tier-report=FILE) after the trace "
                     "summary\n");
        return 2;
    }
    std::ifstream in(input);
    if (!in) {
        std::fprintf(stderr, "trace_report: cannot open '%s'\n",
                     input);
        return 1;
    }
    std::string path = input;
    int rc;
    if (path.size() >= 4
        && path.compare(path.size() - 4, 4, ".csv") == 0) {
        rc = reportCsv(in, top_stalls);
    } else if (top_stalls > 0) {
        std::fprintf(stderr, "trace_report: --top-stalls needs a CSV "
                             "trace (stall events are not recovered "
                             "from Chrome JSON)\n");
        return 2;
    } else {
        std::stringstream buf;
        buf << in.rdbuf();
        rc = reportChromeJson(buf.str());
    }
    if (rc == 0 && !fast_tier.empty())
        rc = appendFastTier(fast_tier);
    return rc;
}
