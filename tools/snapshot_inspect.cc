/**
 * @file
 * Inspect, validate and diff machine snapshot files from the command
 * line (docs/RESILIENCE.md, "Checkpoint & replay").
 *
 *   snapshot_inspect <file>            dump the header + section table
 *   snapshot_inspect --check <file>    validate only (quiet on stdout)
 *   snapshot_inspect --diff <a> <b>    component-level comparison
 *
 * Exit codes:
 *
 *   0 — file decodes cleanly (and, for --diff, the two snapshots are
 *       byte-identical section for section),
 *   1 — a file failed validation (bad magic, unknown format version,
 *       truncation, checksum mismatch), or the diffed snapshots
 *       differ,
 *   2 — usage error or unreadable path.
 *
 * The tool links only the snap container library: it decodes the
 * length-prefixed section framing and the FNV-1a footer without
 * knowing any component's payload schema, which is exactly what makes
 * it usable on snapshots from older or newer simulator builds.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "snap/snapshot.hh"

using namespace opac;

namespace
{

bool
load(const char *path, snap::Snapshot &out)
{
    try {
        out = snap::Snapshot::readFile(path);
    } catch (const SnapshotError &e) {
        std::fprintf(stderr, "snapshot_inspect: %s\n", e.what());
        return false;
    }
    return true;
}

void
dump(const char *path, const snap::Snapshot &s)
{
    std::size_t payload = 0;
    for (const snap::Section &sec : s.sections())
        payload += sec.payload.size();
    std::printf("%s\n", path);
    std::printf("  format version %u\n", snap::formatVersion);
    std::printf("  cycle          %llu\n",
                static_cast<unsigned long long>(s.cycle));
    std::printf("  fingerprint    %016llx\n",
                static_cast<unsigned long long>(s.fingerprint));
    std::printf("  sections       %zu (%zu payload bytes)\n",
                s.sections().size(), payload);
    for (const snap::Section &sec : s.sections())
        std::printf("    %-16s v%-3u %8zu bytes  fnv %016llx\n",
                    sec.name.c_str(), sec.version, sec.payload.size(),
                    static_cast<unsigned long long>(snap::fnv1a(
                        sec.payload.data(), sec.payload.size())));
}

int
diff(const char *pa, const char *pb)
{
    snap::Snapshot a, b;
    if (!load(pa, a) || !load(pb, b))
        return 1;
    int differs = 0;
    auto report = [&differs](const char *fmt, const std::string &name) {
        std::printf(fmt, name.c_str());
        differs = 1;
    };
    if (a.cycle != b.cycle) {
        std::printf("cycle: %llu vs %llu\n",
                    static_cast<unsigned long long>(a.cycle),
                    static_cast<unsigned long long>(b.cycle));
        differs = 1;
    }
    if (a.fingerprint != b.fingerprint) {
        std::printf("fingerprint: %016llx vs %016llx\n",
                    static_cast<unsigned long long>(a.fingerprint),
                    static_cast<unsigned long long>(b.fingerprint));
        differs = 1;
    }
    for (const snap::Section &sa : a.sections()) {
        const snap::Section *sb = b.find(sa.name);
        if (!sb) {
            report("section %s: only in the first snapshot\n", sa.name);
            continue;
        }
        if (sa.version != sb->version) {
            std::printf("section %s: version %u vs %u\n",
                        sa.name.c_str(), sa.version, sb->version);
            differs = 1;
        } else if (sa.payload != sb->payload) {
            std::printf("section %s: payloads differ (%zu vs %zu "
                        "bytes)\n",
                        sa.name.c_str(), sa.payload.size(),
                        sb->payload.size());
            differs = 1;
        }
    }
    for (const snap::Section &sb : b.sections())
        if (!a.find(sb.name))
            report("section %s: only in the second snapshot\n",
                   sb.name);
    if (!differs)
        std::printf("identical (%zu sections)\n", a.sections().size());
    return differs;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage: snapshot_inspect <file>\n"
                 "       snapshot_inspect --check <file>\n"
                 "       snapshot_inspect --diff <a> <b>\n");
    return 2;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    if (argc == 2 && argv[1][0] != '-') {
        snap::Snapshot s;
        if (!load(argv[1], s))
            return 1;
        dump(argv[1], s);
        return 0;
    }
    if (argc == 3 && std::strcmp(argv[1], "--check") == 0) {
        snap::Snapshot s;
        if (!load(argv[2], s))
            return 1;
        std::printf("ok: %zu sections at cycle %llu\n",
                    s.sections().size(),
                    static_cast<unsigned long long>(s.cycle));
        return 0;
    }
    if (argc == 4 && std::strcmp(argv[1], "--diff") == 0)
        return diff(argv[2], argv[3]);
    return usage();
}
