/**
 * @file
 * Unit and property tests for the planner substrate: chunk/segment
 * decomposition, region emission and plan structure.
 */

#include <gtest/gtest.h>

#include "common/random.hh"
#include "kernels/kernel_set.hh"
#include "planner/chunking.hh"
#include "planner/linalg_plan.hh"
#include "planner/matref.hh"

using namespace opac;
using namespace opac::planner;

TEST(SplitWords, EvenAndRaggedSplits)
{
    auto chunks = splitWords(10, 4);
    ASSERT_EQ(chunks.size(), 4u);
    EXPECT_EQ(chunks[0].words(), 3u);
    EXPECT_EQ(chunks[1].words(), 3u);
    EXPECT_EQ(chunks[2].words(), 2u);
    EXPECT_EQ(chunks[3].words(), 2u);
    EXPECT_EQ(chunks[0].w0, 0u);
    EXPECT_EQ(chunks[3].w1, 10u);
}

TEST(SplitWords, MorePartsThanWords)
{
    auto chunks = splitWords(2, 5);
    ASSERT_EQ(chunks.size(), 5u);
    EXPECT_EQ(chunks[0].words(), 1u);
    EXPECT_EQ(chunks[1].words(), 1u);
    for (int i = 2; i < 5; ++i)
        EXPECT_EQ(chunks[std::size_t(i)].words(), 0u);
}

TEST(SplitChunk, WholeColumns)
{
    Segments s = splitChunk(Chunk{0, 12}, 4);
    EXPECT_EQ(s.rot, 0u);
    EXPECT_EQ(s.head, 0u);
    EXPECT_EQ(s.full, 3u);
    EXPECT_EQ(s.tail, 0u);
    EXPECT_EQ(s.colCount, 3u);
}

TEST(SplitChunk, MidColumnBoundaries)
{
    // Tile rows mb = 5; chunk [3, 14): head rows 3..4 of col 0, full
    // col 1, tail rows 0..3 of col 2.
    Segments s = splitChunk(Chunk{3, 14}, 5);
    EXPECT_EQ(s.rot, 3u);
    EXPECT_EQ(s.head, 2u);
    EXPECT_EQ(s.col0, 0u);
    EXPECT_EQ(s.fullCol0, 1u);
    EXPECT_EQ(s.full, 1u);
    EXPECT_EQ(s.tail, 4u);
    EXPECT_EQ(s.tailCol, 2u);
    EXPECT_EQ(s.colCount, 3u);
}

TEST(SplitChunk, InsideSingleColumn)
{
    Segments s = splitChunk(Chunk{7, 9}, 5); // rows 2..3 of col 1
    EXPECT_EQ(s.rot, 2u);
    EXPECT_EQ(s.head, 2u);
    EXPECT_EQ(s.full, 0u);
    EXPECT_EQ(s.tail, 0u);
    EXPECT_EQ(s.colCount, 1u);
}

/**
 * Property: for random tiles and cell counts, the segment
 * decompositions of the chunks exactly re-cover the tile's word range
 * in order, and every reported field is internally consistent.
 */
TEST(SplitChunkProperty, SegmentsReconstructTheChunk)
{
    Rng rng(0x5e6);
    for (int trial = 0; trial < 2000; ++trial) {
        std::size_t mb = std::size_t(rng.range(1, 40));
        std::size_t nb = std::size_t(rng.range(1, 40));
        unsigned parts = unsigned(rng.range(1, 17));
        auto chunks = splitWords(mb * nb, parts);

        std::size_t covered = 0;
        for (const auto &ch : chunks) {
            EXPECT_EQ(ch.w0, covered);
            covered = ch.w1;
            Segments s = splitChunk(ch, mb);
            // Word count adds up.
            EXPECT_EQ(s.head + s.full * mb + s.tail, ch.words());
            // Rotation is the first row.
            EXPECT_EQ(s.rot, ch.w0 % mb);
            // Head never spans a column; tail strictly shorter than
            // one (else it would be a full column).
            EXPECT_LE(s.head, mb - s.rot);
            EXPECT_LT(s.tail, mb);
            if (ch.words() > 0) {
                // Column count matches the touched range.
                std::size_t first = ch.w0 / mb;
                std::size_t last = (ch.w1 - 1) / mb;
                EXPECT_EQ(s.colCount, last - first + 1);
                EXPECT_EQ(s.col0, first);
            }
            // Reconstruct the word sequence from the segments.
            std::vector<std::size_t> words;
            for (std::size_t i = 0; i < s.head; ++i)
                words.push_back(s.col0 * mb + s.rot + i);
            for (std::size_t f = 0; f < s.full; ++f) {
                for (std::size_t i = 0; i < mb; ++i)
                    words.push_back((s.fullCol0 + f) * mb + i);
            }
            for (std::size_t i = 0; i < s.tail; ++i)
                words.push_back(s.tailCol * mb + i);
            ASSERT_EQ(words.size(), ch.words());
            for (std::size_t i = 0; i < words.size(); ++i)
                EXPECT_EQ(words[i], ch.w0 + i);
        }
        EXPECT_EQ(covered, mb * nb);
        if (HasFailure())
            break;
    }
}

TEST(PlanStructure, MatUpdateOpsAreWellFormed)
{
    copro::CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 256;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), 40, 40);
    MatRef a = allocMat(sys.memory(), 40, 20);
    MatRef b = allocMat(sys.memory(), 20, 40);
    plan.matUpdate(c, a, b);

    std::size_t sent = 0, received = 0, calls = 0;
    for (const auto &op : plan.pending()) {
        switch (op.kind) {
          case host::HostOp::Kind::Send:
            // A broadcast of w words counts once.
            sent += op.region.count();
            break;
          case host::HostOp::Kind::Recv:
            received += op.region.count();
            break;
          case host::HostOp::Kind::Call:
            ++calls;
            break;
          default:
            break;
        }
    }
    // Tile traffic: chunk loads (40*40) + K * (A column broadcast +
    // B row, with at most P-1 duplicated split-column words) and the
    // full drain.
    EXPECT_EQ(received, 1600u);
    EXPECT_GE(sent, 1600u + 20u * (40 + 40));
    EXPECT_LE(sent, 1600u + 20u * (40 + 40 + 3) * 2);
    EXPECT_GE(calls, 4u);
    // 40x40 tiled at 32x32 (Tf*P = 1024 words): 2x2 = 4 tiles.
    EXPECT_EQ(plan.stats().tiles, 4u);
}

TEST(PlanStructure, LuRecursionCountsScale)
{
    copro::CoprocConfig cfg;
    cfg.cells = 1;
    cfg.cell.tf = 512; // leaf max 22
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), 176, 176);
    plan.lu(a);
    // 176 -> 88/88 -> 44/44 each -> 22-leaves: 8 leaves, one
    // reciprocal per diagonal element.
    EXPECT_EQ(plan.stats().luLeaves, 8u);
    EXPECT_EQ(plan.stats().recipOps, 176u);
}

TEST(PlanStructure, CommitMovesOpsToHost)
{
    copro::CoprocConfig cfg;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), 8, 8);
    MatRef a = allocMat(sys.memory(), 8, 4);
    MatRef b = allocMat(sys.memory(), 4, 8);
    plan.matUpdate(c, a, b);
    EXPECT_FALSE(plan.pending().empty());
    plan.commit();
    EXPECT_TRUE(plan.pending().empty());
    EXPECT_FALSE(sys.host().done());
}

TEST(MatRefApi, SubViewAddressing)
{
    MatRef m{100, 10, 8, 12};
    MatRef s = m.sub(2, 3, 4, 5);
    EXPECT_EQ(s.addrOf(0, 0), m.addrOf(2, 3));
    EXPECT_EQ(s.addrOf(3, 4), m.addrOf(5, 7));
    EXPECT_EQ(s.ld, 12u);
    EXPECT_THROW(m.sub(8, 0, 4, 1), std::logic_error);
}
