/**
 * @file
 * The stats/PMU observability layer: stat-kind arithmetic, hierarchical
 * naming and lookup, interval-sampling boundary behaviour, JSON
 * round-trips, architectural PMU readback over tpi, and the bench_diff
 * regression classifier.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/models.hh"
#include "common/logging.hh"
#include "coproc/coprocessor.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"
#include "planner/signal_plan.hh"
#include "stats/benchcmp.hh"
#include "stats/sampler.hh"
#include "stats/stats.hh"
#include "trace/json.hh"

using namespace opac;
using namespace opac::planner;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

CoprocConfig
tokenConfig(unsigned cells, std::size_t tf, unsigned tau)
{
    CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.fp = cell::FpKind::Token;
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    return cfg;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Stat-kind arithmetic
// ---------------------------------------------------------------------

TEST(StatMath, CounterAndWatermark)
{
    stats::Counter c;
    ++c;
    c += 41;
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);

    stats::Watermark w;
    w.observe(3);
    w.observe(7);
    w.observe(5);
    EXPECT_EQ(w.value(), 7u);
}

TEST(StatMath, WeightedAverage)
{
    stats::Average a;
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    a.sample(1.0, 3);
    a.sample(5.0, 1);
    EXPECT_DOUBLE_EQ(a.mean(), (1.0 * 3 + 5.0) / 4.0);
    EXPECT_EQ(a.weight(), 4u);
}

TEST(StatMath, Distribution)
{
    stats::Distribution d;
    d.sample(2.0);
    d.sample(8.0);
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 8.0);
    EXPECT_DOUBLE_EQ(d.mean(), 5.0);
    EXPECT_EQ(d.count(), 3u);
}

TEST(StatMath, HistogramPowerOfTwoBuckets)
{
    stats::Histogram h;
    h.sample(0);            // bucket 0
    h.sample(1);            // bucket 1: [1, 2)
    h.sample(2);            // bucket 2: [2, 4)
    h.sample(3);            // bucket 2
    h.sample(4);            // bucket 3: [4, 8)
    h.sample(7);            // bucket 3
    h.sample(1024);         // bucket 11: [1024, 2048)
    ASSERT_EQ(h.buckets().size(), 12u);
    EXPECT_EQ(h.buckets()[0], 1u);
    EXPECT_EQ(h.buckets()[1], 1u);
    EXPECT_EQ(h.buckets()[2], 2u);
    EXPECT_EQ(h.buckets()[3], 2u);
    EXPECT_EQ(h.buckets()[11], 1u);
    EXPECT_EQ(h.count(), 7u);
    EXPECT_EQ(h.max(), 1024u);
    EXPECT_FALSE(h.render().empty());
}

TEST(StatMath, FormulaEvaluatesAtReadTime)
{
    stats::Counter c;
    stats::Formula f;
    f.define([&] { return double(c.value()) / 2.0; });
    EXPECT_DOUBLE_EQ(f.value(), 0.0);
    c += 10;
    EXPECT_DOUBLE_EQ(f.value(), 5.0);
}

// ---------------------------------------------------------------------
// Hierarchy: naming, lookup, reset
// ---------------------------------------------------------------------

TEST(StatHierarchy, QualifiedNamesAndLookup)
{
    stats::StatGroup root("coproc");
    stats::StatGroup cell0("cell0", &root);
    stats::Counter fma;
    stats::Watermark high;
    cell0.addCounter("fma", &fma, "chained multiply-adds");
    // Dotted leaf names (the FIFO convention) must resolve before any
    // descent into child groups.
    cell0.addWatermark("fifo.sum.highWater", &high, "");

    fma += 9;
    high.observe(17);

    EXPECT_EQ(root.counterValue("cell0.fma"), 9u);
    EXPECT_DOUBLE_EQ(root.scalarValue("cell0.fifo.sum.highWater"), 17.0);
    EXPECT_EQ(root.findChild("cell0"), &cell0);
    EXPECT_EQ(root.findChild("cell9"), nullptr);

    std::string out;
    root.dump(out);
    EXPECT_NE(out.find("coproc.cell0.fma"), std::string::npos);
    EXPECT_NE(out.find("coproc.cell0.fifo.sum.highWater"),
              std::string::npos);

    EXPECT_THROW((void)root.counterValue("cell0.nonexistent"),
                 std::logic_error);
}

TEST(StatHierarchy, ResetAllClearsSubtree)
{
    stats::StatGroup root("r");
    stats::StatGroup child("c", &root);
    stats::Counter a, b;
    root.addCounter("a", &a);
    child.addCounter("b", &b);
    a += 5;
    b += 7;
    root.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(b.value(), 0u);
}

TEST(StatHierarchy, ForEachScalarIsDeterministic)
{
    stats::StatGroup root("r");
    stats::Counter z, a;
    root.addCounter("zeta", &z);
    root.addCounter("alpha", &a);
    std::vector<std::string> names1, names2;
    root.forEachScalar([&](const std::string &n, double) {
        names1.push_back(n);
    });
    root.forEachScalar([&](const std::string &n, double) {
        names2.push_back(n);
    });
    EXPECT_EQ(names1, names2);
    ASSERT_EQ(names1.size(), 2u);
    EXPECT_EQ(names1[0], "r.alpha"); // sorted within a group
}

// ---------------------------------------------------------------------
// JSON round-trip
// ---------------------------------------------------------------------

TEST(StatJson, RoundTripThroughParser)
{
    stats::StatGroup root("sys");
    stats::Counter c;
    stats::Histogram h;
    stats::Formula f([&] { return double(c.value()) * 0.5; });
    root.addCounter("events", &c, "raw events");
    root.addHistogram("depth", &h, "queue depth");
    root.addFormula("half", &f, "events / 2");
    c += 12;
    h.sample(3);
    h.sample(0);

    trace::json::Value doc;
    std::string err;
    ASSERT_TRUE(trace::json::parse(root.json(), doc, &err)) << err;

    const auto *events = doc.find("sys.events");
    ASSERT_NE(events, nullptr);
    EXPECT_DOUBLE_EQ(events->number, 12.0);

    const auto *half = doc.find("sys.half");
    ASSERT_NE(half, nullptr);
    EXPECT_DOUBLE_EQ(half->number, 6.0);

    const auto *depth = doc.find("sys.depth");
    ASSERT_NE(depth, nullptr);
    const auto *count = depth->find("count");
    ASSERT_NE(count, nullptr);
    EXPECT_DOUBLE_EQ(count->number, 2.0);
}

// ---------------------------------------------------------------------
// Interval sampling boundaries
// ---------------------------------------------------------------------

namespace
{

/** Ticks for a fixed number of cycles, bumping a counter. */
class CountdownComponent : public sim::Component
{
  public:
    CountdownComponent(unsigned cycles, stats::Counter &ticks)
        : sim::Component("countdown"), left(cycles), ticks(ticks)
    {}

    void
    tick(sim::Engine &engine) override
    {
        if (left > 0) {
            --left;
            ++ticks;
            engine.noteProgress();
        }
    }

    bool done() const override { return left == 0; }

  private:
    unsigned left;
    stats::Counter &ticks;
};

} // anonymous namespace

TEST(SamplerTest, IntervalOneSamplesEveryCycle)
{
    stats::StatGroup root("sys");
    stats::Counter ticks;
    root.addCounter("ticks", &ticks);
    sim::Engine eng(1000);
    CountdownComponent comp(5, ticks);
    stats::Sampler sampler("sampler", root, 1);
    eng.add(&sampler); // samplers register first: see sampler.hh
    eng.add(&comp);
    Cycle cycles = eng.run();
    sampler.snapshot(eng.now()); // the harness end-of-run snapshot
    EXPECT_EQ(cycles, 5u);
    // Cycles 0..4 during the run plus the final state at cycle 5.
    ASSERT_EQ(sampler.samples().size(), 6u);
    EXPECT_EQ(sampler.samples().front().cycle, 0u);
    EXPECT_EQ(sampler.samples().back().cycle, 5u);
    EXPECT_DOUBLE_EQ(sampler.value(0, "sys.ticks"), 0.0);
    EXPECT_DOUBLE_EQ(sampler.value(5, "sys.ticks"), 5.0);
}

TEST(SamplerTest, IntervalLongerThanRunKeepsEndpoints)
{
    stats::StatGroup root("sys");
    stats::Counter ticks;
    root.addCounter("ticks", &ticks);
    sim::Engine eng(1000);
    CountdownComponent comp(5, ticks);
    stats::Sampler sampler("sampler", root, 1000000);
    eng.add(&sampler);
    eng.add(&comp);
    eng.run();
    sampler.snapshot(eng.now());
    ASSERT_EQ(sampler.samples().size(), 2u); // cycle 0 + final state
    EXPECT_EQ(sampler.samples().front().cycle, 0u);
    EXPECT_EQ(sampler.samples().back().cycle, 5u);
    EXPECT_DOUBLE_EQ(sampler.value(1, "sys.ticks"), 5.0);
}

TEST(SamplerTest, FinalSnapshotIsIdempotent)
{
    stats::StatGroup root("sys");
    stats::Counter ticks;
    root.addCounter("ticks", &ticks);
    stats::Sampler sampler("sampler", root, 10);
    sampler.snapshot(42);
    sampler.snapshot(42);
    EXPECT_EQ(sampler.samples().size(), 1u);
}

TEST(SamplerTest, JsonHasColumnarShape)
{
    stats::StatGroup root("sys");
    stats::Counter ticks;
    root.addCounter("ticks", &ticks);
    stats::Sampler sampler("sampler", root, 10);
    sampler.snapshot(0);
    ticks += 3;
    sampler.snapshot(10);

    trace::json::Value doc;
    std::string err;
    ASSERT_TRUE(trace::json::parse(sampler.json(), doc, &err)) << err;
    const auto *names = doc.find("names");
    const auto *samples = doc.find("samples");
    ASSERT_TRUE(names && names->isArray());
    ASSERT_TRUE(samples && samples->isArray());
    ASSERT_EQ(samples->array.size(), 2u);
    // Each row is [cycle, values...].
    ASSERT_EQ(samples->array[1].array.size(), 1 + names->array.size());
    EXPECT_DOUBLE_EQ(samples->array[1].array[0].number, 10.0);
}

// ---------------------------------------------------------------------
// Whole-system integration: registry, formulas, PMU readback
// ---------------------------------------------------------------------

TEST(SystemStats, GemvMaPerCycleMatchesAnalyticModel)
{
    const std::size_t m = 256, n = 512;
    const unsigned tau = 2;
    Coprocessor sys(tokenConfig(1, 2048, tau));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    MatRef a = allocMat(sys.memory(), m, n);
    std::size_t x = sys.memory().alloc(n);
    std::size_t y = sys.memory().alloc(m);
    plan.gemv(a, x, y);
    plan.commit();
    Cycle cycles = sys.run();

    // The datapath performs exactly one multiply-add per matrix element.
    EXPECT_EQ(sys.cell(0).fmaOps(), m * n);

    // The registered formula agrees with the counters it derives from.
    double ma = sys.stats().scalarValue("maPerCycle");
    EXPECT_NEAR(ma, double(m * n) / double(cycles), 1e-12);

    // Section 4.1 host model: the run is bandwidth-bound at MAs over
    // tau times the words the host must move. Within 0.1%.
    double predicted = double(m * n)
                       / (double(tau) * double(m * n + n + 2 * m));
    EXPECT_NEAR(ma, predicted, predicted * 1e-3);
}

TEST(SystemStats, MatUpdateFmaMatchesAnalyticCount)
{
    const std::size_t n = 40, k = 100;
    Coprocessor sys(tokenConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();

    double mas = analytic::matUpdateMultiplyAdds(n, k);
    EXPECT_EQ(double(sys.cell(0).fmaOps()), mas);
    EXPECT_NEAR(sys.stats().scalarValue("maPerCycle"),
                mas / double(cycles), mas / double(cycles) * 1e-3);
}

TEST(SystemStats, EngineCountsCycles)
{
    Coprocessor sys(tokenConfig(1, 512, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    const std::size_t n = 10, k = 8;
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();
    EXPECT_EQ(sys.stats().counterValue("engine.cycles"), cycles);
}

TEST(SystemStats, SamplerTracksWholeRun)
{
    auto cfg = tokenConfig(1, 2048, 2);
    cfg.statsSampleInterval = 100;
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    const std::size_t n = 20, k = 30;
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();

    ASSERT_NE(sys.sampler(), nullptr);
    const auto &samples = sys.sampler()->samples();
    ASSERT_GE(samples.size(), 2u);
    EXPECT_EQ(samples.front().cycle, 0u);
    EXPECT_EQ(samples.back().cycle, cycles);
    // The fma series is monotone and ends at the final counter value.
    const std::string key = "system.cell0.fma";
    double prev = -1.0;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        double v = sys.sampler()->value(i, key);
        EXPECT_GE(v, prev);
        prev = v;
    }
    EXPECT_DOUBLE_EQ(prev, double(sys.cell(0).fmaOps()));

    // statsJson carries both the registry and the series.
    trace::json::Value doc;
    std::string err;
    ASSERT_TRUE(trace::json::parse(sys.statsJson(), doc, &err)) << err;
    EXPECT_NE(doc.find("stats"), nullptr);
    EXPECT_NE(doc.find("samples"), nullptr);
}

TEST(SystemStats, PmuReadbackOverTpiMatchesRegistry)
{
    const std::size_t n = 20, k = 15;
    Coprocessor sys(tokenConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    sys.run();

    // Registers whose value cannot change while the PMU call itself
    // executes (busy/idle keep advancing, so they are excluded).
    const cell::PmuReg regs[] = {
        cell::PmuReg::Issued,        cell::PmuReg::Fma,
        cell::PmuReg::MulOnly,       cell::PmuReg::AddOnly,
        cell::PmuReg::Moves,         cell::PmuReg::Calls,
        cell::PmuReg::StallSrcEmpty, cell::PmuReg::HighWaterSum,
        cell::PmuReg::HighWaterRet,  cell::PmuReg::HighWaterReby,
        cell::PmuReg::HighWaterTpx,
    };
    std::size_t dst = sys.memory().alloc(2 * std::size(regs));
    for (std::size_t i = 0; i < std::size(regs); ++i) {
        sys.host().enqueue(
            host::pmuReadProgram(0, regs[i], dst + 2 * i));
    }
    sys.run();

    for (std::size_t i = 0; i < std::size(regs); ++i) {
        std::uint64_t lo = sys.memory().load(dst + 2 * i);
        std::uint64_t hi = sys.memory().load(dst + 2 * i + 1);
        std::uint64_t over_tpi = lo | (hi << 32);
        EXPECT_EQ(over_tpi, sys.cell(0).pmuRead(regs[i]))
            << "PMU register " << unsigned(regs[i]);
    }

    // Cross-check a few against the harness registry by name.
    EXPECT_EQ(sys.cell(0).pmuRead(cell::PmuReg::Fma),
              sys.stats().counterValue("cell0.fma"));
    EXPECT_EQ(sys.cell(0).pmuRead(cell::PmuReg::HighWaterSum),
              std::uint64_t(
                  sys.stats().scalarValue("cell0.sum.highWater")));

    // A PMU status call is not a kernel call.
    EXPECT_EQ(sys.cell(0).pmuRead(cell::PmuReg::Calls),
              sys.stats().counterValue("cell0.calls"));

    // Out-of-range registers read as zero (and warn once).
    EXPECT_EQ(sys.cell(0).pmuRead(cell::PmuReg::NumRegs), 0u);
}

TEST(SystemStats, FpuCountersMatchIssueCounters)
{
    const std::size_t n = 16, k = 10;
    Coprocessor sys(tokenConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    sys.run();
    // Every fma invokes the multiplier and the adder once.
    std::uint64_t fma = sys.stats().counterValue("cell0.fma");
    std::uint64_t mul_only = sys.stats().counterValue("cell0.mulOnly");
    std::uint64_t add_only = sys.stats().counterValue("cell0.addOnly");
    EXPECT_EQ(sys.stats().counterValue("cell0.fpu.muls"),
              fma + mul_only);
    EXPECT_EQ(sys.stats().counterValue("cell0.fpu.adds"),
              fma + add_only);
}

// ---------------------------------------------------------------------
// bench_diff classifier
// ---------------------------------------------------------------------

namespace
{

const char *kBaselineJson = R"({
  "bench": "demo", "git_sha": "abc1234",
  "timestamp": "2026-01-01T00:00:00Z", "build_type": "Release",
  "config": {"tau": "2"},
  "results": [
    {"name": "case_a", "cycles": 1000, "flops_per_cycle": 1.5,
     "efficiency": 0.75},
    {"name": "case_b", "cycles": 2000, "flops_per_cycle": 0.8,
     "efficiency": 0.40}
  ]
})";

} // anonymous namespace

TEST(BenchCmp, ParsesObjectAndLegacyForms)
{
    stats::BenchFile f;
    std::string err;
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, f, &err)) << err;
    EXPECT_EQ(f.bench, "demo");
    EXPECT_EQ(f.gitSha, "abc1234");
    EXPECT_EQ(f.buildType, "Release");
    EXPECT_EQ(f.config.at("tau"), "2");
    ASSERT_EQ(f.records.size(), 2u);
    EXPECT_EQ(f.records[0].name, "case_a");
    EXPECT_DOUBLE_EQ(f.records[0].cycles, 1000.0);

    const char *legacy =
        R"([{"name": "x", "cycles": 10, "flops_per_cycle": 1.0,)"
        R"( "efficiency": 0.5}])";
    stats::BenchFile g;
    ASSERT_TRUE(stats::parseBenchJson(legacy, g, &err)) << err;
    ASSERT_EQ(g.records.size(), 1u);
    EXPECT_EQ(g.records[0].name, "x");
}

TEST(BenchCmp, DetectsTenPercentRegression)
{
    stats::BenchFile base, cur;
    std::string err;
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, base, &err));
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, cur, &err));
    cur.records[0].cycles = 1100.0; // +10% cycles on case_a

    stats::BenchDiff diff = stats::compareBench(base, cur, 5.0);
    ASSERT_EQ(diff.deltas.size(), 2u);
    EXPECT_TRUE(diff.anyRegression());
    EXPECT_TRUE(diff.deltas[0].regressed);
    EXPECT_NEAR(diff.deltas[0].cyclesPct, 10.0, 1e-9);
    EXPECT_FALSE(diff.deltas[1].regressed);

    // A 15% threshold tolerates it.
    EXPECT_FALSE(stats::compareBench(base, cur, 15.0).anyRegression());

    // Throughput loss regresses too, independent of cycles.
    cur.records[0].cycles = 1000.0;
    cur.records[0].flopsPerCycle = 1.2; // -20%
    EXPECT_TRUE(stats::compareBench(base, cur, 5.0).anyRegression());
}

TEST(BenchCmp, IdenticalFilesPass)
{
    stats::BenchFile base, cur;
    std::string err;
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, base, &err));
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, cur, &err));
    stats::BenchDiff diff = stats::compareBench(base, cur, 5.0);
    EXPECT_FALSE(diff.anyRegression());
    EXPECT_TRUE(diff.missing.empty());
    EXPECT_TRUE(diff.added.empty());
    EXPECT_FALSE(stats::renderBenchDiff(diff).empty());
}

TEST(BenchCmp, TracksMissingAndAddedCases)
{
    stats::BenchFile base, cur;
    std::string err;
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, base, &err));
    ASSERT_TRUE(stats::parseBenchJson(kBaselineJson, cur, &err));
    cur.records.erase(cur.records.begin()); // drop case_a
    cur.records.push_back(cur.records[0]);
    cur.records.back().name = "case_new";

    stats::BenchDiff diff = stats::compareBench(base, cur, 5.0);
    ASSERT_EQ(diff.missing.size(), 1u);
    EXPECT_EQ(diff.missing[0], "case_a");
    ASSERT_EQ(diff.added.size(), 1u);
    EXPECT_EQ(diff.added[0], "case_new");
}

TEST(BenchCmp, FlagsBaselineExtrasAbsentFromCurrent)
{
    const char *with_extras = R"({
      "bench": "demo", "results": [
        {"name": "case_a", "cycles": 1000, "flops_per_cycle": 1.5,
         "efficiency": 0.75, "completion_rate": 1.0, "correct": 1.0}
      ]
    })";
    const char *without_extras = R"({
      "bench": "demo", "results": [
        {"name": "case_a", "cycles": 1000, "flops_per_cycle": 1.5,
         "efficiency": 0.75, "correct": 1.0}
      ]
    })";
    stats::BenchFile base, cur;
    std::string err;
    ASSERT_TRUE(stats::parseBenchJson(with_extras, base, &err)) << err;
    ASSERT_TRUE(stats::parseBenchJson(without_extras, cur, &err))
        << err;

    // The candidate dropped completion_rate: the baseline names a
    // gate the current record cannot answer. That must surface as a
    // schema mismatch, not slip through as "no delta".
    stats::BenchDiff diff = stats::compareBench(base, cur, 5.0);
    ASSERT_EQ(diff.missingExtras.size(), 1u);
    EXPECT_EQ(diff.missingExtras[0], "case_a.completion_rate");

    // The reverse direction (current carries more than the baseline)
    // is fine — new stats appear before baselines are refreshed.
    stats::BenchDiff rev = stats::compareBench(cur, base, 5.0);
    EXPECT_TRUE(rev.missingExtras.empty());

    // Identical extras: nothing to flag.
    stats::BenchDiff same = stats::compareBench(base, base, 5.0);
    EXPECT_TRUE(same.missingExtras.empty());
}

// ---------------------------------------------------------------------
// warn-once
// ---------------------------------------------------------------------

TEST(WarnOnce, PrintsOncePerCallsite)
{
    testing::internal::CaptureStderr();
    for (int i = 0; i < 3; ++i)
        opac_warn_once("warn-once test message %d", i);
    std::string err = testing::internal::GetCapturedStderr();
    EXPECT_NE(err.find("warn-once test message 0"), std::string::npos);
    EXPECT_EQ(err.find("warn-once test message 1"), std::string::npos);
    EXPECT_NE(err.find("suppressed"), std::string::npos);
}

// ---------------------------------------------------------------------
// Quantile — the exact-percentile SLO stat kind
// ---------------------------------------------------------------------

TEST(Quantile, NearestRankPercentilesAreExact)
{
    stats::Quantile q;
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.p50(), 0.0); // no samples yet

    // Insert 1..100 in a scrambled order; nearest-rank percentiles
    // over the retained samples must be the exact values, not bucket
    // interpolations.
    for (int i = 0; i < 100; ++i)
        q.sample(double((i * 37) % 100 + 1));
    EXPECT_EQ(q.count(), 100u);
    EXPECT_EQ(q.min(), 1.0);
    EXPECT_EQ(q.max(), 100.0);
    EXPECT_DOUBLE_EQ(q.mean(), 50.5);
    EXPECT_EQ(q.p50(), 50.0);
    EXPECT_EQ(q.p95(), 95.0);
    EXPECT_EQ(q.p99(), 99.0);
    EXPECT_EQ(q.percentile(0.0), 1.0);
    EXPECT_EQ(q.percentile(100.0), 100.0);

    // Reads don't perturb later samples (lazy sort is transparent).
    q.sample(1000.0);
    EXPECT_EQ(q.max(), 1000.0);
    EXPECT_EQ(q.count(), 101u);

    q.reset();
    EXPECT_EQ(q.count(), 0u);
    EXPECT_EQ(q.p99(), 0.0);
}

TEST(Quantile, SingleSampleAnswersEveryPercentile)
{
    stats::Quantile q;
    q.sample(42.0);
    EXPECT_EQ(q.percentile(0.0), 42.0);
    EXPECT_EQ(q.p50(), 42.0);
    EXPECT_EQ(q.p99(), 42.0);
    EXPECT_EQ(q.min(), 42.0);
    EXPECT_EQ(q.max(), 42.0);
}

TEST(Quantile, RegistersInTheStatTreeWithoutJoiningScalars)
{
    stats::StatGroup root("svc");
    stats::Quantile q;
    root.addQuantile("lat_pct", &q, "request latency percentiles");
    q.sample(10.0);
    q.sample(20.0);
    q.sample(30.0);

    // json renders the quantile as an object...
    std::string js = root.json();
    EXPECT_NE(js.find("\"svc.lat_pct\""), std::string::npos);
    EXPECT_NE(js.find("\"p50\""), std::string::npos);
    EXPECT_NE(js.find("\"count\": 3"), std::string::npos);

    // ...but forEachScalar never sees it: the sampler's columnar
    // series (and every golden stream built on it) is unchanged by
    // registering quantiles.
    bool sawQuantile = false;
    root.forEachScalar([&](const std::string &name, double) {
        sawQuantile = sawQuantile
                      || name.find("lat_pct") != std::string::npos;
    });
    EXPECT_FALSE(sawQuantile);

    unsigned quants = 0;
    root.forEachQuantile(
        [&](const std::string &name, const stats::Quantile &qq) {
            ++quants;
            EXPECT_EQ(name, "svc.lat_pct");
            EXPECT_EQ(qq.count(), 3u);
        });
    EXPECT_EQ(quants, 1u);
}
