/**
 * @file
 * Golden suite for versioned snapshots and bit-identical resume
 * (docs/RESILIENCE.md, "Checkpoint & replay").
 *
 * The contract under test: a run that checkpoints at cycle N and
 * resumes — in the same system, or restored into a freshly built one,
 * in any engine mode, with the fast tier on or off, under active
 * fault injection — finishes with exactly the cycle count, stats JSON
 * (including the sampled time series), memory image and trace stream
 * of the uninterrupted run. Plus the container-level guarantees
 * (truncation / bit flips / wrong configuration are rejected before
 * any component state is touched) and the serve-layer guarantees
 * (crash + restart over a checkpoint directory delivers every job
 * exactly once; a migrated shard is byte-identical to an unmigrated
 * one).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <future>
#include <string>
#include <vector>

#include "common/error.hh"
#include "fault/fault.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"
#include "serve/server.hh"
#include "snap/snapshot.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

using namespace opac;
using namespace opac::planner;
using copro::CoprocConfig;
using copro::Coprocessor;
using sim::EngineMode;

namespace
{

/** Same shape as the engine golden suite: faults dense enough that
 *  several land inside the workload. */
const char *kFaultSpec =
    "seed=7,rate=500,horizon=20000,kinds=flip+hang+mem,bits=1";

CoprocConfig
baseConfig(EngineMode mode, bool fast_tier, bool faulted)
{
    CoprocConfig cfg;
    cfg.cells = 4;
    cfg.cell.tf = 256;
    cfg.host.tau = 2;
    cfg.watchdogCycles = 500000;
    cfg.skipIdleCycles = true;
    cfg.statsSampleInterval = 64;
    cfg.engineMode = mode;
    cfg.simThreads = 4;
    cfg.fastTier = fast_tier;
    if (faulted) {
        cfg.faults = fault::parseFaultSpec(kFaultSpec);
        cfg.cell.parity = fault::ParityMode::Correct;
    }
    return cfg;
}

/** Build the machine and plan the workload (matupdate or LU — both
 *  use only preinstalled microcode, so traced runs intern identical
 *  track sets on restore). */
std::unique_ptr<Coprocessor>
buildPlanned(const CoprocConfig &cfg, bool lu)
{
    auto sys = std::make_unique<Coprocessor>(cfg);
    kernels::installStandardKernels(*sys);
    LinalgPlanner plan(*sys);
    const std::size_t n = 24, k = 40;
    if (lu) {
        MatRef a = allocMat(sys->memory(), n, n);
        for (std::size_t i = 0; i < n; ++i)
            sys->memory().storeF(a.addrOf(i, i), 2.0f);
        plan.lu(a);
    } else {
        MatRef c = allocMat(sys->memory(), n, n);
        MatRef a = allocMat(sys->memory(), n, k);
        MatRef b = allocMat(sys->memory(), k, n);
        plan.matUpdate(c, a, b);
    }
    plan.commit();
    return sys;
}

std::uint64_t
memChecksum(const Coprocessor &sys)
{
    const host::HostMemory &mem =
        const_cast<Coprocessor &>(sys).memory();
    std::uint64_t h = 14695981039346656037ull;
    for (std::size_t i = 0; i < mem.mark(); ++i)
        h = (h ^ mem.load(i)) * 1099511628211ull;
    return h;
}

struct RunOut
{
    Cycle endCycle = 0;
    std::string statsJson;
    std::uint64_t memSum = 0;
};

RunOut
finishOut(Coprocessor &sys)
{
    RunOut out;
    out.endCycle = sys.engine().now();
    out.statsJson = sys.statsJson();
    out.memSum = memChecksum(sys);
    return out;
}

/** Uninterrupted reference run. */
RunOut
runStraight(const CoprocConfig &cfg, bool lu)
{
    auto sys = buildPlanned(cfg, lu);
    sys->run();
    return finishOut(*sys);
}

const EngineMode kAllModes[] = {EngineMode::Spin, EngineMode::Skip,
                                EngineMode::Event,
                                EngineMode::Parallel};

std::string
tmpPath(const char *name)
{
    return std::string("snapshot_test_") + name;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Container format
// ---------------------------------------------------------------------

TEST(SnapContainer, PrimitivesRoundTrip)
{
    snap::Writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeefu);
    w.u64(0x0123456789abcdefull);
    w.i32(-42);
    w.i64(-1234567890123ll);
    w.b(true);
    w.f64(-0.1);
    w.str("hello snapshot");

    snap::Reader r(w.buffer(), "test");
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
    EXPECT_EQ(r.i32(), -42);
    EXPECT_EQ(r.i64(), -1234567890123ll);
    EXPECT_TRUE(r.b());
    EXPECT_EQ(r.f64(), -0.1);
    EXPECT_EQ(r.str(), "hello snapshot");
    EXPECT_NO_THROW(r.expectEnd());
}

TEST(SnapContainer, ReaderIsBoundsChecked)
{
    snap::Writer w;
    w.u32(7);
    snap::Reader r(w.buffer(), "test");
    EXPECT_EQ(r.u32(), 7u);
    EXPECT_THROW(r.u32(), SnapshotError);
}

TEST(SnapContainer, ExpectEndCatchesTrailingBytes)
{
    snap::Writer w;
    w.u32(7);
    w.u8(1);
    snap::Reader r(w.buffer(), "test");
    r.u32();
    EXPECT_THROW(r.expectEnd(), SnapshotError);
}

TEST(SnapContainer, EncodeDecodeRoundTrip)
{
    snap::Snapshot s;
    s.cycle = 12345;
    s.fingerprint = 0xfeedfacecafebeefull;
    s.add("alpha", 2, "payload-a");
    s.add("beta", 1, std::string("\x00\x01\x02", 3));
    snap::Snapshot got = snap::Snapshot::decode(s.encode(), "test");
    EXPECT_EQ(got.cycle, s.cycle);
    EXPECT_EQ(got.fingerprint, s.fingerprint);
    ASSERT_EQ(got.sections().size(), 2u);
    EXPECT_EQ(got.require("alpha").version, 2u);
    EXPECT_EQ(got.require("alpha").payload, "payload-a");
    EXPECT_EQ(got.require("beta").payload.size(), 3u);
    EXPECT_EQ(got.find("gamma"), nullptr);
    EXPECT_THROW(got.require("gamma"), SnapshotError);
}

TEST(SnapContainer, CorruptFilesAreRejected)
{
    snap::Snapshot s;
    s.cycle = 99;
    s.add("comp.x", 1, "some component payload bytes");
    std::string bytes = s.encode();

    // Truncation at every prefix length must throw, never crash or
    // hand garbage to a component.
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        std::string cut = bytes.substr(0, len);
        EXPECT_THROW(snap::Snapshot::decode(cut, "trunc"),
                     SnapshotError)
            << "prefix " << len;
    }
    // Any single bit flip breaks the checksum (or the framing).
    for (std::size_t pos = 0; pos < bytes.size(); pos += 7) {
        std::string bad = bytes;
        bad[pos] = char(bad[pos] ^ 0x10);
        EXPECT_THROW(snap::Snapshot::decode(bad, "flip"),
                     SnapshotError)
            << "flip at " << pos;
    }
}

TEST(SnapContainer, WriteFileIsAtomicAndReadable)
{
    const std::string dir = tmpPath("dir");
    const std::string path = dir + "/nested/a.snap";
    snap::Snapshot s;
    s.cycle = 7;
    s.add("x", 1, "abc");
    // Missing directories are created, not silently dropped.
    s.writeFile(path);
    snap::Snapshot got = snap::Snapshot::readFile(path);
    EXPECT_EQ(got.cycle, 7u);
    EXPECT_EQ(got.require("x").payload, "abc");
    EXPECT_THROW(snap::Snapshot::readFile(dir + "/absent.snap"),
                 SnapshotError);
}

// ---------------------------------------------------------------------
// Whole-machine golden identity
// ---------------------------------------------------------------------

TEST(SnapshotResume, PauseAndContinueIsByteIdentical)
{
    // runUntil(N) + run() in the same system must equal run(), for
    // every engine mode and fast-tier setting.
    for (EngineMode mode : kAllModes) {
        for (bool fast : {true, false}) {
            CoprocConfig cfg = baseConfig(mode, fast, false);
            RunOut ref = runStraight(cfg, false);
            auto sys = buildPlanned(cfg, false);
            sys->runUntil(ref.endCycle / 2);
            EXPECT_EQ(sys->engine().now(), ref.endCycle / 2);
            sys->run();
            RunOut got = finishOut(*sys);
            std::string what =
                std::string("mode=") + sim::engineModeName(mode)
                + " fast=" + (fast ? "on" : "off");
            EXPECT_EQ(ref.endCycle, got.endCycle) << what;
            EXPECT_EQ(ref.statsJson, got.statsJson) << what;
            EXPECT_EQ(ref.memSum, got.memSum) << what;
        }
    }
}

TEST(SnapshotResume, RestoredSystemFinishesByteIdentical)
{
    // Snapshot at N, restore into a freshly built machine (as another
    // process would), finish there: cycles, stats JSON (with the
    // sampler series) and the memory image all match the
    // uninterrupted run. Resume may also switch engine modes.
    for (EngineMode mode : kAllModes) {
        CoprocConfig cfg = baseConfig(mode, true, false);
        RunOut ref = runStraight(cfg, false);

        auto a = buildPlanned(cfg, false);
        a->runUntil(ref.endCycle / 2);
        snap::Snapshot snap = a->takeSnapshot();
        EXPECT_EQ(snap.cycle, ref.endCycle / 2);
        a.reset();

        // Same mode...
        auto b = buildPlanned(cfg, false);
        b->restoreSnapshot(snap);
        EXPECT_EQ(b->engine().now(), ref.endCycle / 2);
        b->run();
        RunOut got = finishOut(*b);
        std::string what =
            std::string("mode=") + sim::engineModeName(mode);
        EXPECT_EQ(ref.endCycle, got.endCycle) << what;
        EXPECT_EQ(ref.statsJson, got.statsJson) << what;
        EXPECT_EQ(ref.memSum, got.memSum) << what;

        // ...and resumed under a different mode + fast tier.
        CoprocConfig other = baseConfig(
            mode == EngineMode::Spin ? EngineMode::Parallel
                                     : EngineMode::Spin,
            false, false);
        auto c = buildPlanned(other, false);
        c->restoreSnapshot(snap);
        c->run();
        RunOut cross = finishOut(*c);
        EXPECT_EQ(ref.endCycle, cross.endCycle) << what << " cross";
        EXPECT_EQ(ref.statsJson, cross.statsJson) << what << " cross";
        EXPECT_EQ(ref.memSum, cross.memSum) << what << " cross";
    }
}

TEST(SnapshotResume, SurvivesFileRoundTripUnderFaults)
{
    // Active fault injection (flips being corrected, hangs being
    // recovered, RNG streams mid-draw) checkpointed to disk and
    // resumed in a fresh machine, for both workload shapes.
    for (bool lu : {false, true}) {
        CoprocConfig cfg = baseConfig(EngineMode::Skip, true, true);
        RunOut ref = runStraight(cfg, lu);

        const std::string path =
            tmpPath(lu ? "faulted_lu.snap" : "faulted_mu.snap");
        auto a = buildPlanned(cfg, lu);
        a->runUntil(ref.endCycle / 2);
        a->saveSnapshot(path);
        a.reset();

        auto b = buildPlanned(cfg, lu);
        b->loadSnapshot(path);
        b->run();
        RunOut got = finishOut(*b);
        EXPECT_EQ(ref.endCycle, got.endCycle) << "lu=" << lu;
        EXPECT_EQ(ref.statsJson, got.statsJson) << "lu=" << lu;
        EXPECT_EQ(ref.memSum, got.memSum) << "lu=" << lu;
    }
}

TEST(SnapshotResume, TraceStreamSplitsExactly)
{
    // The uninterrupted trace equals the pre-snapshot prefix plus the
    // suffix a restored machine emits: no lost, duplicated or
    // reordered events across the checkpoint boundary.
    CoprocConfig cfg = baseConfig(EngineMode::Skip, true, true);

    trace::Tracer refTracer;
    trace::VectorSink refSink;
    auto ref = buildPlanned(cfg, false);
    refTracer.addSink(&refSink);
    ref->attachTracer(&refTracer);
    ref->run();
    const Cycle end = ref->engine().now();
    ref.reset();

    trace::Tracer preTracer;
    trace::VectorSink preSink;
    auto a = buildPlanned(cfg, false);
    preTracer.addSink(&preSink);
    a->attachTracer(&preTracer);
    a->runUntil(end / 2);
    snap::Snapshot snap = a->takeSnapshot();
    const std::size_t split = preSink.events.size();
    a.reset();

    trace::Tracer postTracer;
    trace::VectorSink postSink;
    auto b = buildPlanned(cfg, false);
    postTracer.addSink(&postSink);
    b->attachTracer(&postTracer);
    b->restoreSnapshot(snap);
    b->run();

    ASSERT_EQ(refSink.events.size(),
              split + postSink.events.size());
    auto same = [](const trace::Event &x, const trace::Event &y) {
        return x.cycle == y.cycle && x.kind == y.kind && x.arg == y.arg
               && x.comp == y.comp && x.track == y.track && x.a == y.a
               && x.b == y.b;
    };
    for (std::size_t i = 0; i < split; ++i)
        ASSERT_TRUE(same(refSink.events[i], preSink.events[i]))
            << "prefix event " << i;
    for (std::size_t i = 0; i < postSink.events.size(); ++i)
        ASSERT_TRUE(
            same(refSink.events[split + i], postSink.events[i]))
            << "suffix event " << i;
}

TEST(SnapshotResume, WrongConfigurationIsRejected)
{
    CoprocConfig cfg = baseConfig(EngineMode::Skip, true, false);
    auto a = buildPlanned(cfg, false);
    a->runUntil(500);
    snap::Snapshot snap = a->takeSnapshot();
    a.reset();

    // A machine with a different timing-relevant configuration must
    // refuse the snapshot up front (fingerprint check)...
    CoprocConfig narrow = cfg;
    narrow.cells = 2;
    Coprocessor other(narrow);
    kernels::installStandardKernels(other);
    EXPECT_THROW(other.restoreSnapshot(snap), SnapshotError);

    // ...while engine-mode / fast-tier toggles are byte-identical by
    // contract and deliberately excluded from the fingerprint.
    CoprocConfig toggled = cfg;
    toggled.engineMode = EngineMode::Event;
    toggled.fastTier = false;
    EXPECT_EQ(Coprocessor(toggled).configFingerprint(),
              Coprocessor(cfg).configFingerprint());
    EXPECT_NE(Coprocessor(narrow).configFingerprint(),
              Coprocessor(cfg).configFingerprint());
}

// ---------------------------------------------------------------------
// Serve layer: crash-durable restart and shard migration
// ---------------------------------------------------------------------

namespace
{

serve::ServeConfig
serveConfig()
{
    serve::ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard.cells = 2;
    cfg.shard.tf = 512;
    cfg.shard.memoryWords = 1 << 20;
    cfg.sched.batchMax = 2;
    return cfg;
}

std::vector<serve::JobRequest>
serveWorkload(unsigned njobs)
{
    std::vector<serve::JobRequest> reqs;
    for (unsigned i = 0; i < njobs; ++i) {
        serve::JobRequest r;
        r.seed = 1000 + 7 * i;
        r.tenant = i % 3;
        r.arrival = 500 * i;
        switch (i % 3) {
          case 0:
            r.kind = serve::KernelKind::Gemm;
            r.m = r.k = r.n = 12;
            break;
          case 1:
            r.kind = serve::KernelKind::Lu;
            r.n = 12;
            break;
          default:
            r.kind = serve::KernelKind::Conv2d;
            r.n = 10;
            r.m = 12;
            r.p = r.q = 3;
            break;
        }
        reqs.push_back(r);
    }
    return reqs;
}

struct Delivered
{
    serve::JobStatus status;
    std::uint64_t checksum;
    bool correct;
};

std::vector<Delivered>
byTicket(const serve::Server &srv, std::size_t n)
{
    std::vector<Delivered> out(n, Delivered{});
    std::vector<unsigned> seen(n, 0);
    for (const serve::JobResult &r : srv.results()) {
        EXPECT_GE(r.ticket, 1u);
        EXPECT_LE(r.ticket, n);
        ++seen[r.ticket - 1];
        out[r.ticket - 1] =
            Delivered{r.status, r.checksum, r.correct};
    }
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(seen[i], 1u) << "ticket " << i + 1
                               << " delivered " << seen[i] << " times";
    return out;
}

} // anonymous namespace

TEST(ServeDurability, CrashedServerResumesExactlyOnce)
{
    const unsigned njobs = 9;
    std::vector<serve::JobRequest> reqs = serveWorkload(njobs);

    // Reference: the same workload on an undisturbed server.
    serve::Server ref(serveConfig());
    std::vector<std::future<serve::JobResult>> refFuts;
    for (const auto &r : reqs)
        refFuts.push_back(ref.submit(r));
    ref.drain();
    std::vector<Delivered> want = byTicket(ref, njobs);

    // Crash after the 3rd delivery, with journal + checkpoints on
    // disk; restart over the same directory and re-submit.
    const std::string dir = tmpPath("serve_crash");
    std::remove((dir + "/journal.log").c_str());
    serve::ServeConfig cfg = serveConfig();
    cfg.checkpointDir = dir;
    cfg.crashAfterDeliveries = 3;
    auto srv = std::make_unique<serve::Server>(cfg);
    for (const auto &r : reqs)
        (void)srv->submit(r);
    bool crashed = false;
    try {
        srv->drain();
    } catch (const Error &) {
        crashed = true;
    }
    ASSERT_TRUE(crashed);
    srv.reset();

    serve::ServeConfig rcfg = serveConfig();
    rcfg.checkpointDir = dir;
    rcfg.resume = true;
    serve::Server resumed(rcfg);
    std::vector<std::future<serve::JobResult>> futs;
    for (const auto &r : reqs)
        futs.push_back(resumed.submit(r));
    resumed.drain();

    // Every job delivered exactly once, every completion correct, and
    // the per-ticket outcome — including the bit-exact output
    // checksum — matches the undisturbed server.
    std::vector<Delivered> got = byTicket(resumed, njobs);
    for (unsigned i = 0; i < njobs; ++i) {
        EXPECT_EQ(int(want[i].status), int(got[i].status))
            << "ticket " << i + 1;
        EXPECT_EQ(want[i].checksum, got[i].checksum)
            << "ticket " << i + 1;
        EXPECT_EQ(want[i].correct, got[i].correct)
            << "ticket " << i + 1;
        EXPECT_TRUE(futs[i].get().ticket == i + 1);
    }
}

TEST(ServeDurability, MigratedShardIsByteIdentical)
{
    const unsigned njobs = 6;
    std::vector<serve::JobRequest> reqs = serveWorkload(njobs);

    auto run = [&reqs](bool migrate) {
        serve::Server srv(serveConfig());
        // First wave, then (optionally) live-migrate both shards onto
        // fresh machines, then a second wave on the replacements.
        for (unsigned i = 0; i < njobs / 2; ++i)
            (void)srv.submit(reqs[i]);
        srv.drain();
        if (migrate) {
            srv.migrateShard(0);
            srv.migrateShard(1);
        }
        for (unsigned i = njobs / 2; i < njobs; ++i)
            (void)srv.submit(reqs[i]);
        srv.drain();
        std::vector<Delivered> out = byTicket(srv, njobs);
        for (const auto &d : out)
            EXPECT_EQ(int(d.status),
                      int(serve::JobStatus::Completed));
        return out;
    };

    std::vector<Delivered> plain = run(false);
    std::vector<Delivered> moved = run(true);
    ASSERT_EQ(plain.size(), moved.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_EQ(plain[i].checksum, moved[i].checksum)
            << "ticket " << i + 1;
        EXPECT_TRUE(moved[i].correct) << "ticket " << i + 1;
    }
}
