/**
 * @file
 * Tests of the coprocessor job server (docs/SERVING.md): FIFO order
 * within a tenant, priority dispatch across tenants, admission
 * rejections, byte-identical results across engine modes with faults
 * enabled, and graceful degradation when fault injection kills shards
 * mid-traffic (completion rate drops, correctness never does).
 */

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "fault/fault.hh"
#include "serve/server.hh"
#include "trace/json.hh"

using namespace opac;
using namespace opac::serve;

namespace
{

ShardConfig
smallShard(unsigned cells = 2)
{
    ShardConfig sc;
    sc.cells = cells;
    sc.tf = 512;
    sc.memoryWords = 1 << 20;
    return sc;
}

JobRequest
gemmReq(std::size_t m, std::uint64_t seed, Cycle arrival,
        unsigned pri = 0, std::uint32_t tenant = 0)
{
    JobRequest r;
    r.kind = KernelKind::Gemm;
    r.m = r.k = r.n = m;
    r.seed = seed;
    r.arrival = arrival;
    r.priority = pri;
    r.tenant = tenant;
    return r;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Ordering and fairness
// ---------------------------------------------------------------------

TEST(Serve, FifoWithinTenant)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard();
    cfg.sched.batchMax = 1;
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 5; ++i)
        futs.push_back(srv.submit(gemmReq(12, 100u + unsigned(i),
                                          Cycle(i))));
    srv.drain();

    Cycle prev = 0;
    for (int i = 0; i < 5; ++i) {
        JobResult r = futs[std::size_t(i)].get();
        EXPECT_EQ(r.status, JobStatus::Completed) << r.note;
        EXPECT_TRUE(r.correct);
        if (i > 0)
            EXPECT_GT(r.started, prev)
                << "job " << i << " served out of order";
        prev = r.started;
    }
    // Same-tenant same-priority jobs deliver in submission order.
    ASSERT_EQ(srv.results().size(), 5u);
    for (std::size_t i = 0; i < srv.results().size(); ++i)
        EXPECT_EQ(srv.results()[i].ticket, std::uint32_t(i + 1));
    EXPECT_EQ(srv.stats().counterValue("completed"), 5u);
    EXPECT_EQ(srv.stats().counterValue("incorrect"), 0u);
}

TEST(Serve, PriorityJumpsTheQueue)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard();
    cfg.sched.batchMax = 1;
    Server srv(cfg);

    // Four low-priority tenant-0 jobs queued at time 0; one
    // high-priority tenant-1 job arrives while the first is being
    // served and must be dispatched before the remaining three.
    std::vector<std::future<JobResult>> low;
    for (int i = 0; i < 4; ++i)
        low.push_back(srv.submit(gemmReq(12, 10u + unsigned(i), 0)));
    auto high = srv.submit(gemmReq(12, 99, /*arrival=*/1,
                                   /*pri=*/5, /*tenant=*/1));
    srv.drain();

    JobResult rh = high.get();
    EXPECT_EQ(rh.status, JobStatus::Completed);
    JobResult r0 = low[0].get();
    EXPECT_LT(r0.started, rh.started); // already in service
    for (int i = 1; i < 4; ++i) {
        JobResult rl = low[std::size_t(i)].get();
        EXPECT_GT(rl.started, rh.started)
            << "low-priority job " << i
            << " dispatched before the high-priority one";
    }
}

// ---------------------------------------------------------------------
// Admission
// ---------------------------------------------------------------------

TEST(Serve, AdmissionRejections)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard();
    cfg.sched.batchMax = 1;
    cfg.sched.queueLimit = 2;
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(srv.submit(gemmReq(12, 7u + unsigned(i), 0)));

    // Provably unmeetable deadline.
    JobRequest dl = gemmReq(32, 1, 0);
    dl.deadline = 10;
    auto fdl = srv.submit(dl);

    // Malformed FFT (not a power of two).
    JobRequest bad;
    bad.kind = KernelKind::Fft;
    bad.n = 6;
    auto fbad = srv.submit(bad);

    srv.drain();

    unsigned completed = 0, rejected = 0;
    for (auto &f : futs) {
        JobResult r = f.get();
        if (r.status == JobStatus::Completed)
            ++completed;
        else if (r.status == JobStatus::Rejected) {
            ++rejected;
            EXPECT_EQ(r.note, "queue full");
        }
    }
    // The queue holds two beyond the one in service; the rest bounce.
    EXPECT_GE(completed, 2u);
    EXPECT_GE(rejected, 1u);
    EXPECT_EQ(completed + rejected, 6u);

    JobResult rdl = fdl.get();
    EXPECT_EQ(rdl.status, JobStatus::Rejected);
    EXPECT_EQ(rdl.note, "deadline unmeetable");
    JobResult rbad = fbad.get();
    EXPECT_EQ(rbad.status, JobStatus::Rejected);
    EXPECT_EQ(rbad.note, "fft size must be a power of two >= 4");
    EXPECT_EQ(srv.stats().counterValue("rejected"),
              std::uint64_t(rejected) + 2);
}

// ---------------------------------------------------------------------
// Determinism across engine modes, with faults enabled
// ---------------------------------------------------------------------

namespace
{

/** A mixed-kind multi-tenant workload; returns results by ticket. */
std::vector<JobResult>
runMixedWorkload(sim::EngineMode mode)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(2);
    cfg.shard.engineMode = mode;
    cfg.sched.batchMax = 2;
    // Random bit flips throughout; SECDED parity absorbs them, so
    // the service keeps completing jobs while retries tick up.
    cfg.faults = fault::parseFaultSpec(
        "seed=3,rate=40,horizon=200000,kinds=flip");
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    futs.push_back(srv.submit(gemmReq(16, 11, 0, 0, /*tenant=*/0)));
    futs.push_back(srv.submit(gemmReq(20, 12, 500, 1, 1)));
    JobRequest lu;
    lu.kind = KernelKind::Lu;
    lu.n = 16;
    lu.seed = 13;
    lu.arrival = 800;
    lu.tenant = 0;
    futs.push_back(srv.submit(lu));
    JobRequest conv;
    conv.kind = KernelKind::Conv2d;
    conv.n = 12;
    conv.m = 16;
    conv.p = conv.q = 3;
    conv.seed = 14;
    conv.arrival = 1200;
    conv.tenant = 2;
    futs.push_back(srv.submit(conv));
    JobRequest fft;
    fft.kind = KernelKind::Fft;
    fft.n = 64;
    fft.batch = 2;
    fft.seed = 15;
    fft.arrival = 1500;
    fft.tenant = 1;
    fft.priority = 3;
    futs.push_back(srv.submit(fft));
    futs.push_back(srv.submit(gemmReq(16, 16, 9000, 0, 2)));

    srv.drain();
    std::vector<JobResult> out;
    for (auto &f : futs)
        out.push_back(f.get());
    return out;
}

} // anonymous namespace

TEST(Serve, DeterministicAcrossEngineModes)
{
    auto skip = runMixedWorkload(sim::EngineMode::Skip);
    auto event = runMixedWorkload(sim::EngineMode::Event);
    auto parallel = runMixedWorkload(sim::EngineMode::Parallel);

    ASSERT_EQ(skip.size(), event.size());
    ASSERT_EQ(skip.size(), parallel.size());
    for (std::size_t i = 0; i < skip.size(); ++i) {
        EXPECT_EQ(skip[i].status, JobStatus::Completed)
            << "job " << i << ": " << skip[i].note;
        EXPECT_TRUE(skip[i].correct) << "job " << i;
        for (const auto *other : {&event, &parallel}) {
            const JobResult &o = (*other)[i];
            EXPECT_EQ(skip[i].status, o.status) << "job " << i;
            EXPECT_EQ(skip[i].checksum, o.checksum)
                << "job " << i << " result bits differ across engines";
            EXPECT_EQ(skip[i].started, o.started) << "job " << i;
            EXPECT_EQ(skip[i].finished, o.finished) << "job " << i;
            EXPECT_EQ(skip[i].shard, o.shard) << "job " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Degradation under shard death
// ---------------------------------------------------------------------

TEST(Serve, ShardDeathDegradesThroughputNotCorrectness)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard(2);
    cfg.shard.retryBudget = 1;
    // Both cells hang for good mid-traffic: recovery exhausts every
    // retry, the machine dies, uncommitted jobs fail.
    cfg.faults = fault::parseFaultSpec(
        "at=30000/hang/0/0,at=30100/hang/1/0");
    cfg.sched.batchMax = 2;
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 10; ++i)
        futs.push_back(srv.submit(gemmReq(20, 40u + unsigned(i), 0)));
    srv.drain();

    unsigned completed = 0, failed = 0;
    for (auto &f : futs) {
        JobResult r = f.get();
        if (r.status == JobStatus::Completed) {
            ++completed;
            EXPECT_TRUE(r.correct)
                << "a completed job must stay bit-correct";
        } else {
            EXPECT_EQ(r.status, JobStatus::Failed);
            ++failed;
        }
    }
    EXPECT_EQ(completed + failed, 10u);
    EXPECT_GE(completed, 1u) << "the kill should land mid-traffic";
    EXPECT_GE(failed, 1u) << "a dead pool cannot complete everything";
    EXPECT_EQ(srv.aliveShards(), 0u);
    EXPECT_EQ(srv.stats().counterValue("incorrect"), 0u);
}

TEST(Serve, FailoverToSurvivingShard)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(2);
    cfg.shard.retryBudget = 1;
    // Kill shard 0 only; shard 1 picks up its uncommitted jobs.
    cfg.shardFaults.emplace_back(
        0u, fault::parseFaultSpec("at=30000/hang/0/0,at=30100/hang/1/0"));
    cfg.sched.batchMax = 2;
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 12; ++i)
        futs.push_back(srv.submit(gemmReq(20, 60u + unsigned(i), 0)));
    srv.drain();

    unsigned failovers = 0;
    for (auto &f : futs) {
        JobResult r = f.get();
        EXPECT_EQ(r.status, JobStatus::Completed) << r.note;
        EXPECT_TRUE(r.correct);
        failovers += r.failovers;
    }
    EXPECT_EQ(srv.aliveShards(), 1u);
    EXPECT_GE(failovers, 1u)
        << "shard 0 should die holding uncommitted work";
    EXPECT_EQ(srv.stats().counterValue("completed"), 12u);
    EXPECT_EQ(srv.stats().counterValue("failed"), 0u);
}

// ---------------------------------------------------------------------
// Flight-recorder postmortem
// ---------------------------------------------------------------------

TEST(Serve, ShardDeathDumpsAFlightPostmortem)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(2);
    cfg.shard.retryBudget = 1;
    cfg.obs.flightDepth = 16;
    // Kill shard 0 mid-traffic; the death must trigger a postmortem
    // carrying shard 0's recent span events and its fault plan.
    cfg.shardFaults.emplace_back(
        0u, fault::parseFaultSpec("at=30000/hang/0/0,at=30100/hang/1/0"));
    cfg.sched.batchMax = 2;
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 12; ++i)
        futs.push_back(srv.submit(gemmReq(20, 80u + unsigned(i), 0)));
    srv.drain();
    for (auto &f : futs)
        EXPECT_EQ(f.get().status, JobStatus::Completed);

    ASSERT_GE(srv.flightTriggers(), 1u)
        << "a dying shard must trigger the flight recorder";
    ASSERT_FALSE(srv.flightDumps().empty());
    EXPECT_NE(srv.flightDumps().front().first.find("shard 0 died"),
              std::string::npos)
        << srv.flightDumps().front().first;

    std::string err;
    trace::json::Value doc;
    ASSERT_TRUE(
        trace::json::parse(srv.lastFlightDump(), doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->str, "opac.serve.flight.v1");
    const trace::json::Value *shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->array.size(), 2u);

    // The dead shard's ring holds its last span events — the work it
    // was executing when it died — and the fault plan that killed it.
    const trace::json::Value &dead = shards->array[0];
    const trace::json::Value *events = dead.find("events");
    ASSERT_NE(events, nullptr);
    EXPECT_FALSE(events->array.empty())
        << "no span events retained for the dead shard";
    bool executed = false, died = false;
    for (const auto &ev : events->array) {
        const std::string &ph = ev.find("ph")->str;
        executed = executed || ph == "execute";
        died = died || ph == "shard_dead";
    }
    EXPECT_TRUE(executed) << "ring lost the in-flight batch events";
    EXPECT_TRUE(died) << "ring lost the death event itself";
    const trace::json::Value *plan = dead.find("fault_plan");
    ASSERT_NE(plan, nullptr);
    ASSERT_EQ(plan->array.size(), 2u) << "two targeted hangs expected";
    EXPECT_NE(plan->array[0].str.find("hang"), std::string::npos);
}
