/**
 * @file
 * Tests of the fault-injection and recovery subsystem
 * (docs/RESILIENCE.md): seed-determinism of fault plans, SECDED word
 * protection, per-site parity detect/correct survival, transaction
 * timeout -> retry -> replay over the kernel library, dead-cell
 * degradation with re-planning, spin-vs-skip cycle identity under
 * faults, and the engine's non-fatal watchdog callback.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "blasref/blas3.hh"
#include "common/error.hh"
#include "common/random.hh"
#include "coproc/coprocessor.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "kernels/kernel_set.hh"
#include "planner/jobs.hh"
#include "planner/linalg_plan.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::planner;
using blasref::Matrix;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

CoprocConfig
makeConfig(unsigned cells, std::size_t tf = 512, unsigned tau = 2)
{
    CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    return cfg;
}

/** Arm @p cfg with the full protected-recovery stack. */
void
protect(CoprocConfig &cfg, const std::string &spec,
        fault::ParityMode parity = fault::ParityMode::Correct,
        Cycle timeout = 20000, unsigned budget = 4)
{
    cfg.faults = fault::parseFaultSpec(spec);
    cfg.cell.parity = parity;
    cfg.host.recovery.enabled = true;
    cfg.host.recovery.timeoutCycles = timeout;
    cfg.host.recovery.retryBudget = budget;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Fault plans
// ---------------------------------------------------------------------

TEST(FaultSpec, ParsesFullGrammar)
{
    auto spec = fault::parseFaultSpec(
        "seed=42,rate=12.5,horizon=5000,kinds=flip+hang,bits=1,"
        "at=100/flip/2/sum/4,at=200/hang/0/0");
    EXPECT_EQ(spec.seed, 42u);
    EXPECT_DOUBLE_EQ(spec.ratePerMcycle, 12.5);
    EXPECT_EQ(spec.horizon, 5000u);
    EXPECT_EQ(spec.maxFlipBits, 1u);
    EXPECT_TRUE(spec.kindEnabled(fault::FaultKind::FifoFlip));
    EXPECT_TRUE(spec.kindEnabled(fault::FaultKind::CellHang));
    EXPECT_FALSE(spec.kindEnabled(fault::FaultKind::BusDrop));
    ASSERT_EQ(spec.explicitEvents.size(), 2u);
    EXPECT_EQ(spec.explicitEvents[0].at, 100u);
    EXPECT_EQ(spec.explicitEvents[0].site, fault::FifoSite::Sum);
    EXPECT_EQ(spec.explicitEvents[0].mask, 4u);
    EXPECT_EQ(spec.explicitEvents[1].kind, fault::FaultKind::CellHang);
    EXPECT_EQ(spec.explicitEvents[1].arg, 0u);
    EXPECT_TRUE(spec.any());
    EXPECT_FALSE(fault::parseFaultSpec("").any());
}

TEST(FaultSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(fault::parseFaultSpec("bogus=1"), FaultSpecError);
    EXPECT_THROW(fault::parseFaultSpec("kinds=warp"), FaultSpecError);
    EXPECT_THROW(fault::parseFaultSpec("rate=fast"), FaultSpecError);
    EXPECT_THROW(fault::parseFaultSpec("at=99"), FaultSpecError);
    EXPECT_THROW(fault::parseFaultSpec("at=99/zap"), FaultSpecError);
    EXPECT_THROW(fault::parseFaultSpec("at=9/flip/0/nowhere"),
                 FaultSpecError);
    EXPECT_THROW(fault::parseParityMode("perhaps"), FaultSpecError);
}

TEST(FaultPlan, SeedReproducible)
{
    auto spec = fault::parseFaultSpec("seed=9,n=40,horizon=100000");
    auto a = fault::buildPlan(spec, 4);
    auto b = fault::buildPlan(spec, 4);
    ASSERT_EQ(a.size(), b.size());
    ASSERT_EQ(a.size(), 40u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].at, b[i].at);
        EXPECT_EQ(a[i].kind, b[i].kind);
        EXPECT_EQ(a[i].cell, b[i].cell);
        EXPECT_EQ(a[i].site, b[i].site);
        EXPECT_EQ(a[i].mask, b[i].mask);
        EXPECT_EQ(a[i].arg, b[i].arg);
        if (i > 0) {
            EXPECT_GE(a[i].at, a[i - 1].at); // sorted schedule
        }
        EXPECT_LT(a[i].cell, 4u);
    }
    // A different seed must give a different schedule.
    auto spec2 = fault::parseFaultSpec("seed=10,n=40,horizon=100000");
    auto c = fault::buildPlan(spec2, 4);
    bool differs = false;
    for (std::size_t i = 0; i < c.size(); ++i)
        differs = differs || c[i].at != a[i].at
                  || c[i].kind != a[i].kind;
    EXPECT_TRUE(differs);
}

// ---------------------------------------------------------------------
// SECDED
// ---------------------------------------------------------------------

TEST(Secded, CorrectsSingleBitDetectsDoubleBit)
{
    Rng rng(3);
    std::vector<Word> words = {0u, 0xffffffffu, 0xdeadbeefu,
                               0x80000000u, 1u};
    for (int i = 0; i < 20; ++i)
        words.push_back(Word(rng.next()));
    for (Word w : words) {
        std::uint8_t ecc = fault::secdedEncode(w);
        Word clean = w;
        EXPECT_EQ(fault::secdedDecode(clean, ecc),
                  fault::SecdedResult::Ok);
        EXPECT_EQ(clean, w);
        for (unsigned bit = 0; bit < 32; ++bit) {
            Word flipped = w ^ (1u << bit);
            EXPECT_EQ(fault::secdedDecode(flipped, ecc),
                      fault::SecdedResult::Corrected);
            EXPECT_EQ(flipped, w); // repaired in place
        }
        for (unsigned bit = 0; bit < 31; ++bit) {
            Word dbl = w ^ (3u << bit);
            EXPECT_EQ(fault::secdedDecode(dbl, ecc),
                      fault::SecdedResult::Uncorrectable);
        }
    }
}

// ---------------------------------------------------------------------
// Per-site parity survival
// ---------------------------------------------------------------------

namespace
{

/** One-cell GEMM; returns the result matrix. */
Matrix
runGemm(CoprocConfig cfg)
{
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    Rng rng(5);
    Matrix c(12, 12), a(12, 8), b(8, 12);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    MatRef cr = allocMat(sys.memory(), 12, 12);
    MatRef ar = allocMat(sys.memory(), 12, 8);
    MatRef br = allocMat(sys.memory(), 8, 12);
    storeMat(sys.memory(), cr, c);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), br, b);
    JobRunner jobs(sys);
    jobs.add("gemm", [&sys, cr, ar, br](std::uint32_t alive) {
        LinalgPlanner plan(sys, alive);
        plan.matUpdate(cr, ar, br);
        return plan.takeOps();
    });
    jobs.dispatch();
    sys.run();
    return loadMat(sys.memory(), cr);
}

} // anonymous namespace

class ParitySites : public ::testing::TestWithParam<const char *>
{};

TEST_P(ParitySites, FlipSurvivesInBothProtectionModes)
{
    const char *site = GetParam();
    Matrix want = runGemm(makeConfig(1));
    for (auto mode :
         {fault::ParityMode::Correct, fault::ParityMode::Detect}) {
        CoprocConfig cfg = makeConfig(1);
        // One single-bit flip into this site mid-run. In Correct mode
        // it is repaired on the spot; in Detect mode the cell faults
        // and the transaction retries.
        protect(cfg, strfmt("at=300/flip/0/%s/16", site), mode, 4000);
        Matrix got = runGemm(cfg);
        EXPECT_EQ(got.maxAbsDiff(want), 0.0f)
            << "site " << site << " mode "
            << fault::parityModeName(mode);
    }
}

INSTANTIATE_TEST_SUITE_P(AllSevenQueues, ParitySites,
                         ::testing::Values("tpx", "tpy", "tpo", "tpi",
                                           "sum", "ret", "reby"));

TEST(Parity, CorrectionAndDetectionAreCounted)
{
    // A flip into tpx while the host streams operands: Correct mode
    // must log a correction, Detect mode a detection plus a retry.
    CoprocConfig cfg = makeConfig(1);
    protect(cfg, "at=300/flip/0/tpx/1", fault::ParityMode::Correct,
            4000);
    {
        Coprocessor sys(cfg);
        kernels::installStandardKernels(sys);
        Rng rng(5);
        Matrix c(12, 12), a(12, 8), b(8, 12);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        MatRef cr = allocMat(sys.memory(), 12, 12);
        MatRef ar = allocMat(sys.memory(), 12, 8);
        MatRef br = allocMat(sys.memory(), 8, 12);
        storeMat(sys.memory(), cr, c);
        storeMat(sys.memory(), ar, a);
        storeMat(sys.memory(), br, b);
        LinalgPlanner plan(sys);
        plan.matUpdate(cr, ar, br);
        plan.commit();
        sys.run();
        EXPECT_EQ(sys.cell(0).tpx().totalFaultsInjected(), 1u);
        EXPECT_EQ(sys.cell(0).tpx().totalParityCorrected(), 1u);
        EXPECT_EQ(sys.cell(0).tpx().totalParityDetected(), 0u);
        ASSERT_NE(sys.injector(), nullptr);
        EXPECT_EQ(sys.injector()->injected(), 1u);
        EXPECT_EQ(sys.injector()->planSize(), 1u);
    }
    cfg.cell.parity = fault::ParityMode::Detect;
    {
        Coprocessor sys(cfg);
        kernels::installStandardKernels(sys);
        Rng rng(5);
        Matrix c(12, 12), a(12, 8), b(8, 12);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        MatRef cr = allocMat(sys.memory(), 12, 12);
        MatRef ar = allocMat(sys.memory(), 12, 8);
        MatRef br = allocMat(sys.memory(), 8, 12);
        storeMat(sys.memory(), cr, c);
        storeMat(sys.memory(), ar, a);
        storeMat(sys.memory(), br, b);
        JobRunner jobs(sys);
        jobs.add("gemm", [&sys, cr, ar, br](std::uint32_t alive) {
            LinalgPlanner plan(sys, alive);
            plan.matUpdate(cr, ar, br);
            return plan.takeOps();
        });
        jobs.dispatch();
        sys.run();
        EXPECT_EQ(sys.cell(0).tpx().totalParityDetected(), 1u);
        EXPECT_EQ(sys.cell(0).tpx().totalParityCorrected(), 0u);
        EXPECT_GE(sys.host().retries(), 1u);
        EXPECT_EQ(sys.host().deadCells(), 0u);
        Matrix got = loadMat(sys.memory(), cr);
        Matrix want = c;
        blasref::gemm(want, a, b);
        EXPECT_LT(got.maxAbsDiff(want), 1e-3f);
    }
}

// ---------------------------------------------------------------------
// Retry + replay across the kernel library
// ---------------------------------------------------------------------

namespace
{

/**
 * A named workload: sets up inputs in @p sys, registers jobs, and
 * returns the memory regions holding the results.
 */
using Regions = std::vector<std::pair<std::size_t, std::size_t>>;
using WorkloadFn = Regions (*)(Coprocessor &, JobRunner &);

Regions
linalgWorkload(Coprocessor &sys, JobRunner &jobs)
{
    auto &mem = sys.memory();
    Rng rng(11);
    // GEMM add + subtract (mat_update kernels, both signs).
    Matrix c(16, 16), a(16, 12), b(12, 16);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    MatRef cr = allocMat(mem, 16, 16);
    MatRef ar = allocMat(mem, 16, 12);
    MatRef br = allocMat(mem, 12, 16);
    storeMat(mem, cr, c);
    storeMat(mem, ar, a);
    storeMat(mem, br, b);
    jobs.add("gemm", [&sys, cr, ar, br](std::uint32_t alive) {
        LinalgPlanner plan(sys, alive);
        plan.matUpdate(cr, ar, br);
        plan.matUpdate(cr, ar, br, /*negate=*/true);
        return plan.takeOps();
    });
    // LU (lu_leaf, tr_solve, recip_nr) and Cholesky (cholesky_leaf).
    Matrix lu(20, 20);
    lu.randomize(rng);
    for (std::size_t i = 0; i < 20; ++i)
        lu.at(i, i) += 8.0f; // diagonally dominant: stable, no pivots
    MatRef lur = allocMat(mem, 20, 20);
    storeMat(mem, lur, lu);
    jobs.add("lu", [&sys, lur](std::uint32_t alive) {
        LinalgPlanner plan(sys, alive);
        plan.lu(lur);
        return plan.takeOps();
    });
    Matrix spd(12, 12, 0.0f);
    for (std::size_t i = 0; i < 12; ++i)
        for (std::size_t j = 0; j < 12; ++j)
            spd.at(i, j) = (i == j ? 14.0f : 0.0f)
                           + 0.5f / float(1 + i + j);
    MatRef spdr = allocMat(mem, 12, 12);
    storeMat(mem, spdr, spd);
    jobs.add("cholesky", [&sys, spdr](std::uint32_t alive) {
        LinalgPlanner plan(sys, alive);
        plan.cholesky(spdr);
        return plan.takeOps();
    });
    return {{cr.base, 16 * 16}, {lur.base, 20 * 20},
            {spdr.base, 12 * 12}};
}

Regions
signalWorkload(Coprocessor &sys, JobRunner &jobs)
{
    auto &mem = sys.memory();
    Rng rng(13);
    const std::size_t n = 64, batch = 2;
    std::size_t fin = mem.alloc(2 * n * batch);
    std::size_t fout = mem.alloc(2 * n * batch);
    std::size_t rin = mem.alloc(2 * n * batch);
    std::size_t rout = mem.alloc(2 * n * batch);
    for (std::size_t i = 0; i < 2 * n * batch; ++i) {
        float v = rng.uniform(-1.0f, 1.0f);
        mem.storeF(fin + i, v);
        mem.storeF(rin + i, v);
    }
    jobs.add("fft", [&sys, fin, fout, n, batch](std::uint32_t alive) {
        SignalPlanner plan(sys, alive);
        plan.fft(fin, fout, n, batch);
        return plan.takeOps();
    });
    jobs.add("fft_resident",
             [&sys, rin, rout, n, batch](std::uint32_t alive) {
                 SignalPlanner plan(sys, alive);
                 plan.fftResident(rin, rout, n, batch);
                 return plan.takeOps();
             });
    const std::size_t nx = 256, lags = 8;
    std::size_t x = mem.alloc(nx);
    std::size_t y = mem.alloc(nx + lags - 1);
    std::size_t corr = mem.alloc(lags);
    for (std::size_t i = 0; i < nx; ++i)
        mem.storeF(x + i, rng.uniform(-1.0f, 1.0f));
    for (std::size_t i = 0; i < nx + lags - 1; ++i)
        mem.storeF(y + i, rng.uniform(-1.0f, 1.0f));
    jobs.add("correlation",
             [&sys, x, nx, y, lags, corr](std::uint32_t alive) {
                 SignalPlanner plan(sys, alive);
                 plan.correlation(x, nx, y, lags, corr);
                 return plan.takeOps();
             });
    // gemv and conv2d (generated microcode) on small shapes.
    MatRef ga = allocMat(mem, 16, 24);
    std::size_t gx = mem.alloc(24), gy = mem.alloc(16);
    for (std::size_t i = 0; i < 16 * 24; ++i)
        mem.storeF(ga.base + i, rng.uniform(-1.0f, 1.0f));
    for (std::size_t i = 0; i < 24; ++i)
        mem.storeF(gx + i, rng.uniform(-1.0f, 1.0f));
    for (std::size_t i = 0; i < 16; ++i)
        mem.storeF(gy + i, rng.uniform(-1.0f, 1.0f));
    jobs.add("gemv", [&sys, ga, gx, gy](std::uint32_t alive) {
        SignalPlanner plan(sys, alive);
        plan.gemv(ga, gx, gy);
        return plan.takeOps();
    });
    const std::size_t in = 8, im = 20;
    const unsigned p = 3, q = 3;
    Matrix img(in, im), w(p, q);
    img.randomize(rng);
    w.randomize(rng);
    MatRef image_t = allocMat(mem, im + q - 1, in + p);
    for (std::size_t r = 0; r < image_t.cols; ++r) {
        for (std::size_t cc = 0; cc < image_t.rows; ++cc) {
            float v = 0.0f;
            if (r < img.rows() && cc < img.cols())
                v = img.at(r, cc);
            mem.storeF(image_t.addrOf(cc, r), v);
        }
    }
    MatRef wr = allocMat(mem, p, q);
    storeMat(mem, wr, w);
    MatRef out_t = allocMat(mem, im, in);
    jobs.add("conv2d",
             [&sys, image_t, wr, out_t, in, im](std::uint32_t alive) {
                 SignalPlanner plan(sys, alive);
                 plan.conv2d(image_t, wr, out_t, in, im);
                 return plan.takeOps();
             });
    return {{fout, 2 * n * batch},
            {rout, 2 * n * batch},
            {corr, lags},
            {gy, 16},
            {out_t.base, in * im}};
}

std::vector<float>
runWorkload(CoprocConfig cfg, WorkloadFn fn, Cycle *cycles = nullptr)
{
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    JobRunner jobs(sys);
    Regions regions = fn(sys, jobs);
    jobs.dispatch();
    Cycle cy = sys.run();
    if (cycles)
        *cycles = cy;
    std::vector<float> out;
    for (auto [base, count] : regions)
        for (std::size_t i = 0; i < count; ++i)
            out.push_back(sys.memory().loadF(base + i));
    return out;
}

} // anonymous namespace

class RecoverySurvival
    : public ::testing::TestWithParam<std::pair<const char *, WorkloadFn>>
{};

TEST_P(RecoverySurvival, RetryReplayIsOracleIdentical)
{
    auto [name, fn] = GetParam();
    // Oracle: the same workload on the same machine, fault-free.
    Cycle clean_cycles = 0;
    std::vector<float> want =
        runWorkload(makeConfig(2), fn, &clean_cycles);
    ASSERT_FALSE(want.empty());
    // Size the random plan to the run so faults actually land: ~5
    // faults of every recoverable kind across three seeds.
    for (std::uint64_t seed : {1u, 2u, 3u}) {
        CoprocConfig cfg = makeConfig(2);
        Cycle horizon = clean_cycles > 200 ? clean_cycles * 3 / 4 : 200;
        protect(cfg,
                strfmt("seed=%llu,n=5,horizon=%llu,"
                       "kinds=flip+drop+dup+hang+halt+mem",
                       (unsigned long long)seed,
                       (unsigned long long)horizon));
        std::vector<float> got = runWorkload(cfg, fn);
        ASSERT_EQ(got.size(), want.size());
        for (std::size_t i = 0; i < got.size(); ++i)
            ASSERT_EQ(got[i], want[i])
                << name << " seed " << seed << " word " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(
    KernelLibrary, RecoverySurvival,
    ::testing::Values(std::make_pair("linalg", &linalgWorkload),
                      std::make_pair("signal", &signalWorkload)));

// ---------------------------------------------------------------------
// Dead-cell degradation
// ---------------------------------------------------------------------

TEST(Recovery, DeadCellDegradesOntoSurvivors)
{
    CoprocConfig cfg = makeConfig(4);
    // Cell 1 hangs permanently mid-run: reset cannot revive it, the
    // retry budget runs out, and the work must finish on cells 0/2/3.
    protect(cfg, "at=2500/hang/1/0", fault::ParityMode::Correct,
            /*timeout=*/3000, /*budget=*/2);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    Rng rng(7);
    const unsigned njobs = 3;
    std::vector<Matrix> want(njobs);
    std::vector<MatRef> cr(njobs);
    JobRunner jobs(sys);
    for (unsigned j = 0; j < njobs; ++j) {
        Matrix c(20, 20), a(20, 12), b(12, 20);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        want[j] = c;
        blasref::gemm(want[j], a, b);
        cr[j] = allocMat(sys.memory(), 20, 20);
        MatRef ar = allocMat(sys.memory(), 20, 12);
        MatRef br = allocMat(sys.memory(), 12, 20);
        storeMat(sys.memory(), cr[j], c);
        storeMat(sys.memory(), ar, a);
        storeMat(sys.memory(), br, b);
        jobs.add(strfmt("gemm%u", j),
                 [&sys, c = cr[j], ar, br](std::uint32_t alive) {
                     LinalgPlanner plan(sys, alive);
                     plan.matUpdate(c, ar, br);
                     return plan.takeOps();
                 });
    }
    jobs.dispatch();
    sys.run();
    EXPECT_EQ(sys.host().deadCells(), 1u);
    EXPECT_EQ(sys.host().aliveMask(), 0b1101u);
    EXPECT_TRUE(sys.cell(1).dead());
    EXPECT_EQ(sys.host().completedJobs().size(), njobs);
    EXPECT_GE(jobs.replans(), 1u);
    for (unsigned j = 0; j < njobs; ++j)
        EXPECT_LT(loadMat(sys.memory(), cr[j]).maxAbsDiff(want[j]),
                  1e-3f)
            << "job " << j;
}

TEST(Recovery, AllCellsDeadThrowsRecoveryError)
{
    CoprocConfig cfg = makeConfig(1);
    protect(cfg, "at=300/hang/0/0", fault::ParityMode::Correct,
            /*timeout=*/1000, /*budget=*/1);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    Rng rng(5);
    Matrix c(12, 12), a(12, 8), b(8, 12);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    MatRef cr = allocMat(sys.memory(), 12, 12);
    MatRef ar = allocMat(sys.memory(), 12, 8);
    MatRef br = allocMat(sys.memory(), 8, 12);
    storeMat(sys.memory(), cr, c);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), br, b);
    JobRunner jobs(sys);
    jobs.add("gemm", [&sys, cr, ar, br](std::uint32_t alive) {
        LinalgPlanner plan(sys, alive);
        plan.matUpdate(cr, ar, br);
        return plan.takeOps();
    });
    jobs.dispatch();
    EXPECT_THROW(sys.run(), RecoveryError);
}

// ---------------------------------------------------------------------
// Fast-forward identity under faults
// ---------------------------------------------------------------------

TEST(Faults, SkipAndSpinAreCycleIdentical)
{
    // A plan mixing every recoverable kind, with the retry machinery
    // live: idle-cycle skipping must neither miss an injection nor
    // shift a timeout.
    auto run = [](bool skip) {
        CoprocConfig cfg = makeConfig(2);
        cfg.skipIdleCycles = skip;
        protect(cfg,
                "seed=4,n=6,horizon=4000,"
                "kinds=flip+drop+dup+hang+halt+mem",
                fault::ParityMode::Detect, /*timeout=*/2500);
        Cycle cycles = 0;
        std::vector<float> vals =
            runWorkload(cfg, &linalgWorkload, &cycles);
        return std::pair<Cycle, std::vector<float>>(cycles, vals);
    };
    auto skip = run(true);
    auto spin = run(false);
    EXPECT_EQ(skip.first, spin.first);
    EXPECT_EQ(skip.second, spin.second);
}

// ---------------------------------------------------------------------
// Watchdog callback
// ---------------------------------------------------------------------

namespace
{

/** Never finishes, never progresses: pure watchdog bait. */
struct StuckComponent : sim::Component
{
    StuckComponent() : sim::Component("stuck") {}
    void tick(sim::Engine &) override {}
    bool done() const override { return false; }
    Cycle nextEventAt(Cycle) const override { return noEvent; }
};

} // anonymous namespace

TEST(Watchdog, NonFatalHandlerCanDeferDeadlock)
{
    StuckComponent stuck;
    sim::Engine eng(/*watchdog_cycles=*/1000);
    eng.add(&stuck);
    unsigned calls = 0;
    eng.setWatchdogHandler([&calls](sim::Engine &) {
        ++calls;
        return calls < 3; // claim twice, then let it die
    });
    EXPECT_THROW(eng.run(), DeadlockError);
    EXPECT_EQ(calls, 3u);
    // Two claimed timeouts plus the fatal one: >= 3 watchdog windows.
    EXPECT_GE(eng.now(), 3000u);
}
