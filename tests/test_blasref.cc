/**
 * @file
 * Tests for the reference math library (the oracles themselves):
 * internal consistency and hand-computed cases.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "blasref/blas3.hh"
#include "blasref/lu.hh"
#include "blasref/signal.hh"

using namespace opac;
using namespace opac::blasref;

TEST(Matrix, Basics)
{
    Matrix m(3, 2, 1.5f);
    EXPECT_EQ(m.rows(), 3u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m.at(2, 1), 1.5f);
    m.at(1, 0) = -2.0f;
    EXPECT_EQ(m.at(1, 0), -2.0f);
    EXPECT_THROW(m.at(3, 0), std::logic_error);
}

TEST(Matrix, MaxAbsDiff)
{
    Matrix a(2, 2), b(2, 2);
    a.at(0, 0) = 1.0f;
    b.at(0, 0) = 1.5f;
    b.at(1, 1) = -0.25f;
    EXPECT_FLOAT_EQ(a.maxAbsDiff(b), 0.5f);
}

TEST(Gemm, HandComputed2x2)
{
    Matrix a(2, 2), b(2, 2), c(2, 2);
    a.at(0, 0) = 1;
    a.at(0, 1) = 2;
    a.at(1, 0) = 3;
    a.at(1, 1) = 4;
    b.at(0, 0) = 5;
    b.at(0, 1) = 6;
    b.at(1, 0) = 7;
    b.at(1, 1) = 8;
    c.at(0, 0) = 1;
    gemm(c, a, b);
    EXPECT_FLOAT_EQ(c.at(0, 0), 1 + 19);
    EXPECT_FLOAT_EQ(c.at(0, 1), 22);
    EXPECT_FLOAT_EQ(c.at(1, 0), 43);
    EXPECT_FLOAT_EQ(c.at(1, 1), 50);
}

TEST(Gemm, NegateSubtracts)
{
    Rng rng(1);
    Matrix a(4, 3), b(3, 5), c(4, 5), d(4, 5);
    a.randomize(rng);
    b.randomize(rng);
    c.randomize(rng);
    d = c;
    gemm(c, a, b, false);
    gemm(c, a, b, true);
    EXPECT_LT(c.maxAbsDiff(d), 1e-5f);
}

TEST(Trsm, RightUpperSolves)
{
    Rng rng(2);
    const std::size_t n = 8, m = 6;
    Matrix u(n, n);
    u.randomize(rng);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            u.at(i, j) = 0.0f;
        u.at(i, i) += 4.0f;
    }
    Matrix a(m, n), orig(m, n);
    a.randomize(rng);
    orig = a;
    trsmRightUpper(a, u);
    // X * U should reproduce the original A.
    Matrix check(m, n);
    gemm(check, a, u);
    EXPECT_LT(check.maxAbsDiff(orig), 1e-4f);
}

TEST(Trsm, LeftUnitLowerSolves)
{
    Rng rng(3);
    const std::size_t n = 7, m = 5;
    Matrix l(n, n);
    l.randomize(rng);
    for (std::size_t i = 0; i < n; ++i) {
        l.at(i, i) = 1.0f;
        for (std::size_t j = i + 1; j < n; ++j)
            l.at(i, j) = 0.0f;
    }
    Matrix a(n, m), orig(n, m);
    a.randomize(rng);
    orig = a;
    trsmLeftUnitLower(a, l);
    Matrix check(n, m);
    gemm(check, l, a);
    EXPECT_LT(check.maxAbsDiff(orig), 1e-4f);
}

TEST(Trmm, MatchesGemmWithTriangle)
{
    Rng rng(4);
    const std::size_t n = 6, m = 4;
    Matrix u(n, n);
    u.randomize(rng);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            u.at(i, j) = 0.0f;
    }
    Matrix b(n, m), expect(n, m);
    b.randomize(rng);
    gemm(expect, u, b);
    trmmLeftUpper(b, u);
    EXPECT_LT(b.maxAbsDiff(expect), 1e-4f);
}

TEST(Syrk, MatchesGemmLowerTriangle)
{
    Rng rng(5);
    const std::size_t n = 6, k = 4;
    Matrix a(n, k);
    a.randomize(rng);
    Matrix at(k, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < k; ++j)
            at.at(j, i) = a.at(i, j);
    }
    Matrix full(n, n);
    gemm(full, a, at);
    Matrix c(n, n);
    syrkLower(c, a);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = j; i < n; ++i)
            EXPECT_NEAR(c.at(i, j), full.at(i, j), 1e-4f);
    }
}

TEST(Lu, FactorsAndSolves)
{
    Rng rng(6);
    const std::size_t n = 12;
    Matrix a(n, n);
    a.randomize(rng);
    a.makeDiagonallyDominant();
    Matrix lu_m = a;
    luFactor(lu_m);
    std::vector<float> b(n);
    for (auto &v : b)
        v = rng.element();
    auto x = luSolve(lu_m, b);
    EXPECT_LT(residual(a, x, b), 1e-3f);
}

TEST(Lu, ReconstructsViaLTimesU)
{
    Rng rng(7);
    const std::size_t n = 9;
    Matrix a(n, n);
    a.randomize(rng);
    a.makeDiagonallyDominant();
    Matrix f = a;
    luFactor(f);
    Matrix l(n, n), u(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        l.at(i, i) = 1.0f;
        for (std::size_t j = 0; j < i; ++j)
            l.at(i, j) = f.at(i, j);
        for (std::size_t j = i; j < n; ++j)
            u.at(i, j) = f.at(i, j);
    }
    Matrix prod(n, n);
    gemm(prod, l, u);
    EXPECT_LT(prod.maxAbsDiff(a), 1e-3f);
}

TEST(Signal, Xcorr2dHandComputed)
{
    Matrix img(3, 3);
    for (std::size_t c = 0; c < 3; ++c) {
        for (std::size_t r = 0; r < 3; ++r)
            img.at(r, c) = float(r * 3 + c + 1);
    }
    Matrix w(2, 2, 1.0f); // box filter
    Matrix out = xcorr2d(img, w);
    // out(0,0) = img(0,0)+img(0,1)+img(1,0)+img(1,1) = 1+2+4+5.
    EXPECT_FLOAT_EQ(out.at(0, 0), 12.0f);
    // bottom-right uses zero padding: only img(2,2).
    EXPECT_FLOAT_EQ(out.at(2, 2), 9.0f);
}

TEST(Signal, Xcorr1dHandComputed)
{
    std::vector<float> x = {1, 2, 3};
    std::vector<float> y = {4, 5, 6, 7};
    auto out = xcorr1d(x, y, 2);
    EXPECT_FLOAT_EQ(out[0], 1 * 4 + 2 * 5 + 3 * 6);
    EXPECT_FLOAT_EQ(out[1], 1 * 5 + 2 * 6 + 3 * 7);
}

TEST(Signal, FftMatchesDft)
{
    Rng rng(8);
    const std::size_t n = 64;
    std::vector<std::complex<float>> x(n);
    for (auto &v : x)
        v = {rng.element(), rng.element()};
    auto a = fft(x);
    auto b = dft(x);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(a[i].real(), b[i].real(), 1e-3f);
        EXPECT_NEAR(a[i].imag(), b[i].imag(), 1e-3f);
    }
}

TEST(Signal, FftInverseRoundTrip)
{
    Rng rng(9);
    const std::size_t n = 32;
    std::vector<std::complex<float>> x(n);
    for (auto &v : x)
        v = {rng.element(), rng.element()};
    auto f = fft(x);
    auto back = fft(f, true);
    for (std::size_t i = 0; i < n; ++i) {
        EXPECT_NEAR(back[i].real() / float(n), x[i].real(), 1e-4f);
        EXPECT_NEAR(back[i].imag() / float(n), x[i].imag(), 1e-4f);
    }
}

TEST(Signal, FftRejectsNonPowerOfTwo)
{
    std::vector<std::complex<float>> x(6);
    EXPECT_THROW(fft(x), std::logic_error);
}
