/**
 * @file
 * Tests for the bit-accurate binary32 implementation.
 *
 * The oracle is the host's IEEE-754 hardware arithmetic (x86 SSE), driven
 * through volatile operands so the compiler cannot fold operations at
 * translation time. Random sweeps use an encoding distribution that is
 * heavily biased toward the hard paths: subnormals, near-overflow,
 * massive cancellation and exact ties.
 */

#include <gtest/gtest.h>

#include <cfenv>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "softfloat/float32.hh"

using namespace opac;
namespace sf = opac::sf;

namespace
{

/** Biased random float32 encoding: hits subnormal/overflow paths often. */
Word
interestingWord(Rng &rng)
{
    Word sign = Word(rng.range(0, 1)) << 31;
    Word frac = Word(rng.next() & 0x7fffff);
    Word exp;
    switch (rng.range(0, 9)) {
      case 0:
        exp = 0; // zero or subnormal
        break;
      case 1:
        exp = 1; // smallest normals
        break;
      case 2:
        exp = 0xfe; // largest normals
        break;
      case 3:
        exp = 0xff; // inf / NaN
        break;
      case 4:
      case 5:
        // Near 1.0: the dense middle where cancellation happens.
        exp = Word(127 + rng.range(-3, 3));
        break;
      default:
        exp = Word(rng.range(0, 0xff));
        break;
    }
    return sign | (exp << 23) | frac;
}

/** Bit equality, treating every NaN encoding as equal. */
void
expectSameValue(Word expect, Word got, const std::string &what)
{
    if (sf::isNaN(expect) && sf::isNaN(got))
        return;
    EXPECT_EQ(expect, got) << what;
}

float
nativeAdd(float a, float b)
{
    volatile float x = a, y = b;
    return x + y;
}

float
nativeSub(float a, float b)
{
    volatile float x = a, y = b;
    return x - y;
}

float
nativeMul(float a, float b)
{
    volatile float x = a, y = b;
    return x * y;
}

float
nativeDiv(float a, float b)
{
    volatile float x = a, y = b;
    return x / y;
}

float
nativeSqrt(float a)
{
    volatile float x = a;
    return std::sqrt(x);
}

float
nativeFma(float a, float b, float c)
{
    volatile float x = a, y = b, z = c;
    return std::fmaf(x, y, z);
}

struct FeRoundGuard
{
    explicit FeRoundGuard(int mode) : saved(std::fegetround())
    {
        std::fesetround(mode);
    }
    ~FeRoundGuard() { std::fesetround(saved); }
    int saved;
};

int
feModeFor(sf::Round r)
{
    switch (r) {
      case sf::Round::NearestEven: return FE_TONEAREST;
      case sf::Round::TowardZero: return FE_TOWARDZERO;
      case sf::Round::Down: return FE_DOWNWARD;
      case sf::Round::Up: return FE_UPWARD;
    }
    return FE_TONEAREST;
}

} // anonymous namespace

TEST(Classify, Basics)
{
    EXPECT_TRUE(sf::isZero(sf::posZero));
    EXPECT_TRUE(sf::isZero(sf::negZero));
    EXPECT_TRUE(sf::isInf(sf::posInf));
    EXPECT_TRUE(sf::isInf(sf::negInf));
    EXPECT_TRUE(sf::isNaN(sf::defaultNaN));
    EXPECT_FALSE(sf::isSignalingNaN(sf::defaultNaN));
    EXPECT_TRUE(sf::isSignalingNaN(0x7f800001u));
    EXPECT_TRUE(sf::isSubnormal(0x00000001u));
    EXPECT_FALSE(sf::isSubnormal(0x00800000u));
    EXPECT_TRUE(sf::sign(sf::negZero));
    EXPECT_FALSE(sf::sign(sf::posZero));
}

TEST(Arith, AddSpecials)
{
    sf::Context ctx;
    // inf + (-inf) is invalid.
    EXPECT_TRUE(sf::isNaN(sf::add(sf::posInf, sf::negInf, ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));

    ctx.clearFlags();
    EXPECT_EQ(sf::add(sf::posInf, floatToWord(1.0f), ctx), sf::posInf);
    EXPECT_EQ(sf::add(sf::negZero, sf::posZero, ctx), sf::posZero);
    EXPECT_EQ(sf::add(sf::negZero, sf::negZero, ctx), sf::negZero);
    EXPECT_EQ(ctx.flags, 0);

    // x + (-x) is +0 under round-to-nearest, -0 under round-down.
    Word x = floatToWord(3.25f);
    EXPECT_EQ(sf::add(x, sf::neg(x), ctx), sf::posZero);
    sf::Context down{sf::Round::Down, 0};
    EXPECT_EQ(sf::add(x, sf::neg(x), down), sf::negZero);
}

TEST(Arith, MulSpecials)
{
    sf::Context ctx;
    EXPECT_TRUE(sf::isNaN(sf::mul(sf::posInf, sf::posZero, ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));

    ctx.clearFlags();
    EXPECT_EQ(sf::mul(sf::posInf, floatToWord(-2.0f), ctx), sf::negInf);
    EXPECT_EQ(sf::mul(floatToWord(-2.0f), sf::posZero, ctx), sf::negZero);
    EXPECT_EQ(ctx.flags, 0);
}

TEST(Arith, DivSpecials)
{
    sf::Context ctx;
    EXPECT_TRUE(sf::isNaN(sf::div(sf::posZero, sf::posZero, ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));

    ctx.clearFlags();
    EXPECT_EQ(sf::div(floatToWord(1.0f), sf::posZero, ctx), sf::posInf);
    EXPECT_TRUE(ctx.raised(sf::FlagDivZero));

    ctx.clearFlags();
    EXPECT_EQ(sf::div(floatToWord(-1.0f), sf::posInf, ctx), sf::negZero);
    EXPECT_TRUE(sf::isNaN(sf::div(sf::posInf, sf::negInf, ctx)));
}

TEST(Arith, SqrtSpecials)
{
    sf::Context ctx;
    EXPECT_EQ(sf::sqrt(sf::posZero, ctx), sf::posZero);
    EXPECT_EQ(sf::sqrt(sf::negZero, ctx), sf::negZero);
    EXPECT_EQ(sf::sqrt(sf::posInf, ctx), sf::posInf);
    EXPECT_TRUE(sf::isNaN(sf::sqrt(floatToWord(-1.0f), ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));
    EXPECT_EQ(sf::sqrt(floatToWord(4.0f), ctx), floatToWord(2.0f));
}

TEST(Arith, FmaSpecials)
{
    sf::Context ctx;
    // inf * 0 + anything finite: invalid.
    EXPECT_TRUE(sf::isNaN(sf::mulAdd(sf::posInf, sf::posZero,
                                     floatToWord(1.0f), ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));

    ctx.clearFlags();
    // inf product + opposite inf addend: invalid.
    EXPECT_TRUE(sf::isNaN(sf::mulAdd(sf::posInf, floatToWord(1.0f),
                                     sf::negInf, ctx)));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));

    ctx.clearFlags();
    // Zero product falls back to addition semantics.
    EXPECT_EQ(sf::mulAdd(sf::negZero, floatToWord(5.0f), sf::posZero, ctx),
              sf::posZero);
    EXPECT_EQ(sf::mulAdd(sf::posZero, floatToWord(5.0f),
                         floatToWord(3.0f), ctx),
              floatToWord(3.0f));
}

TEST(Arith, FmaSingleRounding)
{
    // Pick a case where fused and chained differ: a*b exactly representable
    // only with > 24 bits; adding c cancels the high part.
    sf::Context ctx;
    Word a = floatToWord(1.0f + std::ldexp(1.0f, -12)); // 1 + 2^-12
    Word b = a;
    // a*b = 1 + 2^-11 + 2^-24 exactly (25 bits needed).
    Word c = floatToWord(-1.0f);
    Word fused = sf::mulAdd(a, b, c, ctx);
    Word chained = sf::chainedMulAdd(a, b, c, ctx);
    float expect_fused = float(std::ldexp(1.0, -11) + std::ldexp(1.0, -24));
    EXPECT_EQ(fused, floatToWord(expect_fused));
    EXPECT_NE(fused, chained); // the chained path loses the 2^-24 term
}

TEST(Arith, RandomAddSubMatchesNative)
{
    Rng rng(0xadd);
    sf::Context ctx;
    for (int i = 0; i < 200000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        Word got = sf::add(a, b, ctx);
        Word expect = floatToWord(nativeAdd(wordToFloat(a),
                                            wordToFloat(b)));
        expectSameValue(expect, got,
                        strfmt("add(%08x, %08x)", a, b));
        got = sf::sub(a, b, ctx);
        expect = floatToWord(nativeSub(wordToFloat(a), wordToFloat(b)));
        expectSameValue(expect, got,
                        strfmt("sub(%08x, %08x)", a, b));
        if (HasFailure())
            break;
    }
}

TEST(Arith, RandomMulMatchesNative)
{
    Rng rng(0x321);
    sf::Context ctx;
    for (int i = 0; i < 200000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        Word got = sf::mul(a, b, ctx);
        Word expect = floatToWord(nativeMul(wordToFloat(a),
                                            wordToFloat(b)));
        expectSameValue(expect, got, strfmt("mul(%08x, %08x)", a, b));
        if (HasFailure())
            break;
    }
}

TEST(Arith, RandomDivMatchesNative)
{
    Rng rng(0xd1f);
    sf::Context ctx;
    for (int i = 0; i < 100000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        Word got = sf::div(a, b, ctx);
        Word expect = floatToWord(nativeDiv(wordToFloat(a),
                                            wordToFloat(b)));
        expectSameValue(expect, got, strfmt("div(%08x, %08x)", a, b));
        if (HasFailure())
            break;
    }
}

TEST(Arith, RandomSqrtMatchesNative)
{
    Rng rng(0x5c7);
    sf::Context ctx;
    for (int i = 0; i < 100000; ++i) {
        Word a = interestingWord(rng) & 0x7fffffffu; // non-negative
        Word got = sf::sqrt(a, ctx);
        Word expect = floatToWord(nativeSqrt(wordToFloat(a)));
        expectSameValue(expect, got, strfmt("sqrt(%08x)", a));
        if (HasFailure())
            break;
    }
}

TEST(Arith, RandomFmaMatchesNative)
{
    Rng rng(0xf3a);
    sf::Context ctx;
    for (int i = 0; i < 100000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        Word c = interestingWord(rng);
        Word got = sf::mulAdd(a, b, c, ctx);
        Word expect = floatToWord(nativeFma(wordToFloat(a), wordToFloat(b),
                                            wordToFloat(c)));
        expectSameValue(expect, got,
                        strfmt("fma(%08x, %08x, %08x)", a, b, c));
        if (HasFailure())
            break;
    }
}

class RoundingModes : public ::testing::TestWithParam<sf::Round>
{};

TEST_P(RoundingModes, RandomOpsMatchNative)
{
    sf::Round rm = GetParam();
    FeRoundGuard guard(feModeFor(rm));
    Rng rng(0x40d + unsigned(rm));
    sf::Context ctx{rm, 0};
    for (int i = 0; i < 50000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        Word got = sf::add(a, b, ctx);
        Word expect = floatToWord(nativeAdd(wordToFloat(a),
                                            wordToFloat(b)));
        expectSameValue(expect, got,
                        strfmt("add rm=%d (%08x, %08x)", int(rm), a, b));

        got = sf::mul(a, b, ctx);
        expect = floatToWord(nativeMul(wordToFloat(a), wordToFloat(b)));
        expectSameValue(expect, got,
                        strfmt("mul rm=%d (%08x, %08x)", int(rm), a, b));

        got = sf::div(a, b, ctx);
        expect = floatToWord(nativeDiv(wordToFloat(a), wordToFloat(b)));
        expectSameValue(expect, got,
                        strfmt("div rm=%d (%08x, %08x)", int(rm), a, b));
        if (HasFailure())
            break;
    }
}

INSTANTIATE_TEST_SUITE_P(AllModes, RoundingModes,
    ::testing::Values(sf::Round::NearestEven, sf::Round::TowardZero,
                      sf::Round::Down, sf::Round::Up));

TEST(Flags, OverflowAndInexact)
{
    sf::Context ctx;
    Word big = floatToWord(3.0e38f);
    Word r = sf::mul(big, big, ctx);
    EXPECT_EQ(r, sf::posInf);
    EXPECT_TRUE(ctx.raised(sf::FlagOverflow));
    EXPECT_TRUE(ctx.raised(sf::FlagInexact));
}

TEST(Flags, OverflowRoundTowardZeroGivesMaxFinite)
{
    sf::Context ctx{sf::Round::TowardZero, 0};
    Word big = floatToWord(3.0e38f);
    Word r = sf::mul(big, big, ctx);
    EXPECT_EQ(r, 0x7f7fffffu);
    EXPECT_TRUE(ctx.raised(sf::FlagOverflow));
}

TEST(Flags, UnderflowOnTinyInexactResult)
{
    sf::Context ctx;
    Word tiny = floatToWord(1.0e-38f);
    Word r = sf::mul(tiny, floatToWord(0.1f), ctx);
    EXPECT_TRUE(sf::isSubnormal(r));
    EXPECT_TRUE(ctx.raised(sf::FlagUnderflow));
    EXPECT_TRUE(ctx.raised(sf::FlagInexact));
}

TEST(Flags, ExactOpsRaiseNothing)
{
    sf::Context ctx;
    sf::add(floatToWord(1.0f), floatToWord(2.0f), ctx);
    sf::mul(floatToWord(1.5f), floatToWord(2.0f), ctx);
    sf::div(floatToWord(1.0f), floatToWord(2.0f), ctx);
    EXPECT_EQ(ctx.flags, 0);
}

TEST(Properties, AddCommutes)
{
    Rng rng(0xc0);
    sf::Context ctx;
    for (int i = 0; i < 20000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        expectSameValue(sf::add(a, b, ctx), sf::add(b, a, ctx),
                        strfmt("add comm (%08x, %08x)", a, b));
    }
}

TEST(Properties, MulCommutes)
{
    Rng rng(0xc1);
    sf::Context ctx;
    for (int i = 0; i < 20000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        expectSameValue(sf::mul(a, b, ctx), sf::mul(b, a, ctx),
                        strfmt("mul comm (%08x, %08x)", a, b));
    }
}

TEST(Properties, MulByOneIsIdentity)
{
    Rng rng(0xc2);
    sf::Context ctx;
    Word one = floatToWord(1.0f);
    for (int i = 0; i < 20000; ++i) {
        Word a = interestingWord(rng);
        if (sf::isNaN(a))
            continue;
        EXPECT_EQ(sf::mul(a, one, ctx), a);
    }
}

TEST(Properties, FmaWithZeroAddendIsMul)
{
    Rng rng(0xc3);
    for (int i = 0; i < 20000; ++i) {
        Word a = interestingWord(rng);
        Word b = interestingWord(rng);
        sf::Context c1, c2;
        expectSameValue(sf::mul(a, b, c1),
                        sf::mulAdd(a, b, sf::posZero, c2),
                        strfmt("fma0 (%08x, %08x)", a, b));
    }
}

namespace
{

/** Curated encodings covering every boundary of the binary32 format. */
std::vector<Word>
boundaryValues()
{
    std::vector<Word> v = {
        0x00000000u, 0x80000000u, // zeros
        0x00000001u, 0x80000001u, // smallest subnormals
        0x00000002u, 0x00400000u, // mid subnormals
        0x007fffffu, 0x807fffffu, // largest subnormals
        0x00800000u, 0x80800000u, // smallest normals
        0x00800001u,              // smallest normal + 1 ulp
        0x7f7fffffu, 0xff7fffffu, // largest finites
        0x7f7ffffeu,              // largest finite - 1 ulp
        0x7f800000u, 0xff800000u, // infinities
        0x3f800000u, 0xbf800000u, // +-1
        0x3f800001u, 0x3f7fffffu, // 1 +- 1 ulp
        0x40000000u, 0xc0000000u, // +-2
        0x3f000000u,              // 0.5
        0x4b800000u,              // 2^24 (integer precision edge)
        0x4b7fffffu, 0x4b800001u,
        0x34000000u,              // 2^-23 (1 ulp of 1.0)
        0x33800000u,              // 2^-24 (tie point against 1.0)
        0x73800000u, 0x0b800000u, // large/small powers of two
        0x3effffffu, 0x3f000001u, // just below/above 0.5
        0x7f000000u,              // 2^127
        0x00ffffffu,              // just above 2 * min normal
        0x40490fdbu,              // pi
        0x402df854u,              // e
    };
    return v;
}

} // anonymous namespace

TEST(Boundary, AllPairsAddSubMulDivMatchNative)
{
    auto vals = boundaryValues();
    sf::Context ctx;
    for (Word a : vals) {
        for (Word b : vals) {
            expectSameValue(floatToWord(nativeAdd(wordToFloat(a),
                                                  wordToFloat(b))),
                            sf::add(a, b, ctx),
                            strfmt("add(%08x, %08x)", a, b));
            expectSameValue(floatToWord(nativeSub(wordToFloat(a),
                                                  wordToFloat(b))),
                            sf::sub(a, b, ctx),
                            strfmt("sub(%08x, %08x)", a, b));
            expectSameValue(floatToWord(nativeMul(wordToFloat(a),
                                                  wordToFloat(b))),
                            sf::mul(a, b, ctx),
                            strfmt("mul(%08x, %08x)", a, b));
            expectSameValue(floatToWord(nativeDiv(wordToFloat(a),
                                                  wordToFloat(b))),
                            sf::div(a, b, ctx),
                            strfmt("div(%08x, %08x)", a, b));
            if (HasFailure())
                return;
        }
    }
}

TEST(Boundary, AllSqrtsMatchNative)
{
    sf::Context ctx;
    for (Word a : boundaryValues()) {
        expectSameValue(floatToWord(nativeSqrt(wordToFloat(a))),
                        sf::sqrt(a, ctx), strfmt("sqrt(%08x)", a));
    }
}

TEST(Boundary, AllTriplesFmaMatchNative)
{
    auto vals = boundaryValues();
    sf::Context ctx;
    for (Word a : vals) {
        for (Word b : vals) {
            for (Word c : vals) {
                Word got = sf::mulAdd(a, b, c, ctx);
                Word expect = floatToWord(
                    nativeFma(wordToFloat(a), wordToFloat(b),
                              wordToFloat(c)));
                if (sf::isNaN(expect) && sf::isNaN(got))
                    continue;
                if (expect != got) {
                    ADD_FAILURE() << strfmt(
                        "fma(%08x, %08x, %08x): expect %08x got %08x",
                        a, b, c, expect, got);
                    return;
                }
            }
        }
    }
}

TEST(Boundary, AllPairsDirectedRoundingMatchNative)
{
    auto vals = boundaryValues();
    for (sf::Round rm : {sf::Round::TowardZero, sf::Round::Down,
                         sf::Round::Up}) {
        FeRoundGuard guard(feModeFor(rm));
        sf::Context ctx{rm, 0};
        for (Word a : vals) {
            for (Word b : vals) {
                expectSameValue(floatToWord(nativeAdd(wordToFloat(a),
                                                      wordToFloat(b))),
                                sf::add(a, b, ctx),
                                strfmt("add rm=%d (%08x, %08x)",
                                       int(rm), a, b));
                expectSameValue(floatToWord(nativeMul(wordToFloat(a),
                                                      wordToFloat(b))),
                                sf::mul(a, b, ctx),
                                strfmt("mul rm=%d (%08x, %08x)",
                                       int(rm), a, b));
                if (HasFailure())
                    return;
            }
        }
    }
}

TEST(Compare, Ordering)
{
    sf::Context ctx;
    Word one = floatToWord(1.0f);
    Word two = floatToWord(2.0f);
    EXPECT_TRUE(sf::lt(one, two, ctx));
    EXPECT_FALSE(sf::lt(two, one, ctx));
    EXPECT_TRUE(sf::le(one, one, ctx));
    EXPECT_TRUE(sf::lt(floatToWord(-2.0f), floatToWord(-1.0f), ctx));
    EXPECT_TRUE(sf::eq(sf::posZero, sf::negZero, ctx));
    EXPECT_FALSE(sf::lt(sf::posZero, sf::negZero, ctx));
}

TEST(Compare, NaNBehaviour)
{
    sf::Context ctx;
    EXPECT_FALSE(sf::eq(sf::defaultNaN, sf::defaultNaN, ctx));
    EXPECT_EQ(ctx.flags, 0); // quiet compare, qNaN: no invalid

    EXPECT_FALSE(sf::lt(sf::defaultNaN, floatToWord(1.0f), ctx));
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid)); // signaling compare
}

TEST(Convert, Int32RoundTrip)
{
    sf::Context ctx;
    for (std::int32_t v : {0, 1, -1, 42, -100000, 16777216, INT32_MAX,
                           INT32_MIN}) {
        Word w = sf::fromInt32(v, ctx);
        EXPECT_EQ(wordToFloat(w), float(v)) << v;
    }
    EXPECT_EQ(sf::toInt32(floatToWord(3.5f), ctx), 4); // ties to even
    EXPECT_EQ(sf::toInt32(floatToWord(2.5f), ctx), 2);
    EXPECT_EQ(sf::toInt32(floatToWord(-3.5f), ctx), -4);
    EXPECT_EQ(sf::toInt32(floatToWord(-2.0e9f), ctx), -2000000000);
}

TEST(Convert, Int32Saturation)
{
    sf::Context ctx;
    EXPECT_EQ(sf::toInt32(floatToWord(3.0e9f), ctx), INT32_MAX);
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));
    ctx.clearFlags();
    EXPECT_EQ(sf::toInt32(sf::negInf, ctx), INT32_MIN);
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));
    ctx.clearFlags();
    EXPECT_EQ(sf::toInt32(sf::defaultNaN, ctx), 0);
    EXPECT_TRUE(ctx.raised(sf::FlagInvalid));
}

TEST(Convert, RandomFromInt32MatchesNative)
{
    Rng rng(0x1c4);
    sf::Context ctx;
    for (int i = 0; i < 50000; ++i) {
        auto v = std::int32_t(rng.next());
        Word got = sf::fromInt32(v, ctx);
        volatile std::int32_t vv = v;
        float expect = float(vv);
        EXPECT_EQ(got, floatToWord(expect)) << v;
        if (HasFailure())
            break;
    }
}
