/**
 * @file
 * Tests of the request-level observability stack
 * (docs/OBSERVABILITY.md): job spans, SLO metrics exports, the
 * Prometheus exposition, the flight recorder ring, and — the property
 * everything else leans on — byte-identical observability output
 * across every engine mode, because spans and metrics are recorded in
 * virtual time only.
 */

#include <gtest/gtest.h>

#include <future>
#include <sstream>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "obs/flight.hh"
#include "obs/metrics.hh"
#include "obs/span.hh"
#include "serve/server.hh"
#include "trace/json.hh"

using namespace opac;
using namespace opac::serve;

namespace
{

ShardConfig
smallShard(sim::EngineMode mode, unsigned threads = 0)
{
    ShardConfig sc;
    sc.cells = 2;
    sc.tf = 512;
    sc.memoryWords = 1 << 20;
    sc.engineMode = mode;
    sc.simThreads = threads;
    return sc;
}

JobRequest
gemmReq(std::size_t m, std::uint64_t seed, Cycle arrival,
        unsigned pri = 0, std::uint32_t tenant = 0)
{
    JobRequest r;
    r.kind = KernelKind::Gemm;
    r.m = r.k = r.n = m;
    r.seed = seed;
    r.arrival = arrival;
    r.priority = pri;
    r.tenant = tenant;
    return r;
}

/** All three exports of a faulted mixed workload under one engine. */
struct ObsExports
{
    std::string metrics;
    std::string spans;
    std::string prom;
};

ObsExports
runObservedWorkload(sim::EngineMode mode, unsigned threads = 0)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(mode, threads);
    cfg.sched.batchMax = 2;
    cfg.faults = fault::parseFaultSpec(
        "seed=3,rate=40,horizon=200000,kinds=flip");
    Server srv(cfg);

    std::vector<std::future<JobResult>> futs;
    futs.push_back(srv.submit(gemmReq(16, 11, 0, 0, /*tenant=*/0)));
    futs.push_back(srv.submit(gemmReq(20, 12, 500, 1, 1)));
    JobRequest lu;
    lu.kind = KernelKind::Lu;
    lu.n = 16;
    lu.seed = 13;
    lu.arrival = 800;
    lu.tenant = 0;
    lu.deadline = 100000; // generous: miss counters stay zero
    futs.push_back(srv.submit(lu));
    JobRequest fft;
    fft.kind = KernelKind::Fft;
    fft.n = 64;
    fft.batch = 2;
    fft.seed = 15;
    fft.arrival = 1500;
    fft.tenant = 2;
    futs.push_back(srv.submit(fft));
    futs.push_back(srv.submit(gemmReq(16, 16, 9000, 0, 1)));
    srv.drain();
    for (auto &f : futs)
        f.get();

    ObsExports out;
    out.metrics = srv.metricsJson();
    out.spans = srv.spansJson();
    out.prom = srv.metricsProm();
    return out;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Determinism: the acceptance criterion of docs/OBSERVABILITY.md
// ---------------------------------------------------------------------

TEST(ObsDeterminism, ExportsByteIdenticalAcrossEngineModes)
{
    ObsExports ref = runObservedWorkload(sim::EngineMode::Spin);
    EXPECT_FALSE(ref.metrics.empty());
    EXPECT_FALSE(ref.spans.empty());

    struct Alt
    {
        const char *name;
        sim::EngineMode mode;
        unsigned threads;
    };
    const Alt alts[] = {
        {"skip", sim::EngineMode::Skip, 0},
        {"event", sim::EngineMode::Event, 0},
        {"parallel", sim::EngineMode::Parallel, 2},
        {"parallel/4t", sim::EngineMode::Parallel, 4},
    };
    for (const Alt &a : alts) {
        ObsExports got = runObservedWorkload(a.mode, a.threads);
        EXPECT_EQ(ref.metrics, got.metrics)
            << "metrics json diverged under --engine=" << a.name;
        EXPECT_EQ(ref.spans, got.spans)
            << "span stream diverged under --engine=" << a.name;
        EXPECT_EQ(ref.prom, got.prom)
            << "prometheus exposition diverged under --engine="
            << a.name;
    }
}

// ---------------------------------------------------------------------
// Span structure
// ---------------------------------------------------------------------

TEST(ObsSpans, CompletedJobWalksTheFullLifecycle)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard(sim::EngineMode::Skip);
    cfg.sched.batchMax = 1;
    Server srv(cfg);
    auto fut = srv.submit(gemmReq(12, 7, /*arrival=*/25));
    srv.drain();
    JobResult r = fut.get();
    ASSERT_EQ(r.status, JobStatus::Completed);

    ASSERT_EQ(srv.spans().size(), 1u);
    const obs::JobSpan &s = srv.spans().at(r.ticket);
    EXPECT_TRUE(s.terminal());
    EXPECT_EQ(s.shard, 0);
    EXPECT_EQ(s.batch, 1u);
    using obs::Phase;
    const Phase order[] = {Phase::Submit, Phase::Admit, Phase::Batch,
                           Phase::Dispatch, Phase::Execute,
                           Phase::Verify, Phase::Commit};
    Cycle prev = 0;
    for (Phase ph : order) {
        Cycle at = s.edgeAt(ph);
        ASSERT_NE(at, obs::JobSpan::noEdge)
            << "missing edge " << obs::phaseName(ph);
        EXPECT_GE(at, prev) << obs::phaseName(ph);
        prev = at;
    }
    EXPECT_EQ(s.edgeAt(Phase::Submit), Cycle(25));
    EXPECT_EQ(s.edgeAt(Phase::Commit), r.finished);
    EXPECT_EQ(s.edgeAt(Phase::Fail), obs::JobSpan::noEdge);
}

TEST(ObsSpans, RejectedJobGetsARejectEdgeAndNote)
{
    ServeConfig cfg;
    cfg.shards = 1;
    cfg.shard = smallShard(sim::EngineMode::Skip);
    Server srv(cfg);
    JobRequest dl = gemmReq(32, 1, 0);
    dl.deadline = 10; // provably unmeetable
    auto fut = srv.submit(dl);
    srv.drain();
    JobResult r = fut.get();
    ASSERT_EQ(r.status, JobStatus::Rejected);

    const obs::JobSpan &s = srv.spans().at(r.ticket);
    EXPECT_TRUE(s.terminal());
    EXPECT_NE(s.edgeAt(obs::Phase::Reject), obs::JobSpan::noEdge);
    EXPECT_EQ(s.edgeAt(obs::Phase::Admit), obs::JobSpan::noEdge);
    EXPECT_EQ(s.note, "deadline unmeetable");
    EXPECT_EQ(s.deadline, Cycle(10));
}

TEST(ObsSpans, JsonAndChromeTraceParse)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(sim::EngineMode::Skip);
    cfg.sched.batchMax = 2;
    Server srv(cfg);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(srv.submit(
            gemmReq(16, 30u + unsigned(i), Cycle(i) * 400,
                    0, std::uint32_t(i % 3))));
    srv.drain();
    for (auto &f : futs)
        f.get();

    // The span stream is versioned, schema-tagged JSON.
    std::string err;
    trace::json::Value doc;
    ASSERT_TRUE(trace::json::parse(srv.spansJson(), doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->str, "opac.serve.spans.v1");
    const trace::json::Value *spans = doc.find("spans");
    ASSERT_NE(spans, nullptr);
    ASSERT_EQ(spans->array.size(), 6u);
    for (const auto &sp : spans->array) {
        const trace::json::Value *edges = sp.find("edges");
        ASSERT_NE(edges, nullptr);
        ASSERT_FALSE(edges->array.empty());
        EXPECT_EQ(edges->array.front().find("ph")->str, "submit");
    }

    // The chrome rendering is a well-formed trace with one process
    // per shard and one per tenant.
    std::ostringstream chrome;
    srv.writeSpanChromeTrace(chrome);
    trace::json::Value tr;
    ASSERT_TRUE(trace::json::parse(chrome.str(), tr, &err)) << err;
    const trace::json::Value *events = tr.find("traceEvents");
    ASSERT_NE(events, nullptr);
    EXPECT_FALSE(events->array.empty());
    std::string names;
    for (const auto &ev : events->array) {
        const trace::json::Value *ph = ev.find("ph");
        if (ph != nullptr && ph->str == "M") {
            if (const trace::json::Value *args = ev.find("args"))
                if (const auto *n = args->find("name"))
                    names += n->str + "\n";
        }
    }
    EXPECT_NE(names.find("shard0"), std::string::npos);
    EXPECT_NE(names.find("shard1"), std::string::npos);
    EXPECT_NE(names.find("tenant0"), std::string::npos);
    EXPECT_NE(names.find("tenant2"), std::string::npos);
}

// ---------------------------------------------------------------------
// Metrics exports
// ---------------------------------------------------------------------

TEST(ObsMetrics, JsonCarriesSchemaSloQuantilesAndShardGauges)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(sim::EngineMode::Skip);
    cfg.sched.batchMax = 2;
    Server srv(cfg);
    // All jobs arrive at once so the second wave queues behind the
    // first. Odd jobs carry a deadline that clears admission (it
    // exceeds the service estimate) but not the queueing delay, so
    // they complete late: a deadline *miss*, not a rejection.
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 8; ++i) {
        JobRequest r = gemmReq(16, 50u + unsigned(i), 0, 0,
                               std::uint32_t(i % 2));
        if (i % 2 == 1)
            r.deadline = 6100;
        futs.push_back(srv.submit(r));
    }
    srv.drain();
    unsigned misses = 0;
    for (auto &f : futs)
        misses += f.get().missedDeadline();
    ASSERT_GE(misses, 1u);

    std::string err;
    trace::json::Value doc;
    ASSERT_TRUE(trace::json::parse(srv.metricsJson(), doc, &err))
        << err;
    EXPECT_EQ(doc.find("schema")->str, "opac.serve.metrics.v1");
    EXPECT_EQ(doc.find("shards")->number, 2.0);
    const trace::json::Value *m = doc.find("metrics");
    ASSERT_NE(m, nullptr);

    auto num = [&](const char *key) {
        const trace::json::Value *v = m->find(key);
        EXPECT_NE(v, nullptr) << key;
        return v != nullptr ? v->number : -1.0;
    };
    EXPECT_EQ(num("serve.completed"), 8.0);
    EXPECT_EQ(num("serve.deadline_missed"), double(misses));
    EXPECT_EQ(num("serve.shards.shard0.jobs")
                  + num("serve.shards.shard1.jobs"),
              8.0);
    // SLO quantiles render as objects with exact percentiles.
    const trace::json::Value *e2e = m->find("serve.e2e_pct");
    ASSERT_NE(e2e, nullptr);
    EXPECT_EQ(e2e->find("count")->number, 8.0);
    EXPECT_GT(e2e->find("p50")->number, 0.0);
    EXPECT_GE(e2e->find("p99")->number, e2e->find("p50")->number);
    // Per-tenant breakdowns exist for both active tenants.
    EXPECT_EQ(num("serve.tenants.tenant0.completed"), 4.0);
    EXPECT_EQ(num("serve.tenants.tenant1.completed"), 4.0);
    // Per-kind latency tracking.
    const trace::json::Value *kind =
        m->find("serve.kinds.gemm.service_pct");
    ASSERT_NE(kind, nullptr);
    EXPECT_EQ(kind->find("count")->number, 8.0);
    // Shard occupancy gauge is a fraction of the makespan.
    EXPECT_GT(num("serve.shards.shard0.occupancy"), 0.0);
    EXPECT_LE(num("serve.shards.shard0.occupancy"), 1.0);
}

TEST(ObsMetrics, PromExpositionLabelsTenantsAndShards)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(sim::EngineMode::Skip);
    Server srv(cfg);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 4; ++i)
        futs.push_back(srv.submit(gemmReq(12, 70u + unsigned(i),
                                          Cycle(i) * 200, 0,
                                          std::uint32_t(i % 2))));
    srv.drain();
    for (auto &f : futs)
        f.get();

    const std::string prom = srv.metricsProm();
    EXPECT_NE(prom.find("# TYPE opac_serve_completed gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("opac_serve_completed 4"), std::string::npos);
    // Tenant subtrees become labels, not name segments.
    EXPECT_NE(prom.find("{tenant=\"0\"}"), std::string::npos);
    EXPECT_NE(prom.find("{shard=\"1\"}"), std::string::npos);
    // Quantiles render as summaries.
    EXPECT_NE(prom.find("# TYPE opac_serve_e2e_pct summary"),
              std::string::npos);
    EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
    EXPECT_NE(prom.find("opac_serve_e2e_pct_count 4"),
              std::string::npos);
}

// ---------------------------------------------------------------------
// Flight recorder
// ---------------------------------------------------------------------

TEST(ObsFlight, RingIsBoundedAndKeepsTheNewest)
{
    obs::FlightRecorder fr(4);
    EXPECT_EQ(fr.capacity(), 4u);
    for (unsigned i = 0; i < 10; ++i)
        fr.note(Cycle(i) * 100, i + 1, obs::Phase::Execute, i, "x");
    EXPECT_EQ(fr.total(), 10u);
    std::vector<obs::FlightEvent> got = fr.recent();
    ASSERT_EQ(got.size(), 4u);
    // Oldest retained first: events 6..9 survive, in order.
    for (unsigned i = 0; i < 4; ++i) {
        EXPECT_EQ(got[i].ticket, 7u + i);
        EXPECT_EQ(got[i].at, Cycle(6 + i) * 100);
    }
}

TEST(ObsFlight, DumpJsonIsVersionedAndCarriesTheFaultPlan)
{
    obs::FlightRecorders recs(2, 8);
    recs.shard(0).note(100, 1, obs::Phase::Dispatch, 1, "gemm");
    recs.shard(1).note(200, 2, obs::Phase::Commit, 1, "");
    std::vector<std::vector<std::string>> plans = {
        {"cycle 30000: hang cell 0"}, {}};
    std::string dump =
        recs.dumpJson("test reason", 1234, 99, plans);

    std::string err;
    trace::json::Value doc;
    ASSERT_TRUE(trace::json::parse(dump, doc, &err)) << err;
    EXPECT_EQ(doc.find("schema")->str, "opac.serve.flight.v1");
    EXPECT_EQ(doc.find("reason")->str, "test reason");
    EXPECT_EQ(doc.find("cycle")->number, 1234.0);
    EXPECT_EQ(doc.find("seed")->number, 99.0);
    const trace::json::Value *shards = doc.find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_EQ(shards->array.size(), 2u);
    const trace::json::Value &s0 = shards->array[0];
    EXPECT_EQ(s0.find("fault_plan")->array.size(), 1u);
    const trace::json::Value *evs = s0.find("events");
    ASSERT_NE(evs, nullptr);
    ASSERT_EQ(evs->array.size(), 1u);
    EXPECT_EQ(evs->array[0].find("ph")->str, "dispatch");
}

// ---------------------------------------------------------------------
// Interval sampling through the serve stack (satellite: sampler series
// must be byte-identical between spin and the parallel engine)
// ---------------------------------------------------------------------

namespace
{

std::vector<std::string>
runSampledShards(sim::EngineMode mode, unsigned threads)
{
    ServeConfig cfg;
    cfg.shards = 2;
    cfg.shard = smallShard(mode, threads);
    cfg.shard.statsSampleInterval = 512;
    cfg.sched.batchMax = 2;
    Server srv(cfg);
    std::vector<std::future<JobResult>> futs;
    for (int i = 0; i < 6; ++i)
        futs.push_back(srv.submit(
            gemmReq(16, 90u + unsigned(i), Cycle(i) * 500)));
    srv.drain();
    for (auto &f : futs)
        f.get();
    std::vector<std::string> out;
    for (unsigned s = 0; s < srv.numShards(); ++s)
        out.push_back(srv.shard(s).system().statsJson());
    return out;
}

} // anonymous namespace

TEST(ObsSampler, ShardSeriesByteIdenticalSpinVsParallel)
{
    std::vector<std::string> spin =
        runSampledShards(sim::EngineMode::Spin, 0);
    std::vector<std::string> par =
        runSampledShards(sim::EngineMode::Parallel, 2);
    ASSERT_EQ(spin.size(), par.size());
    for (std::size_t s = 0; s < spin.size(); ++s) {
        EXPECT_FALSE(spin[s].empty());
        // The series must actually contain samples, not just stats.
        EXPECT_NE(spin[s].find("\"samples\""), std::string::npos);
        EXPECT_EQ(spin[s], par[s])
            << "shard " << s
            << " sample series diverged between spin and parallel";
    }
}
