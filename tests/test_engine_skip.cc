/**
 * @file
 * Golden-equivalence suite for idle-cycle skipping: for every workload
 * and configuration, a skip-mode run must be bit-identical to the
 * spin-mode run — same cycle count, same statistics JSON (including
 * the sampled time series), same trace event stream. Also covers the
 * parallel sweep runner: a multi-threaded sweep must produce exactly
 * the results of a serial one (and is the TSan target for the
 * simulator's thread-safety claims).
 */

#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"
#include "sim/sweep.hh"
#include "trace/trace.hh"

using namespace opac;
using namespace opac::planner;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

enum class Workload
{
    MatUpdate,
    Lu,
    Trmm,
    Syrk,
};

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::MatUpdate:
        return "matupdate";
      case Workload::Lu:
        return "lu";
      case Workload::Trmm:
        return "trmm";
      case Workload::Syrk:
        return "syrk";
    }
    return "?";
}

struct RunOut
{
    Cycle cycles = 0;
    std::string statsJson;
    std::vector<trace::Event> events;
    std::uint64_t fastForwards = 0;
    std::uint64_t skippedCycles = 0;
};

RunOut
runWorkload(Workload w, unsigned p, std::size_t tf, unsigned tau,
            bool skip, bool traced)
{
    CoprocConfig cfg;
    cfg.cells = p;
    cfg.cell.tf = tf;
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    cfg.skipIdleCycles = skip;
    cfg.statsSampleInterval = 64;
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    trace::Tracer tracer;
    trace::VectorSink sink;
    if (traced) {
        tracer.addSink(&sink);
        sys.attachTracer(&tracer);
    }

    LinalgPlanner plan(sys);
    const std::size_t n = 24, k = 40;
    switch (w) {
      case Workload::MatUpdate: {
        MatRef c = allocMat(sys.memory(), n, n);
        MatRef a = allocMat(sys.memory(), n, k);
        MatRef b = allocMat(sys.memory(), k, n);
        plan.matUpdate(c, a, b);
        break;
      }
      case Workload::Lu: {
        MatRef a = allocMat(sys.memory(), n, n);
        for (std::size_t i = 0; i < n; ++i)
            sys.memory().storeF(a.addrOf(i, i), 2.0f);
        plan.lu(a);
        break;
      }
      case Workload::Trmm: {
        MatRef u = allocMat(sys.memory(), n, n);
        MatRef b = allocMat(sys.memory(), n, 16);
        MatRef out = allocMat(sys.memory(), n, 16);
        plan.trmmLeftUpper(out, u, b);
        break;
      }
      case Workload::Syrk: {
        MatRef c = allocMat(sys.memory(), n, n);
        MatRef a = allocMat(sys.memory(), n, 16);
        plan.syrkLower(c, a);
        break;
      }
    }
    plan.commit();

    RunOut out;
    out.cycles = sys.run();
    out.statsJson = sys.statsJson();
    out.events = std::move(sink.events);
    out.fastForwards = sys.engine().fastForwards();
    out.skippedCycles = sys.engine().skippedCycles();
    return out;
}

void
expectSameEvents(const std::vector<trace::Event> &spin,
                 const std::vector<trace::Event> &fast,
                 const char *what)
{
    ASSERT_EQ(spin.size(), fast.size()) << what;
    for (std::size_t i = 0; i < spin.size(); ++i) {
        const trace::Event &a = spin[i];
        const trace::Event &b = fast[i];
        ASSERT_TRUE(a.cycle == b.cycle && a.kind == b.kind &&
                    a.arg == b.arg && a.comp == b.comp &&
                    a.track == b.track && a.a == b.a && a.b == b.b)
            << what << ": event " << i << " differs (cycle "
            << a.cycle << " vs " << b.cycle << ")";
    }
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Skip-mode golden equivalence
// ---------------------------------------------------------------------

TEST(EngineSkip, EveryWorkloadMatchesSpinExactly)
{
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu,
                              Workload::Trmm, Workload::Syrk};
    struct Shape
    {
        unsigned p;
        std::size_t tf;
        unsigned tau;
    };
    const Shape shapes[] = {{1, 512, 2}, {4, 256, 2}, {2, 512, 4}};
    for (Workload w : loads) {
        for (const Shape &s : shapes) {
            RunOut spin = runWorkload(w, s.p, s.tf, s.tau, false, false);
            RunOut fast = runWorkload(w, s.p, s.tf, s.tau, true, false);
            EXPECT_EQ(spin.cycles, fast.cycles)
                << workloadName(w) << " P=" << s.p << " tau=" << s.tau;
            EXPECT_EQ(spin.statsJson, fast.statsJson)
                << workloadName(w) << " P=" << s.p << " tau=" << s.tau;
            EXPECT_EQ(spin.fastForwards, 0u);
        }
    }
}

TEST(EngineSkip, TraceStreamIsIdenticalUnderSkipping)
{
    // Cycle-major replay must reproduce the spin-mode event order, not
    // just the same set of events.
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu};
    for (Workload w : loads) {
        RunOut spin = runWorkload(w, 2, 256, 4, false, true);
        RunOut fast = runWorkload(w, 2, 256, 4, true, true);
        EXPECT_EQ(spin.cycles, fast.cycles) << workloadName(w);
        expectSameEvents(spin.events, fast.events, workloadName(w));
    }
}

TEST(EngineSkip, SkippingActuallyHappensOnStallHeavyRuns)
{
    // LU's pivot recurrence serializes a scale pass behind the FP
    // pipeline drain, quiescing the whole system for several cycles at
    // every step; if the engine never fast-forwards there, the feature
    // is dead code and this suite proves nothing. (Streaming updates
    // like matupdate keep the cell busy every cycle — those runs skip
    // nothing, by design.)
    RunOut fast = runWorkload(Workload::Lu, 1, 512, 4, true, false);
    EXPECT_GT(fast.fastForwards, 0u);
    EXPECT_GT(fast.skippedCycles, 0u);
}

TEST(EngineSkip, SkipDiagnosticsStayOutOfStatsJson)
{
    RunOut fast = runWorkload(Workload::MatUpdate, 1, 512, 4, true,
                              false);
    EXPECT_EQ(fast.statsJson.find("fastForward"), std::string::npos);
    EXPECT_EQ(fast.statsJson.find("skippedCycles"), std::string::npos);
}

// ---------------------------------------------------------------------
// Parallel sweep runner
// ---------------------------------------------------------------------

TEST(SweepRunner, ParallelResultsMatchSerialInOrder)
{
    // Each task runs a full simulation; the multi-threaded sweep must
    // return exactly the serial results in task order. This is the
    // TSan target for the simulator's "no shared mutable state between
    // Coprocessor instances" claim.
    std::vector<std::function<Cycle()>> tasks;
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu,
                              Workload::Trmm, Workload::Syrk};
    for (Workload w : loads) {
        for (unsigned p : {1u, 2u}) {
            tasks.push_back([w, p] {
                return runWorkload(w, p, 256, 2, true, false).cycles;
            });
        }
    }
    auto serial = sim::sweep<Cycle>(tasks, 1);
    auto parallel = sim::sweep<Cycle>(tasks, 4);
    ASSERT_EQ(serial.size(), tasks.size());
    EXPECT_EQ(serial, parallel);
}

TEST(SweepRunner, LowestIndexExceptionPropagates)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 8; ++i) {
        tasks.push_back([i]() -> int {
            if (i == 2)
                throw std::runtime_error("task two");
            if (i == 5)
                throw std::runtime_error("task five");
            return i;
        });
    }
    try {
        sim::sweep<int>(tasks, 4);
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task two");
    }
}
