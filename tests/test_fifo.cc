/**
 * @file
 * Unit and property tests for the timed FIFO model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/random.hh"
#include "fifo/timed_fifo.hh"

using namespace opac;

TEST(TimedFifo, ZeroCapacityPanics)
{
    EXPECT_THROW(TimedFifo("bad", 0), std::logic_error);
}

TEST(TimedFifo, PushNotVisibleSameCycle)
{
    TimedFifo f("f", 4, 1);
    f.push(11, 0);
    EXPECT_FALSE(f.canPop(0));
    EXPECT_TRUE(f.canPop(1));
    EXPECT_EQ(f.pop(1), 11u);
}

TEST(TimedFifo, FallThroughLatencyRespected)
{
    TimedFifo f("f", 4, 3);
    f.push(7, 10);
    EXPECT_FALSE(f.canPop(12));
    EXPECT_TRUE(f.canPop(13));
}

TEST(TimedFifo, FifoOrderPreserved)
{
    TimedFifo f("f", 8);
    for (Word w = 0; w < 8; ++w)
        f.push(w, 0);
    for (Word w = 0; w < 8; ++w)
        EXPECT_EQ(f.pop(100), w);
}

TEST(TimedFifo, CapacityEnforced)
{
    TimedFifo f("f", 2);
    f.push(1, 0);
    f.push(2, 0);
    EXPECT_FALSE(f.canPush());
    EXPECT_THROW(f.push(3, 0), std::logic_error);
    f.pop(5);
    EXPECT_TRUE(f.canPush());
}

TEST(TimedFifo, ReservationsCountAgainstSpace)
{
    TimedFifo f("f", 3);
    f.reserve();
    f.reserve();
    EXPECT_EQ(f.space(), 1u);
    EXPECT_EQ(f.reservedSlots(), 2u);
    f.push(1, 0);
    EXPECT_FALSE(f.canPush());
    f.pushReserved(2, 0);
    EXPECT_EQ(f.reservedSlots(), 1u);
    // Slot freed from reservation, consumed by the stored word: still full.
    EXPECT_FALSE(f.canPush());
    f.pushReserved(3, 0);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.pop(5), 1u);
    EXPECT_EQ(f.pop(5), 2u);
    EXPECT_EQ(f.pop(5), 3u);
}

TEST(TimedFifo, PushReservedWithoutReservationPanics)
{
    TimedFifo f("f", 2);
    EXPECT_THROW(f.pushReserved(1, 0), std::logic_error);
}

TEST(TimedFifo, PopEmptyPanics)
{
    TimedFifo f("f", 2);
    EXPECT_THROW(f.pop(0), std::logic_error);
}

TEST(TimedFifo, FrontDoesNotConsume)
{
    TimedFifo f("f", 2);
    f.push(9, 0);
    EXPECT_EQ(f.front(1), 9u);
    EXPECT_EQ(f.front(1), 9u);
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.pop(1), 9u);
}

TEST(TimedFifo, ResetClearsContentAndReservations)
{
    TimedFifo f("f", 4);
    f.push(1, 0);
    f.reserve();
    f.reset();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.reservedSlots(), 0u);
    EXPECT_EQ(f.space(), 4u);
}

TEST(TimedFifo, StatsCountTraffic)
{
    stats::StatGroup g("top");
    TimedFifo f("q", 4);
    f.addStats(g);
    f.push(1, 0);
    f.push(2, 0);
    f.pop(3);
    f.reset();
    EXPECT_EQ(g.counterValue("q.pushes"), 2u);
    EXPECT_EQ(g.counterValue("q.pops"), 1u);
    EXPECT_EQ(g.counterValue("q.resets"), 1u);
}

/**
 * Property: under a random interleaving of pushes and pops, the FIFO
 * behaves exactly like an ideal queue (contents and order), and never
 * exceeds capacity.
 */
TEST(TimedFifoProperty, MatchesIdealQueueUnderRandomOps)
{
    Rng rng(0xf1f0);
    TimedFifo f("f", 16, 1);
    std::deque<Word> model;
    Word next_val = 0;
    for (Cycle t = 0; t < 20000; ++t) {
        if (rng.range(0, 1) == 0 && f.canPush()) {
            f.push(next_val, t);
            model.push_back(next_val);
            ++next_val;
        }
        if (rng.range(0, 2) == 0 && f.canPop(t)) {
            ASSERT_FALSE(model.empty());
            EXPECT_EQ(f.pop(t), model.front());
            model.pop_front();
        }
        EXPECT_LE(f.size(), 16u);
    }
    // Drain.
    while (!model.empty()) {
        EXPECT_EQ(f.pop(30000), model.front());
        model.pop_front();
    }
    EXPECT_TRUE(f.empty());
}

/** Property: recirculation (pop + push) preserves cyclic order. */
TEST(TimedFifoProperty, RecirculationPreservesCyclicOrder)
{
    TimedFifo f("f", 8, 1);
    for (Word w = 0; w < 6; ++w)
        f.push(w, 0);
    Cycle t = 1;
    // Recirculate two full revolutions.
    for (int i = 0; i < 12; ++i) {
        Word w = f.pop(t);
        EXPECT_EQ(w, Word(i % 6));
        f.push(w, t);
        ++t;
    }
}

// --- superop fast-tier stream ops (PR 8) ---------------------------

TEST(TimedFifoStream, StreamableEdges)
{
    TimedFifo f("f", 4, 2);
    // Empty: nothing to exchange or rotate.
    EXPECT_FALSE(f.streamable(10));
    f.push(1, 0);
    // count < latency: a word re-pushed mid-window would not be ready
    // again by the time the one-per-cycle rotation returns to it.
    EXPECT_FALSE(f.streamable(10));
    f.push(2, 0);
    // Newest entry is still falling through at cycle 1.
    EXPECT_FALSE(f.streamable(1));
    // From its ready cycle onwards the burst window may open.
    EXPECT_TRUE(f.streamable(2));
    EXPECT_TRUE(f.streamable(100));
    // Word protection forces the per-call path (reads verify check
    // bits); streaming must refuse.
    f.setParity(fault::ParityMode::Detect);
    EXPECT_FALSE(f.streamable(100));
    f.setParity(fault::ParityMode::Off);
    EXPECT_TRUE(f.streamable(100));
}

/**
 * streamExchange() must be byte-for-byte the pushReserved-then-pop
 * pair it replaces, across the ring-wrap boundary and one word short
 * of full — the fast tier's steady state on queue ret.
 */
TEST(TimedFifoStream, ExchangeMatchesPushReservedPlusPop)
{
    stats::StatGroup gs("s"), gr("r");
    TimedFifo fs("q", 4, 1), fr("q", 4, 1);
    fs.addStats(gs);
    fr.addStats(gr);
    for (Word w = 0; w < 3; ++w) {
        fs.push(w, 0);
        fr.push(w, 0);
    }
    Cycle t = 1;
    ASSERT_TRUE(fs.streamable(t));
    const unsigned n = 10; // 2.5 revolutions of the 4-slot ring
    for (unsigned i = 0; i < n; ++i, ++t) {
        Word landed = 100 + i;
        Word a = fs.streamExchange(landed, t);
        // The fast tier holds one output slot reserved throughout the
        // burst; mirror that on the reference queue each cycle.
        fr.reserve();
        fr.pushReserved(landed, t);
        Word b = fr.pop(t);
        EXPECT_EQ(a, b);
    }
    fs.streamCommit(n, true);
    // Identical contents, order and fall-through timing afterwards.
    ASSERT_EQ(fs.size(), fr.size());
    for (Cycle c = t - 2; c <= t + 1; ++c)
        EXPECT_EQ(fs.canPop(c), fr.canPop(c));
    while (!fr.empty())
        EXPECT_EQ(fs.pop(t + 10), fr.pop(t + 10));
    EXPECT_TRUE(fs.empty());
    // Settled lifetime counters match the per-call bookkeeping.
    EXPECT_EQ(gs.counterValue("q.pushes"), gr.counterValue("q.pushes"));
    EXPECT_EQ(gs.counterValue("q.pops"), gr.counterValue("q.pops"));
    EXPECT_EQ(gs.scalarValue("q.highWater"),
              gr.scalarValue("q.highWater"));
}

/**
 * streamRotate() must match recirculate() on a completely full queue
 * (count == capacity == ring size), where every slot is touched and
 * the head wraps twice — the reby rotation case.
 */
TEST(TimedFifoStream, RotateMatchesRecirculateWhenFull)
{
    stats::StatGroup gs("s"), gr("r");
    TimedFifo fs("q", 4, 1), fr("q", 4, 1);
    fs.addStats(gs);
    fr.addStats(gr);
    for (Word w = 0; w < 4; ++w) {
        fs.push(w, 0);
        fr.push(w, 0);
    }
    Cycle t = 1;
    ASSERT_TRUE(fs.streamable(t));
    const unsigned n = 9; // two full revolutions plus one
    for (unsigned i = 0; i < n; ++i, ++t) {
        Word a = fs.streamRotate(t);
        Word b = fr.recirculate(t);
        EXPECT_EQ(a, b);
        EXPECT_EQ(a, Word(i % 4));
    }
    fs.streamCommit(n, false);
    // Re-timestamps agree: the same entries become poppable at the
    // same cycles on both queues.
    for (Cycle c = t - 4; c <= t + 1; ++c)
        EXPECT_EQ(fs.canPop(c), fr.canPop(c));
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(fs.pop(t + 10), fr.pop(t + 10));
    // recirculate() counts one push + one pop and never observes the
    // watermark; streamCommit(n, false) must settle identically.
    EXPECT_EQ(gs.counterValue("q.pushes"), gr.counterValue("q.pushes"));
    EXPECT_EQ(gs.counterValue("q.pops"), gr.counterValue("q.pops"));
    EXPECT_EQ(gs.scalarValue("q.highWater"),
              gr.scalarValue("q.highWater"));
}

/**
 * Property: random bursts of stream ops interleaved with per-call
 * traffic leave the queue indistinguishable — contents, timing and
 * lifetime counters — from one driven through the per-call API only.
 */
TEST(TimedFifoStreamProperty, BurstsMatchPerCallReference)
{
    Rng rng(0x5eed);
    stats::StatGroup gs("s"), gr("r");
    TimedFifo fs("q", 8, 1), fr("q", 8, 1);
    fs.addStats(gs);
    fr.addStats(gr);
    Word next = 0;
    Cycle t = 1;
    for (int round = 0; round < 200; ++round) {
        // Random per-call traffic between bursts.
        for (int i = int(rng.range(0, 4)); i-- > 0; ++t) {
            if (rng.range(0, 1) == 0 && fs.canPush()) {
                fs.push(next, t);
                fr.push(next, t);
                ++next;
            }
            if (rng.range(0, 2) == 0 && fs.canPop(t))
                EXPECT_EQ(fs.pop(t), fr.pop(t));
        }
        ++t; // let the newest push fall through
        if (!fs.streamable(t))
            continue;
        unsigned exchanges = 0, rotates = 0;
        for (unsigned b = unsigned(rng.range(1, 6)); b-- > 0; ++t) {
            // Exchange needs a free ring slot for the landing word
            // (the reservation the fast tier holds open).
            if (rng.range(0, 1) == 0
                && fs.size() < fs.capacity()) {
                Word landed = 10000 + next++;
                Word a = fs.streamExchange(landed, t);
                fr.reserve();
                fr.pushReserved(landed, t);
                EXPECT_EQ(a, fr.pop(t));
                ++exchanges;
            } else {
                EXPECT_EQ(fs.streamRotate(t), fr.recirculate(t));
                ++rotates;
            }
        }
        if (exchanges)
            fs.streamCommit(exchanges, true);
        if (rotates)
            fs.streamCommit(rotates, false);
    }
    // Drain and compare everything that survived.
    ASSERT_EQ(fs.size(), fr.size());
    while (!fr.empty())
        EXPECT_EQ(fs.pop(t + 10), fr.pop(t + 10));
    EXPECT_EQ(gs.counterValue("q.pushes"), gr.counterValue("q.pushes"));
    EXPECT_EQ(gs.counterValue("q.pops"), gr.counterValue("q.pops"));
    EXPECT_EQ(gs.scalarValue("q.highWater"),
              gr.scalarValue("q.highWater"));
}
