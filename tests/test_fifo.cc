/**
 * @file
 * Unit and property tests for the timed FIFO model.
 */

#include <gtest/gtest.h>

#include <deque>

#include "common/random.hh"
#include "fifo/timed_fifo.hh"

using namespace opac;

TEST(TimedFifo, ZeroCapacityPanics)
{
    EXPECT_THROW(TimedFifo("bad", 0), std::logic_error);
}

TEST(TimedFifo, PushNotVisibleSameCycle)
{
    TimedFifo f("f", 4, 1);
    f.push(11, 0);
    EXPECT_FALSE(f.canPop(0));
    EXPECT_TRUE(f.canPop(1));
    EXPECT_EQ(f.pop(1), 11u);
}

TEST(TimedFifo, FallThroughLatencyRespected)
{
    TimedFifo f("f", 4, 3);
    f.push(7, 10);
    EXPECT_FALSE(f.canPop(12));
    EXPECT_TRUE(f.canPop(13));
}

TEST(TimedFifo, FifoOrderPreserved)
{
    TimedFifo f("f", 8);
    for (Word w = 0; w < 8; ++w)
        f.push(w, 0);
    for (Word w = 0; w < 8; ++w)
        EXPECT_EQ(f.pop(100), w);
}

TEST(TimedFifo, CapacityEnforced)
{
    TimedFifo f("f", 2);
    f.push(1, 0);
    f.push(2, 0);
    EXPECT_FALSE(f.canPush());
    EXPECT_THROW(f.push(3, 0), std::logic_error);
    f.pop(5);
    EXPECT_TRUE(f.canPush());
}

TEST(TimedFifo, ReservationsCountAgainstSpace)
{
    TimedFifo f("f", 3);
    f.reserve();
    f.reserve();
    EXPECT_EQ(f.space(), 1u);
    EXPECT_EQ(f.reservedSlots(), 2u);
    f.push(1, 0);
    EXPECT_FALSE(f.canPush());
    f.pushReserved(2, 0);
    EXPECT_EQ(f.reservedSlots(), 1u);
    // Slot freed from reservation, consumed by the stored word: still full.
    EXPECT_FALSE(f.canPush());
    f.pushReserved(3, 0);
    EXPECT_EQ(f.size(), 3u);
    EXPECT_EQ(f.pop(5), 1u);
    EXPECT_EQ(f.pop(5), 2u);
    EXPECT_EQ(f.pop(5), 3u);
}

TEST(TimedFifo, PushReservedWithoutReservationPanics)
{
    TimedFifo f("f", 2);
    EXPECT_THROW(f.pushReserved(1, 0), std::logic_error);
}

TEST(TimedFifo, PopEmptyPanics)
{
    TimedFifo f("f", 2);
    EXPECT_THROW(f.pop(0), std::logic_error);
}

TEST(TimedFifo, FrontDoesNotConsume)
{
    TimedFifo f("f", 2);
    f.push(9, 0);
    EXPECT_EQ(f.front(1), 9u);
    EXPECT_EQ(f.front(1), 9u);
    EXPECT_EQ(f.size(), 1u);
    EXPECT_EQ(f.pop(1), 9u);
}

TEST(TimedFifo, ResetClearsContentAndReservations)
{
    TimedFifo f("f", 4);
    f.push(1, 0);
    f.reserve();
    f.reset();
    EXPECT_TRUE(f.empty());
    EXPECT_EQ(f.reservedSlots(), 0u);
    EXPECT_EQ(f.space(), 4u);
}

TEST(TimedFifo, StatsCountTraffic)
{
    stats::StatGroup g("top");
    TimedFifo f("q", 4);
    f.addStats(g);
    f.push(1, 0);
    f.push(2, 0);
    f.pop(3);
    f.reset();
    EXPECT_EQ(g.counterValue("q.pushes"), 2u);
    EXPECT_EQ(g.counterValue("q.pops"), 1u);
    EXPECT_EQ(g.counterValue("q.resets"), 1u);
}

/**
 * Property: under a random interleaving of pushes and pops, the FIFO
 * behaves exactly like an ideal queue (contents and order), and never
 * exceeds capacity.
 */
TEST(TimedFifoProperty, MatchesIdealQueueUnderRandomOps)
{
    Rng rng(0xf1f0);
    TimedFifo f("f", 16, 1);
    std::deque<Word> model;
    Word next_val = 0;
    for (Cycle t = 0; t < 20000; ++t) {
        if (rng.range(0, 1) == 0 && f.canPush()) {
            f.push(next_val, t);
            model.push_back(next_val);
            ++next_val;
        }
        if (rng.range(0, 2) == 0 && f.canPop(t)) {
            ASSERT_FALSE(model.empty());
            EXPECT_EQ(f.pop(t), model.front());
            model.pop_front();
        }
        EXPECT_LE(f.size(), 16u);
    }
    // Drain.
    while (!model.empty()) {
        EXPECT_EQ(f.pop(30000), model.front());
        model.pop_front();
    }
    EXPECT_TRUE(f.empty());
}

/** Property: recirculation (pop + push) preserves cyclic order. */
TEST(TimedFifoProperty, RecirculationPreservesCyclicOrder)
{
    TimedFifo f("f", 8, 1);
    for (Word w = 0; w < 6; ++w)
        f.push(w, 0);
    Cycle t = 1;
    // Recirculate two full revolutions.
    for (int i = 0; i < 12; ++i) {
        Word w = f.pop(t);
        EXPECT_EQ(w, Word(i % 6));
        f.push(w, t);
        ++t;
    }
}
