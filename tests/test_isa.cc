/**
 * @file
 * Tests for the micro-ISA: builder, validation rules, disassembler and
 * the binary control-store encoding.
 */

#include <gtest/gtest.h>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "isa/builder.hh"
#include "isa/disasm.hh"
#include "isa/encode.hh"

using namespace opac;
using namespace opac::isa;

namespace
{

/** The fig. 5 matrix-update kernel, used as a representative program. */
Program
matUpdateProgram()
{
    // p0 = K, p1 = M, p2 = N
    ProgramBuilder b("matupdate");
    b.loopParam(1, [&] { b.mov(Src::TpX, DstSum); }); // load A column 1
    b.loopParam(0, [&] {
        b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });
        b.loopParam(2, [&] {
            b.mov(Src::TpX, DstRegAy);
            b.loopParam(1, [&] {
                b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
            });
        });
        b.resetFifo(LocalFifo::Reby);
    });
    b.loopParam(1, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

} // anonymous namespace

TEST(Builder, EmitsValidProgram)
{
    Program p = matUpdateProgram();
    EXPECT_EQ(p.name(), "matupdate");
    EXPECT_GT(p.size(), 10u);
    EXPECT_NO_THROW(p.validate());
    EXPECT_EQ(p.at(p.size() - 1).op, Opcode::Halt);
}

TEST(Builder, ParamOpsEmitCorrectInstrs)
{
    ProgramBuilder b("params");
    b.setParamImm(3, 42);
    b.copyParam(4, 3);
    b.incParam(4);
    b.decParam(4);
    b.mul2Param(4);
    b.div2Param(4);
    b.addParamImm(4, -7);
    Program p = b.finish();
    ASSERT_EQ(p.size(), 8u);
    EXPECT_EQ(p.at(0).paramOp, ParamOp::LoadImm);
    EXPECT_EQ(p.at(0).imm, 42);
    EXPECT_EQ(p.at(1).paramOp, ParamOp::Copy);
    EXPECT_EQ(p.at(1).srcParam, 3);
    EXPECT_EQ(p.at(6).paramOp, ParamOp::AddImm);
    EXPECT_EQ(p.at(6).imm, -7);
}

TEST(Builder, WithMoveAttachesParallelMove)
{
    ProgramBuilder b("par");
    b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum)
        .withMove(src(Src::TpX), DstRet);
    Program p = b.finish();
    const Instr &in = p.at(0);
    EXPECT_TRUE(in.fpActive());
    EXPECT_TRUE(in.mvActive());
    EXPECT_EQ(in.mvSrc.kind, Src::TpX);
    EXPECT_EQ(in.mvDstMask, DstRet);
}

TEST(Validate, RejectsDoublePopSameQueue)
{
    ProgramBuilder b("bad");
    // Both multiplier inputs pop tpx: two reads of a single-ported queue.
    b.mul(Src::TpX, Src::TpX, DstSum);
    EXPECT_THROW(b.finish(), std::runtime_error);
}

TEST(Validate, RejectsDoublePushSameQueue)
{
    ProgramBuilder b("bad");
    // Recirculating sum while also writing the FP result to sum.
    b.fma(Src::SumR, Src::RegAy, Src::Reby, DstSum);
    EXPECT_THROW(b.finish(), std::runtime_error);
}

TEST(Validate, RejectsMulOutMisuse)
{
    Program p("bad");
    Instr in;
    in.op = Opcode::Compute;
    in.mulA = src(Src::MulOut);
    in.mulB = src(Src::TpX);
    in.dstMask = DstSum;
    p.append(in);
    Instr halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsMulOutWithIdleMultiplier)
{
    Program p("bad");
    Instr in;
    in.op = Opcode::Compute;
    in.addA = src(Src::MulOut);
    in.addB = src(Src::Sum);
    in.dstMask = DstTpO;
    p.append(in);
    Instr halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsDroppedResults)
{
    {
        ProgramBuilder b("bad");
        b.mul(Src::TpX, Src::TpY, 0); // nowhere to go
        EXPECT_THROW(b.finish(), std::runtime_error);
    }
    {
        ProgramBuilder b("bad2");
        b.add(Src::TpX, Src::TpY, 0);
        EXPECT_THROW(b.finish(), std::runtime_error);
    }
}

TEST(Validate, RejectsUnmatchedLoops)
{
    Program p("bad");
    Instr begin;
    begin.op = Opcode::LoopBegin;
    begin.count = 3;
    p.append(begin);
    Instr halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsLoopEndWithoutBegin)
{
    Program p("bad");
    Instr end;
    end.op = Opcode::LoopEnd;
    p.append(end);
    Instr halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsExcessiveNesting)
{
    ProgramBuilder b("deep");
    std::function<void(unsigned)> nest = [&](unsigned d) {
        if (d == 0) {
            b.mov(Src::TpX, DstTpO);
            return;
        }
        b.loopImm(2, [&] { nest(d - 1); });
    };
    nest(maxLoopDepth + 1);
    EXPECT_THROW(b.finish(), std::runtime_error);
}

TEST(Validate, RejectsMissingHalt)
{
    Program p("bad");
    Instr in;
    in.op = Opcode::Compute;
    in.mvSrc = src(Src::TpX);
    in.mvDstMask = DstTpO;
    p.append(in);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsInstructionAfterHalt)
{
    Program p("bad");
    Instr halt;
    halt.op = Opcode::Halt;
    p.append(halt);
    Instr in;
    in.op = Opcode::Compute;
    in.mvSrc = src(Src::TpX);
    in.mvDstMask = DstTpO;
    p.append(in);
    EXPECT_THROW(p.validate(), std::runtime_error);
}

TEST(Validate, RejectsBadRegisterIndex)
{
    ProgramBuilder b("bad");
    b.mov(reg(numRegs), DstTpO);
    EXPECT_THROW(b.finish(), std::runtime_error);
}

TEST(Validate, AcceptsRecirculationFanout)
{
    // One pop with repush plus an FP write to a *different* queue.
    ProgramBuilder b("ok");
    b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
    EXPECT_NO_THROW(b.finish());
}

TEST(Disasm, RendersRepresentativeOps)
{
    ProgramBuilder b("demo");
    b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
    b.mul(Src::TpX, Src::RegAy, DstRet);
    b.add(Src::Sum, Src::Ret, DstTpO, AddOp::SubAB);
    b.mov(Src::TpX, DstRegAy);
    Program p = b.finish();

    EXPECT_EQ(disasm(p.at(0)), "fma reby* regay + sum -> sum");
    EXPECT_EQ(disasm(p.at(1)), "mul tpx regay -> ret");
    EXPECT_EQ(disasm(p.at(2)), "add sum - ret -> tpo");
    EXPECT_EQ(disasm(p.at(3)), "mov tpx -> regay");
    EXPECT_EQ(disasm(p.at(4)), "halt");
}

TEST(Disasm, ProgramIndentsLoops)
{
    ProgramBuilder b("loops");
    b.loopImm(4, [&] {
        b.loopParam(2, [&] { b.mov(Src::TpX, DstTpO); });
    });
    std::string text = disasm(b.finish());
    EXPECT_NE(text.find("loop 4 {"), std::string::npos);
    EXPECT_NE(text.find("loop p2 {"), std::string::npos);
    EXPECT_NE(text.find("mov tpx -> tpo"), std::string::npos);
}

TEST(Encode, RoundTripsRepresentativeProgram)
{
    Program p = matUpdateProgram();
    auto image = encode(p);
    EXPECT_EQ(image.size(), p.size() * 4);
    Program q = decode(image, "matupdate");
    ASSERT_EQ(q.size(), p.size());
    for (std::size_t i = 0; i < p.size(); ++i) {
        EXPECT_EQ(disasm(p.at(i)), disasm(q.at(i))) << "instr " << i;
    }
}

TEST(Encode, RoundTripsAllFieldKinds)
{
    ProgramBuilder b("all");
    b.setParamImm(5, -123456);
    b.loopImm(1000000, [&] {
        b.fma(reg(17), src(Src::RegAy), src(Src::TpY), DstReg, AddOp::SubBA,
              31);
    });
    b.loopParam(7, [&] {
        b.add(Src::Sum, Src::Ret, DstTpO, AddOp::SubAB);
        b.decParam(7);
    });
    b.resetFifo(LocalFifo::Ret);
    Program p = b.finish();

    Program q = decode(encode(p), "all");
    ASSERT_EQ(q.size(), p.size());
    EXPECT_EQ(q.at(0).imm, -123456);
    EXPECT_EQ(q.at(1).count, 1000000u);
    EXPECT_EQ(q.at(2).mulA.idx, 17);
    EXPECT_EQ(q.at(2).dstReg, 31);
    EXPECT_EQ(q.at(2).addOp, AddOp::SubBA);
    for (std::size_t i = 0; i < p.size(); ++i)
        EXPECT_EQ(disasm(p.at(i)), disasm(q.at(i))) << "instr " << i;
}

TEST(Builder, WithMoveOnMoveIsRejected)
{
    ProgramBuilder b("bad");
    b.mov(Src::TpX, DstSum);
    EXPECT_THROW(b.withMove(src(Src::TpY), DstRet),
                 opac::MicrocodeError);
}

TEST(Builder, WithMoveCreatingPortConflictFailsValidation)
{
    // fma recirculates reby while the parallel move also writes reby:
    // two pushes on one write port.
    ProgramBuilder b("bad");
    b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum)
        .withMove(src(Src::TpX), DstReby);
    EXPECT_THROW(b.finish(), std::runtime_error);
}

TEST(OperandNames, CoverEveryKind)
{
    for (int k = 0; k <= int(Src::One); ++k)
        EXPECT_FALSE(srcName(Src(k)).empty());
    EXPECT_EQ(operandName(reg(7)), "r7");
    EXPECT_EQ(dstMaskName(0, 0), "none");
    EXPECT_EQ(dstMaskName(DstSum | DstTpO, 0), "sum,tpo");
    EXPECT_EQ(dstMaskName(DstReg, 11), "r11");
    EXPECT_EQ(localFifoName(LocalFifo::Reby), "reby");
}

TEST(Encode, FifoFieldRoundTrips)
{
    ProgramBuilder b("resets");
    b.mov(Src::TpX, DstSum);
    b.resetFifo(LocalFifo::Sum);
    b.resetFifo(LocalFifo::Ret);
    b.resetFifo(LocalFifo::Reby);
    Program p = b.finish();
    Program q = decode(encode(p), "resets");
    EXPECT_EQ(q.at(1).fifo, LocalFifo::Sum);
    EXPECT_EQ(q.at(2).fifo, LocalFifo::Ret);
    EXPECT_EQ(q.at(3).fifo, LocalFifo::Reby);
}

TEST(Encode, ParallelMoveRoundTrips)
{
    ProgramBuilder b("pm");
    b.fma(Src::Reby, Src::RegAy, Src::Sum, DstSum)
        .withMove(src(Src::TpX), DstReby);
    Program p = b.finish();
    Program q = decode(encode(p), "pm");
    EXPECT_TRUE(q.at(0).mvActive());
    EXPECT_EQ(q.at(0).mvSrc.kind, Src::TpX);
    EXPECT_EQ(q.at(0).mvDstMask, DstReby);
}

TEST(Encode, RejectsTruncatedImage)
{
    Program p = matUpdateProgram();
    auto image = encode(p);
    image.pop_back();
    EXPECT_THROW(decode(image, "trunc"), std::runtime_error);
}

/**
 * Fuzz: random *valid* programs (generated through the builder from a
 * safe op menu) must round-trip bit-exactly through encode/decode.
 */
TEST(EncodeFuzz, RandomValidProgramsRoundTrip)
{
    Rng rng(0xf022);
    const Src pop_srcs[] = {Src::TpX, Src::TpY, Src::Sum, Src::SumR,
                            Src::Ret, Src::RetR, Src::Reby, Src::RebyR};
    for (int trial = 0; trial < 300; ++trial) {
        ProgramBuilder b(strfmt("fuzz%d", trial));
        int depth = 0;
        int len = int(rng.range(1, 40));
        for (int i = 0; i < len; ++i) {
            switch (rng.range(0, 6)) {
              case 0:
                b.mov(pop_srcs[rng.range(0, 7)],
                      DstTpO); // pop -> out, always valid
                break;
              case 1:
                b.fma(src(Src::RebyR),
                      reg(std::uint8_t(rng.range(0, 31))),
                      src(Src::Sum), DstSum,
                      rng.range(0, 1) ? AddOp::Add : AddOp::SubBA);
                break;
              case 2:
                b.mul(src(Src::TpX), src(Src::RegAy),
                      std::uint8_t(DstReg),
                      std::uint8_t(rng.range(0, 31)));
                break;
              case 3:
                b.setParamImm(std::uint8_t(rng.range(0, 15)),
                              std::int32_t(rng.next()));
                break;
              case 4:
                b.resetFifo(LocalFifo(rng.range(0, 2)));
                break;
              case 5:
                if (depth < int(maxLoopDepth) - 1) {
                    ++depth;
                    b.loopImm(std::uint32_t(rng.range(0, 100000)), [&] {
                        b.mov(Src::TpX, DstTpO);
                    });
                    --depth;
                } else {
                    b.decParam(std::uint8_t(rng.range(0, 15)));
                }
                break;
              default:
                b.add(src(Src::Sum), src(Src::TpY), DstRet,
                      AddOp(rng.range(0, 2)));
                break;
            }
        }
        Program p = b.finish();
        Program q = decode(encode(p), p.name());
        ASSERT_EQ(p.size(), q.size());
        for (std::size_t i = 0; i < p.size(); ++i) {
            EXPECT_EQ(disasm(p.at(i)), disasm(q.at(i)))
                << "trial " << trial << " instr " << i;
        }
        // And the re-encoding is bit-identical.
        EXPECT_EQ(encode(p), encode(q)) << "trial " << trial;
        if (HasFailure())
            break;
    }
}

TEST(Encode, RejectsBadOpcode)
{
    std::vector<std::uint32_t> image = {0x7u, 0, 0, 0}; // opcode 7
    EXPECT_THROW(decode(image, "bad"), std::runtime_error);
}
