/**
 * @file
 * System-level property tests: timing determinism, performance-bound
 * invariants, counter consistency, failure injection — plus the
 * extension kernels (Newton-Raphson reciprocal) and the composed
 * BLAS-3 planners (TRMM, SYRK).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "analytic/models.hh"
#include "blasref/blas3.hh"
#include "kernels/entries.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::planner;
using blasref::Matrix;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

CoprocConfig
makeConfig(unsigned cells, std::size_t tf, unsigned tau,
           cell::FpKind fp = cell::FpKind::Soft)
{
    CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.fp = fp;
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    return cfg;
}

Cycle
runGemm(const CoprocConfig &cfg, std::size_t n, std::size_t k,
        std::uint64_t *fma_count = nullptr)
{
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    Cycle cycles = sys.run();
    if (fma_count) {
        *fma_count = 0;
        for (unsigned i = 0; i < sys.numCells(); ++i)
            *fma_count += sys.cell(i).fmaOps();
    }
    return cycles;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Timing invariants
// ---------------------------------------------------------------------

TEST(SystemProperties, TimingIsDeterministic)
{
    Cycle a = runGemm(makeConfig(4, 512, 2), 40, 60);
    Cycle b = runGemm(makeConfig(4, 512, 2), 40, 60);
    EXPECT_EQ(a, b);
}

TEST(SystemProperties, TimingIndependentOfArithmeticBackend)
{
    Cycle soft = runGemm(makeConfig(2, 512, 2, cell::FpKind::Soft), 30,
                         50);
    Cycle native = runGemm(makeConfig(2, 512, 2, cell::FpKind::Native),
                           30, 50);
    Cycle token = runGemm(makeConfig(2, 512, 2, cell::FpKind::Token),
                          30, 50);
    EXPECT_EQ(soft, native);
    EXPECT_EQ(soft, token);
}

TEST(SystemProperties, PerCellRateNeverExceedsOne)
{
    for (unsigned p : {1u, 4u}) {
        Cycle cycles = runGemm(makeConfig(p, 2048, 1), 44, 200);
        double rate = 44.0 * 44.0 * 200.0 / double(cycles) / p;
        EXPECT_LE(rate, 1.0) << "P=" << p;
    }
}

TEST(SystemProperties, MeasuredRateRespectsBandwidthBound)
{
    const unsigned p = 16, tau = 4;
    const std::size_t tf = 512;
    std::size_t n = analytic::paperTileN(p, tf);
    Cycle cycles = runGemm(makeConfig(p, tf, tau,
                                      cell::FpKind::Token), n, 300);
    double rate = double(n) * double(n) * 300.0 / double(cycles);
    EXPECT_LE(rate,
              analytic::matUpdateAsymptoticBound(p, tau, n) + 0.01);
}

TEST(SystemProperties, MoreCellsNeverSlowerOnLargeProblem)
{
    Cycle p1 = runGemm(makeConfig(1, 512, 2, cell::FpKind::Token), 88,
                       120);
    Cycle p4 = runGemm(makeConfig(4, 512, 2, cell::FpKind::Token), 88,
                       120);
    Cycle p16 = runGemm(makeConfig(16, 512, 2, cell::FpKind::Token),
                        88, 120);
    EXPECT_LT(p4, p1);
    EXPECT_LT(p16, p4);
}

TEST(SystemProperties, FmaCounterMatchesWorkload)
{
    std::uint64_t fmas = 0;
    const std::size_t n = 24, k = 37;
    runGemm(makeConfig(3, 256, 2), n, k, &fmas);
    EXPECT_EQ(fmas, std::uint64_t(n) * n * k);
}

TEST(SystemProperties, HostTrafficMatchesPlanAccounting)
{
    CoprocConfig cfg = makeConfig(1, 2048, 2);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    const std::size_t n = 20, k = 15;
    MatRef c = allocMat(sys.memory(), n, n);
    MatRef a = allocMat(sys.memory(), n, k);
    MatRef b = allocMat(sys.memory(), k, n);
    plan.matUpdate(c, a, b);
    plan.commit();
    sys.run();
    // Sent: initial tile n^2 + K*(n + n); received: n^2.
    EXPECT_EQ(sys.host().wordsSent(), n * n + k * 2 * n);
    EXPECT_EQ(sys.host().wordsReceived(), n * n);
}

// ---------------------------------------------------------------------
// Failure injection
// ---------------------------------------------------------------------

TEST(FailureInjection, TruncatedOperandStreamTripsWatchdog)
{
    CoprocConfig cfg = makeConfig(1, 512, 2);
    cfg.watchdogCycles = 2000;
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    // Call the copy-through kernel... trSolve expects m*n words; send
    // fewer than it needs.
    sys.host().enqueue(host::callOp(1, kernels::entries::trSolve,
                                    {4, 4, 16}));
    std::size_t buf = sys.memory().alloc(8);
    sys.host().enqueue(host::sendOp(1, host::Region::vec(buf, 8)));
    EXPECT_THROW(sys.run(), std::runtime_error);
}

TEST(FailureInjection, WatchdogMessageNamesTheStuckComponent)
{
    CoprocConfig cfg = makeConfig(2, 512, 2);
    cfg.watchdogCycles = 1000;
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    sys.host().enqueue(host::callOp(2, kernels::entries::luLeaf,
                                    {4, 16}));
    try {
        sys.run();
        FAIL() << "expected deadlock";
    } catch (const std::runtime_error &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("cell1"), std::string::npos);
        EXPECT_NE(what.find("lu_leaf"), std::string::npos);
    }
}

TEST(FailureInjection, OversizedTrsmLeafRejectedAtPlanTime)
{
    CoprocConfig cfg = makeConfig(1, 64, 2);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    // n = 64 > sqrt(tf * p): recursion handles it, but a *direct* leaf
    // through a hand-made call would overflow; the planner asserts on
    // chunk sizes instead of deadlocking.
    MatRef a = allocMat(sys.memory(), 200, 64);
    MatRef u = allocMat(sys.memory(), 64, 64);
    std::size_t recips = sys.memory().alloc(64);
    for (int i = 0; i < 64; ++i)
        sys.memory().storeF(recips + std::size_t(i), 1.0f);
    EXPECT_NO_THROW(plan.trsmRightUpper(a, u, recips)); // recurses
}

// ---------------------------------------------------------------------
// Extension kernels and composed BLAS-3
// ---------------------------------------------------------------------

TEST(RecipNr, ConvergesToFullPrecision)
{
    CoprocConfig cfg = makeConfig(1, 512, 2);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    auto &mem = sys.memory();
    const int count = 32;
    Rng rng(3);
    std::vector<float> xs(count);
    for (auto &x : xs)
        x = rng.uniform(1.0f, 2.0f);

    // Stream: 2.0, then per element: x, linear seed 1.457 - x/2.
    std::size_t in = mem.alloc(1 + 2 * count);
    std::size_t at = in;
    mem.storeF(at++, 2.0f);
    for (float x : xs) {
        mem.storeF(at++, x);
        mem.storeF(at++, 1.457f - 0.5f * x);
    }
    std::size_t out = mem.alloc(count);
    sys.host().enqueue(host::callOp(1, kernels::entries::recipNr,
                                    {count, 4}));
    sys.host().enqueue(host::sendOp(1, host::Region::vec(
        in, 1 + 2 * count)));
    sys.host().enqueue(host::recvOp(0, host::Region::vec(out, count)));
    sys.run();
    for (int i = 0; i < count; ++i) {
        float r = mem.loadF(out + std::size_t(i));
        float expect = 1.0f / xs[i];
        EXPECT_NEAR(r, expect, 2e-7f * expect) << "x=" << xs[i];
    }
}

TEST(RecipNr, FewIterationsAreLessAccurate)
{
    auto run_iters = [&](int iters) {
        CoprocConfig cfg = makeConfig(1, 512, 2);
        Coprocessor sys(cfg);
        kernels::installStandardKernels(sys);
        auto &mem = sys.memory();
        std::size_t in = mem.alloc(3);
        mem.storeF(in, 2.0f);
        mem.storeF(in + 1, 1.9f);
        mem.storeF(in + 2, 1.457f - 0.5f * 1.9f);
        std::size_t out = mem.alloc(1);
        sys.host().enqueue(host::callOp(1, kernels::entries::recipNr,
                                        {1, iters}));
        sys.host().enqueue(host::sendOp(1, host::Region::vec(in, 3)));
        sys.host().enqueue(host::recvOp(0, host::Region::vec(out, 1)));
        sys.run();
        return std::fabs(mem.loadF(out) - 1.0f / 1.9f);
    };
    float e1 = run_iters(1);
    float e3 = run_iters(3);
    EXPECT_GT(e1, e3);
    EXPECT_LT(e3, 1e-6f);
}

TEST(ComposedBlas3, TrmmMatchesReference)
{
    Rng rng(21);
    const std::size_t n = 40, m = 18;
    Matrix u(n, n);
    u.randomize(rng);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            u.at(i, j) = 0.0f; // planner contract: zeros below diag
    }
    Matrix b(n, m);
    b.randomize(rng);
    Matrix expect = b;
    blasref::trmmLeftUpper(expect, u);

    Coprocessor sys(makeConfig(4, 256, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ur = allocMat(sys.memory(), n, n);
    MatRef br = allocMat(sys.memory(), n, m);
    MatRef outr = allocMat(sys.memory(), n, m);
    storeMat(sys.memory(), ur, u);
    storeMat(sys.memory(), br, b);
    plan.trmmLeftUpper(outr, ur, br);
    plan.commit();
    sys.run();
    EXPECT_LT(loadMat(sys.memory(), outr).maxAbsDiff(expect), 1e-3f);
}

TEST(ComposedBlas3, SyrkMatchesReferenceOnLowerTriangle)
{
    Rng rng(22);
    const std::size_t n = 36, k = 14;
    Matrix a(n, k);
    a.randomize(rng);
    Matrix c(n, n);
    c.randomize(rng);
    Matrix expect = c;
    blasref::syrkLower(expect, a);

    Coprocessor sys(makeConfig(4, 256, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef cr = allocMat(sys.memory(), n, n);
    MatRef ar = allocMat(sys.memory(), n, k);
    storeMat(sys.memory(), cr, c);
    storeMat(sys.memory(), ar, a);
    plan.syrkLower(cr, ar);
    plan.commit();
    sys.run();
    Matrix got = loadMat(sys.memory(), cr);
    for (std::size_t j = 0; j < n; ++j) {
        for (std::size_t i = j; i < n; ++i)
            EXPECT_NEAR(got.at(i, j), expect.at(i, j), 1e-3f)
                << i << "," << j;
    }
}

TEST(ComposedBlas3, TrmmSkipsZeroTriangleWork)
{
    // The block-triangular TRMM must do roughly half the multiply-adds
    // of a full GEMM of the same shape.
    const std::size_t n = 64, m = 32;
    auto count_fmas = [&](bool full) {
        Coprocessor sys(makeConfig(2, 512, 2, cell::FpKind::Token));
        kernels::installStandardKernels(sys);
        LinalgPlanner plan(sys);
        MatRef ur = allocMat(sys.memory(), n, n);
        MatRef br = allocMat(sys.memory(), n, m);
        MatRef outr = allocMat(sys.memory(), n, m);
        if (full)
            plan.matUpdate(outr, ur, br);
        else
            plan.trmmLeftUpper(outr, ur, br);
        plan.commit();
        sys.run();
        std::uint64_t fmas = 0;
        for (unsigned i = 0; i < sys.numCells(); ++i)
            fmas += sys.cell(i).fmaOps();
        return fmas;
    };
    std::uint64_t gemm = count_fmas(true);
    std::uint64_t trmm = count_fmas(false);
    // Two 32-row blocks over a 64 triangle skip exactly 1/4 of the
    // multiply-adds (K-ranges 64 and 32 against 64 + 64).
    EXPECT_EQ(trmm, gemm * 3 / 4);
}
