/**
 * @file
 * Unit tests for the common utilities: logging, stats, table formatting,
 * math helpers and the deterministic RNG.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/math_util.hh"
#include "common/random.hh"
#include "stats/stats.hh"
#include "common/table.hh"
#include "common/types.hh"

using namespace opac;

TEST(Logging, StrfmtFormats)
{
    EXPECT_EQ(strfmt("x=%d y=%s", 42, "abc"), "x=42 y=abc");
    EXPECT_EQ(strfmt("plain"), "plain");
    EXPECT_EQ(strfmt("%5.2f", 3.14159), " 3.14");
}

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(opac_panic("boom %d", 7), std::logic_error);
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(opac_fatal("bad config"), std::runtime_error);
}

TEST(Logging, AssertPassesAndFails)
{
    EXPECT_NO_THROW(opac_assert(1 + 1 == 2, "math"));
    EXPECT_THROW(opac_assert(false, "always"), std::logic_error);
}

TEST(Types, FloatWordRoundTrip)
{
    EXPECT_EQ(wordToFloat(floatToWord(1.5f)), 1.5f);
    EXPECT_EQ(floatToWord(0.0f), 0u);
    EXPECT_EQ(floatToWord(-0.0f), 0x80000000u);
    EXPECT_EQ(floatToWord(1.0f), 0x3f800000u);
}

TEST(MathUtil, CeilDiv)
{
    EXPECT_EQ(ceilDiv(10, 3), 4);
    EXPECT_EQ(ceilDiv(9, 3), 3);
    EXPECT_EQ(ceilDiv(0, 5), 0);
    EXPECT_EQ(ceilDiv(1, 5), 1);
}

TEST(MathUtil, IsPow2)
{
    EXPECT_TRUE(isPow2(1));
    EXPECT_TRUE(isPow2(1024));
    EXPECT_FALSE(isPow2(0));
    EXPECT_FALSE(isPow2(3));
    EXPECT_FALSE(isPow2(-4));
}

TEST(MathUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0);
    EXPECT_EQ(floorLog2(2), 1);
    EXPECT_EQ(floorLog2(3), 1);
    EXPECT_EQ(floorLog2(1024), 10);
}

TEST(MathUtil, RoundUp)
{
    EXPECT_EQ(roundUp(10, 4), 12);
    EXPECT_EQ(roundUp(12, 4), 12);
    EXPECT_EQ(roundUp(0, 4), 0);
}

TEST(MathUtil, Isqrt)
{
    EXPECT_EQ(isqrt(0), 0);
    EXPECT_EQ(isqrt(1), 1);
    EXPECT_EQ(isqrt(3), 1);
    EXPECT_EQ(isqrt(4), 2);
    EXPECT_EQ(isqrt(2048), 45);
    EXPECT_EQ(isqrt(512), 22);
}

TEST(Random, Deterministic)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Random, RangeBounds)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        auto v = r.range(-3, 5);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 5);
    }
}

TEST(Random, UniformBounds)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        float v = r.uniform();
        EXPECT_GE(v, 0.0f);
        EXPECT_LT(v, 1.0f);
    }
}

TEST(Random, ElementInRange)
{
    Rng r(11);
    for (int i = 0; i < 1000; ++i) {
        float v = r.element();
        EXPECT_GE(v, -1.0f);
        EXPECT_LE(v, 1.0f);
    }
}

TEST(Stats, CounterBasics)
{
    stats::Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c += 5;
    EXPECT_EQ(c.value(), 6u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Stats, DistributionBasics)
{
    stats::Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
}

TEST(Stats, GroupDumpAndLookup)
{
    stats::StatGroup root("sim");
    stats::StatGroup child("cell0", &root);
    stats::Counter c;
    c += 17;
    child.addCounter("issued", &c, "ops issued");

    EXPECT_EQ(root.counterValue("cell0.issued"), 17u);

    std::string out;
    root.dump(out);
    EXPECT_NE(out.find("sim.cell0.issued"), std::string::npos);
    EXPECT_NE(out.find("17"), std::string::npos);
}

TEST(Stats, GroupResetAll)
{
    stats::StatGroup root("sim");
    stats::Counter c;
    c += 3;
    root.addCounter("x", &c);
    root.resetAll();
    EXPECT_EQ(root.counterValue("x"), 0u);
}

TEST(Stats, MissingCounterPanics)
{
    stats::StatGroup root("sim");
    EXPECT_THROW(root.counterValue("nope"), std::logic_error);
}

TEST(Table, RendersAligned)
{
    TextTable t("title");
    t.header({"a", "bbbb"});
    t.row({"1", "2"});
    t.row({"333", "4"});
    std::string out = t.render();
    EXPECT_NE(out.find("title"), std::string::npos);
    EXPECT_NE(out.find("a    bbbb"), std::string::npos);
    EXPECT_NE(out.find("333  4"), std::string::npos);
}

TEST(Table, HandlesRaggedRows)
{
    TextTable t;
    t.header({"x"});
    t.row({"1", "2", "3"});
    EXPECT_NO_THROW(t.render());
}
