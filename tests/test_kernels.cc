/**
 * @file
 * End-to-end integration tests: kernels planned by the host planners,
 * executed on the simulated coprocessor, checked against the reference
 * math. Parameterized sweeps cover cell counts, FIFO sizes and host
 * speeds.
 */

#include <gtest/gtest.h>

#include "blasref/blas3.hh"
#include "blasref/lu.hh"
#include "blasref/signal.hh"
#include "kernels/entries.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::planner;
using blasref::Matrix;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

CoprocConfig
makeConfig(unsigned cells, std::size_t tf, unsigned tau)
{
    CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    return cfg;
}

/** Run C += A*B on the coprocessor; returns the result matrix. */
Matrix
runMatUpdate(const CoprocConfig &cfg, const Matrix &c0, const Matrix &a0,
             const Matrix &b0, bool negate = false)
{
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), c0.rows(), c0.cols());
    MatRef a = allocMat(sys.memory(), a0.rows(), a0.cols());
    MatRef b = allocMat(sys.memory(), b0.rows(), b0.cols());
    storeMat(sys.memory(), c, c0);
    storeMat(sys.memory(), a, a0);
    storeMat(sys.memory(), b, b0);
    plan.matUpdate(c, a, b, negate);
    plan.commit();
    sys.run();
    return loadMat(sys.memory(), c);
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Matrix update
// ---------------------------------------------------------------------

struct MatUpdateCase
{
    unsigned cells;
    std::size_t tf;
    unsigned tau;
    std::size_t m, n, k;
};

class MatUpdateSweep : public ::testing::TestWithParam<MatUpdateCase>
{};

TEST_P(MatUpdateSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.m * 31 + tc.n * 7 + tc.k);
    Matrix c(tc.m, tc.n), a(tc.m, tc.k), b(tc.k, tc.n);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    Matrix expect = c;
    blasref::gemm(expect, a, b);

    Matrix got = runMatUpdate(makeConfig(tc.cells, tc.tf, tc.tau), c, a,
                              b);
    EXPECT_LT(got.maxAbsDiff(expect), 1e-3f)
        << "P=" << tc.cells << " tf=" << tc.tf << " m=" << tc.m
        << " n=" << tc.n << " k=" << tc.k;
}

INSTANTIATE_TEST_SUITE_P(Shapes, MatUpdateSweep, ::testing::Values(
    MatUpdateCase{1, 2048, 2, 8, 8, 8},
    MatUpdateCase{1, 64, 2, 8, 8, 8},      // multi-tile on one cell
    MatUpdateCase{2, 2048, 2, 12, 9, 5},
    MatUpdateCase{4, 512, 4, 16, 16, 10},
    MatUpdateCase{4, 64, 2, 10, 30, 4},    // many tiles, odd shapes
    MatUpdateCase{3, 128, 3, 17, 13, 11},  // non-power-of-two everything
    MatUpdateCase{8, 256, 2, 40, 24, 6},
    MatUpdateCase{16, 512, 4, 88, 88, 5},  // the paper's P=16 geometry
    MatUpdateCase{5, 2048, 1, 1, 1, 1},    // degenerate 1x1
    MatUpdateCase{4, 2048, 2, 2, 64, 3}    // chunks smaller than a column
));

TEST(MatUpdate, TransposedOperandsCoverAllGemmForms)
{
    // C += op(A) * op(B) for all four transpose combinations, streamed
    // straight from the untransposed storage.
    const std::size_t m = 14, n = 11, k = 9;
    Rng rng(64);
    Matrix a(m, k), at(k, m), b(k, n), bt(n, k), c0(m, n);
    a.randomize(rng);
    b.randomize(rng);
    c0.randomize(rng);
    for (std::size_t i = 0; i < m; ++i) {
        for (std::size_t j = 0; j < k; ++j)
            at.at(j, i) = a.at(i, j);
    }
    for (std::size_t i = 0; i < k; ++i) {
        for (std::size_t j = 0; j < n; ++j)
            bt.at(j, i) = b.at(i, j);
    }
    Matrix expect = c0;
    blasref::gemm(expect, a, b);

    for (int form = 0; form < 4; ++form) {
        const bool ta = form & 1;
        const bool tb = form & 2;
        Coprocessor sys(makeConfig(3, 128, 2));
        kernels::installStandardKernels(sys);
        LinalgPlanner plan(sys);
        MatRef cr = allocMat(sys.memory(), m, n);
        storeMat(sys.memory(), cr, c0);
        MatRef ar = ta ? allocMat(sys.memory(), k, m)
                       : allocMat(sys.memory(), m, k);
        storeMat(sys.memory(), ar, ta ? at : a);
        MatRef br = tb ? allocMat(sys.memory(), n, k)
                       : allocMat(sys.memory(), k, n);
        storeMat(sys.memory(), br, tb ? bt : b);
        plan.matUpdate(cr, ar, br, false, tb, ta);
        plan.commit();
        sys.run();
        EXPECT_LT(loadMat(sys.memory(), cr).maxAbsDiff(expect), 1e-3f)
            << "ta=" << ta << " tb=" << tb;
    }
}

TEST(MatUpdate, NegateSubtracts)
{
    Rng rng(77);
    Matrix c(10, 10), a(10, 6), b(6, 10);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    Matrix expect = c;
    blasref::gemm(expect, a, b, true);
    Matrix got = runMatUpdate(makeConfig(2, 512, 2), c, a, b, true);
    EXPECT_LT(got.maxAbsDiff(expect), 1e-3f);
}

TEST(MatUpdate, EmptyProblemEmitsNothing)
{
    CoprocConfig cfg = makeConfig(2, 512, 2);
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef c = allocMat(sys.memory(), 4, 4);
    MatRef a = allocMat(sys.memory(), 4, 0);
    MatRef b = allocMat(sys.memory(), 0, 4);
    plan.matUpdate(c, a, b);
    EXPECT_TRUE(plan.pending().empty());
}

TEST(MatUpdate, OverlappedVariantMatchesReference)
{
    // Drive the overlapped-reload kernel directly on one cell: whole
    // matrix as a single chunk (f whole columns).
    const int m = 6, n = 5, k = 4;
    Rng rng(99);
    Matrix c(m, n), a(m, k), b(k, n);
    c.randomize(rng);
    a.randomize(rng);
    b.randomize(rng);
    Matrix expect = c;
    blasref::gemm(expect, a, b);

    Coprocessor sys(makeConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    MatRef cr = allocMat(sys.memory(), m, n);
    MatRef ar = allocMat(sys.memory(), m, k);
    MatRef br = allocMat(sys.memory(), k, n);
    storeMat(sys.memory(), cr, c);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), br, b);

    using host::Region;
    auto &h = sys.host();
    h.enqueue(host::callOp(1, kernels::entries::matUpdateOvlAdd,
                           {k - 1, m, n, m * n}));
    h.enqueue(host::sendOp(1, Region::mat(cr.base, m, n, m)));
    h.enqueue(host::sendOp(1, Region::vec(ar.addrOf(0, 0), m)));
    for (int kk = 0; kk < k; ++kk) {
        // C row kk then (except for the last k) the next A column.
        h.enqueue(host::sendOp(1, Region::strided(br.addrOf(kk, 0), n,
                                                  k)));
        if (kk + 1 < k) {
            h.enqueue(host::sendOp(1, Region::vec(ar.addrOf(0, kk + 1),
                                                  m)));
        }
    }
    h.enqueue(host::recvOp(0, Region::mat(cr.base, m, n, m)));
    sys.run();
    EXPECT_LT(loadMat(sys.memory(), cr).maxAbsDiff(expect), 1e-3f);
}

// ---------------------------------------------------------------------
// Triangular solves
// ---------------------------------------------------------------------

struct TrsmCase
{
    unsigned cells;
    std::size_t tf;
    std::size_t m, n;
};

class TrsmSweep : public ::testing::TestWithParam<TrsmCase>
{};

TEST_P(TrsmSweep, RightUpperMatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.m * 13 + tc.n);
    Matrix u(tc.n, tc.n);
    u.randomize(rng);
    for (std::size_t i = 0; i < tc.n; ++i) {
        for (std::size_t j = 0; j < i; ++j)
            u.at(i, j) = 0.0f;
        u.at(i, i) += 4.0f;
    }
    Matrix a(tc.m, tc.n);
    a.randomize(rng);
    Matrix expect = a;
    blasref::trsmRightUpper(expect, u);

    Coprocessor sys(makeConfig(tc.cells, tc.tf, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), tc.m, tc.n);
    MatRef ur = allocMat(sys.memory(), tc.n, tc.n);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), ur, u);
    // Precompute diagonal reciprocals (normally done by the LU leaf).
    std::size_t recips = sys.memory().alloc(tc.n);
    for (std::size_t i = 0; i < tc.n; ++i)
        sys.memory().storeF(recips + i, 1.0f / u.at(i, i));
    plan.trsmRightUpper(ar, ur, recips);
    plan.commit();
    sys.run();
    EXPECT_LT(loadMat(sys.memory(), ar).maxAbsDiff(expect), 1e-3f);
}

TEST_P(TrsmSweep, LeftUnitLowerMatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.m * 17 + tc.n);
    Matrix l(tc.n, tc.n);
    l.randomize(rng);
    for (std::size_t i = 0; i < tc.n; ++i) {
        l.at(i, i) = 1.0f;
        for (std::size_t j = i + 1; j < tc.n; ++j)
            l.at(i, j) = 0.0f;
    }
    Matrix a(tc.n, tc.m);
    a.randomize(rng);
    Matrix expect = a;
    blasref::trsmLeftUnitLower(expect, l);

    Coprocessor sys(makeConfig(tc.cells, tc.tf, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), tc.n, tc.m);
    MatRef lr = allocMat(sys.memory(), tc.n, tc.n);
    storeMat(sys.memory(), ar, a);
    storeMat(sys.memory(), lr, l);
    plan.trsmLeftUnitLower(lr, ar);
    plan.commit();
    sys.run();
    EXPECT_LT(loadMat(sys.memory(), ar).maxAbsDiff(expect), 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, TrsmSweep, ::testing::Values(
    TrsmCase{1, 2048, 6, 6},
    TrsmCase{2, 512, 10, 8},
    TrsmCase{4, 256, 16, 12},
    TrsmCase{4, 64, 9, 20},   // forces the recursive split
    TrsmCase{3, 128, 21, 11},
    TrsmCase{1, 32, 4, 12}    // tiny FIFOs, deep recursion
));

// ---------------------------------------------------------------------
// LU factorization
// ---------------------------------------------------------------------

struct LuCase
{
    unsigned cells;
    std::size_t tf;
    unsigned tau;
    std::size_t n;
};

class LuSweep : public ::testing::TestWithParam<LuCase>
{};

TEST_P(LuSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n * 3 + tc.cells);
    Matrix a(tc.n, tc.n);
    a.randomize(rng);
    a.makeDiagonallyDominant();
    Matrix expect = a;
    blasref::luFactor(expect);

    Coprocessor sys(makeConfig(tc.cells, tc.tf, tc.tau));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), tc.n, tc.n);
    storeMat(sys.memory(), ar, a);
    plan.lu(ar);
    plan.commit();
    sys.run();
    Matrix got = loadMat(sys.memory(), ar);
    EXPECT_LT(got.maxAbsDiff(expect), 2e-3f)
        << "P=" << tc.cells << " tf=" << tc.tf << " n=" << tc.n;
}

INSTANTIATE_TEST_SUITE_P(Shapes, LuSweep, ::testing::Values(
    LuCase{1, 2048, 2, 8},      // single leaf
    LuCase{1, 2048, 2, 45},     // largest single leaf at Tf=2048
    LuCase{1, 2048, 2, 46},     // just past the leaf: one recursion
    LuCase{1, 512, 4, 44},      // the paper's smallest table size
    LuCase{2, 512, 2, 30},
    LuCase{4, 512, 2, 60},
    LuCase{4, 128, 4, 37},      // deep recursion, odd size
    LuCase{16, 512, 2, 88},
    LuCase{1, 2048, 2, 1},      // degenerate
    LuCase{1, 2048, 2, 2}
));

TEST(Lu, SolvesSystemEndToEnd)
{
    const std::size_t n = 24;
    Rng rng(123);
    Matrix a(n, n);
    a.randomize(rng);
    a.makeDiagonallyDominant();
    std::vector<float> bvec(n);
    for (auto &v : bvec)
        v = rng.element();

    Coprocessor sys(makeConfig(2, 256, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), n, n);
    storeMat(sys.memory(), ar, a);
    plan.lu(ar);
    plan.commit();
    sys.run();
    Matrix f = loadMat(sys.memory(), ar);
    auto x = blasref::luSolve(f, bvec);
    EXPECT_LT(blasref::residual(a, x, bvec), 5e-3f);
}

// ---------------------------------------------------------------------
// Cholesky factorization
// ---------------------------------------------------------------------

struct CholCase
{
    unsigned cells;
    std::size_t tf;
    std::size_t n;
};

class CholSweep : public ::testing::TestWithParam<CholCase>
{};

TEST_P(CholSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n * 7 + tc.cells);
    Matrix a = blasref::randomSpd(tc.n, rng);
    Matrix expect = a;
    blasref::choleskyFactor(expect);

    Coprocessor sys(makeConfig(tc.cells, tc.tf, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), tc.n, tc.n);
    storeMat(sys.memory(), ar, a);
    plan.cholesky(ar);
    plan.commit();
    sys.run();
    Matrix got = loadMat(sys.memory(), ar);
    // Compare the lower triangle only (upper is untouched scratch).
    for (std::size_t j = 0; j < tc.n; ++j) {
        for (std::size_t i = j; i < tc.n; ++i) {
            EXPECT_NEAR(got.at(i, j), expect.at(i, j), 2e-3f)
                << i << "," << j << " P=" << tc.cells
                << " tf=" << tc.tf;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, CholSweep, ::testing::Values(
    CholCase{1, 2048, 12},   // single leaf
    CholCase{1, 2048, 63},   // largest leaf at Tf=2048
    CholCase{1, 2048, 64},   // one recursion
    CholCase{1, 512, 44},
    CholCase{4, 512, 60},
    CholCase{4, 128, 37},    // deep recursion, odd size
    CholCase{16, 512, 80},
    CholCase{1, 2048, 1},
    CholCase{2, 2048, 2}
));

TEST(Cholesky, ReconstructsViaLLT)
{
    const std::size_t n = 32;
    Rng rng(9);
    Matrix a = blasref::randomSpd(n, rng);

    Coprocessor sys(makeConfig(2, 256, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    MatRef ar = allocMat(sys.memory(), n, n);
    storeMat(sys.memory(), ar, a);
    plan.cholesky(ar);
    EXPECT_GT(plan.stats().cholLeaves, 1u);
    plan.commit();
    sys.run();
    Matrix f = loadMat(sys.memory(), ar);

    // L * L^T must reproduce A.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k <= j; ++k)
                acc += double(f.at(i, k)) * double(f.at(j, k));
            EXPECT_NEAR(float(acc), a.at(i, j), 5e-3f) << i << "," << j;
        }
    }
}

TEST(Lu, PlanStatsCountLeaves)
{
    Coprocessor sys(makeConfig(1, 512, 2));
    kernels::installStandardKernels(sys);
    LinalgPlanner plan(sys);
    EXPECT_EQ(plan.luLeafMax(), 22u);
    MatRef ar = allocMat(sys.memory(), 44, 44);
    plan.lu(ar);
    // 44 splits into two 22-leaves.
    EXPECT_EQ(plan.stats().luLeaves, 2u);
    EXPECT_EQ(plan.stats().recipOps, 44u);
    EXPECT_GT(plan.stats().trsmLeaves, 0u);
}
