/**
 * @file
 * Tests for the cycle-driven engine: ordering, completion, watchdog.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "sim/engine.hh"

using namespace opac;
using namespace opac::sim;

namespace
{

/** Counts down a fixed number of cycles of "work". */
class CountdownComponent : public Component
{
  public:
    CountdownComponent(std::string name, int work)
        : Component(std::move(name)), remaining(work)
    {}

    void
    tick(Engine &engine) override
    {
        if (remaining > 0) {
            --remaining;
            engine.noteProgress();
            lastTick = engine.now();
        }
    }

    bool done() const override { return remaining == 0; }

    std::string
    statusLine() const override
    {
        return strfmt("remaining=%d", remaining);
    }

    int remaining;
    Cycle lastTick = 0;
};

/** Never finishes and never reports progress: a deadlock. */
class StuckComponent : public Component
{
  public:
    StuckComponent() : Component("stuck") {}
    void tick(Engine &) override {}
    bool done() const override { return false; }
};

} // anonymous namespace

TEST(Engine, RunsUntilAllDone)
{
    Engine e;
    CountdownComponent a("a", 5);
    CountdownComponent b("b", 9);
    e.add(&a);
    e.add(&b);
    Cycle cycles = e.run();
    EXPECT_EQ(cycles, 9u);
    EXPECT_TRUE(a.done());
    EXPECT_TRUE(b.done());
    EXPECT_TRUE(e.allDone());
}

TEST(Engine, NowAdvancesWithCycles)
{
    Engine e;
    CountdownComponent a("a", 3);
    e.add(&a);
    e.run();
    EXPECT_EQ(e.now(), 3u);
    EXPECT_EQ(a.lastTick, 2u); // last productive tick at cycle 2
}

TEST(Engine, SecondRunContinuesClock)
{
    Engine e;
    CountdownComponent a("a", 2);
    e.add(&a);
    e.run();
    a.remaining = 3;
    Cycle more = e.run();
    EXPECT_EQ(more, 3u);
    EXPECT_EQ(e.now(), 5u);
}

TEST(Engine, WatchdogDetectsDeadlock)
{
    Engine e(50);
    StuckComponent s;
    e.add(&s);
    try {
        e.run();
        FAIL() << "expected watchdog to fire";
    } catch (const std::runtime_error &err) {
        EXPECT_NE(std::string(err.what()).find("deadlock"),
                  std::string::npos);
        EXPECT_NE(std::string(err.what()).find("stuck"),
                  std::string::npos);
    }
}

TEST(Engine, MaxCyclesBoundsRun)
{
    Engine e;
    CountdownComponent a("a", 1000);
    e.add(&a);
    EXPECT_THROW(e.run(10), std::runtime_error);
}

TEST(Engine, EmptyEngineIsDone)
{
    Engine e;
    EXPECT_EQ(e.run(), 0u);
}

TEST(Engine, StatusDumpListsComponents)
{
    Engine e;
    CountdownComponent a("alpha", 2);
    e.add(&a);
    std::string dump = e.statusDump();
    EXPECT_NE(dump.find("alpha"), std::string::npos);
    EXPECT_NE(dump.find("remaining=2"), std::string::npos);
}
