/**
 * @file
 * Tests for the trace & telemetry subsystem: event ordering, FIFO
 * depth accounting (push / pop / recirculate / reset), Chrome
 * trace-event well-formedness (parsed back with the bundled JSON
 * parser), aggregator arithmetic on a hand-built stream, CSV
 * round-tripping, and the deadlock watchdog's trace-backed abort
 * report.
 */

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "coproc/coprocessor.hh"
#include "fifo/timed_fifo.hh"
#include "host/host.hh"
#include "kernels/kernel_set.hh"
#include "planner/signal_plan.hh"
#include "trace/aggregate.hh"
#include "trace/json.hh"
#include "trace/sinks.hh"
#include "trace/trace.hh"

using namespace opac;
using namespace opac::trace;
using opac::planner::SignalPlanner;
using opac::planner::allocMat;
using opac::planner::MatRef;

namespace
{

copro::CoprocConfig
smallConfig(unsigned cells = 1, std::size_t tf = 256, unsigned tau = 2)
{
    copro::CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.host.tau = tau;
    return cfg;
}

/** Run a tiny gemv with @p sink attached; returns final cycle. */
Cycle
runTracedGemv(Tracer &tracer)
{
    copro::Coprocessor sys(smallConfig());
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    const std::size_t m = 8, n = 8;
    MatRef a = allocMat(sys.memory(), m, n);
    std::size_t x = sys.memory().alloc(n);
    std::size_t y = sys.memory().alloc(m);
    plan.gemv(a, x, y);
    plan.commit();
    sys.attachTracer(&tracer);
    sys.run();
    Cycle end = sys.engine().now();
    tracer.finish(end);
    return end;
}

} // anonymous namespace

// ---------------------------------------------------------------------
// Tracer basics and event ordering
// ---------------------------------------------------------------------

TEST(Tracer, InternsNamesOnce)
{
    Tracer t;
    std::uint16_t a = t.internComponent("cell0");
    std::uint16_t b = t.internComponent("host");
    EXPECT_NE(a, 0);       // id 0 is the reserved unnamed slot
    EXPECT_NE(a, b);
    EXPECT_EQ(t.internComponent("cell0"), a);
    EXPECT_EQ(t.componentName(a), "cell0");

    std::uint16_t q = t.internTrack(a, "tpx");
    EXPECT_EQ(t.internTrack(a, "tpx"), q);
    EXPECT_EQ(t.trackName(q), "tpx");
    EXPECT_EQ(t.trackComponent(q), a);
    // The same track name under another component is a distinct track.
    EXPECT_NE(t.internTrack(b, "tpx"), q);
}

TEST(Tracer, EventsArriveInNondecreasingCycleOrder)
{
    Tracer tracer;
    VectorSink sink;
    tracer.addSink(&sink);
    Cycle end = runTracedGemv(tracer);

    ASSERT_FALSE(sink.events.empty());
    EXPECT_EQ(tracer.eventCount(), sink.events.size());
    for (std::size_t i = 1; i < sink.events.size(); ++i)
        EXPECT_LE(sink.events[i - 1].cycle, sink.events[i].cycle)
            << "event " << i << " went backwards";
    EXPECT_LT(sink.events.back().cycle, end);

    // The run must contain the structural markers: one kernel call
    // begin/end pair per call, at least one issue and one retire.
    auto count = [&](EventKind k) {
        std::size_t n = 0;
        for (const Event &e : sink.events)
            if (e.kind == k)
                ++n;
        return n;
    };
    EXPECT_GT(count(EventKind::CallBegin), 0u);
    EXPECT_EQ(count(EventKind::CallBegin), count(EventKind::CallEnd));
    EXPECT_GT(count(EventKind::Issue), 0u);
    EXPECT_GT(count(EventKind::Retire), 0u);
    EXPECT_GT(count(EventKind::BusBegin), 0u);
    EXPECT_EQ(count(EventKind::BusBegin), count(EventKind::BusEnd));
}

// ---------------------------------------------------------------------
// FIFO depth accounting
// ---------------------------------------------------------------------

TEST(FifoTracing, DepthAccountsAcrossPushPopRecirculate)
{
    Tracer tracer;
    VectorSink sink;
    tracer.addSink(&sink);
    std::uint16_t comp = tracer.internComponent("cellX");

    TimedFifo f("q", 4, 1);
    f.attachTracer(&tracer, comp);

    f.push(10, 0);
    f.push(11, 0);
    EXPECT_EQ(f.pop(1), 10u);
    // Recirculate: front comes out and goes to the back in one cycle.
    EXPECT_EQ(f.recirculate(1), 11u);
    EXPECT_EQ(f.size(), 1u);
    // The recirculated word obeys fall-through latency again.
    EXPECT_FALSE(f.canPop(1));
    EXPECT_TRUE(f.canPop(2));
    f.reserve();
    f.pushReserved(12, 1);
    f.reset(2);
    EXPECT_EQ(f.size(), 0u);

    ASSERT_EQ(sink.events.size(), 6u);
    const auto &ev = sink.events;

    EXPECT_EQ(ev[0].kind, EventKind::FifoPush);
    EXPECT_EQ(ev[0].arg, 0);      // plain push
    EXPECT_EQ(ev[0].a, 1u);       // depth after
    EXPECT_EQ(ev[0].b, 10u);

    EXPECT_EQ(ev[1].kind, EventKind::FifoPush);
    EXPECT_EQ(ev[1].a, 2u);

    EXPECT_EQ(ev[2].kind, EventKind::FifoPop);
    EXPECT_EQ(ev[2].a, 1u);       // depth after the pop
    EXPECT_EQ(ev[2].b, 10u);

    EXPECT_EQ(ev[3].kind, EventKind::FifoRecirc);
    EXPECT_EQ(ev[3].a, 1u);       // depth unchanged
    EXPECT_EQ(ev[3].b, 11u);

    EXPECT_EQ(ev[4].kind, EventKind::FifoPush);
    EXPECT_EQ(ev[4].arg, 1);      // reserved-slot push
    EXPECT_EQ(ev[4].a, 2u);
    EXPECT_EQ(ev[4].b, 12u);

    EXPECT_EQ(ev[5].kind, EventKind::FifoReset);
    EXPECT_EQ(ev[5].a, 2u);       // words discarded
    EXPECT_EQ(ev[5].cycle, 2u);

    // All six share the component and the interned "q" track.
    for (const Event &e : ev) {
        EXPECT_EQ(e.comp, comp);
        EXPECT_EQ(tracer.trackName(e.track), "q");
    }

    // Counter totals treat a recirculation as one pop + one push, so
    // existing stats stay consistent with the pre-trace behaviour.
    EXPECT_EQ(f.totalPushes(), 4u);
    EXPECT_EQ(f.totalPops(), 2u);
}

// ---------------------------------------------------------------------
// Chrome trace-event output
// ---------------------------------------------------------------------

TEST(ChromeTrace, OutputParsesBackAndBalances)
{
    Tracer tracer;
    std::ostringstream out;
    ChromeTraceSink chrome(out);
    tracer.addSink(&chrome);
    runTracedGemv(tracer);

    json::Value doc;
    std::string err;
    ASSERT_TRUE(json::parse(out.str(), doc, &err)) << err;
    ASSERT_TRUE(doc.isObject());

    const json::Value *events = doc.find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    EXPECT_GT(events->array.size(), 10u);

    // Duration slices must balance per process, and every record needs
    // the mandatory fields.
    std::map<int, int> depth;
    bool sawProcessName = false;
    for (const auto &e : events->array) {
        const json::Value *ph = e.find("ph");
        const json::Value *pid = e.find("pid");
        ASSERT_NE(ph, nullptr);
        ASSERT_TRUE(ph->isString());
        ASSERT_NE(pid, nullptr);
        int p = int(pid->number);
        if (ph->str == "B") {
            ++depth[p];
        } else if (ph->str == "E") {
            --depth[p];
            EXPECT_GE(depth[p], 0);
        } else if (ph->str == "M") {
            const json::Value *name = e.find("name");
            if (name && name->str == "process_name")
                sawProcessName = true;
        } else if (ph->str == "C" || ph->str == "i") {
            const json::Value *ts = e.find("ts");
            ASSERT_NE(ts, nullptr);
            EXPECT_TRUE(ts->isNumber());
        }
    }
    for (const auto &[p, d] : depth)
        EXPECT_EQ(d, 0) << "unbalanced B/E slices for pid " << p;
    EXPECT_TRUE(sawProcessName);
}

// ---------------------------------------------------------------------
// Aggregator arithmetic on a hand-built stream
// ---------------------------------------------------------------------

TEST(Aggregator, UtilizationAndOccupancyMath)
{
    Tracer tracer;
    Aggregate agg;
    tracer.addSink(&agg);
    std::uint16_t cell = tracer.internComponent("c");
    std::uint16_t hostc = tracer.internComponent("h");
    std::uint16_t q = tracer.internTrack(cell, "q");

    // 4 multiply-add issues in an 8-cycle run: occupancy 0.5.
    for (Cycle t = 0; t < 4; ++t)
        tracer.emit(2 * t, EventKind::Issue,
                    std::uint8_t(OpClass::Fma), cell, 0, t, 3);
    // One control issue: counts toward utilization, not MA/cycle.
    tracer.emit(1, EventKind::Issue, std::uint8_t(OpClass::Control),
                cell, 0, 9, 0);
    // Two stalls waiting on an operand queue.
    tracer.emit(3, EventKind::Stall, std::uint8_t(StallWhy::SrcEmpty),
                cell, 0, 5, 0);
    tracer.emit(4, EventKind::Stall, std::uint8_t(StallWhy::SrcEmpty),
                cell, 0, 5, 0);
    // Host moves 3 words at 2 bus cycles each: occupancy 6/8.
    for (Cycle t = 0; t < 3; ++t)
        tracer.emit(t, EventKind::BusWord, 0, hostc, 0, t, 2);
    // FIFO depth samples: pushes to depths 1, 2, 3, pop back to 2.
    tracer.emit(0, EventKind::FifoPush, 0, cell, q, 1, 100);
    tracer.emit(1, EventKind::FifoPush, 0, cell, q, 2, 101);
    tracer.emit(2, EventKind::FifoPush, 0, cell, q, 3, 102);
    tracer.emit(3, EventKind::FifoPop, 0, cell, q, 2, 100);
    tracer.finish(8);

    EXPECT_EQ(agg.span(), 8u);
    EXPECT_DOUBLE_EQ(agg.maPerCycle("c"), 0.5);
    EXPECT_DOUBLE_EQ(agg.totalMaPerCycle(), 0.5);
    EXPECT_DOUBLE_EQ(agg.utilization("c"), 5.0 / 8.0);
    EXPECT_DOUBLE_EQ(agg.busOccupancy("h"), 0.75);

    const auto &cs = agg.components().at("c");
    EXPECT_EQ(cs.issuedByClass[std::size_t(OpClass::Fma)], 4u);
    EXPECT_EQ(cs.issuedByClass[std::size_t(OpClass::Control)], 1u);
    EXPECT_EQ(cs.stallsByWhy[std::size_t(StallWhy::SrcEmpty)], 2u);

    const auto &hs = agg.components().at("h");
    EXPECT_EQ(hs.busWordsMoved, 3u);
    EXPECT_EQ(hs.busBusyCycles, 6u);

    const auto &fs = agg.fifos().at("c.q");
    EXPECT_EQ(fs.pushes, 3u);
    EXPECT_EQ(fs.pops, 1u);
    EXPECT_EQ(fs.maxDepth, 3u);
    EXPECT_EQ(fs.depthSamples, 4u);
    EXPECT_DOUBLE_EQ(fs.meanDepth(), (1 + 2 + 3 + 2) / 4.0);
    // Bucket 0 = depth 0, bucket i = [2^(i-1), 2^i): depths 1 -> b1,
    // {2, 3, 2} -> b2.
    ASSERT_GE(fs.buckets.size(), 3u);
    EXPECT_EQ(fs.buckets[0], 0u);
    EXPECT_EQ(fs.buckets[1], 1u);
    EXPECT_EQ(fs.buckets[2], 3u);

    // The rendered report mentions every table and component.
    std::string rep = agg.report();
    EXPECT_NE(rep.find("component utilization"), std::string::npos);
    EXPECT_NE(rep.find("c.q"), std::string::npos);
    EXPECT_NE(rep.find("stall causes"), std::string::npos);
}

TEST(Aggregator, MeasuredOccupancyMatchesCounters)
{
    // On a real run, the aggregator's MA count must equal the cell's
    // own fma counter (the trace sees every issue), and the bus words
    // must match the host counters.
    Tracer tracer;
    Aggregate agg;
    tracer.addSink(&agg);

    copro::Coprocessor sys(smallConfig());
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    const std::size_t m = 8, n = 8;
    MatRef a = allocMat(sys.memory(), m, n);
    std::size_t x = sys.memory().alloc(n);
    std::size_t y = sys.memory().alloc(m);
    plan.gemv(a, x, y);
    plan.commit();
    sys.attachTracer(&tracer);
    Cycle cycles = sys.run();
    tracer.finish(sys.engine().now());

    const auto &cs = agg.components().at("cell0");
    EXPECT_EQ(cs.issuedByClass[std::size_t(OpClass::Fma)],
              sys.cell(0).fmaOps());
    EXPECT_DOUBLE_EQ(agg.maPerCycle("cell0"),
                     double(sys.cell(0).fmaOps()) / double(cycles));
    // Every word on the bus is traced: data words plus call words.
    const auto &hs = agg.components().at("host");
    EXPECT_EQ(hs.busWordsMoved,
              sys.host().wordsSent() + sys.host().wordsReceived()
                  + sys.host().callWordsSent());
}

// ---------------------------------------------------------------------
// CSV round-trip
// ---------------------------------------------------------------------

TEST(CsvTrace, RoundTripsLosslessly)
{
    Tracer tracer;
    std::ostringstream csv;
    CsvSink sink(csv);
    VectorSink keep;
    tracer.addSink(&sink);
    tracer.addSink(&keep);
    runTracedGemv(tracer);

    Tracer replay;
    VectorSink got;
    replay.addSink(&got);
    std::istringstream in(csv.str());
    std::string err;
    ASSERT_TRUE(readCsv(in, replay, &err)) << err;

    ASSERT_EQ(got.events.size(), keep.events.size());
    for (std::size_t i = 0; i < keep.events.size(); ++i) {
        const Event &want = keep.events[i];
        const Event &have = got.events[i];
        EXPECT_EQ(have.cycle, want.cycle);
        EXPECT_EQ(have.kind, want.kind);
        EXPECT_EQ(have.arg, want.arg);
        EXPECT_EQ(have.a, want.a);
        EXPECT_EQ(have.b, want.b);
        // Ids may differ between the two intern tables; names must not.
        EXPECT_EQ(replay.componentName(have.comp),
                  tracer.componentName(want.comp));
        EXPECT_EQ(replay.trackName(have.track),
                  tracer.trackName(want.track));
    }
}

// ---------------------------------------------------------------------
// Deadlock watchdog report
// ---------------------------------------------------------------------

TEST(Watchdog, DeadlockReportNamesBothBlockedComponents)
{
    // Provoke a genuine host/cell FIFO deadlock: the host streams 100
    // words at an idle cell whose tpx holds only 4, and no kernel ever
    // drains them. The watchdog must fire and its report must show the
    // status and the recent trace events of both the blocked host and
    // the full cell.
    copro::CoprocConfig cfg = smallConfig();
    cfg.cell.interfaceDepth = 4;
    cfg.watchdogCycles = 200;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    Tracer tracer;
    sys.attachTracer(&tracer);
    sys.host().enqueue(
        host::sendOp(0x1, host::Region::vec(0, 100)));

    try {
        sys.run();
        FAIL() << "expected the deadlock watchdog to fire";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
        EXPECT_NE(msg.find("host"), std::string::npos) << msg;
        EXPECT_NE(msg.find("cell0"), std::string::npos) << msg;
        EXPECT_NE(msg.find("recent trace events of host"),
                  std::string::npos)
            << msg;
        EXPECT_NE(msg.find("recent trace events of cell0"),
                  std::string::npos)
            << msg;
        // The cell's ring must end on the tpx pushes that filled it,
        // and the host's on full-queue stalls.
        EXPECT_NE(msg.find("tpx"), std::string::npos) << msg;
        EXPECT_NE(msg.find("bus-full"), std::string::npos) << msg;
    }
}

TEST(Watchdog, ReportOmitsTraceSectionWhenDetached)
{
    copro::CoprocConfig cfg = smallConfig();
    cfg.cell.interfaceDepth = 4;
    cfg.watchdogCycles = 200;
    copro::Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    sys.host().enqueue(
        host::sendOp(0x1, host::Region::vec(0, 100)));

    try {
        sys.run();
        FAIL() << "expected the deadlock watchdog to fire";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
        EXPECT_EQ(msg.find("recent trace events"), std::string::npos)
            << msg;
    }
}
