/**
 * @file
 * Tests for the Warp-style linear-array baseline and the section-4
 * analytic models.
 */

#include <gtest/gtest.h>

#include "analytic/models.hh"
#include "baseline/warp.hh"
#include "blasref/blas3.hh"

using namespace opac;
using namespace opac::baseline;
using blasref::Matrix;

namespace
{

/** Run a stream of tiles through a warp array; return results. */
std::vector<Matrix>
runWarpStream(unsigned cells, std::size_t n, std::size_t k,
              std::size_t tiles, const std::vector<Matrix> &cs,
              const std::vector<Matrix> &as,
              const std::vector<Matrix> &bs, Cycle *cycles = nullptr)
{
    WarpConfig cfg;
    cfg.cells = cells;
    cfg.cell.tpiDepth = 256;
    WarpArray warp(cfg);
    warp.loadMicrocode(warpMatUpdateEntry, buildWarpMatUpdate(), 5);

    auto &mem = warp.memory();
    std::size_t c_base = mem.alloc(tiles * n * n);
    std::size_t a_base = mem.alloc(tiles * n * k);
    std::size_t b_base = mem.alloc(tiles * n * k);
    for (std::size_t t = 0; t < tiles; ++t) {
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
                mem.storeF(c_base + t * n * n + j * n + i,
                           cs[t].at(i, j));
            }
        }
        for (std::size_t j = 0; j < k; ++j) {
            for (std::size_t i = 0; i < n; ++i) {
                mem.storeF(a_base + t * n * k + j * n + i,
                           as[t].at(i, j));
            }
        }
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t i = 0; i < k; ++i) {
                mem.storeF(b_base + t * n * k + j * k + i,
                           bs[t].at(i, j));
            }
        }
    }
    planWarpMatUpdateStream(warp, n, k, tiles, c_base, a_base, b_base);
    Cycle c = warp.run();
    if (cycles)
        *cycles = c;

    std::vector<Matrix> out;
    for (std::size_t t = 0; t < tiles; ++t) {
        Matrix m(n, n);
        for (std::size_t j = 0; j < n; ++j) {
            for (std::size_t i = 0; i < n; ++i)
                m.at(i, j) = mem.loadF(c_base + t * n * n + j * n + i);
        }
        out.push_back(std::move(m));
    }
    return out;
}

} // anonymous namespace

struct WarpCase
{
    unsigned cells;
    std::size_t n, k, tiles;
};

class WarpSweep : public ::testing::TestWithParam<WarpCase>
{};

TEST_P(WarpSweep, StreamMatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n + tc.k * 11 + tc.cells);
    std::vector<Matrix> cs, as, bs, expect;
    for (std::size_t t = 0; t < tc.tiles; ++t) {
        Matrix c(tc.n, tc.n), a(tc.n, tc.k), b(tc.k, tc.n);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        Matrix e = c;
        blasref::gemm(e, a, b);
        cs.push_back(c);
        as.push_back(a);
        bs.push_back(b);
        expect.push_back(e);
    }
    auto got = runWarpStream(tc.cells, tc.n, tc.k, tc.tiles, cs, as,
                             bs);
    for (std::size_t t = 0; t < tc.tiles; ++t) {
        EXPECT_LT(got[t].maxAbsDiff(expect[t]), 1e-3f)
            << "tile " << t << " P=" << tc.cells;
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, WarpSweep, ::testing::Values(
    WarpCase{1, 6, 4, 2},
    WarpCase{2, 8, 6, 3},
    WarpCase{4, 8, 16, 6},
    WarpCase{4, 8, 3, 5},   // fewer k than cells: some cells idle
    WarpCase{8, 10, 24, 10},
    WarpCase{3, 12, 7, 1}   // single tile: pipeline never fills
));

TEST(Warp, PipelineBeatsSingleCellOnTileStream)
{
    const std::size_t n = 12, k = 24, tiles = 12;
    Rng rng(5);
    std::vector<Matrix> cs, as, bs;
    for (std::size_t t = 0; t < tiles; ++t) {
        Matrix c(n, n), a(n, k), b(k, n);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        cs.push_back(c);
        as.push_back(a);
        bs.push_back(b);
    }
    Cycle one = 0, four = 0;
    runWarpStream(1, n, k, tiles, cs, as, bs, &one);
    runWarpStream(4, n, k, tiles, cs, as, bs, &four);
    EXPECT_LT(four, one); // the chain must give real speedup
}

TEST(Warp, RejectsTileLargerThanCell)
{
    WarpConfig cfg;
    cfg.cells = 2;
    cfg.cell.tf = 64;
    WarpArray warp(cfg);
    warp.loadMicrocode(warpMatUpdateEntry, buildWarpMatUpdate(), 5);
    EXPECT_THROW(planWarpMatUpdateStream(warp, 10, 4, 1, 0, 0, 0),
                 std::logic_error);
}

// ---------------------------------------------------------------------
// Analytic models (section 4)
// ---------------------------------------------------------------------

TEST(Analytic, Table42aFirstGenerationRisc)
{
    // tau = 4: N = 16P, LM = N^2/P (paper table 4.2a).
    const std::size_t expect_n[] = {16, 32, 64, 128, 256};
    const std::size_t expect_lm[] = {256, 512, 1024, 2048, 4096};
    unsigned p = 1;
    for (int i = 0; i < 5; ++i, p *= 2) {
        auto r = analytic::matUpdateRequirement(4, p);
        EXPECT_EQ(r.minN, expect_n[i]) << "P=" << p;
        EXPECT_EQ(r.words, expect_lm[i]) << "P=" << p;
    }
}

TEST(Analytic, Table42bSuperscalar)
{
    // tau = 2: N = 8P, LM = 64P (paper table 4.2b).
    const std::size_t expect_n[] = {8, 16, 32, 64, 128};
    const std::size_t expect_lm[] = {64, 128, 256, 512, 1024};
    unsigned p = 1;
    for (int i = 0; i < 5; ++i, p *= 2) {
        auto r = analytic::matUpdateRequirement(2, p);
        EXPECT_EQ(r.minN, expect_n[i]) << "P=" << p;
        EXPECT_EQ(r.words, expect_lm[i]) << "P=" << p;
    }
}

TEST(Analytic, PaperTileSizes)
{
    // Section 6.1: P=16, Tf=512 gives N=88 (88^2/16 = 484 <= 512).
    EXPECT_EQ(analytic::paperTileN(16, 512), 88u);
    // P=1, Tf=2048: N=45.
    EXPECT_EQ(analytic::paperTileN(1, 2048), 45u);
    // P=1, Tf=512: N=22.
    EXPECT_EQ(analytic::paperTileN(1, 512), 22u);
    // P=16, Tf=2048: N^2 multiple of 16, N^2 <= 32768: N=180.
    EXPECT_EQ(analytic::paperTileN(16, 2048), 180u);
}

TEST(Analytic, MatUpdateBandwidthBoundPaperCase)
{
    // The paper's quantitative anchor: tau=4, Tf=512, P=16, N=88: 704
    // cycles to feed one iteration that yields 484 multiply-adds per
    // cell. Asymptotically: 16 * 484/704 = 11.
    double bound = analytic::matUpdateAsymptoticBound(16, 4, 88);
    EXPECT_NEAR(bound, 11.0, 0.01);
    // tau=2 doubles the ceiling and saturates at P.
    EXPECT_NEAR(analytic::matUpdateAsymptoticBound(16, 2, 88), 16.0,
                0.01);
}

TEST(Analytic, ConvBandwidthBoundPaperCase)
{
    // Section 6.2's accounting: 16 cells, 64-column blocks, 5x5, tau=4
    // gives the paper 2.94 useful MA/cycle (their centered blocks carry
    // a (q-1)-column frontier on *each* side: 72-wide reads). Our
    // anchored correlation needs only a one-sided q-1 halo (68-wide
    // reads), so the same formula yields a slightly higher ceiling:
    // 16*1600 / (4 * (16*68 + 1024)) = 3.03.
    double b4 = analytic::convBandwidthBound(16, 4, 1024, 64, 5, 5);
    EXPECT_NEAR(b4, 3.03, 0.01);
    double b2 = analytic::convBandwidthBound(16, 2, 1024, 64, 5, 5);
    EXPECT_NEAR(b2, 6.06, 0.01);
}

TEST(Analytic, LuWork)
{
    // n=2: step 1: 1 + 1; step 2: 0.
    EXPECT_DOUBLE_EQ(analytic::luMultiplyAdds(2), 2.0);
    // Asymptotically n^3/3.
    double w = analytic::luMultiplyAdds(300);
    EXPECT_NEAR(w / (300.0 * 300 * 300 / 3.0), 1.0, 0.02);
}

TEST(Analytic, ScalarBaselineRespectsBothLimits)
{
    // Compute-bound when cache is large.
    double c1 = analytic::scalarGemmCycles(64, 64, 64, 4, 1.0,
                                           1 << 20);
    EXPECT_NEAR(c1, 64.0 * 64 * 64, 64.0 * 64 * 64 * 0.5);
    // Memory-bound when cache is tiny.
    double c2 = analytic::scalarGemmCycles(64, 64, 64, 4, 1.0, 3);
    EXPECT_GT(c2, 2.0 * 64 * 64 * 64);
}
