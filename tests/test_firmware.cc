/**
 * @file
 * Tests for firmware images: round-trip fidelity, corruption
 * rejection, and functional equivalence of a firmware-booted
 * coprocessor with a directly-loaded one.
 */

#include <gtest/gtest.h>

#include "blasref/blas3.hh"
#include "common/error.hh"
#include "isa/disasm.hh"
#include "kernels/firmware.hh"
#include "kernels/lu_leaf.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"

using namespace opac;
using namespace opac::kernels;
using namespace opac::planner;

TEST(Firmware, RoundTripsStandardSet)
{
    auto image = standardFirmware();
    auto set = unpackFirmware(image);
    EXPECT_EQ(set.size(), 13u);
    // Spot-check one kernel survives textually identical.
    bool found = false;
    for (const auto &fe : set) {
        if (fe.prog.name() == "lu_leaf") {
            found = true;
            EXPECT_EQ(isa::disasm(fe.prog),
                      isa::disasm(buildLuLeaf()));
            EXPECT_EQ(fe.nparams, luLeafParams);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Firmware, RejectsCorruption)
{
    auto image = standardFirmware();
    // Bad magic.
    auto bad = image;
    bad[0] ^= 1;
    EXPECT_THROW(unpackFirmware(bad), MicrocodeError);
    // Truncation.
    auto trunc = image;
    trunc.resize(trunc.size() - 3);
    EXPECT_THROW(unpackFirmware(trunc), MicrocodeError);
    // Trailing garbage.
    auto extra = image;
    extra.push_back(0);
    EXPECT_THROW(unpackFirmware(extra), MicrocodeError);
}

TEST(Firmware, BootedCoprocessorMatchesDirectLoad)
{
    auto run_gemm = [&](bool via_firmware) {
        copro::CoprocConfig cfg;
        cfg.cells = 2;
        cfg.cell.tf = 256;
        copro::Coprocessor sys(cfg);
        if (via_firmware)
            installFirmware(sys, standardFirmware());
        else
            installStandardKernels(sys);
        LinalgPlanner plan(sys);
        Rng rng(4);
        blasref::Matrix c(12, 12), a(12, 8), b(8, 12);
        c.randomize(rng);
        a.randomize(rng);
        b.randomize(rng);
        MatRef cr = allocMat(sys.memory(), 12, 12);
        MatRef ar = allocMat(sys.memory(), 12, 8);
        MatRef br = allocMat(sys.memory(), 8, 12);
        storeMat(sys.memory(), cr, c);
        storeMat(sys.memory(), ar, a);
        storeMat(sys.memory(), br, b);
        plan.matUpdate(cr, ar, br);
        plan.commit();
        Cycle cycles = sys.run();
        return std::pair<Cycle, blasref::Matrix>(
            cycles, loadMat(sys.memory(), cr));
    };
    auto direct = run_gemm(false);
    auto booted = run_gemm(true);
    EXPECT_EQ(direct.first, booted.first); // identical timing
    EXPECT_LT(direct.second.maxAbsDiff(booted.second), 1e-7f);
}

TEST(Firmware, ImageIsCompact)
{
    // The paper's argument: implicit FIFO addressing keeps microcode
    // small. The entire 13-kernel library fits a few KB.
    auto image = standardFirmware();
    EXPECT_LT(image.size() * 4, 40000u); // < 40 KB
}
