/**
 * @file
 * End-to-end tests of the signal kernels — 2-D convolution, 1-D
 * correlation, FFT — against the reference implementations.
 */

#include <gtest/gtest.h>

#include <complex>

#include "blasref/signal.hh"
#include "kernels/fft.hh"
#include "kernels/kernel_set.hh"
#include "planner/signal_plan.hh"

using namespace opac;
using namespace opac::planner;
using blasref::Matrix;
using copro::CoprocConfig;
using copro::Coprocessor;

namespace
{

CoprocConfig
makeConfig(unsigned cells, std::size_t tf, unsigned tau)
{
    CoprocConfig cfg;
    cfg.cells = cells;
    cfg.cell.tf = tf;
    cfg.cell.interfaceDepth = std::max<std::size_t>(tf, 2048);
    cfg.host.tau = tau;
    cfg.watchdogCycles = 500000;
    return cfg;
}

/**
 * Store the transposed, padded image: (M + q - 1) x (N + p)
 * column-major, column r = padded input row r.
 */
MatRef
storeImageT(host::HostMemory &mem, const Matrix &img, unsigned p,
            unsigned q)
{
    MatRef ref = allocMat(mem, img.cols() + q - 1, img.rows() + p);
    for (std::size_t r = 0; r < ref.cols; ++r) {
        for (std::size_t c = 0; c < ref.rows; ++c) {
            float v = 0.0f;
            if (r < img.rows() && c < img.cols())
                v = img.at(r, c);
            mem.storeF(ref.addrOf(c, r), v);
        }
    }
    return ref;
}

Matrix
runConv(const CoprocConfig &cfg, const Matrix &img, const Matrix &w)
{
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    const unsigned p = unsigned(w.rows());
    const unsigned q = unsigned(w.cols());
    MatRef image_t = storeImageT(sys.memory(), img, p, q);
    MatRef wr = allocMat(sys.memory(), p, q);
    storeMat(sys.memory(), wr, w);
    MatRef out_t = allocMat(sys.memory(), img.cols(), img.rows());
    plan.conv2d(image_t, wr, out_t, img.rows(), img.cols());
    plan.commit();
    sys.run();
    // Transpose back.
    Matrix out(img.rows(), img.cols());
    for (std::size_t r = 0; r < img.rows(); ++r) {
        for (std::size_t c = 0; c < img.cols(); ++c)
            out.at(r, c) = sys.memory().loadF(out_t.addrOf(c, r));
    }
    return out;
}

} // anonymous namespace

struct ConvCase
{
    unsigned cells;
    std::size_t tf;
    std::size_t n, m;
    unsigned p, q;
};

class ConvSweep : public ::testing::TestWithParam<ConvCase>
{};

TEST_P(ConvSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n * 5 + tc.m + tc.p);
    Matrix img(tc.n, tc.m);
    img.randomize(rng);
    Matrix w(tc.p, tc.q);
    w.randomize(rng);
    Matrix expect = blasref::xcorr2d(img, w);
    Matrix got = runConv(makeConfig(tc.cells, tc.tf, 2), img, w);
    EXPECT_LT(got.maxAbsDiff(expect), 1e-4f)
        << "P=" << tc.cells << " tf=" << tc.tf << " img=" << tc.n << "x"
        << tc.m << " w=" << tc.p << "x" << tc.q;
}

INSTANTIATE_TEST_SUITE_P(Shapes, ConvSweep, ::testing::Values(
    ConvCase{1, 2048, 8, 8, 3, 3},
    ConvCase{1, 2048, 12, 16, 5, 5},
    ConvCase{1, 128, 10, 40, 3, 3},   // forces column blocking
    ConvCase{4, 128, 9, 50, 3, 3},    // blocks across cells
    ConvCase{2, 2048, 6, 6, 1, 1},    // degenerate 1x1 kernel
    ConvCase{1, 2048, 7, 9, 1, 4},    // single-row kernel
    ConvCase{1, 2048, 9, 7, 4, 1},    // single-column kernel
    ConvCase{3, 256, 16, 33, 5, 5},   // ragged last block
    ConvCase{2, 2048, 2, 5, 2, 2}     // image smaller than warm-up
));

TEST(Conv, IssueCountMatchesTheFrontierFormula)
{
    // Per row iteration the cell issues exactly p*q*Wi datapath ops
    // (the fig. 6 frontier overhead made concrete), plus the loads,
    // drains and weight setup.
    const std::size_t n = 10, m = 20;
    const unsigned p = 3, q = 3;
    Coprocessor sys(makeConfig(1, 2048, 1));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    MatRef image_t = allocMat(sys.memory(), m + q - 1, n + p);
    MatRef w = allocMat(sys.memory(), p, q);
    MatRef out_t = allocMat(sys.memory(), m, n);
    auto geom = plan.conv2d(image_t, w, out_t, n, m);
    plan.commit();
    sys.run();
    ASSERT_EQ(geom.blocks, 1u);
    const std::size_t wi = m + q - 1;
    const std::size_t iters = n + p - 1;
    std::size_t expected = p * q                  // weight loads
        + (p - 1) * m                             // zero partials
        + wi                                      // first row load
        + iters * (p * q * wi)                    // all passes
        + 2;                                      // final queue resets
    EXPECT_EQ(sys.cell(0).issuedOps(), expected);
}

TEST(Conv, GeometryMatchesPaperSizing)
{
    // Tf = 512, 5x5: Wu = (512-5)/5 - 4 = 97 useful columns.
    Coprocessor sys(makeConfig(1, 512, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    Rng rng(1);
    Matrix img(8, 300);
    img.randomize(rng);
    Matrix w(5, 5);
    w.randomize(rng);
    MatRef image_t = storeImageT(sys.memory(), img, 5, 5);
    MatRef wr = allocMat(sys.memory(), 5, 5);
    storeMat(sys.memory(), wr, w);
    MatRef out_t = allocMat(sys.memory(), 300, 8);
    auto geom = plan.conv2d(image_t, wr, out_t, 8, 300);
    EXPECT_EQ(geom.wu, 97u);
    EXPECT_EQ(geom.wi, 101u);
    EXPECT_EQ(geom.blocks, 4u); // ceil(300 / 97)
}

struct CorrCase
{
    unsigned cells;
    std::size_t nx, lags;
};

class CorrSweep : public ::testing::TestWithParam<CorrCase>
{};

TEST_P(CorrSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.nx + tc.lags * 3);
    std::vector<float> x(tc.nx), y(tc.nx + tc.lags - 1);
    for (auto &v : x)
        v = rng.element();
    for (auto &v : y)
        v = rng.element();
    auto expect = blasref::xcorr1d(x, y, tc.lags);

    Coprocessor sys(makeConfig(tc.cells, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    std::size_t xb = mem.alloc(x.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        mem.storeF(xb + i, x[i]);
    std::size_t yb = mem.alloc(y.size());
    for (std::size_t i = 0; i < y.size(); ++i)
        mem.storeF(yb + i, y[i]);
    std::size_t ob = mem.alloc(tc.lags);
    plan.correlation(xb, tc.nx, yb, tc.lags, ob);
    plan.commit();
    sys.run();
    for (std::size_t d = 0; d < tc.lags; ++d)
        EXPECT_NEAR(mem.loadF(ob + d), expect[d], 1e-3f) << "lag " << d;
}

INSTANTIATE_TEST_SUITE_P(Shapes, CorrSweep, ::testing::Values(
    CorrCase{1, 64, 16},
    CorrCase{1, 100, 3},    // D below the pipeline depth: stalls only
    CorrCase{1, 10, 1},     // single lag
    CorrCase{4, 128, 32},   // lags partitioned across cells
    CorrCase{4, 50, 10},    // uneven partition
    CorrCase{2, 5, 8}       // lags exceed samples
));

struct FftCase
{
    unsigned cells;
    std::size_t n, batch;
};

class FftSweep : public ::testing::TestWithParam<FftCase>
{};

TEST_P(FftSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n + tc.batch);
    std::vector<std::vector<std::complex<float>>> xs(tc.batch);
    for (auto &x : xs) {
        x.resize(tc.n);
        for (auto &v : x)
            v = {rng.element(), rng.element()};
    }

    Coprocessor sys(makeConfig(tc.cells, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    std::size_t in = mem.alloc(2 * tc.n * tc.batch);
    for (std::size_t b = 0; b < tc.batch; ++b) {
        for (std::size_t i = 0; i < tc.n; ++i) {
            mem.storeF(in + b * 2 * tc.n + 2 * i, xs[b][i].real());
            mem.storeF(in + b * 2 * tc.n + 2 * i + 1, xs[b][i].imag());
        }
    }
    std::size_t out = mem.alloc(2 * tc.n * tc.batch);
    plan.fft(in, out, tc.n, tc.batch);
    plan.commit();
    sys.run();

    for (std::size_t b = 0; b < tc.batch; ++b) {
        auto expect = blasref::fft(xs[b]);
        float tol = 2e-3f * float(tc.n > 64 ? tc.n / 64 : 1);
        for (std::size_t k = 0; k < tc.n; ++k) {
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k),
                        expect[k].real(), tol)
                << "batch " << b << " bin " << k;
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k + 1),
                        expect[k].imag(), tol)
                << "batch " << b << " bin " << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FftSweep, ::testing::Values(
    FftCase{1, 4, 1},
    FftCase{1, 8, 1},
    FftCase{1, 64, 1},
    FftCase{1, 256, 1},
    FftCase{1, 1024, 1},  // the paper's reference size (fits Tf=2048)
    FftCase{4, 64, 8},    // batch across cells
    FftCase{2, 16, 3}     // odd batch
));

class FftFastSweep : public ::testing::TestWithParam<FftCase>
{};

TEST_P(FftFastSweep, PipelinedMatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n * 13 + tc.batch);
    std::vector<std::vector<std::complex<float>>> xs(tc.batch);
    for (auto &x : xs) {
        x.resize(tc.n);
        for (auto &v : x)
            v = {rng.element(), rng.element()};
    }
    Coprocessor sys(makeConfig(tc.cells, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    std::size_t in = mem.alloc(2 * tc.n * tc.batch);
    for (std::size_t b = 0; b < tc.batch; ++b) {
        for (std::size_t i = 0; i < tc.n; ++i) {
            mem.storeF(in + b * 2 * tc.n + 2 * i, xs[b][i].real());
            mem.storeF(in + b * 2 * tc.n + 2 * i + 1, xs[b][i].imag());
        }
    }
    std::size_t out = mem.alloc(2 * tc.n * tc.batch);
    plan.fft(in, out, tc.n, tc.batch, /*pipelined=*/true);
    plan.commit();
    sys.run();
    for (std::size_t b = 0; b < tc.batch; ++b) {
        auto expect = blasref::fft(xs[b]);
        float tol = 2e-3f * float(tc.n > 64 ? tc.n / 64 : 1);
        for (std::size_t k = 0; k < tc.n; ++k) {
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k),
                        expect[k].real(), tol) << b << "/" << k;
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k + 1),
                        expect[k].imag(), tol) << b << "/" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FftFastSweep, ::testing::Values(
    FftCase{1, 8, 1},     // one pair per half
    FftCase{1, 64, 2},
    FftCase{1, 1024, 1},
    FftCase{2, 32, 3}
));

TEST(FftFast, BeatsPlainButterfly)
{
    auto cycles_for = [&](bool pipelined) {
        Coprocessor sys(makeConfig(1, 2048, 2));
        kernels::installStandardKernels(sys);
        SignalPlanner plan(sys);
        std::size_t in = sys.memory().alloc(2 * 1024);
        std::size_t out = sys.memory().alloc(2 * 1024);
        plan.fft(in, out, 1024, 1, pipelined);
        plan.commit();
        return sys.run();
    };
    Cycle plain = cycles_for(false);
    Cycle fast = cycles_for(true);
    // 2-way interleaving removes the A-butterfly stalls but the B
    // tail still waits on its own multiply-adds: ~12% in practice.
    EXPECT_LT(double(fast), 0.92 * double(plain));
}

TEST(FftFast, RejectsTooSmallSize)
{
    Coprocessor sys(makeConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    std::size_t buf = sys.memory().alloc(64);
    EXPECT_THROW(plan.fft(buf, buf, 4, 1, true), std::logic_error);
}

class FftResidentSweep : public ::testing::TestWithParam<FftCase>
{};

TEST_P(FftResidentSweep, MatchesReference)
{
    const auto &tc = GetParam();
    Rng rng(tc.n * 3 + tc.batch);
    std::vector<std::vector<std::complex<float>>> xs(tc.batch);
    for (auto &x : xs) {
        x.resize(tc.n);
        for (auto &v : x)
            v = {rng.element(), rng.element()};
    }
    Coprocessor sys(makeConfig(tc.cells, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    std::size_t in = mem.alloc(2 * tc.n * tc.batch);
    for (std::size_t b = 0; b < tc.batch; ++b) {
        for (std::size_t i = 0; i < tc.n; ++i) {
            mem.storeF(in + b * 2 * tc.n + 2 * i, xs[b][i].real());
            mem.storeF(in + b * 2 * tc.n + 2 * i + 1, xs[b][i].imag());
        }
    }
    std::size_t out = mem.alloc(2 * tc.n * tc.batch);
    plan.fftResident(in, out, tc.n, tc.batch);
    plan.commit();
    sys.run();
    for (std::size_t b = 0; b < tc.batch; ++b) {
        auto expect = blasref::fft(xs[b]);
        for (std::size_t k = 0; k < tc.n; ++k) {
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k),
                        expect[k].real(), 2e-3f) << b << "/" << k;
            EXPECT_NEAR(mem.loadF(out + b * 2 * tc.n + 2 * k + 1),
                        expect[k].imag(), 2e-3f) << b << "/" << k;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, FftResidentSweep, ::testing::Values(
    FftCase{1, 16, 1},
    FftCase{1, 64, 4},    // multiple revolutions of the table
    FftCase{1, 256, 3},   // table exactly fills Tf = 2048
    FftCase{4, 64, 10},   // batches across cells
    FftCase{2, 32, 5}
));

TEST(FftResident, RejectsOversizedTable)
{
    Coprocessor sys(makeConfig(1, 512, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    std::size_t buf = sys.memory().alloc(4096);
    // 256-point table = 8 * 256 = 2048 words > Tf = 512.
    EXPECT_THROW(plan.fftResident(buf, buf, 256, 1),
                 std::logic_error);
}

TEST(FftResident, CutsHostTrafficPerTransform)
{
    auto words_for = [&](bool resident) {
        Coprocessor sys(makeConfig(1, 2048, 2));
        kernels::installStandardKernels(sys);
        SignalPlanner plan(sys);
        const std::size_t n = 64, batch = 8;
        std::size_t in = sys.memory().alloc(2 * n * batch);
        std::size_t out = sys.memory().alloc(2 * n * batch);
        if (resident)
            plan.fftResident(in, out, n, batch);
        else
            plan.fft(in, out, n, batch);
        plan.commit();
        sys.run();
        return sys.host().wordsSent() + sys.host().wordsReceived();
    };
    std::uint64_t streamed = words_for(false);
    std::uint64_t resident = words_for(true);
    // Streamed: (4n + mn) per transform; resident: 4n + mn once.
    EXPECT_LT(resident, streamed / 2);
}

TEST(Gemv, MatchesReferenceAndIsBandwidthBound)
{
    const std::size_t m = 48, n = 96;
    Rng rng(5);
    Matrix a(m, n);
    a.randomize(rng);
    std::vector<float> x(n), y(m);
    for (auto &v : x)
        v = rng.element();
    for (auto &v : y)
        v = rng.element();

    Coprocessor sys(makeConfig(1, 2048, 4));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    auto &mem = sys.memory();
    MatRef ar = allocMat(mem, m, n);
    storeMat(mem, ar, a);
    std::size_t xb = mem.alloc(n);
    for (std::size_t i = 0; i < n; ++i)
        mem.storeF(xb + i, x[i]);
    std::size_t yb = mem.alloc(m);
    for (std::size_t i = 0; i < m; ++i)
        mem.storeF(yb + i, y[i]);
    plan.gemv(ar, xb, yb);
    plan.commit();
    Cycle cycles = sys.run();

    for (std::size_t i = 0; i < m; ++i) {
        double acc = y[i];
        for (std::size_t j = 0; j < n; ++j)
            acc += double(a.at(i, j)) * double(x[j]);
        EXPECT_NEAR(mem.loadF(yb + i), float(acc), 1e-3f) << i;
    }
    // The kernel is memory-bound: ~1/tau multiply-adds per cycle.
    double rate = double(m) * double(n) / double(cycles);
    EXPECT_LT(rate, 1.0 / 4.0 + 0.05);
    EXPECT_GT(rate, 1.0 / 4.0 - 0.08);
}

TEST(Fft, RejectsBadSizes)
{
    Coprocessor sys(makeConfig(1, 2048, 2));
    kernels::installStandardKernels(sys);
    SignalPlanner plan(sys);
    std::size_t buf = sys.memory().alloc(4096);
    EXPECT_THROW(plan.fft(buf, buf, 6, 1), std::logic_error);
    EXPECT_THROW(plan.fft(buf, buf, 2, 1), std::logic_error);
    EXPECT_THROW(plan.fft(buf, buf, 2048, 1), std::logic_error);
}

TEST(Fft, TwiddleExponentFormula)
{
    using kernels::fftTwiddleExponent;
    // Stage 0: all zero.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(fftTwiddleExponent(0, i, 4), 0u);
    // Last stage: identity.
    for (std::size_t i = 0; i < 8; ++i)
        EXPECT_EQ(fftTwiddleExponent(3, i, 4), i);
}

TEST(Fft, BitReverse)
{
    using kernels::bitReverse;
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b110, 3), 0b011u);
    EXPECT_EQ(bitReverse(5, 1), 1u);
}
