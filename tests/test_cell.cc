/**
 * @file
 * Tests for the OPAC cell: sequencing, datapath correctness, hazards,
 * stalls, throughput and timing invariance across FP back-ends.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cell_harness.hh"
#include "common/random.hh"
#include "isa/builder.hh"

using namespace opac;
using namespace opac::isa;
using opac::test::CellHarness;

namespace
{

/** Kernel: copy p0 words from tpx to tpo. */
Program
copyKernel()
{
    ProgramBuilder b("copy");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
    return b.finish();
}

/** Kernel: out[i] = x[i] * y[i] + 1.0, streaming. */
Program
mulAddOneKernel()
{
    ProgramBuilder b("muladd1");
    b.loopParam(0, [&] {
        b.fma(Src::TpX, Src::TpY, Src::One, DstTpO);
    });
    return b.finish();
}

/** Kernel: single dot product of two p0-long streams (sequential acc). */
Program
dotKernel()
{
    ProgramBuilder b("dot");
    b.mov(Src::Zero, DstRegAy); // unused, exercises constants
    b.mul(Src::TpX, Src::TpY, DstSum);
    b.decParam(0);
    b.loopParam(0, [&] {
        b.fma(Src::TpX, Src::TpY, Src::Sum, DstSum);
    });
    b.mov(Src::Sum, DstTpO);
    return b.finish();
}

/**
 * Kernel: matrix update A(M,N) += B(M,1) * C(1,N) done K times — the
 * fig. 5 sequencing with A resident in sum, B(:,k) in reby, C(k,n) in
 * regay. Stream order on tpx: A (column major), then per k: B column
 * then C row. Results drain to tpo. Params: p0=K, p1=M, p2=N, p3=M*N.
 */
Program
matUpdateKernel()
{
    ProgramBuilder b("matupdate");
    b.loopParam(3, [&] { b.mov(Src::TpX, DstSum); });
    b.loopParam(0, [&] {
        b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });
        b.loopParam(2, [&] {
            b.mov(Src::TpX, DstRegAy);
            b.loopParam(1, [&] {
                b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
            });
        });
        b.resetFifo(LocalFifo::Reby);
    });
    b.loopParam(3, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

/** Triangular pattern: for k = p0 down to 1, emit k words from tpx. */
Program
triangularKernel()
{
    ProgramBuilder b("tri");
    b.loopParam(0, [&] {
        b.loopParam(1, [&] { b.mov(Src::TpX, DstTpO); });
        b.decParam(1);
    });
    return b.finish();
}

} // anonymous namespace

TEST(CellSequencer, CopiesStreamInOrder)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {5});
    h.feedX({1, 2, 3, 4, 5});
    h.sinkO(5);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{1, 2, 3, 4, 5}));
}

TEST(CellSequencer, ZeroTripLoopRunsNothing)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {0});
    h.run();
    EXPECT_TRUE(h.cell.tpo().empty());
    EXPECT_EQ(h.cell.issuedOps(), 0u);
}

TEST(CellSequencer, NegativeParamCountTreatedAsZero)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {-3});
    h.run();
    EXPECT_TRUE(h.cell.tpo().empty());
}

TEST(CellSequencer, BackToBackCalls)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {2});
    h.call(1, {3});
    h.feedX({1, 2, 3, 4, 5});
    h.sinkO(5);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{1, 2, 3, 4, 5}));
    EXPECT_EQ(h.cell.statusLine().find("state=idle"), 0u);
}

TEST(CellSequencer, UnknownEntryIsFatal)
{
    CellHarness h;
    h.cell.tpi().push(99, 0);
    EXPECT_THROW(h.run(), std::runtime_error);
}

TEST(CellSequencer, TriangularDecrementingLoops)
{
    CellHarness h;
    h.cell.loadMicrocode(1, triangularKernel(), 2);
    // p0 = 4 outer steps, p1 = 4 initial length: 4+3+2+1 = 10 words.
    h.call(1, {4, 4});
    std::vector<float> in;
    for (int i = 0; i < 10; ++i)
        in.push_back(float(i));
    h.feedX(in);
    h.sinkO(10);
    h.run();
    EXPECT_EQ(h.output().size(), 10u);
    EXPECT_EQ(h.output()[9], 9.0f);
}

TEST(CellDatapath, FmaStreamComputesCorrectly)
{
    CellHarness h;
    h.cell.loadMicrocode(7, mulAddOneKernel(), 1);
    h.call(7, {4});
    h.feedX({1.5f, 2.0f, -3.0f, 0.5f});
    h.feedY({2.0f, 3.0f, 1.0f, -8.0f});
    h.sinkO(4);
    h.run();
    auto out = h.output();
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 1.5f * 2.0f + 1.0f);
    EXPECT_EQ(out[1], 2.0f * 3.0f + 1.0f);
    EXPECT_EQ(out[2], -3.0f * 1.0f + 1.0f);
    EXPECT_EQ(out[3], 0.5f * -8.0f + 1.0f);
}

TEST(CellDatapath, SequentialDotProduct)
{
    CellHarness h;
    h.cell.loadMicrocode(2, dotKernel(), 1);
    h.call(2, {4});
    h.feedX({1, 2, 3, 4});
    h.feedY({10, 20, 30, 40});
    h.sinkO(1);
    h.run();
    EXPECT_EQ(h.output()[0], 1.0f * 10 + 2 * 20 + 3 * 30 + 4 * 40);
}

TEST(CellDatapath, MatrixUpdateMatchesReference)
{
    const int M = 4, N = 3, K = 5;
    // Column-major reference.
    std::vector<float> A(M * N), B(M * K), C(K * N);
    Rng rng(42);
    for (auto &v : A)
        v = rng.element();
    for (auto &v : B)
        v = rng.element();
    for (auto &v : C)
        v = rng.element();
    std::vector<float> expect = A;
    for (int k = 0; k < K; ++k) {
        for (int n = 0; n < N; ++n) {
            for (int m = 0; m < M; ++m)
                expect[n * M + m] += B[k * M + m] * C[n * K + k];
        }
    }

    CellHarness h;
    h.cell.loadMicrocode(3, matUpdateKernel(), 4);
    h.call(3, {K, M, N, M * N});
    std::vector<float> stream = A;
    for (int k = 0; k < K; ++k) {
        for (int m = 0; m < M; ++m)
            stream.push_back(B[k * M + m]);
        for (int n = 0; n < N; ++n)
            stream.push_back(C[n * K + k]);
    }
    h.feedX(stream);
    h.sinkO(std::size_t(M) * N);
    h.run();
    auto out = h.output();
    ASSERT_EQ(out.size(), std::size_t(M) * N);
    for (int i = 0; i < M * N; ++i)
        EXPECT_NEAR(out[i], expect[i], 1e-5f) << "element " << i;
}

TEST(CellTiming, InnerLoopSustainsOneOpPerCycle)
{
    const int M = 6, N = 50, K = 4;
    CellHarness h;
    h.cell.loadMicrocode(3, matUpdateKernel(), 4);
    h.call(3, {K, M, N, M * N});
    std::vector<float> stream(std::size_t(M * N + K * (M + N)), 1.0f);
    h.feedX(stream);
    h.sinkO(std::size_t(M) * N);
    Cycle cycles = h.run();
    // Useful multiply-adds: K*M*N. Overheads: initial load M*N, per-k
    // reby load M + per-column regay load N + reset, final drain M*N,
    // call decode. Require at least 80% of the asymptotic rate.
    double ma = double(K) * M * N;
    EXPECT_EQ(h.cell.fmaOps(), std::uint64_t(ma));
    double rate = ma / double(cycles);
    EXPECT_GT(rate, 0.5); // small kernel: overheads take a large share
    // And the busy part should be nearly fully pipelined: issued ops
    // close to busy cycles.
    EXPECT_GT(double(h.cell.issuedOps()) / double(h.cell.busyCycles()),
              0.9);
}

TEST(CellTiming, SlowFeederStallsWithoutDeadlock)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {8});
    h.feedX({1, 2, 3, 4, 5, 6, 7, 8}, 7); // one word every 7 cycles
    h.sinkO(8);
    Cycle cycles = h.run();
    EXPECT_GE(cycles, 7u * 7u); // last word leaves the feeder at t = 49
    EXPECT_EQ(h.output().size(), 8u);
    EXPECT_GT(h.engine.statusDump().size(), 0u);
}

TEST(CellTiming, WatchdogFiresWhenDataNeverArrives)
{
    CellHarness h({}, 1000);
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {4});
    // No feeder: the cell waits on tpx forever.
    EXPECT_THROW(h.run(), std::runtime_error);
}

TEST(CellTiming, TpoBackpressureStallsIssue)
{
    cell::CellConfig cfg;
    cfg.interfaceDepth = 4; // tiny tpo
    CellHarness h(cfg);
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {32});
    std::vector<float> in(32, 2.0f);
    h.feedX(in);
    // No sink: run manually until the cell blocks on tpo-full, then
    // verify it made exactly capacity progress (4 stored + in-flight).
    EXPECT_THROW(h.run(2000), std::runtime_error);
    EXPECT_LE(h.cell.tpo().size(), 4u);
    EXPECT_GT(h.cell.stats().counterValue("stallDstFull"), 0u);
}

TEST(CellTiming, TimingIdenticalAcrossFpBackends)
{
    auto run_with = [&](cell::FpKind kind) {
        cell::CellConfig cfg;
        cfg.fp = kind;
        CellHarness h(cfg);
        h.cell.loadMicrocode(3, matUpdateKernel(), 4);
        const int M = 5, N = 7, K = 3;
        h.call(3, {K, M, N, M * N});
        std::vector<float> stream(std::size_t(M * N + K * (M + N)),
                                  0.25f);
        h.feedX(stream);
        h.sinkO(std::size_t(M) * N);
        return h.run();
    };
    Cycle soft = run_with(cell::FpKind::Soft);
    Cycle native = run_with(cell::FpKind::Native);
    Cycle token = run_with(cell::FpKind::Token);
    EXPECT_EQ(soft, native);
    EXPECT_EQ(soft, token);
}

TEST(CellHazards, RegisterInterlockEnforcesRaw)
{
    // Write r5 through the FP pipe, read it immediately after: the
    // second op must see the new value despite the pipeline latency.
    Program dummy = [] {
        ProgramBuilder bb("raw");
        bb.mul(src(Src::TpX), src(Src::TpY), DstReg, 5);
        bb.add(reg(5), src(Src::One), DstTpO);
        return bb.finish();
    }();
    CellHarness h;
    h.cell.loadMicrocode(4, std::move(dummy), 0);
    h.call(4, {});
    h.feedX({3.0f});
    h.feedY({4.0f});
    h.sinkO(1);
    h.run();
    EXPECT_EQ(h.output()[0], 13.0f); // 3*4 + 1, not stale-register + 1
}

TEST(CellHazards, RecirculationKeepsQueueContents)
{
    // Stream a vector into reby, multiply it by 2 constants in
    // sequence; reby must survive the first pass via recirculation.
    ProgramBuilder b("recirc");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstReby); });
    b.mov(Src::TpX, DstRegAy);
    b.loopParam(0, [&] {
        b.fma(Src::RebyR, Src::RegAy, Src::Zero, DstTpO);
    });
    b.mov(Src::TpX, DstRegAy);
    b.loopParam(0, [&] {
        b.fma(Src::RebyR, Src::RegAy, Src::Zero, DstTpO);
    });
    CellHarness h;
    h.cell.loadMicrocode(5, b.finish(), 1);
    h.call(5, {3});
    h.feedX({1, 2, 3, /*c1=*/10, /*c2=*/100});
    h.sinkO(6);
    h.run();
    EXPECT_EQ(h.output(),
              (std::vector<float>{10, 20, 30, 100, 200, 300}));
}

TEST(CellHazards, ResetFifoDiscardsLeftovers)
{
    ProgramBuilder b("reset");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstReby); });
    b.resetFifo(LocalFifo::Reby);
    b.loopParam(0, [&] { b.mov(Src::TpX, DstReby); });
    b.loopParam(0, [&] { b.mov(Src::Reby, DstTpO); });
    CellHarness h;
    h.cell.loadMicrocode(6, b.finish(), 1);
    h.call(6, {2});
    h.feedX({1, 2, 30, 40});
    h.sinkO(2);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{30, 40}));
}

TEST(CellHazards, WritebacksCommitInIssueOrderPerQueue)
{
    // Regression for the LU ordering bug: a 1-cycle move issued after
    // a 3-cycle multiply into the same queue must not overtake it.
    ProgramBuilder b("order");
    b.mov(Src::TpX, DstRegAy);
    b.mul(src(Src::TpX), src(Src::RegAy), DstTpO); // latency 3
    b.mov(Src::TpX, DstTpO);                       // latency 1
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 0);
    h.call(9, {});
    h.feedX({2.0f, 5.0f, 99.0f});
    h.sinkO(2);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{10.0f, 99.0f}));
}

TEST(CellHazards, WawInterlockOrdersRegisterWrites)
{
    // An FP write to r4 followed immediately by a move write to r4:
    // the reader must observe the move's value (program order).
    Program p = [] {
        ProgramBuilder bb("waw");
        bb.mov(Src::TpX, DstRegAy);
        bb.mul(src(Src::TpX), src(Src::RegAy), DstReg, 4);
        bb.mov(Src::TpX, DstReg, 4);
        bb.add(reg(4), src(Src::Zero), DstTpO);
        return bb.finish();
    }();
    CellHarness h;
    h.cell.loadMicrocode(9, std::move(p), 0);
    h.call(9, {});
    h.feedX({3.0f, 7.0f, 42.0f});
    h.sinkO(1);
    h.run();
    EXPECT_EQ(h.output()[0], 42.0f);
}

TEST(CellSequencer, ParamAluMul2Div2)
{
    // Emit 2*p0 words, then p0/2 words (the FFT-style manipulations).
    ProgramBuilder b("p2");
    b.copyParam(1, 0);
    b.mul2Param(1);
    b.loopParam(1, [&] { b.mov(Src::TpX, DstTpO); });
    b.copyParam(2, 0);
    b.div2Param(2);
    b.loopParam(2, [&] { b.mov(Src::TpX, DstTpO); });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 1);
    h.call(9, {6});
    std::vector<float> in(15, 1.5f);
    h.feedX(in);
    h.sinkO(15);
    h.run();
    EXPECT_EQ(h.output().size(), 15u); // 12 + 3
}

TEST(CellSequencer, DeepLoopNestExecutesFully)
{
    // 4 nested loops of 3 iterations: 81 moves.
    ProgramBuilder b("nest");
    b.loopImm(3, [&] {
        b.loopImm(3, [&] {
            b.loopImm(3, [&] {
                b.loopImm(3, [&] { b.mov(Src::TpX, DstTpO); });
            });
        });
    });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 0);
    h.call(9, {});
    std::vector<float> in(81, 2.0f);
    h.feedX(in);
    h.sinkO(81);
    h.run();
    EXPECT_EQ(h.output().size(), 81u);
}

TEST(CellDatapath, ParallelMoveSharesQueuePorts)
{
    // fma consumes reby (read port) while its parallel move refills it
    // (write port) — the overlap trick of the conv/correlation kernels.
    ProgramBuilder b("tee");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstReby); }); // window = 2
    b.loopParam(1, [&] {
        b.fma(src(Src::Reby), src(Src::One), src(Src::Zero), DstTpO)
            .withMove(src(Src::TpX), DstReby);
    });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 2);
    h.call(9, {2, 4});
    h.feedX({1, 2, 3, 4, 5, 6});
    h.sinkO(4);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{1, 2, 3, 4}));
    EXPECT_EQ(h.cell.rebyQueue().size(), 2u); // refilled window remains
}

TEST(CellDatapath, DualDestinationFanout)
{
    // One multiply lands in both ret and tpo.
    ProgramBuilder b("fan");
    b.mov(Src::TpX, DstRegAy);
    b.loopParam(0, [&] {
        b.mul(src(Src::TpX), src(Src::RegAy), DstRet | DstTpO);
    });
    b.loopParam(0, [&] { b.mov(Src::Ret, DstTpO); });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 1);
    h.call(9, {3});
    h.feedX({10.0f, 1, 2, 3});
    h.sinkO(6);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{10, 20, 30, 10, 20, 30}));
}

TEST(CellDatapath, AddOnlyOpReadsTwoQueues)
{
    // Elementwise difference of two streams: adder-only, no multiply.
    ProgramBuilder b("diff");
    b.loopParam(0, [&] {
        b.add(Src::TpX, Src::TpY, DstTpO, AddOp::SubAB);
    });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 1);
    h.call(9, {3});
    h.feedX({10, 20, 30});
    h.feedY({1, 2, 3});
    h.sinkO(3);
    h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{9, 18, 27}));
    EXPECT_EQ(h.cell.fmaOps(), 0u);
}

TEST(CellSequencer, ControlBudgetBoundsZeroTripScan)
{
    // A chain of many zero-trip loops costs cycles (bounded lookahead)
    // but terminates and executes the trailing work.
    ProgramBuilder b("zt");
    for (int i = 0; i < 64; ++i)
        b.loopImm(0, [&] { b.mov(Src::TpX, DstTpO); });
    b.mov(Src::TpX, DstTpO);
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 0);
    h.call(9, {});
    h.feedX({7.0f});
    h.sinkO(1);
    Cycle cycles = h.run();
    EXPECT_EQ(h.output(), (std::vector<float>{7.0f}));
    // 64 skipped loops at up to controlOpsPerCycle (8) per cycle.
    EXPECT_GE(cycles, 64u / 8u);
}

TEST(CellSequencer, LoopCountReReadOnEveryEntry)
{
    // Inner loop count comes from a parameter that the outer body
    // decrements: iterations 3 + 2 + 1.
    ProgramBuilder b("tri2");
    b.loopImm(3, [&] {
        b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
        b.decParam(0);
    });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 1);
    h.call(9, {3});
    std::vector<float> in = {1, 2, 3, 4, 5, 6};
    h.feedX(in);
    h.sinkO(6);
    h.run();
    EXPECT_EQ(h.output().size(), 6u);
}

TEST(CellTrace, HookSeesCallIssueAndHalt)
{
    ProgramBuilder b("traced");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
    CellHarness h;
    h.cell.loadMicrocode(9, b.finish(), 1);
    std::vector<std::string> lines;
    h.cell.setTraceHook([&](const std::string &s) {
        lines.push_back(s);
    });
    h.call(9, {2});
    h.feedX({1, 2});
    h.sinkO(2);
    h.run();
    ASSERT_GE(lines.size(), 4u); // call + 2 issues + halt
    EXPECT_NE(lines.front().find("call traced"), std::string::npos);
    EXPECT_NE(lines[1].find("mov tpx -> tpo"), std::string::npos);
    EXPECT_NE(lines.back().find("halt"), std::string::npos);
}

TEST(CellTrace, DisabledHookCostsNothingAndChangesNothing)
{
    auto run_once = [&](bool traced) {
        ProgramBuilder b("t");
        b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
        CellHarness h;
        h.cell.loadMicrocode(9, b.finish(), 1);
        if (traced)
            h.cell.setTraceHook([](const std::string &) {});
        h.call(9, {8});
        std::vector<float> in(8, 1.0f);
        h.feedX(in);
        h.sinkO(8);
        return h.run();
    };
    EXPECT_EQ(run_once(false), run_once(true));
}

TEST(CellStats, CountersAreConsistent)
{
    CellHarness h;
    h.cell.loadMicrocode(1, copyKernel(), 1);
    h.call(1, {6});
    h.feedX({1, 2, 3, 4, 5, 6});
    h.sinkO(6);
    h.run();
    EXPECT_EQ(h.cell.issuedOps(), 6u);
    EXPECT_GE(h.cell.busyCycles(), 6u);
}
