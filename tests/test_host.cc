/**
 * @file
 * Tests for the host model and the multi-cell coprocessor: transfer
 * timing (tau accounting), broadcast semantics, regions, host-side
 * scalar ops and end-to-end kernel dispatch.
 */

#include <gtest/gtest.h>

#include "coproc/coprocessor.hh"
#include "isa/builder.hh"

using namespace opac;
using namespace opac::isa;
using copro::CoprocConfig;
using copro::Coprocessor;
using host::Region;

namespace
{

Program
copyKernel()
{
    ProgramBuilder b("copy");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
    return b.finish();
}

/** out[i] = x[i] * regay, with regay loaded from tpx first. */
Program
scaleKernel()
{
    ProgramBuilder b("scale");
    b.mov(Src::TpX, DstRegAy);
    b.loopParam(0, [&] {
        b.fma(Src::TpX, Src::RegAy, Src::Zero, DstTpO);
    });
    return b.finish();
}

} // anonymous namespace

TEST(Region, VecAddressing)
{
    Region r = Region::vec(100, 5);
    EXPECT_EQ(r.count(), 5u);
    EXPECT_EQ(r.addr(0), 100u);
    EXPECT_EQ(r.addr(4), 104u);
}

TEST(Region, StridedAddressing)
{
    Region r = Region::strided(10, 4, 7);
    EXPECT_EQ(r.count(), 4u);
    EXPECT_EQ(r.addr(0), 10u);
    EXPECT_EQ(r.addr(3), 31u);
}

TEST(Region, MatAddressingColumnMajor)
{
    // 3x2 block inside an ld=10 matrix at base 5.
    Region r = Region::mat(5, 3, 2, 10);
    EXPECT_EQ(r.count(), 6u);
    EXPECT_EQ(r.addr(0), 5u);
    EXPECT_EQ(r.addr(2), 7u);
    EXPECT_EQ(r.addr(3), 15u); // second column
    EXPECT_EQ(r.addr(5), 17u);
}

TEST(HostMemory, AllocAndBounds)
{
    host::HostMemory m(128);
    std::size_t a = m.alloc(64);
    std::size_t b = m.alloc(64);
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 64u);
    EXPECT_THROW(m.alloc(1), std::logic_error);
    m.storeF(3, 2.5f);
    EXPECT_EQ(m.loadF(3), 2.5f);
    EXPECT_THROW(m.load(1000), std::logic_error);
}

TEST(Host, RoundTripThroughCell)
{
    CoprocConfig cfg;
    Coprocessor sys(cfg);
    sys.loadMicrocode(1, copyKernel(), 1);

    const int n = 16;
    std::size_t in = sys.memory().alloc(n);
    std::size_t out = sys.memory().alloc(n);
    for (int i = 0; i < n; ++i)
        sys.memory().storeF(in + std::size_t(i), float(i) * 1.5f);

    sys.host().enqueue(host::callOp(1, 1, {n}));
    sys.host().enqueue(host::sendOp(1, Region::vec(in, n)));
    sys.host().enqueue(host::recvOp(0, Region::vec(out, n)));
    sys.run();

    for (int i = 0; i < n; ++i)
        EXPECT_EQ(sys.memory().loadF(out + std::size_t(i)),
                  float(i) * 1.5f);
}

TEST(Host, TauGovernsTransferRate)
{
    for (unsigned tau : {1u, 2u, 4u}) {
        CoprocConfig cfg;
        cfg.host.tau = tau;
        Coprocessor sys(cfg);
        sys.loadMicrocode(1, copyKernel(), 1);
        const int n = 256;
        std::size_t in = sys.memory().alloc(n);
        std::size_t out = sys.memory().alloc(n);
        sys.host().enqueue(host::callOp(1, 1, {n}));
        sys.host().enqueue(host::sendOp(1, Region::vec(in, n)));
        sys.host().enqueue(host::recvOp(0, Region::vec(out, n)));
        Cycle cycles = sys.run();
        // 2n words at 1/tau plus small constant overheads.
        EXPECT_GE(cycles, Cycle(2 * n - 1) * tau);
        EXPECT_LE(cycles, Cycle(2 * n) * tau + 64);
    }
}

TEST(Host, BroadcastCostsOneAccessPerWord)
{
    CoprocConfig cfg;
    cfg.cells = 4;
    cfg.host.tau = 4;
    Coprocessor sys(cfg);
    sys.loadMicrocode(1, copyKernel(), 1);
    const int n = 64;
    std::size_t in = sys.memory().alloc(n);
    std::vector<std::size_t> outs;
    for (unsigned c = 0; c < 4; ++c)
        outs.push_back(sys.memory().alloc(n));
    for (int i = 0; i < n; ++i)
        sys.memory().storeF(in + std::size_t(i), float(i));

    // One broadcast send reaches all four cells.
    sys.host().enqueue(host::callOp(copro::allCellsMask(4), 1, {n}));
    sys.host().enqueue(host::sendOp(copro::allCellsMask(4),
                                    Region::vec(in, n)));
    for (unsigned c = 0; c < 4; ++c)
        sys.host().enqueue(host::recvOp(c, Region::vec(outs[c], n)));
    sys.run();

    EXPECT_EQ(sys.host().wordsSent(), std::uint64_t(n)); // not 4n
    for (unsigned c = 0; c < 4; ++c) {
        for (int i = 0; i < n; ++i)
            EXPECT_EQ(sys.memory().loadF(outs[c] + std::size_t(i)),
                      float(i));
    }
}

TEST(Host, PerCellSendsAreIndependent)
{
    CoprocConfig cfg;
    cfg.cells = 2;
    Coprocessor sys(cfg);
    sys.loadMicrocode(2, scaleKernel(), 1);
    const int n = 8;
    std::size_t xs = sys.memory().alloc(2 * (n + 1));
    std::size_t out = sys.memory().alloc(2 * n);
    // Cell 0 scales by 2, cell 1 by 10.
    sys.memory().storeF(xs + 0, 2.0f);
    sys.memory().storeF(xs + std::size_t(n + 1), 10.0f);
    for (int i = 0; i < n; ++i) {
        sys.memory().storeF(xs + 1 + std::size_t(i), float(i));
        sys.memory().storeF(xs + std::size_t(n + 1) + 1 + std::size_t(i),
                            float(i));
    }
    sys.host().enqueue(host::callOp(0b01, 2, {n}));
    sys.host().enqueue(host::callOp(0b10, 2, {n}));
    sys.host().enqueue(host::sendOp(0b01, Region::vec(xs, n + 1)));
    sys.host().enqueue(host::sendOp(
        0b10, Region::vec(xs + std::size_t(n + 1), n + 1)));
    sys.host().enqueue(host::recvOp(0, Region::vec(out, n)));
    sys.host().enqueue(host::recvOp(1, Region::vec(out + std::size_t(n),
                                                   n)));
    sys.run();
    for (int i = 0; i < n; ++i) {
        EXPECT_EQ(sys.memory().loadF(out + std::size_t(i)), 2.0f * i);
        EXPECT_EQ(sys.memory().loadF(out + std::size_t(n + i)),
                  10.0f * i);
    }
}

TEST(Host, RecipComputeOp)
{
    CoprocConfig cfg;
    Coprocessor sys(cfg);
    std::size_t a = sys.memory().alloc(2);
    sys.memory().storeF(a, 4.0f);
    sys.host().enqueue(host::recipOp(a + 1, a));
    Cycle cycles = sys.run();
    EXPECT_EQ(sys.memory().loadF(a + 1), 0.25f);
    EXPECT_GE(cycles, Cycle(cfg.host.recipCycles));
}

TEST(Host, CallWordsCheaperThanData)
{
    CoprocConfig cfg;
    cfg.host.tau = 4;
    Coprocessor sys(cfg);
    sys.loadMicrocode(1, copyKernel(), 1);
    std::size_t in = sys.memory().alloc(1);
    std::size_t out = sys.memory().alloc(1);
    sys.host().enqueue(host::callOp(1, 1, {1}));
    sys.host().enqueue(host::sendOp(1, Region::vec(in, 1)));
    sys.host().enqueue(host::recvOp(0, Region::vec(out, 1)));
    Cycle cycles = sys.run();
    // 2 call words at 1 cycle + 2 data words at tau + cell latency:
    // comfortably under 2+2 words all at tau plus slack.
    EXPECT_LT(cycles, 40u);
}

TEST(Host, StatusLineReportsProgress)
{
    CoprocConfig cfg;
    Coprocessor sys(cfg);
    std::size_t in = sys.memory().alloc(4);
    sys.host().enqueue(host::sendOp(1, Region::vec(in, 4)));
    EXPECT_NE(sys.host().statusLine().find("send"), std::string::npos);
    sys.run();
    EXPECT_NE(sys.host().statusLine().find("complete"),
              std::string::npos);
}

TEST(Coprocessor, StatsReportContainsAllComponents)
{
    CoprocConfig cfg;
    cfg.cells = 2;
    Coprocessor sys(cfg);
    std::string report = sys.statsReport();
    EXPECT_NE(report.find("system.cell0"), std::string::npos);
    EXPECT_NE(report.find("system.cell1"), std::string::npos);
    EXPECT_NE(report.find("system.host"), std::string::npos);
}

TEST(Host, SecondaryOperandStreamViaTpy)
{
    // out[i] = x[i] * y[i]: x on tpx, y on tpy — the dual input
    // streams of fig. 4.
    isa::ProgramBuilder b("mulxy");
    b.loopParam(0, [&] {
        b.fma(Src::TpX, Src::TpY, Src::Zero, DstTpO);
    });
    CoprocConfig cfg;
    Coprocessor sys(cfg);
    sys.cell(0).loadMicrocode(5, b.finish(), 1);
    const int n = 6;
    std::size_t xs = sys.memory().alloc(n);
    std::size_t ys = sys.memory().alloc(n);
    std::size_t out = sys.memory().alloc(n);
    for (int i = 0; i < n; ++i) {
        sys.memory().storeF(xs + std::size_t(i), float(i));
        sys.memory().storeF(ys + std::size_t(i), 10.0f);
    }
    sys.host().enqueue(host::callOp(1, 5, {n}));
    sys.host().enqueue(host::sendOp(1, Region::vec(xs, n)));
    sys.host().enqueue(host::sendOp(1, Region::vec(ys, n),
                                    host::SendTarget::TpY));
    sys.host().enqueue(host::recvOp(0, Region::vec(out, n)));
    sys.run();
    for (int i = 0; i < n; ++i)
        EXPECT_EQ(sys.memory().loadF(out + std::size_t(i)),
                  10.0f * float(i));
}

TEST(Region, GridAddressing)
{
    // Transposed 3x2 sub-block: 2 words per group with stride 10,
    // 3 groups with stride 1.
    Region r = Region::grid(50, 2, 10, 3, 1);
    EXPECT_EQ(r.count(), 6u);
    EXPECT_EQ(r.addr(0), 50u);
    EXPECT_EQ(r.addr(1), 60u);
    EXPECT_EQ(r.addr(2), 51u);
    EXPECT_EQ(r.addr(5), 62u);
}

TEST(Host, SqrtRecipComputeOp)
{
    CoprocConfig cfg;
    Coprocessor sys(cfg);
    std::size_t a = sys.memory().alloc(3);
    sys.memory().storeF(a, 16.0f);
    sys.host().enqueue(host::sqrtRecipOp(a + 1, a + 2, a));
    sys.run();
    EXPECT_EQ(sys.memory().loadF(a + 1), 4.0f);
    EXPECT_EQ(sys.memory().loadF(a + 2), 0.25f);
}

TEST(Host, StatsCountTrafficAndStalls)
{
    CoprocConfig cfg;
    cfg.host.tau = 2;
    Coprocessor sys(cfg);
    isa::ProgramBuilder b("copy");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
    sys.cell(0).loadMicrocode(1, b.finish(), 1);
    std::size_t buf = sys.memory().alloc(8);
    sys.host().enqueue(host::callOp(1, 1, {8}));
    sys.host().enqueue(host::sendOp(1, Region::vec(buf, 8)));
    sys.host().enqueue(host::recvOp(0, Region::vec(buf, 8)));
    sys.run();
    auto &st = sys.host().stats();
    EXPECT_EQ(st.counterValue("wordsSent"), 8u);
    EXPECT_EQ(st.counterValue("wordsReceived"), 8u);
    EXPECT_EQ(st.counterValue("callWords"), 2u);
    EXPECT_EQ(st.counterValue("opsCompleted"), 3u);
}

TEST(Host, BroadcastCallReachesAllCells)
{
    CoprocConfig cfg;
    cfg.cells = 3;
    Coprocessor sys(cfg);
    isa::ProgramBuilder b("copy");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstTpO); });
    isa::Program prog = b.finish();
    for (unsigned c = 0; c < 3; ++c)
        sys.cell(c).loadMicrocode(1, prog, 1);
    std::size_t buf = sys.memory().alloc(2);
    std::size_t out = sys.memory().alloc(6);
    sys.memory().storeF(buf, 5.0f);
    sys.memory().storeF(buf + 1, 6.0f);
    sys.host().enqueue(host::callOp(copro::allCellsMask(3), 1, {2}));
    sys.host().enqueue(host::sendOp(copro::allCellsMask(3),
                                    Region::vec(buf, 2)));
    for (unsigned c = 0; c < 3; ++c) {
        sys.host().enqueue(host::recvOp(
            c, Region::vec(out + 2 * c, 2)));
    }
    sys.run();
    for (unsigned c = 0; c < 3; ++c) {
        EXPECT_EQ(sys.memory().loadF(out + 2 * c), 5.0f);
        EXPECT_EQ(sys.memory().loadF(out + 2 * c + 1), 6.0f);
    }
}

TEST(Coprocessor, RejectsBadCellCount)
{
    CoprocConfig cfg;
    cfg.cells = 0;
    EXPECT_THROW(Coprocessor sys(cfg), std::logic_error);
}
