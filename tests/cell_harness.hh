/**
 * @file
 * Shared test harness for driving a single OPAC cell without a host
 * model: feeds words into tpx/tpy at a configurable rate, enqueues call
 * words on tpi, runs the engine and collects tpo output.
 */

#ifndef OPAC_TESTS_CELL_HARNESS_HH
#define OPAC_TESTS_CELL_HARNESS_HH

#include <vector>

#include "cell/cell.hh"
#include "common/logging.hh"
#include "sim/engine.hh"

namespace opac::test
{

/** Pushes a prepared word stream into a FIFO, one word per interval. */
class Feeder : public sim::Component
{
  public:
    Feeder(std::string name, TimedFifo &target, std::vector<Word> words,
           unsigned interval = 1)
        : sim::Component(std::move(name)), target(target),
          words(std::move(words)), interval(interval)
    {}

    void
    tick(sim::Engine &engine) override
    {
        if (pos >= words.size())
            return;
        if (engine.now() < nextTime)
            return;
        if (!target.canPush())
            return;
        target.push(words[pos++], engine.now());
        nextTime = engine.now() + interval;
        engine.noteProgress();
    }

    bool done() const override { return pos >= words.size(); }

    std::string
    statusLine() const override
    {
        return strfmt("fed %zu/%zu into %s", pos, words.size(),
                      target.name().c_str());
    }

  private:
    TimedFifo &target;
    std::vector<Word> words;
    unsigned interval;
    std::size_t pos = 0;
    Cycle nextTime = 0;
};

/** Pops every available word from a FIFO, one per cycle. */
class Sink : public sim::Component
{
  public:
    Sink(std::string name, TimedFifo &source, std::size_t expected)
        : sim::Component(std::move(name)), source(source),
          expected(expected)
    {}

    void
    tick(sim::Engine &engine) override
    {
        if (collected.size() >= expected)
            return;
        if (source.canPop(engine.now())) {
            collected.push_back(source.pop(engine.now()));
            engine.noteProgress();
        }
    }

    bool done() const override { return collected.size() >= expected; }

    std::string
    statusLine() const override
    {
        return strfmt("collected %zu/%zu from %s", collected.size(),
                      expected, source.name().c_str());
    }

    std::vector<Word> collected;

  private:
    TimedFifo &source;
    std::size_t expected;
};

/** One cell plus its drivers. */
struct CellHarness
{
    explicit CellHarness(const cell::CellConfig &cfg = {},
                         Cycle watchdog = 100000)
        : engine(watchdog), cell("cell0", cfg)
    {
        engine.add(&cell);
    }

    /** Enqueue a kernel call: entry word plus parameter words. */
    void
    call(Word entry, const std::vector<std::int32_t> &params)
    {
        cell.tpi().push(entry, 0);
        for (auto p : params)
            cell.tpi().push(Word(p), 0);
    }

    /** Stream float data into tpx at one word per @p interval cycles. */
    Feeder &
    feedX(const std::vector<float> &values, unsigned interval = 1)
    {
        std::vector<Word> words;
        words.reserve(values.size());
        for (float v : values)
            words.push_back(floatToWord(v));
        feeders.push_back(std::make_unique<Feeder>(
            strfmt("feedx%zu", feeders.size()), cell.tpx(),
            std::move(words), interval));
        engine.add(feeders.back().get());
        return *feeders.back();
    }

    /** Stream float data into tpy. */
    Feeder &
    feedY(const std::vector<float> &values, unsigned interval = 1)
    {
        std::vector<Word> words;
        words.reserve(values.size());
        for (float v : values)
            words.push_back(floatToWord(v));
        feeders.push_back(std::make_unique<Feeder>(
            strfmt("feedy%zu", feeders.size()), cell.tpy(),
            std::move(words), interval));
        engine.add(feeders.back().get());
        return *feeders.back();
    }

    /** Collect @p n words from tpo while running. */
    Sink &
    sinkO(std::size_t n)
    {
        sinks.push_back(std::make_unique<Sink>(
            strfmt("sink%zu", sinks.size()), cell.tpo(), n));
        engine.add(sinks.back().get());
        return *sinks.back();
    }

    /** Run to completion; returns cycles simulated. */
    Cycle run(Cycle max_cycles = 0) { return engine.run(max_cycles); }

    /** Collected floats from the first sink. */
    std::vector<float>
    output() const
    {
        opac_assert(!sinks.empty(), "no sink configured");
        std::vector<float> out;
        for (Word w : sinks.front()->collected)
            out.push_back(wordToFloat(w));
        return out;
    }

    sim::Engine engine;
    cell::Cell cell;
    std::vector<std::unique_ptr<Feeder>> feeders;
    std::vector<std::unique_ptr<Sink>> sinks;
};

} // namespace opac::test

#endif // OPAC_TESTS_CELL_HARNESS_HH
