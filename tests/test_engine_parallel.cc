/**
 * @file
 * Golden-equivalence suite for the two-level scheduler: every engine
 * mode (spin, skip, event, parallel) must produce bit-identical
 * results — same cycle count, same statistics JSON (including the
 * sampled time series), same trace event stream — on every workload,
 * with and without active fault injection. Parallel-mode runs at
 * P >= 4 with a real worker pool are the TSan target for the sharded
 * cell execution.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "fault/fault.hh"
#include "kernels/kernel_set.hh"
#include "planner/linalg_plan.hh"
#include "trace/trace.hh"

using namespace opac;
using namespace opac::planner;
using copro::CoprocConfig;
using copro::Coprocessor;
using sim::EngineMode;

namespace
{

enum class Workload
{
    MatUpdate,
    Lu,
    Trmm,
    Syrk,
};

const char *
workloadName(Workload w)
{
    switch (w) {
      case Workload::MatUpdate:
        return "matupdate";
      case Workload::Lu:
        return "lu";
      case Workload::Trmm:
        return "trmm";
      case Workload::Syrk:
        return "syrk";
    }
    return "?";
}

struct RunOut
{
    Cycle cycles = 0;
    std::string statsJson;
    std::vector<trace::Event> events;
    std::uint64_t fastForwards = 0;
    std::uint64_t skippedCycles = 0;
    std::uint64_t bursts = 0;
};

/**
 * Active faults shared by every faulted run: correctable FIFO flips,
 * transient hangs and memory-latency spikes, dense enough (rate is
 * per Mcycle over the horizon) that several land inside even the
 * smallest workload here.
 */
const char *kFaultSpec =
    "seed=7,rate=500,horizon=20000,kinds=flip+hang+mem,bits=1";

RunOut
runWorkload(Workload w, unsigned p, EngineMode mode, unsigned threads,
            bool traced, bool faulted, bool fast_tier = true)
{
    CoprocConfig cfg;
    cfg.cells = p;
    cfg.cell.tf = 256;
    cfg.host.tau = 2;
    cfg.watchdogCycles = 500000;
    cfg.skipIdleCycles = true;
    cfg.statsSampleInterval = 64;
    cfg.engineMode = mode;
    cfg.simThreads = threads;
    cfg.fastTier = fast_tier;
    if (faulted) {
        cfg.faults = fault::parseFaultSpec(kFaultSpec);
        cfg.cell.parity = fault::ParityMode::Correct;
    }
    Coprocessor sys(cfg);
    kernels::installStandardKernels(sys);

    trace::Tracer tracer;
    trace::VectorSink sink;
    if (traced) {
        tracer.addSink(&sink);
        sys.attachTracer(&tracer);
    }

    LinalgPlanner plan(sys);
    const std::size_t n = 24, k = 40;
    switch (w) {
      case Workload::MatUpdate: {
        MatRef c = allocMat(sys.memory(), n, n);
        MatRef a = allocMat(sys.memory(), n, k);
        MatRef b = allocMat(sys.memory(), k, n);
        plan.matUpdate(c, a, b);
        break;
      }
      case Workload::Lu: {
        MatRef a = allocMat(sys.memory(), n, n);
        for (std::size_t i = 0; i < n; ++i)
            sys.memory().storeF(a.addrOf(i, i), 2.0f);
        plan.lu(a);
        break;
      }
      case Workload::Trmm: {
        MatRef u = allocMat(sys.memory(), n, n);
        MatRef b = allocMat(sys.memory(), n, 16);
        MatRef out = allocMat(sys.memory(), n, 16);
        plan.trmmLeftUpper(out, u, b);
        break;
      }
      case Workload::Syrk: {
        MatRef c = allocMat(sys.memory(), n, n);
        MatRef a = allocMat(sys.memory(), n, 16);
        plan.syrkLower(c, a);
        break;
      }
    }
    plan.commit();

    RunOut out;
    out.cycles = sys.run();
    out.statsJson = sys.statsJson();
    out.events = std::move(sink.events);
    out.fastForwards = sys.engine().fastForwards();
    out.skippedCycles = sys.engine().skippedCycles();
    out.bursts = sys.engine().bursts();
    return out;
}

void
expectSameEvents(const std::vector<trace::Event> &ref,
                 const std::vector<trace::Event> &got, const char *what)
{
    ASSERT_EQ(ref.size(), got.size()) << what;
    for (std::size_t i = 0; i < ref.size(); ++i) {
        const trace::Event &a = ref[i];
        const trace::Event &b = got[i];
        ASSERT_TRUE(a.cycle == b.cycle && a.kind == b.kind &&
                    a.arg == b.arg && a.comp == b.comp &&
                    a.track == b.track && a.a == b.a && a.b == b.b)
            << what << ": event " << i << " differs (cycle "
            << a.cycle << " vs " << b.cycle << ")";
    }
}

const EngineMode kFastModes[] = {EngineMode::Skip, EngineMode::Event,
                                 EngineMode::Parallel};

} // anonymous namespace

// ---------------------------------------------------------------------
// Four-mode golden equivalence
// ---------------------------------------------------------------------

TEST(EngineModes, EveryWorkloadMatchesSpinInEveryMode)
{
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu,
                              Workload::Trmm, Workload::Syrk};
    for (Workload w : loads) {
        RunOut spin = runWorkload(w, 4, EngineMode::Spin, 0, false,
                                  false);
        for (EngineMode m : kFastModes) {
            RunOut got = runWorkload(w, 4, m, 4, false, false);
            EXPECT_EQ(spin.cycles, got.cycles)
                << workloadName(w) << " mode=" << sim::engineModeName(m);
            EXPECT_EQ(spin.statsJson, got.statsJson)
                << workloadName(w) << " mode=" << sim::engineModeName(m);
        }
    }
}

TEST(EngineModes, TraceStreamIsIdenticalInEveryMode)
{
    // The staged per-slot trace merge must reproduce the serial event
    // ORDER, not just the same multiset of events.
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu};
    for (Workload w : loads) {
        RunOut spin = runWorkload(w, 4, EngineMode::Spin, 0, true,
                                  false);
        for (EngineMode m : kFastModes) {
            RunOut got = runWorkload(w, 4, m, 4, true, false);
            EXPECT_EQ(spin.cycles, got.cycles) << workloadName(w);
            std::string what = std::string(workloadName(w)) + " mode="
                               + sim::engineModeName(m);
            expectSameEvents(spin.events, got.events, what.c_str());
        }
    }
}

TEST(EngineModes, FaultedRunsMatchInEveryMode)
{
    // Injected flips, hangs and memory-latency spikes exercise every
    // wake-before-mutation hook; the stats JSON (fault counters,
    // recovery actions, sampled series) must not depend on the mode.
    RunOut spin = runWorkload(Workload::MatUpdate, 4, EngineMode::Spin,
                              0, true, true);
    for (EngineMode m : kFastModes) {
        RunOut got = runWorkload(Workload::MatUpdate, 4, m, 4, true,
                                 true);
        EXPECT_EQ(spin.cycles, got.cycles)
            << "mode=" << sim::engineModeName(m);
        EXPECT_EQ(spin.statsJson, got.statsJson)
            << "mode=" << sim::engineModeName(m);
        std::string what =
            std::string("faulted mode=") + sim::engineModeName(m);
        expectSameEvents(spin.events, got.events, what.c_str());
    }
}

TEST(EngineModes, SamplerSeriesIsPresentAndModeIndependent)
{
    // The periodic sampler must fire on the same engine cycles in
    // every mode (observesSystemAt forces a full catch-up first), so
    // the sampled series is part of the byte-identical contract.
    RunOut spin = runWorkload(Workload::Lu, 2, EngineMode::Spin, 0,
                              false, false);
    ASSERT_NE(spin.statsJson.find("\"samples\""), std::string::npos);
    for (EngineMode m : kFastModes) {
        RunOut got = runWorkload(Workload::Lu, 2, m, 4, false, false);
        EXPECT_EQ(spin.statsJson, got.statsJson)
            << "mode=" << sim::engineModeName(m);
    }
}

// ---------------------------------------------------------------------
// Mode-specific behaviour
// ---------------------------------------------------------------------

TEST(EngineModes, EventModeSleepsOnStallHeavyRuns)
{
    // LU quiesces the whole system at every pivot step; per-component
    // sleeping must engage there or event mode is dead code.
    RunOut ev = runWorkload(Workload::Lu, 1, EngineMode::Event, 0,
                            false, false);
    EXPECT_GT(ev.fastForwards, 0u);
    EXPECT_GT(ev.skippedCycles, 0u);
}

TEST(EngineModes, ParallelFallsBackToSerialWithOneShard)
{
    // One cell cannot be sharded: the parallel runner must degrade to
    // the serial skip loop and still match spin exactly.
    RunOut spin = runWorkload(Workload::MatUpdate, 1, EngineMode::Spin,
                              0, false, false);
    RunOut par = runWorkload(Workload::MatUpdate, 1,
                             EngineMode::Parallel, 4, false, false);
    EXPECT_EQ(spin.cycles, par.cycles);
    EXPECT_EQ(spin.statsJson, par.statsJson);
}

// ---------------------------------------------------------------------
// Superop fast tier: on vs off byte-identity
// ---------------------------------------------------------------------
//
// The fast tier is a pure wall-clock optimization: with it on or off,
// cycles, stats JSON (sampled series included) and trace streams must
// be byte-identical in every engine mode. fastForwards/skippedCycles
// are engine diagnostics and legitimately differ — never compare them
// across tier settings.

TEST(FastTier, OnMatchesOffInEveryModeEveryWorkload)
{
    const EngineMode modes[] = {EngineMode::Spin, EngineMode::Skip,
                                EngineMode::Event,
                                EngineMode::Parallel};
    const Workload loads[] = {Workload::MatUpdate, Workload::Lu,
                              Workload::Trmm, Workload::Syrk};
    for (Workload w : loads) {
        for (EngineMode m : modes) {
            RunOut off = runWorkload(w, 4, m, 4, false, false, false);
            RunOut on = runWorkload(w, 4, m, 4, false, false, true);
            EXPECT_EQ(off.cycles, on.cycles)
                << workloadName(w) << " mode=" << sim::engineModeName(m);
            EXPECT_EQ(off.statsJson, on.statsJson)
                << workloadName(w) << " mode=" << sim::engineModeName(m);
        }
    }
}

TEST(FastTier, TracedRunsMatchOnVsOffInEveryMode)
{
    // With a tracer attached the tier refuses every burst (observers
    // need per-cycle event edges), but the flag must still be inert:
    // identical cycles, stats and event ORDER either way.
    const EngineMode modes[] = {EngineMode::Spin, EngineMode::Skip,
                                EngineMode::Event,
                                EngineMode::Parallel};
    for (EngineMode m : modes) {
        RunOut off = runWorkload(Workload::MatUpdate, 4, m, 4, true,
                                 false, false);
        RunOut on = runWorkload(Workload::MatUpdate, 4, m, 4, true,
                                false, true);
        EXPECT_EQ(off.cycles, on.cycles)
            << "mode=" << sim::engineModeName(m);
        EXPECT_EQ(off.statsJson, on.statsJson)
            << "mode=" << sim::engineModeName(m);
        std::string what =
            std::string("traced tier mode=") + sim::engineModeName(m);
        expectSameEvents(off.events, on.events, what.c_str());
    }
}

TEST(FastTier, FaultedRunsMatchOnVsOffInEveryMode)
{
    // Active fault plans are the hard case: the injector's event
    // horizon must clamp every burst window, armed faults must refuse
    // streaming, and recovery hangs must freeze the fallback path —
    // or the faulted timeline diverges between tier settings.
    const EngineMode modes[] = {EngineMode::Spin, EngineMode::Skip,
                                EngineMode::Event,
                                EngineMode::Parallel};
    for (EngineMode m : modes) {
        RunOut off = runWorkload(Workload::MatUpdate, 4, m, 4, false,
                                 true, false);
        RunOut on = runWorkload(Workload::MatUpdate, 4, m, 4, false,
                                true, true);
        EXPECT_EQ(off.cycles, on.cycles)
            << "mode=" << sim::engineModeName(m);
        EXPECT_EQ(off.statsJson, on.statsJson)
            << "mode=" << sim::engineModeName(m);
    }
}

TEST(FastTier, FaultedTracedRunsMatchOnVsOff)
{
    // Tracing plus faults: the tier stays refused under the tracer
    // while the fault machinery runs — stats, cycles and the full
    // event stream must be identical on vs off.
    RunOut off = runWorkload(Workload::MatUpdate, 4, EngineMode::Skip,
                             0, true, true, false);
    RunOut on = runWorkload(Workload::MatUpdate, 4, EngineMode::Skip,
                            0, true, true, true);
    EXPECT_EQ(off.cycles, on.cycles);
    EXPECT_EQ(off.statsJson, on.statsJson);
    expectSameEvents(off.events, on.events, "faulted traced tier");
}

TEST(FastTier, BurstsEngageOnSteadyStreamingLoops)
{
    // The tier must actually fire on its target workload (untraced
    // streaming matrix update) or the whole fast path is dead code.
    RunOut on = runWorkload(Workload::MatUpdate, 1, EngineMode::Skip,
                            0, false, false, true);
    EXPECT_GT(on.bursts, 0u);
    RunOut off = runWorkload(Workload::MatUpdate, 1, EngineMode::Skip,
                             0, false, false, false);
    EXPECT_EQ(off.bursts, 0u);
}

TEST(EngineModes, ParseAndNameRoundTrip)
{
    const EngineMode modes[] = {EngineMode::Spin, EngineMode::Skip,
                                EngineMode::Event,
                                EngineMode::Parallel};
    for (EngineMode m : modes) {
        EngineMode back;
        ASSERT_TRUE(sim::parseEngineMode(sim::engineModeName(m), back));
        EXPECT_EQ(m, back);
    }
    EngineMode out;
    EXPECT_FALSE(sim::parseEngineMode("warp", out));
    EXPECT_FALSE(sim::parseEngineMode("", out));
}
