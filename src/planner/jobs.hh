/**
 * @file
 * Transactional job dispatch: the bridge between the planners and the
 * host's recovery machinery (docs/RESILIENCE.md).
 *
 * A *job* is a named, re-plannable unit of work: a function that, given
 * the mask of currently usable cells, emits the host transfer program
 * executing that work on exactly those cells. The JobRunner wraps each
 * job in a txn_begin/txn_end bracket so the host can journal it, time
 * it out, retry it, and — when a cell exceeds its retry budget and is
 * marked dead — ask the runner to re-plan every uncommitted job onto
 * the survivors.
 *
 * With recovery disabled the runner degenerates to a plain enqueue of
 * each job's descriptors, byte-identical to calling commit() on the
 * planners directly, so fault-free baselines are unaffected.
 */

#ifndef OPAC_PLANNER_JOBS_HH
#define OPAC_PLANNER_JOBS_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "coproc/coprocessor.hh"

namespace opac::planner
{

/** One re-plannable unit of work. */
struct Job
{
    /** Emit the transfer program for this job on the cells in @p
     *  alive_mask (never empty; at least one cell survives). */
    using PlanFn = std::function<std::vector<host::HostOp>(
        std::uint32_t alive_mask)>;

    std::uint32_t id = 0;
    std::string name;
    PlanFn plan;
};

/** Plans jobs, brackets them in transactions, re-plans around deaths. */
class JobRunner
{
  public:
    /**
     * @param first_id Id of the first registered job (ids stay dense
     *        from there). Callers that reuse one host across several
     *        runner generations — the serve shards dispatch a fresh
     *        runner per batch — must pass a base past every id already
     *        in Host::completedJobs(), or replan() would mistake a
     *        previous generation's committed job for one of its own.
     */
    explicit JobRunner(copro::Coprocessor &sys,
                       std::uint32_t first_id = 1);

    /** Register a job; returns its id (dense from first_id). */
    std::uint32_t add(std::string name, Job::PlanFn plan);

    /**
     * Plan every registered job against the current alive mask and
     * enqueue the resulting program into the host. With recovery
     * enabled each job is wrapped in txn_begin/txn_end and a replan
     * handler is installed on the host; without it the descriptors are
     * enqueued bare (byte-identical to Planner::commit()).
     */
    void dispatch();

    /** Times the host asked for a re-plan (0 in a fault-free run). */
    unsigned replans() const { return nreplans; }

  private:
    void replan(std::uint32_t alive_mask);

    copro::Coprocessor &sys;
    std::uint32_t firstId;
    std::vector<Job> jobs;
    unsigned nreplans = 0;
};

} // namespace opac::planner

#endif // OPAC_PLANNER_JOBS_HH
