#include "planner/jobs.hh"

#include <algorithm>

#include "common/logging.hh"

namespace opac::planner
{

JobRunner::JobRunner(copro::Coprocessor &sys, std::uint32_t first_id)
    : sys(sys), firstId(first_id)
{
    opac_assert(first_id >= 1, "job ids are 1-based");
}

std::uint32_t
JobRunner::add(std::string name, Job::PlanFn plan)
{
    Job j;
    j.id = firstId + std::uint32_t(jobs.size());
    j.name = std::move(name);
    j.plan = std::move(plan);
    jobs.push_back(std::move(j));
    return jobs.back().id;
}

void
JobRunner::dispatch()
{
    host::Host &h = sys.host();
    const bool recover = sys.config().host.recovery.enabled;
    if (recover)
        h.setReplanHandler(
            [this](std::uint32_t alive) { replan(alive); });
    const std::uint32_t alive = h.aliveMask();
    for (const Job &j : jobs) {
        if (recover)
            h.enqueue(host::txnBeginOp(j.id, alive));
        h.enqueue(j.plan(alive));
        if (recover)
            h.enqueue(host::txnEndOp(j.id));
    }
}

void
JobRunner::replan(std::uint32_t alive_mask)
{
    opac_assert(alive_mask != 0, "replan with no surviving cells");
    ++nreplans;
    host::Host &h = sys.host();
    const auto &done = h.completedJobs();
    for (const Job &j : jobs) {
        if (std::find(done.begin(), done.end(), j.id) != done.end())
            continue;
        h.enqueue(host::txnBeginOp(j.id, alive_mask));
        h.enqueue(j.plan(alive_mask));
        h.enqueue(host::txnEndOp(j.id));
    }
}

} // namespace opac::planner
