#include "planner/matref.hh"

namespace opac::planner
{

MatRef
allocMat(host::HostMemory &mem, std::size_t rows, std::size_t cols)
{
    return MatRef{mem.alloc(rows * cols), rows, cols, rows};
}

void
storeMat(host::HostMemory &mem, const MatRef &ref,
         const blasref::Matrix &m)
{
    opac_assert(m.rows() == ref.rows && m.cols() == ref.cols,
                "storeMat shape mismatch");
    for (std::size_t c = 0; c < ref.cols; ++c) {
        for (std::size_t r = 0; r < ref.rows; ++r)
            mem.storeF(ref.addrOf(r, c), m.at(r, c));
    }
}

blasref::Matrix
loadMat(const host::HostMemory &mem, const MatRef &ref)
{
    blasref::Matrix m(ref.rows, ref.cols);
    for (std::size_t c = 0; c < ref.cols; ++c) {
        for (std::size_t r = 0; r < ref.rows; ++r)
            m.at(r, c) = mem.loadF(ref.addrOf(r, c));
    }
    return m;
}

} // namespace opac::planner
