#include "planner/chunking.hh"

#include <algorithm>

namespace opac::planner
{

Segments
splitChunk(const Chunk &ch, std::size_t mb)
{
    Segments s{};
    std::size_t r0 = ch.w0 % mb;
    s.col0 = ch.w0 / mb;
    s.rot = r0;
    std::size_t remaining = ch.words();
    if (r0 != 0 && remaining > 0) {
        s.head = std::min(mb - r0, remaining);
        remaining -= s.head;
    }
    s.fullCol0 = s.col0 + (s.head > 0 ? 1 : 0);
    s.full = remaining / mb;
    remaining -= s.full * mb;
    s.tail = remaining;
    s.tailCol = s.fullCol0 + s.full;
    if (ch.words() > 0) {
        std::size_t col_last = (ch.w1 - 1) / mb;
        s.colCount = col_last - s.col0 + 1;
    }
    return s;
}

std::vector<Chunk>
splitWords(std::size_t total, unsigned parts)
{
    std::vector<Chunk> out;
    std::size_t base = total / parts;
    std::size_t rem = total % parts;
    std::size_t at = 0;
    for (unsigned c = 0; c < parts; ++c) {
        std::size_t len = base + (c < rem ? 1 : 0);
        out.push_back(Chunk{at, at + len});
        at += len;
    }
    return out;
}

} // namespace opac::planner
