#include "planner/linalg_plan.hh"

#include "planner/chunking.hh"

#include <algorithm>

#include "common/math_util.hh"
#include "kernels/entries.hh"
#include "kernels/lu_leaf.hh"
#include "kernels/matupdate.hh"
#include "kernels/trsolve.hh"

namespace opac::planner
{

using host::HostOp;
using host::Region;

LinalgPlanner::LinalgPlanner(copro::Coprocessor &sys)
    : LinalgPlanner(sys, copro::allCellsMask(sys.numCells()))
{}

LinalgPlanner::LinalgPlanner(copro::Coprocessor &sys,
                             std::uint32_t cell_mask)
    : sys(sys)
{
    for (unsigned c = 0; c < sys.numCells(); ++c) {
        if (cell_mask & (1u << c))
            cellIds.push_back(c);
    }
    opac_assert(!cellIds.empty(), "planner with no usable cells");
    oneAddr = sys.memory().alloc(1);
    sys.memory().storeF(oneAddr, 1.0f);
}

void
LinalgPlanner::commit()
{
    sys.host().enqueue(ops);
    ops.clear();
}

std::size_t
LinalgPlanner::luLeafMax() const
{
    return std::size_t(isqrt(std::int64_t(sys.config().cell.tf)));
}

// ---------------------------------------------------------------------
// Matrix update (fig. 2 / fig. 5)
// ---------------------------------------------------------------------

void
LinalgPlanner::matUpdateTile(const MatRef &c, const MatRef &a,
                             const MatRef &b, bool negate,
                             bool b_transposed, bool a_transposed)
{
    const std::size_t mb = c.rows;
    const std::size_t nb = c.cols;
    const std::size_t k = a_transposed ? a.rows : a.cols;
    const unsigned p = numCells();
    const Word entry = negate ? kernels::entries::matUpdateSub
                              : kernels::entries::matUpdateAdd;

    auto chunks = splitWords(mb * nb, p);
    std::vector<Segments> segs;
    for (const auto &ch : chunks) {
        opac_assert(ch.words() <= sys.config().cell.tf,
                    "tile chunk of %zu words exceeds Tf %zu", ch.words(),
                    sys.config().cell.tf);
        segs.push_back(splitChunk(ch, mb));
    }

    // Kernel calls (per cell: its own segment geometry).
    for (unsigned cc = 0; cc < p; ++cc) {
        if (chunks[cc].words() == 0)
            continue;
        const Segments &s = segs[cc];
        ops.push_back(host::callOp(
            cellBit(cc), entry,
            {std::int32_t(k), std::int32_t(mb), std::int32_t(s.rot),
             s.head > 0 ? 1 : 0, std::int32_t(s.head),
             std::int32_t(s.full), s.tail > 0 ? 1 : 0,
             std::int32_t(s.tail), std::int32_t(chunks[cc].words())}));
        ++planStats.leafCalls;
    }

    // Initial chunk contents (up to three regions per cell).
    auto chunkRegions = [&](const Segments &s) {
        std::vector<Region> rs;
        if (s.head > 0)
            rs.push_back(Region::vec(c.addrOf(s.rot, s.col0), s.head));
        if (s.full > 0)
            rs.push_back(Region::mat(c.addrOf(0, s.fullCol0), mb, s.full,
                                     c.ld));
        if (s.tail > 0)
            rs.push_back(Region::vec(c.addrOf(0, s.tailCol), s.tail));
        return rs;
    };
    for (unsigned cc = 0; cc < p; ++cc) {
        if (chunks[cc].words() == 0)
            continue;
        for (const Region &r : chunkRegions(segs[cc]))
            ops.push_back(host::sendOp(cellBit(cc), r));
    }

    // K iterations: broadcast A(:,kk), then per-cell B-row slices.
    std::uint32_t active = 0;
    for (unsigned cc = 0; cc < p; ++cc) {
        if (chunks[cc].words() > 0)
            active |= cellBit(cc);
    }
    for (std::size_t kk = 0; kk < k; ++kk) {
        // A(:,kk): contiguous in normal storage, a strided row of the
        // stored matrix when A is its transpose.
        Region a_col = a_transposed
            ? Region::strided(a.addrOf(kk, 0), mb, a.ld)
            : Region::vec(a.addrOf(0, kk), mb);
        ops.push_back(host::sendOp(active, a_col));
        for (unsigned cc = 0; cc < p; ++cc) {
            if (chunks[cc].words() == 0)
                continue;
            const Segments &s = segs[cc];
            // Row kk of B restricted to this cell's columns: strided
            // in normal storage, contiguous when B is the transpose
            // of the stored matrix.
            Region slice = b_transposed
                ? Region::vec(b.addrOf(s.col0, kk), s.colCount)
                : Region::strided(b.addrOf(kk, s.col0), s.colCount,
                                  b.ld);
            ops.push_back(host::sendOp(cellBit(cc), slice));
        }
    }

    // Collect the updated chunks.
    for (unsigned cc = 0; cc < p; ++cc) {
        if (chunks[cc].words() == 0)
            continue;
        for (const Region &r : chunkRegions(segs[cc]))
            ops.push_back(host::recvOp(cellId(cc), r));
    }
    ++planStats.tiles;
}

void
LinalgPlanner::matUpdate(const MatRef &c, const MatRef &a,
                         const MatRef &b, bool negate, bool b_transposed,
                         bool a_transposed)
{
    const std::size_t a_rows = a_transposed ? a.cols : a.rows;
    const std::size_t a_cols = a_transposed ? a.rows : a.cols;
    const std::size_t b_rows = b_transposed ? b.cols : b.rows;
    const std::size_t b_cols = b_transposed ? b.rows : b.cols;
    opac_assert(a_rows == c.rows && b_cols == c.cols && a_cols == b_rows,
                "matUpdate shape mismatch");
    if (c.rows == 0 || c.cols == 0 || a_cols == 0)
        return;

    const std::size_t tf = sys.config().cell.tf;
    const unsigned p = numCells();

    // Tile shape: square-ish, capped so a B column fits reby (mb <= tf)
    // and each cell's chunk fits sum (ceil(mb*nb/p) <= tf).
    std::size_t mb = std::min(c.rows,
                              std::max<std::size_t>(
                                  1, std::size_t(isqrt(
                                      std::int64_t(tf) * p))));
    mb = std::min(mb, tf);
    std::size_t nb = std::max<std::size_t>(
        1, std::min(c.cols, (tf * p) / mb));
    while (ceilDiv(std::int64_t(mb * nb), p) > std::int64_t(tf) && nb > 1)
        --nb;

    for (std::size_t j = 0; j < c.cols; j += nb) {
        std::size_t ncb = std::min(nb, c.cols - j);
        MatRef b_block = b_transposed ? b.sub(j, 0, ncb, b.cols)
                                      : b.sub(0, j, b.rows, ncb);
        for (std::size_t i = 0; i < c.rows; i += mb) {
            std::size_t nrb = std::min(mb, c.rows - i);
            MatRef a_block = a_transposed
                ? a.sub(0, i, a.rows, nrb)
                : a.sub(i, 0, nrb, a.cols);
            matUpdateTile(c.sub(i, j, nrb, ncb), a_block, b_block,
                          negate, b_transposed, a_transposed);
        }
    }
}

// ---------------------------------------------------------------------
// TRMM and SYRK (composed from matrix-update calls)
// ---------------------------------------------------------------------

void
LinalgPlanner::trmmLeftUpper(const MatRef &out, const MatRef &u,
                             const MatRef &b)
{
    const std::size_t n = u.rows;
    opac_assert(u.cols == n && b.rows == n && out.rows == n
                && out.cols == b.cols, "trmm shape mismatch");
    if (n == 0 || b.cols == 0)
        return;
    // Row blocks sized like the matrix-update tiles; each row block I
    // multiplies only the K-range I..n (the nonzero triangle).
    const std::size_t tf = sys.config().cell.tf;
    std::size_t rb = std::max<std::size_t>(
        1, std::min<std::size_t>(n, std::size_t(isqrt(
            std::int64_t(tf) * numCells()))));
    for (std::size_t i = 0; i < n; i += rb) {
        std::size_t nr = std::min(rb, n - i);
        matUpdate(out.sub(i, 0, nr, out.cols),
                  u.sub(i, i, nr, n - i),
                  b.sub(i, 0, n - i, b.cols), false);
    }
}

void
LinalgPlanner::syrkLower(const MatRef &c, const MatRef &a, bool negate)
{
    const std::size_t n = c.rows;
    opac_assert(c.cols == n && a.rows == n, "syrk shape mismatch");
    if (n == 0 || a.cols == 0)
        return;
    const std::size_t tf = sys.config().cell.tf;
    std::size_t cb = std::max<std::size_t>(
        1, std::min<std::size_t>(n, std::size_t(isqrt(
            std::int64_t(tf) * numCells()))));
    for (std::size_t j = 0; j < n; j += cb) {
        std::size_t nc = std::min(cb, n - j);
        // Block column j..j+nc of the lower triangle, rows j..n; the
        // A^T operand streams straight out of A's storage.
        matUpdate(c.sub(j, j, n - j, nc), a.sub(j, 0, n - j, a.cols),
                  a.sub(j, 0, nc, a.cols), negate,
                  /*b_transposed=*/true);
    }
}

// ---------------------------------------------------------------------
// Triangular solves
// ---------------------------------------------------------------------

void
LinalgPlanner::trsmRightUpperLeaf(const MatRef &a, const MatRef &u,
                                  std::size_t recips, bool u_transposed)
{
    const std::size_t n = u.rows;
    const std::size_t m = a.rows;
    const unsigned p = numCells();

    // Partition the m rows across cells.
    std::vector<std::size_t> row0(p + 1, 0);
    for (unsigned cc = 0; cc < p; ++cc)
        row0[cc + 1] = row0[cc] + m / p + (cc < m % p ? 1 : 0);

    std::uint32_t active = 0;
    for (unsigned cc = 0; cc < p; ++cc) {
        std::size_t mc = row0[cc + 1] - row0[cc];
        if (mc == 0)
            continue;
        active |= cellBit(cc);
        opac_assert(mc * n <= sys.config().cell.tf,
                    "trsm leaf block %zu words exceeds Tf", mc * n);
        ops.push_back(host::callOp(
            cellBit(cc), kernels::entries::trSolve,
            {std::int32_t(n), std::int32_t(mc), std::int32_t(mc * n)}));
        ops.push_back(host::sendOp(
            cellBit(cc),
            Region::mat(a.addrOf(row0[cc], 0), mc, n, a.ld)));
        ++planStats.leafCalls;
        ++planStats.trsmLeaves;
    }

    // Shared U data, broadcast: per column j, the diagonal reciprocal
    // then the row slice u(j, j+1..n-1) — a contiguous column of the
    // stored lower triangle when U is its transpose.
    for (std::size_t j = 0; j < n; ++j) {
        ops.push_back(host::sendOp(active, Region::vec(recips + j, 1)));
        if (j + 1 < n) {
            Region slice = u_transposed
                ? Region::vec(u.addrOf(j + 1, j), n - 1 - j)
                : Region::strided(u.addrOf(j, j + 1), n - 1 - j, u.ld);
            ops.push_back(host::sendOp(active, slice));
        }
    }

    // Results: X columns per cell, in column order per cell.
    for (unsigned cc = 0; cc < p; ++cc) {
        std::size_t mc = row0[cc + 1] - row0[cc];
        if (mc == 0)
            continue;
        ops.push_back(host::recvOp(
            cellId(cc), Region::mat(a.addrOf(row0[cc], 0), mc, n, a.ld)));
    }
}

void
LinalgPlanner::trsmRightUpper(const MatRef &a, const MatRef &u,
                              std::size_t recips, bool u_transposed)
{
    const std::size_t n = u.rows;
    if (n == 0 || a.rows == 0)
        return;
    const std::size_t tf = sys.config().cell.tf;
    // Leaf condition: one row block per cell must fit sum. Rows can be
    // split arbitrarily, so only n forces recursion: need n <= tf and a
    // sensible aspect (at least one row per cell block).
    const unsigned p = numCells();
    std::size_t max_rows_per_cell = tf / std::max<std::size_t>(1, n);
    if (max_rows_per_cell >= 1 && n * n <= tf * p) {
        // Process in row blocks of p * max_rows_per_cell.
        std::size_t rb = std::max<std::size_t>(1,
                                               max_rows_per_cell * p);
        for (std::size_t r = 0; r < a.rows; r += rb) {
            std::size_t nr = std::min(rb, a.rows - r);
            trsmRightUpperLeaf(a.sub(r, 0, nr, n), u, recips,
                               u_transposed);
        }
        return;
    }
    // Recurse on the triangle: X1*U11 = A1; A2 -= X1*U12; X2*U22 = A2.
    // When U is the transpose of the stored lower triangle, U12 is the
    // transpose of the stored (n1.., 0..n1) block.
    std::size_t n1 = n / 2;
    MatRef u12 = u_transposed ? u.sub(n1, 0, n - n1, n1)
                              : u.sub(0, n1, n1, n - n1);
    trsmRightUpper(a.sub(0, 0, a.rows, n1), u.sub(0, 0, n1, n1), recips,
                   u_transposed);
    matUpdate(a.sub(0, n1, a.rows, n - n1), a.sub(0, 0, a.rows, n1),
              u12, true, u_transposed);
    trsmRightUpper(a.sub(0, n1, a.rows, n - n1),
                   u.sub(n1, n1, n - n1, n - n1), recips + n1,
                   u_transposed);
}

void
LinalgPlanner::trsmLeftUnitLowerLeaf(const MatRef &l, const MatRef &a)
{
    // Solve L * X = A by transposition: X^T * L^T = A^T, L^T upper
    // triangular with unit diagonal (reciprocals are 1.0).
    const std::size_t n = l.rows;
    const std::size_t m = a.cols; // rows of the transposed problem
    const unsigned p = numCells();

    std::vector<std::size_t> col0(p + 1, 0);
    for (unsigned cc = 0; cc < p; ++cc)
        col0[cc + 1] = col0[cc] + m / p + (cc < m % p ? 1 : 0);

    std::uint32_t active = 0;
    for (unsigned cc = 0; cc < p; ++cc) {
        std::size_t mc = col0[cc + 1] - col0[cc];
        if (mc == 0)
            continue;
        active |= cellBit(cc);
        opac_assert(mc * n <= sys.config().cell.tf,
                    "trsm leaf block %zu words exceeds Tf", mc * n);
        ops.push_back(host::callOp(
            cellBit(cc), kernels::entries::trSolve,
            {std::int32_t(n), std::int32_t(mc), std::int32_t(mc * n)}));
        // A^T block: "column j" of the transposed problem is row j of
        // A restricted to this cell's columns.
        ops.push_back(host::sendOp(
            cellBit(cc), Region::grid(a.addrOf(0, col0[cc]), mc, a.ld, n,
                                   1)));
        ++planStats.leafCalls;
        ++planStats.trsmLeaves;
    }

    // Shared L^T data: unit diagonal (1.0) plus column slices of L.
    for (std::size_t j = 0; j < n; ++j) {
        ops.push_back(host::sendOp(active, Region::vec(oneAddr, 1)));
        if (j + 1 < n) {
            ops.push_back(host::sendOp(
                active, Region::vec(l.addrOf(j + 1, j), n - 1 - j)));
        }
    }

    for (unsigned cc = 0; cc < p; ++cc) {
        std::size_t mc = col0[cc + 1] - col0[cc];
        if (mc == 0)
            continue;
        ops.push_back(host::recvOp(
            cellId(cc), Region::grid(a.addrOf(0, col0[cc]), mc, a.ld, n, 1)));
    }
}

void
LinalgPlanner::trsmLeftUnitLower(const MatRef &l, const MatRef &a)
{
    const std::size_t n = l.rows;
    if (n == 0 || a.cols == 0)
        return;
    const std::size_t tf = sys.config().cell.tf;
    const unsigned p = numCells();
    std::size_t max_cols_per_cell = tf / std::max<std::size_t>(1, n);
    if (max_cols_per_cell >= 1 && n * n <= tf * p) {
        std::size_t cb = std::max<std::size_t>(1,
                                               max_cols_per_cell * p);
        for (std::size_t c0 = 0; c0 < a.cols; c0 += cb) {
            std::size_t nc = std::min(cb, a.cols - c0);
            trsmLeftUnitLowerLeaf(l, a.sub(0, c0, n, nc));
        }
        return;
    }
    // L = [L11 0; L21 L22]: L11*X1 = A1; A2 -= L21*X1; L22*X2 = A2.
    std::size_t n1 = n / 2;
    trsmLeftUnitLower(l.sub(0, 0, n1, n1), a.sub(0, 0, n1, a.cols));
    matUpdate(a.sub(n1, 0, n - n1, a.cols), l.sub(n1, 0, n - n1, n1),
              a.sub(0, 0, n1, a.cols), true);
    trsmLeftUnitLower(l.sub(n1, n1, n - n1, n - n1),
                      a.sub(n1, 0, n - n1, a.cols));
}

// ---------------------------------------------------------------------
// LU factorization (fig. 7)
// ---------------------------------------------------------------------

void
LinalgPlanner::luLeaf(const MatRef &a, std::size_t recips)
{
    const std::size_t n = a.rows;
    ops.push_back(host::callOp(
        cellBit(0), kernels::entries::luLeaf,
        {std::int32_t(n), std::int32_t(n * n)}));
    ops.push_back(host::sendOp(cellBit(0), Region::mat(a.base, n, n, a.ld)));
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t s = n - k;
        // Pivot comes home, its reciprocal goes back (and is kept for
        // the later TRSM leaves).
        ops.push_back(host::recvOp(cellId(0), Region::vec(a.addrOf(k, k), 1)));
        ops.push_back(host::recipOp(recips + k, a.addrOf(k, k)));
        ops.push_back(host::sendOp(cellBit(0), Region::vec(recips + k, 1)));
        ++planStats.recipOps;
        if (s > 1) {
            ops.push_back(host::recvOp(
                cellId(0), Region::vec(a.addrOf(k + 1, k), s - 1)));
            ops.push_back(host::recvOp(
                cellId(0), Region::strided(a.addrOf(k, k + 1), s - 1, a.ld)));
        }
    }
    ++planStats.leafCalls;
    ++planStats.luLeaves;
}

void
LinalgPlanner::luRecurse(const MatRef &a, std::size_t recips)
{
    const std::size_t n = a.rows;
    if (n == 0)
        return;
    if (n <= luLeafMax()) {
        luLeaf(a, recips);
        return;
    }
    const std::size_t n1 = n / 2;
    const std::size_t n2 = n - n1;
    MatRef a00 = a.sub(0, 0, n1, n1);
    MatRef a10 = a.sub(n1, 0, n2, n1);
    MatRef a01 = a.sub(0, n1, n1, n2);
    MatRef a11 = a.sub(n1, n1, n2, n2);

    luRecurse(a00, recips);                       // 1. factor A00
    trsmRightUpper(a10, a00, recips);             // 2. A10 U00^-1
    trsmLeftUnitLower(a00, a01);                  // 3. L00^-1 A01
    matUpdate(a11, a10, a01, true);               // 4. A11 -= A10 A01
    luRecurse(a11, recips + n1);                  // 5. factor A11
}

void
LinalgPlanner::lu(const MatRef &a)
{
    opac_assert(a.rows == a.cols, "LU needs a square matrix");
    std::size_t recips = sys.memory().alloc(a.rows);
    luRecurse(a, recips);
}

// ---------------------------------------------------------------------
// Cholesky factorization
// ---------------------------------------------------------------------

namespace
{

/** Largest n whose packed lower triangle fits tf words. */
std::size_t
cholLeafMax(std::size_t tf)
{
    std::size_t n = 1;
    while ((n + 1) * (n + 2) / 2 <= tf)
        ++n;
    return n;
}

} // anonymous namespace

void
LinalgPlanner::cholLeaf(const MatRef &a, std::size_t recips)
{
    const std::size_t n = a.rows;
    ops.push_back(host::callOp(
        cellBit(0), kernels::entries::choleskyLeaf,
        {std::int32_t(n), std::int32_t(n * (n + 1) / 2)}));
    // Packed lower triangle, column by column.
    for (std::size_t j = 0; j < n; ++j) {
        ops.push_back(host::sendOp(cellBit(0),
                                   Region::vec(a.addrOf(j, j), n - j)));
    }
    for (std::size_t k = 0; k < n; ++k) {
        const std::size_t s = n - k;
        // Raw pivot home; L(k,k) = sqrt stays in place, 1/L(k,k) is
        // kept for the TRSM leaves; reciprocal back to the cell.
        ops.push_back(host::recvOp(cellId(0), Region::vec(a.addrOf(k, k), 1)));
        ops.push_back(host::sqrtRecipOp(a.addrOf(k, k), recips + k,
                                        a.addrOf(k, k)));
        ops.push_back(host::sendOp(cellBit(0), Region::vec(recips + k, 1)));
        ++planStats.recipOps;
        if (s > 1) {
            ops.push_back(host::recvOp(
                cellId(0), Region::vec(a.addrOf(k + 1, k), s - 1)));
        }
    }
    ++planStats.leafCalls;
    ++planStats.cholLeaves;
}

void
LinalgPlanner::cholRecurse(const MatRef &a, std::size_t recips)
{
    const std::size_t n = a.rows;
    if (n == 0)
        return;
    if (n <= cholLeafMax(sys.config().cell.tf)) {
        cholLeaf(a, recips);
        return;
    }
    const std::size_t n1 = n / 2;
    const std::size_t n2 = n - n1;
    MatRef a11 = a.sub(0, 0, n1, n1);
    MatRef a21 = a.sub(n1, 0, n2, n1);
    MatRef a22 = a.sub(n1, n1, n2, n2);

    cholRecurse(a11, recips);                       // 1. factor A11
    trsmRightUpper(a21, a11, recips,
                   /*u_transposed=*/true);          // 2. A21 L11^-T
    syrkLower(a22, a21, /*negate=*/true);           // 3. A22 -= A21 A21^T
    cholRecurse(a22, recips + n1);                  // 4. factor A22
}

void
LinalgPlanner::cholesky(const MatRef &a)
{
    opac_assert(a.rows == a.cols, "Cholesky needs a square matrix");
    std::size_t recips = sys.memory().alloc(a.rows);
    cholRecurse(a, recips);
}

} // namespace opac::planner
