/**
 * @file
 * A reference to a column-major matrix living in host memory — the
 * currency of the planners.
 */

#ifndef OPAC_PLANNER_MATREF_HH
#define OPAC_PLANNER_MATREF_HH

#include <cstddef>

#include "blasref/matrix.hh"
#include "host/memory.hh"

namespace opac::planner
{

/** A column-major rows x cols view into host memory. */
struct MatRef
{
    std::size_t base = 0; //!< address of element (0, 0)
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::size_t ld = 0;   //!< leading dimension (>= rows)

    /** Address of element (r, c). */
    std::size_t
    addrOf(std::size_t r, std::size_t c) const
    {
        return base + c * ld + r;
    }

    /** Submatrix view starting at (r0, c0) with shape nr x nc. */
    MatRef
    sub(std::size_t r0, std::size_t c0, std::size_t nr,
        std::size_t nc) const
    {
        opac_assert(r0 + nr <= rows && c0 + nc <= cols,
                    "sub(%zu,%zu,%zu,%zu) out of %zux%zu", r0, c0, nr,
                    nc, rows, cols);
        return MatRef{addrOf(r0, c0), nr, nc, ld};
    }
};

/** Allocate a rows x cols matrix in host memory. */
MatRef allocMat(host::HostMemory &mem, std::size_t rows,
                std::size_t cols);

/** Copy a blasref::Matrix into host memory at @p ref. */
void storeMat(host::HostMemory &mem, const MatRef &ref,
              const blasref::Matrix &m);

/** Read host memory at @p ref back into a blasref::Matrix. */
blasref::Matrix loadMat(const host::HostMemory &mem, const MatRef &ref);

} // namespace opac::planner

#endif // OPAC_PLANNER_MATREF_HH
