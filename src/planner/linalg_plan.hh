/**
 * @file
 * Host-side planners for the dense linear-algebra kernels: tiled
 * multi-cell matrix update (fig. 2), recursive triangular solves and
 * the recursive block LU factorization (fig. 7).
 *
 * A planner walks the block decomposition of a problem whose data lives
 * in host memory and emits the flat host transfer program (calls,
 * sends, broadcasts, receives, scalar reciprocals) that executes it on
 * a P-cell coprocessor. Nothing here touches the simulation clock: all
 * cost is paid when the host executes the emitted descriptors.
 */

#ifndef OPAC_PLANNER_LINALG_PLAN_HH
#define OPAC_PLANNER_LINALG_PLAN_HH

#include <vector>

#include "coproc/coprocessor.hh"
#include "planner/matref.hh"

namespace opac::planner
{

/** Statistics about an emitted plan (inspected by tests and benches). */
struct PlanStats
{
    std::size_t leafCalls = 0;   //!< kernel calls emitted
    std::size_t tiles = 0;       //!< matrix-update tiles
    std::size_t luLeaves = 0;    //!< leaf LU factorizations
    std::size_t cholLeaves = 0;  //!< leaf Cholesky factorizations
    std::size_t trsmLeaves = 0;  //!< leaf triangular solves
    std::size_t recipOps = 0;    //!< host scalar reciprocals
};

/** Emits host transfer programs for linear-algebra operations. */
class LinalgPlanner
{
  public:
    /** Plan onto every cell of @p sys. */
    explicit LinalgPlanner(copro::Coprocessor &sys);

    /**
     * Plan onto the subset of cells in @p cell_mask only: logical cell
     * 0..popcount-1 maps onto the set physical cells in ascending
     * order. This is how work is re-planned around dead cells — the
     * emitted program never addresses a cell outside the mask.
     */
    LinalgPlanner(copro::Coprocessor &sys, std::uint32_t cell_mask);

    /**
     * C += A * B (negate: C -= A * B). Tiles C so each cell's chunk of a
     * tile fits its sum queue, partitions tile columns/words across the
     * P cells and broadcasts A columns (the fig. 2 mapping).
     *
     * When @p b_transposed (@p a_transposed) is set, the B (A) operand
     * is read as the transpose of the stored matrix — its slices
     * become contiguous or strided reads of the stored layout, so no
     * materialized transpose is ever needed. Together they cover all
     * four BLAS GEMM transpose combinations.
     */
    void matUpdate(const MatRef &c, const MatRef &a, const MatRef &b,
                   bool negate = false, bool b_transposed = false,
                   bool a_transposed = false);

    /**
     * A <- A * U^-1 with U upper triangular (non-unit). @p recips is
     * the host-memory base of the n precomputed diagonal reciprocals.
     * Recurses on n until a leaf fits the cells, distributing row
     * blocks across cells. With @p u_transposed, U is read as the
     * transpose of the stored (lower-triangular) matrix — used by the
     * Cholesky recursion where U = L11^T.
     */
    void trsmRightUpper(const MatRef &a, const MatRef &u,
                        std::size_t recips, bool u_transposed = false);

    /** A <- L^-1 * A with L unit lower triangular (transposed leaf). */
    void trsmLeftUnitLower(const MatRef &l, const MatRef &a);

    /**
     * out += U * B with U upper triangular (BLAS TRMM, left upper,
     * out-of-place): composed from matrix-update calls over row
     * blocks, skipping the zero block triangle. U's square storage
     * must hold zeros below the diagonal (only the triangle is
     * mathematically read, but diagonal blocks stream as full tiles).
     */
    void trmmLeftUpper(const MatRef &out, const MatRef &u,
                       const MatRef &b);

    /**
     * C += A * A^T (negate: C -= A * A^T) on the lower block triangle
     * (BLAS SYRK). Strictly upper off-diagonal blocks are untouched;
     * the upper parts of diagonal blocks receive their (correct,
     * symmetric) updates. A^T is streamed directly from A's storage
     * through transposed regions.
     */
    void syrkLower(const MatRef &c, const MatRef &a,
                   bool negate = false);

    /**
     * In-place Cholesky factorization A = L L^T of a symmetric
     * positive-definite matrix (only the lower triangle is read and
     * written) — section 2.1's "Cholesky decomposition" via the same
     * block recursion as LU: factor A11, A21 <- A21 * L11^-T (TRSM
     * against the transposed triangle), A22 -= A21 * A21^T (SYRK),
     * recurse on A22. Leaves run on cell 0 with sqrt/reciprocal round
     * trips through the host.
     */
    void cholesky(const MatRef &a);

    /**
     * In-place LU factorization without pivoting, the fig. 7 recursive
     * block algorithm. Leaf factorizations run on cell 0; the three
     * block updates use the full coprocessor.
     */
    void lu(const MatRef &a);

    /** Enqueue every emitted descriptor into the host and clear. */
    void commit();

    /** Ops emitted and not yet committed. */
    const std::vector<host::HostOp> &pending() const { return ops; }

    /** Move the pending descriptors out instead of committing them. */
    std::vector<host::HostOp>
    takeOps()
    {
        std::vector<host::HostOp> out = std::move(ops);
        ops.clear();
        return out;
    }

    const PlanStats &stats() const { return planStats; }

    /** Largest n with n*n <= Tf: the LU leaf bound. */
    std::size_t luLeafMax() const;

    /** Cells this planner distributes work across. */
    unsigned numCells() const { return unsigned(cellIds.size()); }

  private:
    /** Physical cell id of logical cell @p cc. */
    unsigned cellId(unsigned cc) const { return cellIds[cc]; }

    /** Host-bus mask bit of logical cell @p cc. */
    std::uint32_t cellBit(unsigned cc) const { return 1u << cellIds[cc]; }

    void luRecurse(const MatRef &a, std::size_t recips);
    void luLeaf(const MatRef &a, std::size_t recips);
    void cholRecurse(const MatRef &a, std::size_t recips);
    void cholLeaf(const MatRef &a, std::size_t recips);
    void trsmRightUpperLeaf(const MatRef &a, const MatRef &u,
                            std::size_t recips, bool u_transposed);
    void trsmLeftUnitLowerLeaf(const MatRef &l, const MatRef &a);
    void matUpdateTile(const MatRef &c, const MatRef &a, const MatRef &b,
                       bool negate, bool b_transposed,
                       bool a_transposed);

    copro::Coprocessor &sys;
    std::vector<unsigned> cellIds; //!< logical -> physical cell map
    std::vector<host::HostOp> ops;
    PlanStats planStats;
    std::size_t oneAddr;  //!< host scratch holding the constant 1.0f
};

} // namespace opac::planner

#endif // OPAC_PLANNER_LINALG_PLAN_HH
