/**
 * @file
 * Chunk decomposition of a column-major tile across cells.
 *
 * The paper gives each cell N^2/P contiguous words of the result tile
 * (so chunks may start and end mid-column); the matrix-update microcode
 * consumes a chunk as head partial column + full columns + tail partial
 * column, with the reby queue rotated to the chunk's first row. These
 * helpers compute that geometry; they are pure functions, property-
 * tested in tests/test_planner.cc.
 */

#ifndef OPAC_PLANNER_CHUNKING_HH
#define OPAC_PLANNER_CHUNKING_HH

#include <cstddef>
#include <vector>

namespace opac::planner
{

/** One cell's share of a tile: a contiguous word range [w0, w1). */
struct Chunk
{
    std::size_t w0;
    std::size_t w1;

    std::size_t words() const { return w1 - w0; }
};

/** The head/full/tail segment decomposition of a chunk. */
struct Segments
{
    std::size_t rot;      //!< first row index (reby rotation)
    std::size_t head;     //!< words in the leading partial column
    std::size_t col0;     //!< first column touched
    std::size_t fullCol0; //!< first full column
    std::size_t full;     //!< number of full columns
    std::size_t tail;     //!< words in the trailing partial column
    std::size_t tailCol;  //!< column of the tail segment
    std::size_t colCount; //!< distinct columns touched
};

/** Decompose chunk @p ch of a tile with @p mb rows into segments. */
Segments splitChunk(const Chunk &ch, std::size_t mb);

/** Evenly split @p total words into @p parts contiguous chunks. */
std::vector<Chunk> splitWords(std::size_t total, unsigned parts);

} // namespace opac::planner

#endif // OPAC_PLANNER_CHUNKING_HH
