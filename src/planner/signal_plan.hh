/**
 * @file
 * Host-side planners for the signal-processing kernels: blocked 2-D
 * convolution (fig. 6), 1-D correlation and batched FFTs.
 */

#ifndef OPAC_PLANNER_SIGNAL_PLAN_HH
#define OPAC_PLANNER_SIGNAL_PLAN_HH

#include <complex>
#include <vector>

#include "coproc/coprocessor.hh"
#include "planner/matref.hh"

namespace opac::planner
{

/** Geometry of a planned 2-D convolution (inspected by benches). */
struct ConvGeometry
{
    std::size_t wu = 0;        //!< useful output columns per block
    std::size_t wi = 0;        //!< input columns per block (wu + q - 1)
    std::size_t blocks = 0;    //!< number of column blocks
    std::size_t waves = 0;     //!< sequential waves of P blocks
    std::size_t usefulMas = 0; //!< p*q per output element
};

/** Planner for the signal kernels. */
class SignalPlanner
{
  public:
    /** Plan onto every cell of @p sys. */
    explicit SignalPlanner(copro::Coprocessor &sys);

    /**
     * Plan onto the subset of cells in @p cell_mask only (logical ->
     * physical mapping in ascending order; see LinalgPlanner).
     */
    SignalPlanner(copro::Coprocessor &sys, std::uint32_t cell_mask);

    /**
     * 2-D p x q correlation of an N x M image.
     *
     * @p image_t is the *transposed padded* input in host memory:
     * (M + q - 1) x (N + p) column-major, column r holding padded
     * input row r (real image rows 0..N-1, then p zero rows; q-1 zero
     * columns at the right edge of each row). @p out_t is the M x N
     * transposed output. @p weights is a p x q matrix in host memory
     * (row-major flattened at weights.base is not assumed — a MatRef).
     *
     * Installs a generated conv2d program under a fresh entry id,
     * splits the M output columns into blocks of at most
     * (Tf - q) / p - (q - 1) useful columns (the paper's sizing rule),
     * and distributes blocks round-robin over the P cells.
     */
    ConvGeometry conv2d(const MatRef &image_t, const MatRef &weights,
                        const MatRef &out_t, std::size_t n_rows,
                        std::size_t m_cols);

    /**
     * 1-D correlation: out[d] = sum_i x[i] * y[i+d], d in [0, lags).
     * x, y and out are host-memory vectors (y of length |x| + lags -
     * 1). Lags are partitioned across the P cells.
     */
    void correlation(std::size_t x_base, std::size_t nx,
                     std::size_t y_base, std::size_t lags,
                     std::size_t out_base);

    /**
     * Batched forward FFTs of size n (power of two >= 4, n <=
     * 2*Tf/3): each of the @p batch complex vectors (interleaved
     * re/im, 2n words) at in_base + b*2n is transformed into out_base
     * + b*2n (natural order). Batches are dealt round-robin to cells.
     */
    /** @p pipelined selects the 2-way interleaved butterfly (n >= 8). */
    void fft(std::size_t in_base, std::size_t out_base,
             std::size_t n, std::size_t batch, bool pipelined = false);

    /**
     * Batched FFTs with the stage-major twiddle table resident in each
     * cell's reby queue (broadcast once): host traffic drops to 4n
     * words per transform, the paper's 5 log2(n)/4 operations per
     * access. Requires n * log2(n) <= Tf.
     */
    void fftResident(std::size_t in_base, std::size_t out_base,
                     std::size_t n, std::size_t batch);

    /**
     * y += A x on one cell (bandwidth-bound contrast; section 4.1):
     * A is an m x n MatRef, x and y are host vectors.
     */
    void gemv(const MatRef &a, std::size_t x_base, std::size_t y_base);

    /** Enqueue every emitted descriptor into the host and clear. */
    void commit();

    const std::vector<host::HostOp> &pending() const { return ops; }

    /** Move the pending descriptors out instead of committing them. */
    std::vector<host::HostOp>
    takeOps()
    {
        std::vector<host::HostOp> out = std::move(ops);
        ops.clear();
        return out;
    }

    /** Cells this planner distributes work across. */
    unsigned numCells() const { return unsigned(cellIds.size()); }

  private:
    unsigned cellId(unsigned cc) const { return cellIds[cc]; }
    std::uint32_t cellBit(unsigned cc) const { return 1u << cellIds[cc]; }

    copro::Coprocessor &sys;
    std::vector<unsigned> cellIds; //!< logical -> physical cell map
    std::vector<host::HostOp> ops;
    Word nextConvEntry;
};

} // namespace opac::planner

#endif // OPAC_PLANNER_SIGNAL_PLAN_HH
