#include "planner/signal_plan.hh"

#include <cmath>

#include "common/math_util.hh"
#include "kernels/conv2d.hh"
#include "kernels/correlation.hh"
#include "kernels/entries.hh"
#include "kernels/fft.hh"

namespace opac::planner
{

using host::HostOp;
using host::Region;

SignalPlanner::SignalPlanner(copro::Coprocessor &sys)
    : SignalPlanner(sys, copro::allCellsMask(sys.numCells()))
{}

SignalPlanner::SignalPlanner(copro::Coprocessor &sys,
                             std::uint32_t cell_mask)
    : sys(sys), nextConvEntry(kernels::entries::conv2dBase)
{
    for (unsigned c = 0; c < sys.numCells(); ++c) {
        if (cell_mask & (1u << c))
            cellIds.push_back(c);
    }
    opac_assert(!cellIds.empty(), "planner with no usable cells");
}

void
SignalPlanner::commit()
{
    sys.host().enqueue(ops);
    ops.clear();
}

ConvGeometry
SignalPlanner::conv2d(const MatRef &image_t, const MatRef &weights,
                      const MatRef &out_t, std::size_t n_rows,
                      std::size_t m_cols)
{
    const unsigned p = unsigned(weights.rows);
    const unsigned q = unsigned(weights.cols);
    const std::size_t tf = sys.config().cell.tf;
    const unsigned cells = numCells();

    opac_assert(image_t.rows >= m_cols + q - 1
                && image_t.cols >= n_rows + p,
                "padded transposed image too small: %zux%zu for "
                "%zux%zu image with %ux%u weights", image_t.rows,
                image_t.cols, n_rows, m_cols, p, q);

    // The paper's sizing rule: p output rows of the block plus q words
    // must fit the sum queue.
    opac_assert(tf > std::size_t(p) * q + q, "Tf too small for conv2d");
    std::size_t wu_max = (tf - q) / p - (q - 1);
    ConvGeometry geom;
    // Blocks no wider than the FIFO sizing rule allows, and no wider
    // than an even split across the P cells (the paper's 1024/16 = 64
    // columns per cell at P = 16).
    std::size_t even = ceilDiv(std::int64_t(m_cols),
                               std::int64_t(cells));
    geom.wu = std::min({m_cols, wu_max, std::size_t(even)});
    geom.wi = geom.wu + q - 1;
    geom.blocks = ceilDiv(std::int64_t(m_cols), std::int64_t(geom.wu));
    geom.waves = ceilDiv(std::int64_t(geom.blocks),
                         std::int64_t(cells));
    geom.usefulMas = n_rows * m_cols * p * q;

    // Generate and install the microcode for this (p, q).
    const Word entry = nextConvEntry++;
    sys.loadMicrocode(entry, kernels::buildConv2d(p, q),
                      kernels::conv2dParams);

    // Warm-up emissions land in scratch.
    std::size_t scratch = sys.memory().alloc(geom.wu);

    const std::size_t iters = n_rows + p - 1;
    for (std::size_t wave = 0; wave < geom.waves; ++wave) {
        std::uint32_t active = 0;
        std::vector<std::size_t> c0(cells, 0), bw(cells, 0);
        for (unsigned cc = 0; cc < cells; ++cc) {
            std::size_t blk = wave * cells + cc;
            if (blk >= geom.blocks)
                continue;
            active |= cellBit(cc);
            c0[cc] = blk * geom.wu;
            bw[cc] = std::min(geom.wu, m_cols - c0[cc]);
        }

        for (unsigned cc = 0; cc < cells; ++cc) {
            if (!(active & (cellBit(cc))))
                continue;
            std::size_t wi_c = bw[cc] + q - 1;
            ops.push_back(host::callOp(
                cellBit(cc), entry,
                {std::int32_t(iters), std::int32_t(wi_c),
                 std::int32_t(bw[cc])}));
        }
        // Weights, broadcast row-major (the register order w(i, j) =
        // r[i*q+j]).
        for (unsigned i = 0; i < p; ++i) {
            ops.push_back(host::sendOp(
                active, Region::strided(weights.addrOf(i, 0), q,
                                        weights.ld)));
        }
        // First row slice per cell.
        for (unsigned cc = 0; cc < cells; ++cc) {
            if (active & (cellBit(cc))) {
                ops.push_back(host::sendOp(
                    cellBit(cc), Region::vec(image_t.addrOf(c0[cc], 0),
                                          bw[cc] + q - 1)));
            }
        }
        // Pipelined row streaming and result collection.
        for (std::size_t r = 0; r < iters; ++r) {
            for (unsigned cc = 0; cc < cells; ++cc) {
                if (active & (cellBit(cc))) {
                    ops.push_back(host::sendOp(
                        cellBit(cc),
                        Region::vec(image_t.addrOf(c0[cc], r + 1),
                                    bw[cc] + q - 1)));
                }
            }
            for (unsigned cc = 0; cc < cells; ++cc) {
                if (!(active & (cellBit(cc))))
                    continue;
                if (r < std::size_t(p) - 1) {
                    ops.push_back(host::recvOp(
                        cellId(cc), Region::vec(scratch, bw[cc])));
                } else {
                    ops.push_back(host::recvOp(
                        cellId(cc), Region::vec(out_t.addrOf(c0[cc],
                                                     r - (p - 1)),
                                        bw[cc])));
                }
            }
        }
    }
    return geom;
}

void
SignalPlanner::correlation(std::size_t x_base, std::size_t nx,
                           std::size_t y_base, std::size_t lags,
                           std::size_t out_base)
{
    const unsigned cells = numCells();
    host::HostMemory &mem = sys.memory();

    // Partition the lags across cells; each cell receives its own
    // interleaved stream built in scratch memory (address generation is
    // free in the tau model; every word transfer is paid).
    std::size_t d0 = 0;
    for (unsigned cc = 0; cc < cells && d0 < lags; ++cc) {
        std::size_t dc = lags / cells + (cc < lags % cells ? 1 : 0);
        if (dc == 0)
            continue;
        // Stream: y[d0 .. d0+g-1], x[0], then per i: y[d0+i+g], x[i+1]
        // with zero pads past the end of each input. The prologue size
        // g = max(dc-1, 1) keeps the window queue ordered (see
        // kernels/correlation.hh).
        std::size_t g = dc > 1 ? dc - 1 : 1;
        std::size_t len = g + 1 + 2 * nx;
        std::size_t s = mem.alloc(len);
        std::size_t at = s;
        auto y_at = [&](std::size_t idx) {
            // y index space: valid [0, nx + lags - 1); pads are zero.
            return idx < nx + lags - 1 ? mem.load(y_base + idx)
                                       : floatToWord(0.0f);
        };
        for (std::size_t d = 0; d < g; ++d)
            mem.store(at++, y_at(d0 + d));
        mem.store(at++, mem.load(x_base));
        for (std::size_t i = 0; i < nx; ++i) {
            mem.store(at++, y_at(d0 + i + g));
            mem.store(at++, i + 1 < nx ? mem.load(x_base + i + 1)
                                       : floatToWord(0.0f));
        }
        ops.push_back(host::callOp(
            cellBit(cc), kernels::entries::correlation,
            {std::int32_t(dc), std::int32_t(nx), std::int32_t(dc - 1),
             std::int32_t(g)}));
        ops.push_back(host::sendOp(cellBit(cc), Region::vec(s, len)));
        ops.push_back(host::recvOp(cellId(cc),
                                   Region::vec(out_base + d0, dc)));
        d0 += dc;
    }
}

void
SignalPlanner::fft(std::size_t in_base, std::size_t out_base,
                   std::size_t n, std::size_t batch, bool pipelined)
{
    opac_assert(isPow2(std::int64_t(n)) && n >= 4,
                "fft size %zu must be a power of two >= 4", n);
    opac_assert(!pipelined || n >= 8,
                "pipelined fft needs n >= 8 (butterfly pairs)");
    opac_assert(3 * n <= 2 * sys.config().cell.tf,
                "fft size %zu exceeds 2*Tf/3", n);
    const unsigned m = unsigned(floorLog2(std::int64_t(n)));
    host::HostMemory &mem = sys.memory();
    const unsigned cells = numCells();

    // Twiddle table, stage-major, butterfly order (shared by batches).
    std::size_t twiddles = mem.alloc(m * n);
    std::size_t at = twiddles;
    for (unsigned s = 0; s < m; ++s) {
        for (std::size_t i = 0; i < n / 2; ++i) {
            double ang = -2.0 * M_PI
                * double(kernels::fftTwiddleExponent(s, i, m))
                / double(n);
            mem.storeF(at++, float(std::cos(ang)));
            mem.storeF(at++, float(std::sin(ang)));
        }
    }

    // Waves of up to P concurrent transforms: all sends of a wave go
    // out before its receives, so the cells overlap.
    for (std::size_t w0 = 0; w0 < batch; w0 += cells) {
        std::size_t in_wave = std::min<std::size_t>(cells, batch - w0);
        for (std::size_t k = 0; k < in_wave; ++k) {
            std::size_t bb = w0 + k;
            unsigned cc = unsigned(k);
            // Bit-reversed input copy (address generation is free; the
            // transfer is paid).
            std::size_t rev = mem.alloc(2 * n);
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t r = kernels::bitReverse(i, m);
                mem.store(rev + 2 * i,
                          mem.load(in_base + bb * 2 * n + 2 * r));
                mem.store(rev + 2 * i + 1,
                          mem.load(in_base + bb * 2 * n + 2 * r + 1));
            }
            if (pipelined) {
                ops.push_back(host::callOp(
                    cellBit(cc), kernels::entries::fftFast,
                    {std::int32_t(m), std::int32_t(n / 8),
                     std::int32_t(n)}));
            } else {
                ops.push_back(host::callOp(
                    cellBit(cc), kernels::entries::fft,
                    {std::int32_t(m), std::int32_t(n / 4),
                     std::int32_t(n)}));
            }
            ops.push_back(host::sendOp(cellBit(cc),
                                       Region::vec(rev, 2 * n)));
            ops.push_back(host::sendOp(cellBit(cc),
                                       Region::vec(twiddles, m * n)));
        }
        for (std::size_t k = 0; k < in_wave; ++k) {
            std::size_t bb = w0 + k;
            ops.push_back(host::recvOp(
                cellId(unsigned(k)), Region::vec(out_base + bb * 2 * n,
                                         2 * n)));
        }
    }
}

void
SignalPlanner::fftResident(std::size_t in_base, std::size_t out_base,
                           std::size_t n, std::size_t batch)
{
    opac_assert(isPow2(std::int64_t(n)) && n >= 4,
                "fft size %zu must be a power of two >= 4", n);
    const unsigned m = unsigned(floorLog2(std::int64_t(n)));
    opac_assert(m * n <= sys.config().cell.tf,
                "twiddle table %zu words exceeds Tf", std::size_t(m) * n);
    host::HostMemory &mem = sys.memory();
    const unsigned cells = numCells();

    std::size_t twiddles = mem.alloc(m * n);
    std::size_t at = twiddles;
    for (unsigned s = 0; s < m; ++s) {
        for (std::size_t i = 0; i < n / 2; ++i) {
            double ang = -2.0 * M_PI
                * double(kernels::fftTwiddleExponent(s, i, m))
                / double(n);
            mem.storeF(at++, float(std::cos(ang)));
            mem.storeF(at++, float(std::sin(ang)));
        }
    }

    // Batch split across cells; one call per active cell, the table
    // broadcast once.
    std::uint32_t active = 0;
    std::vector<std::size_t> count(cells, 0);
    for (std::size_t bb = 0; bb < batch; ++bb)
        ++count[bb % cells];
    for (unsigned cc = 0; cc < cells; ++cc) {
        if (count[cc] == 0)
            continue;
        active |= cellBit(cc);
        ops.push_back(host::callOp(
            cellBit(cc), kernels::entries::fftBatch,
            {std::int32_t(m), std::int32_t(n / 4), std::int32_t(n),
             std::int32_t(count[cc]), std::int32_t(m * n)}));
    }
    ops.push_back(host::sendOp(active, Region::vec(twiddles, m * n)));

    // Waves of one batch per cell: sends, then receives.
    for (std::size_t w0 = 0; w0 < batch; w0 += cells) {
        std::size_t in_wave = std::min<std::size_t>(cells, batch - w0);
        for (std::size_t k = 0; k < in_wave; ++k) {
            std::size_t bb = w0 + k;
            std::size_t rev = mem.alloc(2 * n);
            for (std::size_t i = 0; i < n; ++i) {
                std::size_t r = kernels::bitReverse(i, m);
                mem.store(rev + 2 * i,
                          mem.load(in_base + bb * 2 * n + 2 * r));
                mem.store(rev + 2 * i + 1,
                          mem.load(in_base + bb * 2 * n + 2 * r + 1));
            }
            ops.push_back(host::sendOp(cellBit(unsigned(k)),
                                       Region::vec(rev, 2 * n)));
        }
        for (std::size_t k = 0; k < in_wave; ++k) {
            std::size_t bb = w0 + k;
            ops.push_back(host::recvOp(
                cellId(unsigned(k)), Region::vec(out_base + bb * 2 * n,
                                         2 * n)));
        }
    }
}

void
SignalPlanner::gemv(const MatRef &a, std::size_t x_base,
                    std::size_t y_base)
{
    const std::size_t m = a.rows;
    const std::size_t n = a.cols;
    opac_assert(m <= sys.config().cell.tf, "gemv rows exceed Tf");
    ops.push_back(host::callOp(cellBit(0), kernels::entries::gemv,
                               {std::int32_t(m), std::int32_t(n)}));
    ops.push_back(host::sendOp(cellBit(0), Region::vec(y_base, m)));
    for (std::size_t j = 0; j < n; ++j) {
        ops.push_back(host::sendOp(cellBit(0), Region::vec(x_base + j, 1)));
        ops.push_back(host::sendOp(cellBit(0), Region::vec(a.addrOf(0, j), m)));
    }
    ops.push_back(host::recvOp(cellId(0), Region::vec(y_base, m)));
}

} // namespace opac::planner
