/**
 * @file
 * Cycle-timed FIFO queue — the central storage element of OPAC.
 *
 * OPAC uses FIFO queues both as host/cell interfaces and as the cell's
 * local memory (queues sum, ret, reby), implicitly addressed with stride
 * one. This model captures:
 *
 *  - finite capacity (the paper's Tf parameter),
 *  - fall-through latency: a word pushed at cycle t is poppable at
 *    t + latency (the prototype's FIFO RAMs had a two-cycle fall-through;
 *    default here is 1),
 *  - reservations: the cell reserves an output slot at instruction issue
 *    so a value emerging from the FP pipeline several cycles later is
 *    guaranteed space — the mechanism that lets issue logic treat
 *    "destination full" as an issue-time hazard,
 *  - reset (the paper's "Reset of FIFO queue reby"),
 *  - occupancy and traffic statistics.
 */

#ifndef OPAC_FIFO_TIMED_FIFO_HH
#define OPAC_FIFO_TIMED_FIFO_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "fault/fault.hh"
#include "sim/engine.hh"
#include "sim/replay.hh"
#include "stats/stats.hh"
#include "common/types.hh"
#include "trace/trace.hh"

namespace opac
{

/** A finite, cycle-timed FIFO queue of 32-bit words. */
class TimedFifo
{
  public:
    /**
     * @param name     Instance name (for stats and error messages).
     * @param capacity Maximum number of words held (the paper's Tf).
     * @param latency  Cycles between push and earliest pop of a word.
     */
    TimedFifo(std::string name, std::size_t capacity,
              unsigned latency = 1);

    const std::string &name() const { return _name; }
    std::size_t capacity() const { return _capacity; }

    /** Words currently stored (including not-yet-visible ones). */
    std::size_t size() const { return count; }

    /** True if no words are stored (reservations do not count). */
    bool empty() const { return count == 0; }

    /** Free slots, after stored words and outstanding reservations. */
    std::size_t space() const;

    /** True if a word can be popped at cycle @p now. */
    bool canPop(Cycle now) const
    {
        return count != 0 && ring[head].ready <= now;
    }

    /**
     * The cycle at which the front word becomes poppable, for the
     * engine's idle-cycle skipping. cycleNever when the queue is empty
     * or the front became poppable strictly before @p now (the shared
     * front-ready wake rule, sim::frontReadyHint): a consumer that saw
     * the ready front last round and still stalled will not be woken
     * by it. ready == now counts — the front was not poppable in the
     * round before @p now, so the round at @p now is the wake-up.
     */
    Cycle
    nextReadyAt(Cycle now) const
    {
        if (count == 0)
            return cycleNever;
        return sim::frontReadyHint(ring[head].ready, now);
    }

    /** True if a word can be pushed (space for one more). */
    bool canPush() const { return space() > 0; }

    /** Push a word at cycle @p now; requires canPush(). */
    void push(Word w, Cycle now);

    /**
     * Reserve one slot for a future pushReserved(). Requires space().
     * Used by the cell at issue time for in-flight pipeline results.
     */
    void reserve();

    /** Number of outstanding reservations. */
    std::size_t reservedSlots() const { return _reserved; }

    /** Push into a previously reserved slot. */
    void pushReserved(Word w, Cycle now);

    /** Pop the front word; requires canPop(now). */
    Word pop(Cycle now);

    /**
     * Pop the front word and repush it in the same cycle (the cell's
     * combinational head-to-tail loop-back for reuse reads). Unlike a
     * pop + push pair this cannot be blocked by outstanding
     * reservations, and it traces as one recirculation event.
     * Requires canPop(now).
     */
    Word recirculate(Cycle now);

    /** Read the front word without popping; requires canPop(now). */
    Word front(Cycle now) const;

    /**
     * Discard all contents and reservations (the RESET control line).
     * @p now is only used to timestamp the trace event.
     */
    void reset(Cycle now = 0);

    /** Record @p n identical occupancy samples (typically 1/cycle). */
    void
    sampleOccupancy(std::uint64_t n = 1)
    {
        occupancy.sample(double(count), n);
    }

    /**
     * Record @p n occupancy samples of a *past* occupancy @p value.
     * The superop fast tier batches runs of bulk-executed cycles over
     * which the occupancy did not change and flushes each run in one
     * call after the count has already moved on — byte-identical to n
     * per-cycle sampleOccupancy() calls made while the count was
     * @p value. Watermark and push/pop counters are unaffected: the
     * fast tier mutates the queue through the ordinary push/pop
     * operations, which keep those exact on their own.
     */
    void
    sampleOccupancyRun(std::size_t value, std::uint64_t n)
    {
        occupancy.sample(double(value), n);
    }

    // --- superop fast-tier streaming (src/cell/fast_tier.cc) -------

    /**
     * True when the fast tier's specialized executor may bypass this
     * queue's per-call bookkeeping for a burst window starting at
     * @p from: plain words (parity Off, so stored check bits are 0 and
     * reads verify nothing), no tracer, no armed injector fault, and
     * every stored entry already fallen through by @p from. The last
     * condition checks only the newest entry: `ready` is nondecreasing
     * along the ring because every mutator stamps `now + latency` with
     * nondecreasing `now`. `count >= latency` additionally guarantees
     * that a word pushed mid-window is ready again by the time the
     * steady one-push-one-pop rotation returns to it.
     */
    bool
    streamable(Cycle from) const
    {
        return parityMode == fault::ParityMode::Off && !tracer
               && pendingCorrupt == 0 && !pendingReorder
               && count >= latency && count != 0
               && ring[(head + count - 1) & mask].ready <= from;
    }

    /**
     * One steady fast-tier cycle on a queue that takes one writeback
     * and loses one word per cycle: pushReserved(@p landed, @p now)
     * followed by pop(now), with occupancy, reservations, tracing and
     * protection all invariant (the caller checked streamable()).
     * Counters are settled afterwards by streamCommit().
     */
    Word
    streamExchange(Word landed, Cycle now)
    {
        ring[(head + count) & mask] = Entry{landed, now + latency, 0};
        Word w = ring[head].word;
        head = (head + 1) & mask;
        return w;
    }

    /** Steady fast-tier recirculate: head-to-tail rotate with the
     *  re-timestamp recirculate() applies. */
    Word
    streamRotate(Cycle now)
    {
        Word w = ring[head].word;
        head = (head + 1) & mask;
        ring[(head + count - 1) & mask] = Entry{w, now + latency, 0};
        return w;
    }

    /**
     * Settle the counters for @p n streamed cycles of one push plus
     * one pop each. @p observe_high replays the per-push watermark
     * observation of streamExchange() cycles (the push lands before
     * the pop, so every push saw depth count + 1); streamRotate()
     * cycles pass false — recirculate() never observes the watermark.
     */
    void
    streamCommit(std::uint64_t n, bool observe_high)
    {
        pushes += n;
        pops += n;
        if (observe_high)
            highWaterMark.observe(count + 1);
    }

    /** Register this FIFO's stats under @p parent. */
    void addStats(stats::StatGroup &parent);

    /**
     * Start emitting push/pop/recirculate/reset events into @p t as a
     * track of component @p comp. Pass nullptr to stop tracing.
     */
    void attachTracer(trace::Tracer *t, std::uint16_t comp);

    /**
     * Register the engine components to wake ahead of every mutation
     * of this queue: the component whose state this queue is part of
     * (@p owner) and the component on the other end of the link
     * (@p neighbor, null for cell-internal queues). Either may be
     * sleeping under the event engine with a wake hint computed from
     * this queue's current state; notifying them *before* the
     * mutation lets the engine replay their slept-through cycles
     * against exactly that state. Near-free when the event scheduler
     * is not active.
     */
    void
    setWakeTargets(sim::Component *owner, sim::Component *neighbor)
    {
        wakeOwner = owner;
        wakeNeighbor = neighbor;
    }

    /** Lifetime totals, usable without a StatGroup. */
    std::uint64_t totalPushes() const { return pushes.value(); }
    std::uint64_t totalPops() const { return pops.value(); }

    /** Deepest occupancy ever reached (exact, tracked at each push). */
    std::uint64_t highWater() const { return highWaterMark.value(); }

    // --- word protection (fault detection / correction) ------------

    /**
     * Select the protection level for words stored here. Off stores
     * bare words (the fast path); Detect/Correct compute SECDED check
     * bits at push and verify them at pop/recirculate.
     */
    void setParity(fault::ParityMode m) { parityMode = m; }
    fault::ParityMode parity() const { return parityMode; }

    /**
     * Called (with the current cycle) whenever protection notices an
     * error it cannot silently repair: any error in Detect mode, a
     * double-bit error in Correct mode, or an applied reorder fault
     * (caught by the modeled link-layer sequence tags). The owner of
     * the queue uses this to flag the attached cell as faulted.
     */
    using FaultHandler = std::function<void(Cycle)>;
    void setProtectionHandler(FaultHandler fn)
    {
        protHandler = std::move(fn);
    }

    // --- fault-injection hooks (driven by fault::Injector) ---------

    /**
     * XOR @p xor_mask into the stored front word, or into the next
     * word pushed when the queue is empty. Models a bit flip in the
     * FIFO RAM: the check bits keep their original value, so
     * protection sees a mismatch at pop.
     */
    void faultCorrupt(Word xor_mask, Cycle now);

    /**
     * Swap the two newest stored words (or the next two pushed when
     * fewer than two are stored). With protection on, the link-layer
     * sequence check reports the reorder through the protection
     * handler at the cycle it happens.
     */
    void faultReorder(Cycle now);

    // --- snapshot / restore ----------------------------------------

    /**
     * Serialize the stored words (in pop order, with fall-through
     * timestamps and check bits), outstanding reservations, and any
     * armed-but-unapplied fault state. Registered statistics travel
     * with the owning stats tree, not here.
     */
    void saveState(snap::Writer &w) const;

    /**
     * Restore state saved by saveState() into a freshly constructed
     * queue of the same capacity/latency. The ring is repacked from
     * index 0 — the head position is not architectural.
     */
    void loadState(snap::Reader &r);

    std::uint64_t totalFaultsInjected() const
    {
        return faultsInjected.value();
    }
    std::uint64_t totalParityCorrected() const
    {
        return parityCorrected.value();
    }
    std::uint64_t totalParityDetected() const
    {
        return parityDetected.value();
    }

  private:
    struct Entry
    {
        Word word;
        Cycle ready;
        std::uint8_t ecc;
    };

    /** Verify a stored word against its check bits at read time. */
    Word checkProtected(Word w, std::uint8_t ecc, Cycle now);

    /** Check bits for @p w under the current parity mode. */
    std::uint8_t
    encodeWord(Word w) const
    {
        return parityMode != fault::ParityMode::Off
                   ? fault::secdedEncode(w)
                   : std::uint8_t(0);
    }

    /** Apply armed corrupt/reorder faults to freshly pushed words. */
    void applyPendingFaults(Cycle now);

    /** Wake both endpoints; called at the top of every mutator. */
    void
    notifyMutation()
    {
        if (wakeOwner)
            wakeOwner->wakeForMutation();
        if (wakeNeighbor)
            wakeNeighbor->wakeForMutation();
    }

    sim::Component *wakeOwner = nullptr;
    sim::Component *wakeNeighbor = nullptr;

    std::string _name;
    std::size_t _capacity;
    unsigned latency;
    std::size_t _reserved = 0;

    // Fixed-capacity ring buffer, sized (to a power of two) at
    // construction: no per-push allocation on the simulator hot path.
    // count <= _capacity is enforced by the push/reserve assertions.
    std::vector<Entry> ring;
    std::size_t mask = 0;  //!< ring.size() - 1
    std::size_t head = 0;  //!< index of the front entry
    std::size_t count = 0; //!< entries stored

    trace::Tracer *tracer = nullptr;
    std::uint16_t traceComp = 0;
    std::uint16_t traceTrack = 0;

    fault::ParityMode parityMode = fault::ParityMode::Off;
    FaultHandler protHandler;
    Word pendingCorrupt = 0;     //!< XOR mask armed for the next push
    bool pendingReorder = false; //!< swap armed for the next two pushes

    stats::Counter pushes;
    stats::Counter pops;
    stats::Counter resets;
    stats::Counter faultsInjected;
    stats::Counter parityCorrected;
    stats::Counter parityDetected;
    stats::Watermark highWaterMark;
    stats::Distribution occupancy;
};

} // namespace opac

#endif // OPAC_FIFO_TIMED_FIFO_HH
