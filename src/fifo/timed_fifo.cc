#include "fifo/timed_fifo.hh"

#include <bit>
#include <utility>

#include "common/logging.hh"
#include "snap/snapshot.hh"

namespace opac
{

TimedFifo::TimedFifo(std::string name, std::size_t capacity,
                     unsigned latency)
    : _name(std::move(name)), _capacity(capacity), latency(latency)
{
    opac_assert(capacity > 0, "FIFO '%s' with zero capacity",
                _name.c_str());
    ring.resize(std::bit_ceil(capacity));
    mask = ring.size() - 1;
}

std::size_t
TimedFifo::space() const
{
    std::size_t used = count + _reserved;
    return used >= _capacity ? 0 : _capacity - used;
}

void
TimedFifo::push(Word w, Cycle now)
{
    opac_assert(space() > 0, "push on full FIFO '%s' (cap %zu)",
                _name.c_str(), _capacity);
    notifyMutation();
    ring[(head + count) & mask] = Entry{w, now + latency, encodeWord(w)};
    ++count;
    ++pushes;
    highWaterMark.observe(count);
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPush, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    if (pendingCorrupt != 0 || pendingReorder)
        applyPendingFaults(now);
}

void
TimedFifo::reserve()
{
    opac_assert(space() > 0, "reserve on full FIFO '%s'", _name.c_str());
    notifyMutation();
    ++_reserved;
}

void
TimedFifo::pushReserved(Word w, Cycle now)
{
    opac_assert(_reserved > 0, "pushReserved without reservation on '%s'",
                _name.c_str());
    notifyMutation();
    --_reserved;
    ring[(head + count) & mask] = Entry{w, now + latency, encodeWord(w)};
    ++count;
    ++pushes;
    highWaterMark.observe(count);
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPush, 1, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    if (pendingCorrupt != 0 || pendingReorder)
        applyPendingFaults(now);
}

Word
TimedFifo::pop(Cycle now)
{
    opac_assert(canPop(now), "pop on empty/not-ready FIFO '%s'",
                _name.c_str());
    notifyMutation();
    Word w = ring[head].word;
    if (parityMode != fault::ParityMode::Off)
        w = checkProtected(w, ring[head].ecc, now);
    head = (head + 1) & mask;
    --count;
    ++pops;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPop, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    return w;
}

Word
TimedFifo::recirculate(Cycle now)
{
    opac_assert(canPop(now), "recirculate on empty/not-ready FIFO '%s'",
                _name.c_str());
    notifyMutation();
    Word w = ring[head].word;
    if (parityMode != fault::ParityMode::Off)
        w = checkProtected(w, ring[head].ecc, now);
    head = (head + 1) & mask;
    ring[(head + count - 1) & mask] = Entry{w, now + latency,
                                            encodeWord(w)};
    // Counted as one pop plus one push so lifetime totals match the
    // word traffic the datapath actually performed.
    ++pops;
    ++pushes;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoRecirc, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    return w;
}

Word
TimedFifo::front(Cycle now) const
{
    opac_assert(canPop(now), "front on empty/not-ready FIFO '%s'",
                _name.c_str());
    // Peeks correct silently in Correct mode; counters and the
    // protection handler only fire on the consuming pop.
    if (parityMode == fault::ParityMode::Correct) {
        Word fixed = ring[head].word;
        if (fault::secdedDecode(fixed, ring[head].ecc)
            != fault::SecdedResult::Uncorrectable)
            return fixed;
    }
    return ring[head].word;
}

void
TimedFifo::reset(Cycle now)
{
    notifyMutation();
    std::size_t dropped = count;
    head = 0;
    count = 0;
    _reserved = 0;
    pendingCorrupt = 0;
    pendingReorder = false;
    ++resets;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoReset, 0, traceComp,
                     traceTrack, std::uint32_t(dropped), 0);
    }
}

void
TimedFifo::attachTracer(trace::Tracer *t, std::uint16_t comp)
{
    tracer = t;
    traceComp = comp;
    traceTrack = t ? t->internTrack(comp, _name) : 0;
}

void
TimedFifo::addStats(stats::StatGroup &parent)
{
    parent.addCounter(_name + ".pushes", &pushes, "words written");
    parent.addCounter(_name + ".pops", &pops, "words read");
    parent.addCounter(_name + ".resets", &resets, "reset operations");
    parent.addCounter(_name + ".faultsInjected", &faultsInjected,
                      "injected corrupt/reorder faults applied");
    parent.addCounter(_name + ".parityCorrected", &parityCorrected,
                      "single-bit errors repaired at read");
    parent.addCounter(_name + ".parityDetected", &parityDetected,
                      "errors detected but not repaired at read");
    parent.addWatermark(_name + ".highWater", &highWaterMark,
                        "deepest occupancy reached");
    parent.addDistribution(_name + ".occupancy", &occupancy,
                           "sampled words held");
}

Word
TimedFifo::checkProtected(Word w, std::uint8_t ecc, Cycle now)
{
    Word fixed = w;
    fault::SecdedResult r = fault::secdedDecode(fixed, ecc);
    if (r == fault::SecdedResult::Ok)
        return w;
    if (r == fault::SecdedResult::Corrected
        && parityMode == fault::ParityMode::Correct) {
        ++parityCorrected;
        return fixed;
    }
    // Detect mode (any error) or an uncorrectable double-bit error:
    // flag the consumer and hand back the raw word.
    ++parityDetected;
    if (protHandler)
        protHandler(now);
    return w;
}

void
TimedFifo::faultCorrupt(Word xor_mask, Cycle now)
{
    notifyMutation();
    if (count == 0) {
        pendingCorrupt ^= xor_mask;
        return;
    }
    ring[head].word ^= xor_mask;
    ++faultsInjected;
    (void)now;
}

void
TimedFifo::faultReorder(Cycle now)
{
    notifyMutation();
    if (count < 2) {
        pendingReorder = true;
        return;
    }
    Entry &a = ring[(head + count - 2) & mask];
    Entry &b = ring[(head + count - 1) & mask];
    // Swap payloads but not ready times: the same slots fall through
    // on schedule, carrying each other's word.
    std::swap(a.word, b.word);
    std::swap(a.ecc, b.ecc);
    ++faultsInjected;
    if (parityMode != fault::ParityMode::Off && protHandler)
        protHandler(now);
}

void
TimedFifo::saveState(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(count));
    for (std::size_t i = 0; i < count; ++i) {
        const Entry &e = ring[(head + i) & mask];
        w.u32(e.word);
        w.u64(e.ready);
        w.u8(e.ecc);
    }
    w.u32(static_cast<std::uint32_t>(_reserved));
    w.u32(pendingCorrupt);
    w.b(pendingReorder);
}

void
TimedFifo::loadState(snap::Reader &r)
{
    std::uint32_t n = r.u32();
    if (n > _capacity)
        r.fail("FIFO '" + _name + "': snapshot holds " +
               std::to_string(n) + " words, capacity is " +
               std::to_string(_capacity));
    head = 0;
    count = n;
    for (std::uint32_t i = 0; i < n; ++i) {
        Entry &e = ring[i];
        e.word = r.u32();
        e.ready = r.u64();
        e.ecc = r.u8();
    }
    std::uint32_t res = r.u32();
    if (count + res > _capacity)
        r.fail("FIFO '" + _name +
               "': stored words plus reservations exceed capacity");
    _reserved = res;
    pendingCorrupt = r.u32();
    pendingReorder = r.b();
}

void
TimedFifo::applyPendingFaults(Cycle now)
{
    if (pendingCorrupt != 0) {
        ring[(head + count - 1) & mask].word ^= pendingCorrupt;
        pendingCorrupt = 0;
        ++faultsInjected;
    }
    if (pendingReorder && count >= 2) {
        pendingReorder = false;
        faultReorder(now);
    }
}

} // namespace opac
