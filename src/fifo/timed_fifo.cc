#include "fifo/timed_fifo.hh"

#include <bit>

#include "common/logging.hh"

namespace opac
{

TimedFifo::TimedFifo(std::string name, std::size_t capacity,
                     unsigned latency)
    : _name(std::move(name)), _capacity(capacity), latency(latency)
{
    opac_assert(capacity > 0, "FIFO '%s' with zero capacity",
                _name.c_str());
    ring.resize(std::bit_ceil(capacity));
    mask = ring.size() - 1;
}

std::size_t
TimedFifo::space() const
{
    std::size_t used = count + _reserved;
    return used >= _capacity ? 0 : _capacity - used;
}

void
TimedFifo::push(Word w, Cycle now)
{
    opac_assert(space() > 0, "push on full FIFO '%s' (cap %zu)",
                _name.c_str(), _capacity);
    ring[(head + count) & mask] = Entry{w, now + latency};
    ++count;
    ++pushes;
    highWaterMark.observe(count);
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPush, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
}

void
TimedFifo::reserve()
{
    opac_assert(space() > 0, "reserve on full FIFO '%s'", _name.c_str());
    ++_reserved;
}

void
TimedFifo::pushReserved(Word w, Cycle now)
{
    opac_assert(_reserved > 0, "pushReserved without reservation on '%s'",
                _name.c_str());
    --_reserved;
    ring[(head + count) & mask] = Entry{w, now + latency};
    ++count;
    ++pushes;
    highWaterMark.observe(count);
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPush, 1, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
}

Word
TimedFifo::pop(Cycle now)
{
    opac_assert(canPop(now), "pop on empty/not-ready FIFO '%s'",
                _name.c_str());
    Word w = ring[head].word;
    head = (head + 1) & mask;
    --count;
    ++pops;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoPop, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    return w;
}

Word
TimedFifo::recirculate(Cycle now)
{
    opac_assert(canPop(now), "recirculate on empty/not-ready FIFO '%s'",
                _name.c_str());
    Word w = ring[head].word;
    head = (head + 1) & mask;
    ring[(head + count - 1) & mask] = Entry{w, now + latency};
    // Counted as one pop plus one push so lifetime totals match the
    // word traffic the datapath actually performed.
    ++pops;
    ++pushes;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoRecirc, 0, traceComp,
                     traceTrack, std::uint32_t(count), w);
    }
    return w;
}

Word
TimedFifo::front(Cycle now) const
{
    opac_assert(canPop(now), "front on empty/not-ready FIFO '%s'",
                _name.c_str());
    return ring[head].word;
}

void
TimedFifo::reset(Cycle now)
{
    std::size_t dropped = count;
    head = 0;
    count = 0;
    _reserved = 0;
    ++resets;
    if (tracer) {
        tracer->emit(now, trace::EventKind::FifoReset, 0, traceComp,
                     traceTrack, std::uint32_t(dropped), 0);
    }
}

void
TimedFifo::attachTracer(trace::Tracer *t, std::uint16_t comp)
{
    tracer = t;
    traceComp = comp;
    traceTrack = t ? t->internTrack(comp, _name) : 0;
}

void
TimedFifo::addStats(stats::StatGroup &parent)
{
    parent.addCounter(_name + ".pushes", &pushes, "words written");
    parent.addCounter(_name + ".pops", &pops, "words read");
    parent.addCounter(_name + ".resets", &resets, "reset operations");
    parent.addWatermark(_name + ".highWater", &highWaterMark,
                        "deepest occupancy reached");
    parent.addDistribution(_name + ".occupancy", &occupancy,
                           "sampled words held");
}

} // namespace opac
