#include "isa/program.hh"

#include <array>

#include "common/logging.hh"

namespace opac::isa
{

namespace
{

/** Queue identifiers used for port-conflict accounting. */
enum QueueId : unsigned
{
    QTpX, QTpY, QSum, QRet, QReby, QTpO, QCount
};

struct PortUse
{
    std::array<int, QCount> pops{};
    std::array<int, QCount> pushes{};
};

void
notePops(const Operand &op, PortUse &use)
{
    switch (op.kind) {
      case Src::TpX:
        ++use.pops[QTpX];
        break;
      case Src::TpY:
        ++use.pops[QTpY];
        break;
      case Src::Sum:
        ++use.pops[QSum];
        break;
      case Src::SumR:
        ++use.pops[QSum];
        ++use.pushes[QSum];
        break;
      case Src::Ret:
        ++use.pops[QRet];
        break;
      case Src::RetR:
        ++use.pops[QRet];
        ++use.pushes[QRet];
        break;
      case Src::Reby:
        ++use.pops[QReby];
        break;
      case Src::RebyR:
        ++use.pops[QReby];
        ++use.pushes[QReby];
        break;
      default:
        break;
    }
}

void
noteDstPushes(std::uint8_t mask, PortUse &use)
{
    if (mask & DstSum)
        ++use.pushes[QSum];
    if (mask & DstRet)
        ++use.pushes[QRet];
    if (mask & DstReby)
        ++use.pushes[QReby];
    if (mask & DstTpO)
        ++use.pushes[QTpO];
}

const char *queueNames[QCount] = {"tpx", "tpy", "sum", "ret", "reby",
                                  "tpo"};

void
checkOperandIdx(const Operand &op, const char *what, std::size_t pc,
                const std::string &prog)
{
    if (op.kind == Src::Reg && op.idx >= numRegs) {
        opac_fatal("%s[%zu]: %s register index %u out of range",
                   prog.c_str(), pc, what, op.idx);
    }
    if (op.kind == Src::MulOut) {
        opac_assert(std::string(what) == "addA",
                    "%s[%zu]: MulOut only valid as adder input A",
                    prog.c_str(), pc);
    }
}

void
validateCompute(const Instr &in, std::size_t pc, const std::string &prog)
{
    bool mul_active = in.mulA.used() || in.mulB.used();
    bool add_active = in.addA.used() || in.addB.used();
    bool mv_active = in.mvActive();

    if (!mul_active && !add_active && !mv_active)
        opac_fatal("%s[%zu]: empty compute instruction", prog.c_str(), pc);

    if (mul_active && (!in.mulA.used() || !in.mulB.used())) {
        opac_fatal("%s[%zu]: multiplier needs both operands",
                   prog.c_str(), pc);
    }
    if (add_active && (!in.addA.used() || !in.addB.used())) {
        opac_fatal("%s[%zu]: adder needs both operands", prog.c_str(), pc);
    }
    if (in.mulA.kind == Src::MulOut || in.mulB.kind == Src::MulOut
        || in.addB.kind == Src::MulOut || in.mvSrc.kind == Src::MulOut) {
        opac_fatal("%s[%zu]: MulOut only valid as adder input A",
                   prog.c_str(), pc);
    }
    if (in.addA.kind == Src::MulOut && !mul_active) {
        opac_fatal("%s[%zu]: MulOut used with idle multiplier",
                   prog.c_str(), pc);
    }
    if (mul_active && !add_active && in.dstMask == 0) {
        opac_fatal("%s[%zu]: multiplier result dropped (no adder, no "
                   "destination)", prog.c_str(), pc);
    }
    if ((in.dstMask & DstReg) && in.dstReg >= numRegs) {
        opac_fatal("%s[%zu]: destination register %u out of range",
                   prog.c_str(), pc, in.dstReg);
    }
    if ((in.mvDstMask & DstReg) && in.mvDstReg >= numRegs) {
        opac_fatal("%s[%zu]: move destination register %u out of range",
                   prog.c_str(), pc, in.mvDstReg);
    }
    if (add_active && in.dstMask == 0) {
        opac_fatal("%s[%zu]: adder result dropped (no destination)",
                   prog.c_str(), pc);
    }
    if (mv_active && in.mvDstMask == 0) {
        opac_fatal("%s[%zu]: move with no destination", prog.c_str(), pc);
    }
    if (!in.fpActive() && in.dstMask != 0) {
        opac_fatal("%s[%zu]: FP destinations with idle FP section",
                   prog.c_str(), pc);
    }

    checkOperandIdx(in.mulA, "mulA", pc, prog);
    checkOperandIdx(in.mulB, "mulB", pc, prog);
    checkOperandIdx(in.addA, "addA", pc, prog);
    checkOperandIdx(in.addB, "addB", pc, prog);
    checkOperandIdx(in.mvSrc, "mvSrc", pc, prog);

    // Dual-port rule: at most one pop and one push per queue per cycle.
    PortUse use;
    notePops(in.mulA, use);
    notePops(in.mulB, use);
    if (in.addA.kind != Src::MulOut)
        notePops(in.addA, use);
    notePops(in.addB, use);
    notePops(in.mvSrc, use);
    noteDstPushes(in.dstMask, use);
    noteDstPushes(in.mvDstMask, use);

    for (unsigned q = 0; q < QCount; ++q) {
        if (use.pops[q] > 1) {
            opac_fatal("%s[%zu]: %d pops from queue %s in one cycle "
                       "(single read port)", prog.c_str(), pc,
                       use.pops[q], queueNames[q]);
        }
        if (use.pushes[q] > 1) {
            opac_fatal("%s[%zu]: %d pushes to queue %s in one cycle "
                       "(single write port)", prog.c_str(), pc,
                       use.pushes[q], queueNames[q]);
        }
    }
}

} // anonymous namespace

void
Program::validate() const
{
    opac_assert(!_instrs.empty(), "empty program '%s'", _name.c_str());

    unsigned depth = 0;
    bool halted = false;
    for (std::size_t pc = 0; pc < _instrs.size(); ++pc) {
        const Instr &in = _instrs[pc];
        if (halted) {
            opac_fatal("%s[%zu]: instruction after Halt", _name.c_str(),
                       pc);
        }
        switch (in.op) {
          case Opcode::Compute:
            validateCompute(in, pc, _name);
            break;
          case Opcode::LoopBegin:
            ++depth;
            if (depth > maxLoopDepth) {
                opac_fatal("%s[%zu]: loop nesting exceeds %u",
                           _name.c_str(), pc, maxLoopDepth);
            }
            if (in.countIsParam && in.countParam >= numParams) {
                opac_fatal("%s[%zu]: loop count parameter %u out of "
                           "range", _name.c_str(), pc, in.countParam);
            }
            break;
          case Opcode::LoopEnd:
            if (depth == 0) {
                opac_fatal("%s[%zu]: LoopEnd without LoopBegin",
                           _name.c_str(), pc);
            }
            --depth;
            break;
          case Opcode::SetParam:
            if (in.dstParam >= numParams || in.srcParam >= numParams) {
                opac_fatal("%s[%zu]: parameter index out of range",
                           _name.c_str(), pc);
            }
            break;
          case Opcode::ResetFifo:
            break;
          case Opcode::Halt:
            halted = true;
            break;
        }
    }
    if (depth != 0)
        opac_fatal("%s: %u unclosed loop(s)", _name.c_str(), depth);
    if (!halted)
        opac_fatal("%s: missing Halt", _name.c_str());
}

} // namespace opac::isa
