#include "isa/program.hh"

#include <array>

#include "common/error.hh"
#include "common/logging.hh"

namespace opac::isa
{

namespace
{


/**
 * Structured validation failure: site "<program>[<pc>]", no abort —
 * callers (firmware install, the fuzzer) catch and report it.
 */
template <typename... Args>
[[noreturn]] void
vfail(const std::string &prog, std::size_t pc, const char *fmt,
      Args... args)
{
    throw ValidationError(strfmt("%s[%zu]", prog.c_str(), pc),
                          strfmt(fmt, args...));
}

/** Queue identifiers used for port-conflict accounting. */
enum QueueId : unsigned
{
    QTpX, QTpY, QSum, QRet, QReby, QTpO, QCount
};

struct PortUse
{
    std::array<int, QCount> pops{};
    std::array<int, QCount> pushes{};
};

void
notePops(const Operand &op, PortUse &use)
{
    switch (op.kind) {
      case Src::TpX:
        ++use.pops[QTpX];
        break;
      case Src::TpY:
        ++use.pops[QTpY];
        break;
      case Src::Sum:
        ++use.pops[QSum];
        break;
      case Src::SumR:
        ++use.pops[QSum];
        ++use.pushes[QSum];
        break;
      case Src::Ret:
        ++use.pops[QRet];
        break;
      case Src::RetR:
        ++use.pops[QRet];
        ++use.pushes[QRet];
        break;
      case Src::Reby:
        ++use.pops[QReby];
        break;
      case Src::RebyR:
        ++use.pops[QReby];
        ++use.pushes[QReby];
        break;
      default:
        break;
    }
}

void
noteDstPushes(std::uint8_t mask, PortUse &use)
{
    if (mask & DstSum)
        ++use.pushes[QSum];
    if (mask & DstRet)
        ++use.pushes[QRet];
    if (mask & DstReby)
        ++use.pushes[QReby];
    if (mask & DstTpO)
        ++use.pushes[QTpO];
}

const char *queueNames[QCount] = {"tpx", "tpy", "sum", "ret", "reby",
                                  "tpo"};

void
checkOperandIdx(const Operand &op, const char *what, std::size_t pc,
                const std::string &prog)
{
    if (op.kind == Src::Reg && op.idx >= numRegs)
        vfail(prog, pc, "%s register index %u out of range", what,
              op.idx);
    if (op.kind == Src::MulOut && std::string(what) != "addA")
        vfail(prog, pc, "MulOut only valid as adder input A");
}

void
validateCompute(const Instr &in, std::size_t pc, const std::string &prog)
{
    bool mul_active = in.mulA.used() || in.mulB.used();
    bool add_active = in.addA.used() || in.addB.used();
    bool mv_active = in.mvActive();

    if (!mul_active && !add_active && !mv_active)
        vfail(prog, pc, "empty compute instruction");

    if (mul_active && (!in.mulA.used() || !in.mulB.used()))
        vfail(prog, pc, "multiplier needs both operands");
    if (add_active && (!in.addA.used() || !in.addB.used()))
        vfail(prog, pc, "adder needs both operands");
    if (in.mulA.kind == Src::MulOut || in.mulB.kind == Src::MulOut
        || in.addB.kind == Src::MulOut || in.mvSrc.kind == Src::MulOut)
        vfail(prog, pc, "MulOut only valid as adder input A");
    if (in.addA.kind == Src::MulOut && !mul_active)
        vfail(prog, pc, "MulOut used with idle multiplier");
    if (mul_active && !add_active && in.dstMask == 0)
        vfail(prog, pc,
              "multiplier result dropped (no adder, no destination)");
    if ((in.dstMask & DstReg) && in.dstReg >= numRegs)
        vfail(prog, pc, "destination register %u out of range",
              in.dstReg);
    if ((in.mvDstMask & DstReg) && in.mvDstReg >= numRegs)
        vfail(prog, pc, "move destination register %u out of range",
              in.mvDstReg);
    if (add_active && in.dstMask == 0)
        vfail(prog, pc, "adder result dropped (no destination)");
    if (mv_active && in.mvDstMask == 0)
        vfail(prog, pc, "move with no destination");
    if (!in.fpActive() && in.dstMask != 0)
        vfail(prog, pc, "FP destinations with idle FP section");

    checkOperandIdx(in.mulA, "mulA", pc, prog);
    checkOperandIdx(in.mulB, "mulB", pc, prog);
    checkOperandIdx(in.addA, "addA", pc, prog);
    checkOperandIdx(in.addB, "addB", pc, prog);
    checkOperandIdx(in.mvSrc, "mvSrc", pc, prog);

    // Dual-port rule: at most one pop and one push per queue per cycle.
    PortUse use;
    notePops(in.mulA, use);
    notePops(in.mulB, use);
    if (in.addA.kind != Src::MulOut)
        notePops(in.addA, use);
    notePops(in.addB, use);
    notePops(in.mvSrc, use);
    noteDstPushes(in.dstMask, use);
    noteDstPushes(in.mvDstMask, use);

    for (unsigned q = 0; q < QCount; ++q) {
        if (use.pops[q] > 1) {
            vfail(prog, pc,
                  "%d pops from queue %s in one cycle (single read "
                  "port)", use.pops[q], queueNames[q]);
        }
        if (use.pushes[q] > 1) {
            vfail(prog, pc,
                  "%d pushes to queue %s in one cycle (single write "
                  "port)", use.pushes[q], queueNames[q]);
        }
    }
}

} // anonymous namespace

void
Program::validate() const
{
    if (_instrs.empty())
        throw ValidationError(_name, "empty program");

    unsigned depth = 0;
    bool halted = false;
    for (std::size_t pc = 0; pc < _instrs.size(); ++pc) {
        const Instr &in = _instrs[pc];
        if (halted)
            vfail(_name, pc, "instruction after Halt");
        switch (in.op) {
          case Opcode::Compute:
            validateCompute(in, pc, _name);
            break;
          case Opcode::LoopBegin:
            ++depth;
            if (depth > maxLoopDepth)
                vfail(_name, pc, "loop nesting exceeds %u", maxLoopDepth);
            if (in.countIsParam && in.countParam >= numParams) {
                vfail(_name, pc, "loop count parameter %u out of range",
                      in.countParam);
            }
            break;
          case Opcode::LoopEnd:
            if (depth == 0)
                vfail(_name, pc, "LoopEnd without LoopBegin");
            --depth;
            break;
          case Opcode::SetParam:
            if (in.dstParam >= numParams || in.srcParam >= numParams)
                vfail(_name, pc, "parameter index out of range");
            break;
          case Opcode::ResetFifo:
            break;
          case Opcode::Halt:
            halted = true;
            break;
        }
    }
    if (depth != 0) {
        throw ValidationError(_name,
                              strfmt("%u unclosed loop(s)", depth));
    }
    if (!halted)
        throw ValidationError(_name, "missing Halt");
}

namespace
{

/** The queue an operand kind pops, or numCellQueues for none. */
unsigned
cellQueueOf(Src s)
{
    switch (s) {
      case Src::TpX:
        return unsigned(CellQueue::TpX);
      case Src::TpY:
        return unsigned(CellQueue::TpY);
      case Src::Sum:
      case Src::SumR:
        return unsigned(CellQueue::Sum);
      case Src::Ret:
      case Src::RetR:
        return unsigned(CellQueue::Ret);
      case Src::Reby:
      case Src::RebyR:
        return unsigned(CellQueue::Reby);
      default:
        return numCellQueues;
    }
}

bool
isRecircSrc(Src s)
{
    return s == Src::SumR || s == Src::RetR || s == Src::RebyR;
}

DecodedInstr
decodeCompute(const Instr &in)
{
    DecodedInstr d;
    d.mulActive = in.mulA.used();
    d.addActive = in.addA.used();
    d.mvActive = in.mvSrc.used();
    d.addAFromMul = in.addA.kind == Src::MulOut;

    // Read checks in operand order, so the first failing check (and
    // with it the reported stall cause) matches the un-decoded scan.
    // MulOut and constant operands need no check at all.
    const Operand *reads[] = {&in.mulA, &in.mulB, &in.addA, &in.addB,
                              &in.mvSrc};
    int need[numCellQueues] = {0, 0, 0, 0, 0, 0};
    for (const Operand *op : reads) {
        if (op->kind == Src::MulOut)
            continue;
        DecodedRead r;
        if (unsigned q = cellQueueOf(op->kind); q < numCellQueues) {
            r.kind = DecodedRead::Kind::Queue;
            r.queue = std::uint8_t(q);
            --need[q];               // the pop frees a slot at issue
            if (isRecircSrc(op->kind))
                ++need[q];           // ... which the repush reclaims
        } else if (op->kind == Src::RegAy) {
            r.kind = DecodedRead::Kind::RegAy;
        } else if (op->kind == Src::Reg) {
            r.kind = DecodedRead::Kind::Reg;
            r.reg = op->idx;
        } else {
            continue; // None / Zero / One: nothing to check
        }
        d.reads[d.numReads++] = r;
    }

    // WAW interlock targets.
    if ((in.dstMask | in.mvDstMask) & DstRegAy)
        d.wawAy = true;
    if (in.dstMask & DstReg)
        d.wawRegs[d.numWawRegs++] = in.dstReg;
    if (in.mvDstMask & DstReg)
        d.wawRegs[d.numWawRegs++] = in.mvDstReg;

    // Net space requirement per queue: pushes minus pops.
    auto notePush = [&](std::uint8_t mask) {
        if (mask & DstSum)
            ++need[unsigned(CellQueue::Sum)];
        if (mask & DstRet)
            ++need[unsigned(CellQueue::Ret)];
        if (mask & DstReby)
            ++need[unsigned(CellQueue::Reby)];
        if (mask & DstTpO)
            ++need[unsigned(CellQueue::TpO)];
    };
    notePush(in.dstMask);
    notePush(in.mvDstMask);
    for (unsigned q = 0; q < numCellQueues; ++q) {
        if (need[q] > 0) {
            d.needs[d.numNeeds++] =
                DecodedInstr::Need{std::uint8_t(q),
                                   std::uint8_t(need[q])};
        }
    }
    return d;
}

} // anonymous namespace

void
Program::decode()
{
    if (decoded())
        return;
    _decoded.clear();
    _decoded.reserve(_instrs.size());
    for (const Instr &in : _instrs) {
        _decoded.push_back(in.op == Opcode::Compute ? decodeCompute(in)
                                                    : DecodedInstr{});
    }
}

} // namespace opac::isa
