#include "isa/disasm.hh"

#include "common/logging.hh"

namespace opac::isa
{

std::string
disasm(const Instr &in)
{
    switch (in.op) {
      case Opcode::Compute: {
        std::string out;
        bool mul_active = in.mulA.used();
        bool add_active = in.addA.used();
        if (mul_active && add_active && in.addA.kind == Src::MulOut) {
            out = strfmt("fma %s %s %s %s -> %s",
                         operandName(in.mulA).c_str(),
                         operandName(in.mulB).c_str(),
                         addOpName(in.addOp).c_str(),
                         operandName(in.addB).c_str(),
                         dstMaskName(in.dstMask, in.dstReg).c_str());
        } else if (mul_active && add_active) {
            out = strfmt("mul+add %s %s ; %s %s %s -> %s",
                         operandName(in.mulA).c_str(),
                         operandName(in.mulB).c_str(),
                         operandName(in.addA).c_str(),
                         addOpName(in.addOp).c_str(),
                         operandName(in.addB).c_str(),
                         dstMaskName(in.dstMask, in.dstReg).c_str());
        } else if (mul_active) {
            out = strfmt("mul %s %s -> %s",
                         operandName(in.mulA).c_str(),
                         operandName(in.mulB).c_str(),
                         dstMaskName(in.dstMask, in.dstReg).c_str());
        } else if (add_active) {
            out = strfmt("add %s %s %s -> %s",
                         operandName(in.addA).c_str(),
                         addOpName(in.addOp).c_str(),
                         operandName(in.addB).c_str(),
                         dstMaskName(in.dstMask, in.dstReg).c_str());
        }
        if (in.mvActive()) {
            if (!out.empty())
                out += " | ";
            out += strfmt("mov %s -> %s", operandName(in.mvSrc).c_str(),
                          dstMaskName(in.mvDstMask, in.mvDstReg).c_str());
        }
        return out;
      }
      case Opcode::LoopBegin:
        if (in.countIsParam)
            return strfmt("loop p%u {", in.countParam);
        return strfmt("loop %u {", in.count);
      case Opcode::LoopEnd:
        return "}";
      case Opcode::SetParam:
        switch (in.paramOp) {
          case ParamOp::LoadImm:
            return strfmt("ldi p%u, %d", in.dstParam, in.imm);
          case ParamOp::Copy:
            return strfmt("cp p%u, p%u", in.dstParam, in.srcParam);
          case ParamOp::AddImm:
            return strfmt("addi p%u, %d", in.dstParam, in.imm);
          default:
            return strfmt("%s p%u", paramOpName(in.paramOp).c_str(),
                          in.dstParam);
        }
      case Opcode::ResetFifo:
        return strfmt("reset %s", localFifoName(in.fifo).c_str());
      case Opcode::Halt:
        return "halt";
    }
    opac_panic("bad opcode %d", int(in.op));
}

std::string
disasm(const Program &prog)
{
    std::string out = prog.name() + ":\n";
    int indent = 1;
    for (std::size_t pc = 0; pc < prog.size(); ++pc) {
        const Instr &in = prog.at(pc);
        if (in.op == Opcode::LoopEnd)
            --indent;
        out += strfmt("%4zu: %s%s\n", pc,
                      std::string(std::size_t(indent) * 2, ' ').c_str(),
                      disasm(in).c_str());
        if (in.op == Opcode::LoopBegin)
            ++indent;
    }
    return out;
}

} // namespace opac::isa
