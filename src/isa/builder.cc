#include "isa/builder.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace opac::isa
{

ProgramBuilder &
ProgramBuilder::fma(Operand a, Operand b, Operand c,
                    std::uint8_t dst_mask, AddOp op, std::uint8_t dst_reg)
{
    Instr in;
    in.op = Opcode::Compute;
    in.mulA = a;
    in.mulB = b;
    in.addA = src(Src::MulOut);
    in.addB = c;
    in.addOp = op;
    in.dstMask = dst_mask;
    in.dstReg = dst_reg;
    prog.append(in);
    return *this;
}

ProgramBuilder &
ProgramBuilder::mul(Operand a, Operand b, std::uint8_t dst_mask,
                    std::uint8_t dst_reg)
{
    Instr in;
    in.op = Opcode::Compute;
    in.mulA = a;
    in.mulB = b;
    in.dstMask = dst_mask;
    in.dstReg = dst_reg;
    prog.append(in);
    return *this;
}

ProgramBuilder &
ProgramBuilder::add(Operand a, Operand b, std::uint8_t dst_mask, AddOp op,
                    std::uint8_t dst_reg)
{
    Instr in;
    in.op = Opcode::Compute;
    in.addA = a;
    in.addB = b;
    in.addOp = op;
    in.dstMask = dst_mask;
    in.dstReg = dst_reg;
    prog.append(in);
    return *this;
}

ProgramBuilder &
ProgramBuilder::mov(Operand from, std::uint8_t dst_mask,
                    std::uint8_t dst_reg)
{
    Instr in;
    in.op = Opcode::Compute;
    in.mvSrc = from;
    in.mvDstMask = dst_mask;
    in.mvDstReg = dst_reg;
    prog.append(in);
    return *this;
}

ProgramBuilder &
ProgramBuilder::withMove(Operand from, std::uint8_t dst_mask,
                         std::uint8_t dst_reg)
{
    if (prog.size() == 0) {
        throw MicrocodeError(prog.name(), "withMove on an empty program");
    }
    Instr &in = prog.lastInstr();
    if (in.op != Opcode::Compute || in.mvActive()) {
        throw MicrocodeError(
            prog.name(),
            "withMove needs a preceding compute without a move");
    }
    in.mvSrc = from;
    in.mvDstMask = dst_mask;
    in.mvDstReg = dst_reg;
    return *this;
}

ProgramBuilder &
ProgramBuilder::loopImm(std::uint32_t count,
                        const std::function<void()> &body)
{
    Instr in;
    in.op = Opcode::LoopBegin;
    in.countIsParam = false;
    in.count = count;
    prog.append(in);
    body();
    Instr end;
    end.op = Opcode::LoopEnd;
    prog.append(end);
    return *this;
}

ProgramBuilder &
ProgramBuilder::loopParam(std::uint8_t p,
                          const std::function<void()> &body)
{
    Instr in;
    in.op = Opcode::LoopBegin;
    in.countIsParam = true;
    in.countParam = p;
    prog.append(in);
    body();
    Instr end;
    end.op = Opcode::LoopEnd;
    prog.append(end);
    return *this;
}

namespace
{

Instr
paramInstr(ParamOp op, std::uint8_t dst, std::uint8_t src_p,
           std::int32_t imm)
{
    Instr in;
    in.op = Opcode::SetParam;
    in.paramOp = op;
    in.dstParam = dst;
    in.srcParam = src_p;
    in.imm = imm;
    return in;
}

} // anonymous namespace

ProgramBuilder &
ProgramBuilder::setParamImm(std::uint8_t p, std::int32_t v)
{
    prog.append(paramInstr(ParamOp::LoadImm, p, 0, v));
    return *this;
}

ProgramBuilder &
ProgramBuilder::copyParam(std::uint8_t dst, std::uint8_t src_p)
{
    prog.append(paramInstr(ParamOp::Copy, dst, src_p, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::incParam(std::uint8_t p)
{
    prog.append(paramInstr(ParamOp::Inc, p, 0, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::decParam(std::uint8_t p)
{
    prog.append(paramInstr(ParamOp::Dec, p, 0, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::mul2Param(std::uint8_t p)
{
    prog.append(paramInstr(ParamOp::Mul2, p, 0, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::div2Param(std::uint8_t p)
{
    prog.append(paramInstr(ParamOp::Div2, p, 0, 0));
    return *this;
}

ProgramBuilder &
ProgramBuilder::addParamImm(std::uint8_t p, std::int32_t v)
{
    prog.append(paramInstr(ParamOp::AddImm, p, 0, v));
    return *this;
}

ProgramBuilder &
ProgramBuilder::resetFifo(LocalFifo f)
{
    Instr in;
    in.op = Opcode::ResetFifo;
    in.fifo = f;
    prog.append(in);
    return *this;
}

Program
ProgramBuilder::finish()
{
    Instr halt;
    halt.op = Opcode::Halt;
    prog.append(halt);
    prog.validate();
    return std::move(prog);
}

} // namespace opac::isa
