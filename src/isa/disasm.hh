/**
 * @file
 * Microcode disassembler: renders programs in a compact text form used in
 * debug traces, error messages and golden tests.
 */

#ifndef OPAC_ISA_DISASM_HH
#define OPAC_ISA_DISASM_HH

#include <string>

#include "isa/program.hh"

namespace opac::isa
{

/** One instruction as text, e.g. "fma reby* regay + sum* -> sum". */
std::string disasm(const Instr &in);

/** Whole program with indentation following loop nesting. */
std::string disasm(const Program &prog);

} // namespace opac::isa

#endif // OPAC_ISA_DISASM_HH
