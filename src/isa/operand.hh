/**
 * @file
 * Operand, destination and micro-operation encodings of the OPAC
 * micro-ISA.
 *
 * The cell's computation block (paper fig. 4) exposes these storage
 * elements to the microcode:
 *
 *  - interface FIFO queues tpx, tpy (in) and tpo (out),
 *  - local FIFO queues sum (adder-output -> adder-input), ret
 *    (adder-output -> multiplier-input) and reby (reusable multiply
 *    operands),
 *  - the scalar register regay (typically a loop-invariant multiplier
 *    operand) and a small multiport register file.
 *
 * Reading a FIFO operand pops it; the *recirculating* variants pop and
 * immediately repush the same word at the tail, which is how OPAC reuses
 * a vector stored in a queue with stride one.
 */

#ifndef OPAC_ISA_OPERAND_HH
#define OPAC_ISA_OPERAND_HH

#include <cstdint>
#include <string>

namespace opac::isa
{

/** Where a datapath operand comes from. */
enum class Src : std::uint8_t
{
    None,   //!< operand unused
    TpX,    //!< pop interface queue tpx
    TpY,    //!< pop interface queue tpy
    Sum,    //!< pop local queue sum
    SumR,   //!< pop local queue sum and repush (recirculate)
    Ret,    //!< pop local queue ret
    RetR,   //!< pop local queue ret and repush
    Reby,   //!< pop local queue reby
    RebyR,  //!< pop local queue reby and repush
    RegAy,  //!< read register regay (not consumed)
    Reg,    //!< read multiport register file entry [idx]
    MulOut, //!< the multiplier output (adder input A only)
    Zero,   //!< constant +0.0
    One,    //!< constant +1.0
};

/** A source with its register index (used only when kind == Src::Reg). */
struct Operand
{
    Src kind = Src::None;
    std::uint8_t idx = 0;

    bool used() const { return kind != Src::None; }
};

/** Adder function: the second operand may be subtracted either way. */
enum class AddOp : std::uint8_t
{
    Add,   //!< a + b
    SubAB, //!< a - b
    SubBA, //!< b - a
};

/** Destination bit-mask values for a produced result. */
enum Dst : std::uint8_t
{
    DstSum   = 1 << 0,
    DstRet   = 1 << 1,
    DstReby  = 1 << 2,
    DstTpO   = 1 << 3,
    DstRegAy = 1 << 4,
    DstReg   = 1 << 5, //!< register file entry [dst_reg]
};

/** Parameter-ALU operations — the paper's "very limited manipulations". */
enum class ParamOp : std::uint8_t
{
    LoadImm, //!< P[dst] = imm
    Copy,    //!< P[dst] = P[src]
    Inc,     //!< P[dst] += 1
    Dec,     //!< P[dst] -= 1 (triangular solves)
    Mul2,    //!< P[dst] *= 2 (FFTs)
    Div2,    //!< P[dst] /= 2 (FFTs)
    AddImm,  //!< P[dst] += imm
};

/** The local FIFO queues that a ResetFifo micro-op can clear. */
enum class LocalFifo : std::uint8_t
{
    Sum,
    Ret,
    Reby,
};

/** Human-readable names (for the disassembler and error messages). */
std::string srcName(Src s);
std::string operandName(const Operand &op);
std::string addOpName(AddOp op);
std::string dstMaskName(std::uint8_t mask, std::uint8_t dst_reg);
std::string paramOpName(ParamOp op);
std::string localFifoName(LocalFifo f);

} // namespace opac::isa

#endif // OPAC_ISA_OPERAND_HH
