/**
 * @file
 * A microcode program: a validated sequence of microinstructions that
 * implements one compute-bound kernel (the paper's task granularity).
 */

#ifndef OPAC_ISA_PROGRAM_HH
#define OPAC_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instr.hh"

namespace opac::isa
{

/** Maximum hardware loop nesting supported by the sequencer. */
constexpr unsigned maxLoopDepth = 8;

/** Number of parameter registers. */
constexpr unsigned numParams = 16;

/** Number of entries in the multiport register file. */
constexpr unsigned numRegs = 32;

/** A named, validated microinstruction sequence. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    const std::vector<Instr> &instrs() const { return _instrs; }
    std::size_t size() const { return _instrs.size(); }
    const Instr &at(std::size_t pc) const { return _instrs[pc]; }

    void append(const Instr &i) { _instrs.push_back(i); }

    /** Mutable access to the most recently appended instruction. */
    Instr &lastInstr() { return _instrs.back(); }

    /**
     * Check the structural rules of the micro-ISA; throws (fatal) with a
     * descriptive message on the first violation:
     *  - loops properly nested, matched and within maxLoopDepth;
     *  - per instruction, at most one pop and one push per FIFO queue
     *    (the queues are dual-ported: one read + one write port);
     *  - multiplier/adder operand pairing rules (MulOut only as adder
     *    input A, and only when the multiplier is active);
     *  - register indices within range;
     *  - the program ends with Halt and has no trailing garbage.
     */
    void validate() const;

  private:
    std::string _name;
    std::vector<Instr> _instrs;
};

} // namespace opac::isa

#endif // OPAC_ISA_PROGRAM_HH
