/**
 * @file
 * A microcode program: a validated sequence of microinstructions that
 * implements one compute-bound kernel (the paper's task granularity).
 */

#ifndef OPAC_ISA_PROGRAM_HH
#define OPAC_ISA_PROGRAM_HH

#include <string>
#include <vector>

#include "isa/instr.hh"

namespace opac::isa
{

/** Maximum hardware loop nesting supported by the sequencer. */
constexpr unsigned maxLoopDepth = 8;

/** Number of parameter registers. */
constexpr unsigned numParams = 16;

/** Number of entries in the multiport register file. */
constexpr unsigned numRegs = 32;

/**
 * Cell FIFO queues addressable by microcode operands, in the fixed
 * order the cell's hazard logic space-checks them (the cell keeps a
 * pointer table in this order).
 */
enum class CellQueue : std::uint8_t
{
    Sum,
    Ret,
    Reby,
    TpO,
    TpX,
    TpY,
};

/** Number of CellQueue values. */
constexpr unsigned numCellQueues = 6;

/** One pre-resolved operand read of the issue-time hazard scan. */
struct DecodedRead
{
    enum class Kind : std::uint8_t
    {
        Queue, //!< pop (or recirculate) a FIFO queue
        RegAy, //!< read regay
        Reg,   //!< read register file entry [reg]
    };

    Kind kind = Kind::Queue;
    std::uint8_t queue = 0; //!< CellQueue index when kind == Queue
    std::uint8_t reg = 0;   //!< register index when kind == Reg
};

/**
 * The pre-decoded form of one Compute instruction: the hazard checks
 * the sequencer performs every cycle the instruction is at the issue
 * stage, resolved once at microcode-load time so the per-cycle scan
 * stops re-switching on operand kinds. The read list preserves the
 * operand order (mulA, mulB, addA, addB, mvSrc) so the reported stall
 * cause is identical to the un-decoded scan.
 */
struct DecodedInstr
{
    DecodedRead reads[5];
    std::uint8_t numReads = 0;

    /** Queues with a positive net space requirement at issue. */
    struct Need
    {
        std::uint8_t queue;  //!< CellQueue index
        std::uint8_t amount; //!< slots required
    };
    Need needs[4];
    std::uint8_t numNeeds = 0;

    /** WAW interlock: registers this instruction writes. */
    bool wawAy = false;
    std::uint8_t wawRegs[2] = {0, 0};
    std::uint8_t numWawRegs = 0;

    /** Datapath activation, precomputed from the operand kinds. */
    bool mulActive = false;
    bool addActive = false;
    bool mvActive = false;
    bool addAFromMul = false; //!< addA is Src::MulOut
};

/** A named, validated microinstruction sequence. */
class Program
{
  public:
    Program() = default;
    explicit Program(std::string name) : _name(std::move(name)) {}

    const std::string &name() const { return _name; }
    void setName(std::string n) { _name = std::move(n); }

    const std::vector<Instr> &instrs() const { return _instrs; }
    std::size_t size() const { return _instrs.size(); }
    const Instr &at(std::size_t pc) const { return _instrs[pc]; }

    void
    append(const Instr &i)
    {
        _instrs.push_back(i);
        _decoded.clear();
    }

    /** Mutable access to the most recently appended instruction. */
    Instr &lastInstr() { return _instrs.back(); }

    /**
     * Build the decoded-instruction cache (idempotent). Call after
     * validate(); the cell's microcode loader does this once per
     * kernel. append() invalidates the cache.
     */
    void decode();

    /** True once decode() has run on the current instructions. */
    bool decoded() const { return _decoded.size() == _instrs.size(); }

    /** The decoded form of the instruction at @p pc; requires decode(). */
    const DecodedInstr &
    decodedAt(std::size_t pc) const
    {
        return _decoded[pc];
    }

    /**
     * Check the structural rules of the micro-ISA; throws (fatal) with a
     * descriptive message on the first violation:
     *  - loops properly nested, matched and within maxLoopDepth;
     *  - per instruction, at most one pop and one push per FIFO queue
     *    (the queues are dual-ported: one read + one write port);
     *  - multiplier/adder operand pairing rules (MulOut only as adder
     *    input A, and only when the multiplier is active);
     *  - register indices within range;
     *  - the program ends with Halt and has no trailing garbage.
     */
    void validate() const;

  private:
    std::string _name;
    std::vector<Instr> _instrs;
    std::vector<DecodedInstr> _decoded;
};

} // namespace opac::isa

#endif // OPAC_ISA_PROGRAM_HH
