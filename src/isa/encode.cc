#include "isa/encode.hh"

#include "common/error.hh"
#include "common/logging.hh"

namespace opac::isa
{

namespace
{

constexpr unsigned wordsPerInstr = 4;
constexpr std::uint8_t maxSrcKind = std::uint8_t(Src::One);

/**
 * Little bit-field writer/reader over one 32-bit word. Overflows
 * throw MicrocodeError rather than aborting: a malformed instruction
 * or image reaching pack/unpack is caller input, not a simulator
 * invariant, so it must surface as a catchable, named error.
 */
struct FieldWriter
{
    std::uint32_t word = 0;
    unsigned pos = 0;

    void
    put(std::uint32_t v, unsigned bits)
    {
        if (pos + bits > 32) {
            throw MicrocodeError(
                "microcode.pack",
                strfmt("field overflow: %u bits at position %u",
                       bits, pos));
        }
        if (v >= (1u << bits)) {
            throw MicrocodeError(
                "microcode.pack",
                strfmt("field value %u exceeds %u bits", v, bits));
        }
        word |= v << pos;
        pos += bits;
    }
};

struct FieldReader
{
    std::uint32_t word;
    unsigned pos = 0;

    std::uint32_t
    get(unsigned bits)
    {
        if (pos + bits > 32) {
            throw MicrocodeError(
                "microcode.unpack",
                strfmt("field overflow: %u bits at position %u",
                       bits, pos));
        }
        std::uint32_t v = (word >> pos) & ((1u << bits) - 1);
        pos += bits;
        return v;
    }
};

void
putOperand(FieldWriter &w, const Operand &op)
{
    w.put(std::uint8_t(op.kind), 4);
    w.put(op.idx, 5);
}

Operand
getOperand(FieldReader &r)
{
    Operand op;
    std::uint32_t kind = r.get(4);
    if (kind > maxSrcKind) {
        throw MicrocodeError("microcode",
                             strfmt("bad operand kind %u", kind));
    }
    op.kind = Src(kind);
    op.idx = std::uint8_t(r.get(5));
    return op;
}

} // anonymous namespace

std::vector<std::uint32_t>
encode(const Program &prog)
{
    std::vector<std::uint32_t> image;
    image.reserve(prog.size() * wordsPerInstr);
    for (const Instr &in : prog.instrs()) {
        FieldWriter w0, w1, w2;
        w0.put(std::uint8_t(in.op), 3);
        putOperand(w0, in.mulA);
        putOperand(w0, in.mulB);
        w0.put(std::uint8_t(in.addA.kind), 4);
        w0.put(std::uint8_t(in.addOp), 2);
        w0.put(in.countIsParam ? 1 : 0, 1);
        w0.put(std::uint8_t(in.fifo), 2);

        putOperand(w1, in.addB);
        w1.put(in.dstMask, 6);
        w1.put(in.dstReg, 5);
        putOperand(w1, in.mvSrc);

        w2.put(in.mvDstMask, 6);
        w2.put(in.mvDstReg, 5);
        w2.put(in.countParam, 4);
        w2.put(std::uint8_t(in.paramOp), 3);
        w2.put(in.dstParam, 4);
        w2.put(in.srcParam, 4);

        std::uint32_t w3 = 0;
        if (in.op == Opcode::LoopBegin)
            w3 = in.count;
        else if (in.op == Opcode::SetParam)
            w3 = std::uint32_t(in.imm);

        image.push_back(w0.word);
        image.push_back(w1.word);
        image.push_back(w2.word);
        image.push_back(w3);
    }
    return image;
}

Program
decode(const std::vector<std::uint32_t> &image, const std::string &name)
{
    if (image.size() % wordsPerInstr != 0) {
        throw MicrocodeError(name,
                             strfmt("truncated image: %zu words",
                                    image.size()));
    }
    Program prog(name);
    for (std::size_t i = 0; i < image.size(); i += wordsPerInstr) {
        FieldReader r0{image[i]};
        FieldReader r1{image[i + 1]};
        FieldReader r2{image[i + 2]};
        std::uint32_t w3 = image[i + 3];

        Instr in;
        std::uint32_t op = r0.get(3);
        if (op > std::uint8_t(Opcode::Halt))
            throw MicrocodeError(name, strfmt("bad opcode %u", op));
        in.op = Opcode(op);
        in.mulA = getOperand(r0);
        in.mulB = getOperand(r0);
        std::uint32_t add_a = r0.get(4);
        if (add_a > maxSrcKind) {
            throw MicrocodeError(name,
                                 strfmt("bad addA kind %u", add_a));
        }
        in.addA.kind = Src(add_a);
        std::uint32_t add_op = r0.get(2);
        if (add_op > std::uint8_t(AddOp::SubBA))
            throw MicrocodeError(name, strfmt("bad addOp %u", add_op));
        in.addOp = AddOp(add_op);
        in.countIsParam = r0.get(1) != 0;
        std::uint32_t fifo = r0.get(2);
        if (fifo > std::uint8_t(LocalFifo::Reby))
            throw MicrocodeError(name, strfmt("bad local fifo %u", fifo));
        in.fifo = LocalFifo(fifo);

        in.addB = getOperand(r1);
        in.dstMask = std::uint8_t(r1.get(6));
        in.dstReg = std::uint8_t(r1.get(5));
        in.mvSrc = getOperand(r1);

        in.mvDstMask = std::uint8_t(r2.get(6));
        in.mvDstReg = std::uint8_t(r2.get(5));
        in.countParam = std::uint8_t(r2.get(4));
        std::uint32_t param_op = r2.get(3);
        if (param_op > std::uint8_t(ParamOp::AddImm)) {
            throw MicrocodeError(name,
                                 strfmt("bad paramOp %u", param_op));
        }
        in.paramOp = ParamOp(param_op);
        in.dstParam = std::uint8_t(r2.get(4));
        in.srcParam = std::uint8_t(r2.get(4));

        if (in.op == Opcode::LoopBegin)
            in.count = w3;
        else if (in.op == Opcode::SetParam)
            in.imm = std::int32_t(w3);

        prog.append(in);
    }
    prog.validate();
    return prog;
}

} // namespace opac::isa
