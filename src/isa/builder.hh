/**
 * @file
 * Structured builder for microcode programs.
 *
 * Kernel generators use this instead of assembling Instr structs by hand:
 * loops nest through lambdas, and the common datapath shapes (fma, mul,
 * add, move) have one-call emitters. finish() validates the result.
 *
 * Example — the inner loop of the fig. 5 matrix update:
 * @code
 *   ProgramBuilder b("matupdate");
 *   b.loopParam(PK, [&] {                       // for k = 1..K
 *       b.loopParam(PM, [&] {                   //   load B(:,k) into reby
 *           b.mov(Src::TpX, DstReby);
 *       });
 *       b.loopParam(PN, [&] {                   //   for n = 1..N
 *           b.mov(Src::TpX, DstRegAy);          //     regay = C(k,n)
 *           b.loopParam(PM, [&] {               //     for m = 1..M
 *               b.fma(Src::RebyR, Src::RegAy, Src::SumR, DstSum);
 *           });
 *       });
 *       b.resetFifo(LocalFifo::Reby);
 *   });
 * @endcode
 */

#ifndef OPAC_ISA_BUILDER_HH
#define OPAC_ISA_BUILDER_HH

#include <functional>

#include "isa/program.hh"

namespace opac::isa
{

/** Convenience constructor for plain sources. */
inline Operand
src(Src kind)
{
    return Operand{kind, 0};
}

/** Convenience constructor for register-file sources. */
inline Operand
reg(std::uint8_t idx)
{
    return Operand{Src::Reg, idx};
}

/** Incrementally builds and finally validates a Program. */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(std::string name) : prog(std::move(name)) {}

    // -- datapath emitters -------------------------------------------

    /** Chained multiply-add: dsts <- (a * b) addOp c. */
    ProgramBuilder &fma(Operand a, Operand b, Operand c,
                        std::uint8_t dst_mask, AddOp op = AddOp::Add,
                        std::uint8_t dst_reg = 0);

    /** Multiply only: dsts <- a * b. */
    ProgramBuilder &mul(Operand a, Operand b, std::uint8_t dst_mask,
                        std::uint8_t dst_reg = 0);

    /** Add only: dsts <- a addOp b. */
    ProgramBuilder &add(Operand a, Operand b, std::uint8_t dst_mask,
                        AddOp op = AddOp::Add, std::uint8_t dst_reg = 0);

    /** One-cycle move: dsts <- src. */
    ProgramBuilder &mov(Operand from, std::uint8_t dst_mask,
                        std::uint8_t dst_reg = 0);

    /** Attach a parallel move to the most recent datapath instruction. */
    ProgramBuilder &withMove(Operand from, std::uint8_t dst_mask,
                             std::uint8_t dst_reg = 0);

    // -- control emitters ---------------------------------------------

    /** Loop with a compile-time trip count. */
    ProgramBuilder &loopImm(std::uint32_t count,
                            const std::function<void()> &body);

    /** Loop whose trip count is read from parameter register p. */
    ProgramBuilder &loopParam(std::uint8_t p,
                              const std::function<void()> &body);

    ProgramBuilder &setParamImm(std::uint8_t p, std::int32_t v);
    ProgramBuilder &copyParam(std::uint8_t dst, std::uint8_t src);
    ProgramBuilder &incParam(std::uint8_t p);
    ProgramBuilder &decParam(std::uint8_t p);
    ProgramBuilder &mul2Param(std::uint8_t p);
    ProgramBuilder &div2Param(std::uint8_t p);
    ProgramBuilder &addParamImm(std::uint8_t p, std::int32_t v);

    ProgramBuilder &resetFifo(LocalFifo f);

    /** Append Halt, validate and return the finished program. */
    Program finish();

    /** Instructions emitted so far (Halt not yet counted). */
    std::size_t size() const { return prog.size(); }

  private:
    Program prog;

    // Overloads taking Src directly keep kernel code terse.
  public:
    ProgramBuilder &
    fma(Src a, Src b, Src c, std::uint8_t dst_mask, AddOp op = AddOp::Add)
    {
        return fma(src(a), src(b), src(c), dst_mask, op);
    }

    ProgramBuilder &
    mul(Src a, Src b, std::uint8_t dst_mask)
    {
        return mul(src(a), src(b), dst_mask);
    }

    ProgramBuilder &
    add(Src a, Src b, std::uint8_t dst_mask, AddOp op = AddOp::Add)
    {
        return add(src(a), src(b), dst_mask, op);
    }

    ProgramBuilder &
    mov(Src from, std::uint8_t dst_mask, std::uint8_t dst_reg = 0)
    {
        return mov(src(from), dst_mask, dst_reg);
    }
};

} // namespace opac::isa

#endif // OPAC_ISA_BUILDER_HH
