/**
 * @file
 * Binary microcode image format.
 *
 * The paper emphasizes that implicit FIFO addressing keeps the microcode
 * word narrow ("for each FIFO queue, only the READ and WRITE information
 * has to be coded"). This module packs each microinstruction into a
 * fixed four-word (32-bit) control-store format -- the image a host
 * program downloads into a cell's microcode store -- and unpacks it back.
 * encode/decode round-trips exactly and decode rejects malformed words.
 *
 *   word 0: opcode(3) | mulA(4+5) | mulB(4+5) | addA(4) | addOp(2) |
 *           countIsParam(1) | fifo(2)
 *   word 1: addB(4+5) | dstMask(6) | dstReg(5) | mvSrc(4+5)
 *   word 2: mvDstMask(6) | mvDstReg(5) | countParam(4) | paramOp(3) |
 *           dstParam(4) | srcParam(4)
 *   word 3: loop count (LoopBegin) or immediate (SetParam), else 0
 */

#ifndef OPAC_ISA_ENCODE_HH
#define OPAC_ISA_ENCODE_HH

#include <cstdint>
#include <vector>

#include "isa/program.hh"

namespace opac::isa
{

/** Pack a program into its control-store image. */
std::vector<std::uint32_t> encode(const Program &prog);

/**
 * Unpack a control-store image. @p name is attached to the resulting
 * program. Throws (fatal) on truncated or malformed images.
 */
Program decode(const std::vector<std::uint32_t> &image,
               const std::string &name);

} // namespace opac::isa

#endif // OPAC_ISA_ENCODE_HH
