/**
 * @file
 * The OPAC microinstruction.
 *
 * One instruction issues per cycle. A Compute instruction drives up to
 * three things in parallel: the multiplier, the adder (whose first input
 * is usually the multiplier output — the paper's direct multiply-add
 * path), and a one-cycle move path used for register loads and
 * queue-to-queue transfers. Control instructions (hardware loops,
 * parameter ALU, queue reset, halt) are handled by the sequencer; loop
 * begin/end consume no cycles, modelling the zero-overhead loop hardware
 * described in the companion report [Se91].
 */

#ifndef OPAC_ISA_INSTR_HH
#define OPAC_ISA_INSTR_HH

#include <cstdint>

#include "isa/operand.hh"

namespace opac::isa
{

/** Instruction classes. */
enum class Opcode : std::uint8_t
{
    Compute,   //!< datapath operation (mul / add / move, in parallel)
    LoopBegin, //!< hardware loop; count from immediate or parameter
    LoopEnd,   //!< matches the innermost open LoopBegin
    SetParam,  //!< parameter-ALU operation
    ResetFifo, //!< clear one local queue (paper: "Reset of FIFO reby")
    Halt,      //!< end of kernel; sequencer returns to idle
};

/** A single microinstruction; field groups are valid per opcode. */
struct Instr
{
    Opcode op = Opcode::Halt;

    // -- Compute -----------------------------------------------------
    Operand mulA; //!< multiplier input X
    Operand mulB; //!< multiplier input Y
    Operand addA; //!< adder input A (Src::MulOut for the chained path)
    Operand addB; //!< adder input B
    AddOp addOp = AddOp::Add;
    std::uint8_t dstMask = 0;  //!< destinations of the FP result
    std::uint8_t dstReg = 0;   //!< register index when DstReg is set
    Operand mvSrc;             //!< move-path source (1-cycle bypass)
    std::uint8_t mvDstMask = 0;
    std::uint8_t mvDstReg = 0;

    // -- LoopBegin ---------------------------------------------------
    bool countIsParam = false;
    std::uint32_t count = 0;     //!< immediate trip count
    std::uint8_t countParam = 0; //!< parameter register holding count

    // -- SetParam ----------------------------------------------------
    ParamOp paramOp = ParamOp::LoadImm;
    std::uint8_t dstParam = 0;
    std::uint8_t srcParam = 0;
    std::int32_t imm = 0;

    // -- ResetFifo ---------------------------------------------------
    LocalFifo fifo = LocalFifo::Sum;

    /** True if the FP section (mul and/or add) is active. */
    bool fpActive() const { return mulA.used() || addA.used(); }

    /** True if the move path is active. */
    bool mvActive() const { return mvSrc.used(); }
};

} // namespace opac::isa

#endif // OPAC_ISA_INSTR_HH
