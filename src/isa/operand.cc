#include "isa/operand.hh"

#include "common/logging.hh"

namespace opac::isa
{

std::string
srcName(Src s)
{
    switch (s) {
      case Src::None: return "none";
      case Src::TpX: return "tpx";
      case Src::TpY: return "tpy";
      case Src::Sum: return "sum";
      case Src::SumR: return "sum*";
      case Src::Ret: return "ret";
      case Src::RetR: return "ret*";
      case Src::Reby: return "reby";
      case Src::RebyR: return "reby*";
      case Src::RegAy: return "regay";
      case Src::Reg: return "r";
      case Src::MulOut: return "mulout";
      case Src::Zero: return "zero";
      case Src::One: return "one";
    }
    opac_panic("bad Src %d", int(s));
}

std::string
operandName(const Operand &op)
{
    if (op.kind == Src::Reg)
        return strfmt("r%u", op.idx);
    return srcName(op.kind);
}

std::string
addOpName(AddOp op)
{
    switch (op) {
      case AddOp::Add: return "+";
      case AddOp::SubAB: return "-";
      case AddOp::SubBA: return "rsub";
    }
    opac_panic("bad AddOp %d", int(op));
}

std::string
dstMaskName(std::uint8_t mask, std::uint8_t dst_reg)
{
    std::string out;
    auto append = [&](const std::string &s) {
        if (!out.empty())
            out += ",";
        out += s;
    };
    if (mask & DstSum)
        append("sum");
    if (mask & DstRet)
        append("ret");
    if (mask & DstReby)
        append("reby");
    if (mask & DstTpO)
        append("tpo");
    if (mask & DstRegAy)
        append("regay");
    if (mask & DstReg)
        append(strfmt("r%u", dst_reg));
    return out.empty() ? "none" : out;
}

std::string
paramOpName(ParamOp op)
{
    switch (op) {
      case ParamOp::LoadImm: return "ldi";
      case ParamOp::Copy: return "cp";
      case ParamOp::Inc: return "inc";
      case ParamOp::Dec: return "dec";
      case ParamOp::Mul2: return "mul2";
      case ParamOp::Div2: return "div2";
      case ParamOp::AddImm: return "addi";
    }
    opac_panic("bad ParamOp %d", int(op));
}

std::string
localFifoName(LocalFifo f)
{
    switch (f) {
      case LocalFifo::Sum: return "sum";
      case LocalFifo::Ret: return "ret";
      case LocalFifo::Reby: return "reby";
    }
    opac_panic("bad LocalFifo %d", int(f));
}

} // namespace opac::isa
