/**
 * @file
 * Fault model: deterministic, seed-reproducible fault plans plus the
 * SECDED word protection used to detect and correct them.
 *
 * A FaultSpec describes *what could go wrong* — either a random plan
 * (seed, rate, horizon, enabled kinds) or explicit events pinned to a
 * cycle — and buildPlan() expands it into a sorted list of FaultEvent
 * records. The expansion depends only on the spec and the cell count,
 * never on parity or recovery settings, so the same spec injects the
 * same faults whether or not the machine can survive them.
 *
 * Fault kinds (see docs/RESILIENCE.md for the full model):
 *  - FifoFlip:     XOR a 1–2 bit mask into a stored FIFO word
 *                  (tpx/tpy/tpo/tpi or the internal sum/ret/reby).
 *  - BusDrop/Dup:  the next host bus word to a cell is lost or sent
 *                  twice.
 *  - BusReorder:   two adjacent words in a cell-side FIFO swap places.
 *  - CellHang:     a cell's sequencer and writeback freeze for N
 *                  cycles (N = 0: permanently, until reset).
 *  - SpuriousHalt: a cell's sequencer drops dead back to Idle
 *                  mid-kernel.
 *  - MemLatency:   the next host memory access stalls N extra cycles.
 *
 * Protection is SECDED(39,32): six Hamming check bits plus an overall
 * parity bit per 32-bit word. ParityMode::Detect flags any error;
 * ParityMode::Correct repairs single-bit flips in place and flags
 * double-bit flips. Random plans therefore cap flips at two bits —
 * three or more can alias to a valid single-bit syndrome.
 */

#ifndef OPAC_FAULT_FAULT_HH
#define OPAC_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace opac::fault
{

/** FIFO word protection level (the --parity= bench flag). */
enum class ParityMode : std::uint8_t
{
    Off,     //!< words stored bare; faults land silently
    Detect,  //!< SECDED syndrome checked at pop; errors flag the cell
    Correct, //!< single-bit errors repaired, double-bit errors flagged
};

const char *parityModeName(ParityMode m);

/** Parse "off" / "detect" / "correct"; throws opac::FaultSpecError. */
ParityMode parseParityMode(const std::string &text);

/** What goes wrong. */
enum class FaultKind : std::uint8_t
{
    FifoFlip,     //!< XOR mask into a stored FIFO word
    BusDrop,      //!< next host bus word to the cell is lost
    BusDup,       //!< next host bus word to the cell arrives twice
    BusReorder,   //!< two adjacent FIFO entries swap
    CellHang,     //!< sequencer freeze for arg cycles (0 = permanent)
    SpuriousHalt, //!< sequencer resets to Idle mid-kernel
    MemLatency,   //!< next host memory access pays arg extra cycles
    numKinds,
};

const char *faultKindName(FaultKind k);

/** Which FIFO a FifoFlip / BusReorder lands on. */
enum class FifoSite : std::uint8_t
{
    TpX,
    TpY,
    TpO,
    TpI,
    Sum,
    Ret,
    Reby,
    numSites,
};

const char *fifoSiteName(FifoSite s);

/** One scheduled fault. */
struct FaultEvent
{
    Cycle at = 0;
    FaultKind kind = FaultKind::FifoFlip;
    unsigned cell = 0;
    FifoSite site = FifoSite::TpX;
    Word mask = 1; //!< FifoFlip: XOR mask applied to the stored word
    Cycle arg = 0; //!< CellHang: duration (0 = permanent); MemLatency: cycles
};

/**
 * A parsed --faults= specification. Random faults are drawn from the
 * enabled kinds at the given rate over [1, horizon]; explicit events
 * are injected verbatim on top.
 */
struct FaultSpec
{
    std::uint64_t seed = 1;
    Cycle horizon = 100000;      //!< random faults land in [1, horizon]
    double ratePerMcycle = 0.0;  //!< random faults per million cycles
    unsigned count = 0;          //!< explicit random-fault count (wins)
    std::uint32_t kindMask = 0;  //!< bit per FaultKind; 0 = all kinds
    unsigned maxFlipBits = 2;    //!< 1 or 2 bits per FifoFlip
    std::vector<FaultEvent> explicitEvents;

    /** Number of random faults this spec asks for. */
    unsigned randomCount() const;

    /** True when the spec schedules anything at all. */
    bool any() const;

    bool kindEnabled(FaultKind k) const
    {
        return kindMask == 0 || (kindMask & (1u << unsigned(k)));
    }
};

/**
 * Parse a --faults= spec string. Comma-separated keys:
 *
 *   seed=N        RNG seed (default 1)
 *   rate=R        random faults per million cycles
 *   n=N           random fault count (overrides rate)
 *   horizon=N     cycle window for random faults (default 100000)
 *   kinds=a+b+c   flip, drop, dup, reorder, hang, halt, mem, or all
 *   bits=N        max bits per random flip (1 or 2, default 2)
 *   at=C/KIND[/CELL[/SITE][/ARG]]
 *                 one explicit event at cycle C; SITE only for
 *                 flip/reorder, ARG is the flip mask, hang duration
 *                 or memory delay. Repeatable.
 *
 * An empty string parses to a spec with no faults. Unknown keys,
 * malformed values or unknown kind/site names throw
 * opac::FaultSpecError.
 */
FaultSpec parseFaultSpec(const std::string &text);

/**
 * Expand @p spec into a concrete schedule for a @p cells -cell system:
 * the random events drawn from the spec's seed plus the explicit
 * events, sorted by cycle. Deterministic: same spec and cell count,
 * same plan.
 */
std::vector<FaultEvent> buildPlan(const FaultSpec &spec, unsigned cells);

/** Render a plan entry for logs and traces. */
std::string describeFault(const FaultEvent &e);

/** Host-side recovery policy (timeout → retry → degrade). */
struct RecoveryConfig
{
    bool enabled = false;
    /** Transaction deadline: cycles without bus progress before the
     *  host declares the transaction stuck and retries. */
    Cycle timeoutCycles = 20000;
    /** Retries per transaction before a cell is declared dead. */
    unsigned retryBudget = 3;
    /** Host bus cycles consumed per reset-line pulse to one cell. */
    unsigned resetCostCycles = 8;
};

/**
 * SECDED(39,32): returns the 7 check bits (six Hamming parities plus
 * the overall parity in bit 6) protecting @p w.
 */
std::uint8_t secdedEncode(Word w);

enum class SecdedResult : std::uint8_t
{
    Ok,            //!< word matches its check bits
    Corrected,     //!< single-bit error located (and repaired in @p w)
    Uncorrectable, //!< double-bit error detected
};

/**
 * Check @p w against @p ecc; repairs @p w in place when a single-bit
 * error is found. Only data-bit errors can occur in this simulator
 * (check bits are stored out of band and never corrupted).
 */
SecdedResult secdedDecode(Word &w, std::uint8_t ecc);

} // namespace opac::fault

#endif // OPAC_FAULT_FAULT_HH
