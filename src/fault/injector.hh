/**
 * @file
 * The fault injector: a sim::Component that walks a FaultPlan and arms
 * each fault at its scheduled cycle.
 *
 * The injector owns no machine state — it hands every due event to an
 * arm callback installed by the Coprocessor, which routes it to the
 * right hook (TimedFifo corruption, Host bus/memory faults, Cell
 * hangs). Keeping the routing in the Coprocessor keeps this library
 * free of fifo/cell/host dependencies.
 *
 * Fast-forward correctness: nextEventAt() reports the cycle of the
 * next unarmed fault, so the engine's idle-cycle skipping can never
 * jump over an injection — faulted runs are cycle-identical with and
 * without --no-skip. Arming a fault is deliberately *not* engine
 * progress: a fault landing in a quiescent window must not keep the
 * watchdog alive by itself.
 */

#ifndef OPAC_FAULT_INJECTOR_HH
#define OPAC_FAULT_INJECTOR_HH

#include <array>
#include <functional>
#include <vector>

#include "fault/fault.hh"
#include "sim/engine.hh"
#include "stats/stats.hh"
#include "trace/trace.hh"

namespace opac::fault
{

class Injector : public sim::Component
{
  public:
    /** Routes one due fault into the machine. */
    using ArmFn = std::function<void(const FaultEvent &, Cycle now)>;

    Injector(std::string name, std::vector<FaultEvent> plan,
             stats::StatGroup *parent);

    void setArmHandler(ArmFn fn) { arm = std::move(fn); }

    void
    attachTracer(trace::Tracer *t)
    {
        tracer = t;
        traceComp = t ? t->internComponent(name()) : 0;
    }

    void tick(sim::Engine &engine) override;
    bool done() const override { return true; }
    Cycle nextEventAt(Cycle now) const override;
    std::string statusLine() const override;

    /**
     * Snapshot support. The plan itself is a pure function of the
     * FaultSpec (covered by the snapshot's config fingerprint), so only
     * the arming cursor travels; a resumed injector fires exactly the
     * faults the uninterrupted run still had ahead of it.
     */
    std::uint32_t stateVersion() const override { return 1; }
    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r, std::uint32_t version) override;

    std::size_t armedCount() const { return next; }
    std::size_t planSize() const { return plan.size(); }
    std::uint64_t injected() const { return statInjected.value(); }

  private:
    std::vector<FaultEvent> plan;
    std::size_t next = 0;
    ArmFn arm;

    trace::Tracer *tracer = nullptr;
    std::uint16_t traceComp = 0;

    stats::StatGroup statGroup;
    stats::Counter statInjected;
    std::array<stats::Counter, std::size_t(FaultKind::numKinds)> statByKind;
};

} // namespace opac::fault

#endif // OPAC_FAULT_INJECTOR_HH
