#include "fault/fault.hh"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdlib>

#include "common/error.hh"
#include "common/logging.hh"
#include "common/random.hh"

namespace opac::fault
{

namespace
{

constexpr const char specSite[] = "faults-spec";

[[noreturn]] void
specFail(const std::string &what)
{
    throw FaultSpecError(specSite, what);
}

std::uint64_t
parseU64(const std::string &text, const char *key)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(text.c_str(), &end, 0);
    if (text.empty() || end != text.c_str() + text.size())
        specFail(strfmt("bad %s value '%s'", key, text.c_str()));
    return v;
}

double
parseDouble(const std::string &text, const char *key)
{
    char *end = nullptr;
    double v = std::strtod(text.c_str(), &end);
    if (text.empty() || end != text.c_str() + text.size() || v < 0)
        specFail(strfmt("bad %s value '%s'", key, text.c_str()));
    return v;
}

std::vector<std::string>
split(const std::string &text, char sep)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= text.size()) {
        std::size_t end = text.find(sep, start);
        if (end == std::string::npos)
            end = text.size();
        out.push_back(text.substr(start, end - start));
        start = end + 1;
    }
    return out;
}

FaultKind
kindFromName(const std::string &name)
{
    for (unsigned k = 0; k < unsigned(FaultKind::numKinds); ++k)
        if (name == faultKindName(FaultKind(k)))
            return FaultKind(k);
    specFail(strfmt("unknown fault kind '%s'", name.c_str()));
}

FifoSite
siteFromName(const std::string &name)
{
    for (unsigned s = 0; s < unsigned(FifoSite::numSites); ++s)
        if (name == fifoSiteName(FifoSite(s)))
            return FifoSite(s);
    specFail(strfmt("unknown fifo site '%s'", name.c_str()));
}

/**
 * Parse "C/KIND[/CELL[/SITE][/ARG]]". SITE is accepted only for the
 * kinds that target a FIFO; the trailing number is the flip mask, hang
 * duration or memory delay depending on the kind.
 */
FaultEvent
parseExplicit(const std::string &text)
{
    std::vector<std::string> f = split(text, '/');
    if (f.size() < 2)
        specFail(strfmt("at=%s needs at least CYCLE/KIND", text.c_str()));
    FaultEvent e;
    e.at = parseU64(f[0], "at cycle");
    e.kind = kindFromName(f[1]);
    std::size_t i = 2;
    if (i < f.size())
        e.cell = unsigned(parseU64(f[i++], "at cell"));
    bool wantsSite =
        e.kind == FaultKind::FifoFlip || e.kind == FaultKind::BusReorder;
    if (wantsSite && i < f.size())
        e.site = siteFromName(f[i++]);
    if (i < f.size()) {
        std::uint64_t arg = parseU64(f[i++], "at arg");
        if (e.kind == FaultKind::FifoFlip)
            e.mask = Word(arg);
        else
            e.arg = arg;
    }
    if (i < f.size())
        specFail(strfmt("at=%s has trailing fields", text.c_str()));
    if (e.kind == FaultKind::FifoFlip && e.mask == 0)
        specFail("flip mask must be non-zero");
    return e;
}

std::uint32_t
parseKinds(const std::string &text)
{
    std::uint32_t mask = 0;
    for (const std::string &name : split(text, '+')) {
        if (name == "all")
            return 0;
        mask |= 1u << unsigned(kindFromName(name));
    }
    if (mask == 0)
        specFail("empty kinds list");
    return mask;
}

} // anonymous namespace

const char *
parityModeName(ParityMode m)
{
    switch (m) {
      case ParityMode::Off:
        return "off";
      case ParityMode::Detect:
        return "detect";
      case ParityMode::Correct:
        return "correct";
    }
    return "?";
}

ParityMode
parseParityMode(const std::string &text)
{
    for (ParityMode m :
         {ParityMode::Off, ParityMode::Detect, ParityMode::Correct})
        if (text == parityModeName(m))
            return m;
    throw FaultSpecError("parity-spec",
                         strfmt("unknown parity mode '%s' (want off, "
                                "detect or correct)",
                                text.c_str()));
}

const char *
faultKindName(FaultKind k)
{
    switch (k) {
      case FaultKind::FifoFlip:
        return "flip";
      case FaultKind::BusDrop:
        return "drop";
      case FaultKind::BusDup:
        return "dup";
      case FaultKind::BusReorder:
        return "reorder";
      case FaultKind::CellHang:
        return "hang";
      case FaultKind::SpuriousHalt:
        return "halt";
      case FaultKind::MemLatency:
        return "mem";
      case FaultKind::numKinds:
        break;
    }
    return "?";
}

const char *
fifoSiteName(FifoSite s)
{
    switch (s) {
      case FifoSite::TpX:
        return "tpx";
      case FifoSite::TpY:
        return "tpy";
      case FifoSite::TpO:
        return "tpo";
      case FifoSite::TpI:
        return "tpi";
      case FifoSite::Sum:
        return "sum";
      case FifoSite::Ret:
        return "ret";
      case FifoSite::Reby:
        return "reby";
      case FifoSite::numSites:
        break;
    }
    return "?";
}

unsigned
FaultSpec::randomCount() const
{
    if (count)
        return count;
    return unsigned(ratePerMcycle * double(horizon) / 1e6 + 0.5);
}

bool
FaultSpec::any() const
{
    return randomCount() > 0 || !explicitEvents.empty();
}

FaultSpec
parseFaultSpec(const std::string &text)
{
    FaultSpec spec;
    if (text.empty())
        return spec;
    for (const std::string &token : split(text, ',')) {
        if (token.empty())
            continue;
        std::size_t eq = token.find('=');
        if (eq == std::string::npos)
            specFail(strfmt("token '%s' is not key=value", token.c_str()));
        std::string key = token.substr(0, eq);
        std::string val = token.substr(eq + 1);
        if (key == "seed") {
            spec.seed = parseU64(val, "seed");
        } else if (key == "rate") {
            spec.ratePerMcycle = parseDouble(val, "rate");
        } else if (key == "n") {
            spec.count = unsigned(parseU64(val, "n"));
        } else if (key == "horizon") {
            spec.horizon = parseU64(val, "horizon");
            if (spec.horizon == 0)
                specFail("horizon must be positive");
        } else if (key == "kinds") {
            spec.kindMask = parseKinds(val);
        } else if (key == "bits") {
            std::uint64_t bits = parseU64(val, "bits");
            if (bits < 1 || bits > 2)
                specFail("bits must be 1 or 2");
            spec.maxFlipBits = unsigned(bits);
        } else if (key == "at") {
            spec.explicitEvents.push_back(parseExplicit(val));
        } else {
            specFail(strfmt("unknown key '%s'", key.c_str()));
        }
    }
    return spec;
}

std::vector<FaultEvent>
buildPlan(const FaultSpec &spec, unsigned cells)
{
    opac_assert(cells > 0, "fault plan for zero cells");
    std::vector<FaultKind> kinds;
    for (unsigned k = 0; k < unsigned(FaultKind::numKinds); ++k)
        if (spec.kindEnabled(FaultKind(k)))
            kinds.push_back(FaultKind(k));

    std::vector<FaultEvent> plan;
    Rng rng(spec.seed ? spec.seed : 1);
    unsigned n = kinds.empty() ? 0 : spec.randomCount();
    plan.reserve(n + spec.explicitEvents.size());
    for (unsigned i = 0; i < n; ++i) {
        FaultEvent e;
        e.at = rng.range(1, spec.horizon);
        e.kind = kinds[std::size_t(rng.range(0, kinds.size() - 1))];
        e.cell = unsigned(rng.range(0, cells - 1));
        switch (e.kind) {
          case FaultKind::FifoFlip: {
            e.site =
                FifoSite(rng.range(0, unsigned(FifoSite::numSites) - 1));
            unsigned b1 = unsigned(rng.range(0, 31));
            e.mask = 1u << b1;
            if (spec.maxFlipBits >= 2 && rng.range(0, 1)) {
                unsigned b2 = unsigned(rng.range(0, 30));
                if (b2 >= b1)
                    ++b2;
                e.mask |= 1u << b2;
            }
            break;
          }
          case FaultKind::BusReorder: {
            // Reorder only makes sense on the bus-fed input queues.
            static const FifoSite inputs[] = {FifoSite::TpX,
                                              FifoSite::TpY,
                                              FifoSite::TpI};
            e.site = inputs[std::size_t(rng.range(0, 2))];
            break;
          }
          case FaultKind::CellHang:
            // Random hangs are always bounded; permanent hangs (arg=0)
            // are only available as explicit events, because a
            // permanent hang is survivable only with recovery enabled.
            e.arg = rng.range(200, 2000);
            break;
          case FaultKind::MemLatency:
            e.arg = rng.range(20, 200);
            break;
          case FaultKind::BusDrop:
          case FaultKind::BusDup:
          case FaultKind::SpuriousHalt:
          case FaultKind::numKinds:
            break;
        }
        plan.push_back(e);
    }
    for (FaultEvent e : spec.explicitEvents) {
        e.cell %= cells;
        plan.push_back(e);
    }
    std::stable_sort(plan.begin(), plan.end(),
                     [](const FaultEvent &a, const FaultEvent &b) {
                         return a.at < b.at;
                     });
    return plan;
}

std::string
describeFault(const FaultEvent &e)
{
    std::string detail;
    switch (e.kind) {
      case FaultKind::FifoFlip:
        detail = strfmt(" %s mask=%#x", fifoSiteName(e.site), e.mask);
        break;
      case FaultKind::BusReorder:
        detail = strfmt(" %s", fifoSiteName(e.site));
        break;
      case FaultKind::CellHang:
        detail = e.arg ? strfmt(" for %llu cycles",
                                (unsigned long long)e.arg)
                       : std::string(" permanently");
        break;
      case FaultKind::MemLatency:
        detail = strfmt(" +%llu cycles", (unsigned long long)e.arg);
        break;
      case FaultKind::BusDrop:
      case FaultKind::BusDup:
      case FaultKind::SpuriousHalt:
      case FaultKind::numKinds:
        break;
    }
    return strfmt("cycle %llu: %s cell%u%s",
                  (unsigned long long)e.at, faultKindName(e.kind),
                  e.cell, detail.c_str());
}

namespace
{

/**
 * SECDED(38,32) layout: codeword positions 1..38, check bits at the
 * power-of-two positions, data bits filling the remaining 32 slots in
 * order. An extra overall-parity bit (ecc bit 6) extends single-error
 * correction to double-error detection.
 */
struct SecdedLayout
{
    std::array<std::uint64_t, 6> groupMask{}; //!< data bits per parity
    std::array<int, 39> posToData{};

    SecdedLayout()
    {
        posToData.fill(-1);
        unsigned di = 0;
        for (unsigned pos = 1; pos <= 38; ++pos) {
            if ((pos & (pos - 1)) == 0)
                continue; // check-bit slot
            posToData[pos] = int(di);
            for (unsigned pi = 0; pi < 6; ++pi)
                if (pos & (1u << pi))
                    groupMask[pi] |= std::uint64_t(1) << di;
            ++di;
        }
    }
};

const SecdedLayout &
layout()
{
    static const SecdedLayout l;
    return l;
}

} // anonymous namespace

std::uint8_t
secdedEncode(Word w)
{
    const SecdedLayout &l = layout();
    std::uint8_t ecc = 0;
    for (unsigned pi = 0; pi < 6; ++pi)
        if (std::popcount(std::uint64_t(w) & l.groupMask[pi]) & 1)
            ecc |= std::uint8_t(1u << pi);
    if ((std::popcount(w) + std::popcount(unsigned(ecc & 0x3f))) & 1)
        ecc |= 0x40;
    return ecc;
}

SecdedResult
secdedDecode(Word &w, std::uint8_t ecc)
{
    std::uint8_t expect = secdedEncode(w);
    unsigned syndrome = unsigned(expect ^ ecc) & 0x3fu;
    // The stored overall bit covers the data word plus the *stored*
    // check bits, so recompute it over exactly those — comparing
    // against re-derived check bits would cancel the flip whenever
    // the syndrome has odd popcount.
    bool overallOdd =
        (((std::popcount(w) + std::popcount(unsigned(ecc) & 0x3fu))
          & 1)
         != 0)
        != ((ecc & 0x40) != 0);
    if (syndrome == 0 && !overallOdd)
        return SecdedResult::Ok;
    if (!overallOdd)
        return SecdedResult::Uncorrectable; // even number of flips
    // Odd number of flips: assume one. The syndrome is the codeword
    // position of the flipped bit; repair it when it names a data bit.
    if (syndrome >= 1 && syndrome <= 38) {
        int di = layout().posToData[syndrome];
        if (di >= 0) {
            w ^= 1u << unsigned(di);
            return SecdedResult::Corrected;
        }
    }
    // An odd flip count whose syndrome names no data bit: >= 3 flips.
    return SecdedResult::Uncorrectable;
}

} // namespace opac::fault
