#include "fault/injector.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snap/snapshot.hh"

namespace opac::fault
{

Injector::Injector(std::string name, std::vector<FaultEvent> plan,
                   stats::StatGroup *parent)
    : sim::Component(std::move(name)), plan(std::move(plan)),
      statGroup(this->name(), parent)
{
    statGroup.addCounter("injected", &statInjected,
                         "faults armed into the machine");
    for (unsigned k = 0; k < unsigned(FaultKind::numKinds); ++k)
        statGroup.addCounter(faultKindName(FaultKind(k)), &statByKind[k],
                             "faults of this kind armed");
}

void
Injector::tick(sim::Engine &engine)
{
    Cycle now = engine.now();
    while (next < plan.size() && plan[next].at <= now) {
        const FaultEvent &e = plan[next];
        ++statInjected;
        ++statByKind[std::size_t(e.kind)];
        if (tracer)
            tracer->emit(now, trace::EventKind::Fault,
                         std::uint8_t(e.kind), traceComp, 0, e.cell,
                         e.kind == FaultKind::FifoFlip
                             ? e.mask
                             : std::uint32_t(e.arg));
        if (arm)
            arm(e, now);
        ++next;
        // Arming is not noteProgress(): a fault alone must not feed
        // the watchdog — only the machine's reaction to it does.
    }
}

Cycle
Injector::nextEventAt(Cycle now) const
{
    if (next >= plan.size())
        return noEvent;
    // tick() at `now` consumed everything due, so this is in the
    // future; clamp defensively anyway.
    return std::max(plan[next].at, now + 1);
}

void
Injector::saveState(snap::Writer &w) const
{
    w.u64(plan.size());
    w.u64(next);
}

void
Injector::loadState(snap::Reader &r, std::uint32_t version)
{
    (void)version;
    std::uint64_t size = r.u64();
    if (size != plan.size())
        r.fail(name() + ": snapshot plan has " + std::to_string(size) +
               " faults, this machine generated " +
               std::to_string(plan.size()));
    std::uint64_t cursor = r.u64();
    if (cursor > plan.size())
        r.fail(name() + ": arming cursor past the end of the plan");
    next = std::size_t(cursor);
}

std::string
Injector::statusLine() const
{
    if (next >= plan.size())
        return strfmt("armed %zu/%zu faults", next, plan.size());
    return strfmt("armed %zu/%zu faults, next %s", next, plan.size(),
                  describeFault(plan[next]).c_str());
}

} // namespace opac::fault
