#include "analytic/models.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/math_util.hh"

namespace opac::analytic
{

LocalMemoryRequirement
matUpdateRequirement(unsigned tau, unsigned p)
{
    LocalMemoryRequirement r;
    r.minN = std::size_t(4) * tau * p;
    r.words = r.minN * r.minN / p;
    return r;
}

std::size_t
paperTileN(unsigned p, std::size_t tf)
{
    std::size_t best = 0;
    std::size_t limit = std::size_t(isqrt(std::int64_t(tf) * p));
    for (std::size_t n = 1; n <= limit; ++n) {
        if ((n * n) % p == 0 && n * n <= tf * p)
            best = n;
    }
    opac_assert(best > 0, "no feasible tile size for P=%u Tf=%zu", p,
                tf);
    return best;
}

double
matUpdateBandwidthBound(unsigned p, unsigned tau, std::size_t n,
                        std::size_t k)
{
    double mas = matUpdateMultiplyAdds(n, k);
    double words = 2.0 * double(n) * double(n)
        + double(k) * 2.0 * double(n);
    double host_cycles = words * tau;
    return std::min(double(p), mas / host_cycles);
}

double
matUpdateAsymptoticBound(unsigned p, unsigned tau, std::size_t n)
{
    return std::min(double(p), double(n) / (2.0 * tau));
}

double
convBandwidthBound(unsigned cells, unsigned tau, std::size_t m,
                   std::size_t wu, unsigned p, unsigned q)
{
    // Per output row: each block's input slice is re-read (wu + q - 1
    // words), plus m result writes.
    double blocks = double(ceilDiv(std::int64_t(m), std::int64_t(wu)));
    double reads = blocks * double(wu + q - 1);
    double words_per_row = reads + double(m);
    double useful = double(m) * p * q;
    return std::min(double(cells), useful / (words_per_row * tau));
}

double
scalarGemmCycles(std::size_t m, std::size_t n, std::size_t k,
                 unsigned tau, double ma_per_cycle,
                 std::size_t cache_words)
{
    double mas = double(m) * double(n) * double(k);
    // Square cache blocking: 3 b^2 <= cache; traffic ~ 2 m n k / b.
    double b = std::max(1.0,
                        std::floor(std::sqrt(double(cache_words) / 3.0)));
    b = std::min(b, double(std::min({m, n, k})));
    double traffic = 2.0 * mas / b + 2.0 * double(m) * double(n);
    return std::max(mas / ma_per_cycle, traffic * tau);
}

double
luMultiplyAdds(std::size_t n)
{
    double total = 0.0;
    for (std::size_t s = n; s >= 1; --s) {
        double t = double(s - 1);
        total += t * t + t;
    }
    return total;
}

} // namespace opac::analytic
