/**
 * @file
 * Closed-form models from section 4 of the paper, used to generate
 * tables 4.2a/4.2b and to annotate simulated results with their
 * host-bandwidth ceilings.
 */

#ifndef OPAC_ANALYTIC_MODELS_HH
#define OPAC_ANALYTIC_MODELS_HH

#include <cstddef>

namespace opac::analytic
{

/** Table 4.2: minimum update size and local memory per cell. */
struct LocalMemoryRequirement
{
    std::size_t minN;  //!< smallest N with compute >= transfer time
    std::size_t words; //!< local memory per cell: N^2 / P
};

/**
 * Section 4.2: for the matrix update A(N,N) += B(N,N)*C(N,N), the 4N^2
 * word transfers must not exceed the N^3/P per-cell multiply-adds:
 * N >= 4 tau P, and one matrix operand (N^2/P words per cell) must be
 * resident.
 */
LocalMemoryRequirement matUpdateRequirement(unsigned tau, unsigned p);

/**
 * Section 6.1's tile-size rule: the greatest N such that N^2 is a
 * multiple of P and N^2 <= Tf * P (each cell holds N^2/P words).
 */
std::size_t paperTileN(unsigned p, std::size_t tf);

/**
 * Host-bandwidth ceiling for the matrix update of one N x N tile over
 * K iterations, in multiply-adds per cycle: the host moves 2 N^2 words
 * of tile traffic plus (N + N) words per iteration at one word per
 * tau; the cells produce N^2 K multiply-adds.
 */
double matUpdateBandwidthBound(unsigned p, unsigned tau, std::size_t n,
                               std::size_t k);

/**
 * Asymptotic (K -> inf) matrix-update ceiling: min(P, N / (2 tau)).
 */
double matUpdateAsymptoticBound(unsigned p, unsigned tau,
                                std::size_t n);

/**
 * Section 6.2: bandwidth ceiling of the blocked p x q convolution in
 * *useful* multiply-adds per cycle. Per output row the host moves
 * blocks * Wi reads plus M writes for M * p * q useful multiply-adds.
 */
double convBandwidthBound(unsigned cells, unsigned tau, std::size_t m,
                          std::size_t wu, unsigned p, unsigned q);

/**
 * Scalar-host baseline (section 4.1): a microprocessor issuing
 * ma_per_cycle multiply-adds per cycle at best, moving one word per
 * tau cycles, with a cache of cache_words. Returns estimated cycles
 * for a blocked M x N x K matrix multiply.
 */
double scalarGemmCycles(std::size_t m, std::size_t n, std::size_t k,
                        unsigned tau, double ma_per_cycle,
                        std::size_t cache_words);

/**
 * LU floating-point work in multiply-adds: sum over steps of
 * (s-1)^2 + (s-1)  (rank-1 update plus column scaling).
 */
double luMultiplyAdds(std::size_t n);

/** Matrix-update multiply-adds: N^2 K for an N x N tile. */
inline double
matUpdateMultiplyAdds(std::size_t n, std::size_t k)
{
    return double(n) * double(n) * double(k);
}

} // namespace opac::analytic

#endif // OPAC_ANALYTIC_MODELS_HH
