#include "softfloat/float32.hh"

#include "common/logging.hh"

namespace opac::sf
{

namespace
{

constexpr Word signMask = 0x80000000u;
constexpr Word expMask  = 0x7f800000u;
constexpr Word fracMask = 0x007fffffu;
constexpr Word quietBit = 0x00400000u;

using u128 = unsigned __int128;

constexpr int expBias = 127;
constexpr int expMin  = -126; //!< unbiased exponent of smallest normal

inline Word packedExp(Word a) { return (a & expMask) >> 23; }
inline Word packedFrac(Word a) { return a & fracMask; }

/** Right shift that ORs every shifted-out bit into the result's bit 0. */
inline std::uint64_t
shiftRightJam(std::uint64_t v, int n)
{
    if (n <= 0)
        return v;
    if (n >= 64)
        return v != 0 ? 1 : 0;
    return (v >> n) | ((v & ((std::uint64_t(1) << n) - 1)) != 0 ? 1 : 0);
}

/** 128-bit variant of shiftRightJam, for the fused multiply-add. */
inline unsigned __int128
shiftRightJam128(unsigned __int128 v, int n)
{
    if (n <= 0)
        return v;
    if (n >= 128)
        return v != 0 ? 1 : 0;
    u128 mask = (u128(1) << n) - 1;
    return (v >> n) | ((v & mask) != 0 ? 1 : 0);
}

/**
 * A finite nonzero value in unpacked form:
 * value = (-1)^sign * sig * 2^(exp - 23), with 2^23 <= sig < 2^24.
 */
struct Unpacked
{
    bool sign;
    int exp;
    std::uint32_t sig;
};

/**
 * True for a normal number: exponent field in [1, 254]. One compare
 * covers zero, subnormal, infinity and NaN at once, so the arithmetic
 * entry points can take a fast path on the overwhelmingly common case.
 */
inline bool
isNormal(Word a)
{
    return packedExp(a) - 1u <= 253u;
}

/** Unpack a value already known to be normal (no subnormal loop). */
inline Unpacked
unpackNormal(Word a)
{
    return {(a & signMask) != 0, int(packedExp(a)) - expBias,
            packedFrac(a) | 0x00800000u};
}

/** Unpack a finite nonzero encoding (normal or subnormal). */
Unpacked
unpack(Word a)
{
    Unpacked u;
    u.sign = (a & signMask) != 0;
    Word e = packedExp(a);
    Word f = packedFrac(a);
    if (e == 0) {
        // Subnormal: normalize the significand.
        opac_assert(f != 0, "unpack() on a zero");
        int sh = 0;
        while (!(f & 0x00800000u)) {
            f <<= 1;
            ++sh;
        }
        u.exp = expMin - sh;
        u.sig = f;
    } else {
        u.exp = int(e) - expBias;
        u.sig = f | 0x00800000u;
    }
    return u;
}

Word
packBits(bool sign, Word exp_field, Word frac)
{
    return (sign ? signMask : 0) | (exp_field << 23) | frac;
}

/** Quiet the leftmost NaN among the operands; raise invalid on any sNaN. */
Word
propagateNaN(Word a, Word b, Context &ctx)
{
    if (isSignalingNaN(a) || isSignalingNaN(b))
        ctx.raise(FlagInvalid);
    if (isNaN(a))
        return a | quietBit;
    return b | quietBit;
}

Word
overflowResult(bool sign, Context &ctx)
{
    ctx.raise(FlagOverflow | FlagInexact);
    const Word maxFinite = 0x7f7fffffu;
    switch (ctx.rounding) {
      case Round::NearestEven:
        return sign ? negInf : posInf;
      case Round::TowardZero:
        return packBits(sign, 0, 0) | maxFinite;
      case Round::Down:
        return sign ? negInf : (posZero | maxFinite);
      case Round::Up:
        return sign ? (signMask | maxFinite) : posInf;
    }
    opac_panic("bad rounding mode");
}

/**
 * Normalize, round and pack a finite result.
 *
 * Input: value = (-1)^sign * sig * 2^(exp - 26). The significand is
 * normalized into [2^26, 2^27) (24 significand bits plus three
 * guard/round/sticky bits), then rounded per the context's direction.
 * Underflow uses tininess-after-rounding, matching common hardware.
 */
Word
normRoundPack(bool sign, int exp, std::uint64_t sig, Context &ctx)
{
    if (sig == 0)
        return sign ? negZero : posZero;

    // Normalize to [2^26, 2^27).
    while (sig >= (std::uint64_t(1) << 27)) {
        sig = shiftRightJam(sig, 1);
        ++exp;
    }
    while (sig < (std::uint64_t(1) << 26)) {
        sig <<= 1;
        --exp;
    }

    // Denormalize if below the normal range.
    if (exp < expMin) {
        sig = shiftRightJam(sig, expMin - exp);
        exp = expMin;
    }

    std::uint64_t round_bits = sig & 7;
    std::uint64_t inc = 0;
    switch (ctx.rounding) {
      case Round::NearestEven:
        inc = 4;
        break;
      case Round::TowardZero:
        inc = 0;
        break;
      case Round::Down:
        inc = sign ? 7 : 0;
        break;
      case Round::Up:
        inc = sign ? 0 : 7;
        break;
    }

    std::uint64_t rounded = (sig + inc) >> 3;
    if (ctx.rounding == Round::NearestEven && round_bits == 4)
        rounded &= ~std::uint64_t(1); // exact tie: round to even

    if (round_bits != 0)
        ctx.raise(FlagInexact);

    if (rounded >= (std::uint64_t(1) << 24)) {
        rounded >>= 1; // carry out of the significand
        ++exp;
    }

    if (rounded == 0)
        return sign ? negZero : posZero;

    if (rounded < (std::uint64_t(1) << 23)) {
        // Subnormal result (exp == expMin by construction).
        if (round_bits != 0)
            ctx.raise(FlagUnderflow);
        return packBits(sign, 0, Word(rounded));
    }

    if (exp > 127)
        return overflowResult(sign, ctx);

    return packBits(sign, Word(exp + expBias), Word(rounded) & fracMask);
}

/** Round-and-pack for callers that already hold the 27-bit form. */
Word
roundPack(bool sign, int exp, std::uint64_t sig, Context &ctx)
{
    return normRoundPack(sign, exp, sig, ctx);
}

/** Integer square root of a 64-bit value (floor). */
std::uint64_t
isqrt64(std::uint64_t v)
{
    if (v == 0)
        return 0;
    std::uint64_t r = 0;
    std::uint64_t bit = std::uint64_t(1) << 62;
    while (bit > v)
        bit >>= 2;
    while (bit != 0) {
        if (v >= r + bit) {
            v -= r + bit;
            r = (r >> 1) + bit;
        } else {
            r >>= 1;
        }
        bit >>= 2;
    }
    return r;
}

/**
 * Sum or difference of two unpacked finite nonzero values — the single
 * rounding core shared by the fast and slow paths of add(), so both are
 * bit-identical by construction.
 */
Word
addCore(const Unpacked &ua, const Unpacked &ub, Context &ctx)
{
    // Align to the larger exponent, with three guard bits.
    std::uint64_t sa = std::uint64_t(ua.sig) << 3;
    std::uint64_t sb = std::uint64_t(ub.sig) << 3;
    int exp;
    if (ua.exp >= ub.exp) {
        sb = shiftRightJam(sb, ua.exp - ub.exp);
        exp = ua.exp;
    } else {
        sa = shiftRightJam(sa, ub.exp - ua.exp);
        exp = ub.exp;
    }

    if (ua.sign == ub.sign)
        return roundPack(ua.sign, exp, sa + sb, ctx);

    // Effective subtraction.
    bool rsign;
    std::uint64_t diff;
    if (sa > sb) {
        rsign = ua.sign;
        diff = sa - sb;
    } else if (sb > sa) {
        rsign = ub.sign;
        diff = sb - sa;
    } else {
        return ctx.rounding == Round::Down ? negZero : posZero;
    }
    return roundPack(rsign, exp, diff, ctx);
}

} // anonymous namespace

bool
isNaN(Word a)
{
    return (a & expMask) == expMask && packedFrac(a) != 0;
}

bool
isSignalingNaN(Word a)
{
    return isNaN(a) && (a & quietBit) == 0;
}

bool
isInf(Word a)
{
    return (a & expMask) == expMask && packedFrac(a) == 0;
}

bool
isZero(Word a)
{
    return (a & ~signMask) == 0;
}

bool
isSubnormal(Word a)
{
    return packedExp(a) == 0 && packedFrac(a) != 0;
}

bool
sign(Word a)
{
    return (a & signMask) != 0;
}

Word
neg(Word a)
{
    return a ^ signMask;
}

Word
abs(Word a)
{
    return a & ~signMask;
}

Word
add(Word a, Word b, Context &ctx)
{
    // Fast path: both operands normal, the overwhelmingly common case
    // in kernel inner loops. One range compare per operand replaces
    // the NaN/inf/zero classification chain and the subnormal
    // normalization loop; the rounding core is shared with the slow
    // path, so results are bit-identical.
    if (isNormal(a) && isNormal(b))
        return addCore(unpackNormal(a), unpackNormal(b), ctx);

    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, ctx);

    if (isInf(a)) {
        if (isInf(b) && sign(a) != sign(b)) {
            ctx.raise(FlagInvalid);
            return defaultNaN;
        }
        return a;
    }
    if (isInf(b))
        return b;

    if (isZero(a) && isZero(b)) {
        if (sign(a) == sign(b))
            return a;
        return ctx.rounding == Round::Down ? negZero : posZero;
    }
    if (isZero(a))
        return b;
    if (isZero(b))
        return a;

    return addCore(unpack(a), unpack(b), ctx);
}

Word
sub(Word a, Word b, Context &ctx)
{
    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, ctx);
    return add(a, neg(b), ctx);
}

Word
mul(Word a, Word b, Context &ctx)
{
    // Fast path: both operands normal (see add()). The slow path for
    // two normals performs exactly this computation, so results are
    // bit-identical.
    if (isNormal(a) && isNormal(b)) {
        Unpacked ua = unpackNormal(a);
        Unpacked ub = unpackNormal(b);
        std::uint64_t prod =
            std::uint64_t(ua.sig) * std::uint64_t(ub.sig);
        return normRoundPack(ua.sign != ub.sign,
                             ua.exp + ub.exp - 46 + 26, prod, ctx);
    }

    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, ctx);

    bool rsign = sign(a) != sign(b);

    if (isInf(a) || isInf(b)) {
        if (isZero(a) || isZero(b)) {
            ctx.raise(FlagInvalid);
            return defaultNaN;
        }
        return rsign ? negInf : posInf;
    }
    if (isZero(a) || isZero(b))
        return rsign ? negZero : posZero;

    Unpacked ua = unpack(a);
    Unpacked ub = unpack(b);

    // Product of two 24-bit significands: 47 or 48 bits.
    std::uint64_t prod = std::uint64_t(ua.sig) * std::uint64_t(ub.sig);
    // value = prod * 2^(ea + eb - 46); normRoundPack wants 2^(exp - 26).
    return normRoundPack(rsign, ua.exp + ub.exp - 46 + 26, prod, ctx);
}

Word
mulAdd(Word a, Word b, Word c, Context &ctx)
{
    // NaN and invalid-combination handling first.
    bool any_snan = isSignalingNaN(a) || isSignalingNaN(b)
        || isSignalingNaN(c);
    bool prod_inf = (isInf(a) && !isZero(b)) || (isInf(b) && !isZero(a));
    bool prod_invalid = (isInf(a) && isZero(b)) || (isInf(b) && isZero(a));
    bool psign = sign(a) != sign(b);

    if (isNaN(a) || isNaN(b) || isNaN(c)) {
        if (any_snan || prod_invalid)
            ctx.raise(FlagInvalid);
        if (isNaN(a))
            return a | quietBit;
        if (isNaN(b))
            return b | quietBit;
        return c | quietBit;
    }
    if (prod_invalid) {
        ctx.raise(FlagInvalid);
        return defaultNaN;
    }
    if (prod_inf) {
        if (isInf(c) && sign(c) != psign) {
            ctx.raise(FlagInvalid);
            return defaultNaN;
        }
        return psign ? negInf : posInf;
    }
    if (isInf(c))
        return c;

    if (isZero(a) || isZero(b)) {
        // Exact product is a signed zero; fall back to the addition rules.
        Word pz = psign ? negZero : posZero;
        return add(pz, c, ctx);
    }

    Unpacked ua = unpack(a);
    Unpacked ub = unpack(b);

    // Exact product: up to 48 bits, value = prod * 2^(pexp - 46).
    std::uint64_t prod = std::uint64_t(ua.sig) * std::uint64_t(ub.sig);
    int pexp = ua.exp + ub.exp;

    if (isZero(c))
        return normRoundPack(psign, pexp - 46 + 26, prod, ctx);

    Unpacked uc = unpack(c);

    // Work at scale 2^(e - 72): product << 26, addend << 49. The widths
    // (74 and 73 bits max) fit an unsigned __int128 comfortably.
    u128 p128 = u128(prod) << 26;
    u128 c128 = u128(uc.sig) << 49;
    int ep = pexp;   // scale exponent of p128: value = p128 * 2^(ep - 72)
    int ec = uc.exp; // likewise for c128

    int exp;
    if (ep >= ec) {
        c128 = shiftRightJam128(c128, ep - ec);
        exp = ep;
    } else {
        p128 = shiftRightJam128(p128, ec - ep);
        exp = ec;
    }

    bool rsign;
    u128 mag;
    if (psign == uc.sign) {
        rsign = psign;
        mag = p128 + c128;
    } else if (p128 > c128) {
        rsign = psign;
        mag = p128 - c128;
    } else if (c128 > p128) {
        rsign = uc.sign;
        mag = c128 - p128;
    } else {
        return ctx.rounding == Round::Down ? negZero : posZero;
    }

    // Reduce to 64 bits with jam, tracking the scale change.
    int shift = 0;
    for (u128 tmp = mag >> 63; tmp != 0; tmp >>= 1)
        ++shift;
    std::uint64_t sig64 = std::uint64_t(shiftRightJam128(mag, shift));

    // value = sig64 * 2^(exp - 72 + shift).
    return normRoundPack(rsign, exp - 72 + shift + 26, sig64, ctx);
}

Word
chainedMulAdd(Word a, Word b, Word c, Context &ctx)
{
    Word p = mul(a, b, ctx);
    return add(p, c, ctx);
}

Word
div(Word a, Word b, Context &ctx)
{
    if (isNaN(a) || isNaN(b))
        return propagateNaN(a, b, ctx);

    bool rsign = sign(a) != sign(b);

    if (isInf(a)) {
        if (isInf(b)) {
            ctx.raise(FlagInvalid);
            return defaultNaN;
        }
        return rsign ? negInf : posInf;
    }
    if (isInf(b))
        return rsign ? negZero : posZero;
    if (isZero(b)) {
        if (isZero(a)) {
            ctx.raise(FlagInvalid);
            return defaultNaN;
        }
        ctx.raise(FlagDivZero);
        return rsign ? negInf : posInf;
    }
    if (isZero(a))
        return rsign ? negZero : posZero;

    Unpacked ua = unpack(a);
    Unpacked ub = unpack(b);

    int exp = ua.exp - ub.exp;
    std::uint64_t sa = ua.sig;
    if (sa < ub.sig) {
        sa <<= 1;
        --exp;
    }
    // Now sa / sigB in [1, 2): a 27-bit quotient has the leading bit at
    // position 26, exactly the normRoundPack form.
    std::uint64_t num = sa << 26;
    std::uint64_t q = num / ub.sig;
    std::uint64_t rem = num - q * ub.sig;
    if (rem != 0)
        q |= 1; // sticky
    // value = q * 2^(exp - 26): already in the roundPack form.
    return roundPack(rsign, exp, q, ctx);
}

Word
sqrt(Word a, Context &ctx)
{
    if (isNaN(a)) {
        if (isSignalingNaN(a))
            ctx.raise(FlagInvalid);
        return a | quietBit;
    }
    if (isZero(a))
        return a;
    if (sign(a)) {
        ctx.raise(FlagInvalid);
        return defaultNaN;
    }
    if (isInf(a))
        return posInf;

    Unpacked ua = unpack(a);
    int e = ua.exp - 23; // value = sig * 2^e
    std::uint64_t m = ua.sig;
    if (e & 1) {
        m <<= 1;
        --e;
    }
    // sqrt(m * 2^e) = sqrt(m << 32) * 2^((e - 32) / 2)
    std::uint64_t wide = m << 32;
    std::uint64_t s = isqrt64(wide);
    std::uint64_t rem = wide - s * s;
    std::uint64_t sig = (s << 1) | (rem != 0 ? 1 : 0);
    // value = sig * 2^((e - 32) / 2 - 1)
    return normRoundPack(false, (e - 32) / 2 - 1 + 26, sig, ctx);
}

bool
eq(Word a, Word b, Context &ctx)
{
    if (isNaN(a) || isNaN(b)) {
        if (isSignalingNaN(a) || isSignalingNaN(b))
            ctx.raise(FlagInvalid);
        return false;
    }
    if (isZero(a) && isZero(b))
        return true;
    return a == b;
}

bool
lt(Word a, Word b, Context &ctx)
{
    if (isNaN(a) || isNaN(b)) {
        ctx.raise(FlagInvalid);
        return false;
    }
    bool sa = sign(a);
    bool sb = sign(b);
    if (isZero(a) && isZero(b))
        return false;
    if (sa != sb)
        return sa;
    Word ma = a & ~signMask;
    Word mb = b & ~signMask;
    return sa ? ma > mb : ma < mb;
}

bool
le(Word a, Word b, Context &ctx)
{
    if (isNaN(a) || isNaN(b)) {
        ctx.raise(FlagInvalid);
        return false;
    }
    return lt(a, b, ctx) || eq(a, b, ctx);
}

Word
fromInt32(std::int32_t v, Context &ctx)
{
    if (v == 0)
        return posZero;
    bool s = v < 0;
    std::uint64_t mag = s ? std::uint64_t(-std::int64_t(v))
        : std::uint64_t(v);
    // value = mag * 2^0: normRoundPack wants sig * 2^(exp - 26).
    return normRoundPack(s, 26, mag, ctx);
}

std::int32_t
toInt32(Word a, Context &ctx)
{
    if (isNaN(a)) {
        ctx.raise(FlagInvalid);
        return 0;
    }
    if (isInf(a)) {
        ctx.raise(FlagInvalid);
        return sign(a) ? INT32_MIN : INT32_MAX;
    }
    if (isZero(a))
        return 0;

    Unpacked u = unpack(a);
    // value = sig * 2^(exp - 23)
    int shift = u.exp - 23;
    std::uint64_t mag;
    std::uint64_t round_bits = 0;
    if (shift >= 0) {
        if (shift > 8 || (std::uint64_t(u.sig) << shift)
                > std::uint64_t(INT32_MAX) + (u.sign ? 1 : 0)) {
            ctx.raise(FlagInvalid);
            return u.sign ? INT32_MIN : INT32_MAX;
        }
        mag = std::uint64_t(u.sig) << shift;
    } else {
        int rs = -shift;
        std::uint64_t scaled = shiftRightJam(std::uint64_t(u.sig) << 3,
                                             rs);
        round_bits = scaled & 7;
        mag = scaled >> 3;
        std::uint64_t inc = 0;
        switch (ctx.rounding) {
          case Round::NearestEven:
            if (round_bits > 4 || (round_bits == 4 && (mag & 1)))
                inc = 1;
            break;
          case Round::TowardZero:
            break;
          case Round::Down:
            if (u.sign && round_bits)
                inc = 1;
            break;
          case Round::Up:
            if (!u.sign && round_bits)
                inc = 1;
            break;
        }
        mag += inc;
        if (round_bits)
            ctx.raise(FlagInexact);
        if (mag > std::uint64_t(INT32_MAX) + (u.sign ? 1 : 0)) {
            ctx.raise(FlagInvalid);
            return u.sign ? INT32_MIN : INT32_MAX;
        }
    }
    return u.sign ? std::int32_t(-std::int64_t(mag)) : std::int32_t(mag);
}

} // namespace opac::sf
