/**
 * @file
 * Bit-accurate IEEE-754 binary32 arithmetic.
 *
 * The OPAC datapath is built from a pipelined single-precision multiplier
 * and adder; this module is the arithmetic substrate those units use. It
 * is a from-scratch software implementation (no dependence on the host
 * FPU), with all four IEEE rounding directions, gradual underflow, NaN
 * propagation and the five exception flags.
 *
 * Two composite operations are provided on top of the primitives:
 *  - mulAdd(): a *fused* multiply-add with a single rounding, and
 *  - chainedMulAdd(): multiply rounded, then add rounded — which is what
 *    the OPAC cell actually computes, since its multiplier and adder are
 *    two separate pipelined units connected by a direct path.
 */

#ifndef OPAC_SOFTFLOAT_FLOAT32_HH
#define OPAC_SOFTFLOAT_FLOAT32_HH

#include <cstdint>

#include "common/types.hh"

namespace opac::sf
{

/** IEEE-754 rounding directions. */
enum class Round : std::uint8_t
{
    NearestEven, //!< roundTiesToEven (default)
    TowardZero,
    Down,        //!< toward -infinity
    Up,          //!< toward +infinity
};

/** IEEE-754 exception flags, OR-able. */
enum Flag : std::uint8_t
{
    FlagInexact   = 1 << 0,
    FlagUnderflow = 1 << 1,
    FlagOverflow  = 1 << 2,
    FlagDivZero   = 1 << 3,
    FlagInvalid   = 1 << 4,
};

/** Default quiet NaN produced by invalid operations. */
constexpr Word defaultNaN = 0x7fc00000u;

/** Positive/negative zero and infinity encodings. */
constexpr Word posZero = 0x00000000u;
constexpr Word negZero = 0x80000000u;
constexpr Word posInf  = 0x7f800000u;
constexpr Word negInf  = 0xff800000u;

/** Classification helpers on raw encodings. */
bool isNaN(Word a);
bool isSignalingNaN(Word a);
bool isInf(Word a);
bool isZero(Word a);
bool isSubnormal(Word a);
bool sign(Word a);

/**
 * Arithmetic context: rounding direction plus accumulated exception
 * flags. Every operation takes the context by reference and ORs the flags
 * it raises into it.
 */
struct Context
{
    Round rounding = Round::NearestEven;
    std::uint8_t flags = 0;

    void raise(std::uint8_t f) { flags |= f; }
    bool raised(std::uint8_t f) const { return (flags & f) != 0; }
    void clearFlags() { flags = 0; }
};

/** a + b, correctly rounded. */
Word add(Word a, Word b, Context &ctx);

/** a - b, correctly rounded. */
Word sub(Word a, Word b, Context &ctx);

/** a * b, correctly rounded. */
Word mul(Word a, Word b, Context &ctx);

/** Fused a * b + c with a single rounding. */
Word mulAdd(Word a, Word b, Word c, Context &ctx);

/**
 * The OPAC datapath composite: round(round(a * b) + c). Two roundings, as
 * produced by a discrete multiplier chained into a discrete adder.
 */
Word chainedMulAdd(Word a, Word b, Word c, Context &ctx);

/** a / b, correctly rounded. */
Word div(Word a, Word b, Context &ctx);

/** sqrt(a), correctly rounded. */
Word sqrt(Word a, Context &ctx);

/** Negation (sign-bit flip; never raises flags, per IEEE negate). */
Word neg(Word a);

/** Absolute value (sign-bit clear). */
Word abs(Word a);

/** Quiet equality comparison (NaN != everything, -0 == +0). */
bool eq(Word a, Word b, Context &ctx);

/** Signaling less-than (invalid on any NaN). */
bool lt(Word a, Word b, Context &ctx);

/** Signaling less-or-equal (invalid on any NaN). */
bool le(Word a, Word b, Context &ctx);

/** Convert a signed 32-bit integer to binary32 (rounded). */
Word fromInt32(std::int32_t v, Context &ctx);

/** Convert binary32 to signed 32-bit integer, rounding per context. */
std::int32_t toInt32(Word a, Context &ctx);

} // namespace opac::sf

#endif // OPAC_SOFTFLOAT_FLOAT32_HH
