/**
 * @file
 * Cycle-driven simulation engine.
 *
 * All OPAC components (host, bus, cells) advance in lock step on a common
 * clock, which matches the synchronous prototype. Components are ticked in
 * registration order every cycle; cross-component visibility is one cycle
 * (a FIFO word pushed in cycle t becomes poppable in a later cycle), so
 * results do not depend on tick order.
 *
 * A watchdog aborts the run with a per-component status dump when no
 * component reports progress for a configurable number of cycles — FIFO
 * protocol deadlocks (host and cell each waiting on the other) are the
 * characteristic failure mode of this architecture, and silent hangs are
 * useless.
 *
 * Idle-cycle skipping: after a tick round in which no component reported
 * progress, the engine asks every component for the earliest future cycle
 * at which it could act on its own (nextEventAt) and, instead of spinning
 * one cycle at a time, jumps the clock to the minimum hint. Components
 * replay the per-cycle side effects of the skipped quiescent rounds in
 * fastForward (stall counters, occupancy samples, per-cycle stall trace
 * events), so cycle counts, statistics, trace timestamps and the watchdog
 * are bit-identical to the spin-mode run. A component that cannot predict
 * its wake-up returns `now` (the default), which disables skipping while
 * it is live; `noEvent` means it only ever reacts to other components.
 */

#ifndef OPAC_SIM_ENGINE_HH
#define OPAC_SIM_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace opac::trace
{
class Tracer;
}

namespace opac::sim
{

class Engine;

/** Anything that advances once per clock cycle. */
class Component
{
  public:
    explicit Component(std::string name) : _name(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** The hint value meaning "I only ever react to other components". */
    static constexpr Cycle noEvent = cycleNever;

    /** Advance one cycle. Call Engine::noteProgress() if work was done. */
    virtual void tick(Engine &engine) = 0;

    /** True once this component has nothing left to do. */
    virtual bool done() const = 0;

    /**
     * Earliest future cycle at which this component could act on its
     * own, assuming no other component does anything before then:
     * a FIFO front falling through, a countdown (decode, host
     * cooldown, scalar compute) expiring, an FP pipeline result
     * landing. Only consulted after a tick round with no progress.
     * Return `now` when the wake-up cannot be predicted (disables
     * skipping while this component is live — the safe default), or
     * noEvent when this component only waits on others.
     */
    virtual Cycle nextEventAt(Cycle now) const { return now; }

    /**
     * Replay the per-cycle side effects of @p cycles quiescent tick
     * rounds starting at cycle @p from: everything tick() would have
     * done in each of those rounds given that none of them can make
     * progress (stall/busy counters, occupancy samples, per-cycle
     * stall trace events, countdown decrements). The engine
     * guarantees from + cycles <= the minimum nextEventAt hint, so
     * every replayed round is an exact replica of the quiescent round
     * that preceded the jump. When a tracer is attached the engine
     * calls this once per skipped cycle (cycles == 1, cycle-major
     * across components) so trace event order is preserved exactly.
     */
    virtual void fastForward(Cycle from, Cycle cycles, Engine &engine)
    {
        (void)from;
        (void)cycles;
        (void)engine;
    }

    /** One-line state description, used in deadlock reports. */
    virtual std::string statusLine() const { return "(no status)"; }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
};

/** The clock and run loop. */
class Engine
{
  public:
    /**
     * @param watchdog_cycles Abort after this many cycles without any
     *                        component reporting progress (0 = disabled).
     * @param parent_stats    Registry to hold the "engine" stats group.
     */
    explicit Engine(Cycle watchdog_cycles = 100000,
                    stats::StatGroup *parent_stats = nullptr)
        : watchdogCycles(watchdog_cycles),
          statGroup("engine", parent_stats)
    {
        statGroup.addCounter("cycles", &statCycles, "cycles simulated");
        statGroup.addCounter("idleCycles", &statIdleCycles,
                             "cycles in which no component progressed");
    }

    /** Register a component; it must outlive the engine. */
    void add(Component *c) { components.push_back(c); }

    Cycle now() const { return cycle; }

    /** Components call this from tick() when they made forward progress. */
    void noteProgress() { progressed = true; }

    /**
     * Run until every component reports done(), or max_cycles elapse
     * (0 = unbounded). Returns the number of cycles simulated. Throws on
     * watchdog expiry with a full component status dump.
     */
    Cycle run(Cycle max_cycles = 0);

    /** True when every registered component is done. */
    bool allDone() const;

    /**
     * Status dump of every component (used in error reports). When a
     * tracer is attached, the last few trace events of every component
     * are appended, so a deadlock report shows not just where each
     * component is stuck but what it last did.
     */
    std::string statusDump() const;

    /**
     * Attach the trace recorder consulted by error reports. The engine
     * emits no events itself; pass nullptr to detach.
     */
    void setTracer(trace::Tracer *t) { _tracer = t; }
    trace::Tracer *tracer() const { return _tracer; }

    /** The engine's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Install a non-fatal watchdog callback. When the watchdog
     * expires the handler runs first: returning true claims the
     * expiry (the idle counter restarts and the run continues —
     * the recovery path uses this to force a host-side transaction
     * retry), returning false falls through to the fatal
     * DeadlockError. Pass nullptr to restore fatal-only behavior.
     */
    using WatchdogHandler = std::function<bool(Engine &)>;
    void setWatchdogHandler(WatchdogHandler h)
    {
        watchdogHandler = std::move(h);
    }

    /**
     * Enable or disable idle-cycle skipping (default on). With
     * skipping off the engine spins through quiescent cycles one at a
     * time; results are bit-identical either way, so this is an
     * escape hatch for debugging and for the golden-equivalence test.
     */
    void setSkipEnabled(bool on) { _skipEnabled = on; }
    bool skipEnabled() const { return _skipEnabled; }

    /**
     * Skip diagnostics. Deliberately NOT registered as statistics:
     * the stats JSON must be identical between spin and skip modes.
     */
    std::uint64_t fastForwards() const { return _fastForwards; }
    std::uint64_t skippedCycles() const { return _skippedCycles; }

  private:
    std::vector<Component *> components;
    Cycle cycle = 0;
    Cycle watchdogCycles;
    WatchdogHandler watchdogHandler;
    bool progressed = false;
    bool _skipEnabled = true;
    std::uint64_t _fastForwards = 0;
    std::uint64_t _skippedCycles = 0;
    trace::Tracer *_tracer = nullptr;
    stats::StatGroup statGroup;
    stats::Counter statCycles;
    stats::Counter statIdleCycles;
};

} // namespace opac::sim

#endif // OPAC_SIM_ENGINE_HH
