/**
 * @file
 * Cycle-driven simulation engine.
 *
 * All OPAC components (host, bus, cells) advance in lock step on a common
 * clock, which matches the synchronous prototype. Components are ticked in
 * registration order every cycle; cross-component visibility is one cycle
 * (a FIFO word pushed in cycle t becomes poppable in a later cycle), so
 * results do not depend on tick order.
 *
 * A watchdog aborts the run with a per-component status dump when no
 * component reports progress for a configurable number of cycles — FIFO
 * protocol deadlocks (host and cell each waiting on the other) are the
 * characteristic failure mode of this architecture, and silent hangs are
 * useless.
 *
 * The engine has four run modes, all bit-identical in simulated cycles,
 * statistics and trace output (EngineMode):
 *
 *  - Spin:     tick every component every cycle. The reference model.
 *  - Skip:     whole-system idle-cycle skipping (the default). After a
 *              tick round in which no component reported progress, the
 *              engine asks every component for the earliest future cycle
 *              at which it could act on its own (nextEventAt) and jumps
 *              the clock to the minimum hint; components replay the
 *              per-cycle side effects of the skipped quiescent rounds in
 *              fastForward (stall counters, occupancy samples, per-cycle
 *              stall trace events). A component that cannot predict its
 *              wake-up returns `now` (the default), which disables
 *              skipping while it is live; `noEvent` means it only ever
 *              reacts to other components.
 *  - Event:    per-component scheduling. A component that reports no
 *              progress for two consecutive rounds is put to sleep until
 *              its own nextEventAt hint — individually, even while the
 *              rest of the machine streams. Slept-through rounds are
 *              replayed lazily (fastForward) when the component wakes:
 *              at its hint, or early when a neighbor is about to mutate
 *              one of its FIFOs (Component::wakeForMutation, called
 *              before the mutation so the replay still sees the state
 *              the sleep hint was computed against).
 *  - Parallel: every cycle, the serial components (sampler, injector,
 *              host) tick in registration order on the main thread, then
 *              the independent() components (the cells — they never
 *              touch each other's state) are sharded across a worker
 *              pool and ticked concurrently, with a barrier per cycle.
 *              Quiescent stretches are skipped exactly as in Skip mode.
 *
 * In Event and Parallel mode trace events are staged per component slot
 * and merged back into exact (cycle, slot) serial order before reaching
 * the sinks (trace::Tracer ordered mode), so trace output stays byte-
 * identical to a Spin run.
 */

#ifndef OPAC_SIM_ENGINE_HH
#define OPAC_SIM_ENGINE_HH

#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace opac::trace
{
class Tracer;
}

namespace opac::snap
{
class Writer;
class Reader;
} // namespace opac::snap

namespace opac::sim
{

class Engine;

/** How Engine::run() advances the clock. All modes are bit-identical. */
enum class EngineMode
{
    Spin,     //!< tick everything every cycle (reference model)
    Skip,     //!< whole-system idle-cycle skipping (default)
    Event,    //!< per-component sleep/wake scheduling
    Parallel, //!< per-cycle parallel ticking of independent components
};

/** Lower-case mode name as used on --engine= command lines. */
const char *engineModeName(EngineMode m);

/** Parse an --engine= value; returns false on an unknown name. */
bool parseEngineMode(const std::string &text, EngineMode &out);

/** Anything that advances once per clock cycle. */
class Component
{
  public:
    explicit Component(std::string name) : _name(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** The hint value meaning "I only ever react to other components". */
    static constexpr Cycle noEvent = cycleNever;

    /** Advance one cycle. Call Engine::noteProgress() if work was done. */
    virtual void tick(Engine &engine) = 0;

    /** True once this component has nothing left to do. */
    virtual bool done() const = 0;

    /**
     * Earliest future cycle at which this component could act on its
     * own, assuming no other component does anything before then:
     * a FIFO front falling through, a countdown (decode, host
     * cooldown, scalar compute) expiring, an FP pipeline result
     * landing. Only consulted after a tick round with no progress.
     * Return `now` when the wake-up cannot be predicted (disables
     * skipping while this component is live — the safe default), or
     * noEvent when this component only waits on others.
     */
    virtual Cycle nextEventAt(Cycle now) const { return now; }

    /**
     * Replay the per-cycle side effects of @p cycles quiescent tick
     * rounds starting at cycle @p from: everything tick() would have
     * done in each of those rounds given that none of them can make
     * progress (stall/busy counters, occupancy samples, per-cycle
     * stall trace events, countdown decrements). The engine
     * guarantees from + cycles <= the minimum nextEventAt hint, so
     * every replayed round is an exact replica of the quiescent round
     * that preceded the jump. When a tracer is attached the engine
     * calls this once per skipped cycle (cycles == 1, cycle-major
     * across components) so trace event order is preserved exactly.
     */
    virtual void fastForward(Cycle from, Cycle cycles, Engine &engine)
    {
        (void)from;
        (void)cycles;
        (void)engine;
    }

    /**
     * Superop fast tier: number of cycles this component could
     * execute in bulk starting at @p now without touching any state
     * another component observes (for a cell: a steady-state
     * innermost hardware-loop body reading and writing only its local
     * queues and registers). 0 — the default and the common case —
     * means "cannot burst". A positive quantum is a guarantee: for
     * any engine grant w <= the quantum, burstRun(now, w, ...)
     * reproduces byte-exactly what w consecutive live tick() rounds
     * would have done, and every externally observable queue stays
     * untouched for the whole window. Only consulted when the
     * engine's fast tier is on and no tracer is attached.
     */
    virtual Cycle burstQuantum(Cycle now)
    {
        (void)now;
        return 0;
    }

    /**
     * Execute @p cycles tick rounds in bulk starting at cycle
     * @p from, against a preceding burstQuantum(from) guarantee. Must
     * leave every counter, FIFO and architectural register exactly as
     * @p cycles live tick() rounds would have, in a window where no
     * other component acts. For each bulk cycle from + k in which a
     * live tick would have reported progress, set bit k in
     * @p progress_bits (an engine-owned bitmap of at least @p cycles
     * bits, shared by all bursting components) — the engine derives
     * idle-cycle and watchdog accounting from it.
     */
    virtual void burstRun(Cycle from, Cycle cycles, Engine &engine,
                          std::uint64_t *progress_bits)
    {
        (void)from;
        (void)cycles;
        (void)engine;
        (void)progress_bits;
    }

    /** One-line state description, used in deadlock reports. */
    virtual std::string statusLine() const { return "(no status)"; }

    /**
     * Version tag stamped on this component's saveState() payload.
     * Bump it when the payload layout changes; loadState() receives
     * the version the snapshot was written with and may translate or
     * reject old layouts.
     */
    virtual std::uint32_t stateVersion() const { return 1; }

    /**
     * Serialize every piece of mutable state a resumed run needs to
     * be bit-identical to an uninterrupted one: architectural
     * registers, queue contents, in-flight operations, countdowns,
     * fault latches. Registered statistics are saved separately
     * through the stats tree; derived caches that rebuild on demand
     * need not be saved. The default saves nothing (for stateless
     * components).
     */
    virtual void saveState(snap::Writer &w) const;

    /**
     * Restore state saved by saveState() on a freshly constructed,
     * identically configured component. @p version is the payload's
     * stateVersion() at save time. Throws opac::SnapshotError (via
     * Reader::fail) on malformed payloads.
     */
    virtual void loadState(snap::Reader &r, std::uint32_t version);

    /**
     * True when tick() only ever touches this component's own state
     * and its own FIFOs, never another component's: the parallel
     * engine may then tick it concurrently with other independent
     * components. Independent components must be registered after
     * every serial one (the engine asserts this).
     */
    virtual bool independent() const { return false; }

    /**
     * Next cycle >= now at which this component's tick reads OTHER
     * components' externally visible state (the stats sampler
     * snapshotting every counter in the tree is the one such case).
     * The event engine catches every sleeping component up before
     * such a tick so the observation matches the serial run. noEvent
     * (the default) means the tick only touches its own state.
     */
    virtual Cycle observesSystemAt(Cycle now) const
    {
        (void)now;
        return noEvent;
    }

    /**
     * Notify the engine that some other agent is about to mutate this
     * component's externally visible state: a neighbor pushing into or
     * popping from one of its FIFOs, a fault arming, a forced reset.
     * Must be called BEFORE the mutation — the event engine replays
     * the slept-through cycles first, while the pre-mutation state
     * the sleep hint was computed against still holds. No-op unless
     * the event scheduler is active and this component is asleep.
     */
    void wakeForMutation();

    /** Engine slot index, assigned by Engine::add(). */
    unsigned slot() const { return _slot; }

    const std::string &name() const { return _name; }

  private:
    friend class Engine;
    std::string _name;
    Engine *_engine = nullptr;
    unsigned _slot = 0;
};

/** The clock and run loop. */
class Engine
{
  public:
    /**
     * @param watchdog_cycles Abort after this many cycles without any
     *                        component reporting progress (0 = disabled).
     * @param parent_stats    Registry to hold the "engine" stats group.
     */
    explicit Engine(Cycle watchdog_cycles = 100000,
                    stats::StatGroup *parent_stats = nullptr)
        : watchdogCycles(watchdog_cycles),
          statGroup("engine", parent_stats)
    {
        statGroup.addCounter("cycles", &statCycles, "cycles simulated");
        statGroup.addCounter("idleCycles", &statIdleCycles,
                             "cycles in which no component progressed");
    }

    /** Register a component; it must outlive the engine. */
    void
    add(Component *c)
    {
        c->_engine = this;
        c->_slot = static_cast<unsigned>(components.size());
        components.push_back(c);
    }

    Cycle now() const { return cycle; }

    /**
     * Components call this from tick() when they made forward
     * progress. Relaxed ordering suffices: the parallel engine's
     * per-cycle barrier orders the store against the main thread's
     * end-of-round load.
     *
     * With the fast tier enabled the progress is also attributed to
     * the component being ticked (slot set by the run loops via
     * thread-local state): a burst attempt must prove components
     * individually quiescent, because a component's nextEventAt hint
     * alone cannot — a FIFO front that became ready strictly before
     * `now` reports no event even while its consumer is streaming.
     * Slots are distinct bytes of slotProg_, so concurrent writers in
     * parallel mode never race; the per-cycle barrier orders them
     * against the main thread's reads.
     */
    void
    noteProgress()
    {
        progressed.store(true, std::memory_order_relaxed);
        if (attributeProgress_)
            slotProg_[tlsSlot_] = 1;
    }

    /**
     * Run until every component reports done(), or max_cycles elapse
     * (0 = unbounded). Returns the number of cycles simulated. Throws on
     * watchdog expiry with a full component status dump.
     */
    Cycle run(Cycle max_cycles = 0);

    /**
     * Run until the clock reaches @p stop (or everything is done,
     * whichever comes first) and return the cycles simulated. The
     * machine is left in exactly the state a run() would pass through
     * at cycle @p stop — counters settled, slept rounds replayed — so
     * it can be snapshotted and the run continued (by run() or
     * another runUntil()) with byte-identical results. The idle-time
     * baseline the watchdog and skip hysteresis derive from is
     * carried across the boundary (idleCarry_), so deadlock expiry
     * and jump decisions land on the same cycles as an uninterrupted
     * run.
     */
    Cycle runUntil(Cycle stop, Cycle max_cycles = 0);

    /**
     * Serialize the engine-level mutable state (the clock and the
     * carried idle baseline). Registered stats (cycles/idleCycles)
     * travel with the stats tree; per-mode scheduler scratch
     * (sleep lists, burst backoff) re-initializes at run entry and
     * is deliberately not saved — all modes are byte-identical, so a
     * resumed run may even switch modes.
     */
    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

    /** True when every registered component is done. */
    bool allDone() const;

    /**
     * Status dump of every component (used in error reports). When a
     * tracer is attached, the last few trace events of every component
     * are appended, so a deadlock report shows not just where each
     * component is stuck but what it last did.
     */
    std::string statusDump() const;

    /**
     * Attach the trace recorder consulted by error reports. The engine
     * emits no events itself; pass nullptr to detach.
     */
    void setTracer(trace::Tracer *t) { _tracer = t; }
    trace::Tracer *tracer() const { return _tracer; }

    /** The engine's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

    /**
     * Install a non-fatal watchdog callback. When the watchdog
     * expires the handler runs first: returning true claims the
     * expiry (the idle counter restarts and the run continues —
     * the recovery path uses this to force a host-side transaction
     * retry), returning false falls through to the fatal
     * DeadlockError. Pass nullptr to restore fatal-only behavior.
     */
    using WatchdogHandler = std::function<bool(Engine &)>;
    void setWatchdogHandler(WatchdogHandler h)
    {
        watchdogHandler = std::move(h);
    }

    /**
     * Select the run mode (default Skip). Results are bit-identical
     * in every mode; Spin is the debugging escape hatch and the
     * reference the golden-equivalence suite compares against.
     */
    void setMode(EngineMode m) { _mode = m; }
    EngineMode mode() const { return _mode; }

    /**
     * Worker count for Parallel mode (0 = one worker per hardware
     * thread). Effective parallelism is additionally capped by the
     * number of independent components; with one worker the parallel
     * engine degrades to the serial Skip loop.
     */
    void setThreads(unsigned n) { _threads = n; }
    unsigned threads() const { return _threads; }

    /**
     * Back-compat shim for the pre-mode API: maps onto Skip / Spin.
     */
    void
    setSkipEnabled(bool on)
    {
        _mode = on ? EngineMode::Skip : EngineMode::Spin;
    }
    bool skipEnabled() const { return _mode != EngineMode::Spin; }

    /**
     * Enable the superop fast tier (default off at the engine level;
     * the coprocessor turns it on from its config). When on, the
     * Skip/Event/Parallel run loops may grant a component advertising
     * a burstQuantum() a multi-cycle quantum and bulk-replay every
     * other (provably passive) component across the window. Spin mode
     * never bursts — it stays the pure per-cycle reference — and a
     * run with a tracer attached never bursts either, so every output
     * stays byte-identical with the tier on or off.
     */
    void setFastTier(bool on) { fastTier_ = on; }
    bool fastTierEnabled() const { return fastTier_; }

    /**
     * Skip diagnostics. Deliberately NOT registered as statistics:
     * the stats JSON must be identical between spin and skip modes.
     */
    std::uint64_t fastForwards() const { return _fastForwards; }
    std::uint64_t skippedCycles() const { return _skippedCycles; }

    /**
     * Fast-tier diagnostics, unregistered for the same reason: burst
     * engagement depends on the run mode, the stats JSON must not.
     */
    std::uint64_t burstAttempts() const { return _burstAttempts; }
    std::uint64_t bursts() const { return _bursts; }
    std::uint64_t burstCycles() const { return _burstCycles; }

  private:
    friend class Component;

    /** The serial run loop: Spin (skip == false) and Skip modes. */
    Cycle runSerial(Cycle max_cycles, bool skip);
    /** The per-component sleep/wake scheduler (Event mode). */
    Cycle runEvent(Cycle max_cycles);
    /** The per-cycle worker-pool scheduler (Parallel mode). */
    Cycle runParallel(Cycle max_cycles);

    /**
     * Event-mode wake entry point (from Component::wakeForMutation).
     * Hot-path guard inline; the replay lives in the scheduler TU.
     */
    void
    wakeComponent(unsigned slot)
    {
        if (!eventActive_ || !sleep_[slot].asleep)
            return;
        wakeComponentSlow(slot);
    }
    void wakeComponentSlow(unsigned slot);

    /** Replay a sleeping slot's rounds [sleptFrom, upTo). */
    void replaySlot(unsigned slot, Cycle upTo);
    /** Replay every sleeping slot through round upTo - 1. */
    void catchUpAll(Cycle upTo);

    /**
     * Superop burst: collect every component granting a quantum, prove
     * the rest passive for the window (no progress attributed in the
     * round just executed and a future-only nextEventAt hint — or, in
     * event mode, asleep with a wake past the window), execute the
     * bursters in bulk and fast-forward the passives. Returns true
     * when a burst ran (the clock advanced); the caller re-checks the
     * watchdog. @p start / @p max_cycles clamp the window to the run
     * deadline; @p event_mode applies the sleeping-slot rules.
     */
    bool attemptBurst(Cycle start, Cycle max_cycles, bool event_mode);

    /** Burst windows shorter than this lose to their own setup cost. */
    static constexpr Cycle minBurstCycles = 4;
    /**
     * Live rounds before retrying after a failed attempt. Kept short
     * on every failure path: the steady-state windows are only as
     * long as the innermost loop count (tens of cycles), and both
     * common failures clear within a cycle or two — a passive host
     * pushes one bus word at a loop boundary and re-blocks on the
     * full interface queue, and a sequencer crossing a loop boundary
     * (no quantum to grant) re-enters the body immediately. A long
     * back-off here blanks most of the next window; the attempt
     * itself is one cheap burstQuantum() poll per component.
     */
    static constexpr Cycle burstRetryInterval = 2;
    /**
     * Ceiling for the adaptive retry delay. The first two consecutive
     * misses retry at burstRetryInterval (loop boundaries clear that
     * fast); a longer streak means the machine is in a phase bursts
     * cannot cover at all — e.g. the host actively pacing the bus
     * clamps every window below minBurstCycles — where re-probing
     * every other cycle is pure overhead, so the delay doubles per
     * miss up to this cap. One successful burst resets the streak.
     */
    static constexpr Cycle burstBackoffMax = 16;

    /** Record a failed burst attempt and schedule the next probe. */
    void burstFailed(Cycle at);

    /** Per-slot scheduling state (Event mode). */
    struct SleepState
    {
        Cycle wakeAt = 0;            //!< scheduled wake-up cycle
        Cycle sleptFrom = 0;         //!< first round not yet replayed
        std::uint32_t idleTicks = 0; //!< consecutive no-progress ticks
        bool asleep = false;
    };

    std::vector<Component *> components;
    Cycle cycle = 0;
    /**
     * Early-stop deadline for runUntil(): every run loop breaks when
     * the clock reaches it, and every skip jump / burst window is
     * clamped to it so the stop lands on the exact cycle. cycleNever
     * when a plain run() is active.
     */
    Cycle stopAt_ = cycleNever;
    /**
     * Cycles of idleness (cycle - lastProgress) carried across a
     * runUntil() boundary. Run loops normally reset their idle
     * baseline at entry; consuming this carry instead keeps watchdog
     * expiry and skip hysteresis on the same cycles as an
     * uninterrupted run. Zero after natural completion, so multi-run
     * callers (the serve shards) are unaffected.
     */
    Cycle idleCarry_ = 0;
    Cycle watchdogCycles;
    WatchdogHandler watchdogHandler;
    std::atomic<bool> progressed{false};
    EngineMode _mode = EngineMode::Skip;
    unsigned _threads = 0;
    std::vector<SleepState> sleep_;
    bool eventActive_ = false;
    unsigned currentSlot_ = 0;
    Cycle lastProgress = 0;
    std::uint64_t _fastForwards = 0;
    std::uint64_t _skippedCycles = 0;
    bool fastTier_ = false;
    bool attributeProgress_ = false;
    Cycle nextBurstTry_ = 0;
    unsigned burstFailStreak_ = 0;         //!< consecutive failed attempts
    std::vector<std::uint8_t> slotProg_;   //!< per-slot progress, 1 round
    std::vector<unsigned> burstSlots_;     //!< scratch: bursting slots
    std::vector<std::uint64_t> burstBits_; //!< scratch: progress bitmap
    std::uint64_t _burstAttempts = 0;
    std::uint64_t _bursts = 0;
    std::uint64_t _burstCycles = 0;
    /** Slot of the component the current thread is ticking. */
    static thread_local unsigned tlsSlot_;
    trace::Tracer *_tracer = nullptr;
    stats::StatGroup statGroup;
    stats::Counter statCycles;
    stats::Counter statIdleCycles;
};

inline void
Component::wakeForMutation()
{
    if (_engine)
        _engine->wakeComponent(_slot);
}

} // namespace opac::sim

#endif // OPAC_SIM_ENGINE_HH
