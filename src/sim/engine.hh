/**
 * @file
 * Cycle-driven simulation engine.
 *
 * All OPAC components (host, bus, cells) advance in lock step on a common
 * clock, which matches the synchronous prototype. Components are ticked in
 * registration order every cycle; cross-component visibility is one cycle
 * (a FIFO word pushed in cycle t becomes poppable in a later cycle), so
 * results do not depend on tick order.
 *
 * A watchdog aborts the run with a per-component status dump when no
 * component reports progress for a configurable number of cycles — FIFO
 * protocol deadlocks (host and cell each waiting on the other) are the
 * characteristic failure mode of this architecture, and silent hangs are
 * useless.
 */

#ifndef OPAC_SIM_ENGINE_HH
#define OPAC_SIM_ENGINE_HH

#include <functional>
#include <string>
#include <vector>

#include "common/types.hh"
#include "stats/stats.hh"

namespace opac::trace
{
class Tracer;
}

namespace opac::sim
{

class Engine;

/** Anything that advances once per clock cycle. */
class Component
{
  public:
    explicit Component(std::string name) : _name(std::move(name)) {}
    virtual ~Component() = default;

    Component(const Component &) = delete;
    Component &operator=(const Component &) = delete;

    /** Advance one cycle. Call Engine::noteProgress() if work was done. */
    virtual void tick(Engine &engine) = 0;

    /** True once this component has nothing left to do. */
    virtual bool done() const = 0;

    /** One-line state description, used in deadlock reports. */
    virtual std::string statusLine() const { return "(no status)"; }

    const std::string &name() const { return _name; }

  private:
    std::string _name;
};

/** The clock and run loop. */
class Engine
{
  public:
    /**
     * @param watchdog_cycles Abort after this many cycles without any
     *                        component reporting progress (0 = disabled).
     * @param parent_stats    Registry to hold the "engine" stats group.
     */
    explicit Engine(Cycle watchdog_cycles = 100000,
                    stats::StatGroup *parent_stats = nullptr)
        : watchdogCycles(watchdog_cycles),
          statGroup("engine", parent_stats)
    {
        statGroup.addCounter("cycles", &statCycles, "cycles simulated");
        statGroup.addCounter("idleCycles", &statIdleCycles,
                             "cycles in which no component progressed");
    }

    /** Register a component; it must outlive the engine. */
    void add(Component *c) { components.push_back(c); }

    Cycle now() const { return cycle; }

    /** Components call this from tick() when they made forward progress. */
    void noteProgress() { progressed = true; }

    /**
     * Run until every component reports done(), or max_cycles elapse
     * (0 = unbounded). Returns the number of cycles simulated. Throws on
     * watchdog expiry with a full component status dump.
     */
    Cycle run(Cycle max_cycles = 0);

    /** True when every registered component is done. */
    bool allDone() const;

    /**
     * Status dump of every component (used in error reports). When a
     * tracer is attached, the last few trace events of every component
     * are appended, so a deadlock report shows not just where each
     * component is stuck but what it last did.
     */
    std::string statusDump() const;

    /**
     * Attach the trace recorder consulted by error reports. The engine
     * emits no events itself; pass nullptr to detach.
     */
    void setTracer(trace::Tracer *t) { _tracer = t; }
    trace::Tracer *tracer() const { return _tracer; }

    /** The engine's statistics subtree. */
    stats::StatGroup &stats() { return statGroup; }

  private:
    std::vector<Component *> components;
    Cycle cycle = 0;
    Cycle watchdogCycles;
    bool progressed = false;
    trace::Tracer *_tracer = nullptr;
    stats::StatGroup statGroup;
    stats::Counter statCycles;
    stats::Counter statIdleCycles;
};

} // namespace opac::sim

#endif // OPAC_SIM_ENGINE_HH
