#include "sim/sweep.hh"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>

namespace opac::sim
{

unsigned
defaultJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
runIndexed(std::size_t count, unsigned jobs,
           const std::function<void(std::size_t)> &fn)
{
    if (count == 0)
        return;

    if (jobs <= 1 || count == 1) {
        for (std::size_t i = 0; i < count; ++i)
            fn(i);
        return;
    }

    std::atomic<std::size_t> next{0};
    std::mutex errLock;
    std::size_t errIndex = count;
    std::exception_ptr error;

    auto worker = [&] {
        for (;;) {
            std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= count)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                // Keep the lowest-index failure so reruns with
                // different job counts report the same error.
                if (i < errIndex) {
                    errIndex = i;
                    error = std::current_exception();
                }
            }
        }
    };

    std::size_t nthreads = std::min<std::size_t>(jobs, count) - 1;
    std::vector<std::thread> pool;
    pool.reserve(nthreads);
    for (std::size_t t = 0; t < nthreads; ++t)
        pool.emplace_back(worker);
    worker(); // the calling thread participates
    for (auto &t : pool)
        t.join();

    if (error)
        std::rethrow_exception(error);
}

} // namespace opac::sim
