/**
 * @file
 * The event and parallel run loops of sim::Engine (see engine.hh for
 * the mode overview), plus the lazy-replay machinery they share.
 *
 * Event mode invariants:
 *  - A component sleeps only on its own nextEventAt hint, which is
 *    valid "assuming no other component does anything before then".
 *    Every externally visible mutation of a component's state funnels
 *    through Component::wakeForMutation() *before* the mutation, so a
 *    sleeping component is always replayed (fastForward) against
 *    exactly the state its hint was computed from.
 *  - Replay horizons follow round order: a mutation from a slot that
 *    ticks *after* the sleeper in the current round means the sleeper
 *    would have ticked this round before seeing it (replay through the
 *    current round, next live tick next round); a mutation from an
 *    earlier slot wakes it in time to tick live this round.
 *  - Observers (Component::observesSystemAt, i.e. the stats sampler)
 *    force a full catch-up before they tick, so counters they
 *    snapshot match the serial run.
 *
 * Parallel mode ticks the serial components in registration order on
 * the main thread every cycle, then shards the independent() tail (the
 * cells) across a spin-barrier worker pool; quiescent stretches are
 * skipped exactly as in Skip mode, serially. Determinism needs no
 * cleverness: cells never touch each other's state, the host never
 * runs concurrently with them, and trace events are staged per slot
 * and merged in (cycle, slot) order.
 */

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hh"
#include "common/logging.hh"
#include "sim/engine.hh"
#include "trace/trace.hh"

namespace opac::sim
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

/**
 * Spin up to `spin_budget` pause iterations, then yield. Cell rounds
 * are typically sub-µs, so on a machine with a core per shard a large
 * budget keeps the handshake in user space; when shards outnumber
 * cores the waited-for thread cannot run until we yield, so the
 * caller passes a tiny budget and we donate the core almost at once.
 */
template <typename Pred>
void
spinUntil(Pred &&pred, unsigned spin_budget = 1u << 12)
{
    for (unsigned spins = 0; !pred(); ++spins) {
        if (spins < spin_budget)
            cpuRelax();
        else
            std::this_thread::yield();
    }
}

} // anonymous namespace

void
Engine::replaySlot(unsigned slot, Cycle upTo)
{
    SleepState &ss = sleep_[slot];
    if (upTo <= ss.sleptFrom)
        return;
    Component *c = components[slot];
    Cycle count = upTo - ss.sleptFrom;
    if (_tracer) {
        // Cycle-major within the component; the ordered merge
        // restores cycle-major order across components.
        trace::Tracer::setEmitSlot(slot);
        for (Cycle k = 0; k < count; ++k)
            c->fastForward(ss.sleptFrom + k, 1, *this);
        trace::Tracer::setEmitSlot(currentSlot_);
    } else {
        c->fastForward(ss.sleptFrom, count, *this);
    }
    ss.sleptFrom = upTo;
    ++_fastForwards;
    _skippedCycles += count;
}

void
Engine::wakeComponentSlow(unsigned slot)
{
    // Sleeper slot before the mutating slot in round order: its turn
    // in the current round is already past (it would have seen the
    // pre-mutation state), so the current round is replayed too and
    // the next live tick lands on the next round. Sleeper at or after
    // the mutating slot: it wakes in time to tick live this round.
    SleepState &ss = sleep_[slot];
    replaySlot(slot, slot < currentSlot_ ? cycle + 1 : cycle);
    ss.asleep = false;
    ss.idleTicks = 0;
}

void
Engine::catchUpAll(Cycle upTo)
{
    for (unsigned s = 0; s < sleep_.size(); ++s) {
        if (!sleep_[s].asleep)
            continue;
        // Same round-order horizon rule as wakeComponentSlow, but the
        // component stays asleep: its wake hint is still valid.
        replaySlot(s, s < currentSlot_ ? upTo + 1 : upTo);
    }
}

Cycle
Engine::runEvent(Cycle max_cycles)
{
    Cycle start = cycle;
    lastProgress = cycle - std::min(idleCarry_, cycle);
    idleCarry_ = 0;
    const unsigned n = static_cast<unsigned>(components.size());
    sleep_.assign(n, SleepState{});
    currentSlot_ = 0;
    const bool ordered = _tracer != nullptr;
    // Superop bursts: an awake streaming component can take a
    // multi-cycle quantum while every other slot is either asleep past
    // the window or provably passive (attributed-quiescent with a
    // future hint). Sleeping slots stay asleep and replay lazily, as
    // across an all-asleep jump.
    const bool burst = fastTier_ && !ordered;
    attributeProgress_ = burst;
    if (burst) {
        slotProg_.assign(n, 0);
        nextBurstTry_ = cycle;
        burstFailStreak_ = 0;
    }
    if (ordered)
        _tracer->beginOrdered(n);
    eventActive_ = true;
    struct Guard
    {
        Engine &e;
        bool ordered;
        ~Guard()
        {
            e.eventActive_ = false;
            if (ordered && e._tracer)
                e._tracer->endOrdered();
        }
    } guard{*this, ordered};

    // Bring counters and the staged trace up to date so an abort
    // report (or the final stats) reads exactly like the serial run.
    auto settle = [&] {
        catchUpAll(cycle);
        if (ordered)
            _tracer->flushOrdered(Component::noEvent);
    };
    auto watchdogExpired = [&] {
        if (watchdogHandler && watchdogHandler(*this)) {
            lastProgress = cycle;
            return;
        }
        settle();
        throw DeadlockError(
            "engine", cycle,
            strfmt("deadlock: no progress for %llu cycles "
                   "(engine mode event)\n%s",
                   static_cast<unsigned long long>(watchdogCycles),
                   statusDump().c_str()));
    };

    while (!allDone() && cycle < stopAt_) {
        if (max_cycles != 0 && cycle - start >= max_cycles) {
            settle();
            opac_fatal("simulation exceeded max_cycles = %llu "
                       "(%llu cycles simulated)\n%s",
                       static_cast<unsigned long long>(max_cycles),
                       static_cast<unsigned long long>(cycle - start),
                       statusDump().c_str());
        }
        bool roundProgress = false;
        if (burst)
            std::fill(slotProg_.begin(), slotProg_.end(),
                      std::uint8_t(0));
        for (unsigned s = 0; s < n; ++s) {
            SleepState &ss = sleep_[s];
            if (ss.asleep) {
                if (ss.wakeAt > cycle)
                    continue;
                // Scheduled wake: replay the slept rounds, then tick
                // live this round.
                replaySlot(s, cycle);
                ss.asleep = false;
                ss.idleTicks = 0;
            }
            currentSlot_ = s;
            tlsSlot_ = s;
            Component *c = components[s];
            if (c->observesSystemAt(cycle) == cycle)
                catchUpAll(cycle);
            if (ordered)
                trace::Tracer::setEmitSlot(s);
            progressed.store(false, std::memory_order_relaxed);
            c->tick(*this);
            if (progressed.load(std::memory_order_relaxed)) {
                roundProgress = true;
                ss.idleTicks = 0;
                continue;
            }
            // Same two-quiescent-rounds hysteresis as the serial skip
            // loop, applied per component.
            if (++ss.idleTicks < 2)
                continue;
            Cycle at = c->nextEventAt(cycle + 1);
            if (at == Component::noEvent || at >= cycle + 2) {
                ss.asleep = true;
                ss.wakeAt = at;
                ss.sleptFrom = cycle + 1;
            }
        }
        ++cycle;
        ++statCycles;
        // Between rounds every slot's next tick is at `cycle`, so
        // replay horizons behave as if the mutator ran before slot 0.
        currentSlot_ = 0;
        if (roundProgress) {
            lastProgress = cycle;
        } else {
            ++statIdleCycles;
            if (watchdogCycles != 0
                && cycle - lastProgress >= watchdogCycles)
                watchdogExpired();
        }
        if (ordered) {
            // Events below every sleeper's replay resumption point and
            // the current cycle are final; release them in order.
            Cycle watermark = cycle;
            for (const SleepState &ss : sleep_) {
                if (ss.asleep && ss.sleptFrom < watermark)
                    watermark = ss.sleptFrom;
            }
            _tracer->flushOrdered(watermark);
        }
        if (burst && roundProgress && cycle >= nextBurstTry_
            && attemptBurst(start, max_cycles, true)) {
            if (watchdogCycles != 0
                && cycle - lastProgress >= watchdogCycles)
                watchdogExpired();
            continue;
        }
        bool allAsleep = true;
        for (const SleepState &ss : sleep_) {
            if (!ss.asleep) {
                allAsleep = false;
                break;
            }
        }
        if (!allAsleep)
            continue;
        // Every component is asleep: all rounds up to the earliest
        // wake-up are idle replicas, so jump there in one step (the
        // sleepers replay lazily on wake as usual). Clamped to the
        // watchdog and max_cycles deadlines, like the serial jump.
        Cycle target = Component::noEvent;
        for (const SleepState &ss : sleep_)
            target = std::min(target, ss.wakeAt);
        if (watchdogCycles != 0)
            target = std::min(target, lastProgress + watchdogCycles);
        if (max_cycles != 0)
            target = std::min(target, start + max_cycles);
        target = std::min(target, stopAt_);
        if (target == Component::noEvent) {
            // No wake-up and no deadline armed: the spin engine would
            // hang here forever, which helps nobody.
            settle();
            throw DeadlockError(
                "engine", cycle,
                strfmt("deadlock: every component asleep with no "
                       "wake-up (engine mode event)\n%s",
                       statusDump().c_str()));
        }
        if (target > cycle) {
            Cycle skip_n = target - cycle;
            cycle = target;
            statCycles += skip_n;
            statIdleCycles += skip_n;
        }
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
    }
    catchUpAll(cycle);
    return cycle - start;
}

Cycle
Engine::runParallel(Cycle max_cycles)
{
    const unsigned n = static_cast<unsigned>(components.size());
    unsigned firstIndep = 0;
    while (firstIndep < n && !components[firstIndep]->independent())
        ++firstIndep;
    for (unsigned i = firstIndep; i < n; ++i) {
        opac_assert(components[i]->independent(),
                    "independent components must be registered after "
                    "every serial one");
    }
    const unsigned ncells = n - firstIndep;
    unsigned nshards =
        _threads != 0 ? _threads
                      : std::max(1u, std::thread::hardware_concurrency());
    nshards = std::min(nshards, ncells);
    if (nshards <= 1)
        return runSerial(max_cycles, true);

    const bool ordered = _tracer != nullptr;
    // Superop bursts execute serially on the main thread between
    // barrier rounds (the workers spin idle through them), so the
    // one-cycle barrier contract of the live rounds is untouched.
    // Attribution writes from the workers land in distinct slotProg_
    // bytes and the per-round barrier orders them against the main
    // thread's burst-attempt reads.
    const bool burst = fastTier_ && !ordered;
    attributeProgress_ = burst;
    if (burst) {
        slotProg_.assign(n, 0);
        nextBurstTry_ = cycle;
        burstFailStreak_ = 0;
    }
    if (ordered)
        _tracer->beginOrdered(n);

    // Even contiguous shards; the assignment has no effect on output
    // (the trace merge is by slot, stats are per-component).
    auto shardBegin = [&](unsigned s) {
        return firstIndep + s * ncells / nshards;
    };
    auto tickRange = [&](unsigned lo, unsigned hi) {
        for (unsigned i = lo; i < hi; ++i) {
            if (ordered)
                trace::Tracer::setEmitSlot(i);
            tlsSlot_ = i;
            components[i]->tick(*this);
        }
    };

    // Spin-barrier pool: the main thread release-bumps `epoch` to
    // start a round (after writing the new cycle state), each worker
    // ticks its shard and release-bumps `doneCount`, and the main
    // thread acquire-spins until all shards are in. The two atomic
    // handshakes carry all cross-thread visibility.
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<unsigned> doneCount{0};
    std::atomic<bool> stop{false};
    std::mutex errLock;
    std::exception_ptr errPtr;
    unsigned errShard = 0;

    // Oversubscribed (more shards than cores, e.g. a 1-CPU CI box):
    // spinning only delays the thread we are waiting for, so yield
    // almost immediately instead of burning the shared core.
    const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
    const unsigned spinBudget = nshards > hw ? 16u : 1u << 12;

    auto workerFn = [&](unsigned shard) {
        const unsigned lo = shardBegin(shard), hi = shardBegin(shard + 1);
        std::uint64_t seen = 0;
        for (;;) {
            spinUntil([&] {
                return epoch.load(std::memory_order_acquire) != seen;
            }, spinBudget);
            ++seen;
            if (stop.load(std::memory_order_acquire))
                break;
            try {
                tickRange(lo, hi);
            } catch (...) {
                std::lock_guard<std::mutex> g(errLock);
                if (!errPtr || shard < errShard) {
                    errPtr = std::current_exception();
                    errShard = shard;
                }
            }
            doneCount.fetch_add(1, std::memory_order_release);
        }
    };

    std::vector<std::thread> pool;
    struct PoolGuard
    {
        Engine &e;
        std::vector<std::thread> &pool;
        std::atomic<bool> &stop;
        std::atomic<std::uint64_t> &epoch;
        bool ordered;
        ~PoolGuard()
        {
            stop.store(true, std::memory_order_release);
            epoch.fetch_add(1, std::memory_order_release);
            for (auto &t : pool)
                t.join();
            if (ordered && e._tracer)
                e._tracer->endOrdered();
        }
    } guard{*this, pool, stop, epoch, ordered};
    pool.reserve(nshards - 1);
    for (unsigned w = 0; w + 1 < nshards; ++w)
        pool.emplace_back(workerFn, w);

    Cycle start = cycle;
    lastProgress = cycle - std::min(idleCarry_, cycle);
    idleCarry_ = 0;
    auto watchdogExpired = [&] {
        if (watchdogHandler && watchdogHandler(*this)) {
            lastProgress = cycle;
            return;
        }
        if (ordered)
            _tracer->flushOrdered(Component::noEvent);
        throw DeadlockError(
            "engine", cycle,
            strfmt("deadlock: no progress for %llu cycles "
                   "(engine mode parallel)\n%s",
                   static_cast<unsigned long long>(watchdogCycles),
                   statusDump().c_str()));
    };
    while (!allDone() && cycle < stopAt_) {
        if (max_cycles != 0 && cycle - start >= max_cycles) {
            if (ordered)
                _tracer->flushOrdered(Component::noEvent);
            opac_fatal("simulation exceeded max_cycles = %llu "
                       "(%llu cycles simulated)\n%s",
                       static_cast<unsigned long long>(max_cycles),
                       static_cast<unsigned long long>(cycle - start),
                       statusDump().c_str());
        }
        progressed.store(false, std::memory_order_relaxed);
        if (burst)
            std::fill(slotProg_.begin(), slotProg_.end(),
                      std::uint8_t(0));
        // Serial phase: sampler, injector, host — anything that may
        // touch cell state runs alone.
        for (unsigned i = 0; i < firstIndep; ++i) {
            if (ordered)
                trace::Tracer::setEmitSlot(i);
            tlsSlot_ = i;
            components[i]->tick(*this);
        }
        // Parallel phase: fan the cell shards out, tick the last one
        // here, and wait for the rest.
        doneCount.store(0, std::memory_order_relaxed);
        epoch.fetch_add(1, std::memory_order_release);
        tickRange(shardBegin(nshards - 1), shardBegin(nshards));
        spinUntil([&] {
            return doneCount.load(std::memory_order_acquire)
                   == nshards - 1;
        }, spinBudget);
        if (errPtr)
            std::rethrow_exception(errPtr);
        ++cycle;
        ++statCycles;
        if (progressed.load(std::memory_order_relaxed)) {
            lastProgress = cycle;
            if (ordered)
                _tracer->flushOrdered(cycle);
            if (burst && cycle >= nextBurstTry_
                && attemptBurst(start, max_cycles, false)
                && watchdogCycles != 0
                && cycle - lastProgress >= watchdogCycles)
                watchdogExpired();
            continue;
        }
        ++statIdleCycles;
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
        if (ordered)
            _tracer->flushOrdered(cycle);
        if (cycle - lastProgress < 2)
            continue;

        // Quiescent: identical jump logic to the serial skip loop,
        // executed on the main thread while the workers wait.
        Cycle target = Component::noEvent;
        for (const auto *c : components) {
            Cycle at = c->nextEventAt(cycle);
            if (at <= cycle) {
                target = cycle;
                break;
            }
            target = std::min(target, at);
        }
        if (watchdogCycles != 0)
            target = std::min(target, lastProgress + watchdogCycles);
        if (max_cycles != 0)
            target = std::min(target, start + max_cycles);
        target = std::min(target, stopAt_);
        if (target == Component::noEvent || target < cycle + 2)
            continue;

        Cycle skip_n = target - cycle;
        if (_tracer) {
            for (Cycle k = 0; k < skip_n; ++k) {
                for (unsigned i = 0; i < n; ++i) {
                    trace::Tracer::setEmitSlot(i);
                    components[i]->fastForward(cycle + k, 1, *this);
                }
            }
        } else {
            for (auto *c : components)
                c->fastForward(cycle, skip_n, *this);
        }
        cycle = target;
        statCycles += skip_n;
        statIdleCycles += skip_n;
        ++_fastForwards;
        _skippedCycles += skip_n;
        if (ordered)
            _tracer->flushOrdered(cycle);
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
    }
    return cycle - start;
}

} // namespace opac::sim
