#include "sim/engine.hh"

#include "common/logging.hh"
#include "trace/trace.hh"

namespace opac::sim
{

bool
Engine::allDone() const
{
    for (const auto *c : components) {
        if (!c->done())
            return false;
    }
    return true;
}

std::string
Engine::statusDump() const
{
    std::string out;
    for (const auto *c : components) {
        out += strfmt("  %-24s %s %s\n", c->name().c_str(),
                      c->done() ? "[done]" : "[busy]",
                      c->statusLine().c_str());
    }
    if (_tracer)
        out += _tracer->recentReport();
    return out;
}

Cycle
Engine::run(Cycle max_cycles)
{
    Cycle start = cycle;
    Cycle idle_cycles = 0;
    while (!allDone()) {
        if (max_cycles != 0 && cycle - start >= max_cycles) {
            opac_fatal("simulation exceeded %llu cycles\n%s",
                       static_cast<unsigned long long>(max_cycles),
                       statusDump().c_str());
        }
        progressed = false;
        for (auto *c : components)
            c->tick(*this);
        ++cycle;
        ++statCycles;
        if (!progressed)
            ++statIdleCycles;
        if (progressed) {
            idle_cycles = 0;
        } else if (watchdogCycles != 0 && ++idle_cycles >= watchdogCycles) {
            opac_fatal("deadlock: no progress for %llu cycles at cycle "
                       "%llu\n%s",
                       static_cast<unsigned long long>(watchdogCycles),
                       static_cast<unsigned long long>(cycle),
                       statusDump().c_str());
        }
    }
    return cycle - start;
}

} // namespace opac::sim
