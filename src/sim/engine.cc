#include "sim/engine.hh"

#include <algorithm>
#include <bit>

#include "common/error.hh"
#include "common/logging.hh"
#include "snap/snapshot.hh"
#include "trace/trace.hh"

namespace opac::sim
{

thread_local unsigned Engine::tlsSlot_ = 0;

void
Component::saveState(snap::Writer &w) const
{
    (void)w;
}

void
Component::loadState(snap::Reader &r, std::uint32_t version)
{
    (void)version;
    if (!r.atEnd())
        r.fail("component '" + _name +
               "' has no loadState but the snapshot carries a payload");
}

const char *
engineModeName(EngineMode m)
{
    switch (m) {
      case EngineMode::Spin:
        return "spin";
      case EngineMode::Skip:
        return "skip";
      case EngineMode::Event:
        return "event";
      case EngineMode::Parallel:
        return "parallel";
    }
    return "?";
}

bool
parseEngineMode(const std::string &text, EngineMode &out)
{
    for (EngineMode m : {EngineMode::Spin, EngineMode::Skip,
                         EngineMode::Event, EngineMode::Parallel}) {
        if (text == engineModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
Engine::allDone() const
{
    for (const auto *c : components) {
        if (!c->done())
            return false;
    }
    return true;
}

std::string
Engine::statusDump() const
{
    std::string out;
    for (const auto *c : components) {
        out += strfmt("  %-24s %s %s\n", c->name().c_str(),
                      c->done() ? "[done]" : "[busy]",
                      c->statusLine().c_str());
    }
    if (_tracer)
        out += _tracer->recentReport();
    return out;
}

Cycle
Engine::run(Cycle max_cycles)
{
    switch (_mode) {
      case EngineMode::Spin:
        return runSerial(max_cycles, false);
      case EngineMode::Skip:
        return runSerial(max_cycles, true);
      case EngineMode::Event:
        return runEvent(max_cycles);
      case EngineMode::Parallel:
        return runParallel(max_cycles);
    }
    return 0;
}

Cycle
Engine::runUntil(Cycle stop, Cycle max_cycles)
{
    opac_assert(stop >= cycle,
                "runUntil target %llu is behind the clock (%llu)",
                static_cast<unsigned long long>(stop),
                static_cast<unsigned long long>(cycle));
    stopAt_ = stop;
    Cycle ran;
    try {
        ran = run(max_cycles);
    } catch (...) {
        stopAt_ = cycleNever;
        throw;
    }
    stopAt_ = cycleNever;
    // Carry the idle baseline over the boundary only when the run was
    // actually cut short; a natural completion leaves the engine in
    // the same state a plain run() would, so multi-run callers see no
    // difference.
    if (!allDone())
        idleCarry_ = cycle - lastProgress;
    return ran;
}

void
Engine::saveState(snap::Writer &w) const
{
    w.u64(cycle);
    w.u64(idleCarry_);
}

void
Engine::loadState(snap::Reader &r)
{
    cycle = r.u64();
    idleCarry_ = r.u64();
    lastProgress = cycle;
}

bool
Engine::attemptBurst(Cycle start, Cycle max_cycles, bool event_mode)
{
    ++_burstAttempts;
    const unsigned n = static_cast<unsigned>(components.size());

    // Who can burst, and for how long? The window is the smallest
    // granted quantum. Sleeping slots (event mode) are never bursters:
    // their slept rounds have not been replayed, so their counters lag
    // behind their architectural state.
    burstSlots_.clear();
    Cycle w = Component::noEvent;
    for (unsigned s = 0; s < n; ++s) {
        if (event_mode && sleep_[s].asleep)
            continue;
        Cycle q = components[s]->burstQuantum(cycle);
        if (q > 0) {
            burstSlots_.push_back(s);
            w = std::min(w, q);
        }
    }
    if (burstSlots_.empty()) {
        burstFailed(cycle);
        return false;
    }

    // Everyone else must be provably passive across the window: no
    // progress attributed in the round just executed, and a
    // nextEventAt hint strictly in the future (which then bounds the
    // window — the hint is valid precisely because the bursters touch
    // nothing the passive component observes). A sleeping slot's wake
    // time plays the role of its hint and it replays lazily on wake,
    // exactly as it would across an all-asleep jump.
    auto passiveFail = [&] {
        burstFailed(cycle);
        return false;
    };
    unsigned nburst = 0;
    for (unsigned s = 0; s < n; ++s) {
        if (nburst < burstSlots_.size() && burstSlots_[nburst] == s) {
            ++nburst;
            continue;
        }
        Component *c = components[s];
        if (event_mode && sleep_[s].asleep) {
            if (sleep_[s].wakeAt <= cycle)
                return passiveFail();
            w = std::min(w, sleep_[s].wakeAt - cycle);
            continue;
        }
        if (slotProg_[s])
            return passiveFail();
        Cycle at = c->nextEventAt(cycle);
        if (at <= cycle)
            return passiveFail();
        w = std::min(w, at - cycle);
        // An observer tick (the stats sampler) must see every counter
        // live; its hint normally coincides, but clamp explicitly.
        Cycle ob = c->observesSystemAt(cycle);
        if (ob != Component::noEvent) {
            if (ob <= cycle)
                return passiveFail();
            w = std::min(w, ob - cycle);
        }
    }

    // Deadline clamps, same as the skip jump: the watchdog and
    // max_cycles must fire at exactly the cycle a spin run reaches
    // them.
    if (watchdogCycles != 0)
        w = std::min(w, lastProgress + watchdogCycles - cycle);
    if (max_cycles != 0)
        w = std::min(w, start + max_cycles - cycle);
    if (stopAt_ != cycleNever)
        w = std::min(w, stopAt_ - cycle);
    if (w < minBurstCycles) {
        burstFailed(cycle);
        return false;
    }

    // Execute. Bursters run first, then the passives bulk-replay the
    // window; the order is immaterial because the bursters touch no
    // state the passives observe (the burstQuantum contract).
    burstBits_.assign(std::size_t((w + 63) / 64), 0);
    for (unsigned s : burstSlots_) {
        tlsSlot_ = s;
        components[s]->burstRun(cycle, w, *this, burstBits_.data());
    }
    nburst = 0;
    for (unsigned s = 0; s < n; ++s) {
        if (nburst < burstSlots_.size() && burstSlots_[nburst] == s) {
            ++nburst;
            continue;
        }
        if (event_mode && sleep_[s].asleep)
            continue;
        components[s]->fastForward(cycle, w, *this);
    }

    // Idle/watchdog accounting from the progress bitmap: a window
    // cycle with no progress bit is exactly a round in which no
    // component would have reported progress.
    Cycle busy = 0;
    std::ptrdiff_t lastSet = -1;
    for (std::size_t i = 0; i < burstBits_.size(); ++i) {
        std::uint64_t m = burstBits_[i];
        if (i + 1 == burstBits_.size() && (w & 63))
            m &= (std::uint64_t(1) << (w & 63)) - 1;
        busy += Cycle(std::popcount(m));
        if (m != 0) {
            lastSet = std::ptrdiff_t(i) * 64
                      + (63 - std::countl_zero(m));
        }
    }
    if (lastSet >= 0)
        lastProgress = cycle + Cycle(lastSet) + 1;
    cycle += w;
    statCycles += w;
    statIdleCycles += w - busy;
    ++_bursts;
    _burstCycles += w;
    nextBurstTry_ = cycle; // streaming: try again right away
    burstFailStreak_ = 0;
    return true;
}

void
Engine::burstFailed(Cycle at)
{
    Cycle d = burstRetryInterval;
    if (burstFailStreak_ >= 2) {
        unsigned shift = std::min(burstFailStreak_ - 1, 31u);
        d = burstRetryInterval << shift;
        d = std::min(d, burstBackoffMax);
    }
    ++burstFailStreak_;
    nextBurstTry_ = at + d;
}

Cycle
Engine::runSerial(Cycle max_cycles, bool skip)
{
    Cycle start = cycle;
    // The watchdog and the skip hysteresis both derive from engine
    // time (cycles since the last round that made progress), not from
    // tick-loop iterations, so every run mode counts idleness the
    // same way no matter how its loop is shaped. A runUntil() stop
    // carries the idle baseline forward so a resumed run counts
    // idleness from the same cycle an uninterrupted one would.
    lastProgress = cycle - std::min(idleCarry_, cycle);
    idleCarry_ = 0;
    // Superop bursts only when skipping (Spin stays the pure per-cycle
    // reference) and untraced (traces need per-cycle event edges).
    const bool burst = skip && fastTier_ && !_tracer;
    attributeProgress_ = burst;
    if (burst) {
        slotProg_.assign(components.size(), 0);
        nextBurstTry_ = cycle;
        burstFailStreak_ = 0;
    }
    auto watchdogExpired = [&] {
        if (watchdogHandler && watchdogHandler(*this)) {
            // A recovery handler claimed the expiry; restart the count
            // and give the machine another watchdog period to react.
            lastProgress = cycle;
            return;
        }
        throw DeadlockError(
            "engine", cycle,
            strfmt("deadlock: no progress for %llu cycles "
                   "(idle-cycle skipping %s)\n%s",
                   static_cast<unsigned long long>(watchdogCycles),
                   skip ? "on" : "off", statusDump().c_str()));
    };
    while (!allDone() && cycle < stopAt_) {
        if (max_cycles != 0 && cycle - start >= max_cycles) {
            opac_fatal("simulation exceeded max_cycles = %llu "
                       "(%llu cycles simulated)\n%s",
                       static_cast<unsigned long long>(max_cycles),
                       static_cast<unsigned long long>(cycle - start),
                       statusDump().c_str());
        }
        progressed.store(false, std::memory_order_relaxed);
        if (burst) {
            std::fill(slotProg_.begin(), slotProg_.end(),
                      std::uint8_t(0));
            for (auto *c : components) {
                tlsSlot_ = c->slot();
                c->tick(*this);
            }
        } else {
            for (auto *c : components)
                c->tick(*this);
        }
        ++cycle;
        ++statCycles;
        if (progressed.load(std::memory_order_relaxed)) {
            lastProgress = cycle;
            // A streaming component is the burst opportunity: try to
            // hand it a multi-cycle quantum while everyone else is
            // provably passive.
            if (burst && cycle >= nextBurstTry_
                && attemptBurst(start, max_cycles, false)
                && watchdogCycles != 0
                && cycle - lastProgress >= watchdogCycles)
                watchdogExpired();
            continue;
        }
        ++statIdleCycles;
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
        // Attempt a jump only after two consecutive quiescent rounds:
        // workloads that alternate progress and one-cycle stalls (a
        // host feeding at tau = 2) would otherwise pay for hint
        // computation every other cycle and never skip anything.
        if (!skip || cycle - lastProgress < 2)
            continue;

        // Quiescent round: every cycle until the earliest next-event
        // hint is an exact replica of the round just executed, so the
        // clock can jump there directly. The jump is clamped to the
        // watchdog and max_cycles deadlines so both fire at exactly
        // the cycle the spin-mode run would reach them.
        Cycle target = Component::noEvent;
        for (const auto *c : components) {
            Cycle at = c->nextEventAt(cycle);
            if (at <= cycle) {
                target = cycle;
                break;
            }
            target = std::min(target, at);
        }
        if (watchdogCycles != 0)
            target = std::min(target, lastProgress + watchdogCycles);
        if (max_cycles != 0)
            target = std::min(target, start + max_cycles);
        target = std::min(target, stopAt_);
        // A one-cycle jump costs more than the live round it replaces
        // (fastForward visits every component too); live rounds are
        // always correct, so just run one.
        if (target == Component::noEvent || target < cycle + 2)
            continue;

        Cycle skip_n = target - cycle;
        if (_tracer) {
            // Cycle-major replay keeps trace event order identical to
            // the spin-mode stream.
            for (Cycle k = 0; k < skip_n; ++k) {
                for (auto *c : components)
                    c->fastForward(cycle + k, 1, *this);
            }
        } else {
            for (auto *c : components)
                c->fastForward(cycle, skip_n, *this);
        }
        cycle = target;
        statCycles += skip_n;
        statIdleCycles += skip_n;
        ++_fastForwards;
        _skippedCycles += skip_n;
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
    }
    return cycle - start;
}

} // namespace opac::sim
