#include "sim/engine.hh"

#include <algorithm>

#include "common/error.hh"
#include "common/logging.hh"
#include "trace/trace.hh"

namespace opac::sim
{

const char *
engineModeName(EngineMode m)
{
    switch (m) {
      case EngineMode::Spin:
        return "spin";
      case EngineMode::Skip:
        return "skip";
      case EngineMode::Event:
        return "event";
      case EngineMode::Parallel:
        return "parallel";
    }
    return "?";
}

bool
parseEngineMode(const std::string &text, EngineMode &out)
{
    for (EngineMode m : {EngineMode::Spin, EngineMode::Skip,
                         EngineMode::Event, EngineMode::Parallel}) {
        if (text == engineModeName(m)) {
            out = m;
            return true;
        }
    }
    return false;
}

bool
Engine::allDone() const
{
    for (const auto *c : components) {
        if (!c->done())
            return false;
    }
    return true;
}

std::string
Engine::statusDump() const
{
    std::string out;
    for (const auto *c : components) {
        out += strfmt("  %-24s %s %s\n", c->name().c_str(),
                      c->done() ? "[done]" : "[busy]",
                      c->statusLine().c_str());
    }
    if (_tracer)
        out += _tracer->recentReport();
    return out;
}

Cycle
Engine::run(Cycle max_cycles)
{
    switch (_mode) {
      case EngineMode::Spin:
        return runSerial(max_cycles, false);
      case EngineMode::Skip:
        return runSerial(max_cycles, true);
      case EngineMode::Event:
        return runEvent(max_cycles);
      case EngineMode::Parallel:
        return runParallel(max_cycles);
    }
    return 0;
}

Cycle
Engine::runSerial(Cycle max_cycles, bool skip)
{
    Cycle start = cycle;
    // The watchdog and the skip hysteresis both derive from engine
    // time (cycles since the last round that made progress), not from
    // tick-loop iterations, so every run mode counts idleness the
    // same way no matter how its loop is shaped.
    lastProgress = cycle;
    auto watchdogExpired = [&] {
        if (watchdogHandler && watchdogHandler(*this)) {
            // A recovery handler claimed the expiry; restart the count
            // and give the machine another watchdog period to react.
            lastProgress = cycle;
            return;
        }
        throw DeadlockError(
            "engine", cycle,
            strfmt("deadlock: no progress for %llu cycles "
                   "(idle-cycle skipping %s)\n%s",
                   static_cast<unsigned long long>(watchdogCycles),
                   skip ? "on" : "off", statusDump().c_str()));
    };
    while (!allDone()) {
        if (max_cycles != 0 && cycle - start >= max_cycles) {
            opac_fatal("simulation exceeded max_cycles = %llu "
                       "(%llu cycles simulated)\n%s",
                       static_cast<unsigned long long>(max_cycles),
                       static_cast<unsigned long long>(cycle - start),
                       statusDump().c_str());
        }
        progressed.store(false, std::memory_order_relaxed);
        for (auto *c : components)
            c->tick(*this);
        ++cycle;
        ++statCycles;
        if (progressed.load(std::memory_order_relaxed)) {
            lastProgress = cycle;
            continue;
        }
        ++statIdleCycles;
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
        // Attempt a jump only after two consecutive quiescent rounds:
        // workloads that alternate progress and one-cycle stalls (a
        // host feeding at tau = 2) would otherwise pay for hint
        // computation every other cycle and never skip anything.
        if (!skip || cycle - lastProgress < 2)
            continue;

        // Quiescent round: every cycle until the earliest next-event
        // hint is an exact replica of the round just executed, so the
        // clock can jump there directly. The jump is clamped to the
        // watchdog and max_cycles deadlines so both fire at exactly
        // the cycle the spin-mode run would reach them.
        Cycle target = Component::noEvent;
        for (const auto *c : components) {
            Cycle at = c->nextEventAt(cycle);
            if (at <= cycle) {
                target = cycle;
                break;
            }
            target = std::min(target, at);
        }
        if (watchdogCycles != 0)
            target = std::min(target, lastProgress + watchdogCycles);
        if (max_cycles != 0)
            target = std::min(target, start + max_cycles);
        // A one-cycle jump costs more than the live round it replaces
        // (fastForward visits every component too); live rounds are
        // always correct, so just run one.
        if (target == Component::noEvent || target < cycle + 2)
            continue;

        Cycle skip_n = target - cycle;
        if (_tracer) {
            // Cycle-major replay keeps trace event order identical to
            // the spin-mode stream.
            for (Cycle k = 0; k < skip_n; ++k) {
                for (auto *c : components)
                    c->fastForward(cycle + k, 1, *this);
            }
        } else {
            for (auto *c : components)
                c->fastForward(cycle, skip_n, *this);
        }
        cycle = target;
        statCycles += skip_n;
        statIdleCycles += skip_n;
        ++_fastForwards;
        _skippedCycles += skip_n;
        if (watchdogCycles != 0 && cycle - lastProgress >= watchdogCycles)
            watchdogExpired();
    }
    return cycle - start;
}

} // namespace opac::sim
