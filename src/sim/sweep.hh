/**
 * @file
 * Parallel sweep runner: executes a batch of independent simulations
 * (one Coprocessor per task, nothing shared) across a small thread
 * pool, returning results in task order regardless of completion
 * order. Used by the benchmark drivers to run a (kernel, n, P, tau)
 * parameter sweep concurrently — every simulation is deterministic,
 * so the only observable difference from a serial run is wall-clock
 * time.
 */

#ifndef OPAC_SIM_SWEEP_HH
#define OPAC_SIM_SWEEP_HH

#include <cstddef>
#include <functional>
#include <vector>

namespace opac::sim
{

/**
 * Number of worker threads to use by default: the hardware
 * concurrency, or 1 if it cannot be determined.
 */
unsigned defaultJobs();

/**
 * Run fn(0), fn(1), ..., fn(count - 1) on up to @p jobs worker
 * threads. Indices are dispatched dynamically (an atomic counter), so
 * uneven task lengths balance automatically. With jobs <= 1 (or
 * count <= 1) everything runs inline on the calling thread — the
 * degenerate case behaves exactly like a plain loop.
 *
 * Exceptions thrown by tasks are captured; after all workers finish,
 * the exception of the lowest-index failing task is rethrown on the
 * calling thread.
 */
void runIndexed(std::size_t count, unsigned jobs,
                const std::function<void(std::size_t)> &fn);

/**
 * Map @p tasks through a thread pool, preserving input order in the
 * result vector. Each task is a callable returning R; tasks must be
 * independent (no shared mutable state, or only thread-safe state).
 */
template <typename R, typename Task>
std::vector<R>
sweep(const std::vector<Task> &tasks, unsigned jobs)
{
    std::vector<R> results(tasks.size());
    runIndexed(tasks.size(), jobs,
               [&](std::size_t i) { results[i] = tasks[i](); });
    return results;
}

} // namespace opac::sim

#endif // OPAC_SIM_SWEEP_HH
