/**
 * @file
 * Shared pieces of the nextEventAt / fastForward protocol.
 *
 * Every component that supports idle-cycle skipping answers the same
 * two questions — "when could I act next?" (a minimum over queue
 * fronts, countdowns and pipeline landings) and "what would my
 * quiescent rounds have looked like?" (per-cycle stall events while
 * traced). The accumulator, the FIFO front-ready wake rule and the
 * stall replay loop used to be copy-pasted across timed_fifo, cell
 * and host; they live here once.
 */

#ifndef OPAC_SIM_REPLAY_HH
#define OPAC_SIM_REPLAY_HH

#include "common/types.hh"
#include "sim/engine.hh"
#include "trace/trace.hh"

namespace opac::sim
{

/** Accumulates the minimum over "earliest event" hints. */
class HintMin
{
  public:
    /** Fold in a hint (noEvent is the identity). */
    void
    note(Cycle at)
    {
        if (at < _at)
            _at = at;
    }

    /**
     * Fold in a hint that only counts when it is not already in the
     * past — pipeline landings with when < now are ordered behind a
     * later entry and must not produce a stale wake-up.
     */
    void
    noteFuture(Cycle at, Cycle now)
    {
        if (at >= now)
            note(at);
    }

    Cycle value() const { return _at; }

  private:
    Cycle _at = Component::noEvent;
};

/**
 * The FIFO front-ready wake rule shared by every queue-backed hint: a
 * front that became poppable strictly before @p now was already seen
 * by its stalled consumer and cannot wake it; a front becoming ready
 * at or after @p now wakes the consumer at exactly its ready cycle.
 */
inline Cycle
frontReadyHint(Cycle ready, Cycle now)
{
    return ready < now ? Component::noEvent : ready;
}

/**
 * Emit the per-cycle Stall trace events a quiescent component would
 * have produced in rounds [from, from + cycles), one per round — the
 * traced half of every fastForward implementation. No-op without a
 * tracer.
 */
inline void
replayStalls(trace::Tracer *t, Cycle from, Cycle cycles,
             trace::StallWhy why, std::uint16_t comp, std::uint32_t a)
{
    if (!t)
        return;
    for (Cycle k = 0; k < cycles; ++k) {
        t->emit(from + k, trace::EventKind::Stall, std::uint8_t(why),
                comp, 0, a, 0);
    }
}

} // namespace opac::sim

#endif // OPAC_SIM_REPLAY_HH
