/**
 * @file
 * Warp-style linear coprocessor array baseline (paper sections 3.2-3.3,
 * fig. 1).
 *
 * The same OPAC cell is arranged in a chain: the host feeds cell 0 and
 * drains cell P-1; each cell's tpo is wired to the next cell's tpx by a
 * one-word-per-cycle link. Control (tpi) still reaches every cell
 * directly. A matrix-update workload maps by splitting the K dimension
 * across the chain: each cell applies its share of rank-1 updates to
 * the tile as it streams through, then forwards the tile and the
 * operand stream that downstream cells still need.
 *
 * Compared with the horizontal array (fig. 2): the host only ever
 * sustains two streams regardless of P, but every tile must fit a
 * *single* cell's sum queue (Tf, not Tf*P), operands for downstream
 * cells consume issue slots of upstream cells (the forwarding moves),
 * and the pipeline needs a stream of tiles to fill. bench/ablation_warp
 * quantifies all three effects.
 */

#ifndef OPAC_BASELINE_WARP_HH
#define OPAC_BASELINE_WARP_HH

#include <memory>
#include <vector>

#include "cell/cell.hh"
#include "stats/stats.hh"
#include "host/host.hh"
#include "sim/engine.hh"

namespace opac::baseline
{

/** Moves one word per cycle from one FIFO to another (a chain link). */
class ChainLink : public sim::Component
{
  public:
    ChainLink(std::string name, TimedFifo &from, TimedFifo &to)
        : sim::Component(std::move(name)), from(from), to(to)
    {}

    void
    tick(sim::Engine &engine) override
    {
        if (from.canPop(engine.now()) && to.canPush()) {
            to.push(from.pop(engine.now()), engine.now());
            engine.noteProgress();
        }
    }

    bool done() const override { return true; } // passive

    std::string
    statusLine() const override
    {
        return strfmt("%s -> %s (%zu waiting)", from.name().c_str(),
                      to.name().c_str(), from.size());
    }

  private:
    TimedFifo &from;
    TimedFifo &to;
};

/** Configuration of a linear array. */
struct WarpConfig
{
    unsigned cells = 4;
    cell::CellConfig cell;
    host::HostConfig host;
    std::size_t memoryWords = 1 << 22;
    Cycle watchdogCycles = 2000000;
};

/** A host plus a chain of cells. */
class WarpArray
{
  public:
    explicit WarpArray(const WarpConfig &cfg);

    unsigned numCells() const { return unsigned(cellPtrs.size()); }
    cell::Cell &cell(unsigned i) { return *cellPtrs[i]; }
    host::Host &host() { return *hostPtr; }
    host::HostMemory &memory() { return mem; }
    const WarpConfig &config() const { return cfg; }

    /** Install a kernel into every cell. */
    void loadMicrocode(Word entry, const isa::Program &prog,
                       unsigned nparams);

    Cycle run(Cycle max_cycles = 0);

  private:
    WarpConfig cfg;
    stats::StatGroup statRoot;
    host::HostMemory mem;
    sim::Engine eng;
    std::vector<std::unique_ptr<cell::Cell>> cellPtrs;
    std::vector<std::unique_ptr<ChainLink>> links;
    std::unique_ptr<host::Host> hostPtr;
};

/** Microcode entry used by the warp matrix-update mapping. */
constexpr Word warpMatUpdateEntry = 100;

/**
 * Build the chain-cell matrix-update kernel: update the streamed tile
 * with this cell's K-range, pass the tile on, forward the remaining
 * operand stream. Parameters: p0 = K_mine, p1 = Mb, p2 = Nb,
 * p3 = Mb*Nb, p4 = words to forward downstream.
 */
isa::Program buildWarpMatUpdate();

/**
 * Emit the host program for a stream of @p tiles independent matrix
 * updates C += A*B of shape (n x n) += (n x k_total)*(k_total x n),
 * with tile t's matrices at the given host-memory refs (see the
 * ablation bench for layout). Returns useful multiply-adds.
 */
double planWarpMatUpdateStream(WarpArray &warp, std::size_t n,
                               std::size_t k_total, std::size_t tiles,
                               std::size_t c_base, std::size_t a_base,
                               std::size_t b_base);

} // namespace opac::baseline

#endif // OPAC_BASELINE_WARP_HH
