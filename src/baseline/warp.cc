#include "baseline/warp.hh"

#include "common/logging.hh"
#include "isa/builder.hh"

namespace opac::baseline
{

using namespace isa;
using host::Region;

WarpArray::WarpArray(const WarpConfig &cfg)
    : cfg(cfg), statRoot("warp"), mem(cfg.memoryWords),
      eng(cfg.watchdogCycles)
{
    opac_assert(cfg.cells >= 1 && cfg.cells <= 32,
                "cell count %u out of range", cfg.cells);
    std::vector<cell::Cell *> raw;
    for (unsigned i = 0; i < cfg.cells; ++i) {
        cellPtrs.push_back(std::make_unique<cell::Cell>(
            strfmt("wcell%u", i), cfg.cell, &statRoot));
        raw.push_back(cellPtrs.back().get());
    }
    hostPtr = std::make_unique<host::Host>("host", cfg.host, mem, raw,
                                           &statRoot);
    eng.add(hostPtr.get());
    for (unsigned i = 0; i + 1 < cfg.cells; ++i) {
        links.push_back(std::make_unique<ChainLink>(
            strfmt("link%u", i), cellPtrs[i]->tpo(),
            cellPtrs[i + 1]->tpx()));
    }
    for (auto &c : cellPtrs)
        eng.add(c.get());
    for (auto &l : links)
        eng.add(l.get());
}

void
WarpArray::loadMicrocode(Word entry, const isa::Program &prog,
                         unsigned nparams)
{
    for (auto &c : cellPtrs)
        c->loadMicrocode(entry, prog, nparams);
}

Cycle
WarpArray::run(Cycle max_cycles)
{
    return eng.run(max_cycles);
}

isa::Program
buildWarpMatUpdate()
{
    ProgramBuilder b("warp_matupdate");
    // Tile streams in.
    b.loopParam(3, [&] { b.mov(Src::TpX, DstSum); });
    // This cell's rank-1 updates.
    b.loopParam(0, [&] {
        b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });
        b.loopParam(2, [&] {
            b.mov(Src::TpX, DstRegAy);
            b.loopParam(1, [&] {
                b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
            });
        });
        b.resetFifo(LocalFifo::Reby);
    });
    // Tile streams out, then the operands downstream cells need.
    b.loopParam(3, [&] { b.mov(Src::Sum, DstTpO); });
    b.loopParam(4, [&] { b.mov(Src::TpX, DstTpO); });
    return b.finish();
}

double
planWarpMatUpdateStream(WarpArray &warp, std::size_t n,
                        std::size_t k_total, std::size_t tiles,
                        std::size_t c_base, std::size_t a_base,
                        std::size_t b_base)
{
    const unsigned p = warp.numCells();
    opac_assert(n * n <= warp.config().cell.tf,
                "warp tile %zu^2 exceeds a single cell's Tf", n);
    host::Host &h = warp.host();

    // K-range per cell.
    std::vector<std::size_t> k0(p + 1, 0);
    for (unsigned cc = 0; cc < p; ++cc)
        k0[cc + 1] = k0[cc] + k_total / p + (cc < k_total % p ? 1 : 0);

    const std::size_t tile_words = n * n;
    const std::size_t per_k = 2 * n; // B column + C row

    // Keep up to R tiles in flight so the chain pipeline fills; R is
    // bounded by what the last cell's tpo can buffer (deadlock-free by
    // construction: at most R results are ever outstanding).
    const std::size_t if_depth = warp.config().cell.interfaceDepth;
    std::size_t r = std::max<std::size_t>(
        1, std::min<std::size_t>(p + 1, if_depth / tile_words));

    auto emit_recv = [&](std::size_t t) {
        h.enqueue(host::recvOp(
            p - 1, Region::vec(c_base + t * tile_words, tile_words)));
    };

    for (std::size_t t = 0; t < tiles; ++t) {
        // Calls, one per cell, just ahead of this tile's data.
        for (unsigned cc = 0; cc < p; ++cc) {
            std::size_t kmine = k0[cc + 1] - k0[cc];
            std::size_t kdown = k_total - k0[cc + 1];
            h.enqueue(host::callOp(
                1u << cc, warpMatUpdateEntry,
                {std::int32_t(kmine), std::int32_t(n), std::int32_t(n),
                 std::int32_t(tile_words),
                 std::int32_t(kdown * per_k)}));
        }
        // Tile, then per-k operand bundles, all into cell 0.
        std::size_t c_t = c_base + t * tile_words;
        std::size_t a_t = a_base + t * n * k_total;
        std::size_t b_t = b_base + t * n * k_total;
        h.enqueue(host::sendOp(1u, Region::vec(c_t, tile_words)));
        for (std::size_t kk = 0; kk < k_total; ++kk) {
            h.enqueue(host::sendOp(1u, Region::vec(a_t + kk * n, n)));
            h.enqueue(host::sendOp(
                1u, Region::strided(b_t + kk, n, k_total)));
        }
        if (t + 1 >= r)
            emit_recv(t + 1 - r);
    }
    for (std::size_t t = tiles >= r ? tiles - r + 1 : 0; t < tiles; ++t)
        emit_recv(t);
    return double(tiles) * double(n) * double(n) * double(k_total);
}

} // namespace opac::baseline
