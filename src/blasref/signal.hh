/**
 * @file
 * Reference signal-processing routines: 2-D correlation/convolution,
 * 1-D correlation and the discrete Fourier transform.
 */

#ifndef OPAC_BLASREF_SIGNAL_HH
#define OPAC_BLASREF_SIGNAL_HH

#include <complex>
#include <vector>

#include "blasref/matrix.hh"

namespace opac::blasref
{

/**
 * 2-D "valid anchored" cross-correlation, the semantics of the OPAC
 * conv2d kernel: B(n, m) = sum_{i,j} w(i, j) * A(n + i, m + j), where A
 * is the zero-padded image (pad p-1 rows at the bottom and q-1 columns
 * on both... see kernels/conv2d for the exact layout). Here A is the
 * original N x M image; out-of-range reads are zero.
 */
Matrix xcorr2d(const Matrix &image, const Matrix &weights);

/**
 * 1-D correlation: out[d] = sum_i x[i] * y[i + d] for d in [0, lags),
 * with y of length x.size() + lags - 1.
 */
std::vector<float> xcorr1d(const std::vector<float> &x,
                           const std::vector<float> &y,
                           std::size_t lags);

/** In-order DFT of a complex vector (O(n^2), double accumulation). */
std::vector<std::complex<float>>
dft(const std::vector<std::complex<float>> &x, bool inverse = false);

/** Recursive radix-2 FFT reference (n must be a power of two). */
std::vector<std::complex<float>>
fft(const std::vector<std::complex<float>> &x, bool inverse = false);

} // namespace opac::blasref

#endif // OPAC_BLASREF_SIGNAL_HH
