#include "blasref/signal.hh"

#include <cmath>

#include "common/math_util.hh"

namespace opac::blasref
{

Matrix
xcorr2d(const Matrix &image, const Matrix &weights)
{
    const std::size_t n_rows = image.rows();
    const std::size_t n_cols = image.cols();
    const std::size_t p = weights.rows();
    const std::size_t q = weights.cols();
    Matrix out(n_rows, n_cols);
    for (std::size_t n = 0; n < n_rows; ++n) {
        for (std::size_t m = 0; m < n_cols; ++m) {
            double acc = 0.0;
            for (std::size_t i = 0; i < p; ++i) {
                for (std::size_t j = 0; j < q; ++j) {
                    std::size_t r = n + i;
                    std::size_t c = m + j;
                    if (r < n_rows && c < n_cols)
                        acc += double(weights.at(i, j))
                            * double(image.at(r, c));
                }
            }
            out.at(n, m) = float(acc);
        }
    }
    return out;
}

std::vector<float>
xcorr1d(const std::vector<float> &x, const std::vector<float> &y,
        std::size_t lags)
{
    opac_assert(y.size() == x.size() + lags - 1,
                "xcorr1d: y must have length |x| + lags - 1");
    std::vector<float> out(lags, 0.0f);
    for (std::size_t d = 0; d < lags; ++d) {
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i)
            acc += double(x[i]) * double(y[i + d]);
        out[d] = float(acc);
    }
    return out;
}

std::vector<std::complex<float>>
dft(const std::vector<std::complex<float>> &x, bool inverse)
{
    const std::size_t n = x.size();
    const double sgn = inverse ? 1.0 : -1.0;
    std::vector<std::complex<float>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc = 0.0;
        for (std::size_t i = 0; i < n; ++i) {
            double ang = sgn * 2.0 * M_PI * double(k) * double(i)
                / double(n);
            acc += std::complex<double>(x[i])
                * std::complex<double>(std::cos(ang), std::sin(ang));
        }
        out[k] = std::complex<float>(acc);
    }
    return out;
}

std::vector<std::complex<float>>
fft(const std::vector<std::complex<float>> &x, bool inverse)
{
    const std::size_t n = x.size();
    opac_assert(isPow2(std::int64_t(n)), "fft size %zu not a power of 2",
                n);
    if (n == 1)
        return x;
    std::vector<std::complex<float>> even(n / 2), odd(n / 2);
    for (std::size_t i = 0; i < n / 2; ++i) {
        even[i] = x[2 * i];
        odd[i] = x[2 * i + 1];
    }
    auto fe = fft(even, inverse);
    auto fo = fft(odd, inverse);
    const double sgn = inverse ? 1.0 : -1.0;
    std::vector<std::complex<float>> out(n);
    for (std::size_t k = 0; k < n / 2; ++k) {
        double ang = sgn * 2.0 * M_PI * double(k) / double(n);
        std::complex<float> w(float(std::cos(ang)), float(std::sin(ang)));
        std::complex<float> t = w * fo[k];
        out[k] = fe[k] + t;
        out[k + n / 2] = fe[k] - t;
    }
    return out;
}

} // namespace opac::blasref
