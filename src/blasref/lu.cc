#include "blasref/lu.hh"

#include <cmath>

namespace opac::blasref
{

void
luFactor(Matrix &a)
{
    opac_assert(a.rows() == a.cols(), "LU needs a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t k = 0; k < n; ++k) {
        const float pivot = a.at(k, k);
        opac_assert(pivot != 0.0f, "zero pivot at step %zu", k);
        const float recip = 1.0f / pivot;
        for (std::size_t i = k + 1; i < n; ++i)
            a.at(i, k) *= recip;
        for (std::size_t j = k + 1; j < n; ++j) {
            const float akj = a.at(k, j);
            for (std::size_t i = k + 1; i < n; ++i)
                a.at(i, j) -= a.at(i, k) * akj;
        }
    }
}

std::vector<float>
luSolve(const Matrix &lu, const std::vector<float> &b)
{
    const std::size_t n = lu.rows();
    opac_assert(b.size() == n, "rhs size mismatch");
    std::vector<float> x = b;
    // Forward substitution with unit lower L.
    for (std::size_t i = 0; i < n; ++i) {
        double acc = x[i];
        for (std::size_t k = 0; k < i; ++k)
            acc -= double(lu.at(i, k)) * double(x[k]);
        x[i] = float(acc);
    }
    // Back substitution with U.
    for (std::size_t ii = n; ii-- > 0;) {
        double acc = x[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            acc -= double(lu.at(ii, k)) * double(x[k]);
        x[ii] = float(acc / double(lu.at(ii, ii)));
    }
    return x;
}

void
choleskyFactor(Matrix &a)
{
    opac_assert(a.rows() == a.cols(), "Cholesky needs a square matrix");
    const std::size_t n = a.rows();
    for (std::size_t k = 0; k < n; ++k) {
        const float pivot = a.at(k, k);
        opac_assert(pivot > 0.0f, "non-positive pivot at step %zu", k);
        const float lkk = std::sqrt(pivot);
        a.at(k, k) = lkk;
        const float recip = 1.0f / lkk;
        for (std::size_t i = k + 1; i < n; ++i)
            a.at(i, k) *= recip;
        for (std::size_t j = k + 1; j < n; ++j) {
            const float ljk = a.at(j, k);
            for (std::size_t i = j; i < n; ++i)
                a.at(i, j) -= a.at(i, k) * ljk;
        }
    }
}

Matrix
randomSpd(std::size_t n, Rng &rng)
{
    Matrix b(n, n);
    b.randomize(rng);
    Matrix a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += double(b.at(i, k)) * double(b.at(j, k));
            a.at(i, j) = float(acc / double(n));
        }
        a.at(i, i) += 1.0f;
    }
    return a;
}

float
residual(const Matrix &a, const std::vector<float> &x,
         const std::vector<float> &b)
{
    const std::size_t n = a.rows();
    float worst = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = -double(b[i]);
        for (std::size_t j = 0; j < n; ++j)
            acc += double(a.at(i, j)) * double(x[j]);
        float r = float(acc < 0 ? -acc : acc);
        if (r > worst)
            worst = r;
    }
    return worst;
}

} // namespace opac::blasref
