/**
 * @file
 * Reference LU factorization (no pivoting, as in the paper's block
 * algorithm) and triangular solves for system solution.
 */

#ifndef OPAC_BLASREF_LU_HH
#define OPAC_BLASREF_LU_HH

#include <vector>

#include "blasref/matrix.hh"

namespace opac::blasref
{

/**
 * In-place LU factorization without pivoting: A = L * U with L unit
 * lower triangular stored below the diagonal and U on/above it. The
 * caller must supply a matrix for which unpivoted LU is stable
 * (e.g. diagonally dominant).
 */
void luFactor(Matrix &a);

/** Solve A x = b given the packed LU factors. */
std::vector<float> luSolve(const Matrix &lu,
                           const std::vector<float> &b);

/** Residual max-norm ||A x - b||_inf, for end-to-end checks. */
float residual(const Matrix &a, const std::vector<float> &x,
               const std::vector<float> &b);

/**
 * In-place Cholesky factorization A = L L^T of a symmetric positive-
 * definite matrix: L fills the lower triangle (the strictly-upper part
 * is left untouched).
 */
void choleskyFactor(Matrix &a);

/** Build a random symmetric positive-definite matrix. */
Matrix randomSpd(std::size_t n, Rng &rng);

} // namespace opac::blasref

#endif // OPAC_BLASREF_LU_HH
