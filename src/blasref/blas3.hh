/**
 * @file
 * Reference BLAS-3 style routines (plain C++, double accumulation).
 *
 * These are the oracles the coprocessor kernels are validated against,
 * and the building blocks of the scalar-host baseline. They are written
 * for clarity, not speed.
 */

#ifndef OPAC_BLASREF_BLAS3_HH
#define OPAC_BLASREF_BLAS3_HH

#include "blasref/matrix.hh"

namespace opac::blasref
{

/** C += A * B (or C -= A * B when negate). */
void gemm(Matrix &c, const Matrix &a, const Matrix &b,
          bool negate = false);

/**
 * Solve X * U = A for X, U upper triangular (non-unit diagonal),
 * overwriting A with X. This is the BLAS TRSM(right, upper) used by the
 * LU block algorithm's A10 update.
 */
void trsmRightUpper(Matrix &a, const Matrix &u);

/**
 * Solve L * X = A for X, L unit lower triangular, overwriting A. The LU
 * block algorithm's A01 update.
 */
void trsmLeftUnitLower(Matrix &a, const Matrix &l);

/** B = U * B with U upper triangular (TRMM, left upper). */
void trmmLeftUpper(Matrix &b, const Matrix &u);

/** C += A * A^T restricted to the lower triangle (SYRK). */
void syrkLower(Matrix &c, const Matrix &a);

} // namespace opac::blasref

#endif // OPAC_BLASREF_BLAS3_HH
