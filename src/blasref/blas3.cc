#include "blasref/blas3.hh"

namespace opac::blasref
{

void
gemm(Matrix &c, const Matrix &a, const Matrix &b, bool negate)
{
    opac_assert(a.rows() == c.rows() && b.cols() == c.cols()
                && a.cols() == b.rows(),
                "gemm shape mismatch: C %zux%zu, A %zux%zu, B %zux%zu",
                c.rows(), c.cols(), a.rows(), a.cols(), b.rows(),
                b.cols());
    const float s = negate ? -1.0f : 1.0f;
    for (std::size_t j = 0; j < c.cols(); ++j) {
        for (std::size_t i = 0; i < c.rows(); ++i) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += double(a.at(i, k)) * double(b.at(k, j));
            c.at(i, j) += s * float(acc);
        }
    }
}

void
trsmRightUpper(Matrix &a, const Matrix &u)
{
    opac_assert(u.rows() == u.cols() && a.cols() == u.rows(),
                "trsmRightUpper shape mismatch");
    // Column j of X depends on columns < j: x_j = (a_j - X_{<j} u_{<j,j})
    // / u_jj.
    for (std::size_t j = 0; j < a.cols(); ++j) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
            double acc = double(a.at(i, j));
            for (std::size_t k = 0; k < j; ++k)
                acc -= double(a.at(i, k)) * double(u.at(k, j));
            a.at(i, j) = float(acc / double(u.at(j, j)));
        }
    }
}

void
trsmLeftUnitLower(Matrix &a, const Matrix &l)
{
    opac_assert(l.rows() == l.cols() && a.rows() == l.rows(),
                "trsmLeftUnitLower shape mismatch");
    for (std::size_t j = 0; j < a.cols(); ++j) {
        for (std::size_t i = 0; i < a.rows(); ++i) {
            double acc = double(a.at(i, j));
            for (std::size_t k = 0; k < i; ++k)
                acc -= double(l.at(i, k)) * double(a.at(k, j));
            a.at(i, j) = float(acc);
        }
    }
}

void
trmmLeftUpper(Matrix &b, const Matrix &u)
{
    opac_assert(u.rows() == u.cols() && b.rows() == u.rows(),
                "trmmLeftUpper shape mismatch");
    for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < b.rows(); ++i) {
            double acc = 0.0;
            for (std::size_t k = i; k < u.cols(); ++k)
                acc += double(u.at(i, k)) * double(b.at(k, j));
            b.at(i, j) = float(acc);
        }
    }
}

void
syrkLower(Matrix &c, const Matrix &a)
{
    opac_assert(c.rows() == c.cols() && a.rows() == c.rows(),
                "syrkLower shape mismatch");
    for (std::size_t j = 0; j < c.cols(); ++j) {
        for (std::size_t i = j; i < c.rows(); ++i) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += double(a.at(i, k)) * double(a.at(j, k));
            c.at(i, j) += float(acc);
        }
    }
}

} // namespace opac::blasref
