/**
 * @file
 * Column-major dense matrix container used by the reference
 * implementations, the planners and the tests.
 */

#ifndef OPAC_BLASREF_MATRIX_HH
#define OPAC_BLASREF_MATRIX_HH

#include <vector>

#include "common/logging.hh"
#include "common/random.hh"

namespace opac::blasref
{

/** A rows x cols column-major matrix of floats. */
class Matrix
{
  public:
    Matrix() : _rows(0), _cols(0) {}

    Matrix(std::size_t rows, std::size_t cols, float fill = 0.0f)
        : _rows(rows), _cols(cols), data(rows * cols, fill)
    {}

    std::size_t rows() const { return _rows; }
    std::size_t cols() const { return _cols; }

    float &
    at(std::size_t r, std::size_t c)
    {
        opac_assert(r < _rows && c < _cols, "matrix index (%zu, %zu) out "
                    "of %zux%zu", r, c, _rows, _cols);
        return data[c * _rows + r];
    }

    float
    at(std::size_t r, std::size_t c) const
    {
        opac_assert(r < _rows && c < _cols, "matrix index (%zu, %zu) out "
                    "of %zux%zu", r, c, _rows, _cols);
        return data[c * _rows + r];
    }

    /** Fill with deterministic well-conditioned random elements. */
    void
    randomize(Rng &rng)
    {
        for (auto &v : data)
            v = rng.element();
    }

    /** Make diagonally dominant (for stable unpivoted LU). */
    void
    makeDiagonallyDominant()
    {
        opac_assert(_rows == _cols, "needs a square matrix");
        for (std::size_t i = 0; i < _rows; ++i)
            at(i, i) += float(_rows) + 1.0f;
    }

    /** Largest absolute elementwise difference to another matrix. */
    float
    maxAbsDiff(const Matrix &o) const
    {
        opac_assert(_rows == o._rows && _cols == o._cols,
                    "shape mismatch");
        float m = 0.0f;
        for (std::size_t i = 0; i < data.size(); ++i) {
            float d = data[i] - o.data[i];
            if (d < 0)
                d = -d;
            if (d > m)
                m = d;
        }
        return m;
    }

    const std::vector<float> &raw() const { return data; }
    std::vector<float> &raw() { return data; }

  private:
    std::size_t _rows;
    std::size_t _cols;
    std::vector<float> data;
};

} // namespace opac::blasref

#endif // OPAC_BLASREF_MATRIX_HH
