/**
 * @file
 * The horizontal OPAC coprocessor (paper figs. 2 and 3): P cells, each
 * directly connected to the host over a shared bus with broadcast
 * capability, all on one clock.
 *
 * This is the top-level object benchmarks and examples instantiate: it
 * owns the engine, the host, the host memory and the cells, loads
 * microcode into every cell, and runs the simulation to completion.
 */

#ifndef OPAC_COPROC_COPROCESSOR_HH
#define OPAC_COPROC_COPROCESSOR_HH

#include <memory>
#include <vector>

#include "cell/cell.hh"
#include "fault/fault.hh"
#include "fault/injector.hh"
#include "snap/snapshot.hh"
#include "stats/sampler.hh"
#include "stats/stats.hh"
#include "host/host.hh"
#include "sim/engine.hh"

namespace opac::copro
{

/** Full-system configuration. */
struct CoprocConfig
{
    unsigned cells = 1;            //!< P, the number of OPAC cells
    cell::CellConfig cell;         //!< per-cell configuration
    host::HostConfig host;         //!< host timing (tau, ...)
    std::size_t memoryWords = 1 << 22;
    Cycle watchdogCycles = 200000; //!< deadlock detector

    /**
     * Fast-forward the clock over quiescent stretches (default on).
     * Bit-identical to spinning — cycle counts, statistics and trace
     * events all match — so turning it off is only a debugging aid
     * (the benches' --no-skip flag). Ignored when engineMode selects
     * a scheduler explicitly; kept for existing callers of the
     * skip/no-skip switch.
     */
    bool skipIdleCycles = true;

    /**
     * Which scheduler drives the clock (the benches' --engine= flag).
     * All four are bit-identical in everything observable — simulated
     * cycles, statistics, trace streams; see docs/PERFORMANCE.md.
     * Skip honours skipIdleCycles (falling back to Spin when it is
     * off); Event and Parallel select the per-component sleep
     * scheduler and the sharded cell executor unconditionally.
     */
    sim::EngineMode engineMode = sim::EngineMode::Skip;

    /**
     * Worker threads for EngineMode::Parallel (0 = one per hardware
     * thread, capped at the cell count). Ignored by the other modes.
     */
    unsigned simThreads = 0;

    /**
     * Snapshot every scalar statistic each N cycles into an in-memory
     * time series (0 = off). The series is part of statsJson().
     */
    Cycle statsSampleInterval = 0;

    /**
     * Superop fast tier (the benches' --fast-tier= flag): let the
     * engine grant cells multi-cycle quanta over steady-state
     * innermost loop bodies (docs/PERFORMANCE.md). Byte-identical
     * either way; off forces the pure per-cycle interpreter in every
     * engine mode. ANDed with cell.fastTier per cell.
     */
    bool fastTier = true;

    /**
     * Fault-injection plan (docs/RESILIENCE.md). Empty (the default)
     * builds no injector and leaves the whole fault path cold: runs
     * are byte-identical to a build without the subsystem. Parity
     * protection is selected via cell.parity and recovery policy via
     * host.recovery.
     */
    fault::FaultSpec faults;
};

/** Mask addressing every cell of a P-cell coprocessor. */
inline std::uint32_t
allCellsMask(unsigned p)
{
    return p >= 32 ? 0xffffffffu : ((1u << p) - 1);
}

/** Host + P cells + engine, ready to execute kernel calls. */
class Coprocessor
{
  public:
    explicit Coprocessor(const CoprocConfig &cfg);

    unsigned numCells() const { return unsigned(cellPtrs.size()); }
    cell::Cell &cell(unsigned i) { return *cellPtrs[i]; }
    host::Host &host() { return *hostPtr; }
    host::HostMemory &memory() { return mem; }
    sim::Engine &engine() { return eng; }
    const CoprocConfig &config() const { return cfg; }

    /** Install a kernel into every cell's microcode store. */
    void loadMicrocode(Word entry, const isa::Program &prog,
                       unsigned nparams);

    /**
     * Attach a trace recorder to the whole system: the host bus, every
     * cell (including all seven of its queues) and the engine's
     * deadlock reports. Call before run(); pass nullptr to detach.
     * With no tracer attached every emission site costs one pointer
     * test.
     */
    void attachTracer(trace::Tracer *t);

    /**
     * Run until the host program and all cells complete. Returns the
     * cycles simulated by this call (the paper's metric: time between
     * the first word sent and the last result received).
     */
    Cycle run(Cycle max_cycles = 0);

    // --- checkpoint / resume ---------------------------------------
    //
    // A snapshot captures the whole machine — engine clock, statistics
    // tree, host memory and program, every cell's sequencer/pipeline/
    // queue state, the fault plan cursor and the sampled series — such
    // that restoring it into a freshly constructed Coprocessor with
    // the same configuration and continuing yields byte-identical
    // results to the uninterrupted run: same cycle counts, stats JSON,
    // sampler series and trace suffix, in any engine mode and with the
    // fast tier on or off. See docs/RESILIENCE.md "Checkpoint &
    // replay".

    /**
     * Hash of every configuration field that shapes machine state or
     * deterministic behavior. Engine mode, thread count, idle-skip and
     * fast-tier flags are deliberately excluded: those toggles are
     * byte-identical by contract, so a snapshot taken under one may be
     * resumed under another.
     */
    std::uint64_t configFingerprint() const;

    /** Capture the full system state at the current cycle. */
    snap::Snapshot takeSnapshot() const;

    /**
     * Restore a snapshot taken by takeSnapshot() on a system with the
     * same configuration (enforced via the fingerprint). Throws
     * opac::SnapshotError on any mismatch; the machine must be
     * freshly constructed (same microcode loaded, nothing run yet).
     * A tracer, replan handler or arm handler must be re-attached by
     * the caller — callbacks do not travel with snapshots.
     */
    void restoreSnapshot(const snap::Snapshot &s);

    /** takeSnapshot() serialized to @p path (atomic tmp + rename). */
    void saveSnapshot(const std::string &path) const;

    /** restoreSnapshot() from a file written by saveSnapshot(). */
    void loadSnapshot(const std::string &path);

    /**
     * Run until the clock reaches @p stop (or the system completes,
     * whichever is first) and return the cycles simulated. Unlike
     * run() this takes no end-of-run sampler snapshot: a later
     * resumed run must append to the series exactly where the
     * uninterrupted one would have.
     */
    Cycle runUntil(Cycle stop, Cycle max_cycles = 0);

    /** Render the full statistics tree. */
    std::string statsReport() const;

    /**
     * Fast-tier diagnostics: engine burst counts plus every cell's
     * detached fastTier counter group. Deliberately NOT part of
     * statsReport()/statsJson() — burst engagement varies with engine
     * mode and flags while those outputs must not.
     */
    std::string fastTierReport() const;

    /**
     * The full statistics tree plus the sampled time series (when
     * statsSampleInterval > 0) as one JSON object:
     * {"stats": {...}, "samples": {...}}.
     */
    std::string statsJson() const;

    /** The root of the system's statistics tree. */
    stats::StatGroup &stats() { return statRoot; }
    const stats::StatGroup &stats() const { return statRoot; }

    /** The interval sampler, or nullptr when sampling is off. */
    const stats::Sampler *sampler() const { return samplerPtr.get(); }

    /** The fault injector, or nullptr when the fault plan is empty. */
    const fault::Injector *injector() const { return injectorPtr.get(); }

  private:
    /** Routes one armed fault event to the component it targets. */
    void applyFault(const fault::FaultEvent &e, Cycle now);

    /** Engine slot order: sampler, injector, host, cells. */
    std::vector<const sim::Component *> componentList() const;

    /** The FIFO a flip/reorder fault addresses. */
    TimedFifo &fifoAt(unsigned cell, fault::FifoSite site);

    CoprocConfig cfg;
    stats::StatGroup statRoot;
    host::HostMemory mem;
    sim::Engine eng;
    std::vector<std::unique_ptr<cell::Cell>> cellPtrs;
    std::unique_ptr<host::Host> hostPtr;
    std::unique_ptr<stats::Sampler> samplerPtr;
    std::unique_ptr<fault::Injector> injectorPtr;

    // Derived whole-system metrics (evaluated when read).
    stats::Formula fMaPerCycle;
    stats::Formula fFlopsPerCycle;
    stats::Formula fBusWordsPerFlop;
};

} // namespace opac::copro

#endif // OPAC_COPROC_COPROCESSOR_HH
