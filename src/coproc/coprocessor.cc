#include "coproc/coprocessor.hh"

#include "common/logging.hh"

namespace opac::copro
{

Coprocessor::Coprocessor(const CoprocConfig &cfg)
    : cfg(cfg), statRoot("system"), mem(cfg.memoryWords),
      eng(cfg.watchdogCycles, &statRoot)
{
    opac_assert(cfg.cells >= 1 && cfg.cells <= 32,
                "cell count %u out of range [1, 32]", cfg.cells);
    eng.setSkipEnabled(cfg.skipIdleCycles);
    std::vector<cell::Cell *> raw;
    for (unsigned i = 0; i < cfg.cells; ++i) {
        cellPtrs.push_back(std::make_unique<cell::Cell>(
            strfmt("cell%u", i), cfg.cell, &statRoot));
        raw.push_back(cellPtrs.back().get());
    }
    hostPtr = std::make_unique<host::Host>("host", cfg.host, mem, raw,
                                           &statRoot);
    // The sampler ticks first so a sample labelled cycle k is the state
    // after exactly k completed cycles; then the host: data it pushes
    // at cycle t becomes visible to cells at t + fifoLatency either
    // way, so order affects nothing observable; registration order is
    // fixed for determinism.
    if (cfg.statsSampleInterval > 0) {
        samplerPtr = std::make_unique<stats::Sampler>(
            "sampler", statRoot, cfg.statsSampleInterval);
        eng.add(samplerPtr.get());
    }
    eng.add(hostPtr.get());
    for (auto &c : cellPtrs)
        eng.add(c.get());

    // Whole-system derived metrics, evaluated lazily so they are always
    // consistent with the counters at the moment they are read.
    auto fma = [this] {
        std::uint64_t n = 0;
        for (auto &c : cellPtrs)
            n += c->fmaOps();
        return n;
    };
    auto flops = [this, fma] {
        std::uint64_t n = 2 * fma();
        for (auto &c : cellPtrs) {
            n += c->pmuRead(cell::PmuReg::MulOnly);
            n += c->pmuRead(cell::PmuReg::AddOnly);
        }
        return n;
    };
    fMaPerCycle.define([this, fma]() -> double {
        Cycle cy = eng.now();
        return cy ? double(fma()) / double(cy) : 0.0;
    });
    fFlopsPerCycle.define([this, flops]() -> double {
        Cycle cy = eng.now();
        return cy ? double(flops()) / double(cy) : 0.0;
    });
    fBusWordsPerFlop.define([this, flops]() -> double {
        std::uint64_t f = flops();
        std::uint64_t words =
            hostPtr->wordsSent() + hostPtr->wordsReceived();
        return f ? double(words) / double(f) : 0.0;
    });
    statRoot.addFormula("maPerCycle", &fMaPerCycle,
                        "multiply-adds per cycle, all cells");
    statRoot.addFormula("flopsPerCycle", &fFlopsPerCycle,
                        "floating-point operations per cycle");
    statRoot.addFormula("busWordsPerFlop", &fBusWordsPerFlop,
                        "host bus words moved per flop");
}

void
Coprocessor::loadMicrocode(Word entry, const isa::Program &prog,
                           unsigned nparams)
{
    for (auto &c : cellPtrs)
        c->loadMicrocode(entry, prog, nparams);
}

void
Coprocessor::attachTracer(trace::Tracer *t)
{
    eng.setTracer(t);
    hostPtr->attachTracer(t);
    for (auto &c : cellPtrs)
        c->attachTracer(t);
}

Cycle
Coprocessor::run(Cycle max_cycles)
{
    Cycle cycles = eng.run(max_cycles);
    // Close the time series with the final state (idempotent: skipped
    // when the last interval tick already sampled this cycle).
    if (samplerPtr)
        samplerPtr->snapshot(eng.now());
    return cycles;
}

std::string
Coprocessor::statsReport() const
{
    std::string out;
    statRoot.dump(out);
    return out;
}

std::string
Coprocessor::statsJson() const
{
    std::string out = "{\"stats\": ";
    out += statRoot.json();
    if (samplerPtr) {
        out += ", \"samples\": ";
        out += samplerPtr->json();
    }
    out += "}";
    return out;
}

} // namespace opac::copro
