#include "coproc/coprocessor.hh"

#include "common/logging.hh"

namespace opac::copro
{

Coprocessor::Coprocessor(const CoprocConfig &cfg)
    : cfg(cfg), statRoot("system"), mem(cfg.memoryWords),
      eng(cfg.watchdogCycles)
{
    opac_assert(cfg.cells >= 1 && cfg.cells <= 32,
                "cell count %u out of range [1, 32]", cfg.cells);
    std::vector<cell::Cell *> raw;
    for (unsigned i = 0; i < cfg.cells; ++i) {
        cellPtrs.push_back(std::make_unique<cell::Cell>(
            strfmt("cell%u", i), cfg.cell, &statRoot));
        raw.push_back(cellPtrs.back().get());
    }
    hostPtr = std::make_unique<host::Host>("host", cfg.host, mem, raw,
                                           &statRoot);
    // The host ticks first each cycle: data it pushes at cycle t becomes
    // visible to cells at t + fifoLatency either way, so order only
    // affects nothing observable; registration order is fixed for
    // determinism.
    eng.add(hostPtr.get());
    for (auto &c : cellPtrs)
        eng.add(c.get());
}

void
Coprocessor::loadMicrocode(Word entry, const isa::Program &prog,
                           unsigned nparams)
{
    for (auto &c : cellPtrs)
        c->loadMicrocode(entry, prog, nparams);
}

void
Coprocessor::attachTracer(trace::Tracer *t)
{
    eng.setTracer(t);
    hostPtr->attachTracer(t);
    for (auto &c : cellPtrs)
        c->attachTracer(t);
}

Cycle
Coprocessor::run(Cycle max_cycles)
{
    return eng.run(max_cycles);
}

std::string
Coprocessor::statsReport() const
{
    std::string out;
    statRoot.dump(out);
    return out;
}

} // namespace opac::copro
