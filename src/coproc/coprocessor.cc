#include "coproc/coprocessor.hh"

#include "common/logging.hh"

namespace opac::copro
{

Coprocessor::Coprocessor(const CoprocConfig &cfg)
    : cfg(cfg), statRoot("system"), mem(cfg.memoryWords),
      eng(cfg.watchdogCycles, &statRoot)
{
    opac_assert(cfg.cells >= 1 && cfg.cells <= 32,
                "cell count %u out of range [1, 32]", cfg.cells);
    sim::EngineMode mode = cfg.engineMode;
    if (mode == sim::EngineMode::Skip && !cfg.skipIdleCycles)
        mode = sim::EngineMode::Spin;
    eng.setMode(mode);
    eng.setThreads(cfg.simThreads);
    eng.setFastTier(cfg.fastTier);
    cell::CellConfig ccfg = cfg.cell;
    ccfg.fastTier = cfg.fastTier && cfg.cell.fastTier;
    std::vector<cell::Cell *> raw;
    for (unsigned i = 0; i < cfg.cells; ++i) {
        cellPtrs.push_back(std::make_unique<cell::Cell>(
            strfmt("cell%u", i), ccfg, &statRoot));
        raw.push_back(cellPtrs.back().get());
    }
    hostPtr = std::make_unique<host::Host>("host", cfg.host, mem, raw,
                                           &statRoot);
    // A cell-side mutation of an interface queue (result pushed on
    // tpo, operand drained from tpx/tpy) must wake a sleeping host,
    // and vice versa.
    for (auto &c : cellPtrs)
        c->setBusWakeNeighbor(hostPtr.get());
    // The sampler ticks first so a sample labelled cycle k is the state
    // after exactly k completed cycles; then the host: data it pushes
    // at cycle t becomes visible to cells at t + fifoLatency either
    // way, so order affects nothing observable; registration order is
    // fixed for determinism.
    if (cfg.statsSampleInterval > 0) {
        samplerPtr = std::make_unique<stats::Sampler>(
            "sampler", statRoot, cfg.statsSampleInterval);
        eng.add(samplerPtr.get());
    }
    // The injector ticks before the host and the cells so a fault
    // scheduled for cycle t lands before any cycle-t queue activity —
    // the same interleaving whether the engine spins or skips.
    if (cfg.faults.any()) {
        injectorPtr = std::make_unique<fault::Injector>(
            "injector", fault::buildPlan(cfg.faults, cfg.cells),
            &statRoot);
        injectorPtr->setArmHandler(
            [this](const fault::FaultEvent &e, Cycle now) {
                applyFault(e, now);
            });
        eng.add(injectorPtr.get());
    }
    eng.add(hostPtr.get());
    for (auto &c : cellPtrs)
        eng.add(c.get());
    if (cfg.host.recovery.enabled) {
        // A stalled transaction should retry, not kill the run: give
        // the watchdog a chance to recover before declaring deadlock.
        eng.setWatchdogHandler([this](sim::Engine &e) {
            return hostPtr->forceRecovery(e);
        });
    }

    // Whole-system derived metrics, evaluated lazily so they are always
    // consistent with the counters at the moment they are read.
    auto fma = [this] {
        std::uint64_t n = 0;
        for (auto &c : cellPtrs)
            n += c->fmaOps();
        return n;
    };
    auto flops = [this, fma] {
        std::uint64_t n = 2 * fma();
        for (auto &c : cellPtrs) {
            n += c->pmuRead(cell::PmuReg::MulOnly);
            n += c->pmuRead(cell::PmuReg::AddOnly);
        }
        return n;
    };
    fMaPerCycle.define([this, fma]() -> double {
        Cycle cy = eng.now();
        return cy ? double(fma()) / double(cy) : 0.0;
    });
    fFlopsPerCycle.define([this, flops]() -> double {
        Cycle cy = eng.now();
        return cy ? double(flops()) / double(cy) : 0.0;
    });
    fBusWordsPerFlop.define([this, flops]() -> double {
        std::uint64_t f = flops();
        std::uint64_t words =
            hostPtr->wordsSent() + hostPtr->wordsReceived();
        return f ? double(words) / double(f) : 0.0;
    });
    statRoot.addFormula("maPerCycle", &fMaPerCycle,
                        "multiply-adds per cycle, all cells");
    statRoot.addFormula("flopsPerCycle", &fFlopsPerCycle,
                        "floating-point operations per cycle");
    statRoot.addFormula("busWordsPerFlop", &fBusWordsPerFlop,
                        "host bus words moved per flop");
}

void
Coprocessor::loadMicrocode(Word entry, const isa::Program &prog,
                           unsigned nparams)
{
    for (auto &c : cellPtrs)
        c->loadMicrocode(entry, prog, nparams);
}

void
Coprocessor::attachTracer(trace::Tracer *t)
{
    eng.setTracer(t);
    hostPtr->attachTracer(t);
    for (auto &c : cellPtrs)
        c->attachTracer(t);
    if (injectorPtr)
        injectorPtr->attachTracer(t);
}

TimedFifo &
Coprocessor::fifoAt(unsigned cell, fault::FifoSite site)
{
    cell::Cell &c = *cellPtrs[cell];
    switch (site) {
      case fault::FifoSite::TpX:
        return c.tpx();
      case fault::FifoSite::TpY:
        return c.tpy();
      case fault::FifoSite::TpO:
        return c.tpo();
      case fault::FifoSite::TpI:
        return c.tpi();
      case fault::FifoSite::Sum:
        return c.sumQueue();
      case fault::FifoSite::Ret:
        return c.retQueue();
      case fault::FifoSite::Reby:
        return c.rebyQueue();
      default:
        opac_fatal("bad fifo site %u", unsigned(site));
    }
}

void
Coprocessor::applyFault(const fault::FaultEvent &e, Cycle now)
{
    unsigned cell = e.cell < cfg.cells ? e.cell : e.cell % cfg.cells;
    switch (e.kind) {
      case fault::FaultKind::FifoFlip:
        fifoAt(cell, e.site).faultCorrupt(e.mask, now);
        break;
      case fault::FaultKind::BusReorder:
        fifoAt(cell, e.site).faultReorder(now);
        break;
      case fault::FaultKind::BusDrop:
      case fault::FaultKind::BusDup:
        hostPtr->armBusFault(cell, e.kind);
        break;
      case fault::FaultKind::CellHang:
        cellPtrs[cell]->injectHang(now, e.arg);
        break;
      case fault::FaultKind::SpuriousHalt:
        cellPtrs[cell]->injectSpuriousHalt(now);
        break;
      case fault::FaultKind::MemLatency:
        hostPtr->armMemLatency(unsigned(e.arg));
        break;
      default:
        opac_fatal("bad fault kind %u", unsigned(e.kind));
    }
}

Cycle
Coprocessor::run(Cycle max_cycles)
{
    Cycle cycles = eng.run(max_cycles);
    // Close the time series with the final state (idempotent: skipped
    // when the last interval tick already sampled this cycle).
    if (samplerPtr)
        samplerPtr->snapshot(eng.now());
    return cycles;
}

std::string
Coprocessor::statsReport() const
{
    std::string out;
    statRoot.dump(out);
    return out;
}

std::string
Coprocessor::fastTierReport() const
{
    std::string out = strfmt(
        "engine: burstAttempts %llu  bursts %llu  burstCycles %llu\n",
        (unsigned long long)eng.burstAttempts(),
        (unsigned long long)eng.bursts(),
        (unsigned long long)eng.burstCycles());
    for (const auto &c : cellPtrs)
        c->fastTierStats().dump(out);
    return out;
}

std::string
Coprocessor::statsJson() const
{
    std::string out = "{\"stats\": ";
    out += statRoot.json();
    if (samplerPtr) {
        out += ", \"samples\": ";
        out += samplerPtr->json();
    }
    out += "}";
    return out;
}

} // namespace opac::copro
