#include "coproc/coprocessor.hh"

#include <bit>

#include "common/error.hh"
#include "common/logging.hh"

namespace opac::copro
{

Coprocessor::Coprocessor(const CoprocConfig &cfg)
    : cfg(cfg), statRoot("system"), mem(cfg.memoryWords),
      eng(cfg.watchdogCycles, &statRoot)
{
    opac_assert(cfg.cells >= 1 && cfg.cells <= 32,
                "cell count %u out of range [1, 32]", cfg.cells);
    sim::EngineMode mode = cfg.engineMode;
    if (mode == sim::EngineMode::Skip && !cfg.skipIdleCycles)
        mode = sim::EngineMode::Spin;
    eng.setMode(mode);
    eng.setThreads(cfg.simThreads);
    eng.setFastTier(cfg.fastTier);
    cell::CellConfig ccfg = cfg.cell;
    ccfg.fastTier = cfg.fastTier && cfg.cell.fastTier;
    std::vector<cell::Cell *> raw;
    for (unsigned i = 0; i < cfg.cells; ++i) {
        cellPtrs.push_back(std::make_unique<cell::Cell>(
            strfmt("cell%u", i), ccfg, &statRoot));
        raw.push_back(cellPtrs.back().get());
    }
    hostPtr = std::make_unique<host::Host>("host", cfg.host, mem, raw,
                                           &statRoot);
    // A cell-side mutation of an interface queue (result pushed on
    // tpo, operand drained from tpx/tpy) must wake a sleeping host,
    // and vice versa.
    for (auto &c : cellPtrs)
        c->setBusWakeNeighbor(hostPtr.get());
    // The sampler ticks first so a sample labelled cycle k is the state
    // after exactly k completed cycles; then the host: data it pushes
    // at cycle t becomes visible to cells at t + fifoLatency either
    // way, so order affects nothing observable; registration order is
    // fixed for determinism.
    if (cfg.statsSampleInterval > 0) {
        samplerPtr = std::make_unique<stats::Sampler>(
            "sampler", statRoot, cfg.statsSampleInterval);
        eng.add(samplerPtr.get());
    }
    // The injector ticks before the host and the cells so a fault
    // scheduled for cycle t lands before any cycle-t queue activity —
    // the same interleaving whether the engine spins or skips.
    if (cfg.faults.any()) {
        injectorPtr = std::make_unique<fault::Injector>(
            "injector", fault::buildPlan(cfg.faults, cfg.cells),
            &statRoot);
        injectorPtr->setArmHandler(
            [this](const fault::FaultEvent &e, Cycle now) {
                applyFault(e, now);
            });
        eng.add(injectorPtr.get());
    }
    eng.add(hostPtr.get());
    for (auto &c : cellPtrs)
        eng.add(c.get());
    if (cfg.host.recovery.enabled) {
        // A stalled transaction should retry, not kill the run: give
        // the watchdog a chance to recover before declaring deadlock.
        eng.setWatchdogHandler([this](sim::Engine &e) {
            return hostPtr->forceRecovery(e);
        });
    }

    // Whole-system derived metrics, evaluated lazily so they are always
    // consistent with the counters at the moment they are read.
    auto fma = [this] {
        std::uint64_t n = 0;
        for (auto &c : cellPtrs)
            n += c->fmaOps();
        return n;
    };
    auto flops = [this, fma] {
        std::uint64_t n = 2 * fma();
        for (auto &c : cellPtrs) {
            n += c->pmuRead(cell::PmuReg::MulOnly);
            n += c->pmuRead(cell::PmuReg::AddOnly);
        }
        return n;
    };
    fMaPerCycle.define([this, fma]() -> double {
        Cycle cy = eng.now();
        return cy ? double(fma()) / double(cy) : 0.0;
    });
    fFlopsPerCycle.define([this, flops]() -> double {
        Cycle cy = eng.now();
        return cy ? double(flops()) / double(cy) : 0.0;
    });
    fBusWordsPerFlop.define([this, flops]() -> double {
        std::uint64_t f = flops();
        std::uint64_t words =
            hostPtr->wordsSent() + hostPtr->wordsReceived();
        return f ? double(words) / double(f) : 0.0;
    });
    statRoot.addFormula("maPerCycle", &fMaPerCycle,
                        "multiply-adds per cycle, all cells");
    statRoot.addFormula("flopsPerCycle", &fFlopsPerCycle,
                        "floating-point operations per cycle");
    statRoot.addFormula("busWordsPerFlop", &fBusWordsPerFlop,
                        "host bus words moved per flop");
}

void
Coprocessor::loadMicrocode(Word entry, const isa::Program &prog,
                           unsigned nparams)
{
    for (auto &c : cellPtrs)
        c->loadMicrocode(entry, prog, nparams);
}

void
Coprocessor::attachTracer(trace::Tracer *t)
{
    eng.setTracer(t);
    hostPtr->attachTracer(t);
    for (auto &c : cellPtrs)
        c->attachTracer(t);
    if (injectorPtr)
        injectorPtr->attachTracer(t);
}

TimedFifo &
Coprocessor::fifoAt(unsigned cell, fault::FifoSite site)
{
    cell::Cell &c = *cellPtrs[cell];
    switch (site) {
      case fault::FifoSite::TpX:
        return c.tpx();
      case fault::FifoSite::TpY:
        return c.tpy();
      case fault::FifoSite::TpO:
        return c.tpo();
      case fault::FifoSite::TpI:
        return c.tpi();
      case fault::FifoSite::Sum:
        return c.sumQueue();
      case fault::FifoSite::Ret:
        return c.retQueue();
      case fault::FifoSite::Reby:
        return c.rebyQueue();
      default:
        opac_fatal("bad fifo site %u", unsigned(site));
    }
}

void
Coprocessor::applyFault(const fault::FaultEvent &e, Cycle now)
{
    unsigned cell = e.cell < cfg.cells ? e.cell : e.cell % cfg.cells;
    switch (e.kind) {
      case fault::FaultKind::FifoFlip:
        fifoAt(cell, e.site).faultCorrupt(e.mask, now);
        break;
      case fault::FaultKind::BusReorder:
        fifoAt(cell, e.site).faultReorder(now);
        break;
      case fault::FaultKind::BusDrop:
      case fault::FaultKind::BusDup:
        hostPtr->armBusFault(cell, e.kind);
        break;
      case fault::FaultKind::CellHang:
        cellPtrs[cell]->injectHang(now, e.arg);
        break;
      case fault::FaultKind::SpuriousHalt:
        cellPtrs[cell]->injectSpuriousHalt(now);
        break;
      case fault::FaultKind::MemLatency:
        hostPtr->armMemLatency(unsigned(e.arg));
        break;
      default:
        opac_fatal("bad fault kind %u", unsigned(e.kind));
    }
}

Cycle
Coprocessor::run(Cycle max_cycles)
{
    Cycle cycles = eng.run(max_cycles);
    // Close the time series with the final state (idempotent: skipped
    // when the last interval tick already sampled this cycle).
    if (samplerPtr)
        samplerPtr->snapshot(eng.now());
    return cycles;
}

Cycle
Coprocessor::runUntil(Cycle stop, Cycle max_cycles)
{
    // Deliberately no end-of-window sampler snapshot: the periodic
    // tick already recorded every boundary up to `stop`, and an extra
    // row here would differ from the uninterrupted run's series.
    return eng.runUntil(stop, max_cycles);
}

std::uint64_t
Coprocessor::configFingerprint() const
{
    std::uint64_t h = 14695981039346656037ull;
    auto mix = [&h](std::uint64_t v) { h = snap::fnvMix(h, v); };
    mix(cfg.cells);
    mix(cfg.cell.tf);
    mix(cfg.cell.interfaceDepth);
    mix(cfg.cell.tpiDepth);
    mix(cfg.cell.mulLatency);
    mix(cfg.cell.addLatency);
    mix(cfg.cell.moveLatency);
    mix(cfg.cell.fifoLatency);
    mix(cfg.cell.callDecodeCycles);
    mix(cfg.cell.controlOpsPerCycle);
    mix(std::uint64_t(cfg.cell.fp));
    mix(std::uint64_t(cfg.cell.parity));
    mix(cfg.host.tau);
    mix(cfg.host.callWordCost);
    mix(cfg.host.recipCycles);
    mix(cfg.host.recovery.enabled);
    mix(cfg.host.recovery.timeoutCycles);
    mix(cfg.host.recovery.retryBudget);
    mix(cfg.host.recovery.resetCostCycles);
    mix(cfg.memoryWords);
    mix(cfg.watchdogCycles);
    mix(cfg.statsSampleInterval);
    mix(cfg.faults.seed);
    mix(cfg.faults.horizon);
    mix(std::bit_cast<std::uint64_t>(cfg.faults.ratePerMcycle));
    mix(cfg.faults.count);
    mix(cfg.faults.kindMask);
    mix(cfg.faults.maxFlipBits);
    mix(cfg.faults.explicitEvents.size());
    for (const fault::FaultEvent &e : cfg.faults.explicitEvents) {
        mix(e.at);
        mix(std::uint64_t(e.kind));
        mix(e.cell);
        mix(std::uint64_t(e.site));
        mix(e.mask);
        mix(e.arg);
    }
    return h;
}

std::vector<const sim::Component *>
Coprocessor::componentList() const
{
    std::vector<const sim::Component *> list;
    if (samplerPtr)
        list.push_back(samplerPtr.get());
    if (injectorPtr)
        list.push_back(injectorPtr.get());
    list.push_back(hostPtr.get());
    for (const auto &c : cellPtrs)
        list.push_back(c.get());
    return list;
}

snap::Snapshot
Coprocessor::takeSnapshot() const
{
    snap::Snapshot s;
    s.cycle = eng.now();
    s.fingerprint = configFingerprint();
    {
        snap::Writer w;
        eng.saveState(w);
        s.add("engine", 1, w.take());
    }
    {
        snap::Writer w;
        statRoot.saveState(w);
        s.add("stats", 1, w.take());
    }
    {
        snap::Writer w;
        mem.saveState(w);
        s.add("memory", 1, w.take());
    }
    for (const sim::Component *c : componentList()) {
        snap::Writer w;
        c->saveState(w);
        s.add("comp." + c->name(), c->stateVersion(), w.take());
    }
    return s;
}

void
Coprocessor::restoreSnapshot(const snap::Snapshot &s)
{
    if (s.fingerprint != configFingerprint())
        throw SnapshotError(
            "snapshot",
            strfmt("configuration fingerprint mismatch: snapshot "
                   "%016llx, this machine %016llx",
                   (unsigned long long)s.fingerprint,
                   (unsigned long long)configFingerprint()));
    auto load = [&s](const std::string &name, auto &&fn) {
        const snap::Section &sec = s.require(name);
        snap::Reader r(sec.payload, "section '" + name + "'");
        fn(r, sec.version);
        r.expectEnd();
    };
    load("engine", [this](snap::Reader &r, std::uint32_t) {
        eng.loadState(r);
    });
    load("stats", [this](snap::Reader &r, std::uint32_t) {
        statRoot.loadState(r);
    });
    load("memory", [this](snap::Reader &r, std::uint32_t) {
        mem.loadState(r);
    });
    std::vector<const sim::Component *> comps = componentList();
    // Same config => same component set: 3 fixed sections + one per
    // component, anything else means a corrupted or foreign snapshot.
    if (s.sections().size() != comps.size() + 3)
        throw SnapshotError(
            "snapshot",
            strfmt("expected %zu sections, snapshot has %zu",
                   comps.size() + 3, s.sections().size()));
    for (const sim::Component *c : comps) {
        load("comp." + c->name(),
             [c](snap::Reader &r, std::uint32_t version) {
                 // Components are engine slots the Coprocessor owns
                 // non-const; the const walk is only for saveState.
                 const_cast<sim::Component *>(c)->loadState(r, version);
             });
    }
    if (s.cycle != eng.now())
        throw SnapshotError("snapshot",
                            "engine section disagrees with the header "
                            "cycle");
}

void
Coprocessor::saveSnapshot(const std::string &path) const
{
    takeSnapshot().writeFile(path);
}

void
Coprocessor::loadSnapshot(const std::string &path)
{
    restoreSnapshot(snap::Snapshot::readFile(path));
}

std::string
Coprocessor::statsReport() const
{
    std::string out;
    statRoot.dump(out);
    return out;
}

std::string
Coprocessor::fastTierReport() const
{
    std::string out = strfmt(
        "engine: burstAttempts %llu  bursts %llu  burstCycles %llu\n",
        (unsigned long long)eng.burstAttempts(),
        (unsigned long long)eng.bursts(),
        (unsigned long long)eng.burstCycles());
    for (const auto &c : cellPtrs)
        c->fastTierStats().dump(out);
    return out;
}

std::string
Coprocessor::statsJson() const
{
    std::string out = "{\"stats\": ";
    out += statRoot.json();
    if (samplerPtr) {
        out += ", \"samples\": ";
        out += samplerPtr->json();
    }
    out += "}";
    return out;
}

} // namespace opac::copro
