/**
 * @file
 * BENCH_*.json parsing and baseline comparison — the regression gate
 * behind tools/bench_diff.
 *
 * Benches write one JSON document per binary (bench/bench_util.hh):
 * run metadata (git SHA, timestamp, build type, simulator config) plus
 * one record per measured configuration with cycles, flops/cycle,
 * efficiency and any extra per-case stats. This module loads such a
 * document (accepting the legacy bare-array form of early files),
 * matches records by case name against a committed baseline, and
 * classifies each delta: a case regresses when its cycle count grows
 * or its flops/cycle drops by more than the threshold percentage.
 */

#ifndef OPAC_STATS_BENCHCMP_HH
#define OPAC_STATS_BENCHCMP_HH

#include <map>
#include <string>
#include <vector>

namespace opac::stats
{

/** One measured configuration from a BENCH_*.json results array. */
struct BenchRecord
{
    std::string name;
    double cycles = 0.0;
    double flopsPerCycle = 0.0;
    double efficiency = 0.0;
    std::map<std::string, double> extra; //!< any further numeric fields
};

/** One BENCH_*.json document: run metadata plus the results. */
struct BenchFile
{
    std::string bench;
    std::string gitSha;
    std::string timestamp;
    std::string buildType;
    std::map<std::string, std::string> config;
    std::vector<BenchRecord> records;
};

/**
 * Parse a BENCH json document (the current object form or the legacy
 * bare array of records). Returns false with a message in @p err on
 * malformed input.
 */
bool parseBenchJson(const std::string &text, BenchFile &out,
                    std::string *err = nullptr);

/** Read and parse @p path. */
bool loadBenchFile(const std::string &path, BenchFile &out,
                   std::string *err = nullptr);

/** Baseline-vs-current comparison of one case. */
struct BenchDelta
{
    std::string name;
    double baseCycles = 0.0;
    double curCycles = 0.0;
    double cyclesPct = 0.0;     //!< +x% = slower than baseline
    double baseFpc = 0.0;
    double curFpc = 0.0;
    double fpcPct = 0.0;        //!< -x% = less throughput than baseline
    bool regressed = false;
    /**
     * Host-side simulation rate (simulated cycles per wall second),
     * from the records' optional "sim_rate" extra; 0 when absent.
     * Informational by default — wall-clock speed depends on the CI
     * host, so it never participates in the regression verdict unless
     * the caller opts in (bench_diff --gate-sim-rate=PCT).
     */
    double baseSimRate = 0.0;
    double curSimRate = 0.0;
    /** Rate trend vs baseline in percent; 0 unless both sides have a
     *  sim_rate (+x% = the simulator got faster). */
    double simRatePct = 0.0;
    /**
     * Resilience fields from the records' optional "completion_rate"
     * and "correct" extras (the fault_sweep bench): any decrease vs
     * the baseline is a regression regardless of the percentage
     * threshold — a run that stops completing or stops being correct
     * is broken, not merely slower. -1 when the extra is absent.
     */
    double baseCompletion = -1.0;
    double curCompletion = -1.0;
    double baseCorrect = -1.0;
    double curCorrect = -1.0;
};

/** Full diff between a baseline file and a current file. */
struct BenchDiff
{
    std::vector<BenchDelta> deltas;
    std::vector<std::string> missing; //!< in baseline, not in current
    std::vector<std::string> added;   //!< in current, not in baseline

    /**
     * "case.key" for every extra stat a baseline record carries that
     * the matching current record lacks. A gate the baseline names
     * (completion_rate, correct, sim_rate under --gate-sim-rate)
     * cannot be evaluated against a record that dropped the stat, so
     * bench_diff refuses such comparisons (exit 3) instead of letting
     * them pass as "no delta".
     */
    std::vector<std::string> missingExtras;

    double thresholdPct = 0.0;

    bool anyRegression() const;
};

/**
 * Compare records by name. A case regresses when cycles grow by more
 * than @p threshold_pct percent or flops/cycle shrink by more than
 * @p threshold_pct percent. Duplicate names keep the last record.
 */
BenchDiff compareBench(const BenchFile &base, const BenchFile &cur,
                       double threshold_pct);

/** Render the delta table plus missing/added notes as text. */
std::string renderBenchDiff(const BenchDiff &diff);

} // namespace opac::stats

#endif // OPAC_STATS_BENCHCMP_HH
