/**
 * @file
 * Hierarchical statistics registry — the always-on counter layer of the
 * observability stack (traces in src/trace are the opt-in event layer).
 *
 * Components register named stats in a StatGroup; groups nest to form a
 * tree whose fully qualified names ("system.cell0.fifo.sum.highWater")
 * address every stat. This follows the gem5 stats discipline:
 * declaration-site registration, updates that cost an increment, and a
 * formatted dump at the end of simulation. Beyond plain counters the
 * registry holds:
 *
 *  - Watermark:    max-tracking gauge (FIFO high-water marks),
 *  - Average:      weighted running average (cycle-weighted residency),
 *  - Distribution: running min/max/mean over samples,
 *  - Histogram:    power-of-two bucketed sample counts,
 *  - Formula:      derived value computed on demand from other stats
 *                  (MA/cycle, bus words per flop).
 *
 * The tree renders as text ("name value # desc" lines) or as a flat
 * JSON object keyed by qualified name, and every scalar-valued stat can
 * be visited for periodic snapshotting (stats/sampler.hh).
 */

#ifndef OPAC_STATS_STATS_HH
#define OPAC_STATS_STATS_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace opac::snap
{
class Writer;
class Reader;
} // namespace opac::snap

namespace opac::stats
{

/** A monotonically increasing event counter. */
class Counter
{
  public:
    Counter() = default;

    Counter &operator++() { ++_value; return *this; }
    Counter &operator+=(std::uint64_t n) { _value += n; return *this; }

    std::uint64_t value() const { return _value; }
    void reset() { _value = 0; }

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    std::uint64_t _value = 0;
};

/** A max-tracking gauge, e.g. a FIFO high-water mark. */
class Watermark
{
  public:
    void observe(std::uint64_t v) { if (v > _max) _max = v; }

    std::uint64_t value() const { return _max; }
    void reset() { _max = 0; }

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    std::uint64_t _max = 0;
};

/** Weighted running average (weights typically in cycles). */
class Average
{
  public:
    void sample(double v, std::uint64_t weight = 1);

    std::uint64_t weight() const { return _weight; }
    double mean() const { return _weight ? _sum / double(_weight) : 0.0; }
    void reset();

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    double _sum = 0.0;
    std::uint64_t _weight = 0;
};

/** Running min/max/mean over sampled values (e.g. FIFO occupancy). */
class Distribution
{
  public:
    void sample(double v);

    /**
     * Record @p v as @p n identical samples in one call. Equivalent to
     * n repeated sample(v) calls whenever v * n is exact in double
     * (always true for the integer-valued occupancy samples this is
     * used for); used to bulk-credit skipped quiescent cycles.
     */
    void sample(double v, std::uint64_t n);

    std::uint64_t count() const { return _count; }
    double min() const { return _count ? _min : 0.0; }
    double max() const { return _count ? _max : 0.0; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    void reset();

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    std::uint64_t _count = 0;
    double _sum = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

/**
 * Power-of-two bucketed histogram over unsigned samples: bucket 0 holds
 * value 0, bucket i >= 1 holds values in [2^(i-1), 2^i).
 */
class Histogram
{
  public:
    void sample(std::uint64_t v);

    std::uint64_t count() const { return _count; }
    std::uint64_t max() const { return _max; }
    double mean() const { return _count ? _sum / double(_count) : 0.0; }
    const std::vector<std::uint64_t> &buckets() const { return _buckets; }

    /** "0:12 1:3 4-7:9"-style rendering of the non-empty buckets. */
    std::string render() const;

    void reset();

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    std::vector<std::uint64_t> _buckets;
    std::uint64_t _count = 0;
    std::uint64_t _max = 0;
    double _sum = 0.0;
};

/**
 * Exact percentile tracker over sampled values — the SLO stat kind
 * (serve-layer latency / queue-wait quantiles, docs/OBSERVABILITY.md).
 *
 * Samples are retained and sorted lazily, so percentile reads are
 * exact (nearest-rank) rather than bucket-interpolated: the numbers a
 * tenant SLO table prints are the numbers the jobs actually saw, and
 * they are bit-identical across engine modes because the sample
 * stream is. Memory is one double per sample; intended for
 * request-grain series (thousands of samples), not per-cycle ones —
 * use Histogram for those.
 */
class Quantile
{
  public:
    void sample(double v);

    std::uint64_t count() const { return _samples.size(); }
    double min() const;
    double max() const;
    double mean() const { return _samples.empty()
                                     ? 0.0
                                     : _sum / double(_samples.size()); }

    /**
     * Nearest-rank percentile: the smallest sample with at least
     * p percent of the samples at or below it. p in [0, 100];
     * 0 with no samples yet.
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p95() const { return percentile(95.0); }
    double p99() const { return percentile(99.0); }

    void reset();

    void saveState(snap::Writer &w) const;
    void loadState(snap::Reader &r);

  private:
    mutable std::vector<double> _samples;
    mutable bool _sorted = true;
    double _sum = 0.0;
};

/**
 * A derived stat: a callback over other stats, evaluated at read time.
 * The callback must only read state that outlives the formula (counters
 * registered in the same tree, the engine clock).
 */
class Formula
{
  public:
    Formula() = default;
    explicit Formula(std::function<double()> fn) : fn(std::move(fn)) {}

    /** (Re)bind the computation; allows member formulas defined late. */
    void define(std::function<double()> f) { fn = std::move(f); }

    double value() const { return fn ? fn() : 0.0; }

  private:
    std::function<double()> fn;
};

/**
 * A named collection of stats. Groups may nest; dumps and visitors walk
 * the tree depth-first and use fully qualified stat names.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name, StatGroup *parent = nullptr);
    ~StatGroup();

    StatGroup(const StatGroup &) = delete;
    StatGroup &operator=(const StatGroup &) = delete;

    /** Register a counter under this group. The counter must outlive it. */
    void addCounter(const std::string &name, Counter *c,
                    const std::string &desc = "");
    /** Register a high-water gauge. */
    void addWatermark(const std::string &name, Watermark *w,
                      const std::string &desc = "");
    /** Register a weighted average. */
    void addAverage(const std::string &name, Average *a,
                    const std::string &desc = "");
    /** Register a distribution. */
    void addDistribution(const std::string &name, Distribution *d,
                         const std::string &desc = "");
    /** Register a histogram. */
    void addHistogram(const std::string &name, Histogram *h,
                      const std::string &desc = "");
    /** Register an exact percentile tracker. */
    void addQuantile(const std::string &name, Quantile *q,
                     const std::string &desc = "");
    /** Register a derived formula. */
    void addFormula(const std::string &name, Formula *f,
                    const std::string &desc = "");

    const std::string &name() const { return _name; }

    /** Append "fullname value # desc" lines for this subtree. */
    void dump(std::string &out, const std::string &prefix = "") const;

    /**
     * Flat JSON object for this subtree: scalar stats (counters,
     * watermarks, averages, formulas) as numbers keyed by qualified
     * name, distributions as {min,max,mean,count} objects, histograms
     * as {count,max,mean,buckets} objects.
     */
    std::string json() const;

    /** Reset every registered stat in this subtree (formulas have no
     *  state of their own). */
    void resetAll();

    /** Look up a counter value by path relative to this group. */
    std::uint64_t counterValue(const std::string &path) const;

    /**
     * Look up any scalar-valued stat (counter, watermark, average or
     * formula) by path relative to this group.
     */
    double scalarValue(const std::string &path) const;

    /** Direct child group by name; null when absent. */
    const StatGroup *findChild(const std::string &name) const;

    /**
     * Visit every scalar-valued stat in this subtree with its fully
     * qualified name, in a deterministic order (names sorted within a
     * group, children in registration order). Counters and watermarks
     * visit as their integral value, averages as the mean, formulas as
     * the evaluated result.
     */
    void forEachScalar(
        const std::function<void(const std::string &, double)> &fn,
        const std::string &prefix = "") const;

    /**
     * Visit every registered Quantile in this subtree with its fully
     * qualified name (same order rules as forEachScalar). Quantiles
     * are multi-valued, so they are not part of the scalar walk — the
     * sampler's columnar series stays unchanged when SLO stats are
     * added to a tree.
     */
    void forEachQuantile(
        const std::function<void(const std::string &, const Quantile &)>
            &fn,
        const std::string &prefix = "") const;

    /**
     * Serialize every registered stat in this subtree, with names, in
     * a deterministic order (kinds in declaration order, entries
     * name-sorted within a kind, children in registration order).
     * Formulas are derived and carry no state.
     */
    void saveState(snap::Writer &w) const;

    /**
     * Restore a subtree saved by saveState(). The registered names
     * and tree shape must match exactly — they double as the schema
     * check for the stats section; any mismatch throws SnapshotError.
     */
    void loadState(snap::Reader &r);

  private:
    struct CounterEntry { Counter *counter; std::string desc; };
    struct WatermarkEntry { Watermark *mark; std::string desc; };
    struct AverageEntry { Average *avg; std::string desc; };
    struct DistEntry { Distribution *dist; std::string desc; };
    struct HistEntry { Histogram *hist; std::string desc; };
    struct QuantileEntry { Quantile *quant; std::string desc; };
    struct FormulaEntry { Formula *formula; std::string desc; };

    void jsonMembers(std::string &out, const std::string &prefix,
                     bool &first) const;

    std::string _name;
    StatGroup *parent;
    std::vector<StatGroup *> children;
    std::map<std::string, CounterEntry> counters;
    std::map<std::string, WatermarkEntry> watermarks;
    std::map<std::string, AverageEntry> averages;
    std::map<std::string, DistEntry> dists;
    std::map<std::string, HistEntry> hists;
    std::map<std::string, QuantileEntry> quants;
    std::map<std::string, FormulaEntry> formulas;
};

} // namespace opac::stats

#endif // OPAC_STATS_STATS_HH
