#include "stats/stats.hh"

#include <algorithm>

#include "common/logging.hh"
#include "snap/snapshot.hh"
#include "trace/json.hh"

namespace opac::stats
{

void
Average::sample(double v, std::uint64_t weight)
{
    _sum += v * double(weight);
    _weight += weight;
}

void
Average::reset()
{
    _sum = 0.0;
    _weight = 0;
}

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _sum += v;
    ++_count;
}

void
Distribution::sample(double v, std::uint64_t n)
{
    if (n == 0)
        return;
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _sum += v * double(n);
    _count += n;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = _min = _max = 0.0;
}

namespace
{

unsigned
pow2Bucket(std::uint64_t v)
{
    if (v == 0)
        return 0;
    unsigned b = 1;
    while (v > 1) {
        v >>= 1;
        ++b;
    }
    return b;
}

std::string
pow2BucketLabel(unsigned i)
{
    if (i == 0)
        return "0";
    std::uint64_t lo = std::uint64_t(1) << (i - 1);
    std::uint64_t hi = (std::uint64_t(1) << i) - 1;
    return lo == hi
        ? strfmt("%llu", (unsigned long long)lo)
        : strfmt("%llu-%llu", (unsigned long long)lo,
                 (unsigned long long)hi);
}

} // anonymous namespace

void
Histogram::sample(std::uint64_t v)
{
    unsigned b = pow2Bucket(v);
    if (_buckets.size() <= b)
        _buckets.resize(b + 1, 0);
    ++_buckets[b];
    ++_count;
    _max = std::max(_max, v);
    _sum += double(v);
}

std::string
Histogram::render() const
{
    std::string out;
    for (std::size_t i = 0; i < _buckets.size(); ++i) {
        if (_buckets[i] == 0)
            continue;
        if (!out.empty())
            out += " ";
        out += strfmt("%s:%llu", pow2BucketLabel(unsigned(i)).c_str(),
                      (unsigned long long)_buckets[i]);
    }
    return out;
}

void
Histogram::reset()
{
    _buckets.clear();
    _count = 0;
    _max = 0;
    _sum = 0.0;
}

void
Quantile::sample(double v)
{
    _samples.push_back(v);
    _sorted = _samples.size() <= 1;
    _sum += v;
}

namespace
{

const std::vector<double> &
sorted(std::vector<double> &samples, bool &flag)
{
    if (!flag) {
        std::sort(samples.begin(), samples.end());
        flag = true;
    }
    return samples;
}

} // anonymous namespace

double
Quantile::min() const
{
    return _samples.empty() ? 0.0 : sorted(_samples, _sorted).front();
}

double
Quantile::max() const
{
    return _samples.empty() ? 0.0 : sorted(_samples, _sorted).back();
}

double
Quantile::percentile(double p) const
{
    if (_samples.empty())
        return 0.0;
    const auto &s = sorted(_samples, _sorted);
    // Nearest rank: ceil(p/100 * n), clamped to [1, n], 1-based.
    double rank = p / 100.0 * double(s.size());
    std::size_t i = std::size_t(rank);
    if (double(i) < rank)
        ++i;
    if (i < 1)
        i = 1;
    if (i > s.size())
        i = s.size();
    return s[i - 1];
}

void
Quantile::reset()
{
    _samples.clear();
    _sorted = true;
    _sum = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent(parent)
{
    if (parent)
        parent->children.push_back(this);
}

StatGroup::~StatGroup()
{
    // Children may legally outlive the parent (member declaration
    // order); orphan them so their destructors do not touch us.
    for (auto *c : children)
        c->parent = nullptr;
    if (parent) {
        auto &sib = parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), this), sib.end());
    }
}

void
StatGroup::addCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    opac_assert(c != nullptr, "null counter '%s'", name.c_str());
    counters[name] = CounterEntry{c, desc};
}

void
StatGroup::addWatermark(const std::string &name, Watermark *w,
                        const std::string &desc)
{
    opac_assert(w != nullptr, "null watermark '%s'", name.c_str());
    watermarks[name] = WatermarkEntry{w, desc};
}

void
StatGroup::addAverage(const std::string &name, Average *a,
                      const std::string &desc)
{
    opac_assert(a != nullptr, "null average '%s'", name.c_str());
    averages[name] = AverageEntry{a, desc};
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    opac_assert(d != nullptr, "null distribution '%s'", name.c_str());
    dists[name] = DistEntry{d, desc};
}

void
StatGroup::addHistogram(const std::string &name, Histogram *h,
                        const std::string &desc)
{
    opac_assert(h != nullptr, "null histogram '%s'", name.c_str());
    hists[name] = HistEntry{h, desc};
}

void
StatGroup::addQuantile(const std::string &name, Quantile *q,
                       const std::string &desc)
{
    opac_assert(q != nullptr, "null quantile '%s'", name.c_str());
    quants[name] = QuantileEntry{q, desc};
}

void
StatGroup::addFormula(const std::string &name, Formula *f,
                      const std::string &desc)
{
    opac_assert(f != nullptr, "null formula '%s'", name.c_str());
    formulas[name] = FormulaEntry{f, desc};
}

void
StatGroup::dump(std::string &out, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    auto line = [&](const std::string &n, const std::string &value,
                    const std::string &desc) {
        out += strfmt("%-48s %12s", (base + "." + n).c_str(),
                      value.c_str());
        if (!desc.empty())
            out += "  # " + desc;
        out += "\n";
    };
    for (const auto &[n, e] : counters) {
        line(n, strfmt("%llu",
                       (unsigned long long)e.counter->value()), e.desc);
    }
    for (const auto &[n, e] : watermarks) {
        line(n, strfmt("%llu", (unsigned long long)e.mark->value()),
             e.desc);
    }
    for (const auto &[n, e] : averages)
        line(n, strfmt("%.4f", e.avg->mean()), e.desc);
    for (const auto &[n, e] : dists) {
        out += strfmt("%-48s min=%.2f max=%.2f mean=%.2f n=%llu",
                      (base + "." + n).c_str(), e.dist->min(),
                      e.dist->max(), e.dist->mean(),
                      static_cast<unsigned long long>(e.dist->count()));
        if (!e.desc.empty())
            out += "  # " + e.desc;
        out += "\n";
    }
    for (const auto &[n, e] : hists) {
        out += strfmt("%-48s %s", (base + "." + n).c_str(),
                      e.hist->render().c_str());
        if (!e.desc.empty())
            out += "  # " + e.desc;
        out += "\n";
    }
    for (const auto &[n, e] : quants) {
        out += strfmt("%-48s p50=%.2f p95=%.2f p99=%.2f n=%llu",
                      (base + "." + n).c_str(), e.quant->p50(),
                      e.quant->p95(), e.quant->p99(),
                      static_cast<unsigned long long>(e.quant->count()));
        if (!e.desc.empty())
            out += "  # " + e.desc;
        out += "\n";
    }
    for (const auto &[n, e] : formulas)
        line(n, strfmt("%.6f", e.formula->value()), e.desc);
    for (const auto *c : children)
        c->dump(out, base);
}

void
StatGroup::jsonMembers(std::string &out, const std::string &prefix,
                       bool &first) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    auto member = [&](const std::string &n, const std::string &value) {
        if (!first)
            out += ",\n";
        first = false;
        out += strfmt("  \"%s\": %s",
                      trace::json::escape(base + "." + n).c_str(),
                      value.c_str());
    };
    for (const auto &[n, e] : counters) {
        member(n, strfmt("%llu",
                         (unsigned long long)e.counter->value()));
    }
    for (const auto &[n, e] : watermarks)
        member(n, strfmt("%llu", (unsigned long long)e.mark->value()));
    for (const auto &[n, e] : averages)
        member(n, strfmt("%.9g", e.avg->mean()));
    for (const auto &[n, e] : dists) {
        member(n, strfmt("{\"min\": %.9g, \"max\": %.9g, "
                         "\"mean\": %.9g, \"count\": %llu}",
                         e.dist->min(), e.dist->max(), e.dist->mean(),
                         (unsigned long long)e.dist->count()));
    }
    for (const auto &[n, e] : hists) {
        std::string buckets;
        for (auto b : e.hist->buckets()) {
            if (!buckets.empty())
                buckets += ", ";
            buckets += strfmt("%llu", (unsigned long long)b);
        }
        member(n, strfmt("{\"count\": %llu, \"max\": %llu, "
                         "\"mean\": %.9g, \"buckets\": [%s]}",
                         (unsigned long long)e.hist->count(),
                         (unsigned long long)e.hist->max(),
                         e.hist->mean(), buckets.c_str()));
    }
    for (const auto &[n, e] : quants) {
        member(n, strfmt("{\"count\": %llu, \"min\": %.9g, "
                         "\"max\": %.9g, \"mean\": %.9g, "
                         "\"p50\": %.9g, \"p95\": %.9g, \"p99\": %.9g}",
                         (unsigned long long)e.quant->count(),
                         e.quant->min(), e.quant->max(),
                         e.quant->mean(), e.quant->p50(),
                         e.quant->p95(), e.quant->p99()));
    }
    for (const auto &[n, e] : formulas)
        member(n, strfmt("%.9g", e.formula->value()));
    for (const auto *c : children)
        c->jsonMembers(out, base, first);
}

std::string
StatGroup::json() const
{
    std::string out = "{\n";
    bool first = true;
    jsonMembers(out, "", first);
    out += "\n}";
    return out;
}

void
StatGroup::resetAll()
{
    for (auto &[n, e] : counters)
        e.counter->reset();
    for (auto &[n, e] : watermarks)
        e.mark->reset();
    for (auto &[n, e] : averages)
        e.avg->reset();
    for (auto &[n, e] : dists)
        e.dist->reset();
    for (auto &[n, e] : hists)
        e.hist->reset();
    for (auto &[n, e] : quants)
        e.quant->reset();
    for (auto *c : children)
        c->resetAll();
}

std::uint64_t
StatGroup::counterValue(const std::string &path) const
{
    // Counter names may themselves contain dots (e.g. "tpx.pushes"), so
    // prefer an exact match in this group before descending.
    if (auto it = counters.find(path); it != counters.end())
        return it->second.counter->value();

    auto dot = path.find('.');
    if (dot == std::string::npos) {
        opac_panic("no counter '%s' in group '%s'", path.c_str(),
                   _name.c_str());
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *c : children) {
        if (c->name() == head)
            return c->counterValue(rest);
    }
    opac_panic("no child group '%s' in group '%s'", head.c_str(),
               _name.c_str());
}

double
StatGroup::scalarValue(const std::string &path) const
{
    if (auto it = counters.find(path); it != counters.end())
        return double(it->second.counter->value());
    if (auto it = watermarks.find(path); it != watermarks.end())
        return double(it->second.mark->value());
    if (auto it = averages.find(path); it != averages.end())
        return it->second.avg->mean();
    if (auto it = formulas.find(path); it != formulas.end())
        return it->second.formula->value();

    auto dot = path.find('.');
    if (dot == std::string::npos) {
        opac_panic("no scalar stat '%s' in group '%s'", path.c_str(),
                   _name.c_str());
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *c : children) {
        if (c->name() == head)
            return c->scalarValue(rest);
    }
    opac_panic("no child group '%s' in group '%s'", head.c_str(),
               _name.c_str());
}

const StatGroup *
StatGroup::findChild(const std::string &name) const
{
    for (const auto *c : children) {
        if (c->name() == name)
            return c;
    }
    return nullptr;
}

void
StatGroup::forEachScalar(
    const std::function<void(const std::string &, double)> &fn,
    const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[n, e] : counters)
        fn(base + "." + n, double(e.counter->value()));
    for (const auto &[n, e] : watermarks)
        fn(base + "." + n, double(e.mark->value()));
    for (const auto &[n, e] : averages)
        fn(base + "." + n, e.avg->mean());
    for (const auto &[n, e] : formulas)
        fn(base + "." + n, e.formula->value());
    for (const auto *c : children)
        c->forEachScalar(fn, base);
}

void
StatGroup::forEachQuantile(
    const std::function<void(const std::string &, const Quantile &)> &fn,
    const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[n, e] : quants)
        fn(base + "." + n, *e.quant);
    for (const auto *c : children)
        c->forEachQuantile(fn, base);
}

// ------------------------------------------------------- serialization

void
Counter::saveState(snap::Writer &w) const
{
    w.u64(_value);
}

void
Counter::loadState(snap::Reader &r)
{
    _value = r.u64();
}

void
Watermark::saveState(snap::Writer &w) const
{
    w.u64(_max);
}

void
Watermark::loadState(snap::Reader &r)
{
    _max = r.u64();
}

void
Average::saveState(snap::Writer &w) const
{
    w.f64(_sum);
    w.u64(_weight);
}

void
Average::loadState(snap::Reader &r)
{
    _sum = r.f64();
    _weight = r.u64();
}

void
Distribution::saveState(snap::Writer &w) const
{
    w.u64(_count);
    w.f64(_sum);
    w.f64(_min);
    w.f64(_max);
}

void
Distribution::loadState(snap::Reader &r)
{
    _count = r.u64();
    _sum = r.f64();
    _min = r.f64();
    _max = r.f64();
}

void
Histogram::saveState(snap::Writer &w) const
{
    w.u32(static_cast<std::uint32_t>(_buckets.size()));
    for (std::uint64_t b : _buckets)
        w.u64(b);
    w.u64(_count);
    w.u64(_max);
    w.f64(_sum);
}

void
Histogram::loadState(snap::Reader &r)
{
    _buckets.assign(r.u32(), 0);
    for (std::uint64_t &b : _buckets)
        b = r.u64();
    _count = r.u64();
    _max = r.u64();
    _sum = r.f64();
}

void
Quantile::saveState(snap::Writer &w) const
{
    // The raw sample order matters: resumed runs keep appending, and
    // byte-identity of the exported quantile summaries only needs the
    // multiset — but the insertion-ordered vector also preserves the
    // lazily-sorted flag semantics exactly.
    w.u64(_samples.size());
    for (double v : _samples)
        w.f64(v);
    w.b(_sorted);
    w.f64(_sum);
}

void
Quantile::loadState(snap::Reader &r)
{
    _samples.resize(r.u64());
    for (double &v : _samples)
        v = r.f64();
    _sorted = r.b();
    _sum = r.f64();
}

void
StatGroup::saveState(snap::Writer &w) const
{
    w.str(_name);
    auto kind = [&w](const auto &entries, auto member) {
        w.u32(static_cast<std::uint32_t>(entries.size()));
        for (const auto &[n, e] : entries) {
            w.str(n);
            (e.*member)->saveState(w);
        }
    };
    kind(counters, &CounterEntry::counter);
    kind(watermarks, &WatermarkEntry::mark);
    kind(averages, &AverageEntry::avg);
    kind(dists, &DistEntry::dist);
    kind(hists, &HistEntry::hist);
    kind(quants, &QuantileEntry::quant);
    w.u32(static_cast<std::uint32_t>(children.size()));
    for (const StatGroup *c : children)
        c->saveState(w);
}

void
StatGroup::loadState(snap::Reader &r)
{
    std::string name = r.str();
    if (name != _name)
        r.fail("stats tree mismatch: snapshot group '" + name +
               "', this machine has '" + _name + "'");
    auto kind = [&r, this](auto &entries, auto member,
                           const char *what) {
        std::uint32_t n = r.u32();
        if (n != entries.size())
            r.fail("stats group '" + _name + "': snapshot has " +
                   std::to_string(n) + " " + what +
                   " entries, this machine registered " +
                   std::to_string(entries.size()));
        for (auto &[en, e] : entries) {
            std::string sn = r.str();
            if (sn != en)
                r.fail("stats group '" + _name + "': snapshot " +
                       what + " '" + sn + "' does not match '" + en +
                       "'");
            (e.*member)->loadState(r);
        }
    };
    kind(counters, &CounterEntry::counter, "counter");
    kind(watermarks, &WatermarkEntry::mark, "watermark");
    kind(averages, &AverageEntry::avg, "average");
    kind(dists, &DistEntry::dist, "distribution");
    kind(hists, &HistEntry::hist, "histogram");
    kind(quants, &QuantileEntry::quant, "quantile");
    std::uint32_t nchild = r.u32();
    if (nchild != children.size())
        r.fail("stats group '" + _name + "': snapshot has " +
               std::to_string(nchild) +
               " child groups, this machine has " +
               std::to_string(children.size()));
    for (StatGroup *c : children)
        c->loadState(r);
}

} // namespace opac::stats
