#include "stats/benchcmp.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/table.hh"
#include "trace/json.hh"

namespace opac::stats
{

namespace
{

bool
parseRecord(const trace::json::Value &v, BenchRecord &out,
            std::string *err)
{
    if (!v.isObject()) {
        if (err)
            *err = "bench record is not an object";
        return false;
    }
    const auto *name = v.find("name");
    if (!name || !name->isString()) {
        if (err)
            *err = "bench record without a string 'name'";
        return false;
    }
    out.name = name->str;
    for (const auto &[key, val] : v.object) {
        if (key == "name" || !val.isNumber())
            continue;
        if (key == "cycles")
            out.cycles = val.number;
        else if (key == "flops_per_cycle")
            out.flopsPerCycle = val.number;
        else if (key == "efficiency")
            out.efficiency = val.number;
        else
            out.extra[key] = val.number;
    }
    return true;
}

} // anonymous namespace

bool
parseBenchJson(const std::string &text, BenchFile &out, std::string *err)
{
    trace::json::Value doc;
    if (!trace::json::parse(text, doc, err))
        return false;

    const trace::json::Value *records = nullptr;
    if (doc.isArray()) {
        records = &doc; // legacy bare-array form
    } else if (doc.isObject()) {
        if (const auto *b = doc.find("bench"); b && b->isString())
            out.bench = b->str;
        if (const auto *s = doc.find("git_sha"); s && s->isString())
            out.gitSha = s->str;
        if (const auto *t = doc.find("timestamp"); t && t->isString())
            out.timestamp = t->str;
        if (const auto *bt = doc.find("build_type"); bt && bt->isString())
            out.buildType = bt->str;
        if (const auto *cfg = doc.find("config");
            cfg && cfg->isObject()) {
            for (const auto &[key, val] : cfg->object) {
                if (val.isString())
                    out.config[key] = val.str;
                else if (val.isNumber())
                    out.config[key] = strfmt("%.9g", val.number);
            }
        }
        records = doc.find("results");
        if (!records || !records->isArray()) {
            if (err)
                *err = "bench document has no 'results' array";
            return false;
        }
    } else {
        if (err)
            *err = "bench document is neither an object nor an array";
        return false;
    }

    for (const auto &r : records->array) {
        BenchRecord rec;
        if (!parseRecord(r, rec, err))
            return false;
        out.records.push_back(std::move(rec));
    }
    return true;
}

bool
loadBenchFile(const std::string &path, BenchFile &out, std::string *err)
{
    std::ifstream in(path);
    if (!in) {
        if (err)
            *err = strfmt("cannot open '%s'", path.c_str());
        return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    if (!parseBenchJson(buf.str(), out, err)) {
        if (err)
            *err = strfmt("%s: %s", path.c_str(), err->c_str());
        return false;
    }
    return true;
}

bool
BenchDiff::anyRegression() const
{
    for (const auto &d : deltas) {
        if (d.regressed)
            return true;
    }
    return false;
}

namespace
{

double
pctChange(double base, double cur)
{
    return base != 0.0 ? 100.0 * (cur - base) / base : 0.0;
}

} // anonymous namespace

BenchDiff
compareBench(const BenchFile &base, const BenchFile &cur,
             double threshold_pct)
{
    std::map<std::string, const BenchRecord *> base_by_name, cur_by_name;
    for (const auto &r : base.records)
        base_by_name[r.name] = &r; // duplicates: last wins
    for (const auto &r : cur.records)
        cur_by_name[r.name] = &r;

    BenchDiff diff;
    diff.thresholdPct = threshold_pct;
    for (const auto &[name, b] : base_by_name) {
        auto it = cur_by_name.find(name);
        if (it == cur_by_name.end()) {
            diff.missing.push_back(name);
            continue;
        }
        const BenchRecord *c = it->second;
        BenchDelta d;
        d.name = name;
        d.baseCycles = b->cycles;
        d.curCycles = c->cycles;
        d.cyclesPct = pctChange(b->cycles, c->cycles);
        d.baseFpc = b->flopsPerCycle;
        d.curFpc = c->flopsPerCycle;
        d.fpcPct = pctChange(b->flopsPerCycle, c->flopsPerCycle);
        d.regressed = d.cyclesPct > threshold_pct
                      || d.fpcPct < -threshold_pct;
        auto rate = [](const BenchRecord *r) {
            auto e = r->extra.find("sim_rate");
            return e == r->extra.end() ? 0.0 : e->second;
        };
        d.baseSimRate = rate(b);
        d.curSimRate = rate(c);
        if (d.baseSimRate > 0.0 && d.curSimRate > 0.0)
            d.simRatePct = pctChange(d.baseSimRate, d.curSimRate);
        auto extra = [](const BenchRecord *r, const char *key) {
            auto e = r->extra.find(key);
            return e == r->extra.end() ? -1.0 : e->second;
        };
        d.baseCompletion = extra(b, "completion_rate");
        d.curCompletion = extra(c, "completion_rate");
        d.baseCorrect = extra(b, "correct");
        d.curCorrect = extra(c, "correct");
        // Completion and correctness gate hard: any drop below the
        // baseline fails, independent of the cycle threshold. A stat
        // absent from the current record is not a drop — it lands in
        // missingExtras below, a schema mismatch rather than a
        // regression, so callers get the precise diagnosis.
        if (d.baseCompletion >= 0.0 && d.curCompletion >= 0.0
            && d.curCompletion < d.baseCompletion - 1e-9)
            d.regressed = true;
        if (d.baseCorrect >= 0.0 && d.curCorrect >= 0.0
            && d.curCorrect < d.baseCorrect - 1e-9)
            d.regressed = true;
        for (const auto &[key, val] : b->extra) {
            (void)val;
            if (!c->extra.count(key))
                diff.missingExtras.push_back(name + "." + key);
        }
        diff.deltas.push_back(d);
    }
    for (const auto &[name, c] : cur_by_name) {
        if (!base_by_name.count(name))
            diff.added.push_back(name);
    }
    return diff;
}

std::string
renderBenchDiff(const BenchDiff &diff)
{
    TextTable t(strfmt("bench deltas vs baseline (regression: cycles "
                       "+%.1f%% or flops/cycle -%.1f%%)",
                       diff.thresholdPct, diff.thresholdPct));
    // Simulation rate is host-dependent, so it is shown but never
    // gated on; the column appears only when some record carries it.
    bool have_rate = false, have_resilience = false;
    for (const auto &d : diff.deltas) {
        have_rate = have_rate || d.baseSimRate > 0.0
                    || d.curSimRate > 0.0;
        have_resilience = have_resilience || d.baseCompletion >= 0.0
                          || d.baseCorrect >= 0.0;
    }
    auto rate_cell = [](double r) {
        return r > 0.0 ? strfmt("%.2fM", r / 1e6) : std::string("-");
    };
    auto res_cell = [](double base, double cur) {
        if (base < 0.0 && cur < 0.0)
            return std::string("-");
        return strfmt("%.2f -> %.2f", base, cur);
    };
    std::vector<std::string> head = {"case", "base cycles", "cycles",
                                     "d%", "base f/c", "f/c", "d%",
                                     "verdict"};
    if (have_resilience) {
        head.push_back("complete");
        head.push_back("correct");
    }
    if (have_rate)
        head.push_back("Mcyc/s (info)");
    t.header(head);
    for (const auto &d : diff.deltas) {
        std::vector<std::string> row = {
            d.name, strfmt("%.0f", d.baseCycles),
            strfmt("%.0f", d.curCycles), strfmt("%+.2f", d.cyclesPct),
            strfmt("%.3f", d.baseFpc), strfmt("%.3f", d.curFpc),
            strfmt("%+.2f", d.fpcPct),
            d.regressed ? "REGRESSED" : "ok"};
        if (have_resilience) {
            row.push_back(res_cell(d.baseCompletion, d.curCompletion));
            row.push_back(res_cell(d.baseCorrect, d.curCorrect));
        }
        if (have_rate) {
            std::string trend =
                d.baseSimRate > 0.0 && d.curSimRate > 0.0
                    ? strfmt(" (%+.0f%%)", d.simRatePct)
                    : std::string();
            row.push_back(rate_cell(d.baseSimRate) + " -> "
                          + rate_cell(d.curSimRate) + trend);
        }
        t.row(row);
    }
    std::string out = t.render();
    for (const auto &n : diff.missing)
        out += strfmt("MISSING: baseline case '%s' not in current run\n",
                      n.c_str());
    for (const auto &n : diff.added)
        out += strfmt("new case '%s' (no baseline yet)\n", n.c_str());
    return out;
}

} // namespace opac::stats
