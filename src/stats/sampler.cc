#include "stats/sampler.hh"

#include "common/logging.hh"
#include "snap/snapshot.hh"
#include "trace/json.hh"

namespace opac::stats
{

Sampler::Sampler(std::string name, const StatGroup &root, Cycle interval)
    : sim::Component(std::move(name)), root(root), _interval(interval)
{
    opac_assert(interval > 0, "sampler '%s' with zero interval",
                Component::name().c_str());
}

void
Sampler::tick(sim::Engine &engine)
{
    if (engine.now() % _interval == 0)
        snapshot(engine.now());
}

void
Sampler::snapshot(Cycle now)
{
    if (!_samples.empty() && _samples.back().cycle == now)
        return;
    Sample s;
    s.cycle = now;
    s.values.reserve(_names.size());
    bool record_names = _names.empty();
    root.forEachScalar([&](const std::string &n, double v) {
        if (record_names)
            _names.push_back(n);
        s.values.push_back(v);
    });
    opac_assert(s.values.size() == _names.size(),
                "registry shape changed while sampling (%zu stats, "
                "expected %zu)", s.values.size(), _names.size());
    _samples.push_back(std::move(s));
}

double
Sampler::value(std::size_t idx, const std::string &name) const
{
    opac_assert(idx < _samples.size(), "sample index %zu out of range",
                idx);
    for (std::size_t i = 0; i < _names.size(); ++i) {
        if (_names[i] == name)
            return _samples[idx].values[i];
    }
    opac_panic("no sampled stat '%s'", name.c_str());
}

void
Sampler::saveState(snap::Writer &w) const
{
    w.u64(_interval);
    w.u32(std::uint32_t(_names.size()));
    for (const std::string &n : _names)
        w.str(n);
    w.u32(std::uint32_t(_samples.size()));
    for (const Sample &s : _samples) {
        w.u64(s.cycle);
        for (double v : s.values)
            w.f64(v);
    }
}

void
Sampler::loadState(snap::Reader &r, std::uint32_t version)
{
    (void)version;
    if (r.u64() != _interval)
        r.fail(name() + ": snapshot sampled at a different interval");
    _names.assign(r.u32(), {});
    for (std::string &n : _names)
        n = r.str();
    _samples.assign(r.u32(), {});
    for (Sample &s : _samples) {
        s.cycle = r.u64();
        s.values.resize(_names.size());
        for (double &v : s.values)
            v = r.f64();
    }
}

std::string
Sampler::statusLine() const
{
    return strfmt("interval=%llu samples=%zu",
                  (unsigned long long)_interval, _samples.size());
}

std::string
Sampler::json() const
{
    std::string out =
        strfmt("{\n\"interval\": %llu,\n\"names\": [",
               (unsigned long long)_interval);
    for (std::size_t i = 0; i < _names.size(); ++i) {
        out += strfmt("%s\"%s\"", i ? ", " : "",
                      trace::json::escape(_names[i]).c_str());
    }
    out += "],\n\"samples\": [\n";
    for (std::size_t i = 0; i < _samples.size(); ++i) {
        const Sample &s = _samples[i];
        out += strfmt("  [%llu", (unsigned long long)s.cycle);
        for (double v : s.values)
            out += strfmt(", %.9g", v);
        out += i + 1 < _samples.size() ? "],\n" : "]\n";
    }
    out += "]\n}";
    return out;
}

} // namespace opac::stats
