/**
 * @file
 * Periodic stats sampling: a sim::Component that snapshots every
 * scalar-valued stat of a registry tree every N cycles, turning the
 * always-on counters into a time series.
 *
 * The sampler ticks with the other components but is always done(), so
 * it never holds the simulation open and never trips the watchdog. A
 * snapshot is taken on every cycle divisible by the interval (cycle 0
 * included), and the harness takes one final snapshot when the run
 * completes, so the series always covers both endpoints — including
 * the degenerate cases interval = 1 (every cycle) and interval longer
 * than the whole run (cycle 0 plus the final state).
 *
 * Register the sampler BEFORE the components it observes: it then runs
 * first in each tick round, so the sample labelled cycle k is the state
 * after exactly k completed cycles — the same convention as the final
 * end-of-run snapshot.
 *
 * Snapshots store values columnar against a name table captured at the
 * first snapshot; the registry shape must not change while sampling.
 */

#ifndef OPAC_STATS_SAMPLER_HH
#define OPAC_STATS_SAMPLER_HH

#include <string>
#include <vector>

#include "sim/engine.hh"
#include "stats/stats.hh"

namespace opac::stats
{

/** Snapshots a StatGroup tree every N cycles into a time series. */
class Sampler : public sim::Component
{
  public:
    struct Sample
    {
        Cycle cycle;
        std::vector<double> values; //!< parallel to names()
    };

    /** @param interval Snapshot period in cycles; must be nonzero. */
    Sampler(std::string name, const StatGroup &root, Cycle interval);

    Cycle interval() const { return _interval; }

    // sim::Component interface.
    void tick(sim::Engine &engine) override;
    bool done() const override { return true; }
    std::string statusLine() const override;

    /**
     * The next interval boundary, in engine time: idle-cycle skipping
     * never jumps over a periodic snapshot, so the sampled series has
     * identical cycles and values in every engine mode. Skipped
     * quiescent cycles need no replay here — they change no sampled
     * stat.
     */
    Cycle
    nextEventAt(Cycle now) const override
    {
        Cycle rem = now % _interval;
        return rem == 0 ? now : now + (_interval - rem);
    }

    /**
     * On a boundary cycle the sampler reads every counter in the
     * system: the event engine must replay all sleeping components up
     * to that cycle first, so the snapshot sees the same values a
     * tick-everything engine would have accumulated.
     */
    Cycle
    observesSystemAt(Cycle now) const override
    {
        return now % _interval == 0 ? now : noEvent;
    }

    /**
     * Record a snapshot at cycle @p now. Idempotent per cycle, so the
     * end-of-run snapshot cannot double-record a cycle the periodic
     * tick already captured.
     */
    void snapshot(Cycle now);

    const std::vector<std::string> &names() const { return _names; }
    const std::vector<Sample> &samples() const { return _samples; }

    /**
     * Snapshot support: the recorded series (name table plus every
     * sample row) travels with the machine, so a resumed run's final
     * json() is byte-identical to the uninterrupted run's.
     */
    std::uint32_t stateVersion() const override { return 1; }
    void saveState(snap::Writer &w) const override;
    void loadState(snap::Reader &r, std::uint32_t version) override;

    /** Value of stat @p name in sample @p idx (test convenience). */
    double value(std::size_t idx, const std::string &name) const;

    /**
     * {"interval": N, "names": [...], "samples": [[cycle, v...], ...]}
     * — columnar to keep long series compact.
     */
    std::string json() const;

  private:
    const StatGroup &root;
    Cycle _interval;
    std::vector<std::string> _names;
    std::vector<Sample> _samples;
};

} // namespace opac::stats

#endif // OPAC_STATS_SAMPLER_HH
