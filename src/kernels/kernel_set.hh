/**
 * @file
 * Installs the standard kernel library into a coprocessor's microcode
 * stores (every cell gets every kernel — the cells are homogeneous).
 */

#ifndef OPAC_KERNELS_KERNEL_SET_HH
#define OPAC_KERNELS_KERNEL_SET_HH

#include "coproc/coprocessor.hh"

namespace opac::kernels
{

/** Load every standard kernel into all cells of @p sys. */
void installStandardKernels(copro::Coprocessor &sys);

} // namespace opac::kernels

#endif // OPAC_KERNELS_KERNEL_SET_HH
