#include "kernels/firmware.hh"

#include "common/error.hh"
#include "common/logging.hh"
#include "isa/encode.hh"
#include "kernels/cholesky_leaf.hh"
#include "kernels/correlation.hh"
#include "kernels/entries.hh"
#include "kernels/fft.hh"
#include "kernels/gemv.hh"
#include "kernels/lu_leaf.hh"
#include "kernels/matupdate.hh"
#include "kernels/recip_nr.hh"
#include "kernels/trsolve.hh"

namespace opac::kernels
{

namespace
{

constexpr Word firmwareMagic = 0x4f504143u; // "OPAC"

} // anonymous namespace

std::vector<Word>
packFirmware(const std::vector<FirmwareEntry> &set)
{
    std::vector<Word> image;
    image.push_back(firmwareMagic);
    image.push_back(Word(set.size()));
    for (const auto &fe : set) {
        image.push_back(fe.entry);
        image.push_back(fe.nparams);
        const std::string &name = fe.prog.name();
        image.push_back(Word(name.size()));
        for (std::size_t i = 0; i < name.size(); i += 4) {
            Word w = 0;
            for (std::size_t b = 0; b < 4 && i + b < name.size(); ++b)
                w |= Word(std::uint8_t(name[i + b])) << (8 * b);
            image.push_back(w);
        }
        auto code = isa::encode(fe.prog);
        image.push_back(Word(fe.prog.size()));
        image.insert(image.end(), code.begin(), code.end());
    }
    return image;
}

std::vector<FirmwareEntry>
unpackFirmware(const std::vector<Word> &image)
{
    std::size_t at = 0;
    auto next = [&]() -> Word {
        if (at >= image.size()) {
            throw MicrocodeError(
                "firmware", strfmt("truncated image at word %zu", at));
        }
        return image[at++];
    };
    if (next() != firmwareMagic)
        throw MicrocodeError("firmware", "bad magic word");
    Word count = next();
    std::vector<FirmwareEntry> out;
    for (Word k = 0; k < count; ++k) {
        FirmwareEntry fe;
        fe.entry = next();
        fe.nparams = next();
        Word name_len = next();
        if (name_len >= 256) {
            throw MicrocodeError(
                "firmware",
                strfmt("implausible kernel name length %u", name_len));
        }
        std::string name;
        for (Word i = 0; i < name_len; i += 4) {
            Word w = next();
            for (Word b = 0; b < 4 && i + b < name_len; ++b)
                name.push_back(char((w >> (8 * b)) & 0xff));
        }
        Word instrs = next();
        if (instrs > (1u << 20)) {
            throw MicrocodeError(
                "firmware",
                strfmt("implausible kernel size %u", instrs));
        }
        std::vector<Word> code;
        for (Word i = 0; i < instrs * 4; ++i)
            code.push_back(next());
        fe.prog = isa::decode(code, name);
        out.push_back(std::move(fe));
    }
    if (at != image.size()) {
        throw MicrocodeError(
            "firmware",
            strfmt("%zu trailing words", image.size() - at));
    }
    return out;
}

void
installFirmware(copro::Coprocessor &sys, const std::vector<Word> &image)
{
    for (auto &fe : unpackFirmware(image))
        sys.loadMicrocode(fe.entry, fe.prog, fe.nparams);
}

std::vector<Word>
standardFirmware()
{
    std::vector<FirmwareEntry> set;
    set.push_back({entries::matUpdateAdd, matUpdateParams,
                   buildMatUpdate(false)});
    set.push_back({entries::matUpdateSub, matUpdateParams,
                   buildMatUpdate(true)});
    set.push_back({entries::matUpdateOvlAdd, matUpdateOvlParams,
                   buildMatUpdateOverlap(false)});
    set.push_back({entries::matUpdateOvlSub, matUpdateOvlParams,
                   buildMatUpdateOverlap(true)});
    set.push_back({entries::luLeaf, luLeafParams, buildLuLeaf()});
    set.push_back({entries::trSolve, trSolveParams, buildTrSolve()});
    set.push_back({entries::correlation, correlationParams,
                   buildCorrelation()});
    set.push_back({entries::fft, fftParams, buildFft()});
    set.push_back({entries::fftBatch, fftBatchParams, buildFftBatch()});
    set.push_back({entries::fftFast, fftFastParams, buildFftFast()});
    set.push_back({entries::recipNr, recipNrParams, buildRecipNr()});
    set.push_back({entries::choleskyLeaf, choleskyLeafParams,
                   buildCholeskyLeaf()});
    set.push_back({entries::gemv, gemvParams, buildGemv()});
    return packFirmware(set);
}

} // namespace opac::kernels
