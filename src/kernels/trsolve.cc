#include "kernels/trsolve.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildTrSolve()
{
    ProgramBuilder b("trsolve");

    // Load the M x n row block (column major) into sum.
    b.loopParam(2, [&] { b.mov(Src::TpX, DstSum); });

    // p3 = number of update passes remaining after the current column.
    b.copyParam(3, 0);

    b.loopParam(0, [&] { // for j = 0..n-1
        b.mov(Src::TpX, DstRegAy); // r_j = 1/u_jj
        // Scale: x(:,j) = a(:,j) * r_j -> tpo (result) and ret (reuse).
        b.loopParam(1, [&] {
            b.mul(src(Src::Sum), src(Src::RegAy), DstRet | DstTpO);
        });
        b.decParam(3);
        // Updates: a(:,l) -= x(:,j) * u_jl for l = j+1..n-1.
        b.loopParam(3, [&] {
            b.mov(Src::TpX, DstRegAy); // u_jl
            b.loopParam(1, [&] {
                b.fma(Src::RetR, Src::RegAy, Src::Sum, DstSum,
                      AddOp::SubBA);
            });
        });
        b.resetFifo(LocalFifo::Ret);
    });

    return b.finish();
}

} // namespace opac::kernels
