#include "kernels/matupdate.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildMatUpdate(bool negate)
{
    const AddOp op = negate ? AddOp::SubBA : AddOp::Add;
    ProgramBuilder b(negate ? "matupdate_sub" : "matupdate_add");

    // Load the chunk of A into sum.
    b.loopParam(8, [&] { b.mov(Src::TpX, DstSum); });

    b.loopParam(0, [&] { // for k = 1..K
        // B(:,k) arrives broadcast; store it in reby, then rotate the
        // queue so its head is the chunk's first row.
        b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });
        b.loopParam(2, [&] { b.mov(Src::Reby, DstReby); });

        // Head partial column.
        b.loopParam(3, [&] { b.mov(Src::TpX, DstRegAy); });
        b.loopParam(4, [&] {
            b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum, op);
        });

        // Full columns.
        b.loopParam(5, [&] {
            b.mov(Src::TpX, DstRegAy);
            b.loopParam(1, [&] {
                b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum, op);
            });
        });

        // Tail partial column.
        b.loopParam(6, [&] { b.mov(Src::TpX, DstRegAy); });
        b.loopParam(7, [&] {
            b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum, op);
        });

        b.resetFifo(LocalFifo::Reby);
    });

    // Drain the updated chunk.
    b.loopParam(8, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

isa::Program
buildMatUpdateOverlap(bool negate)
{
    const AddOp op = negate ? AddOp::SubBA : AddOp::Add;
    ProgramBuilder b(negate ? "matupdate_ovl_sub" : "matupdate_ovl_add");

    // Load the chunk of A into sum and the first B column into reby.
    b.loopParam(3, [&] { b.mov(Src::TpX, DstSum); });
    b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });

    // K-1 iterations that reload B(:,k+1) under the last column.
    b.loopParam(0, [&] {
        // All but the last column recirculate reby.
        b.decParam(2);
        b.loopParam(2, [&] {
            b.mov(Src::TpX, DstRegAy);
            b.loopParam(1, [&] {
                b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum, op);
            });
        });
        b.incParam(2);
        // Final column: consume reby while the parallel move refills it
        // with the next k's B column from tpx.
        b.mov(Src::TpX, DstRegAy);
        b.loopParam(1, [&] {
            b.fma(Src::Reby, Src::RegAy, Src::Sum, DstSum, op)
                .withMove(src(Src::TpX), DstReby);
        });
    });

    // Last iteration: no reload.
    b.decParam(2);
    b.loopParam(2, [&] {
        b.mov(Src::TpX, DstRegAy);
        b.loopParam(1, [&] {
            b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum, op);
        });
    });
    b.incParam(2);
    b.mov(Src::TpX, DstRegAy);
    b.loopParam(1, [&] {
        b.fma(Src::Reby, Src::RegAy, Src::Sum, DstSum, op);
    });

    // Drain.
    b.loopParam(3, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

} // namespace opac::kernels
