/**
 * @file
 * Radix-2 constant-geometry FFT kernel (paper section 2.2).
 *
 * The paper singles out the FFT's perfect shuffle as the access pattern
 * that "classical vector instructions" cannot express but FIFO queues
 * can. This kernel uses the Pease constant-geometry decimation-in-time
 * form: every stage reads adjacent pairs from the logical stream
 * [sum; ret] and writes u = a + w*b to sum and v = a - w*b to ret, so
 * all m = log2(n) stages execute the *same* loop body — one kernel
 * call runs the whole transform.
 *
 *  - input: bit-reversed order, complex interleaved (re, im), first
 *    n/2 complex into sum, rest into ret;
 *  - stage s, butterfly i twiddle: W_n^((i >> (m-1-s)) << (m-1-s)),
 *    streamed on tpx (2 words per butterfly);
 *  - output: natural order, sum then ret, on tpo.
 *
 * Constraints: n >= 4 a power of two; peak queue occupancy is 1.5 n
 * words, so n <= 2*Tf/3 (n = 1024 fits the prototype's Tf = 2048).
 *
 * The butterfly is a straight-line 14-op block using the register file
 * for the complex temporaries; it is *not* software pipelined, so the
 * per-butterfly cost includes FP-latency stalls (measured by the
 * kernels-throughput bench and discussed in EXPERIMENTS.md).
 *
 * Parameters: p0 = m, p1 = n/4 (butterflies per half), p2 = n (words
 * per queue).
 */

#ifndef OPAC_KERNELS_FFT_HH
#define OPAC_KERNELS_FFT_HH

#include <cstddef>

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the FFT kernel. */
constexpr unsigned fftParams = 3;

/** Build the FFT microcode (twiddles streamed from tpx). */
isa::Program buildFft();

/**
 * Batched variant with the twiddle table *resident in reby*: the
 * paper's section 2.2 point that when the transform applies to a set
 * of vectors the coefficients are read once, making the asymptotic
 * ratio 5 log2(n) / 4 operations per memory access. The whole
 * stage-major table (m*n words) loads into reby up front and makes
 * exactly one recirculating revolution per transform.
 *
 * Constraint: m*n <= Tf (n <= 256 for the prototype's Tf = 2048).
 * Parameters: p0 = m, p1 = n/4, p2 = n (words per queue),
 * p3 = batch count, p4 = m*n (twiddle words).
 */
constexpr unsigned fftBatchParams = 5;

/** Build the resident-twiddle batched FFT microcode. */
isa::Program buildFftBatch();

/**
 * Software-pipelined variant: two independent butterflies interleave
 * through disjoint register sets (r0-r7 / r8-r15). The first
 * butterfly's latency stalls disappear behind the partner's operand
 * moves; the pair's tail still waits on the second butterfly's own
 * multiply-adds (~12% net gain — full removal would need rotation
 * across loop iterations, which the static microcode format cannot
 * express without loop-carried register renaming). Requires n >= 8.
 * Parameters: p0 = m, p1 = n/8 (butterfly pairs per half), p2 = n.
 */
constexpr unsigned fftFastParams = 3;

/** Build the interleaved (software-pipelined) FFT microcode. */
isa::Program buildFftFast();

/** Bit-reverse the low @p bits of @p v. */
std::size_t bitReverse(std::size_t v, unsigned bits);

/** Twiddle exponent of stage @p s, butterfly @p i (m = log2 n). */
std::size_t fftTwiddleExponent(unsigned s, std::size_t i, unsigned m);

} // namespace opac::kernels

#endif // OPAC_KERNELS_FFT_HH
