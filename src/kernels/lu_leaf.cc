#include "kernels/lu_leaf.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildLuLeaf()
{
    ProgramBuilder b("lu_leaf");

    // Load A (column major) into sum.
    b.loopParam(1, [&] { b.mov(Src::TpX, DstSum); });

    // p2 = current trailing size s, starting at n.
    b.copyParam(2, 0);

    b.loopParam(0, [&] { // for k = 0..n-1
        b.mov(Src::Sum, DstTpO);   // pivot out: U(k,k)
        b.mov(Src::TpX, DstRegAy); // 1/pivot back from the host
        b.decParam(2);             // s - 1 rows/columns remain

        // Scale the L column: l(i,k) = a(i,k) * recip.
        b.loopParam(2, [&] {
            b.mul(src(Src::Sum), src(Src::RegAy), DstRet | DstTpO);
        });

        // Rank-1 update of the s-1 remaining columns.
        b.loopParam(2, [&] {
            // Column top element is the final U(k,j): to host + regay.
            b.mov(Src::Sum, DstRegAy | DstTpO);
            b.loopParam(2, [&] {
                b.fma(Src::RetR, Src::RegAy, Src::Sum, DstSum,
                      AddOp::SubBA);
            });
        });
        b.resetFifo(LocalFifo::Ret);
    });

    return b.finish();
}

} // namespace opac::kernels
