/**
 * @file
 * Single-cell Cholesky factorization leaf (section 2.1 lists the
 * Cholesky decomposition among the block-decomposable algorithms).
 *
 * The lower triangle lives *packed* in the sum queue, column major
 * (column j holds rows j..n-1), so the columns shrink exactly as the
 * factorization proceeds — the FIFO "dissociation" of consecutive
 * elements the paper highlights for triangular problems. Per step k:
 *
 *   1. the raw pivot a_kk goes to the host, which returns
 *      r = 1/sqrt(a_kk) (and keeps sqrt(a_kk) = L(k,k));
 *   2. the column scales: l(i,k) = a(i,k) * r, leaving on tpo and
 *      staying in ret;
 *   3. for each remaining column j: its scale factor l(j,k) is
 *      *consumed* from ret into regay (the queue shrinks with the
 *      triangle), the diagonal element updates with regay^2, and the
 *      rest of the column updates with the recirculating remainder of
 *      ret — after the last pass ret is empty, no reset needed.
 *
 * Parameters: p0 = n, p1 = n(n+1)/2 (packed load size). p2/p3 are the
 * internal shrinking counters.
 */

#ifndef OPAC_KERNELS_CHOLESKY_LEAF_HH
#define OPAC_KERNELS_CHOLESKY_LEAF_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the Cholesky leaf. */
constexpr unsigned choleskyLeafParams = 2;

/** Build the Cholesky leaf microcode. */
isa::Program buildCholeskyLeaf();

} // namespace opac::kernels

#endif // OPAC_KERNELS_CHOLESKY_LEAF_HH
