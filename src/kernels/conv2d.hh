/**
 * @file
 * Two-dimensional p x q convolution kernel (paper section 6.2).
 *
 * One call processes one column block of the image, all rows. The
 * weights sit in the multiport register file (p*q <= 30), the current
 * input row slice recirculates in reby, and sum holds p-1 partial
 * output rows. Per input row the microcode makes p*q passes over the
 * row slice; each pass costs Wi = Wu + q - 1 issues for Wu useful
 * multiply-adds — the frontier overhead of fig. 6. The pass that
 * completes the oldest partial row emits it to tpo, and the final pass
 * of each row consumes reby non-recirculating while its parallel moves
 * refill it with the next row from tpx, so the row reload is free.
 *
 * Semantics: out(n, m) = sum_{i,j} w(i, j) * in(n + i, m + j) over a
 * zero-padded input ("valid anchored cross-correlation"); the planner
 * flips the weight matrix to get a true convolution.
 *
 * Output protocol: the first p-1 emitted rows are warm-up garbage the
 * host discards; the host feeds p trailing zero rows (plus one extra
 * row consumed by the last refill).
 *
 * The program is generated per (p, q) — weights are statically
 * addressed registers, exactly the paper's point about the cost of
 * static addressing, paid here only for the tiny weight array.
 *
 * Parameters: p0 = row iterations (Nout + p - 1), p1 = Wi, p2 = Wu.
 */

#ifndef OPAC_KERNELS_CONV2D_HH
#define OPAC_KERNELS_CONV2D_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of a conv2d program. */
constexpr unsigned conv2dParams = 3;

/** Build the conv2d microcode for a p x q weight array. */
isa::Program buildConv2d(unsigned p, unsigned q);

} // namespace opac::kernels

#endif // OPAC_KERNELS_CONV2D_HH
