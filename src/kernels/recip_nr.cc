#include "kernels/recip_nr.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildRecipNr()
{
    ProgramBuilder b("recip_nr");
    b.mov(Src::TpX, DstReg, 2); // the constant 2.0
    b.loopParam(0, [&] {
        b.mov(Src::TpX, DstReg, 0); // x
        b.mov(Src::TpX, DstReg, 1); // seed r0
        b.loopParam(1, [&] {
            // r3 = 2 - x*r ; r1 = r1 * r3
            b.fma(reg(0), reg(1), reg(2), DstReg, AddOp::SubBA, 3);
            b.mul(reg(1), reg(3), DstReg, 1);
        });
        b.mov(reg(1), DstTpO);
    });
    return b.finish();
}

} // namespace opac::kernels
