/**
 * @file
 * 1-D correlation kernel (paper section 2.3): out[d] = sum_i x[i] *
 * y[i+d] for D lags.
 *
 * The classic OPAC mapping: the reby queue holds the sliding D-word
 * window of y, the sum queue holds the D accumulators, and regay holds
 * the current x[i]. Each step issues D chained multiply-adds — the
 * first one retires the oldest window element (non-recirculating read)
 * while its parallel move appends y[i+D] at the tail — followed by one
 * regay reload, so the steady state runs at D/(D+1) multiply-adds per
 * cycle with two tpx words per D multiply-adds.
 *
 * The accumulator recurrence distance is D+1 cycles, so lags D >=
 * mulLatency + addLatency keep the pipeline full; smaller D simply
 * stalls (correct, slower).
 *
 * tpx stream: y[0..G-1], x[0], then per step i: y[i+G], x[i+1], where
 * G = max(D-1, 1) is the prologue window size — the newest window
 * element of each step arrives mid-step through the parallel move, so
 * it lands behind the recirculated elements in queue order. The planner
 * interleaves the streams, padding trailing zeros as needed.
 *
 * Parameters: p0 = D, p1 = Nx (steps), p2 = D-1, p3 = G.
 */

#ifndef OPAC_KERNELS_CORRELATION_HH
#define OPAC_KERNELS_CORRELATION_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the correlation kernel. */
constexpr unsigned correlationParams = 4;

/** Build the correlation microcode. */
isa::Program buildCorrelation();

} // namespace opac::kernels

#endif // OPAC_KERNELS_CORRELATION_HH
