/**
 * @file
 * Single-cell LU factorization leaf (paper section 6.3).
 *
 * The n x n matrix (n^2 <= Tf) lives in the sum queue, column major.
 * OPAC has no divider, so each pivot makes a round trip: the cell emits
 * a_kk on tpo, the host computes its reciprocal (a scalar Compute op)
 * and sends it back on tpx — the dominant start-up cost the paper
 * observes for small N. Per step k:
 *
 *   1. pivot a_kk leaves to the host (it is also the final U(k,k));
 *   2. the reciprocal arrives into regay;
 *   3. the L column below the pivot is scaled (mul) and lands in ret
 *      (for the rank-1 update) and on tpo (final L entries);
 *   4. for every remaining column j: its top element (the final
 *      U(k,j)) moves to regay and tpo, then s-1 chained multiply-adds
 *      compute a(i,j) -= l(i,k) * a(k,j), recirculating the L column
 *      in ret and cycling the trailing matrix through sum.
 *
 * Parameters: p0 = n, p1 = n^2 (load count). p2 is the internal
 * shrinking size counter.
 */

#ifndef OPAC_KERNELS_LU_LEAF_HH
#define OPAC_KERNELS_LU_LEAF_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the LU leaf. */
constexpr unsigned luLeafParams = 2;

/** Build the LU leaf microcode. */
isa::Program buildLuLeaf();

} // namespace opac::kernels

#endif // OPAC_KERNELS_LU_LEAF_HH
