#include "kernels/cholesky_leaf.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildCholeskyLeaf()
{
    ProgramBuilder b("chol_leaf");

    // Packed lower triangle into sum.
    b.loopParam(1, [&] { b.mov(Src::TpX, DstSum); });

    b.copyParam(2, 0); // p2 = s = n
    b.loopParam(0, [&] { // for k = 0..n-1
        b.mov(Src::Sum, DstTpO);   // raw pivot to the host
        b.mov(Src::TpX, DstRegAy); // r = 1/sqrt(pivot) comes back
        b.decParam(2);
        // Scale the column: l(i,k) = a(i,k) * r.
        b.loopParam(2, [&] {
            b.mul(src(Src::Sum), src(Src::RegAy), DstRet | DstTpO);
        });
        // Rank-1 update passes over the shrinking columns.
        b.copyParam(3, 2);
        b.loopParam(2, [&] {
            b.mov(Src::Ret, DstRegAy); // consume l(j,k)
            b.decParam(3);
            // Diagonal: a(j,j) -= l(j,k)^2.
            b.fma(src(Src::RegAy), src(Src::RegAy), src(Src::Sum),
                  DstSum, AddOp::SubBA);
            // Below-diagonal: a(i,j) -= l(i,k) * l(j,k).
            b.loopParam(3, [&] {
                b.fma(Src::RetR, Src::RegAy, Src::Sum, DstSum,
                      AddOp::SubBA);
            });
        });
    });

    return b.finish();
}

} // namespace opac::kernels
