/**
 * @file
 * Newton-Raphson reciprocal kernel — division on a datapath that only
 * multiplies and adds (OPAC has no divider; the paper routes LU pivot
 * reciprocals through the host).
 *
 * For each input pair (x, r0) on tpx the kernel iterates
 * r <- r * (2 - x * r) a parameterized number of times and emits r on
 * tpo. With the classic linear seed (r0 = c1 - c2*x on a binade) three
 * iterations reach full single precision; convergence is quadratic.
 * The constant 2.0 arrives once per call on tpx.
 *
 * The iteration is a genuine scalar recurrence, so each step pays the
 * full multiply+add pipeline latency — the measured cost per
 * reciprocal quantifies what an on-cell divide would cost versus the
 * host round trip (see bench/ablation_recip).
 *
 * Parameters: p0 = element count, p1 = iterations.
 */

#ifndef OPAC_KERNELS_RECIP_NR_HH
#define OPAC_KERNELS_RECIP_NR_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the reciprocal kernel. */
constexpr unsigned recipNrParams = 2;

/** Build the Newton-Raphson reciprocal microcode. */
isa::Program buildRecipNr();

} // namespace opac::kernels

#endif // OPAC_KERNELS_RECIP_NR_HH
