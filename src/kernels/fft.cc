#include "kernels/fft.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

namespace
{

/**
 * Emit one butterfly reading its complex pair from @p q (Src::Sum or
 * Src::Ret) and its twiddle from @p w_src (Src::TpX streamed, or
 * Src::RebyR for a resident recirculating table). Register
 * allocation: r0 = wr, r1 = wi, r2 = ar, r3 = ai, r4 = br, r5 = bi,
 * r6 = t_r, r7 = t_i.
 */
void
emitButterfly(ProgramBuilder &b, Src q, Src w_src = Src::TpX)
{
    b.mov(src(q), DstReg, 2);            // ar
    b.mov(src(q), DstReg, 3);            // ai
    b.mov(src(w_src), DstReg, 0);        // wr
    b.mov(src(q), DstReg, 4);            // br
    b.mov(src(w_src), DstReg, 1);        // wi
    b.mov(src(q), DstReg, 5);            // bi
    b.mul(reg(0), reg(4), DstReg, 6);    // wr*br
    b.mul(reg(0), reg(5), DstReg, 7);    // wr*bi
    // t_r = (wr*br) - wi*bi ; t_i = (wr*bi) + wi*br
    b.fma(reg(1), reg(5), reg(6), DstReg, AddOp::SubBA, 6);
    b.fma(reg(1), reg(4), reg(7), DstReg, AddOp::Add, 7);
    b.add(reg(2), reg(6), DstSum, AddOp::Add);   // u_r
    b.add(reg(3), reg(7), DstSum, AddOp::Add);   // u_i
    b.add(reg(2), reg(6), DstRet, AddOp::SubAB); // v_r
    b.add(reg(3), reg(7), DstRet, AddOp::SubAB); // v_i
}

/**
 * Emit two interleaved butterflies A (r0-r7) and B (r8-r15), both
 * reading pairs from @p q in stream order (A's four data words before
 * B's). The static schedule spaces every dependent pair at least the
 * producing unit's latency apart, so the block issues without stalls
 * at the default 3+3 pipeline.
 */
void
emitButterflyPair(ProgramBuilder &b, Src q, Src w_src = Src::TpX)
{
    b.mov(src(q), DstReg, 2);             // arA
    b.mov(src(q), DstReg, 3);             // aiA
    b.mov(src(w_src), DstReg, 0);         // wrA
    b.mov(src(q), DstReg, 4);             // brA
    b.mov(src(w_src), DstReg, 1);         // wiA
    b.mov(src(q), DstReg, 5);             // biA
    b.mul(reg(0), reg(4), DstReg, 6);     // wrA*brA
    b.mov(src(q), DstReg, 10);            // arB
    b.mul(reg(0), reg(5), DstReg, 7);     // wrA*biA
    b.mov(src(q), DstReg, 11);            // aiB
    b.fma(reg(1), reg(5), reg(6), DstReg, AddOp::SubBA, 6); // t_rA
    b.mov(src(w_src), DstReg, 8);         // wrB
    b.fma(reg(1), reg(4), reg(7), DstReg, AddOp::Add, 7);   // t_iA
    b.mov(src(q), DstReg, 12);            // brB
    b.mov(src(w_src), DstReg, 9);         // wiB
    b.mov(src(q), DstReg, 13);            // biB
    b.mul(reg(8), reg(12), DstReg, 14);   // wrB*brB
    b.add(reg(2), reg(6), DstSum, AddOp::Add);   // u_rA
    b.mul(reg(8), reg(13), DstReg, 15);   // wrB*biB
    b.add(reg(3), reg(7), DstSum, AddOp::Add);   // u_iA
    b.fma(reg(9), reg(13), reg(14), DstReg, AddOp::SubBA, 14); // t_rB
    b.add(reg(2), reg(6), DstRet, AddOp::SubAB); // v_rA
    b.fma(reg(9), reg(12), reg(15), DstReg, AddOp::Add, 15);   // t_iB
    b.add(reg(3), reg(7), DstRet, AddOp::SubAB); // v_iA
    b.add(reg(10), reg(14), DstSum, AddOp::Add);   // u_rB
    b.add(reg(11), reg(15), DstSum, AddOp::Add);   // u_iB
    b.add(reg(10), reg(14), DstRet, AddOp::SubAB); // v_rB
    b.add(reg(11), reg(15), DstRet, AddOp::SubAB); // v_iB
}

} // anonymous namespace

isa::Program
buildFftFast()
{
    ProgramBuilder b("fft_fast");
    b.loopParam(2, [&] { b.mov(Src::TpX, DstSum); });
    b.loopParam(2, [&] { b.mov(Src::TpX, DstRet); });
    b.loopParam(0, [&] { // m stages
        b.loopParam(1, [&] { emitButterflyPair(b, Src::Sum); });
        b.loopParam(1, [&] { emitButterflyPair(b, Src::Ret); });
    });
    b.loopParam(2, [&] { b.mov(Src::Sum, DstTpO); });
    b.loopParam(2, [&] { b.mov(Src::Ret, DstTpO); });
    return b.finish();
}

isa::Program
buildFft()
{
    ProgramBuilder b("fft");

    // Load bit-reversed input: first n words to sum, next n to ret.
    b.loopParam(2, [&] { b.mov(Src::TpX, DstSum); });
    b.loopParam(2, [&] { b.mov(Src::TpX, DstRet); });

    b.loopParam(0, [&] { // m stages
        b.loopParam(1, [&] { emitButterfly(b, Src::Sum); });
        b.loopParam(1, [&] { emitButterfly(b, Src::Ret); });
    });

    // Natural-order result: sum (first half) then ret.
    b.loopParam(2, [&] { b.mov(Src::Sum, DstTpO); });
    b.loopParam(2, [&] { b.mov(Src::Ret, DstTpO); });
    return b.finish();
}

isa::Program
buildFftBatch()
{
    ProgramBuilder b("fft_batch");

    // Twiddle table into reby, once.
    b.loopParam(4, [&] { b.mov(Src::TpX, DstReby); });

    b.loopParam(3, [&] { // batches
        b.loopParam(2, [&] { b.mov(Src::TpX, DstSum); });
        b.loopParam(2, [&] { b.mov(Src::TpX, DstRet); });
        b.loopParam(0, [&] { // m stages
            b.loopParam(1, [&] {
                emitButterfly(b, Src::Sum, Src::RebyR);
            });
            b.loopParam(1, [&] {
                emitButterfly(b, Src::Ret, Src::RebyR);
            });
        });
        b.loopParam(2, [&] { b.mov(Src::Sum, DstTpO); });
        b.loopParam(2, [&] { b.mov(Src::Ret, DstTpO); });
    });
    b.resetFifo(LocalFifo::Reby);
    return b.finish();
}

std::size_t
bitReverse(std::size_t v, unsigned bits)
{
    std::size_t r = 0;
    for (unsigned i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

std::size_t
fftTwiddleExponent(unsigned s, std::size_t i, unsigned m)
{
    const unsigned d = m - 1 - s;
    return (i >> d) << d;
}

} // namespace opac::kernels
