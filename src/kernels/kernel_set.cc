#include "kernels/kernel_set.hh"

#include "kernels/cholesky_leaf.hh"
#include "kernels/correlation.hh"
#include "kernels/entries.hh"
#include "kernels/fft.hh"
#include "kernels/gemv.hh"
#include "kernels/lu_leaf.hh"
#include "kernels/matupdate.hh"
#include "kernels/recip_nr.hh"
#include "kernels/trsolve.hh"

namespace opac::kernels
{

void
installStandardKernels(copro::Coprocessor &sys)
{
    sys.loadMicrocode(entries::matUpdateAdd, buildMatUpdate(false),
                      matUpdateParams);
    sys.loadMicrocode(entries::matUpdateSub, buildMatUpdate(true),
                      matUpdateParams);
    sys.loadMicrocode(entries::matUpdateOvlAdd,
                      buildMatUpdateOverlap(false), matUpdateOvlParams);
    sys.loadMicrocode(entries::matUpdateOvlSub,
                      buildMatUpdateOverlap(true), matUpdateOvlParams);
    sys.loadMicrocode(entries::luLeaf, buildLuLeaf(), luLeafParams);
    sys.loadMicrocode(entries::trSolve, buildTrSolve(), trSolveParams);
    sys.loadMicrocode(entries::correlation, buildCorrelation(),
                      correlationParams);
    sys.loadMicrocode(entries::fft, buildFft(), fftParams);
    sys.loadMicrocode(entries::fftBatch, buildFftBatch(),
                      fftBatchParams);
    sys.loadMicrocode(entries::fftFast, buildFftFast(), fftFastParams);
    sys.loadMicrocode(entries::recipNr, buildRecipNr(), recipNrParams);
    sys.loadMicrocode(entries::choleskyLeaf, buildCholeskyLeaf(),
                      choleskyLeafParams);
    sys.loadMicrocode(entries::gemv, buildGemv(), gemvParams);
}

} // namespace opac::kernels
