/**
 * @file
 * Right-looking triangular solve leaf: X * U = A, with U n x n upper
 * triangular and A an M x n block of rows (M*n <= Tf), column major in
 * the sum queue.
 *
 * The host pre-computes the reciprocals of U's diagonal (it owns U in
 * its memory after the leaf LU that produced it — no round trips here)
 * and streams, per column j: r_j = 1/u_jj followed by the row slice
 * u_j,j+1 .. u_j,n-1. Per step j:
 *
 *   1. column j is scaled: x(:,j) = a(:,j) * r_j (mul), leaving on tpo
 *      and staying in ret for the updates;
 *   2. for l = j+1..n-1: a(:,l) -= x(:,j) * u_jl, cycling columns
 *      through sum and recirculating x(:,j) in ret.
 *
 * The same microcode solves L * X = A with L unit lower triangular: the
 * planner transposes the problem (X^T L^T = A^T) so L^T is upper
 * triangular with a unit diagonal, and streams r_j = 1.0.
 *
 * Parameters: p0 = n, p1 = M, p2 = M*n. p3 is the internal pass
 * counter.
 */

#ifndef OPAC_KERNELS_TRSOLVE_HH
#define OPAC_KERNELS_TRSOLVE_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the triangular-solve leaf. */
constexpr unsigned trSolveParams = 3;

/** Build the triangular-solve leaf microcode. */
isa::Program buildTrSolve();

} // namespace opac::kernels

#endif // OPAC_KERNELS_TRSOLVE_HH
