#include "kernels/gemv.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildGemv()
{
    ProgramBuilder b("gemv");
    b.loopParam(0, [&] { b.mov(Src::TpX, DstSum); }); // y
    b.loopParam(1, [&] {                              // columns
        b.mov(Src::TpX, DstRegAy);                    // x[j]
        b.loopParam(0, [&] {
            b.fma(Src::TpX, Src::RegAy, Src::Sum, DstSum);
        });
    });
    b.loopParam(0, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

} // namespace opac::kernels
