/**
 * @file
 * Microcode firmware images.
 *
 * A firmware image bundles a set of kernels (entry id, parameter
 * count, control-store encoding) into one flat word vector — the form
 * a real host driver would keep on disk and download into the cells'
 * control stores at boot. Round-trips exactly through the isa/encode
 * packing; installFirmware() validates and loads every kernel into
 * every cell.
 *
 * Image layout (32-bit words):
 *   [0] magic 0x4f504143 ("OPAC")  [1] kernel count
 *   per kernel: entry, nparams, name length, ceil(len/4) name words,
 *               instruction count, 4 words per instruction.
 */

#ifndef OPAC_KERNELS_FIRMWARE_HH
#define OPAC_KERNELS_FIRMWARE_HH

#include <vector>

#include "coproc/coprocessor.hh"
#include "isa/program.hh"

namespace opac::kernels
{

/** One kernel in a firmware bundle. */
struct FirmwareEntry
{
    Word entry;
    unsigned nparams;
    isa::Program prog;
};

/** Pack kernels into a flat image. */
std::vector<Word> packFirmware(const std::vector<FirmwareEntry> &set);

/** Unpack an image; throws (fatal) on corruption. */
std::vector<FirmwareEntry>
unpackFirmware(const std::vector<Word> &image);

/** Validate and install every kernel of @p image into @p sys. */
void installFirmware(copro::Coprocessor &sys,
                     const std::vector<Word> &image);

/** The standard kernel library as a firmware image. */
std::vector<Word> standardFirmware();

} // namespace opac::kernels

#endif // OPAC_KERNELS_FIRMWARE_HH
