#include "kernels/conv2d.hh"

#include "common/logging.hh"
#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

namespace
{

constexpr std::uint8_t scratchReg = 31;

/** Register holding weight (i, j). */
std::uint8_t
weightReg(unsigned i, unsigned j, unsigned q)
{
    return std::uint8_t(i * q + j);
}

/**
 * One pass of weight (i, j) over the row slice in reby: j leading
 * skips, Wu multiply-adds, q-1-j trailing skips (Wi issues total).
 *
 * @param dst    Destination of the accumulated values (DstSum, or
 *               DstTpO for the pass that completes a row).
 * @param create First contribution to a fresh partial row (no sum pop).
 * @param reload Final pass of the row: consume reby without
 *               recirculation and refill it from tpx in parallel.
 */
void
emitPass(ProgramBuilder &b, unsigned i, unsigned j, unsigned q,
         std::uint8_t dst, bool create, bool reload)
{
    const Src row = reload ? Src::Reby : Src::RebyR;

    auto skip = [&] {
        if (reload) {
            b.add(src(Src::Reby), src(Src::Zero), DstReg, AddOp::Add,
                  scratchReg)
                .withMove(src(Src::TpX), DstReby);
        } else {
            b.mov(Src::RebyR, DstReg, scratchReg);
        }
    };

    for (unsigned s = 0; s < j; ++s)
        skip();
    b.loopParam(2, [&] {
        if (create) {
            b.fma(src(row), reg(weightReg(i, j, q)), src(Src::Zero),
                  dst);
            if (reload)
                b.withMove(src(Src::TpX), DstReby);
        } else if (reload) {
            b.fma(src(row), reg(weightReg(i, j, q)), src(Src::Sum), dst)
                .withMove(src(Src::TpX), DstReby);
        } else {
            b.fma(src(row), reg(weightReg(i, j, q)), src(Src::Sum),
                  dst);
        }
    });
    for (unsigned s = 0; s + j + 1 < q; ++s)
        skip();
}

} // anonymous namespace

isa::Program
buildConv2d(unsigned p, unsigned q)
{
    opac_assert(p >= 1 && q >= 1 && p * q <= 30,
                "conv2d %ux%u weights exceed the register file", p, q);
    ProgramBuilder b(strfmt("conv2d_%ux%u", p, q));

    // Weights into r0 .. r(p*q-1).
    for (unsigned k = 0; k < p * q; ++k)
        b.mov(Src::TpX, DstReg, std::uint8_t(k));

    // p-1 zero partial rows.
    if (p > 1) {
        b.loopImm(p - 1, [&] {
            b.loopParam(2, [&] { b.mov(Src::Zero, DstSum); });
        });
    }

    // First input row slice.
    b.loopParam(1, [&] { b.mov(Src::TpX, DstReby); });

    b.loopParam(0, [&] { // row iterations
        // The p-1 partial rows revolve through sum in age order, so the
        // q weight-column passes must be interleaved across rows:
        // j outer, rows oldest (i = p-1, completing) to newest (i = 0,
        // created at j = 0) inner. The pass (p-1, q-1) emits the
        // completed row to tpo; the final pass of the iteration
        // (0, q-1) consumes reby while reloading the next input row.
        for (unsigned j = 0; j < q; ++j) {
            const bool last_j = j + 1 == q;
            for (unsigned i = p - 1; i >= 1; --i) {
                std::uint8_t dst = (i == p - 1 && last_j) ? DstTpO
                                                          : DstSum;
                emitPass(b, i, j, q, dst, false, false);
            }
            std::uint8_t dst0 = (p == 1 && last_j) ? DstTpO : DstSum;
            emitPass(b, 0, j, q, dst0, j == 0, last_j);
        }
    });

    b.resetFifo(LocalFifo::Reby);
    b.resetFifo(LocalFifo::Sum);
    return b.finish();
}

} // namespace opac::kernels
