/**
 * @file
 * The matrix-update kernel A(M,N) += B(M,K) * C(K,N) — the paper's
 * flagship primitive (section 6.1, figs. 2 and 5).
 *
 * Each cell owns a contiguous *chunk* of the column-major result tile
 * (the paper's N^2/P words per cell), resident in its sum queue for the
 * whole call. Per outer iteration k the host broadcasts the tile's B
 * column (stored in reby and reused by recirculation) and sends each
 * cell the C-row values for the columns its chunk touches (loaded into
 * regay one at a time).
 *
 * A chunk may start and end mid-column (that is how N^2/P-word chunks
 * fall), so the microcode is parameterized with head/tail segments whose
 * presence is encoded as 0/1-trip loops — the zero-overhead hardware
 * loops double as predication. The reby queue is rotated after each
 * reload so its read position lines up with the chunk's first row.
 *
 * Parameters (in tpi order):
 *   p0 = K        outer iterations
 *   p1 = Mb       tile rows = B column length
 *   p2 = rot      reby rotation (chunk's first row index)
 *   p3 = h1       1 if a head partial column exists, else 0
 *   p4 = h        head length
 *   p5 = f        number of full columns
 *   p6 = t1       1 if a tail partial column exists, else 0
 *   p7 = t        tail length
 *   p8 = chunk    total chunk words (h + f*Mb + t)
 *
 * The overlapped variant (entries::matUpdateOvl*) requires whole-column
 * chunks and hides the B-column reload under the previous iteration's
 * final column of multiply-adds using the parallel move path; it is the
 * ablation for the fig. 5 "separate load phase" design choice.
 */

#ifndef OPAC_KERNELS_MATUPDATE_HH
#define OPAC_KERNELS_MATUPDATE_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the fig. 5 variant. */
constexpr unsigned matUpdateParams = 9;

/** Build the fig. 5 matrix-update microcode (+= or -=). */
isa::Program buildMatUpdate(bool negate);

/**
 * Number of tpi parameter words of the overlapped variant:
 *   p0 = K-1, p1 = Mb, p2 = f (full columns), p3 = chunk (f*Mb).
 */
constexpr unsigned matUpdateOvlParams = 4;

/** Build the overlapped-reload variant (whole-column chunks only). */
isa::Program buildMatUpdateOverlap(bool negate);

} // namespace opac::kernels

#endif // OPAC_KERNELS_MATUPDATE_HH
