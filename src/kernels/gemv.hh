/**
 * @file
 * Matrix-vector product y += A x — deliberately *not* compute-bound:
 * every matrix element is used exactly once, so the kernel runs at the
 * host's word rate (1/tau multiply-adds per cycle) no matter how many
 * cells exist. It is the section 4.1 contrast case: the coprocessor
 * only pays off when operations outnumber data, and this kernel's
 * measured rate (bench/kernels_throughput) shows the wall.
 *
 * The y vector accumulates in sum (M recirculating partials), x enters
 * one element per column into regay, and the A column streams straight
 * from tpx into the multiplier.
 *
 * tpx stream: y (M words), then per column j: x[j], A(:,j).
 * Parameters: p0 = M, p1 = N.
 */

#ifndef OPAC_KERNELS_GEMV_HH
#define OPAC_KERNELS_GEMV_HH

#include "isa/program.hh"

namespace opac::kernels
{

/** Number of tpi parameter words of the gemv kernel. */
constexpr unsigned gemvParams = 2;

/** Build the gemv microcode. */
isa::Program buildGemv();

} // namespace opac::kernels

#endif // OPAC_KERNELS_GEMV_HH
