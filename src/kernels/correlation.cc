#include "kernels/correlation.hh"

#include "isa/builder.hh"

namespace opac::kernels
{

using namespace isa;

isa::Program
buildCorrelation()
{
    ProgramBuilder b("correlation");

    // Window and accumulator initialization. Only the prologue count
    // (p3 = max(D-1, 1)) of window elements load up front: the newest
    // element of each step arrives through the parallel move *during*
    // the step, which keeps the queue in window order (an up-front
    // element would be overtaken by the recirculated ones).
    b.loopParam(3, [&] { b.mov(Src::TpX, DstReby); });
    b.loopParam(0, [&] { b.mov(Src::Zero, DstSum); });
    b.mov(Src::TpX, DstRegAy); // x[0]

    b.loopParam(1, [&] { // for each sample i
        // d = 0: retire y[i] from the window head while the parallel
        // move appends y[i+D] at the tail.
        b.fma(Src::Reby, Src::RegAy, Src::Sum, DstSum)
            .withMove(src(Src::TpX), DstReby);
        // d = 1..D-1: recirculate the window.
        b.loopParam(2, [&] {
            b.fma(Src::RebyR, Src::RegAy, Src::Sum, DstSum);
        });
        b.mov(Src::TpX, DstRegAy); // x[i+1]
    });

    // Drain the D accumulators.
    b.loopParam(0, [&] { b.mov(Src::Sum, DstTpO); });
    return b.finish();
}

} // namespace opac::kernels
