/**
 * @file
 * Microcode entry-point registry.
 *
 * Every kernel program is installed into the cells' microcode stores
 * under a fixed entry id; host transfer programs name kernels by these
 * ids (the first word of every call on tpi).
 */

#ifndef OPAC_KERNELS_ENTRIES_HH
#define OPAC_KERNELS_ENTRIES_HH

#include "common/types.hh"

namespace opac::kernels::entries
{

constexpr Word matUpdateAdd = 1;  //!< A += B*C, fig. 5 sequencing
constexpr Word matUpdateSub = 2;  //!< A -= B*C
constexpr Word matUpdateOvlAdd = 3; //!< overlapped-reload variant, +=
constexpr Word matUpdateOvlSub = 4; //!< overlapped-reload variant, -=
constexpr Word luLeaf = 5;        //!< in-FIFO LU with host pivot recips
constexpr Word trSolve = 6;       //!< right-upper triangular solve
constexpr Word correlation = 7;   //!< 1-D correlation, D lags
constexpr Word fft = 8;           //!< radix-2 constant-geometry FFT
constexpr Word recipNr = 9;       //!< Newton-Raphson reciprocal
constexpr Word choleskyLeaf = 10; //!< packed-triangle Cholesky
constexpr Word gemv = 11;         //!< matrix-vector product (contrast)
constexpr Word fftBatch = 12;     //!< FFT with resident twiddles
constexpr Word fftFast = 13;      //!< software-pipelined FFT
constexpr Word conv2dBase = 16;   //!< conv2d programs: base + generation

} // namespace opac::kernels::entries

#endif // OPAC_KERNELS_ENTRIES_HH
