/**
 * @file
 * The coprocessor job server: submission front end, shard pool and
 * accounting, tying the queue/scheduler/shard pieces together
 * (docs/SERVING.md).
 *
 * Tenants submit() kernel requests and immediately receive a
 * std::future<JobResult> (and may attach a callback); drain() runs the
 * admission/batching scheduler until every submitted job is delivered.
 * Completion order, placements, latencies and result checksums are
 * deterministic — a replay of the same submissions is byte-identical,
 * across engine modes and regardless of how the shard worker threads
 * interleave in wall-clock time.
 *
 * Accounting rolls into a stats::StatGroup tree ("serve"): global
 * counters and wait/latency distributions, a per-tenant subtree
 * (jobs, cycles, multiply-adds — batch costs attributed
 * proportionally by estimated flops) and a per-shard subtree (busy
 * cycles, surviving cells).
 */

#ifndef OPAC_SERVE_SERVER_HH
#define OPAC_SERVE_SERVER_HH

#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/scheduler.hh"
#include "serve/shard.hh"
#include "stats/stats.hh"

namespace opac::serve
{

/** Whole-service configuration. */
struct ServeConfig
{
    unsigned shards = 2;    //!< simulated coprocessors in the pool
    ShardConfig shard;      //!< machine configuration of every shard
    SchedulerConfig sched;  //!< admission and batching policy

    /**
     * Base fault plan: each shard i runs it with a seed derived as
     * seed + 1000003 * i, so shards draw independent (but replayable)
     * fault streams. Leave empty for a fault-free pool.
     */
    fault::FaultSpec faults;

    /** Per-shard overrides (shard id, spec) — targeted kill plans.
     *  An override replaces the base plan verbatim (no seed mix). */
    std::vector<std::pair<unsigned, fault::FaultSpec>> shardFaults;
};

/** Accepts kernel requests and serves them on a pool of shards. */
class Server
{
  public:
    using Callback = std::function<void(const JobResult &)>;

    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Enqueue a request. Thread-safe. The request's arrival field is
     * its virtual submission time; the returned future (and the
     * optional callback) deliver during drain().
     */
    std::future<JobResult> submit(JobRequest req,
                                  Callback cb = nullptr);

    /**
     * Serve every pending submission to completion. Blocks the
     * caller; the shard worker threads execute the batches. May be
     * called repeatedly — virtual time carries across calls.
     */
    void drain();

    /** The accounting tree (root group "serve"). */
    stats::StatGroup &stats() { return *root_; }
    const stats::StatGroup &stats() const { return *root_; }

    /** Every delivered result, in (deterministic) delivery order. */
    const std::vector<JobResult> &results() const { return results_; }

    Cycle makespan() const { return sched_->makespan(); }
    unsigned batches() const { return sched_->batches(); }
    unsigned failovers() const { return sched_->failovers(); }

    unsigned numShards() const { return unsigned(shards_.size()); }
    const Shard &shard(unsigned i) const { return *shards_[i]; }
    unsigned aliveShards() const;

    /** Mean fraction of the makespan each shard spent serving. */
    double utilization() const;

  private:
    struct TenantStats;
    struct PendingEntry;

    TenantStats &tenant(std::uint32_t id);
    void deliver(const JobRequest &req, JobResult r, Cycle cycles,
                 std::uint64_t ma);

    ServeConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<Scheduler> sched_;

    std::mutex mu_;
    std::uint32_t lastTicket_ = 0;
    std::vector<std::unique_ptr<PendingEntry>> pending_;
    std::vector<JobResult> results_;

    // Accounting.
    std::unique_ptr<stats::StatGroup> root_;
    std::unique_ptr<stats::StatGroup> tenantsGroup_;
    std::unique_ptr<stats::StatGroup> shardsGroup_;
    stats::Counter cSubmitted_, cCompleted_, cFailed_, cRejected_;
    stats::Counter cFailovers_, cBatches_, cIncorrect_;
    stats::Distribution dQueueWait_, dLatency_;
    std::map<std::uint32_t, std::unique_ptr<TenantStats>> tenants_;
    std::vector<std::unique_ptr<stats::StatGroup>> shardGroups_;
    std::vector<stats::Formula> shardFormulas_;
};

} // namespace opac::serve

#endif // OPAC_SERVE_SERVER_HH
