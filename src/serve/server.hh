/**
 * @file
 * The coprocessor job server: submission front end, shard pool and
 * accounting, tying the queue/scheduler/shard pieces together
 * (docs/SERVING.md).
 *
 * Tenants submit() kernel requests and immediately receive a
 * std::future<JobResult> (and may attach a callback); drain() runs the
 * admission/batching scheduler until every submitted job is delivered.
 * Completion order, placements, latencies and result checksums are
 * deterministic — a replay of the same submissions is byte-identical,
 * across engine modes and regardless of how the shard worker threads
 * interleave in wall-clock time.
 *
 * Accounting rolls into a stats::StatGroup tree ("serve"): global
 * counters and wait/latency distributions, a per-tenant subtree
 * (jobs, cycles, multiply-adds — batch costs attributed
 * proportionally by estimated flops) and a per-shard subtree (busy
 * cycles, surviving cells).
 */

#ifndef OPAC_SERVE_SERVER_HH
#define OPAC_SERVE_SERVER_HH

#include <functional>
#include <future>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight.hh"
#include "obs/span.hh"
#include "serve/scheduler.hh"
#include "serve/shard.hh"
#include "stats/stats.hh"

namespace opac::serve
{

/** Whole-service configuration. */
struct ServeConfig
{
    unsigned shards = 2;    //!< simulated coprocessors in the pool
    ShardConfig shard;      //!< machine configuration of every shard
    SchedulerConfig sched;  //!< admission and batching policy

    /**
     * Base fault plan: each shard i runs it with a seed derived as
     * seed + 1000003 * i, so shards draw independent (but replayable)
     * fault streams. Leave empty for a fault-free pool.
     */
    fault::FaultSpec faults;

    /** Per-shard overrides (shard id, spec) — targeted kill plans.
     *  An override replaces the base plan verbatim (no seed mix). */
    std::vector<std::pair<unsigned, fault::FaultSpec>> shardFaults;

    /**
     * Crash durability (docs/RESILIENCE.md, "Checkpoint & replay").
     *
     * With a non-empty checkpointDir the server appends every
     * submission and delivery to <dir>/journal.log (flushed per
     * record) and writes <dir>/shardN.snap — atomically — after every
     * checkpointEvery batches a shard completes. A server constructed
     * with resume = true over the same directory restores each
     * shard's machine from its last checkpoint and re-delivers the
     * already-journaled results without re-executing them; the client
     * re-submits the identical workload (tickets are assigned by
     * submission order), and only the jobs that had not yet been
     * delivered actually run.
     */
    std::string checkpointDir;
    unsigned checkpointEvery = 1; //!< batches between checkpoints
    bool resume = false;          //!< restore from checkpointDir

    /** Test hook: throw from the Nth delivery (0 = never), simulating
     *  a crash mid-drain with journal and checkpoints on disk. */
    unsigned crashAfterDeliveries = 0;

    /** Observability knobs (docs/OBSERVABILITY.md). */
    struct ObsConfig
    {
        /** Span events retained per shard in the flight recorder. */
        std::size_t flightDepth = 64;

        /** Postmortem dumps retained per server; later triggers only
         *  count (a mass failure must not balloon memory). */
        std::size_t maxFlightDumps = 16;
    };
    ObsConfig obs;
};

/** Accepts kernel requests and serves them on a pool of shards. */
class Server
{
  public:
    using Callback = std::function<void(const JobResult &)>;

    explicit Server(const ServeConfig &cfg);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /**
     * Enqueue a request. Thread-safe. The request's arrival field is
     * its virtual submission time; the returned future (and the
     * optional callback) deliver during drain().
     */
    std::future<JobResult> submit(JobRequest req,
                                  Callback cb = nullptr);

    /**
     * Serve every pending submission to completion. Blocks the
     * caller; the shard worker threads execute the batches. May be
     * called repeatedly — virtual time carries across calls.
     */
    void drain();

    /** The accounting tree (root group "serve"). */
    stats::StatGroup &stats() { return *root_; }
    const stats::StatGroup &stats() const { return *root_; }

    /** Every delivered result, in (deterministic) delivery order. */
    const std::vector<JobResult> &results() const { return results_; }

    Cycle makespan() const { return sched_->makespan(); }
    unsigned batches() const { return sched_->batches(); }
    unsigned failovers() const { return sched_->failovers(); }

    unsigned numShards() const { return unsigned(shards_.size()); }
    const Shard &shard(unsigned i) const { return *shards_[i]; }
    unsigned aliveShards() const;

    /**
     * Live-migrate shard @p i: snapshot it, construct a fresh shard
     * (same configuration, fresh worker thread), restore the snapshot
     * into it and swap it into the pool. Pending work is untouched —
     * jobs queued for later drain() calls land on the replacement and
     * produce byte-identical results. Only valid between drain()
     * calls (no batch in flight).
     */
    void migrateShard(unsigned i);

    /** Mean fraction of the makespan each shard spent serving. */
    double utilization() const;

    // ---- Observability exports (docs/OBSERVABILITY.md) ----

    /** The span log: one JobSpan per ticket, deterministic. */
    const obs::SpanLog &spans() const { return spans_; }

    /**
     * Versioned SLO metrics snapshot ("opac.serve.metrics.v1"): the
     * whole serve stats tree — counters, distributions, per-tenant /
     * per-kind latency quantiles, per-shard gauges — as flat JSON
     * under "metrics". Byte-identical across engine modes.
     */
    std::string metricsJson() const;

    /** Prometheus text exposition of the same tree (obs/metrics.hh). */
    std::string metricsProm() const;

    /** Span records as versioned JSON ("opac.serve.spans.v1"). */
    std::string spansJson(bool include_wall = false) const;

    /** Chrome trace-event rendering of the spans: one track per shard
     *  (batch slices) and per tenant (in-flight depth). */
    void writeSpanChromeTrace(std::ostream &out) const;

    /**
     * Flight-recorder postmortems captured so far: (reason, dump
     * JSON "opac.serve.flight.v1") in trigger order, capped at
     * ObsConfig::maxFlightDumps.
     */
    const std::vector<std::pair<std::string, std::string>> &
    flightDumps() const
    {
        return flightDumps_;
    }

    /** Dump JSON of the most recent postmortem ("" when none). */
    std::string lastFlightDump() const;

    /** Postmortem triggers observed (>= flightDumps().size()). */
    std::uint64_t flightTriggers() const { return flightTriggers_; }

  private:
    struct TenantStats;
    struct KindStats;
    struct PendingEntry;

    /** A journaled delivery replayed on resume. */
    struct Recovered
    {
        JobResult result;
        Cycle cycles = 0;
        std::uint64_t ma = 0;
    };

    TenantStats &tenant(std::uint32_t id);
    KindStats &kindStats(KernelKind k);
    void deliver(const JobRequest &req, JobResult r, Cycle cycles,
                 std::uint64_t ma);
    void recordFlightDump(const std::string &reason);
    ShardConfig shardConfigFor(unsigned i) const;
    std::string checkpointPath(unsigned i) const;
    void writeJournal(const std::string &line);
    void loadJournal();
    void deliverRecovered();

    ServeConfig cfg_;
    std::vector<std::unique_ptr<Shard>> shards_;
    std::unique_ptr<Scheduler> sched_;

    std::mutex mu_;
    std::uint32_t lastTicket_ = 0;
    std::vector<std::unique_ptr<PendingEntry>> pending_;
    std::vector<JobResult> results_;

    // Accounting.
    std::unique_ptr<stats::StatGroup> root_;
    std::unique_ptr<stats::StatGroup> tenantsGroup_;
    std::unique_ptr<stats::StatGroup> shardsGroup_;
    std::unique_ptr<stats::StatGroup> kindsGroup_;
    stats::Counter cSubmitted_, cCompleted_, cFailed_, cRejected_;
    stats::Counter cFailovers_, cBatches_, cIncorrect_;
    stats::Counter cDeadlineMiss_;
    stats::Distribution dQueueWait_, dLatency_;
    stats::Quantile qQueueWait_, qService_, qE2e_;
    std::map<std::uint32_t, std::unique_ptr<TenantStats>> tenants_;
    std::map<std::string, std::unique_ptr<KindStats>> kinds_;
    std::vector<std::unique_ptr<stats::StatGroup>> shardGroups_;
    std::vector<std::unique_ptr<stats::Counter>> shardJobs_;
    std::vector<stats::Formula> shardFormulas_;

    // Crash durability (null / empty when checkpointDir is unset).
    std::unique_ptr<std::ofstream> journal_;
    std::map<std::uint32_t, Recovered> recovered_;
    std::vector<unsigned> sinceCkpt_;
    bool replaying_ = false;
    unsigned deliveries_ = 0;

    // Observability.
    obs::SpanLog spans_;
    std::unique_ptr<obs::FlightRecorders> flight_;
    std::vector<std::vector<std::string>> faultPlans_;
    std::vector<std::pair<std::string, std::string>> flightDumps_;
    std::uint64_t flightTriggers_ = 0;
};

} // namespace opac::serve

#endif // OPAC_SERVE_SERVER_HH
