/**
 * @file
 * One serving shard: a complete simulated coprocessor (host + P cells
 * + engine) owned by a dedicated worker thread, executing one batch of
 * jobs at a time (docs/SERVING.md).
 *
 * The shard is deliberately dumb: it knows nothing about queues,
 * tenants or virtual time. The scheduler hands it a batch with
 * launch(), the worker thread materializes the inputs, plans every job
 * through the kernel planners, runs the engine to completion and
 * verifies each result against the blasref oracle; harvest() blocks
 * for the BatchOutcome. All placement and ordering decisions stay in
 * the scheduler, which is what keeps the service deterministic while
 * the shards genuinely execute in parallel.
 *
 * A shard survives cell deaths (the host re-plans uncommitted jobs
 * onto the survivors through the JobRunner) and keeps serving with
 * fewer cells. It dies only when recovery itself gives up — every
 * cell dead, or a hang with recovery disabled — in which case the
 * outcome reports which jobs had already committed (their results are
 * valid and verified) and the scheduler fails the rest over.
 */

#ifndef OPAC_SERVE_SHARD_HH
#define OPAC_SERVE_SHARD_HH

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "coproc/coprocessor.hh"
#include "serve/request.hh"
#include "stats/stats.hh"

namespace opac::serve
{

/** Configuration of one shard's simulated machine. */
struct ShardConfig
{
    unsigned cells = 4;
    std::size_t tf = 512;          //!< per-cell FIFO capacity
    unsigned tau = 2;              //!< host cycles per bus word
    std::size_t memoryWords = 1 << 20;
    Cycle watchdogCycles = 500000;

    /** Native host floats: serving cares about throughput, not the
     *  paper's 18-digit format study. */
    cell::FpKind fp = cell::FpKind::Native;

    // Protection stack (docs/RESILIENCE.md). Serving defaults to the
    // full stack so injected faults degrade throughput, not answers.
    fault::ParityMode parity = fault::ParityMode::Correct;
    bool recovery = true;
    Cycle recoveryTimeout = 20000;
    unsigned retryBudget = 4;

    // Engine selection (bit-identical across all modes).
    sim::EngineMode engineMode = sim::EngineMode::Skip;
    bool skipIdleCycles = true;
    unsigned simThreads = 0;
    /** Superop fast tier (byte-identical; forwards to CoprocConfig). */
    bool fastTier = true;

    /** Device-stat sampling period in cycles (0 = off): forwards to
     *  CoprocConfig::statsSampleInterval, so each shard's machine can
     *  record the interval time series the benches use. */
    Cycle statsSampleInterval = 0;

    /** Fault plan for this shard (seed typically derived per shard). */
    fault::FaultSpec faults;
};

/** One job as handed to a shard: the server ticket plus the request. */
struct ShardJob
{
    std::uint32_t ticket = 0;
    JobRequest req;
};

/** Per-job outcome of a batch. */
struct JobOutcome
{
    std::uint32_t ticket = 0;
    bool committed = false; //!< its transaction reached txn_end
    bool correct = false;   //!< output matches the blasref oracle
    std::uint64_t checksum = 0; //!< FNV-1a over the output words
};

/** What one launch()/harvest() round produced. */
struct BatchOutcome
{
    /** False when the machine died mid-batch (shard is finished). */
    bool ran = false;

    /** Engine cycles the batch took. When the machine died this is
     *  the deterministic estimate instead, so virtual time still
     *  advances identically on every run. */
    Cycle cycles = 0;

    std::vector<JobOutcome> jobs;

    unsigned aliveCells = 0;    //!< cells still usable afterwards
    unsigned replans = 0;       //!< JobRunner re-plans this batch
    std::uint64_t retries = 0;  //!< host txn retries (delta)
    std::uint64_t deadCells = 0; //!< cells dead on this shard (total)
    std::uint64_t maOps = 0;    //!< multiply-adds executed (delta)
    std::string note;           //!< death reason when !ran
};

/**
 * Why a request can never run on a shard of this configuration, or ""
 * when it is admissible. Checked once at admission so malformed
 * requests are Rejected instead of wedging a shard.
 */
std::string admissionError(const JobRequest &req,
                           const ShardConfig &cfg);

/** A worker thread owning one simulated coprocessor. */
class Shard
{
  public:
    Shard(unsigned id, const ShardConfig &cfg);
    ~Shard();

    Shard(const Shard &) = delete;
    Shard &operator=(const Shard &) = delete;

    unsigned id() const { return id_; }
    const ShardConfig &config() const { return cfg_; }

    /** False once the machine died; a dead shard never serves again. */
    bool alive() const { return !failed_; }

    /** Usable cells as of the last harvest (placement cost model). */
    unsigned aliveCells() const { return aliveCells_; }

    /** Engine cycles this shard has spent serving batches. */
    std::uint64_t busyCycles() const { return busyCycles_; }

    /** Largest batch (in jobs) this shard has served. */
    std::uint64_t peakBatchJobs() const { return peakBatch_.value(); }

    /**
     * The shard's simulated machine — device-level stats and the
     * interval sampler. Only safe to read between drain() calls (the
     * worker thread mutates it while a batch is in flight).
     */
    const copro::Coprocessor &system() const { return *sys_; }

    /**
     * Hand a batch to the worker thread and return immediately. The
     * shard must be alive and not already running a batch.
     */
    void launch(std::vector<ShardJob> batch);

    /** Block for the outcome of the launched batch. */
    BatchOutcome harvest();

    /**
     * Checkpoint/restore (docs/RESILIENCE.md "Checkpoint & replay").
     *
     * takeSnapshot() captures the complete shard: the simulated
     * machine (via Coprocessor::takeSnapshot) plus a "serve.shard"
     * section with the shard's own batch bookkeeping (job-id base,
     * accounting deltas, liveness). Only valid between launch() and
     * harvest() rounds, when the worker thread is idle.
     *
     * restoreSnapshot() is the inverse, meant for a freshly
     * constructed shard of the same configuration (the machine
     * fingerprint is verified). After a restore the shard continues
     * bit-identically — this is also the shard-migration primitive:
     * snapshot one shard, build a new one, restore into it.
     *
     * writeCheckpoint()/readCheckpoint() are the file-backed forms;
     * writes are atomic (temp file + rename), so a crash mid-write
     * leaves the previous checkpoint intact.
     */
    snap::Snapshot takeSnapshot() const;
    void restoreSnapshot(const snap::Snapshot &s);
    void writeCheckpoint(const std::string &path) const;
    void readCheckpoint(const std::string &path);

  private:
    void worker();
    BatchOutcome execute(const std::vector<ShardJob> &batch);

    const unsigned id_;
    const ShardConfig cfg_;
    std::unique_ptr<copro::Coprocessor> sys_;
    std::size_t baseMark_ = 0;   //!< memory frontier after init
    std::uint32_t nextJobId_ = 1; //!< JobRunner id base (monotonic)
    std::uint64_t lastMa_ = 0;
    std::uint64_t lastRetries_ = 0;

    // Scheduler-thread view, updated only in launch()/harvest().
    bool failed_ = false;
    unsigned aliveCells_;
    std::uint64_t busyCycles_ = 0;
    stats::Watermark peakBatch_;

    // Worker-thread rendezvous.
    std::mutex mu_;
    std::condition_variable cv_;
    bool haveWork_ = false;
    bool haveResult_ = false;
    bool quit_ = false;
    std::vector<ShardJob> inbox_;
    BatchOutcome result_;
    std::thread thread_;
};

} // namespace opac::serve

#endif // OPAC_SERVE_SHARD_HH
