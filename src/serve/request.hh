/**
 * @file
 * The request/result vocabulary of the coprocessor job server
 * (docs/SERVING.md).
 *
 * A JobRequest names a kernel (GEMM / 2-D convolution / LU / batched
 * FFT), its problem shape, the tenant submitting it, a priority, an
 * optional latency deadline and an input seed. The server materializes
 * the inputs deterministically from the seed (xorshift, the same
 * generator the benches use), so a request is a few dozen bytes no
 * matter how large the problem — and two runs of the same request are
 * guaranteed to see bit-identical inputs, which is what makes the
 * whole service layer replayable.
 *
 * All service-level times (arrival, queue wait, latency) are virtual
 * and measured in coprocessor cycles: every shard runs the same clock,
 * so "cycles" is the one time base that is identical across host
 * machines, engine modes and worker-thread interleavings.
 */

#ifndef OPAC_SERVE_REQUEST_HH
#define OPAC_SERVE_REQUEST_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace opac::serve
{

/** Which kernel family a request runs. */
enum class KernelKind : std::uint8_t
{
    Gemm,   //!< C += A * B        (m x k x n)
    Conv2d, //!< p x q correlation of an n x m image
    Lu,     //!< in-place blocked LU of an n x n matrix
    Fft,    //!< batched radix-2 FFTs of size n
};

const char *kernelKindName(KernelKind k);

/** One kernel request as submitted by a tenant. */
struct JobRequest
{
    KernelKind kind = KernelKind::Gemm;

    // Shape. Gemm uses m/k/n; Lu uses n; Conv2d uses n (image rows),
    // m (image cols) and p/q (weight shape); Fft uses n (transform
    // size, power of two) and batch.
    std::size_t m = 8;
    std::size_t k = 8;
    std::size_t n = 8;
    std::size_t p = 3;
    std::size_t q = 3;
    std::size_t batch = 1;

    std::uint32_t tenant = 0; //!< accounting and fairness bucket
    unsigned priority = 0;    //!< higher dispatches first
    Cycle deadline = 0;       //!< max acceptable latency (0 = none)
    std::uint64_t seed = 1;   //!< input materialization seed
    Cycle arrival = 0;        //!< virtual submission time (cycles)
};

/** Why a job left the system. */
enum class JobStatus : std::uint8_t
{
    Rejected,  //!< refused at admission (queue full / deadline)
    Completed, //!< committed; result validated against the oracle
    Failed,    //!< its shard died with the job uncommitted
};

const char *jobStatusName(JobStatus s);

/** Completion record delivered through the future / callback. */
struct JobResult
{
    JobStatus status = JobStatus::Failed;
    std::uint32_t ticket = 0;  //!< server-assigned submission id
    unsigned shard = 0;        //!< shard that (last) ran the job

    Cycle arrival = 0;   //!< virtual cycle the job was submitted
    Cycle started = 0;   //!< virtual cycle its batch began service
    Cycle finished = 0;  //!< virtual cycle its batch completed
    Cycle deadline = 0;  //!< the request's latency bound (0 = none)

    /**
     * FNV-1a hash over the output words in storage order: the
     * bit-exact signature of the result. Identical across engine
     * modes, worker counts and — because recovery replays exactly —
     * across fault plans the machine survives.
     */
    std::uint64_t checksum = 0;
    bool correct = false; //!< output matches the blasref oracle
    unsigned failovers = 0; //!< times re-queued off a dying shard
    std::string note;     //!< rejection / failure reason

    Cycle queueWait() const { return started - arrival; }
    Cycle serviceTime() const { return finished - started; }
    Cycle latency() const { return finished - arrival; }

    /** Completed, but after the deadline it asked for. */
    bool
    missedDeadline() const
    {
        return deadline != 0 && status == JobStatus::Completed
               && latency() > deadline;
    }
};

/**
 * Floating-point operations the request performs (a multiply-add
 * counts as two) — the admission/placement cost model and the basis
 * of proportional per-tenant attribution of batch costs.
 */
double estimatedFlops(const JobRequest &req);

/**
 * Rough service-time estimate on a @p cells -cell shard, used for
 * deadline admission and least-loaded placement. Deliberately simple
 * (peak-rate flops plus a fixed per-job overhead): placement only
 * needs relative magnitudes, and determinism matters more than
 * accuracy here.
 */
Cycle estimatedServiceCycles(const JobRequest &req, unsigned cells);

/**
 * Batch-compatibility key. Jobs may share one engine run whenever
 * their keys are equal or either key is 0 (wildcard): only 2-D
 * convolutions constrain packing, because each distinct weight shape
 * installs its own generated microcode under the shared conv2d entry
 * ids (kernels/entries.hh) and two different geometries in one batch
 * would overwrite each other.
 */
std::uint64_t compatKey(const JobRequest &req);

} // namespace opac::serve

#endif // OPAC_SERVE_REQUEST_HH
