/**
 * @file
 * Admission + batching scheduler: the deterministic heart of the job
 * server (docs/SERVING.md).
 *
 * The scheduler is a discrete-event simulation over *virtual time*
 * (coprocessor cycles). It alternates two phases:
 *
 *   dispatch — hand a batch to every idle, alive shard, visiting
 *       shards in (freeAt, id) order. A shard's batch starts at
 *       max(shard free time, work availability); arrivals up to that
 *       instant are admitted first, then the batch is filled with up
 *       to batchMax compatible jobs in (priority desc, submission
 *       seq asc) order.
 *
 *   harvest — wait for *every* busy shard (in id order) and apply the
 *       outcomes: advance the shard's free time by the batch's engine
 *       cycles, deliver completions, and — when a shard died — fail
 *       its uncommitted jobs over to the survivors (or fail them for
 *       good when there are none).
 *
 * Every decision depends only on deterministic state (virtual clocks,
 * submission order, the deterministic cost model), never on wall-clock
 * or thread timing, so the whole service — placements, batch
 * compositions, latencies, checksums — is byte-identical across
 * engine modes, worker-thread counts and reruns, even though the
 * shards genuinely execute in parallel between the two phases.
 */

#ifndef OPAC_SERVE_SCHEDULER_HH
#define OPAC_SERVE_SCHEDULER_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "obs/flight.hh"
#include "obs/span.hh"
#include "serve/shard.hh"

namespace opac::serve
{

/** Admission and batching policy. */
struct SchedulerConfig
{
    /** Max jobs packed into one engine run. */
    std::size_t batchMax = 4;

    /** Admission cap on jobs queued (not yet dispatched). */
    std::size_t queueLimit = 256;

    /** Per-tenant share of the queue (0 = no per-tenant cap). */
    std::size_t tenantQueueLimit = 0;

    /** Reject jobs whose deadline is provably unmeetable (service
     *  estimate alone exceeds it, even on the biggest alive shard). */
    bool deadlineAdmission = true;
};

/** Runs submitted jobs to completion over a pool of shards. */
class Scheduler
{
  public:
    /**
     * Delivery of one finished (or rejected) job. @p cycle_share and
     * @p ma_share are the job's proportional slice — by estimated
     * flops — of its batch's engine cycles and multiply-adds, the
     * basis of per-tenant accounting (zero for rejected/failed jobs).
     */
    using CompletionFn = std::function<void(
        const JobRequest &req, JobResult result, Cycle cycle_share,
        std::uint64_t ma_share)>;

    Scheduler(std::vector<std::unique_ptr<Shard>> &shards,
              const SchedulerConfig &cfg, CompletionFn sink);

    /**
     * Wire up the observability side channels (obs/span.hh,
     * obs/flight.hh): every scheduling decision then lands a span
     * edge and a flight-recorder note, and @p postmortem fires (with
     * a reason string) whenever a job fails or a shard dies — the
     * server's cue to snapshot the flight rings. All three may be
     * null; spans must already be open()ed for every ticket drained.
     */
    void attachObservers(obs::SpanLog *spans,
                         obs::FlightRecorders *flight,
                         std::function<void(const std::string &)>
                             postmortem);

    /**
     * Hook called after one shard's batch outcome has been fully
     * applied (results delivered, failovers re-queued) and the shard
     * is still alive — the server's cue to checkpoint that shard's
     * machine, which is quiescent between batches. May be null.
     */
    using BatchDoneFn = std::function<void(unsigned shard)>;
    void setBatchDoneHook(BatchDoneFn fn) { batchDone_ = std::move(fn); }

    /**
     * Run the DES until every submission is delivered. @p subs must be
     * sorted by (arrival, submission order); tickets must be unique.
     * Blocks the calling thread; shard workers do the heavy lifting.
     */
    void drain(std::vector<ShardJob> subs);

    /** Virtual cycle the last batch finished (0 if nothing ran). */
    Cycle makespan() const { return makespan_; }

    /** Batches dispatched across all shards. */
    unsigned batches() const { return batches_; }

    /** Jobs that were failed over off a dying shard. */
    unsigned failovers() const { return failovers_; }

  private:
    /** A job admitted into the ready queue. */
    struct Pending
    {
        std::uint32_t ticket = 0;
        std::uint64_t seq = 0;  //!< submission order (FIFO tiebreak)
        JobRequest req;
        Cycle avail = 0;        //!< earliest virtual start time
        unsigned failovers = 0;
    };

    /** Dispatch bookkeeping for one shard. */
    struct ShardState
    {
        Cycle freeAt = 0;
        bool busy = false;
        Cycle started = 0;
        std::vector<Pending> inflight;
    };

    void admitUpTo(Cycle t);
    void reject(const Pending &p, const std::string &why);
    void fail(const Pending &p, const std::string &why, int shard = -1);
    void spanEdge(std::uint32_t ticket, obs::Phase ph, Cycle at,
                  std::uint32_t arg = 0);
    bool dispatchIdle();
    void harvestAll();
    void failEverythingLeft();
    unsigned biggestAliveShard() const;

    std::vector<std::unique_ptr<Shard>> &shards_;
    SchedulerConfig cfg_;
    CompletionFn sink_;

    std::vector<ShardState> state_;
    std::vector<Pending> ready_;
    std::vector<ShardJob> subs_;
    std::size_t nextSub_ = 0;

    Cycle makespan_ = 0;
    unsigned batches_ = 0;
    unsigned failovers_ = 0;

    // Observability side channels (may stay null).
    obs::SpanLog *spans_ = nullptr;
    obs::FlightRecorders *flight_ = nullptr;
    std::function<void(const std::string &)> postmortem_;
    BatchDoneFn batchDone_;
};

} // namespace opac::serve

#endif // OPAC_SERVE_SCHEDULER_HH
