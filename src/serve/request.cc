#include "serve/request.hh"

#include "common/logging.hh"

namespace opac::serve
{

const char *
kernelKindName(KernelKind k)
{
    switch (k) {
      case KernelKind::Gemm:
        return "gemm";
      case KernelKind::Conv2d:
        return "conv2d";
      case KernelKind::Lu:
        return "lu";
      case KernelKind::Fft:
        return "fft";
    }
    return "?";
}

const char *
jobStatusName(JobStatus s)
{
    switch (s) {
      case JobStatus::Rejected:
        return "rejected";
      case JobStatus::Completed:
        return "completed";
      case JobStatus::Failed:
        return "failed";
    }
    return "?";
}

double
estimatedFlops(const JobRequest &req)
{
    switch (req.kind) {
      case KernelKind::Gemm:
        return 2.0 * double(req.m) * double(req.k) * double(req.n);
      case KernelKind::Conv2d:
        return 2.0 * double(req.n) * double(req.m) * double(req.p)
               * double(req.q);
      case KernelKind::Lu:
        // ~2/3 n^3 multiply-adds, two flops each.
        return 4.0 / 3.0 * double(req.n) * double(req.n)
               * double(req.n);
      case KernelKind::Fft: {
        double lg = 0.0;
        for (std::size_t v = req.n; v > 1; v >>= 1)
            lg += 1.0;
        // 5 n log2(n) real flops per transform, the classic count.
        return 5.0 * double(req.n) * lg * double(req.batch);
      }
    }
    return 0.0;
}

Cycle
estimatedServiceCycles(const JobRequest &req, unsigned cells)
{
    opac_assert(cells >= 1, "estimate for a cell-less shard");
    // Peak is 2 flops/cycle/cell; real kernels run below peak and pay
    // per-call transfer overhead, folded into one conservative factor
    // plus a fixed setup cost. Only relative magnitude and determinism
    // matter (docs/SERVING.md).
    double cy = 2.0 * estimatedFlops(req) / (2.0 * double(cells));
    return Cycle(cy) + 2000;
}

std::uint64_t
compatKey(const JobRequest &req)
{
    if (req.kind != KernelKind::Conv2d)
        return 0; // wildcard: packs with anything
    return (std::uint64_t(req.p) << 32) | std::uint64_t(req.q) | 1u;
}

} // namespace opac::serve
