#include "serve/scheduler.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"

namespace opac::serve
{

namespace
{
constexpr Cycle kNever = std::numeric_limits<Cycle>::max();
} // anonymous namespace

Scheduler::Scheduler(std::vector<std::unique_ptr<Shard>> &shards,
                     const SchedulerConfig &cfg, CompletionFn sink)
    : shards_(shards), cfg_(cfg), sink_(std::move(sink))
{
    opac_assert(!shards_.empty(), "scheduler with no shards");
    opac_assert(cfg_.batchMax >= 1, "batchMax must be >= 1");
    opac_assert(cfg_.queueLimit >= 1, "queueLimit must be >= 1");
    state_.resize(shards_.size());
}

void
Scheduler::attachObservers(
    obs::SpanLog *spans, obs::FlightRecorders *flight,
    std::function<void(const std::string &)> postmortem)
{
    spans_ = spans;
    flight_ = flight;
    postmortem_ = std::move(postmortem);
}

void
Scheduler::spanEdge(std::uint32_t ticket, obs::Phase ph, Cycle at,
                    std::uint32_t arg)
{
    if (spans_)
        spans_->edge(ticket, ph, at, arg);
}

void
Scheduler::drain(std::vector<ShardJob> subs)
{
    for (std::size_t i = 1; i < subs.size(); ++i)
        opac_assert(subs[i - 1].req.arrival <= subs[i].req.arrival,
                    "submissions must be sorted by arrival");
    subs_ = std::move(subs);
    nextSub_ = 0;

    for (;;) {
        dispatchIdle();
        bool any_busy = false;
        for (const ShardState &st : state_)
            any_busy |= st.busy;
        if (!any_busy) {
            if (!ready_.empty() || nextSub_ < subs_.size())
                failEverythingLeft();
            break;
        }
        harvestAll();
    }
    subs_.clear();
    nextSub_ = 0;
}

void
Scheduler::admitUpTo(Cycle t)
{
    while (nextSub_ < subs_.size()
           && subs_[nextSub_].req.arrival <= t) {
        Pending p;
        p.ticket = subs_[nextSub_].ticket;
        p.seq = nextSub_;
        p.req = subs_[nextSub_].req;
        p.avail = p.req.arrival;
        ++nextSub_;

        // Structural checks first — a request that can never run is
        // "rejected: why" regardless of how busy the service is.
        std::string err = admissionError(p.req, shards_[0]->config());
        if (!err.empty()) {
            reject(p, err);
            continue;
        }
        if (cfg_.deadlineAdmission && p.req.deadline != 0) {
            unsigned cells = biggestAliveShard();
            if (cells == 0
                || estimatedServiceCycles(p.req, cells)
                       > p.req.deadline) {
                reject(p, "deadline unmeetable");
                continue;
            }
        }
        if (ready_.size() >= cfg_.queueLimit) {
            reject(p, "queue full");
            continue;
        }
        if (cfg_.tenantQueueLimit != 0) {
            std::size_t mine = 0;
            for (const Pending &q : ready_)
                mine += q.req.tenant == p.req.tenant;
            if (mine >= cfg_.tenantQueueLimit) {
                reject(p, "tenant queue full");
                continue;
            }
        }
        spanEdge(p.ticket, obs::Phase::Admit, p.req.arrival);
        ready_.push_back(std::move(p));
    }
}

void
Scheduler::reject(const Pending &p, const std::string &why)
{
    if (spans_) {
        spans_->at(p.ticket).note = why;
        spanEdge(p.ticket, obs::Phase::Reject, p.req.arrival);
    }
    JobResult r;
    r.status = JobStatus::Rejected;
    r.ticket = p.ticket;
    r.arrival = r.started = r.finished = p.req.arrival;
    r.deadline = p.req.deadline;
    r.failovers = p.failovers;
    r.note = why;
    sink_(p.req, std::move(r), 0, 0);
}

void
Scheduler::fail(const Pending &p, const std::string &why, int shard)
{
    if (spans_) {
        spans_->at(p.ticket).note = why;
        spanEdge(p.ticket, obs::Phase::Fail, p.avail,
                 shard >= 0 ? std::uint32_t(shard) : 0);
    }
    if (flight_ && shard >= 0)
        flight_->shard(unsigned(shard))
            .note(p.avail, p.ticket, obs::Phase::Fail, 0, why);
    JobResult r;
    r.status = JobStatus::Failed;
    r.ticket = p.ticket;
    if (shard >= 0)
        r.shard = unsigned(shard);
    r.arrival = p.req.arrival;
    r.started = r.finished = p.avail;
    r.deadline = p.req.deadline;
    r.failovers = p.failovers;
    r.note = why;
    sink_(p.req, std::move(r), 0, 0);
    if (postmortem_)
        postmortem_(strfmt("job %u failed: %s", p.ticket, why.c_str()));
}

unsigned
Scheduler::biggestAliveShard() const
{
    unsigned cells = 0;
    for (const auto &s : shards_)
        if (s->alive())
            cells = std::max(cells, s->aliveCells());
    return cells;
}

bool
Scheduler::dispatchIdle()
{
    // Dispatch priority within the ready queue: priority first, then
    // submission order — the rule the tests pin down.
    auto before = [this](std::size_t a, std::size_t b) {
        const Pending &pa = ready_[a], &pb = ready_[b];
        if (pa.req.priority != pb.req.priority)
            return pa.req.priority > pb.req.priority;
        return pa.seq < pb.seq;
    };

    auto tryAssign = [&](unsigned si) -> bool {
        ShardState &st = state_[si];
        Cycle t = st.freeAt;
        auto anyEligible = [&](Cycle tt) {
            for (const Pending &p : ready_)
                if (p.avail <= tt)
                    return true;
            return false;
        };
        // Advance t to the first instant work is available, admitting
        // arrivals as the clock passes them. Each pass consumes every
        // arrival up to t, so this terminates.
        for (;;) {
            if (anyEligible(t)) {
                admitUpTo(t);
                break;
            }
            Cycle tn = kNever;
            for (const Pending &p : ready_)
                tn = std::min(tn, p.avail);
            if (nextSub_ < subs_.size())
                tn = std::min(tn, subs_[nextSub_].req.arrival);
            if (tn == kNever)
                return false;
            t = std::max(t, tn);
            admitUpTo(t);
            if (anyEligible(t))
                break;
        }

        std::vector<std::size_t> idx;
        for (std::size_t i = 0; i < ready_.size(); ++i)
            if (ready_[i].avail <= t)
                idx.push_back(i);
        std::sort(idx.begin(), idx.end(), before);

        // Fill the batch with compatible jobs: keys must match the
        // first non-wildcard key taken (serve/request.hh).
        std::vector<std::size_t> take;
        std::uint64_t batch_key = 0;
        for (std::size_t i : idx) {
            std::uint64_t key = compatKey(ready_[i].req);
            if (batch_key != 0 && key != 0 && key != batch_key)
                continue;
            if (batch_key == 0)
                batch_key = key;
            take.push_back(i);
            if (take.size() == cfg_.batchMax)
                break;
        }

        std::vector<ShardJob> batch;
        batch.reserve(take.size());
        st.inflight.clear();
        const unsigned batchId = batches_ + 1; // 1-based span/batch id
        for (std::size_t i : take) {
            const Pending &p = ready_[i];
            batch.push_back(ShardJob{p.ticket, p.req});
            st.inflight.push_back(p);
            if (spans_) {
                obs::JobSpan &s = spans_->at(p.ticket);
                s.shard = int(si);
                s.batch = batchId;
                spanEdge(p.ticket, obs::Phase::Batch, t, batchId);
                spanEdge(p.ticket, obs::Phase::Dispatch, t, si);
                spanEdge(p.ticket, obs::Phase::Execute, t, si);
            }
            if (flight_)
                flight_->shard(si).note(t, p.ticket, obs::Phase::Execute,
                                        batchId,
                                        kernelKindName(p.req.kind));
        }
        std::sort(take.begin(), take.end(),
                  std::greater<std::size_t>());
        for (std::size_t i : take)
            ready_.erase(ready_.begin() + std::ptrdiff_t(i));

        st.busy = true;
        st.started = t;
        ++batches_;
        shards_[si]->launch(std::move(batch));
        return true;
    };

    bool any = false;
    for (;;) {
        // Next idle alive shard in (freeAt, id) order.
        int pick = -1;
        for (unsigned i = 0; i < unsigned(shards_.size()); ++i) {
            if (state_[i].busy || !shards_[i]->alive())
                continue;
            if (pick < 0
                || state_[i].freeAt < state_[unsigned(pick)].freeAt)
                pick = int(i);
        }
        if (pick < 0)
            return any;
        if (!tryAssign(unsigned(pick)))
            return any;
        any = true;
    }
}

void
Scheduler::harvestAll()
{
    bool any_alive = false;
    for (unsigned i = 0; i < unsigned(shards_.size()); ++i) {
        if (!state_[i].busy)
            continue;
        BatchOutcome out = shards_[i]->harvest();
        ShardState &st = state_[i];
        st.busy = false;
        const Cycle fin = st.started + out.cycles;
        st.freeAt = fin;
        makespan_ = std::max(makespan_, fin);

        opac_assert(out.jobs.size() == st.inflight.size(),
                    "batch outcome size mismatch on shard %u", i);

        double total_flops = 0.0;
        for (const Pending &p : st.inflight)
            total_flops += estimatedFlops(p.req);

        // Is anyone left to fail over to? Shard i's own alive() is
        // already updated by harvest(); later shards still busy are
        // alive by definition of having been launched.
        bool survivors = false;
        for (const auto &s : shards_)
            survivors |= s->alive();

        if (!out.ran) {
            if (flight_)
                flight_->shard(i).note(fin, 0, obs::Phase::ShardDead, 0,
                                       out.note);
            if (spans_)
                for (const Pending &p : st.inflight)
                    spans_->at(p.ticket).note = out.note;
            if (postmortem_)
                postmortem_(strfmt("shard %u died: %s", i,
                                   out.note.c_str()));
        }

        for (std::size_t j = 0; j < st.inflight.size(); ++j) {
            const JobOutcome &jo = out.jobs[j];
            Pending &p = st.inflight[j];
            opac_assert(jo.ticket == p.ticket,
                        "outcome/inflight ticket mismatch");
            if (spans_) {
                obs::JobSpan &s = spans_->at(p.ticket);
                s.retries += out.retries;
                s.replans += out.replans;
            }
            if (jo.committed) {
                double frac = total_flops > 0.0
                                  ? estimatedFlops(p.req) / total_flops
                                  : 1.0 / double(st.inflight.size());
                spanEdge(p.ticket, obs::Phase::Verify, fin, i);
                spanEdge(p.ticket, obs::Phase::Commit, fin, i);
                if (flight_)
                    flight_->shard(i).note(fin, p.ticket,
                                           obs::Phase::Commit,
                                           spans_ ? spans_->at(p.ticket)
                                                        .batch
                                                  : 0,
                                           jo.correct ? "" : "incorrect");
                JobResult r;
                r.status = JobStatus::Completed;
                r.ticket = p.ticket;
                r.shard = i;
                r.arrival = p.req.arrival;
                r.started = st.started;
                r.finished = fin;
                r.deadline = p.req.deadline;
                r.checksum = jo.checksum;
                r.correct = jo.correct;
                r.failovers = p.failovers;
                sink_(p.req, std::move(r),
                      Cycle(double(out.cycles) * frac),
                      std::uint64_t(double(out.maOps) * frac));
            } else if (!out.ran && survivors) {
                ++p.failovers;
                ++failovers_;
                p.avail = fin;
                if (spans_)
                    spans_->at(p.ticket).failovers = p.failovers;
                spanEdge(p.ticket, obs::Phase::Failover, fin, i);
                if (flight_)
                    flight_->shard(i).note(fin, p.ticket,
                                           obs::Phase::Failover, 0,
                                           out.note);
                ready_.push_back(std::move(p));
            } else {
                p.avail = fin;
                fail(p,
                     out.note.empty() ? "job did not commit"
                                      : "shard died: " + out.note,
                     int(i));
            }
        }
        st.inflight.clear();
        any_alive |= shards_[i]->alive();
        // Checkpoint cue: the batch's effects (deliveries, failovers,
        // the journal) are all applied, and the shard's worker is idle
        // until the next dispatch round.
        if (batchDone_ && shards_[i]->alive())
            batchDone_(i);
    }
    (void)any_alive;
}

void
Scheduler::failEverythingLeft()
{
    for (const Pending &p : ready_)
        fail(p, "no usable shards");
    ready_.clear();
    while (nextSub_ < subs_.size()) {
        Pending p;
        p.ticket = subs_[nextSub_].ticket;
        p.seq = nextSub_;
        p.req = subs_[nextSub_].req;
        p.avail = p.req.arrival;
        ++nextSub_;
        reject(p, "no usable shards");
    }
}

} // namespace opac::serve
