#include "serve/shard.hh"

#include <algorithm>
#include <bit>
#include <complex>
#include <functional>
#include <utility>

#include "blasref/blas3.hh"
#include "blasref/lu.hh"
#include "blasref/signal.hh"
#include "common/logging.hh"
#include "common/random.hh"
#include "kernels/kernel_set.hh"
#include "planner/jobs.hh"
#include "planner/linalg_plan.hh"
#include "planner/matref.hh"
#include "planner/signal_plan.hh"

namespace opac::serve
{

using blasref::Matrix;
using planner::MatRef;

namespace
{

/** Fold one memory word into an FNV-1a running hash. */
std::uint64_t
fnvWord(std::uint64_t h, Word w)
{
    h = (h ^ w) * 1099511628211ull;
    return h;
}

constexpr std::uint64_t fnvSeed = 14695981039346656037ull;

std::uint64_t
matChecksum(const host::HostMemory &mem, const MatRef &ref)
{
    std::uint64_t h = fnvSeed;
    for (std::size_t c = 0; c < ref.cols; ++c)
        for (std::size_t r = 0; r < ref.rows; ++r)
            h = fnvWord(h, mem.load(ref.addrOf(r, c)));
    return h;
}

std::uint64_t
rangeChecksum(const host::HostMemory &mem, std::size_t base,
              std::size_t n)
{
    std::uint64_t h = fnvSeed;
    for (std::size_t i = 0; i < n; ++i)
        h = fnvWord(h, mem.load(base + i));
    return h;
}

} // anonymous namespace

std::string
admissionError(const JobRequest &req, const ShardConfig &cfg)
{
    switch (req.kind) {
      case KernelKind::Gemm:
        if (req.m == 0 || req.k == 0 || req.n == 0)
            return "gemm with an empty dimension";
        break;
      case KernelKind::Lu:
        if (req.n < 2)
            return "lu needs n >= 2";
        break;
      case KernelKind::Conv2d:
        if (req.n == 0 || req.m == 0 || req.p == 0 || req.q == 0)
            return "conv2d with an empty dimension";
        if (cfg.tf <= std::size_t(req.p) * req.q + req.q)
            return "conv2d weights too large for the cell FIFO";
        break;
      case KernelKind::Fft:
        if (req.n < 4 || (req.n & (req.n - 1)) != 0)
            return "fft size must be a power of two >= 4";
        if (req.n > 2 * cfg.tf / 3)
            return "fft size exceeds 2*Tf/3 for this shard";
        if (req.batch == 0)
            return "fft with an empty batch";
        break;
    }
    return "";
}

Shard::Shard(unsigned id, const ShardConfig &cfg)
    : id_(id), cfg_(cfg), aliveCells_(cfg.cells)
{
    copro::CoprocConfig cc;
    cc.cells = cfg.cells;
    cc.cell.tf = cfg.tf;
    cc.cell.interfaceDepth = std::max<std::size_t>(cfg.tf, 2048);
    cc.cell.fp = cfg.fp;
    cc.cell.parity = cfg.parity;
    cc.host.tau = cfg.tau;
    cc.host.recovery.enabled = cfg.recovery;
    cc.host.recovery.timeoutCycles = cfg.recoveryTimeout;
    cc.host.recovery.retryBudget = cfg.retryBudget;
    cc.memoryWords = cfg.memoryWords;
    cc.watchdogCycles = cfg.watchdogCycles;
    cc.skipIdleCycles = cfg.skipIdleCycles;
    cc.engineMode = cfg.engineMode;
    cc.simThreads = cfg.simThreads;
    cc.fastTier = cfg.fastTier;
    cc.statsSampleInterval = cfg.statsSampleInterval;
    cc.faults = cfg.faults;
    sys_ = std::make_unique<copro::Coprocessor>(cc);
    kernels::installStandardKernels(*sys_);
    baseMark_ = sys_->memory().mark();
    thread_ = std::thread([this] { worker(); });
}

Shard::~Shard()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        quit_ = true;
    }
    cv_.notify_all();
    thread_.join();
}

void
Shard::launch(std::vector<ShardJob> batch)
{
    opac_assert(!failed_, "launch on a dead shard %u", id_);
    opac_assert(!batch.empty(), "launch with an empty batch");
    peakBatch_.observe(batch.size());
    {
        std::lock_guard<std::mutex> lk(mu_);
        opac_assert(!haveWork_ && !haveResult_,
                    "shard %u is already running a batch", id_);
        inbox_ = std::move(batch);
        haveWork_ = true;
    }
    cv_.notify_all();
}

BatchOutcome
Shard::harvest()
{
    BatchOutcome res;
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_.wait(lk, [this] { return haveResult_; });
        res = std::move(result_);
        haveResult_ = false;
    }
    if (!res.ran)
        failed_ = true;
    aliveCells_ = res.aliveCells;
    busyCycles_ += res.cycles;
    return res;
}

void
Shard::worker()
{
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_.wait(lk, [this] { return quit_ || haveWork_; });
        if (quit_)
            return;
        std::vector<ShardJob> batch = std::move(inbox_);
        inbox_.clear();
        haveWork_ = false;
        lk.unlock();
        BatchOutcome out = execute(batch);
        lk.lock();
        result_ = std::move(out);
        haveResult_ = true;
        cv_.notify_all();
    }
}

snap::Snapshot
Shard::takeSnapshot() const
{
    snap::Snapshot s = sys_->takeSnapshot();
    snap::Writer w;
    w.u64(baseMark_);
    w.u32(nextJobId_);
    w.u64(lastMa_);
    w.u64(lastRetries_);
    w.b(failed_);
    w.u32(aliveCells_);
    w.u64(busyCycles_);
    peakBatch_.saveState(w);
    s.add("serve.shard", 1, w.take());
    return s;
}

void
Shard::restoreSnapshot(const snap::Snapshot &s)
{
    // The machine restore is strict about its section inventory, so
    // peel the shard's own section off into a core-only copy first.
    snap::Snapshot core;
    core.cycle = s.cycle;
    core.fingerprint = s.fingerprint;
    for (const snap::Section &sec : s.sections())
        if (sec.name != "serve.shard")
            core.add(sec.name, sec.version, sec.payload);
    sys_->restoreSnapshot(core);

    const snap::Section &sec = s.require("serve.shard");
    snap::Reader r(sec.payload, "section 'serve.shard'");
    std::uint64_t mark = r.u64();
    if (mark != baseMark_)
        r.fail("base memory mark differs (different kernel set?)");
    nextJobId_ = r.u32();
    lastMa_ = r.u64();
    lastRetries_ = r.u64();
    failed_ = r.b();
    aliveCells_ = r.u32();
    busyCycles_ = r.u64();
    peakBatch_.loadState(r);
    r.expectEnd();

    // Belt and braces: if the checkpoint predates deliveries that are
    // already journaled (crash between a delivery and the next
    // checkpoint), the restored job-id base could collide with ids the
    // host has already committed. Keep it strictly ahead.
    for (std::uint32_t j : sys_->host().completedJobs())
        nextJobId_ = std::max(nextJobId_, j + 1);
}

void
Shard::writeCheckpoint(const std::string &path) const
{
    takeSnapshot().writeFile(path);
}

void
Shard::readCheckpoint(const std::string &path)
{
    restoreSnapshot(snap::Snapshot::readFile(path));
}

BatchOutcome
Shard::execute(const std::vector<ShardJob> &batch)
{
    BatchOutcome out;
    out.jobs.resize(batch.size());
    host::HostMemory &mem = sys_->memory();
    host::Host &h = sys_->host();

    // Recycle the arena: everything a previous batch allocated —
    // including planner scratch — is released and zeroed.
    mem.rewind(baseMark_);

    // A verification closure per job, run after the engine finishes:
    // (matches the oracle?, FNV-1a checksum of the output words).
    std::vector<std::function<std::pair<bool, std::uint64_t>()>> checks;
    checks.reserve(batch.size());

    planner::JobRunner runner(*sys_, nextJobId_);
    const std::uint32_t base = nextJobId_;
    nextJobId_ += std::uint32_t(batch.size());
    Cycle estimate = 0;

    for (const ShardJob &sj : batch) {
        const JobRequest &req = sj.req;
        estimate += estimatedServiceCycles(req, cfg_.cells);
        Rng rng(req.seed);
        switch (req.kind) {
          case KernelKind::Gemm: {
            Matrix a(req.m, req.k), b(req.k, req.n), c(req.m, req.n);
            a.randomize(rng);
            b.randomize(rng);
            c.randomize(rng);
            Matrix want = c;
            blasref::gemm(want, a, b);
            MatRef ar = planner::allocMat(mem, req.m, req.k);
            MatRef br = planner::allocMat(mem, req.k, req.n);
            MatRef cr = planner::allocMat(mem, req.m, req.n);
            planner::storeMat(mem, ar, a);
            planner::storeMat(mem, br, b);
            planner::storeMat(mem, cr, c);
            runner.add("gemm", [this, cr, ar, br](std::uint32_t alive) {
                planner::LinalgPlanner plan(*sys_, alive);
                plan.matUpdate(cr, ar, br);
                return plan.takeOps();
            });
            checks.push_back([this, cr, want] {
                bool ok = planner::loadMat(sys_->memory(), cr)
                              .maxAbsDiff(want)
                          < 1e-3f;
                return std::make_pair(
                    ok, matChecksum(sys_->memory(), cr));
            });
            break;
          }
          case KernelKind::Lu: {
            Matrix a(req.n, req.n);
            a.randomize(rng);
            a.makeDiagonallyDominant();
            Matrix want = a;
            blasref::luFactor(want);
            MatRef ar = planner::allocMat(mem, req.n, req.n);
            planner::storeMat(mem, ar, a);
            runner.add("lu", [this, ar](std::uint32_t alive) {
                planner::LinalgPlanner plan(*sys_, alive);
                plan.lu(ar);
                return plan.takeOps();
            });
            checks.push_back([this, ar, want] {
                bool ok = planner::loadMat(sys_->memory(), ar)
                              .maxAbsDiff(want)
                          < 2e-3f;
                return std::make_pair(
                    ok, matChecksum(sys_->memory(), ar));
            });
            break;
          }
          case KernelKind::Conv2d: {
            Matrix img(req.n, req.m);
            img.randomize(rng);
            Matrix w(req.p, req.q);
            w.randomize(rng);
            Matrix want = blasref::xcorr2d(img, w);
            // Padded transposed image: column r holds padded input
            // row r (the conv2d planner's required layout).
            MatRef img_t =
                planner::allocMat(mem, req.m + req.q - 1, req.n + req.p);
            for (std::size_t r = 0; r < img_t.cols; ++r)
                for (std::size_t c = 0; c < img_t.rows; ++c) {
                    float v = 0.0f;
                    if (r < img.rows() && c < img.cols())
                        v = img.at(r, c);
                    mem.storeF(img_t.addrOf(c, r), v);
                }
            MatRef wr = planner::allocMat(mem, req.p, req.q);
            planner::storeMat(mem, wr, w);
            MatRef out_t = planner::allocMat(mem, req.m, req.n);
            runner.add("conv2d", [this, img_t, wr, out_t, nr = req.n,
                                  mc = req.m](std::uint32_t alive) {
                planner::SignalPlanner plan(*sys_, alive);
                plan.conv2d(img_t, wr, out_t, nr, mc);
                return plan.takeOps();
            });
            checks.push_back([this, out_t, want] {
                const host::HostMemory &m = sys_->memory();
                bool ok = true;
                for (std::size_t r = 0; ok && r < want.rows(); ++r)
                    for (std::size_t c = 0; c < want.cols(); ++c)
                        if (std::abs(m.loadF(out_t.addrOf(c, r))
                                     - want.at(r, c))
                            >= 1e-3f) {
                            ok = false;
                            break;
                        }
                return std::make_pair(ok, matChecksum(m, out_t));
            });
            break;
          }
          case KernelKind::Fft: {
            std::vector<std::vector<std::complex<float>>> xs(req.batch);
            for (auto &x : xs) {
                x.resize(req.n);
                for (auto &v : x)
                    v = {rng.element(), rng.element()};
            }
            std::vector<std::vector<std::complex<float>>> want;
            want.reserve(req.batch);
            for (const auto &x : xs)
                want.push_back(blasref::fft(x));
            std::size_t in = mem.alloc(2 * req.n * req.batch);
            std::size_t ob = mem.alloc(2 * req.n * req.batch);
            for (std::size_t b = 0; b < req.batch; ++b)
                for (std::size_t i = 0; i < req.n; ++i) {
                    mem.storeF(in + b * 2 * req.n + 2 * i,
                               xs[b][i].real());
                    mem.storeF(in + b * 2 * req.n + 2 * i + 1,
                               xs[b][i].imag());
                }
            runner.add("fft", [this, in, ob, n = req.n,
                               nb = req.batch](std::uint32_t alive) {
                planner::SignalPlanner plan(*sys_, alive);
                plan.fft(in, ob, n, nb);
                return plan.takeOps();
            });
            checks.push_back([this, ob, n = req.n, want] {
                const host::HostMemory &m = sys_->memory();
                const float tol = 2e-3f * float(n > 64 ? n / 64 : 1);
                bool ok = true;
                for (std::size_t b = 0; ok && b < want.size(); ++b)
                    for (std::size_t k = 0; k < n; ++k) {
                        std::size_t at = ob + b * 2 * n + 2 * k;
                        if (std::abs(m.loadF(at) - want[b][k].real())
                                >= tol
                            || std::abs(m.loadF(at + 1)
                                        - want[b][k].imag())
                                   >= tol) {
                            ok = false;
                            break;
                        }
                    }
                return std::make_pair(
                    ok,
                    rangeChecksum(m, ob, 2 * n * want.size()));
            });
            break;
          }
        }
    }

    runner.dispatch();
    try {
        out.cycles = sys_->run();
        out.ran = true;
    } catch (const std::exception &e) {
        // The machine died (every cell dead, or a hang recovery could
        // not absorb). Jobs that committed before the death still hold
        // valid results; virtual time advances by the deterministic
        // estimate so replays stay identical.
        out.cycles = estimate;
        out.note = e.what();
    }

    out.replans = runner.replans();
    out.aliveCells = unsigned(std::popcount(h.aliveMask()));
    out.deadCells = h.deadCells();
    out.retries = h.retries() - lastRetries_;
    lastRetries_ = h.retries();
    std::uint64_t ma = 0;
    for (unsigned i = 0; i < sys_->numCells(); ++i)
        ma += sys_->cell(i).fmaOps();
    out.maOps = ma - lastMa_;
    lastMa_ = ma;

    const auto &done = h.completedJobs();
    for (std::size_t i = 0; i < batch.size(); ++i) {
        JobOutcome &jo = out.jobs[i];
        jo.ticket = batch[i].ticket;
        // Without recovery there are no transactions to track: a
        // completed run commits everything, a death commits nothing.
        jo.committed =
            cfg_.recovery
                ? std::find(done.begin(), done.end(),
                            base + std::uint32_t(i))
                      != done.end()
                : out.ran;
        if (jo.committed) {
            auto [ok, sum] = checks[i]();
            jo.correct = ok;
            jo.checksum = sum;
        }
    }
    return out;
}

} // namespace opac::serve
