#include "serve/server.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <sstream>
#include <string>
#include <utility>

#include "common/logging.hh"
#include "fault/fault.hh"
#include "obs/metrics.hh"
#include "snap/snapshot.hh"

namespace opac::serve
{

/** Per-tenant accounting subtree ("serve.tenants.tenantN"). */
struct Server::TenantStats
{
    TenantStats(std::uint32_t id, stats::StatGroup *parent)
        : group("tenant" + std::to_string(id), parent)
    {
        group.addCounter("submitted", &submitted, "jobs submitted");
        group.addCounter("completed", &completed, "jobs completed");
        group.addCounter("rejected", &rejected,
                         "jobs refused at admission");
        group.addCounter("failed", &failed, "jobs lost to shard deaths");
        group.addCounter("deadline_missed", &deadlineMissed,
                         "completed jobs that blew their deadline");
        group.addCounter("cycles", &cycles,
                         "engine cycles attributed (flops-proportional "
                         "share of each batch)");
        group.addCounter("ma_ops", &maOps,
                         "multiply-adds attributed (same attribution)");
        group.addDistribution("queue_wait", &queueWait,
                              "virtual cycles from arrival to dispatch");
        group.addDistribution("latency", &latency,
                              "virtual cycles from arrival to completion");
        group.addQuantile("queue_wait_pct", &queueWaitQ,
                          "queue-wait percentiles (SLO view)");
        group.addQuantile("service_pct", &serviceQ,
                          "service-time percentiles (SLO view)");
        group.addQuantile("e2e_pct", &e2eQ,
                          "end-to-end latency percentiles (SLO view)");
    }

    stats::StatGroup group;
    stats::Counter submitted, completed, rejected, failed;
    stats::Counter deadlineMissed;
    stats::Counter cycles, maOps;
    stats::Distribution queueWait, latency;
    stats::Quantile queueWaitQ, serviceQ, e2eQ;
};

/** Per-kernel-kind SLO subtree ("serve.kinds.gemm"): per-kernel
 *  attribution, not just aggregate numbers. */
struct Server::KindStats
{
    KindStats(const std::string &name, stats::StatGroup *parent)
        : group(name, parent)
    {
        group.addCounter("completed", &completed, "jobs completed");
        group.addQuantile("queue_wait_pct", &queueWaitQ,
                          "queue-wait percentiles (SLO view)");
        group.addQuantile("service_pct", &serviceQ,
                          "service-time percentiles (SLO view)");
        group.addQuantile("e2e_pct", &e2eQ,
                          "end-to-end latency percentiles (SLO view)");
    }

    stats::StatGroup group;
    stats::Counter completed;
    stats::Quantile queueWaitQ, serviceQ, e2eQ;
};

/** One submission awaiting delivery. */
struct Server::PendingEntry
{
    JobRequest req;
    std::promise<JobResult> prom;
    Callback cb;
    bool queued = false;    //!< handed to the scheduler already
    bool delivered = false;
};

Server::Server(const ServeConfig &cfg) : cfg_(cfg)
{
    opac_assert(cfg.shards >= 1, "server needs at least one shard");

    root_ = std::make_unique<stats::StatGroup>("serve");
    root_->addCounter("submitted", &cSubmitted_, "jobs submitted");
    root_->addCounter("completed", &cCompleted_, "jobs completed");
    root_->addCounter("failed", &cFailed_,
                      "jobs lost to shard deaths");
    root_->addCounter("rejected", &cRejected_,
                      "jobs refused at admission");
    root_->addCounter("failovers", &cFailovers_,
                      "times a delivered job was re-queued off a "
                      "dying shard");
    root_->addCounter("incorrect", &cIncorrect_,
                      "completed jobs whose output missed the oracle "
                      "(0 in a healthy service)");
    root_->addCounter("deadline_missed", &cDeadlineMiss_,
                      "completed jobs that blew their deadline");
    root_->addDistribution("queue_wait", &dQueueWait_,
                           "virtual cycles from arrival to dispatch");
    root_->addDistribution("latency", &dLatency_,
                           "virtual cycles from arrival to completion");
    root_->addQuantile("queue_wait_pct", &qQueueWait_,
                       "queue-wait percentiles (SLO view)");
    root_->addQuantile("service_pct", &qService_,
                       "service-time percentiles (SLO view)");
    root_->addQuantile("e2e_pct", &qE2e_,
                       "end-to-end latency percentiles (SLO view)");
    tenantsGroup_ =
        std::make_unique<stats::StatGroup>("tenants", root_.get());
    shardsGroup_ =
        std::make_unique<stats::StatGroup>("shards", root_.get());
    kindsGroup_ =
        std::make_unique<stats::StatGroup>("kinds", root_.get());

    flight_ = std::make_unique<obs::FlightRecorders>(
        cfg.shards, cfg.obs.flightDepth);

    // Formulas hold raw pointers into this vector: size it for every
    // registration up front so it never reallocates.
    shardFormulas_.reserve(4 * cfg.shards + 4);

    for (unsigned i = 0; i < cfg.shards; ++i) {
        const ShardConfig sc = shardConfigFor(i);
        shards_.push_back(std::make_unique<Shard>(i, sc));
        faultPlans_.push_back({});
        for (const fault::FaultEvent &ev :
             fault::buildPlan(sc.faults, sc.cells))
            faultPlans_.back().push_back(fault::describeFault(ev));

        auto g = std::make_unique<stats::StatGroup>(
            "shard" + std::to_string(i), shardsGroup_.get());
        // Formulas go through shards_[i], not a raw Shard pointer:
        // migrateShard() replaces the pool entry, and the gauges must
        // follow the replacement.
        shardFormulas_.emplace_back(
            [this, i] { return double(shards_[i]->busyCycles()); });
        g->addFormula("busy_cycles", &shardFormulas_.back(),
                      "engine cycles spent serving batches");
        shardFormulas_.emplace_back(
            [this, i] { return double(shards_[i]->aliveCells()); });
        g->addFormula("alive_cells", &shardFormulas_.back(),
                      "usable cells (0 once the shard died)");
        shardFormulas_.emplace_back([this, i] {
            const Cycle ms = sched_ ? sched_->makespan() : 0;
            return ms ? double(shards_[i]->busyCycles()) / double(ms)
                      : 0.0;
        });
        g->addFormula("occupancy", &shardFormulas_.back(),
                      "fraction of the makespan spent serving");
        shardFormulas_.emplace_back(
            [this, i] { return double(shards_[i]->peakBatchJobs()); });
        g->addFormula("peak_batch_jobs", &shardFormulas_.back(),
                      "largest batch served (jobs)");
        shardJobs_.push_back(std::make_unique<stats::Counter>());
        g->addCounter("jobs", shardJobs_.back().get(),
                      "jobs committed on this shard");
        shardGroups_.push_back(std::move(g));
    }

    sched_ = std::make_unique<Scheduler>(
        shards_, cfg.sched,
        [this](const JobRequest &req, JobResult r, Cycle cy,
               std::uint64_t ma) { deliver(req, std::move(r), cy, ma); });
    sched_->attachObservers(
        &spans_, flight_.get(),
        [this](const std::string &reason) { recordFlightDump(reason); });

    shardFormulas_.emplace_back(
        [this] { return double(sched_->makespan()); });
    root_->addFormula("makespan", &shardFormulas_.back(),
                      "virtual cycle the last batch finished");
    shardFormulas_.emplace_back(
        [this] { return double(sched_->batches()); });
    root_->addFormula("batches", &shardFormulas_.back(),
                      "batches dispatched across all shards");
    shardFormulas_.emplace_back(
        [this] { return double(aliveShards()); });
    root_->addFormula("alive_shards", &shardFormulas_.back(),
                      "shards still able to serve");
    shardFormulas_.emplace_back([this] { return utilization(); });
    root_->addFormula("utilization", &shardFormulas_.back(),
                      "mean fraction of the makespan each shard spent "
                      "serving");

    if (!cfg_.checkpointDir.empty()) {
        snap::ensureDirectories(cfg_.checkpointDir);
        sinceCkpt_.assign(cfg.shards, 0);
        if (cfg_.resume) {
            loadJournal();
            for (unsigned i = 0; i < cfg.shards; ++i) {
                const std::string path = checkpointPath(i);
                if (std::filesystem::exists(path))
                    shards_[i]->readCheckpoint(path);
            }
        }
        const std::string jpath = cfg_.checkpointDir + "/journal.log";
        journal_ = std::make_unique<std::ofstream>(jpath, std::ios::app);
        if (!*journal_)
            throw SnapshotError(jpath, "cannot open the serve journal");
        sched_->setBatchDoneHook([this](unsigned i) {
            if (++sinceCkpt_[i] >= std::max(1u, cfg_.checkpointEvery)) {
                sinceCkpt_[i] = 0;
                shards_[i]->writeCheckpoint(checkpointPath(i));
            }
        });
    }
}

Server::~Server() = default;

ShardConfig
Server::shardConfigFor(unsigned i) const
{
    ShardConfig sc = cfg_.shard;
    bool overridden = false;
    for (const auto &[id, spec] : cfg_.shardFaults)
        if (id == i) {
            sc.faults = spec;
            overridden = true;
        }
    if (!overridden && cfg_.faults.any()) {
        // Independent but replayable fault streams per shard.
        sc.faults = cfg_.faults;
        sc.faults.seed = cfg_.faults.seed + 1000003ull * i;
    }
    return sc;
}

void
Server::migrateShard(unsigned i)
{
    opac_assert(i < shards_.size(), "migrate of unknown shard %u", i);
    snap::Snapshot s = shards_[i]->takeSnapshot();
    auto fresh = std::make_unique<Shard>(i, shardConfigFor(i));
    fresh->restoreSnapshot(s);
    shards_[i] = std::move(fresh);
}

std::string
Server::checkpointPath(unsigned i) const
{
    return cfg_.checkpointDir + "/shard" + std::to_string(i) + ".snap";
}

void
Server::writeJournal(const std::string &line)
{
    *journal_ << line << '\n';
    journal_->flush();
    if (!*journal_)
        throw SnapshotError(cfg_.checkpointDir + "/journal.log",
                            "serve journal write failed");
}

void
Server::loadJournal()
{
    std::ifstream in(cfg_.checkpointDir + "/journal.log");
    if (!in)
        return; // nothing journaled yet — fresh directory
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream is(line);
        std::string tag;
        is >> tag;
        if (tag != "R")
            continue;
        Recovered rec;
        JobResult &r = rec.result;
        unsigned status = 0, correct = 0;
        unsigned long long arrival = 0, started = 0, finished = 0,
                           deadline = 0, checksum = 0, cycles = 0,
                           ma = 0;
        is >> r.ticket >> status >> r.shard >> arrival >> started
            >> finished >> deadline >> std::hex >> checksum >> std::dec
            >> correct >> r.failovers >> cycles >> ma;
        if (!is || status > unsigned(JobStatus::Failed))
            continue; // torn final record from the crash — ignore
        r.status = JobStatus(status);
        r.arrival = arrival;
        r.started = started;
        r.finished = finished;
        r.deadline = deadline;
        r.checksum = checksum;
        r.correct = correct != 0;
        rec.cycles = cycles;
        rec.ma = ma;
        std::getline(is, r.note);
        if (!r.note.empty() && r.note.front() == ' ')
            r.note.erase(0, 1);
        recovered_[r.ticket] = std::move(rec);
    }
}

void
Server::deliverRecovered()
{
    if (recovered_.empty())
        return;
    struct Replay
    {
        JobRequest req;
        Recovered rec;
    };
    std::vector<Replay> replays;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            PendingEntry &e = *pending_[i];
            const std::uint32_t ticket = std::uint32_t(i + 1);
            auto it = recovered_.find(ticket);
            if (e.queued || it == recovered_.end())
                continue;
            e.queued = true; // keep it away from the scheduler
            replays.push_back(Replay{e.req, it->second});
        }
    }
    // Replayed deliveries repopulate the accounting tree but are not
    // re-journaled (the journal already holds them) and never count
    // against the crash hook.
    replaying_ = true;
    for (Replay &rp : replays)
        deliver(rp.req, std::move(rp.rec.result), rp.rec.cycles,
                rp.rec.ma);
    replaying_ = false;
}

Server::TenantStats &
Server::tenant(std::uint32_t id)
{
    auto it = tenants_.find(id);
    if (it == tenants_.end())
        it = tenants_
                 .emplace(id, std::make_unique<TenantStats>(
                                  id, tenantsGroup_.get()))
                 .first;
    return *it->second;
}

Server::KindStats &
Server::kindStats(KernelKind k)
{
    const std::string name = kernelKindName(k);
    auto it = kinds_.find(name);
    if (it == kinds_.end())
        it = kinds_
                 .emplace(name, std::make_unique<KindStats>(
                                    name, kindsGroup_.get()))
                 .first;
    return *it->second;
}

std::future<JobResult>
Server::submit(JobRequest req, Callback cb)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto e = std::make_unique<PendingEntry>();
    e->req = req;
    e->cb = std::move(cb);
    std::future<JobResult> fut = e->prom.get_future();
    pending_.push_back(std::move(e));
    ++lastTicket_;
    opac_assert(pending_.size() == lastTicket_, "ticket drift");
    ++cSubmitted_;
    ++tenant(req.tenant).submitted;

    if (journal_)
        writeJournal(strfmt(
            "S %u %u %zu %zu %zu %zu %zu %zu %u %u %llu %llu %llu",
            lastTicket_, unsigned(req.kind), req.m, req.k, req.n, req.p,
            req.q, req.batch, req.tenant, req.priority,
            static_cast<unsigned long long>(req.deadline),
            static_cast<unsigned long long>(req.seed),
            static_cast<unsigned long long>(req.arrival)));

    obs::JobSpan &span = spans_.open(lastTicket_);
    span.tenant = req.tenant;
    span.kind = kernelKindName(req.kind);
    span.compat = compatKey(req);
    span.deadline = req.deadline;
    spans_.edge(lastTicket_, obs::Phase::Submit, req.arrival);
    return fut;
}

void
Server::drain()
{
    // Resume path: results the journal proves were already delivered
    // are re-delivered from the record, never re-executed.
    deliverRecovered();

    std::vector<ShardJob> subs;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            PendingEntry &e = *pending_[i];
            if (e.queued)
                continue;
            e.queued = true;
            subs.push_back(ShardJob{std::uint32_t(i + 1), e.req});
        }
    }
    std::stable_sort(subs.begin(), subs.end(),
                     [](const ShardJob &a, const ShardJob &b) {
                         return a.req.arrival < b.req.arrival;
                     });
    if (!subs.empty())
        sched_->drain(std::move(subs));
}

void
Server::deliver(const JobRequest &req, JobResult r, Cycle cycles,
                std::uint64_t ma)
{
    Callback cb;
    std::promise<JobResult> *prom = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        TenantStats &t = tenant(req.tenant);
        switch (r.status) {
          case JobStatus::Completed: {
            ++cCompleted_;
            ++t.completed;
            if (!r.correct)
                ++cIncorrect_;
            if (r.missedDeadline()) {
                ++cDeadlineMiss_;
                ++t.deadlineMissed;
            }
            dQueueWait_.sample(double(r.queueWait()));
            dLatency_.sample(double(r.latency()));
            qQueueWait_.sample(double(r.queueWait()));
            qService_.sample(double(r.serviceTime()));
            qE2e_.sample(double(r.latency()));
            t.queueWait.sample(double(r.queueWait()));
            t.latency.sample(double(r.latency()));
            t.queueWaitQ.sample(double(r.queueWait()));
            t.serviceQ.sample(double(r.serviceTime()));
            t.e2eQ.sample(double(r.latency()));
            KindStats &k = kindStats(req.kind);
            ++k.completed;
            k.queueWaitQ.sample(double(r.queueWait()));
            k.serviceQ.sample(double(r.serviceTime()));
            k.e2eQ.sample(double(r.latency()));
            if (r.shard < shardJobs_.size())
                ++*shardJobs_[r.shard];
            t.cycles += cycles;
            t.maOps += ma;
            break;
          }
          case JobStatus::Failed:
            ++cFailed_;
            ++t.failed;
            break;
          case JobStatus::Rejected:
            ++cRejected_;
            ++t.rejected;
            break;
        }
        cFailovers_ += r.failovers;
        results_.push_back(r);

        opac_assert(r.ticket >= 1 && r.ticket <= pending_.size(),
                    "delivery for unknown ticket %u", r.ticket);
        PendingEntry &e = *pending_[r.ticket - 1];
        opac_assert(!e.delivered, "double delivery for ticket %u",
                    r.ticket);
        e.delivered = true;
        cb = std::move(e.cb);
        prom = &e.prom;

        if (journal_ && !replaying_) {
            writeJournal(strfmt(
                "R %u %u %u %llu %llu %llu %llu %llx %u %u %llu %llu %s",
                r.ticket, unsigned(r.status), r.shard,
                static_cast<unsigned long long>(r.arrival),
                static_cast<unsigned long long>(r.started),
                static_cast<unsigned long long>(r.finished),
                static_cast<unsigned long long>(r.deadline),
                static_cast<unsigned long long>(r.checksum),
                r.correct ? 1u : 0u, r.failovers,
                static_cast<unsigned long long>(cycles),
                static_cast<unsigned long long>(ma), r.note.c_str()));
            // The record is durable; a "crash" here models the worst
            // case for exactly-once (delivered but not checkpointed).
            if (cfg_.crashAfterDeliveries != 0
                && ++deliveries_ >= cfg_.crashAfterDeliveries)
                throw Error("serve.crash-test",
                            strfmt("simulated crash after %u deliveries",
                                   deliveries_));
        }
    }
    // Fulfil outside the lock: a callback may submit() more work.
    prom->set_value(r);
    if (cb)
        cb(r);
}

unsigned
Server::aliveShards() const
{
    unsigned n = 0;
    for (const auto &s : shards_)
        n += s->alive();
    return n;
}

double
Server::utilization() const
{
    const Cycle ms = sched_->makespan();
    if (ms == 0)
        return 0.0;
    double busy = 0.0;
    for (const auto &s : shards_)
        busy += double(s->busyCycles());
    return busy / (double(ms) * double(shards_.size()));
}

std::string
Server::metricsJson() const
{
    std::string out;
    out += "{\n";
    out += " \"version\": 1,\n";
    out += " \"schema\": \"opac.serve.metrics.v1\",\n";
    out += strfmt(" \"shards\": %u,\n", numShards());
    out += strfmt(" \"makespan\": %llu,\n",
                  static_cast<unsigned long long>(sched_->makespan()));
    out += " \"metrics\": ";
    out += root_->json();
    out += "\n}\n";
    return out;
}

std::string
Server::metricsProm() const
{
    return obs::renderProm(*root_, "opac");
}

std::string
Server::spansJson(bool include_wall) const
{
    return spans_.json(include_wall);
}

void
Server::writeSpanChromeTrace(std::ostream &out) const
{
    spans_.writeChromeTrace(out, numShards(), sched_->makespan());
}

std::string
Server::lastFlightDump() const
{
    return flightDumps_.empty() ? std::string()
                                : flightDumps_.back().second;
}

void
Server::recordFlightDump(const std::string &reason)
{
    ++flightTriggers_;
    if (flightDumps_.size() >= cfg_.obs.maxFlightDumps)
        return;
    flightDumps_.emplace_back(
        reason, flight_->dumpJson(reason, sched_->makespan(),
                                  cfg_.faults.seed, faultPlans_));
}

} // namespace opac::serve
