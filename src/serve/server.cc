#include "serve/server.hh"

#include <algorithm>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace opac::serve
{

/** Per-tenant accounting subtree ("serve.tenants.tenantN"). */
struct Server::TenantStats
{
    TenantStats(std::uint32_t id, stats::StatGroup *parent)
        : group("tenant" + std::to_string(id), parent)
    {
        group.addCounter("submitted", &submitted, "jobs submitted");
        group.addCounter("completed", &completed, "jobs completed");
        group.addCounter("rejected", &rejected,
                         "jobs refused at admission");
        group.addCounter("failed", &failed, "jobs lost to shard deaths");
        group.addCounter("cycles", &cycles,
                         "engine cycles attributed (flops-proportional "
                         "share of each batch)");
        group.addCounter("ma_ops", &maOps,
                         "multiply-adds attributed (same attribution)");
        group.addDistribution("queue_wait", &queueWait,
                              "virtual cycles from arrival to dispatch");
        group.addDistribution("latency", &latency,
                              "virtual cycles from arrival to completion");
    }

    stats::StatGroup group;
    stats::Counter submitted, completed, rejected, failed;
    stats::Counter cycles, maOps;
    stats::Distribution queueWait, latency;
};

/** One submission awaiting delivery. */
struct Server::PendingEntry
{
    JobRequest req;
    std::promise<JobResult> prom;
    Callback cb;
    bool queued = false;    //!< handed to the scheduler already
    bool delivered = false;
};

Server::Server(const ServeConfig &cfg) : cfg_(cfg)
{
    opac_assert(cfg.shards >= 1, "server needs at least one shard");

    root_ = std::make_unique<stats::StatGroup>("serve");
    root_->addCounter("submitted", &cSubmitted_, "jobs submitted");
    root_->addCounter("completed", &cCompleted_, "jobs completed");
    root_->addCounter("failed", &cFailed_,
                      "jobs lost to shard deaths");
    root_->addCounter("rejected", &cRejected_,
                      "jobs refused at admission");
    root_->addCounter("failovers", &cFailovers_,
                      "times a delivered job was re-queued off a "
                      "dying shard");
    root_->addCounter("incorrect", &cIncorrect_,
                      "completed jobs whose output missed the oracle "
                      "(0 in a healthy service)");
    root_->addDistribution("queue_wait", &dQueueWait_,
                           "virtual cycles from arrival to dispatch");
    root_->addDistribution("latency", &dLatency_,
                           "virtual cycles from arrival to completion");
    tenantsGroup_ =
        std::make_unique<stats::StatGroup>("tenants", root_.get());
    shardsGroup_ =
        std::make_unique<stats::StatGroup>("shards", root_.get());

    // Formulas hold raw pointers into this vector: size it for every
    // registration up front so it never reallocates.
    shardFormulas_.reserve(2 * cfg.shards + 4);

    for (unsigned i = 0; i < cfg.shards; ++i) {
        ShardConfig sc = cfg.shard;
        bool overridden = false;
        for (const auto &[id, spec] : cfg.shardFaults)
            if (id == i) {
                sc.faults = spec;
                overridden = true;
            }
        if (!overridden && cfg.faults.any()) {
            // Independent but replayable fault streams per shard.
            sc.faults = cfg.faults;
            sc.faults.seed = cfg.faults.seed + 1000003ull * i;
        }
        shards_.push_back(std::make_unique<Shard>(i, sc));

        auto g = std::make_unique<stats::StatGroup>(
            "shard" + std::to_string(i), shardsGroup_.get());
        Shard *sp = shards_.back().get();
        shardFormulas_.emplace_back(
            [sp] { return double(sp->busyCycles()); });
        g->addFormula("busy_cycles", &shardFormulas_.back(),
                      "engine cycles spent serving batches");
        shardFormulas_.emplace_back(
            [sp] { return double(sp->aliveCells()); });
        g->addFormula("alive_cells", &shardFormulas_.back(),
                      "usable cells (0 once the shard died)");
        shardGroups_.push_back(std::move(g));
    }

    sched_ = std::make_unique<Scheduler>(
        shards_, cfg.sched,
        [this](const JobRequest &req, JobResult r, Cycle cy,
               std::uint64_t ma) { deliver(req, std::move(r), cy, ma); });

    shardFormulas_.emplace_back(
        [this] { return double(sched_->makespan()); });
    root_->addFormula("makespan", &shardFormulas_.back(),
                      "virtual cycle the last batch finished");
    shardFormulas_.emplace_back(
        [this] { return double(sched_->batches()); });
    root_->addFormula("batches", &shardFormulas_.back(),
                      "batches dispatched across all shards");
    shardFormulas_.emplace_back(
        [this] { return double(aliveShards()); });
    root_->addFormula("alive_shards", &shardFormulas_.back(),
                      "shards still able to serve");
    shardFormulas_.emplace_back([this] { return utilization(); });
    root_->addFormula("utilization", &shardFormulas_.back(),
                      "mean fraction of the makespan each shard spent "
                      "serving");
}

Server::~Server() = default;

Server::TenantStats &
Server::tenant(std::uint32_t id)
{
    auto it = tenants_.find(id);
    if (it == tenants_.end())
        it = tenants_
                 .emplace(id, std::make_unique<TenantStats>(
                                  id, tenantsGroup_.get()))
                 .first;
    return *it->second;
}

std::future<JobResult>
Server::submit(JobRequest req, Callback cb)
{
    std::lock_guard<std::mutex> lk(mu_);
    auto e = std::make_unique<PendingEntry>();
    e->req = req;
    e->cb = std::move(cb);
    std::future<JobResult> fut = e->prom.get_future();
    pending_.push_back(std::move(e));
    ++lastTicket_;
    opac_assert(pending_.size() == lastTicket_, "ticket drift");
    ++cSubmitted_;
    ++tenant(req.tenant).submitted;
    return fut;
}

void
Server::drain()
{
    std::vector<ShardJob> subs;
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (std::size_t i = 0; i < pending_.size(); ++i) {
            PendingEntry &e = *pending_[i];
            if (e.queued)
                continue;
            e.queued = true;
            subs.push_back(ShardJob{std::uint32_t(i + 1), e.req});
        }
    }
    std::stable_sort(subs.begin(), subs.end(),
                     [](const ShardJob &a, const ShardJob &b) {
                         return a.req.arrival < b.req.arrival;
                     });
    if (!subs.empty())
        sched_->drain(std::move(subs));
}

void
Server::deliver(const JobRequest &req, JobResult r, Cycle cycles,
                std::uint64_t ma)
{
    Callback cb;
    std::promise<JobResult> *prom = nullptr;
    {
        std::lock_guard<std::mutex> lk(mu_);
        TenantStats &t = tenant(req.tenant);
        switch (r.status) {
          case JobStatus::Completed:
            ++cCompleted_;
            ++t.completed;
            if (!r.correct)
                ++cIncorrect_;
            dQueueWait_.sample(double(r.queueWait()));
            dLatency_.sample(double(r.latency()));
            t.queueWait.sample(double(r.queueWait()));
            t.latency.sample(double(r.latency()));
            t.cycles += cycles;
            t.maOps += ma;
            break;
          case JobStatus::Failed:
            ++cFailed_;
            ++t.failed;
            break;
          case JobStatus::Rejected:
            ++cRejected_;
            ++t.rejected;
            break;
        }
        cFailovers_ += r.failovers;
        results_.push_back(r);

        opac_assert(r.ticket >= 1 && r.ticket <= pending_.size(),
                    "delivery for unknown ticket %u", r.ticket);
        PendingEntry &e = *pending_[r.ticket - 1];
        opac_assert(!e.delivered, "double delivery for ticket %u",
                    r.ticket);
        e.delivered = true;
        cb = std::move(e.cb);
        prom = &e.prom;
    }
    // Fulfil outside the lock: a callback may submit() more work.
    prom->set_value(r);
    if (cb)
        cb(r);
}

unsigned
Server::aliveShards() const
{
    unsigned n = 0;
    for (const auto &s : shards_)
        n += s->alive();
    return n;
}

double
Server::utilization() const
{
    const Cycle ms = sched_->makespan();
    if (ms == 0)
        return 0.0;
    double busy = 0.0;
    for (const auto &s : shards_)
        busy += double(s->busyCycles());
    return busy / (double(ms) * double(shards_.size()));
}

} // namespace opac::serve
