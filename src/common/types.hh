/**
 * @file
 * Fundamental scalar types shared by every OPAC module.
 *
 * The OPAC prototype moves 32-bit words: IEEE-754 binary32 values on the
 * data paths, and packed call/parameter words on the control path. All
 * storage (FIFO queues, registers, host memory) is therefore expressed in
 * terms of Word, and helpers are provided to view a Word as a float.
 */

#ifndef OPAC_COMMON_TYPES_HH
#define OPAC_COMMON_TYPES_HH

#include <bit>
#include <cstdint>

namespace opac
{

/** A machine word: 32 bits, the unit of every OPAC data path. */
using Word = std::uint32_t;

/** Simulated time, counted in cycles of the common coprocessor clock. */
using Cycle = std::uint64_t;

/** A Cycle value meaning "never": no event is scheduled. */
constexpr Cycle cycleNever = ~Cycle(0);

/** Reinterpret a word as the binary32 value it encodes. */
inline float
wordToFloat(Word w)
{
    return std::bit_cast<float>(w);
}

/** Reinterpret a binary32 value as its encoding word. */
inline Word
floatToWord(float f)
{
    return std::bit_cast<Word>(f);
}

} // namespace opac

#endif // OPAC_COMMON_TYPES_HH
