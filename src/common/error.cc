#include "common/error.hh"

#include "common/logging.hh"

namespace opac
{

namespace
{

std::string
formatError(const std::string &site, Cycle cycle, const std::string &what)
{
    if (cycle == cycleNever)
        return strfmt("%s: %s", site.c_str(), what.c_str());
    return strfmt("%s: cycle %llu: %s", site.c_str(),
                  static_cast<unsigned long long>(cycle), what.c_str());
}

} // anonymous namespace

Error::Error(std::string site, Cycle cycle, const std::string &what)
    : std::runtime_error(formatError(site, cycle, what)),
      _site(std::move(site)), _cycle(cycle)
{}

Error::Error(std::string site, const std::string &what)
    : std::runtime_error(formatError(site, cycleNever, what)),
      _site(std::move(site))
{}

} // namespace opac
