#include "common/table.hh"

#include <algorithm>

namespace opac
{

void
TextTable::header(std::vector<std::string> cells)
{
    head = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    size_t ncol = head.size();
    for (const auto &r : rows)
        ncol = std::max(ncol, r.size());

    std::vector<size_t> width(ncol, 0);
    auto measure = [&](const std::vector<std::string> &r) {
        for (size_t i = 0; i < r.size(); ++i)
            width[i] = std::max(width[i], r[i].size());
    };
    measure(head);
    for (const auto &r : rows)
        measure(r);

    auto emit = [&](const std::vector<std::string> &r, std::string &out) {
        for (size_t i = 0; i < ncol; ++i) {
            const std::string cell = i < r.size() ? r[i] : "";
            out += cell;
            if (i + 1 < ncol)
                out += std::string(width[i] - cell.size() + 2, ' ');
        }
        out += "\n";
    };

    std::string out;
    if (!title.empty())
        out += title + "\n";
    if (!head.empty()) {
        emit(head, out);
        size_t total = 0;
        for (size_t i = 0; i < ncol; ++i)
            total += width[i] + (i + 1 < ncol ? 2 : 0);
        out += std::string(total, '-') + "\n";
    }
    for (const auto &r : rows)
        emit(r, out);
    return out;
}

} // namespace opac
