/**
 * @file
 * Plain-text table formatter used by the benchmark harnesses to print the
 * paper's tables.
 */

#ifndef OPAC_COMMON_TABLE_HH
#define OPAC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace opac
{

/** A simple column-aligned text table with an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title(std::move(title)) {}

    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row. */
    void row(std::vector<std::string> cells);

    /** Render with aligned columns and a rule under the header. */
    std::string render() const;

  private:
    std::string title;
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

} // namespace opac

#endif // OPAC_COMMON_TABLE_HH
