/**
 * @file
 * Structured exception hierarchy for recoverable simulator errors.
 *
 * Historically every invalid input or stuck machine state went through
 * opac_fatal / opac_assert and killed the process (or threw a bare
 * std::runtime_error / std::logic_error with no context). The fault
 * subsystem needs errors a caller can catch, classify and recover
 * from: every opac::Error carries the *site* that raised it (component
 * name, program name, parser position, ...), optionally the simulated
 * *cycle* at which it happened, and the human-readable description.
 *
 * All types derive from std::runtime_error so existing
 * EXPECT_THROW(..., std::runtime_error) call sites keep working.
 */

#ifndef OPAC_COMMON_ERROR_HH
#define OPAC_COMMON_ERROR_HH

#include <stdexcept>
#include <string>

#include "common/types.hh"

namespace opac
{

/** Base class: a recoverable, classified simulator error. */
class Error : public std::runtime_error
{
  public:
    /** Error tied to a simulated cycle (machine-state errors). */
    Error(std::string site, Cycle cycle, const std::string &what);

    /** Error with no meaningful cycle (input validation, parsing). */
    Error(std::string site, const std::string &what);

    /** Component / program / parser location that raised the error. */
    const std::string &site() const { return _site; }

    /** Simulated cycle, or cycleNever when not tied to one. */
    Cycle cycle() const { return _cycle; }

    bool hasCycle() const { return _cycle != cycleNever; }

  private:
    std::string _site;
    Cycle _cycle = cycleNever;
};

/** A microcode program failed Program::validate(). */
class ValidationError : public Error
{
  public:
    using Error::Error;
};

/** A firmware image or microcode load was malformed. */
class MicrocodeError : public Error
{
  public:
    using Error::Error;
};

/** The engine watchdog expired and no recovery handler claimed it. */
class DeadlockError : public Error
{
  public:
    using Error::Error;
};

/** A --faults= / --parity= specification string failed to parse. */
class FaultSpecError : public Error
{
  public:
    using Error::Error;
};

/** Recovery gave up: retry budgets exhausted with no cells left. */
class RecoveryError : public Error
{
  public:
    using Error::Error;
};

/**
 * A snapshot file was rejected: truncated, checksum mismatch, unknown
 * format version, wrong configuration fingerprint, or a component
 * section whose payload does not decode. The site names the snapshot
 * path or the component section that failed.
 */
class SnapshotError : public Error
{
  public:
    using Error::Error;
};

} // namespace opac

#endif // OPAC_COMMON_ERROR_HH
