/**
 * @file
 * Small integer helpers used throughout the simulator and the planners.
 */

#ifndef OPAC_COMMON_MATH_UTIL_HH
#define OPAC_COMMON_MATH_UTIL_HH

#include <cstdint>

namespace opac
{

/** Ceiling division of non-negative integers. */
constexpr std::int64_t
ceilDiv(std::int64_t a, std::int64_t b)
{
    return (a + b - 1) / b;
}

/** True if v is a power of two (v > 0). */
constexpr bool
isPow2(std::int64_t v)
{
    return v > 0 && (v & (v - 1)) == 0;
}

/** Floor of log2(v); v must be > 0. */
constexpr int
floorLog2(std::int64_t v)
{
    int r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

/** Round v up to the next multiple of m (m > 0). */
constexpr std::int64_t
roundUp(std::int64_t v, std::int64_t m)
{
    return ceilDiv(v, m) * m;
}

/** Integer square root: largest r with r*r <= v. */
constexpr std::int64_t
isqrt(std::int64_t v)
{
    std::int64_t r = 0;
    while ((r + 1) * (r + 1) <= v)
        ++r;
    return r;
}

} // namespace opac

#endif // OPAC_COMMON_MATH_UTIL_HH
