/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() for conditions that indicate a bug
 * in the simulator itself, fatal() for user/configuration errors that make
 * continuing impossible, warn()/inform() for non-fatal notices.
 */

#ifndef OPAC_COMMON_LOGGING_HH
#define OPAC_COMMON_LOGGING_HH

#include <atomic>
#include <cstdarg>
#include <string>

namespace opac
{

/** printf-style formatting into a std::string. */
std::string strfmt(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Print a warning to stderr; the simulation continues. */
void warn(const std::string &msg);

/** Implementation detail of opac_warn_once; use the macro. */
void warnOnceImpl(std::atomic<bool> &printed, const std::string &msg);

/** Print an informational message to stderr. */
void inform(const std::string &msg);

} // namespace opac

/** Abort: a simulator invariant was violated (a bug in this code base). */
#define opac_panic(...) \
    ::opac::panicImpl(__FILE__, __LINE__, ::opac::strfmt(__VA_ARGS__))

/** Exit with an error: the user asked for something unsupported. */
#define opac_fatal(...) \
    ::opac::fatalImpl(__FILE__, __LINE__, ::opac::strfmt(__VA_ARGS__))

/**
 * Like warn(), but prints at most once per callsite for the lifetime of
 * the process — for diagnostics that would otherwise repeat every cycle
 * (write-port conflicts, unknown PMU registers). Thread-safe: the
 * sweep runner executes simulations concurrently, and exactly one of
 * any number of racing callers prints.
 */
#define opac_warn_once(...)                                           \
    do {                                                              \
        static std::atomic<bool> opac_warn_once_printed_{false};      \
        ::opac::warnOnceImpl(opac_warn_once_printed_,                 \
                             ::opac::strfmt(__VA_ARGS__));            \
    } while (0)

/** panic() unless the given simulator invariant holds. */
#define opac_assert(cond, ...)                                        \
    do {                                                              \
        if (!(cond)) {                                                \
            ::opac::panicImpl(__FILE__, __LINE__,                     \
                "assertion '" #cond "' failed: "                      \
                + ::opac::strfmt(__VA_ARGS__));                       \
        }                                                             \
    } while (0)

#endif // OPAC_COMMON_LOGGING_HH
