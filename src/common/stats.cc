#include "common/stats.hh"

#include <algorithm>

#include "common/logging.hh"

namespace opac::stats
{

void
Distribution::sample(double v)
{
    if (_count == 0) {
        _min = _max = v;
    } else {
        _min = std::min(_min, v);
        _max = std::max(_max, v);
    }
    _sum += v;
    ++_count;
}

void
Distribution::reset()
{
    _count = 0;
    _sum = _min = _max = 0.0;
}

StatGroup::StatGroup(std::string name, StatGroup *parent)
    : _name(std::move(name)), parent(parent)
{
    if (parent)
        parent->children.push_back(this);
}

StatGroup::~StatGroup()
{
    if (parent) {
        auto &sib = parent->children;
        sib.erase(std::remove(sib.begin(), sib.end(), this), sib.end());
    }
}

void
StatGroup::addCounter(const std::string &name, Counter *c,
                      const std::string &desc)
{
    opac_assert(c != nullptr, "null counter '%s'", name.c_str());
    counters[name] = CounterEntry{c, desc};
}

void
StatGroup::addDistribution(const std::string &name, Distribution *d,
                           const std::string &desc)
{
    opac_assert(d != nullptr, "null distribution '%s'", name.c_str());
    dists[name] = DistEntry{d, desc};
}

void
StatGroup::dump(std::string &out, const std::string &prefix) const
{
    std::string base = prefix.empty() ? _name : prefix + "." + _name;
    for (const auto &[n, e] : counters) {
        out += strfmt("%-48s %12llu", (base + "." + n).c_str(),
                      static_cast<unsigned long long>(e.counter->value()));
        if (!e.desc.empty())
            out += "  # " + e.desc;
        out += "\n";
    }
    for (const auto &[n, e] : dists) {
        out += strfmt("%-48s min=%.2f max=%.2f mean=%.2f n=%llu",
                      (base + "." + n).c_str(), e.dist->min(),
                      e.dist->max(), e.dist->mean(),
                      static_cast<unsigned long long>(e.dist->count()));
        if (!e.desc.empty())
            out += "  # " + e.desc;
        out += "\n";
    }
    for (const auto *c : children)
        c->dump(out, base);
}

void
StatGroup::resetAll()
{
    for (auto &[n, e] : counters)
        e.counter->reset();
    for (auto &[n, e] : dists)
        e.dist->reset();
    for (auto *c : children)
        c->resetAll();
}

std::uint64_t
StatGroup::counterValue(const std::string &path) const
{
    // Counter names may themselves contain dots (e.g. "tpx.pushes"), so
    // prefer an exact match in this group before descending.
    if (auto it = counters.find(path); it != counters.end())
        return it->second.counter->value();

    auto dot = path.find('.');
    if (dot == std::string::npos) {
        opac_panic("no counter '%s' in group '%s'", path.c_str(),
                   _name.c_str());
    }
    std::string head = path.substr(0, dot);
    std::string rest = path.substr(dot + 1);
    for (const auto *c : children) {
        if (c->name() == head)
            return c->counterValue(rest);
    }
    opac_panic("no child group '%s' in group '%s'", head.c_str(),
               _name.c_str());
}

} // namespace opac::stats
